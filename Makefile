# Local targets mirroring .github/workflows/ci.yml exactly, so `make ci`
# reproduces what CI runs.

GO ?= go

.PHONY: build test vet fmt bench ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# One iteration per benchmark: compile-and-run proof, no measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

ci: build vet fmt test bench
