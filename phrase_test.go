package desksearch

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
	"desksearch/internal/walk"
)

// phraseVocab is deliberately tiny so random phrases repeat across files
// and every query has both matches and near-misses (right words, wrong
// order or gap).
var phraseVocab = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}

// phraseCorpusFS generates nFiles random token streams over phraseVocab.
func phraseCorpusFS(t *testing.T, rng *rand.Rand, nFiles int) (*vfs.MemFS, map[string][]string) {
	t.Helper()
	fs := vfs.NewMemFS()
	tokens := make(map[string][]string, nFiles)
	for f := 0; f < nFiles; f++ {
		n := 20 + rng.Intn(40)
		words := make([]string, n)
		for i := range words {
			words[i] = phraseVocab[rng.Intn(len(phraseVocab))]
		}
		name := fmt.Sprintf("dir%d/f%03d.txt", f%3, f)
		if err := fs.WriteFile(name, []byte(strings.Join(words, " "))); err != nil {
			t.Fatal(err)
		}
		tokens[name] = words
	}
	return fs, tokens
}

// naivePhraseScan returns the files whose extracted token stream contains
// the phrase at consecutive positions — the specification the positional
// index must reproduce exactly. It re-tokenizes from the file content (not
// the generator's word list) so the oracle and the index share one
// tokenizer and nothing else.
func naivePhraseScan(t *testing.T, fs *vfs.MemFS, phrase []string) []string {
	t.Helper()
	refs, err := walk.List(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ref := range refs {
		data, err := fs.ReadFile(ref.Path)
		if err != nil {
			t.Fatal(err)
		}
		toks := tokenize.Terms(data, tokenize.Default)
		for i := 0; i+len(phrase) <= len(toks); i++ {
			match := true
			for k, w := range phrase {
				if toks[i+k] != w {
					match = false
					break
				}
			}
			if match {
				out = append(out, ref.Path)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

func queryPaths(t *testing.T, cat *Catalog, query string) []string {
	t.Helper()
	resp, err := cat.Query(context.Background(), Query{Text: query})
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	out := make([]string, len(resp.Hits))
	for i, h := range resp.Hits {
		out[i] = h.Path
	}
	sort.Strings(out)
	return out
}

// randomPhrase samples 2–3 consecutive tokens from a random file, so most
// sampled phrases actually occur somewhere.
func randomPhrase(rng *rand.Rand, tokens map[string][]string, names []string) []string {
	words := tokens[names[rng.Intn(len(names))]]
	n := 2 + rng.Intn(2)
	start := rng.Intn(len(words) - n)
	return append([]string(nil), words[start:start+n]...)
}

// TestPhraseMatchesNaiveScan is the acceptance property: quoted phrase
// queries return exactly the files a naive scan of the extracted token
// streams finds, across batch, sharded, persisted, and incrementally
// updated catalogs.
func TestPhraseMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fs, tokens := phraseCorpusFS(t, rng, 36)
	names := make([]string, 0, len(tokens))
	for name := range tokens {
		names = append(names, name)
	}
	sort.Strings(names)

	batch, err := IndexFS(fs, ".", Options{Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := IndexFS(fs, ".", Options{Positions: true, Shards: 3,
		Implementation: ReplicatedSearch, Extractors: 3, Updaters: 2})
	if err != nil {
		t.Fatal(err)
	}
	cats := map[string]*Catalog{"batch": batch, "sharded": sharded}

	// Persistence round trips: single-file v8 and sharded v8 segments.
	b := &bytesBuffer{}
	if err := batch.Save(b); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	cats["loaded"] = loaded
	dir := t.TempDir()
	if err := sharded.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loadedDir, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cats["loaded-dir"] = loadedDir

	for q := 0; q < 25; q++ {
		phrase := randomPhrase(rng, tokens, names)
		query := `"` + strings.Join(phrase, " ") + `"`
		want := naivePhraseScan(t, fs, phrase)
		for kind, cat := range cats {
			if got := queryPaths(t, cat, query); !equalStrings(got, want) {
				t.Errorf("%s: %s → %v, want %v", kind, query, got, want)
			}
		}
		// Phrase composed with negation: boolean algebra must hold on top
		// of the positional match set.
		neg := phraseVocab[rng.Intn(len(phraseVocab))]
		negQuery := query + " -" + neg
		wantNeg := withoutFilesContaining(want, tokens, neg)
		for kind, cat := range cats {
			if got := queryPaths(t, cat, negQuery); !equalStrings(got, wantNeg) {
				t.Errorf("%s: %s → %v, want %v", kind, negQuery, got, wantNeg)
			}
		}
	}
}

// TestPhraseSurvivesIncrementalUpdate pins the delta pipeline: files
// added and modified through Catalog.Update must answer phrase queries
// exactly like a fresh positional build of the same tree.
func TestPhraseSurvivesIncrementalUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fs, tokens := phraseCorpusFS(t, rng, 30)
	names := make([]string, 0, len(tokens))
	for name := range tokens {
		names = append(names, name)
	}
	sort.Strings(names)

	// Build on the full tree, then churn it: delete some files, modify
	// others, add new ones — all through the incremental path.
	cat, err := IndexFS(fs, ".", Options{Positions: true, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		fs.Remove(names[i*3])
	}
	for i := 0; i < 5; i++ {
		name := names[i*4+1]
		n := 15 + rng.Intn(30)
		words := make([]string, n)
		for k := range words {
			words[k] = phraseVocab[rng.Intn(len(phraseVocab))]
		}
		if err := fs.WriteFile(name, []byte(strings.Join(words, " "))); err != nil {
			t.Fatal(err)
		}
		tokens[name] = words
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("new/n%02d.txt", i)
		n := 10 + rng.Intn(20)
		words := make([]string, n)
		for k := range words {
			words[k] = phraseVocab[rng.Intn(len(phraseVocab))]
		}
		if err := fs.WriteFile(name, []byte(strings.Join(words, " "))); err != nil {
			t.Fatal(err)
		}
		tokens[name] = words
	}
	if _, err := cat.Update(fs, "."); err != nil {
		t.Fatal(err)
	}

	fresh, err := IndexFS(fs, ".", Options{Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	liveNames := make([]string, 0, len(tokens))
	for _, ref := range mustList(t, fs) {
		liveNames = append(liveNames, ref.Path)
	}
	for q := 0; q < 20; q++ {
		phrase := randomPhrase(rng, tokens, liveNames)
		query := `"` + strings.Join(phrase, " ") + `"`
		want := naivePhraseScan(t, fs, phrase)
		if got := queryPaths(t, cat, query); !equalStrings(got, want) {
			t.Errorf("updated: %s → %v, want %v", query, got, want)
		}
		if got := queryPaths(t, fresh, query); !equalStrings(got, want) {
			t.Errorf("fresh: %s → %v, want %v", query, got, want)
		}
	}
}

func TestPhraseWithoutPositionsErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := fs.WriteFile("a.txt", []byte("annual report")); err != nil {
		t.Fatal(err)
	}
	cat, err := IndexFS(fs, ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cat.Query(context.Background(), Query{Text: `"annual report"`})
	if err == nil || !strings.Contains(err.Error(), "without positions") {
		t.Fatalf("phrase on non-positional catalog: err = %v", err)
	}
	// The error surfaces through Normalize-based paths (the daemon) too:
	// the request itself is valid, so it must normalize fine and fail only
	// at evaluation.
	if _, _, err := (Query{Text: `"annual report"`}).Normalize(); err != nil {
		t.Fatalf("phrase request failed to normalize: %v", err)
	}
}

// TestPositionsNotRetrofittedOnLoad pins the loaded-catalog policy: the
// DSIX frame version decides positional-ness in both directions, so
// passing Options.Positions when loading a non-positional catalog must
// not produce a half-positional index — updates keep extracting without
// positions, the catalog stays saveable/reloadable, and phrase queries
// keep failing with the clear error.
func TestPositionsNotRetrofittedOnLoad(t *testing.T) {
	fs := vfs.NewMemFS()
	for name, content := range map[string]string{
		"a.txt": "annual report one",
		"b.txt": "unrelated words here",
	} {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	built, err := IndexFS(fs, ".", Options{}) // no positions
	if err != nil {
		t.Fatal(err)
	}
	b := &bytesBuffer{}
	if err := built.Save(b); err != nil {
		t.Fatal(err)
	}
	// Load with Positions erroneously enabled, then churn the tree through
	// an incremental update.
	cat, err := Load(strings.NewReader(b.String()), Options{Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("a.txt", []byte("annual report rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("c.txt", []byte("a brand new annual report")); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Update(fs, "."); err != nil {
		t.Fatal(err)
	}
	// The updated catalog must save and reload cleanly (the original bug
	// persisted a desynced frame that failed to decode)...
	b2 := &bytesBuffer{}
	if err := cat.Save(b2); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(strings.NewReader(b2.String()))
	if err != nil {
		t.Fatalf("reloading the updated catalog: %v", err)
	}
	// ...answer term queries across old and new files...
	for _, c := range []*Catalog{cat, reloaded} {
		if got := queryPaths(t, c, "annual report"); !equalStrings(got, []string{"a.txt", "c.txt"}) {
			t.Fatalf("annual report → %v", got)
		}
	}
	// ...and still reject phrases, since nothing positional was built.
	if _, err := cat.Query(context.Background(), Query{Text: `"annual report"`}); err == nil ||
		!strings.Contains(err.Error(), "without positions") {
		t.Fatalf("phrase on retrofit-attempted catalog: err = %v", err)
	}
}

func mustList(t *testing.T, fs *vfs.MemFS) []walk.FileRef {
	t.Helper()
	refs, err := walk.List(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

func withoutFilesContaining(files []string, tokens map[string][]string, word string) []string {
	var out []string
	for _, f := range files {
		has := false
		for _, w := range tokens[f] {
			if w == word {
				has = true
				break
			}
		}
		if !has {
			out = append(out, f)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bytesBuffer is a minimal io.Writer + String, avoiding a bytes import
// clash with the package's other tests.
type bytesBuffer struct{ b strings.Builder }

func (w *bytesBuffer) Write(p []byte) (int, error) { return w.b.Write(p) }
func (w *bytesBuffer) String() string              { return w.b.String() }
