package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders fixed-width text tables in the style of the paper's
// Tables 1–4. Columns are sized to their widest cell; the first column is
// left-aligned (row labels), the rest right-aligned (numbers).
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are kept
// and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is already a string.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		if s, ok := c.(string); ok {
			row[i] = s
		} else {
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}

	var total int
	for _, wd := range widths {
		total += wd
	}
	total += 3 * (cols - 1)

	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", maxInt(total, len(t.Title))))
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i == 0 {
				sb.WriteString(pad(cell, widths[i], false))
			} else {
				sb.WriteString(pad(cell, widths[i], true))
			}
			if i < cols-1 {
				sb.WriteString("   ")
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, width int, right bool) string {
	if len(s) >= width {
		return s
	}
	sp := strings.Repeat(" ", width-len(s))
	if right {
		return sp + s
	}
	return s + sp
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
