package search

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// fixture builds a small corpus as both a single index and three replicas
// (round-robin by file ID), with one term-free file (id 9).
//
//	0: cat dog          3: cat            6: dog fish
//	1: dog              4: cat dog fish   7: cat fish
//	2: fish             5: (bird)         8: bird cat
//	9: (empty)
func fixture() (*index.FileTable, *index.Index, []*index.Index) {
	docs := [][]string{
		{"cat", "dog"},
		{"dog"},
		{"fish"},
		{"cat"},
		{"cat", "dog", "fish"},
		{"bird"},
		{"dog", "fish"},
		{"cat", "fish"},
		{"bird", "cat"},
		{},
	}
	files := index.NewFileTable()
	single := index.New(0)
	replicas := []*index.Index{index.New(0), index.New(0), index.New(0)}
	for i, terms := range docs {
		id := files.Add("doc"+string(rune('0'+i))+".txt", int64(10*i), int64(i+1))
		single.AddBlock(id, terms, nil)
		replicas[i%3].AddBlock(id, terms, nil)
	}
	return files, single, replicas
}

func ids(hits []Hit) []postings.FileID {
	out := make([]postings.FileID, len(hits))
	for i, h := range hits {
		out[i] = h.File
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestParseAndString(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"cat", "cat"},
		{"cat dog", "(cat AND dog)"},
		{"cat AND dog", "(cat AND dog)"},
		{"cat OR dog", "(cat OR dog)"},
		{"NOT cat", "(NOT cat)"},
		{"-cat", "(NOT cat)"},
		{"cat -dog", "(cat AND (NOT dog))"},
		{"(cat OR dog) fish", "((cat OR dog) AND fish)"},
		{"Cat! DOG?", "(cat AND dog)"}, // normalization
		{"not cat", "(NOT cat)"},       // keyword case-insensitive
		{"e-mail", "(e AND mail)"},     // intra-word '-' splits like indexing
		{"cat OR dog OR fish", "(cat OR dog OR fish)"},
	}
	for _, tc := range tests {
		q, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if q.String() != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, q.String(), tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "(cat", "cat)", "OR cat", "cat OR", "NOT", "()", "!!!", "(", ")"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestQueryTerms(t *testing.T) {
	q := MustParse("cat dog OR (fish -cat) cat")
	want := []string{"cat", "dog", "fish"}
	got := append([]string{}, q.Terms()...)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v", got)
	}
	// Negated-only terms are not positive.
	q2 := MustParse("-draft cat")
	if len(q2.Terms()) != 1 || q2.Terms()[0] != "cat" {
		t.Errorf("Terms = %v", q2.Terms())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("(")
}

func TestSingleIndexQueries(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	tests := []struct {
		query string
		want  []postings.FileID
	}{
		{"cat", []postings.FileID{0, 3, 4, 7, 8}},
		{"cat dog", []postings.FileID{0, 4}},
		{"cat dog fish", []postings.FileID{4}},
		{"cat OR bird", []postings.FileID{0, 3, 4, 5, 7, 8}},
		{"fish -cat", []postings.FileID{2, 6}},
		{"NOT cat", []postings.FileID{1, 2, 5, 6, 9}},
		{"(cat OR dog) -fish", []postings.FileID{0, 1, 3, 8}},
		{"zebra", nil},
		{"cat zebra", nil},
		{"NOT (cat OR dog OR fish OR bird)", []postings.FileID{9}},
	}
	for _, tc := range tests {
		hits, err := e.SearchString(tc.query)
		if err != nil {
			t.Fatalf("%q: %v", tc.query, err)
		}
		if got := ids(hits); !reflect.DeepEqual(got, tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
			t.Errorf("%q = %v, want %v", tc.query, got, tc.want)
		}
	}
}

// TestReplicasMatchSingle is the key Implementation-3 property: every query
// returns identical results over the replica set and the joined index.
func TestReplicasMatchSingle(t *testing.T) {
	files, single, replicas := fixture()
	se := NewEngine(files, single)
	re := NewEngine(files, index.Partitions(replicas)...)
	queries := []string{
		"cat", "dog", "fish", "bird",
		"cat dog", "cat OR dog", "fish -cat", "NOT cat",
		"NOT (cat OR dog OR fish OR bird)",
		"(cat OR bird) (dog OR fish)",
		"zebra", "cat -cat",
	}
	for _, q := range queries {
		sh, err := se.SearchString(q)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := re.SearchString(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids(sh), ids(rh)) {
			t.Errorf("%q: single %v, replicas %v", q, ids(sh), ids(rh))
		}
	}
}

func TestSequentialEqualsParallel(t *testing.T) {
	files, _, replicas := fixture()
	par := NewEngine(files, index.Partitions(replicas)...)
	seq := NewEngine(files, index.Partitions(replicas)...)
	seq.Parallel = false
	for _, q := range []string{"cat", "NOT dog", "cat OR fish"} {
		a, _ := par.SearchString(q)
		b, _ := seq.SearchString(q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%q: parallel and sequential disagree", q)
		}
	}
}

func TestScoring(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	hits, err := e.SearchString("cat OR dog OR fish")
	if err != nil {
		t.Fatal(err)
	}
	// doc4 has all three terms: it must rank first with score 3.
	if hits[0].File != 4 || hits[0].Score != 3 {
		t.Errorf("top hit = %+v", hits[0])
	}
	// Scores are non-increasing.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("scores out of order at %d: %+v", i, hits)
		}
	}
	// Conjunctions score uniformly: every hit has both terms.
	hits2, _ := e.SearchString("cat dog")
	for _, h := range hits2 {
		if h.Score != 2 {
			t.Errorf("conjunction hit score = %g", h.Score)
		}
	}
}

func TestHitPaths(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	hits, _ := e.SearchString("bird")
	for _, h := range hits {
		if h.Path != files.Path(h.File) {
			t.Errorf("hit path %q != table path %q", h.Path, files.Path(h.File))
		}
	}
}

func TestEngineIndices(t *testing.T) {
	files, single, replicas := fixture()
	if NewEngine(files, single).Indices() != 1 {
		t.Error("single engine Indices != 1")
	}
	if NewEngine(files, index.Partitions(replicas)...).Indices() != 3 {
		t.Error("replica engine Indices != 3")
	}
}

func TestSearchStringParseError(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	if _, err := e.SearchString("((("); err == nil {
		t.Error("bad query accepted")
	}
}

// Property: for random mini-corpora, replica evaluation equals single-index
// evaluation for a family of generated queries.
func TestReplicaEquivalenceQuick(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	queries := []string{
		"alpha", "alpha beta", "alpha OR beta", "-alpha",
		"alpha -beta", "(alpha OR beta) gamma", "NOT (alpha OR beta)",
		"alpha OR beta OR gamma OR delta",
	}
	if err := quick.Check(func(docBits []uint8, nRep uint8) bool {
		if len(docBits) == 0 {
			return true
		}
		if len(docBits) > 24 {
			docBits = docBits[:24]
		}
		r := int(nRep%4) + 2
		files := index.NewFileTable()
		single := index.New(0)
		replicas := make([]*index.Index, r)
		for i := range replicas {
			replicas[i] = index.New(0)
		}
		for i, bits := range docBits {
			var terms []string
			for b, w := range vocab {
				if bits&(1<<b) != 0 {
					terms = append(terms, w)
				}
			}
			id := files.Add("f", int64(i), int64(i+1))
			single.AddBlock(id, terms, nil)
			replicas[i%r].AddBlock(id, terms, nil)
		}
		se := NewEngine(files, single)
		re := NewEngine(files, index.Partitions(replicas)...)
		for _, q := range queries {
			a, err1 := se.SearchString(q)
			b, err2 := re.SearchString(q)
			if err1 != nil || err2 != nil {
				return false
			}
			if !reflect.DeepEqual(ids(a), ids(b)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearchSingle(b *testing.B) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	q := MustParse("cat OR dog OR fish")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q)
	}
}

func BenchmarkSearchReplicasParallel(b *testing.B) {
	files, _, replicas := fixture()
	e := NewEngine(files, index.Partitions(replicas)...)
	q := MustParse("cat OR dog OR fish")
	e.Search(q) // warm universes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q)
	}
}

func TestMergeRanked(t *testing.T) {
	h := func(file postings.FileID, score float64) Hit {
		return Hit{File: file, Score: score}
	}
	cases := []struct {
		name  string
		parts [][]Hit
		want  []Hit
	}{
		{"empty", nil, nil},
		{"all-empty", [][]Hit{nil, {}, nil}, nil},
		{"single", [][]Hit{{h(1, 2), h(3, 1)}}, []Hit{h(1, 2), h(3, 1)}},
		{
			"interleaved",
			[][]Hit{
				{h(2, 3), h(0, 1)},
				{h(1, 3), h(4, 2)},
				{h(3, 3)},
			},
			[]Hit{h(1, 3), h(2, 3), h(3, 3), h(4, 2), h(0, 1)},
		},
		{
			"skewed-lengths",
			[][]Hit{
				{h(0, 5), h(1, 4), h(2, 3), h(3, 2), h(4, 1)},
				{h(5, 3)},
			},
			[]Hit{h(0, 5), h(1, 4), h(2, 3), h(5, 3), h(3, 2), h(4, 1)},
		},
	}
	for _, tc := range cases {
		if got := mergeRanked(tc.parts); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: mergeRanked = %v, want %v", tc.name, got, tc.want)
		}
	}
}
