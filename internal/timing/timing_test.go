package timing

import (
	"sync"
	"testing"
	"time"
)

func TestEmptyWindow(t *testing.T) {
	w := NewWindow(8)
	if _, ok := w.Snapshot(); ok {
		t.Fatal("empty window reported a snapshot")
	}
	if got := w.P95(42 * time.Millisecond); got != 42*time.Millisecond {
		t.Fatalf("empty P95 = %v, want fallback", got)
	}
}

func TestOrderStatistics(t *testing.T) {
	w := NewWindow(100)
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	s, ok := w.Snapshot()
	if !ok {
		t.Fatal("no snapshot")
	}
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Min != 1*time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Nearest-rank on 100 sorted values 1..100ms: median index 49 -> 50ms,
	// p95 index 94 -> 95ms.
	if s.Median != 50*time.Millisecond {
		t.Fatalf("Median = %v, want 50ms", s.Median)
	}
	if s.P95 != 95*time.Millisecond {
		t.Fatalf("P95 = %v, want 95ms", s.P95)
	}
}

func TestRingDisplacement(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 10; i++ {
		w.Observe(time.Duration(i) * time.Second)
	}
	s, ok := w.Snapshot()
	if !ok {
		t.Fatal("no snapshot")
	}
	if s.Count != 10 {
		t.Fatalf("Count = %d, want lifetime 10", s.Count)
	}
	// Window holds the last 4 observations: 7..10s.
	if s.Min != 7*time.Second || s.Max != 10*time.Second {
		t.Fatalf("window holds %v..%v, want 7s..10s", s.Min, s.Max)
	}
}

// TestSnapshotDoesNotAllocate pins the scratch-buffer contract: a steady
// state of Observe+Snapshot runs allocation-free, because Snapshot sorts
// into the buffer allocated once by NewWindow.
func TestSnapshotDoesNotAllocate(t *testing.T) {
	w := NewWindow(DefaultWindowSize)
	for i := 0; i < DefaultWindowSize*2; i++ {
		w.Observe(time.Duration(i) * time.Microsecond)
	}
	allocs := testing.AllocsPerRun(100, func() {
		w.Observe(time.Millisecond)
		if _, ok := w.Snapshot(); !ok {
			t.Fatal("no snapshot")
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe+Snapshot allocates %v objects per call, want 0", allocs)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	w := NewWindow(DefaultWindowSize)
	for i := 0; i < DefaultWindowSize; i++ {
		w.Observe(time.Duration(i%37) * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := w.Snapshot(); !ok {
			b.Fatal("no snapshot")
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	w := NewWindow(0) // default size
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Observe(time.Millisecond)
				w.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := w.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}
