package search

import (
	"errors"
	"testing"

	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

func TestParsePhrase(t *testing.T) {
	for text, want := range map[string]string{
		`"annual report"`:          `"annual report"`,
		`"Annual-Report!"`:         `"annual report"`,
		`"annual report" -draft`:   `("annual report" AND (NOT draft))`,
		`cat "annual report"`:      `(cat AND "annual report")`,
		`"annual report" OR draft`: `("annual report" OR draft)`,
		`"cat"`:                    `cat`, // one-word phrase collapses
		`("a b") c`:                `("a b" AND c)`,
	} {
		q, err := Parse(text)
		if err != nil {
			t.Errorf("%s: %v", text, err)
			continue
		}
		if q.String() != want {
			t.Errorf("%s → %s, want %s", text, q.String(), want)
		}
		// Canonical forms re-parse to themselves.
		again, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse %s: %v", q.String(), err)
		} else if again.String() != q.String() {
			t.Errorf("canonical form unstable: %s → %s", q.String(), again.String())
		}
	}
}

func TestParsePhraseErrors(t *testing.T) {
	for _, text := range []string{`"annual report`, `"`, `"!!!"`, `""`, `cat ""`} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%q parsed without error", text)
		}
	}
}

func TestPhrasePositiveTerms(t *testing.T) {
	q := MustParse(`"annual report" cat -"bad press"`)
	want := []string{"annual", "report", "cat"}
	got := q.Terms()
	if len(got) != len(want) {
		t.Fatalf("positive terms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("positive terms = %v, want %v", got, want)
		}
	}
}

// positionalEngine indexes the given files positionally into n partitions
// (round-robin by file, mimicking replica distribution).
func positionalEngine(t *testing.T, files map[string]string, parts int) *Engine {
	t.Helper()
	fs := vfs.NewMemFS()
	table := index.NewFileTable()
	indices := make([]*index.Index, parts)
	for i := range indices {
		indices[i] = index.New(0)
		indices[i].SetPositional()
	}
	ex := extract.New(fs, extract.Options{Tokenize: tokenize.Default, Positions: true})
	i := 0
	for name, content := range files {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
		id := table.Add(name, int64(len(content)), 1)
		block, err := ex.File(name, id)
		if err != nil {
			t.Fatal(err)
		}
		indices[i%parts].AddBlockPositional(block.File, block.Terms, block.Positions)
		i++
	}
	return NewEngine(table, index.Partitions(indices)...)
}

func phraseCorpus() map[string]string {
	return map[string]string{
		"a.txt": "the annual report was filed",
		"b.txt": "report annual mixup",
		"c.txt": "annual report draft annual report",
		"d.txt": "an annual summary, then a report",
		"e.txt": "na na na batman",
	}
}

func hitPaths(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Path
	}
	return out
}

func TestPhraseSearch(t *testing.T) {
	for _, parts := range []int{1, 3} {
		e := positionalEngine(t, phraseCorpus(), parts)
		for query, want := range map[string][]string{
			`"annual report"`:        {"a.txt", "c.txt"},
			`"annual report" -draft`: {"a.txt"},
			`"report annual"`:        {"b.txt"},
			`"na na na"`:             {"e.txt"},
			`"na na na na"`:          {},
			`"annual filed"`:         {}, // present, not adjacent
			`"missing phrase"`:       {},
			`"annual report" OR summary`: {
				"a.txt", "c.txt", "d.txt",
			},
		} {
			hits, err := e.SearchString(query)
			if err != nil {
				t.Fatalf("parts=%d %s: %v", parts, query, err)
			}
			got := map[string]bool{}
			for _, p := range hitPaths(hits) {
				got[p] = true
			}
			if len(got) != len(want) {
				t.Errorf("parts=%d %s → %v, want %v", parts, query, hitPaths(hits), want)
				continue
			}
			for _, p := range want {
				if !got[p] {
					t.Errorf("parts=%d %s missing %s (got %v)", parts, query, p, hitPaths(hits))
				}
			}
		}
	}
}

func TestPhraseRepeatedWord(t *testing.T) {
	e := positionalEngine(t, map[string]string{
		"x.txt": "well well well then",
		"y.txt": "well then well",
	}, 1)
	hits, err := e.SearchString(`"well well"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := hitPaths(hits); len(got) != 1 || got[0] != "x.txt" {
		t.Fatalf(`"well well" → %v`, got)
	}
}

func TestPhraseWithoutPositions(t *testing.T) {
	// A boolean (position-free) index answers term queries but rejects
	// phrases with ErrNoPositions instead of guessing adjacency.
	table := index.NewFileTable()
	ix := index.New(0)
	id := table.Add("a.txt", 1, 1)
	ix.AddBlock(id, []string{"annual", "report"}, nil)
	e := NewEngine(table, ix)

	if hits, err := e.SearchString("annual report"); err != nil || len(hits) != 1 {
		t.Fatalf("term query: %v, %v", hits, err)
	}
	// Every phrase query errors on a position-free partition, regardless
	// of term order, surrounding operators, or whether the phrase's terms
	// even exist — the check runs before evaluation, so AND's
	// empty-accumulator short-circuit cannot swallow it.
	for _, q := range []string{
		`"annual report"`,
		`zzz "annual report"`, // zzz matches nothing; phrase error must still win
		`"missing words"`,
		`annual OR "missing words"`,
	} {
		_, err := e.Query(t.Context(), Request{Query: MustParse(q)})
		if !errors.Is(err, ErrNoPositions) {
			t.Fatalf("%s on boolean index: err = %v, want ErrNoPositions", q, err)
		}
	}
	// On a positional index an absent phrase is simply no hits.
	pe := positionalEngine(t, map[string]string{"a.txt": "annual report"}, 1)
	if resp, err := pe.Query(t.Context(), Request{Query: MustParse(`zzz "missing words"`)}); err != nil || resp.Total != 0 {
		t.Fatalf("absent phrase on positional index: %v, %v", resp, err)
	}
}

func TestPhraseRankingUsesTermFrequencies(t *testing.T) {
	e := positionalEngine(t, phraseCorpus(), 2)
	resp, err := e.Query(t.Context(), Request{Query: MustParse(`"annual report"`), Ranking: RankTF})
	if err != nil {
		t.Fatal(err)
	}
	// c.txt contains both words twice (TF score 4), a.txt once each (2).
	if len(resp.Hits) != 2 || resp.Hits[0].Path != "c.txt" || resp.Hits[0].Score != 4 {
		t.Fatalf("TF-ranked phrase hits = %+v", resp.Hits)
	}
}
