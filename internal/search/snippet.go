package search

import (
	"sort"
	"strings"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// Span is a half-open byte range [Start, End) into a Snippet's Text.
type Span struct {
	Start int
	End   int
}

// Snippet is a hit's context window, reconstructed from the positional
// index: the tokens around the hit's earliest matched position, in token
// order, joined by single spaces. The index stores normalized terms, not
// raw file bytes, so Text shows the indexed (lower-cased, punctuation-
// stripped) form of the window — enough to see the match in context
// without re-reading the file, which a loaded catalog may not even have
// access to. Highlights lists the byte spans of Text occupied by tokens
// that matched the query's positive terms or prefix operators, ascending.
type Snippet struct {
	Text       string
	Highlights []Span
}

// snippetRadius is the context half-window: how many token positions on
// each side of the anchor the snippet keeps.
const snippetRadius = 5

// positionsOf returns the occurrence positions of file id in l, or nil if
// the list is absent, position-free, or does not contain id.
func positionsOf(l *postings.List, id postings.FileID) []uint32 {
	if l == nil || !l.HasPositions() {
		return nil
	}
	ids := l.IDs()
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i == len(ids) || ids[i] != id {
		return nil
	}
	return l.PositionsAt(i)
}

// buildSnippets fills in the Snippet of each hit from one partition's
// positional postings (every hit's positions live in its owning
// partition). Per hit, the anchor is the smallest position at which any
// positive term or scored prefix occurs in the file; the window spans
// snippetRadius tokens to each side, and one scan of the partition's term
// dictionary recovers the window's tokens by position. Hits with no
// anchored match — pure NOT or phrase-free matches of negated-only
// structure — keep a nil Snippet.
func buildSnippets(ix index.Partition, q *Query, prefixes []*postings.List, hits []Hit) {
	if len(hits) == 0 {
		return
	}

	// Anchor pass: cheap per-hit lookups in the matched terms' own lists.
	lo := make([]uint32, len(hits))
	hi := make([]uint32, len(hits))
	anchored := make([]bool, len(hits))
	anchorOne := func(i int, l *postings.List) {
		pos := positionsOf(l, hits[i].File)
		if len(pos) == 0 {
			return
		}
		if !anchored[i] || pos[0] < lo[i] {
			anchored[i] = true
			lo[i] = pos[0]
		}
	}
	for i := range hits {
		for _, term := range q.positive {
			anchorOne(i, ix.Lookup(term))
		}
		for _, ord := range q.scorePrefixes {
			anchorOne(i, prefixes[ord])
		}
		if anchored[i] {
			anchor := lo[i]
			if anchor > snippetRadius {
				lo[i] = anchor - snippetRadius
			} else {
				lo[i] = 0
			}
			hi[i] = anchor + snippetRadius
		}
	}

	// Window pass: one dictionary scan recovers (position → term) for
	// every anchored hit's window. Each emitted token position belongs to
	// exactly one term, so the windows reassemble without conflicts.
	type snipTok struct {
		pos     uint32
		term    string
		matched bool
	}
	toks := make([][]snipTok, len(hits))
	positiveSet := make(map[string]bool, len(q.positive))
	for _, t := range q.positive {
		positiveSet[t] = true
	}
	termMatches := func(term string) bool {
		if positiveSet[term] {
			return true
		}
		for _, ord := range q.scorePrefixes {
			if strings.HasPrefix(term, q.prefixes[ord]) {
				return true
			}
		}
		return false
	}
	// The only pass in the query stack that touches every term's list.
	// On a lazy partition Range decodes (and caches) every block;
	// snippets on lazy catalogs trade that cost for not holding the
	// index in memory.
	ix.Range(func(term string, l *postings.List) bool {
		if !l.HasPositions() {
			return true
		}
		var matched, matchChecked bool
		for i := range hits {
			if !anchored[i] {
				continue
			}
			pos := positionsOf(l, hits[i].File)
			for _, p := range pos {
				if p < lo[i] || p > hi[i] {
					continue
				}
				if !matchChecked {
					matched, matchChecked = termMatches(term), true
				}
				toks[i] = append(toks[i], snipTok{pos: p, term: term, matched: matched})
			}
		}
		return true
	})

	// Assembly pass: order each window by position, join, and record the
	// byte spans of the matched tokens.
	for i := range hits {
		if !anchored[i] || len(toks[i]) == 0 {
			continue
		}
		w := toks[i]
		sort.Slice(w, func(a, b int) bool { return w[a].pos < w[b].pos })
		var b strings.Builder
		var spans []Span
		for j, tk := range w {
			if j > 0 {
				b.WriteByte(' ')
			}
			start := b.Len()
			b.WriteString(tk.term)
			if tk.matched {
				spans = append(spans, Span{Start: start, End: b.Len()})
			}
		}
		hits[i].Snippet = &Snippet{Text: b.String(), Highlights: spans}
	}
}
