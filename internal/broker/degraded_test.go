package broker

import (
	"bufio"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeMetrics fetches /metrics and parses every sample line into a map
// from series (name plus label set, verbatim) to value.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBrokerDegradedGroup pins the whole failure surface when an entire
// replica group goes dark: /search degrades to an explicit fleet error
// (not a hang, not a silent partial answer), /stats counts the failover
// attempts and errors, /healthz flips to 503 naming the dark group, and
// /metrics exposes the same counters in Prometheus text format.
func TestBrokerDegradedGroup(t *testing.T) {
	dir := buildDir(t, 60, false)
	w0 := startWorker(t, dir, []int{0, 2})
	w1a := startWorker(t, dir, []int{1, 3})
	w1b := startWorker(t, dir, []int{1, 3})
	b, bts := newTestBroker(t, [][]string{{w0.URL}, {w1a.URL, w1b.URL}}, 0)

	// Kill every replica of group 1 after topology verification.
	w1a.Close()
	w1b.Close()

	// A query cannot be answered: half the shards are unreachable. The
	// broker tries both replicas (a failover) and then surfaces a 502 —
	// merging only group 0's partials would silently drop documents.
	status, body := getJSON[map[string]any](t, bts.URL+"/search?q=report&limit=5")
	if status != http.StatusBadGateway {
		t.Fatalf("/search with a dark group = %d (%v), want 502", status, body)
	}
	if msg, _ := body["error"].(string); msg == "" {
		t.Fatalf("/search error body carries no message: %v", body)
	}
	if b.failovers.Load() == 0 {
		t.Fatal("no failover recorded while both replicas of the group were tried")
	}
	if b.queryErrors.Load() == 0 {
		t.Fatal("query error not counted")
	}

	// /stats surfaces the same counters.
	stStatus, st := getJSON[StatsResponse](t, bts.URL+"/stats")
	if stStatus != http.StatusOK {
		t.Fatalf("/stats status %d", stStatus)
	}
	if st.Failovers == 0 || st.QueryErrors == 0 {
		t.Fatalf("/stats failovers=%d query_errors=%d, want both > 0", st.Failovers, st.QueryErrors)
	}

	// The health sweep notices both replicas are gone; /healthz then
	// reports degraded and names the dark group.
	b.healthSweep(context.Background(), time.Second)
	hStatus, hz := getJSON[map[string]any](t, bts.URL+"/healthz")
	if hStatus != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d with a dark group, want 503", hStatus)
	}
	if hz["status"] != "degraded" {
		t.Fatalf(`/healthz status = %v, want "degraded"`, hz["status"])
	}
	dark, _ := hz["dark_groups"].([]any)
	if len(dark) != 1 || dark[0] != float64(1) {
		t.Fatalf("/healthz dark_groups = %v, want [1]", hz["dark_groups"])
	}

	// /metrics agrees with /stats and the health sweep.
	m := scrapeMetrics(t, bts.URL)
	if m["ds_failovers_total"] == 0 {
		t.Error("ds_failovers_total did not advance")
	}
	if m["ds_query_errors_total"] == 0 {
		t.Error("ds_query_errors_total did not advance")
	}
	if got := m[`ds_requests_total{endpoint="search",outcome="error"}`]; got == 0 {
		t.Error(`ds_requests_total{endpoint="search",outcome="error"} did not advance`)
	}
	if got := m["ds_group_1_healthy_replicas"]; got != 0 {
		t.Errorf("ds_group_1_healthy_replicas = %v, want 0", got)
	}
	if got := m["ds_group_0_healthy_replicas"]; got != 1 {
		t.Errorf("ds_group_0_healthy_replicas = %v, want 1", got)
	}

	// Group 0's survivor keeps the rest of the surface alive: suggest
	// still fails (needs every group) but stats and metrics never do.
	if sStatus, _ := getJSON[map[string]any](t, bts.URL+"/suggest?q=re"); sStatus == http.StatusOK {
		t.Fatal("/suggest succeeded with a dark group, want an error")
	}
}
