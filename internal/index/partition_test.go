package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"desksearch/internal/postings"
)

// TestSortedTermIteration pins the Partition iteration contract the lazy
// backend relies on: Terms, Range, and TermsFrom walk the dictionary in
// ascending order, across interleaved mutation and removal, so prefix
// expansion and suggestions are deterministic on every backend.
func TestSortedTermIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := New(8)
	want := map[string]bool{}
	for i := 0; i < 300; i++ {
		term := fmt.Sprintf("t%02d", rng.Intn(60))
		ix.AddTermOccurrence(term, postings.FileID(i))
		want[term] = true

		if i%37 == 0 { // interleave iteration with mutation
			terms := ix.Terms(nil)
			if !sort.StringsAreSorted(terms) {
				t.Fatalf("Terms unsorted after %d adds: %v", i+1, terms)
			}
		}
	}

	terms := ix.Terms(nil)
	if len(terms) != len(want) {
		t.Fatalf("Terms has %d entries, want %d", len(terms), len(want))
	}
	if !sort.StringsAreSorted(terms) {
		t.Fatalf("Terms unsorted: %v", terms)
	}

	var ranged []string
	ix.Range(func(term string, l *postings.List) bool {
		ranged = append(ranged, term)
		return true
	})
	if fmt.Sprint(ranged) != fmt.Sprint(terms) {
		t.Fatalf("Range order %v != Terms order %v", ranged, terms)
	}

	// TermsFrom seeks: from a term mid-dictionary, and from a prefix that
	// is not itself a term.
	mid := terms[len(terms)/2]
	var fromMid []string
	ix.TermsFrom(mid, func(term string, df int) bool {
		if df != ix.DocFreq(term) {
			t.Fatalf("TermsFrom df for %q = %d, want %d", term, df, ix.DocFreq(term))
		}
		fromMid = append(fromMid, term)
		return true
	})
	if fmt.Sprint(fromMid) != fmt.Sprint(terms[len(terms)/2:]) {
		t.Fatalf("TermsFrom(%q) = %v, want suffix %v", mid, fromMid, terms[len(terms)/2:])
	}
	var first string
	ix.TermsFrom("t", func(term string, df int) bool { first = term; return false })
	if first != terms[0] {
		t.Fatalf("TermsFrom(\"t\") starts at %q, want %q", first, terms[0])
	}

	// Removal keeps iteration sorted and drops emptied terms.
	all := ix.Docs().IDs()
	ix.RemoveFiles(postings.FromSortedIDs(all[:len(all)/2]))
	after := ix.Terms(nil)
	if !sort.StringsAreSorted(after) {
		t.Fatalf("Terms unsorted after RemoveFiles: %v", after)
	}
	for _, term := range after {
		if ix.Lookup(term).Len() == 0 {
			t.Fatalf("emptied term %q still listed", term)
		}
	}
}

// TestPartitionsAdapter checks the []*Index → []Partition bridge.
func TestPartitionsAdapter(t *testing.T) {
	a, b := New(4), New(4)
	a.AddTermOccurrence("alpha", 1)
	b.AddTermOccurrence("beta", 2)
	parts := Partitions([]*Index{a, b})
	if len(parts) != 2 {
		t.Fatalf("Partitions len %d, want 2", len(parts))
	}
	if parts[0].DocFreq("alpha") != 1 || parts[1].DocFreq("beta") != 1 {
		t.Fatal("adapter does not expose the underlying indices")
	}
	if parts[0].ResidentBytes() <= 0 {
		t.Fatal("ResidentBytes reported nothing for a non-empty index")
	}
	// Docs must be a fresh list the caller may mutate.
	d := parts[0].Docs()
	d.Merge(postings.FromSortedIDs([]postings.FileID{9}))
	if parts[0].Docs().Len() != 1 {
		t.Fatal("mutating the returned Docs list leaked into the index")
	}
}
