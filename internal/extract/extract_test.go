package extract

import (
	"errors"
	"sort"
	"testing"

	"desksearch/internal/postings"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

func testFS(t *testing.T) *vfs.MemFS {
	t.Helper()
	fs := vfs.NewMemFS()
	files := map[string]string{
		"plain.txt": "the cat and the dog and the cat",
		"page.html": "<html><body><p>web Words</p><script>hidden()</script></body></html>",
		"memo.wp":   ".wp 1.0\n.ti Memo Title\nbody words body\n",
		"empty.txt": "",
	}
	for name, content := range files {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func sorted(ss []string) []string {
	out := append([]string{}, ss...)
	sort.Strings(out)
	return out
}

func TestFileDeduplicates(t *testing.T) {
	e := New(testFS(t), Options{Tokenize: tokenize.Default})
	block, err := e.File("plain.txt", 7)
	if err != nil {
		t.Fatal(err)
	}
	if block.File != 7 {
		t.Errorf("File = %d", block.File)
	}
	want := []string{"and", "cat", "dog", "the"}
	if got := sorted(block.Terms); len(got) != 4 || got[0] != "and" || got[3] != "the" {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestFileEmpty(t *testing.T) {
	e := New(testFS(t), Options{Tokenize: tokenize.Default})
	block, err := e.File("empty.txt", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Terms) != 0 {
		t.Errorf("empty file produced terms %v", block.Terms)
	}
}

func TestFileReuseDoesNotLeakTerms(t *testing.T) {
	// The internal hash set is reused; terms from file A must not appear in
	// file B's block.
	e := New(testFS(t), Options{Tokenize: tokenize.Default})
	if _, err := e.File("plain.txt", 0); err != nil {
		t.Fatal(err)
	}
	block, err := e.File("memo.wp", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range block.Terms {
		if term == "cat" || term == "dog" {
			t.Errorf("term %q leaked from previous file", term)
		}
	}
}

func TestFileWithFormats(t *testing.T) {
	e := New(testFS(t), Options{Tokenize: tokenize.Default, Formats: true})
	block, err := e.File("page.html", 0)
	if err != nil {
		t.Fatal(err)
	}
	terms := map[string]bool{}
	for _, term := range block.Terms {
		terms[term] = true
	}
	if !terms["web"] || !terms["words"] {
		t.Errorf("content terms missing: %v", block.Terms)
	}
	if terms["hidden"] || terms["script"] {
		t.Errorf("markup leaked into terms: %v", block.Terms)
	}
}

func TestFileWithoutFormatsIndexesMarkup(t *testing.T) {
	// Formats off (the paper's setup): markup is scanned literally.
	e := New(testFS(t), Options{Tokenize: tokenize.Default})
	block, err := e.File("page.html", 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, term := range block.Terms {
		if term == "script" {
			found = true
		}
	}
	if !found {
		t.Error("markup should be indexed when Formats is off")
	}
}

func TestFileMissing(t *testing.T) {
	e := New(testFS(t), Options{Tokenize: tokenize.Default})
	if _, err := e.File("nope.txt", 0); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestScanOnlyCountsOccurrences(t *testing.T) {
	e := New(testFS(t), Options{Tokenize: tokenize.Default})
	n, err := e.ScanOnly("plain.txt")
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("ScanOnly = %d, want 8", n)
	}
	if _, err := e.ScanOnly("nope"); err == nil {
		t.Error("missing file not reported")
	}
}

func TestReadOnlyCountsBytes(t *testing.T) {
	e := New(testFS(t), Options{})
	n, err := e.ReadOnly("plain.txt")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("the cat and the dog and the cat")) {
		t.Errorf("ReadOnly = %d", n)
	}
	if _, err := e.ReadOnly("nope"); err == nil {
		t.Error("missing file not reported")
	}
}

func TestOccurrencesKeepsDuplicates(t *testing.T) {
	e := New(testFS(t), Options{Tokenize: tokenize.Default})
	var got []string
	err := e.Occurrences("plain.txt", 3, func(term string, id postings.FileID) {
		if id != 3 {
			t.Errorf("id = %d", id)
		}
		got = append(got, term)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Errorf("got %d occurrences, want 8: %v", len(got), got)
	}
	if _, err := e.File("plain.txt", 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Occurrences("nope", 0, func(string, postings.FileID) {}); err == nil {
		t.Error("missing file not reported")
	}
}

func BenchmarkFile(b *testing.B) {
	fs := vfs.NewMemFS()
	body := make([]byte, 0, 64<<10)
	for len(body) < 60<<10 {
		body = append(body, "lorem ipsum dolor sit amet consectetur adipiscing elit sed do "...)
	}
	fs.WriteFile("doc.txt", body)
	e := New(fs, Options{Tokenize: tokenize.Default})
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.File("doc.txt", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFileCounts: File reports each term's occurrence count alongside the
// duplicate-free term block.
func TestFileCounts(t *testing.T) {
	fs := testFS(t)
	e := New(fs, Options{Tokenize: tokenize.Default})
	block, err := e.File("plain.txt", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Counts) != len(block.Terms) {
		t.Fatalf("counts %d != terms %d", len(block.Counts), len(block.Terms))
	}
	want := map[string]uint32{"the": 3, "cat": 2, "and": 2, "dog": 1}
	for i, term := range block.Terms {
		if block.Counts[i] != want[term] {
			t.Errorf("count(%q) = %d, want %d", term, block.Counts[i], want[term])
		}
	}
}

// TestFilePositions: with Options.Positions the extractor records each
// term's occurrence positions as emission ordinals; counts stay implicit
// (len of the position run).
func TestFilePositions(t *testing.T) {
	fs := testFS(t)
	e := New(fs, Options{Tokenize: tokenize.Default, Positions: true})
	block, err := e.File("plain.txt", 7)
	if err != nil {
		t.Fatal(err)
	}
	if block.Counts != nil {
		t.Error("positional block also carries counts")
	}
	if len(block.Positions) != len(block.Terms) {
		t.Fatalf("positions %d != terms %d", len(block.Positions), len(block.Terms))
	}
	// "the cat and the dog and the cat" → ordinals 0..7.
	want := map[string][]uint32{"the": {0, 3, 6}, "cat": {1, 7}, "and": {2, 5}, "dog": {4}}
	for i, term := range block.Terms {
		w := want[term]
		if len(block.Positions[i]) != len(w) {
			t.Fatalf("positions(%q) = %v, want %v", term, block.Positions[i], w)
		}
		for k := range w {
			if block.Positions[i][k] != w[k] {
				t.Fatalf("positions(%q) = %v, want %v", term, block.Positions[i], w)
			}
		}
	}
}

// TestFilePositionsSkipDropped: dropped terms (stopwords) do not advance
// the position counter, so phrases still match across them.
func TestFilePositionsSkipDropped(t *testing.T) {
	fs := testFS(t)
	tok := tokenize.Default
	tok.Stopwords = tokenize.NewStopSet([]string{"the", "and"})
	e := New(fs, Options{Tokenize: tok, Positions: true})
	block, err := e.File("plain.txt", 7)
	if err != nil {
		t.Fatal(err)
	}
	// "the cat and the dog and the cat" minus stopwords → cat dog cat.
	want := map[string][]uint32{"cat": {0, 2}, "dog": {1}}
	if len(block.Terms) != len(want) {
		t.Fatalf("terms = %v", block.Terms)
	}
	for i, term := range block.Terms {
		w := want[term]
		for k := range w {
			if block.Positions[i][k] != w[k] {
				t.Fatalf("positions(%q) = %v, want %v", term, block.Positions[i], w)
			}
		}
	}
}
