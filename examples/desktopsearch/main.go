// Desktopsearch: the full workflow of a desktop search tool on a real
// directory — generate a realistic mixed-format corpus on disk, compare
// the paper's three pipeline implementations on it, persist the index,
// reload it, and answer queries.
//
// Run with:
//
//	go run ./examples/desktopsearch
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"desksearch"
	"desksearch/internal/corpus"
	"desksearch/internal/vfs"
)

func main() {
	dir, err := os.MkdirTemp("", "desksearch-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A scaled-down version of the paper's benchmark, with HTML and WP
	// files mixed in to exercise format extraction.
	spec := corpus.PaperSpec().Scale(1.0 / 512)
	spec.HTMLFraction = 0.15
	spec.WPFraction = 0.10
	stats, err := corpus.Generate(spec, vfs.NewOSFS(dir))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d files, %.1f MB under %s\n\n",
		len(stats.Files), float64(stats.TotalBytes)/(1<<20), dir)

	// Index the same tree with all three implementations; they must agree.
	impls := []struct {
		name string
		impl desksearch.Implementation
	}{
		{"Implementation 1 (shared, locked index)", desksearch.SharedIndex},
		{"Implementation 2 (replicate + join)", desksearch.ReplicatedJoin},
		{"Implementation 3 (replicate, no join)", desksearch.ReplicatedSearch},
	}
	// Query the corpus's three most frequent words (the generator draws
	// terms Zipf-distributed, so low vocabulary ranks dominate).
	vocab := corpus.BuildVocabulary(spec)
	query := fmt.Sprintf("%s OR %s OR %s", vocab[0], vocab[1], vocab[2])
	// A desktop UI wants one page of results, not the full hit list: ask
	// for the top 10 and let Response.Total report the rest. Parsing once
	// up front (ParseQuery) skips re-parsing per catalog.
	expr, err := desksearch.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	page := desksearch.Query{Expr: expr, Limit: 10}
	ctx := context.Background()
	var firstCount = -1
	var keep *desksearch.Catalog
	for _, tc := range impls {
		cat, err := desksearch.IndexDir(dir, desksearch.Options{
			Implementation: tc.impl,
			Extractors:     4, Updaters: 2, Joiners: 1,
			Formats: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		_, eu, join, _, total := cat.Timings()
		resp, err := cat.Query(ctx, page)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %4d hits   extract+update %6.3fs  join %6.3fs  total %6.3fs\n",
			tc.name, resp.Total, eu, join, total)
		if firstCount < 0 {
			firstCount = resp.Total
		} else if resp.Total != firstCount {
			log.Fatalf("implementations disagree: %d vs %d hits", resp.Total, firstCount)
		}
		keep = cat
	}

	// Persist and reload, as a desktop tool does between sessions.
	idxPath := filepath.Join(dir, "desksearch.idx")
	f, err := os.Create(idxPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := keep.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(idxPath)
	fmt.Printf("\nindex persisted: %s (%.1f KB)\n", idxPath, float64(info.Size())/1024)

	f, err = os.Open(idxPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := desksearch.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	resp, err := loaded.Query(ctx, page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded index answers %q with %d hits (expected %d)\n", query, resp.Total, firstCount)
}
