// Package experiments regenerates the paper's evaluation: Table 1
// (sequential stage times) and Tables 2–4 (best configurations, execution
// times, and speed-ups of the three implementations on the three
// platforms), rendered side by side with the paper's published numbers.
package experiments

import (
	"fmt"

	"desksearch/internal/core"
	"desksearch/internal/platform"
)

// PaperStageRow is one platform's row of the paper's Table 1 (seconds).
type PaperStageRow struct {
	Platform                            string
	Filename, Read, ReadExtract, Insert float64
}

// PaperTable1 transcribes the paper's Table 1: "Execution times for
// sequential index generation".
var PaperTable1 = []PaperStageRow{
	{Platform: "4-core platform", Filename: 5.0, Read: 77.0, ReadExtract: 88.0, Insert: 22.0},
	{Platform: "8-core platform", Filename: 4.0, Read: 47.0, ReadExtract: 61.0, Insert: 29.0},
	{Platform: "32-core platform", Filename: 5.0, Read: 73.0, ReadExtract: 80.0, Insert: 28.0},
}

// PaperCell is one implementation's row in the paper's Tables 2–4.
type PaperCell struct {
	// Tuple is the best configuration in the paper's (x, y, z) notation.
	Tuple string
	// Exec is the execution time in seconds.
	Exec float64
	// Speedup is relative to the sequential baseline.
	Speedup float64
	// Variance is the paper's "variance" column: the relative difference
	// of this implementation's speed-up from Implementation 1's, as
	// printed (the paper's Table 3 Impl 3 entry is relative to Impl 2;
	// see EXPERIMENTS.md).
	Variance float64
}

// PaperSequential is the paper's sequential execution time per table.
var PaperSequential = map[int]float64{2: 220.0, 3: 105.0, 4: 90.0}

// PaperBest transcribes the paper's Tables 2–4.
var PaperBest = map[int]map[core.Implementation]PaperCell{
	2: {
		core.SharedIndex:      {Tuple: "(3, 1, 0)", Exec: 46.7, Speedup: 4.71, Variance: 0.0},
		core.ReplicatedJoin:   {Tuple: "(3, 5, 1)", Exec: 46.9, Speedup: 4.70, Variance: -0.0021},
		core.ReplicatedSearch: {Tuple: "(3, 2, 0)", Exec: 46.4, Speedup: 4.74, Variance: 0.0085},
	},
	3: {
		core.SharedIndex:      {Tuple: "(3, 2, 0)", Exec: 59.5, Speedup: 1.76, Variance: 0.0},
		core.ReplicatedJoin:   {Tuple: "(6, 2, 1)", Exec: 57.7, Speedup: 1.82, Variance: 0.034},
		core.ReplicatedSearch: {Tuple: "(6, 2, 0)", Exec: 49.5, Speedup: 2.12, Variance: 0.165},
	},
	4: {
		core.SharedIndex:      {Tuple: "(8, 4, 0)", Exec: 45.9, Speedup: 1.96, Variance: 0.0},
		core.ReplicatedJoin:   {Tuple: "(8, 4, 1)", Exec: 36.4, Speedup: 2.47, Variance: 0.26},
		core.ReplicatedSearch: {Tuple: "(9, 4, 0)", Exec: 25.7, Speedup: 3.50, Variance: 0.786},
	},
}

// TableNumber maps a platform to its table in the paper: the 4-core
// machine is Table 2, the 8-core Table 3, the 32-core Table 4.
func TableNumber(p platform.Profile) (int, error) {
	switch p.Cores {
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	case 32:
		return 4, nil
	default:
		return 0, fmt.Errorf("experiments: no paper table for a %d-core platform", p.Cores)
	}
}
