//go:build linux

package platform

import (
	"os"
	"syscall"
)

// This file (and its !linux counterpart) is the one OS-dependent corner of
// the repository: read-only memory mapping for lazy DSIX v10 segment
// serving (internal/segment). It lives in the platform package because
// platform is where machine-specific behaviour is isolated — the simulated
// profiles above model machines we don't have; MapFile adapts to the one
// we do.

// MmapSupported reports whether MapFile can succeed on this platform.
const MmapSupported = true

// MapFile maps f read-only into memory and returns the mapping plus its
// unmap function. size must be f's current length and positive. On
// platforms without mmap support it returns ErrNoMmap and callers fall
// back to io.ReaderAt access.
func MapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, ErrNoMmap
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
