package distribute

import (
	"sync"

	"desksearch/internal/walk"
)

// StealingPool implements work stealing, the fourth option the paper lists
// for distributing filenames: each worker owns a deque seeded with its
// round-robin share, pops from its own tail, and steals from the head of
// the busiest victim when empty.
//
// For the paper's workload (uniform scan cost per byte, sizes known up
// front) stealing buys little over round-robin, but it degrades gracefully
// when per-file costs are unpredictable — e.g. when format extraction makes
// some files far slower than their size suggests.
type StealingPool struct {
	deques []*deque
}

// NewStealingPool seeds k deques with a round-robin partition of files.
func NewStealingPool(files []walk.FileRef, k int) *StealingPool {
	if k < 1 {
		k = 1
	}
	p := &StealingPool{deques: make([]*deque, k)}
	parts := Partition(files, k, RoundRobin)
	for i := range p.deques {
		p.deques[i] = &deque{items: parts[i]}
	}
	return p
}

// Workers returns the number of deques.
func (p *StealingPool) Workers() int { return len(p.deques) }

// Next returns the next file for worker w: its own deque's tail, or a
// steal from the head of the longest other deque. ok is false when no work
// remains anywhere.
func (p *StealingPool) Next(w int) (walk.FileRef, bool) {
	if f, ok := p.deques[w].popTail(); ok {
		return f, true
	}
	// Steal from the victim with the most remaining work; re-scan until
	// every deque is observed empty.
	for {
		victim, best := -1, 0
		for i, d := range p.deques {
			if i == w {
				continue
			}
			if n := d.len(); n > best {
				best = n
				victim = i
			}
		}
		if victim < 0 {
			return walk.FileRef{}, false
		}
		if f, ok := p.deques[victim].popHead(); ok {
			return f, true
		}
		// Lost the race for the victim's last item; rescan.
	}
}

// Remaining returns the total number of undistributed files (for tests and
// progress reporting; the value is immediately stale under concurrency).
func (p *StealingPool) Remaining() int {
	total := 0
	for _, d := range p.deques {
		total += d.len()
	}
	return total
}

// deque is a mutex-guarded double-ended queue. A lock-free Chase–Lev deque
// would cut constant factors, but the pipeline takes one deque operation
// per file scanned (milliseconds of work), so contention here is noise —
// measured by BenchmarkAblationDistribution.
type deque struct {
	mu    sync.Mutex
	items []walk.FileRef
}

func (d *deque) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

func (d *deque) popTail() (walk.FileRef, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return walk.FileRef{}, false
	}
	f := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return f, true
}

func (d *deque) popHead() (walk.FileRef, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return walk.FileRef{}, false
	}
	f := d.items[0]
	d.items = d.items[1:]
	return f, true
}
