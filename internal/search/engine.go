package search

import (
	"sort"
	"sync"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// Hit is one search result.
type Hit struct {
	// File is the matched file's ID.
	File postings.FileID
	// Path is the matched file's path.
	Path string
	// Score counts how many distinct positive query terms the file
	// contains (coordination ranking); for pure conjunctions every hit
	// scores the same, for OR queries broader matches rank higher.
	Score int
}

// Engine executes queries over one or more indices sharing a file table —
// unjoined replicas or the shards of a shard.Set; both partition the corpus
// by document, which is all the engine relies on. It is the paper's
// Implementation 3 made whole: "the search can work with multiple indices
// in parallel".
//
// Queries may run concurrently with each other. Mutating the underlying
// indices or file table — the incremental-update path — must go through
// Maintain, which excludes in-flight queries and drops the cached
// per-partition universes that would otherwise keep answering for deleted
// files.
type Engine struct {
	files   *index.FileTable
	indices []*index.Index
	// Parallel fans query evaluation out with one goroutine per index.
	// Off, partitions are searched sequentially (the ablation baseline).
	Parallel bool

	// mu guards the indices, the file table, and the universe cache:
	// queries hold it shared, Maintain holds it exclusively.
	mu sync.RWMutex
	// universes caches, per index, the posting list of files that index is
	// responsible for (the complement base for NOT); nil means not yet
	// computed or invalidated by an update.
	universes []*postings.List
}

// NewEngine returns an engine over the given indices. For a joined or
// shared index pass exactly one; for Implementation 3 or a shard set pass
// every partition.
func NewEngine(files *index.FileTable, indices ...*index.Index) *Engine {
	return &Engine{files: files, indices: indices, Parallel: true}
}

// Indices returns the number of indices the engine consults.
func (e *Engine) Indices() int { return len(e.indices) }

// Maintain runs f — an index or file-table mutation — with every query
// excluded, then invalidates the cached universes. It is the write side of
// the engine's read-write discipline: incremental updates route their
// commit phase through Maintain so a concurrent Search never observes a
// half-applied changeset or a stale NOT universe.
func (e *Engine) Maintain(f func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f()
	e.universes = nil
}

// View runs f with updates excluded but queries admitted — the read-side
// companion to Maintain for callers that walk the indices outside Search
// (statistics, persistence).
func (e *Engine) View(f func()) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	f()
}

// Invalidate drops the cached universes so the next query recomputes them.
// Callers that mutate the indices without going through Maintain (and
// therefore accept the concurrency hazard) must at least Invalidate, or
// NOT queries keep matching deleted files.
func (e *Engine) Invalidate() {
	e.mu.Lock()
	e.universes = nil
	e.mu.Unlock()
}

// Search evaluates q and returns hits sorted by descending score, then
// ascending file ID. With more than one partition the query fans out to one
// goroutine per partition; each evaluates, scores, and ranks its own hits,
// and the already-ranked per-partition lists are then merged — the sort
// happens inside the fan-out instead of globally afterwards.
func (e *Engine) Search(q *Query) []Hit {
	e.mu.RLock()
	for e.universes == nil {
		// Upgrade to the write lock to fill the cache, then downgrade and
		// re-check: an update may have slipped in between the two locks.
		e.mu.RUnlock()
		e.mu.Lock()
		if e.universes == nil {
			e.universes = e.computeUniverses()
		}
		e.mu.Unlock()
		e.mu.RLock()
	}
	defer e.mu.RUnlock()
	unis := e.universes
	ranked := make([][]Hit, len(e.indices))
	if e.Parallel && len(e.indices) > 1 {
		var wg sync.WaitGroup
		for i, ix := range e.indices {
			wg.Add(1)
			go func(i int, ix *index.Index) {
				defer wg.Done()
				ranked[i] = sortHits(e.searchOne(ix, unis[i], q))
			}(i, ix)
		}
		wg.Wait()
	} else {
		for i, ix := range e.indices {
			ranked[i] = sortHits(e.searchOne(ix, unis[i], q))
		}
	}
	return mergeRanked(ranked)
}

// hitLess is the result order: descending score, then ascending file ID.
func hitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.File < b.File
}

func sortHits(hits []Hit) []Hit {
	sort.Slice(hits, func(i, j int) bool { return hitLess(hits[i], hits[j]) })
	return hits
}

// mergeRanked merges per-partition ranked hit lists into one ranked list by
// pairwise reduction. Files live in exactly one partition, so the merge is
// a disjoint union; only ordering remains.
func mergeRanked(parts [][]Hit) []Hit {
	live := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
		}
	}
	for len(live) > 1 {
		merged := make([][]Hit, 0, (len(live)+1)/2)
		for i := 0; i+1 < len(live); i += 2 {
			merged = append(merged, mergeTwo(live[i], live[i+1]))
		}
		if len(live)%2 == 1 {
			merged = append(merged, live[len(live)-1])
		}
		live = merged
	}
	if len(live) == 0 {
		return nil
	}
	return live[0]
}

// mergeTwo merges two ranked hit lists in linear time.
func mergeTwo(a, b []Hit) []Hit {
	out := make([]Hit, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if hitLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SearchString parses and evaluates a query in one step.
func (e *Engine) SearchString(text string) ([]Hit, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return e.Search(q), nil
}

// computeUniverses builds, per index, the posting list of files that index
// is responsible for — the complement base for NOT. The caller must hold
// e.mu exclusively.
//
// With one index that is simply every live file. With replicas, each
// file's block went to exactly one replica, so replica i's universe is the
// union of its posting lists; live files that appear in no replica at all
// (term-free files) are assigned to replica 0 so that "NOT anything" still
// finds them exactly once. Tombstoned files are excluded throughout —
// their postings are gone from every partition, and allFiles skips them —
// so a deleted file can never resurface through a negated query.
func (e *Engine) computeUniverses() []*postings.List {
	universes := make([]*postings.List, len(e.indices))
	if len(e.indices) == 1 {
		universes[0] = e.allFiles()
		return universes
	}
	covered := &postings.List{}
	for i, ix := range e.indices {
		u := &postings.List{}
		ix.Range(func(_ string, l *postings.List) bool {
			u.Merge(l.Clone())
			return true
		})
		universes[i] = u
		covered.Merge(u.Clone())
	}
	orphans := postings.Difference(e.allFiles(), covered)
	if orphans.Len() > 0 && len(universes) > 0 {
		universes[0].Merge(orphans)
	}
	return universes
}

// allFiles returns the live files — tombstones of deleted files keep their
// IDs but must not appear in any query result.
func (e *Engine) allFiles() *postings.List {
	return postings.FromSortedIDs(e.files.LiveIDs(nil))
}

// searchOne evaluates q against a single index and scores its matches.
func (e *Engine) searchOne(ix *index.Index, universe *postings.List, q *Query) []Hit {
	matched := eval(ix, q.root, universe)
	if matched == nil || matched.Len() == 0 {
		return nil
	}
	// Coordination scores: +1 per positive term present.
	scores := make(map[postings.FileID]int, matched.Len())
	for _, id := range matched.IDs() {
		scores[id] = 0
	}
	for _, term := range q.positive {
		l := ix.Lookup(term)
		if l == nil {
			continue
		}
		for _, id := range postings.Intersect(matched, l).IDs() {
			scores[id]++
		}
	}
	hits := make([]Hit, 0, matched.Len())
	for _, id := range matched.IDs() {
		hits = append(hits, Hit{File: id, Path: e.files.Path(id), Score: scores[id]})
	}
	return hits
}

// eval computes the posting list of files satisfying n within one index.
// Every list it returns is owned by the caller: term lookups are cloned at
// the boundary rather than aliased to the index's live storage, so a
// result can never be mutated out from under its consumer by a concurrent
// incremental update committed after the query finishes.
func eval(ix *index.Index, n node, universe *postings.List) *postings.List {
	switch v := n.(type) {
	case termNode:
		l := ix.Lookup(v.term)
		if l == nil {
			return &postings.List{}
		}
		return l.Clone()
	case andNode:
		acc := eval(ix, v.kids[0], universe)
		for _, k := range v.kids[1:] {
			if acc.Len() == 0 {
				return acc
			}
			acc = postings.Intersect(acc, eval(ix, k, universe))
		}
		return acc
	case orNode:
		acc := &postings.List{}
		for _, k := range v.kids {
			acc = postings.Union(acc, eval(ix, k, universe))
		}
		return acc
	case notNode:
		return postings.Difference(universe, eval(ix, v.kid, universe))
	default:
		return &postings.List{}
	}
}
