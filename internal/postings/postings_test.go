package postings

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// model computes the expected sorted unique IDs for a slice.
func model(ids []FileID) []FileID {
	set := map[FileID]bool{}
	for _, id := range ids {
		set[id] = true
	}
	out := make([]FileID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) == 0 {
		return nil
	}
	return out
}

func TestFromIDs(t *testing.T) {
	l := FromIDs([]FileID{5, 1, 3, 1, 5, 2})
	want := []FileID{1, 2, 3, 5}
	if !reflect.DeepEqual(l.IDs(), want) {
		t.Errorf("IDs = %v, want %v", l.IDs(), want)
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestAddInOrderAndOutOfOrder(t *testing.T) {
	l := &List{}
	for _, id := range []FileID{1, 3, 7} {
		l.Add(id)
	}
	l.Add(5) // middle insertion
	l.Add(0) // front insertion
	l.Add(7) // duplicate
	want := []FileID{0, 1, 3, 5, 7}
	if !reflect.DeepEqual(l.IDs(), want) {
		t.Errorf("IDs = %v, want %v", l.IDs(), want)
	}
}

func TestContains(t *testing.T) {
	l := FromIDs([]FileID{2, 4, 6})
	for _, tc := range []struct {
		id   FileID
		want bool
	}{{1, false}, {2, true}, {3, false}, {4, true}, {6, true}, {7, false}} {
		if got := l.Contains(tc.id); got != tc.want {
			t.Errorf("Contains(%d) = %v", tc.id, got)
		}
	}
	if (&List{}).Contains(0) {
		t.Error("empty list contains 0")
	}
}

// Property: Add-built lists equal the set model for any input sequence.
func TestAddMatchesModel(t *testing.T) {
	if err := quick.Check(func(raw []uint32) bool {
		l := &List{}
		ids := make([]FileID, len(raw))
		for i, r := range raw {
			ids[i] = FileID(r % 1000)
			l.Add(ids[i])
		}
		return reflect.DeepEqual(l.IDs(), model(ids)) || (l.Len() == 0 && len(model(ids)) == 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge is set union, regardless of overlap pattern.
func TestMergeMatchesModel(t *testing.T) {
	if err := quick.Check(func(a, b []uint32) bool {
		la, lb := fromRaw(a), fromRaw(b)
		combined := append(append([]FileID{}, la.IDs()...), lb.IDs()...)
		want := model(combined)
		got := la.Clone().Merge(lb)
		return reflect.DeepEqual(got.IDs(), want) || (got.Len() == 0 && len(want) == 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func fromRaw(raw []uint32) *List {
	ids := make([]FileID, len(raw))
	for i, r := range raw {
		ids[i] = FileID(r % 500)
	}
	return FromIDs(ids)
}

func TestMergeFastPaths(t *testing.T) {
	// Disjoint ascending.
	a := FromIDs([]FileID{1, 2, 3})
	b := FromIDs([]FileID{10, 11})
	a.Merge(b)
	if !reflect.DeepEqual(a.IDs(), []FileID{1, 2, 3, 10, 11}) {
		t.Errorf("ascending merge: %v", a.IDs())
	}
	// Disjoint descending.
	c := FromIDs([]FileID{10, 11})
	d := FromIDs([]FileID{1, 2, 3})
	c.Merge(d)
	if !reflect.DeepEqual(c.IDs(), []FileID{1, 2, 3, 10, 11}) {
		t.Errorf("descending merge: %v", c.IDs())
	}
	// Empty cases.
	e := &List{}
	e.Merge(FromIDs([]FileID{4}))
	if !reflect.DeepEqual(e.IDs(), []FileID{4}) {
		t.Errorf("empty receiver merge: %v", e.IDs())
	}
	f := FromIDs([]FileID{4})
	f.Merge(&List{})
	f.Merge(nil)
	if !reflect.DeepEqual(f.IDs(), []FileID{4}) {
		t.Errorf("empty argument merge: %v", f.IDs())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIDs([]FileID{1, 2})
	b := a.Clone()
	b.Add(3)
	if a.Len() != 2 || b.Len() != 3 {
		t.Error("Clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	a := FromIDs([]FileID{1, 2, 3})
	if !a.Equal(FromIDs([]FileID{3, 2, 1})) {
		t.Error("order-insensitive build should be equal")
	}
	if a.Equal(FromIDs([]FileID{1, 2})) || a.Equal(FromIDs([]FileID{1, 2, 4})) {
		t.Error("unequal lists reported equal")
	}
}

// Property: Intersect/Union/Difference match set semantics.
func TestBooleanOpsMatchModel(t *testing.T) {
	if err := quick.Check(func(a, b []uint32) bool {
		la, lb := fromRaw(a), fromRaw(b)
		inA := map[FileID]bool{}
		for _, id := range la.IDs() {
			inA[id] = true
		}
		inB := map[FileID]bool{}
		for _, id := range lb.IDs() {
			inB[id] = true
		}
		var wantI, wantU, wantD []FileID
		for id := FileID(0); id < 500; id++ {
			if inA[id] && inB[id] {
				wantI = append(wantI, id)
			}
			if inA[id] || inB[id] {
				wantU = append(wantU, id)
			}
			if inA[id] && !inB[id] {
				wantD = append(wantD, id)
			}
		}
		eq := func(got *List, want []FileID) bool {
			return reflect.DeepEqual(got.IDs(), want) || (got.Len() == 0 && len(want) == 0)
		}
		return eq(Intersect(la, lb), wantI) && eq(Union(la, lb), wantU) && eq(Difference(la, lb), wantD)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntersectGallopingPath(t *testing.T) {
	// Force the galloping branch: one tiny and one huge list.
	large := &List{}
	for i := FileID(0); i < 10_000; i++ {
		large.Add(i * 2) // evens
	}
	small := FromIDs([]FileID{4, 5, 19998, 19999})
	got := Intersect(small, large)
	want := []FileID{4, 19998}
	if !reflect.DeepEqual(got.IDs(), want) {
		t.Errorf("galloping intersect = %v, want %v", got.IDs(), want)
	}
	// Symmetric argument order.
	got2 := Intersect(large, small)
	if !got.Equal(got2) {
		t.Error("Intersect not symmetric")
	}
}

func TestUnionDoesNotMutateInputs(t *testing.T) {
	a := FromIDs([]FileID{1, 3})
	b := FromIDs([]FileID{2})
	Union(a, b)
	if !reflect.DeepEqual(a.IDs(), []FileID{1, 3}) || !reflect.DeepEqual(b.IDs(), []FileID{2}) {
		t.Error("Union mutated its inputs")
	}
}

// Property: encode/decode round-trips every list.
func TestVarintRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw []uint32) bool {
		l := fromRaw(raw)
		buf := l.Encode(nil)
		if len(buf) != l.EncodedSize() {
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.Equal(l)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintRoundTripLargeIDs(t *testing.T) {
	l := FromIDs([]FileID{0, 1, 0x7FFF_FFFF, 0xFFFF_FFFE, 0xFFFF_FFFF})
	buf := l.Encode(nil)
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Errorf("round trip = %v", got.IDs())
	}
}

func TestVarintAppendsToPrefix(t *testing.T) {
	l := FromIDs([]FileID{7})
	buf := l.Encode([]byte{0xAA})
	if buf[0] != 0xAA {
		t.Error("Encode did not append")
	}
	got, n, err := Decode(buf[1:])
	if err != nil || n != len(buf)-1 || !got.Equal(l) {
		t.Errorf("decode after prefix: %v %d %v", got, n, err)
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	cases := [][]byte{
		{},                 // no count
		{0x05},             // count 5, no deltas
		{0x02, 0x01},       // count 2, one delta
		{0xFF},             // truncated uvarint
		{0x02, 0x01, 0x00}, // zero delta = duplicate
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // absurd count
	}
	for _, buf := range cases {
		if _, _, err := Decode(buf); err == nil {
			t.Errorf("Decode(% x) succeeded on corrupt input", buf)
		}
	}
}

func TestDecodeOverflowingID(t *testing.T) {
	// First ID = 2^32 encoded directly must be rejected.
	buf := []byte{0x01, 0x80, 0x80, 0x80, 0x80, 0x10}
	if _, _, err := Decode(buf); err == nil {
		t.Error("Decode accepted ID overflowing FileID")
	}
}

func TestEncodedSizeCompression(t *testing.T) {
	// Dense consecutive IDs must encode near 1 byte each.
	l := &List{}
	for i := FileID(1000); i < 2000; i++ {
		l.Add(i)
	}
	if size := l.EncodedSize(); size > 1010 {
		t.Errorf("dense list encodes to %d bytes, want ≈1002", size)
	}
}

func BenchmarkMergeDisjoint(b *testing.B) {
	a := &List{}
	for i := FileID(0); i < 10000; i++ {
		a.Add(i)
	}
	c := &List{}
	for i := FileID(10000); i < 20000; i++ {
		c.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Clone().Merge(c)
	}
}

func BenchmarkMergeInterleaved(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, c := &List{}, &List{}
	for i := 0; i < 10000; i++ {
		a.Add(FileID(rng.Intn(100000)))
		c.Add(FileID(rng.Intn(100000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Clone().Merge(c)
	}
}

func BenchmarkIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a, c := &List{}, &List{}
	for i := 0; i < 10000; i++ {
		a.Add(FileID(rng.Intn(100000)))
	}
	for i := 0; i < 100; i++ {
		c.Add(FileID(rng.Intn(100000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect(a, c)
	}
}
