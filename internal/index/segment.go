package index

import (
	"bufio"
	"fmt"
	"io"
)

// A shard segment (the DSIX segment form) persists one document-sharded partition
// of an index: the term section alone, framed and checksummed like every
// DSIX file. The file table — shared by all shards of a set — is not
// repeated per segment; it lives once in the shard manifest
// (internal/shard), which also records a whole-file checksum for each
// segment so a swapped or truncated segment is caught before its postings
// are trusted.

// SaveSegment writes ix's term section to w as a shard segment: the v7
// form, or the positional v8 (kind segment) form when the index carries
// token positions. Non-positional segments stay byte-identical to the
// pre-positions codec.
func SaveSegment(w io.Writer, ix *Index) error {
	if ix.Positional() {
		return EncodeFrame(w, PositionalVersion, func(bw *bufio.Writer) error {
			if err := bw.WriteByte(kindSegment); err != nil {
				return err
			}
			return writeTermSection(bw, ix, true)
		})
	}
	return EncodeFrame(w, SegmentVersion, func(bw *bufio.Writer) error {
		return writeTermSection(bw, ix, false)
	})
}

// LoadSegment reads a shard segment written by SaveSegment (v7 or
// positional v8; the loaded index remembers which). Like Load it buffers
// the whole stream so the checksum is verified before any content is
// trusted.
func LoadSegment(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading segment: %w", err)
	}
	br, payload, version, err := DecodeFrameAny(data, SegmentVersion, PositionalVersion)
	if err != nil {
		return nil, err
	}
	positional := version == PositionalVersion
	if positional {
		if err := readKind(br, kindSegment); err != nil {
			return nil, err
		}
	}
	ix, err := readTermSection(br, payload, positional)
	if err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("index: %d trailing payload bytes", br.Len())
	}
	return ix, nil
}
