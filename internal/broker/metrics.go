package broker

import (
	"strconv"
	"time"

	"desksearch/internal/metrics"
)

// brokerMetrics is the broker's /metrics surface. As in internal/server,
// counters the broker already keeps as atomics — queries, hedges,
// failovers — are exposed as function-backed metrics sampled at scrape
// time; only the per-endpoint request/latency instruments write anew.
type brokerMetrics struct {
	reg      *metrics.Registry
	requests *metrics.CounterVec // by endpoint and outcome
	latency  map[string]*metrics.Histogram
}

// initMetrics builds the registry over the broker's existing state. It
// runs after New has populated b.groups, so the per-group gauges can
// close over the final topology.
func (b *Broker) initMetrics() {
	reg := metrics.NewRegistry()
	m := &brokerMetrics{
		reg:      reg,
		requests: reg.NewCounterVec("ds_requests_total", "HTTP requests by endpoint and outcome.", "endpoint", "outcome"),
		latency:  make(map[string]*metrics.Histogram),
	}
	for _, ep := range []string{"search", "suggest"} {
		m.latency[ep] = reg.NewHistogram(
			"ds_"+ep+"_duration_seconds",
			"Front-door handling time of /"+ep+" requests.",
			nil,
		)
	}

	reg.NewCounterFunc("ds_queries_total", "Queries accepted across /search and /suggest.",
		func() float64 { return float64(b.queries.Load()) })
	reg.NewCounterFunc("ds_query_errors_total", "Queries that failed scatter-gather.",
		func() float64 { return float64(b.queryErrors.Load()) })
	reg.NewCounterFunc("ds_hedges_total", "Speculative duplicate requests issued against straggling replicas.",
		func() float64 { return float64(b.hedges.Load()) })
	reg.NewCounterFunc("ds_hedge_wins_total", "Hedged requests that answered before the primary.",
		func() float64 { return float64(b.hedgeWins.Load()) })
	reg.NewCounterFunc("ds_failovers_total", "Replica attempts restarted on another replica after a failure.",
		func() float64 { return float64(b.failovers.Load()) })
	reg.NewGaugeFunc("ds_uptime_seconds", "Seconds since the broker started.",
		func() float64 { return time.Since(b.start).Seconds() })

	for gi, g := range b.groups {
		g := g
		label := strconv.Itoa(gi)
		reg.NewGaugeFunc("ds_group_"+label+"_healthy_replicas",
			"Replicas of group "+label+" currently passing health checks.",
			func() float64 {
				n := 0
				for _, r := range g.replicas {
					if r.healthy.Load() {
						n++
					}
				}
				return float64(n)
			})
		reg.NewGaugeFunc("ds_group_"+label+"_generation",
			"Last catalog generation observed from group "+label+".",
			func() float64 { return float64(g.generation.Load()) })
	}

	b.metrics = m
}

// observeRequest records one finished front-door request.
func (m *brokerMetrics) observeRequest(endpoint, outcome string, start time.Time) {
	m.requests.With(endpoint, outcome).Inc()
	if h, ok := m.latency[endpoint]; ok {
		h.Observe(time.Since(start).Seconds())
	}
}
