package index

import (
	"sort"

	"desksearch/internal/postings"
)

// This file implements index maintenance beyond the paper's batch build:
// a desktop search tool must follow the user's filesystem, removing and
// re-indexing files as they change between full rebuilds.

// RemoveFile deletes every posting of the given file and returns the
// number of postings removed. Terms whose posting lists become empty are
// dropped from the index.
//
// The inverted mapping makes removal a full scan (the index has no
// file → terms direction); that is the structural price of the paper's
// design and the reason desktop search tools batch deletions.
func (ix *Index) RemoveFile(id postings.FileID) int {
	removed := 0
	var emptied []string
	ix.terms.Range(func(term string, l *postings.List) bool {
		if !l.Contains(id) {
			return true
		}
		rest := postings.Difference(l, postings.FromIDs([]postings.FileID{id}))
		removed++
		if rest.Len() == 0 {
			emptied = append(emptied, term)
			return true
		}
		ix.terms.Put(term, rest)
		return true
	})
	for _, term := range emptied {
		ix.terms.Delete(term)
	}
	ix.nPostings -= int64(removed)
	return removed
}

// UpdateFile replaces a file's postings with a fresh duplicate-free term
// block (remove + en-bloc insert), the re-index path for a modified file.
func (ix *Index) UpdateFile(id postings.FileID, terms []string) {
	ix.RemoveFile(id)
	ix.AddBlock(id, terms)
}

// TermCount is a term with its document frequency.
type TermCount struct {
	Term string
	// Files is the number of files containing the term.
	Files int
}

// TopTerms returns the n most frequent terms by document count, most
// frequent first (ties broken alphabetically, so the result is
// deterministic).
func (ix *Index) TopTerms(n int) []TermCount {
	if n <= 0 {
		return nil
	}
	all := make([]TermCount, 0, ix.NumTerms())
	ix.terms.Range(func(term string, l *postings.List) bool {
		all = append(all, TermCount{Term: term, Files: l.Len()})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Files != all[j].Files {
			return all[i].Files > all[j].Files
		}
		return all[i].Term < all[j].Term
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
