package walk

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"desksearch/internal/corpus"
	"desksearch/internal/vfs"
)

func buildTree(t *testing.T) *vfs.MemFS {
	t.Helper()
	fs := vfs.NewMemFS()
	files := map[string]int{
		"a.txt":           5,
		"docs/b.txt":      10,
		"docs/c.txt":      15,
		"docs/deep/d.txt": 20,
		"src/e.go":        25,
		"zz/f.txt":        30,
	}
	for name, size := range files {
		if err := fs.WriteFile(name, make([]byte, size)); err != nil {
			t.Fatal(err)
		}
	}
	// An empty directory must be traversed without error.
	if err := fs.MkdirAll("empty-dir"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestListFindsEverything(t *testing.T) {
	files, err := List(buildTree(t), ".")
	if err != nil {
		t.Fatal(err)
	}
	want := []FileRef{
		{Path: "a.txt", Size: 5},
		{Path: "docs/b.txt", Size: 10},
		{Path: "docs/c.txt", Size: 15},
		{Path: "docs/deep/d.txt", Size: 20},
		{Path: "src/e.go", Size: 25},
		{Path: "zz/f.txt", Size: 30},
	}
	// Modification stamps depend on map iteration order during tree
	// construction; assert they are set, then compare the rest exactly.
	stripped := append([]FileRef(nil), files...)
	for i := range stripped {
		if stripped[i].ModTime == 0 {
			t.Errorf("%s: ModTime not populated", stripped[i].Path)
		}
		stripped[i].ModTime = 0
	}
	if !reflect.DeepEqual(stripped, want) {
		t.Errorf("List = %+v, want %+v", stripped, want)
	}
}

func TestListSubtree(t *testing.T) {
	files, err := List(buildTree(t), "docs")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("subtree list = %+v", files)
	}
	for _, f := range files {
		if f.Path[:5] != "docs/" {
			t.Errorf("file outside subtree: %s", f.Path)
		}
	}
}

func TestListDeterministic(t *testing.T) {
	fs := buildTree(t)
	a, _ := List(fs, ".")
	b, _ := List(fs, ".")
	if !reflect.DeepEqual(a, b) {
		t.Error("List not deterministic")
	}
}

func TestListMissingRoot(t *testing.T) {
	if _, err := List(buildTree(t), "no-such-dir"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("err = %v", err)
	}
}

func TestListParallelMatchesSequential(t *testing.T) {
	// Use a realistic corpus tree: hundreds of files over nested dirs.
	fs := vfs.NewMemFS()
	spec := corpus.SmallSpec()
	spec.Files = 300
	if _, err := corpus.Generate(spec, fs); err != nil {
		t.Fatal(err)
	}
	seq, err := List(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	sortedSeq := append([]FileRef{}, seq...)
	sort.Slice(sortedSeq, func(i, j int) bool { return sortedSeq[i].Path < sortedSeq[j].Path })
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := ListParallel(fs, ".", workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par, sortedSeq) {
			t.Fatalf("workers=%d: parallel walk differs (%d vs %d files)",
				workers, len(par), len(sortedSeq))
		}
	}
}

func TestListParallelMissingRoot(t *testing.T) {
	if _, err := ListParallel(buildTree(t), "nope", 4); err == nil {
		t.Error("missing root not reported")
	}
}

func TestListParallelZeroWorkers(t *testing.T) {
	files, err := ListParallel(buildTree(t), ".", 0)
	if err != nil || len(files) != 6 {
		t.Errorf("clamped workers: %d files, %v", len(files), err)
	}
}

func TestTotalBytes(t *testing.T) {
	files, _ := List(buildTree(t), ".")
	if got := TotalBytes(files); got != 105 {
		t.Errorf("TotalBytes = %d, want 105", got)
	}
	if TotalBytes(nil) != 0 {
		t.Error("TotalBytes(nil) != 0")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]FileRef{{Path: "a"}, {Path: "b"}}) {
		t.Error("sorted reported unsorted")
	}
	if IsSorted([]FileRef{{Path: "b"}, {Path: "a"}}) {
		t.Error("unsorted reported sorted")
	}
}

func TestListOnCorpusCountsMatchSpec(t *testing.T) {
	fs := vfs.NewMemFS()
	spec := corpus.SmallSpec()
	stats, err := corpus.Generate(spec, fs)
	if err != nil {
		t.Fatal(err)
	}
	files, err := List(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(stats.Files) {
		t.Errorf("walk found %d files, corpus wrote %d", len(files), len(stats.Files))
	}
}

func BenchmarkListSequential(b *testing.B) {
	fs := vfs.NewMemFS()
	spec := corpus.PaperSpec().Scale(1.0 / 64)
	spec.TotalBytes = 1 << 20 // metadata walk: sizes don't matter
	if _, err := corpus.Generate(spec, fs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := List(fs, "."); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListParallel4(b *testing.B) {
	fs := vfs.NewMemFS()
	spec := corpus.PaperSpec().Scale(1.0 / 64)
	spec.TotalBytes = 1 << 20
	if _, err := corpus.Generate(spec, fs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ListParallel(fs, ".", 4); err != nil {
			b.Fatal(err)
		}
	}
}
