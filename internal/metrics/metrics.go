// Package metrics is a dependency-free Prometheus-text-format metric
// registry: the observability seam dsearchd and the broker expose at
// GET /metrics. It implements the three instrument kinds the serving
// stack needs — monotone counters, point-in-time gauges, and cumulative
// latency histograms — plus function-backed variants that sample an
// existing source (an atomic the handler already maintains, a cache's
// Stats method) at scrape time instead of double-counting.
//
// The exposition format is the subset of the Prometheus text format
// every scraper understands:
//
//	# HELP name help text
//	# TYPE name counter
//	name{label="value"} 123
//
// Metrics render in registration order, label sets in first-use order —
// deterministic output, so tests can pin exact lines. All instruments
// are safe for concurrent use.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named metrics and renders them in text format.
// Create with NewRegistry; the zero value is not usable.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// metric is one named family: everything the registry needs to render it.
type metric interface {
	name() string
	write(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register adds m, panicking on a duplicate name — two families with one
// name would render invalid exposition, and registration happens at
// construction time where a panic is a programming error surfacing early.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name()] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", m.name()))
	}
	r.names[m.name()] = true
	r.metrics = append(r.metrics, m)
}

// WriteText renders every registered metric in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		m.write(w)
	}
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// header writes a family's HELP/TYPE preamble.
func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// escapeHelp escapes the two characters the text format reserves in HELP.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: integers without a decimal point,
// everything else in Go's shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a label set as {k1="v1",k2="v2"}, empty for none.
func labelString(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value. Vec children returned by
// CounterVec.With share their value with the family, so v is a pointer.
type Counter struct {
	nm, help string
	v        *atomic.Uint64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, help: help, v: new(atomic.Uint64)}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }

func (c *Counter) write(w io.Writer) {
	header(w, c.nm, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// CounterVec is a family of counters partitioned by a fixed label set —
// queries by endpoint and outcome, for example. Children are created on
// first use and render in first-use order.
type CounterVec struct {
	nm, help string
	keys     []string
	mu       sync.Mutex
	order    []string
	children map[string]*atomic.Uint64
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{nm: name, help: help, keys: labels, children: make(map[string]*atomic.Uint64)}
	r.register(cv)
	return cv
}

// With returns the child counter for the given label values (one per
// label key, in key order). It panics on arity mismatch — a programming
// error, not load-dependent state.
func (cv *CounterVec) With(values ...string) *Counter {
	if len(values) != len(cv.keys) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", cv.nm, len(cv.keys), len(values)))
	}
	key := labelString(cv.keys, values)
	cv.mu.Lock()
	child := cv.children[key]
	if child == nil {
		child = &atomic.Uint64{}
		cv.children[key] = child
		cv.order = append(cv.order, key)
	}
	cv.mu.Unlock()
	return &Counter{nm: cv.nm, v: child}
}

func (cv *CounterVec) name() string { return cv.nm }

func (cv *CounterVec) write(w io.Writer) {
	header(w, cv.nm, cv.help, "counter")
	cv.mu.Lock()
	order := make([]string, len(cv.order))
	copy(order, cv.order)
	vals := make([]uint64, len(order))
	for i, k := range order {
		vals[i] = cv.children[k].Load()
	}
	cv.mu.Unlock()
	for i, k := range order {
		fmt.Fprintf(w, "%s%s %d\n", cv.nm, k, vals[i])
	}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	nm, help string
	bits     atomic.Uint64 // Float64bits
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) name() string { return g.nm }

func (g *Gauge) write(w io.Writer) {
	header(w, g.nm, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.nm, formatValue(g.Value()))
}

// funcMetric samples its source at scrape time — the bridge to state the
// serving stack already maintains (atomic counters, cache statistics),
// where a second write path would drift from the first.
type funcMetric struct {
	nm, help, typ string
	fn            func() float64
}

// NewGaugeFunc registers a gauge sampled from fn at every scrape.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, help: help, typ: "gauge", fn: fn})
}

// NewCounterFunc registers a counter sampled from fn at every scrape. fn
// must be monotone for the exposition to be honest; the registry cannot
// enforce that.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, help: help, typ: "counter", fn: fn})
}

func (f *funcMetric) name() string { return f.nm }

func (f *funcMetric) write(w io.Writer) {
	header(w, f.nm, f.help, f.typ)
	fmt.Fprintf(w, "%s %s\n", f.nm, formatValue(f.fn()))
}

// DefaultLatencyBuckets spans 100µs to ~26s in powers of four — wide
// enough for a cache hit and a cold million-doc scatter-gather alike,
// few enough that a scrape stays small.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144,
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: each bucket counts observations ≤ its bound, and an
// implicit +Inf bucket equals the total count).
type Histogram struct {
	nm, help string
	bounds   []float64
	mu       sync.Mutex
	counts   []uint64
	sum      float64
	total    uint64
}

// NewHistogram registers and returns a histogram over the given bucket
// upper bounds (ascending; DefaultLatencyBuckets when nil).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("metrics: %s: buckets must ascend", name))
	}
	h := &Histogram{nm: name, help: help, bounds: buckets, counts: make([]uint64, len(buckets))}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	if i < len(h.counts) {
		h.counts[i]++
	}
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) name() string { return h.nm }

func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	header(w, h.nm, h.help, "histogram")
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.nm, formatValue(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, total)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatValue(sum))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, total)
}
