package container

import (
	"fmt"
	"sort"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter(4)
	if !c.Add("cat") || c.Add("cat") || !c.Add("dog") {
		t.Error("Add new/seen reporting wrong")
	}
	c.Add("cat")
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if c.Count("cat") != 3 || c.Count("dog") != 1 || c.Count("fish") != 0 {
		t.Errorf("counts: cat=%d dog=%d fish=%d", c.Count("cat"), c.Count("dog"), c.Count("fish"))
	}
	keys, counts := c.Pairs(nil, nil)
	if len(keys) != 2 || len(counts) != 2 {
		t.Fatalf("Pairs = %v / %v", keys, counts)
	}
	for i, k := range keys {
		if counts[i] != c.Count(k) {
			t.Errorf("pair %q: %d != %d", k, counts[i], c.Count(k))
		}
	}
}

func TestCounterGrowAndReset(t *testing.T) {
	c := NewCounter(2)
	want := map[string]uint32{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("term%03d", i%100)
		c.Add(k)
		want[k]++
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	keys, counts := c.Pairs(nil, nil)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for k, n := range want {
		if c.Count(k) != n {
			t.Errorf("Count(%q) = %d, want %d", k, c.Count(k), n)
		}
	}
	_ = counts
	c.Reset()
	if c.Len() != 0 || c.Count("term001") != 0 {
		t.Error("Reset left state behind")
	}
	if !c.Add("term001") || c.Count("term001") != 1 {
		t.Error("counter unusable after Reset")
	}
}

// TestCounterAddAt: the positional twin of Add records each occurrence's
// token position alongside the count, surviving growth and reset.
func TestCounterAddAt(t *testing.T) {
	c := NewCounter(2)
	words := []string{"a", "b", "a", "c", "a", "b"}
	for pos, w := range words {
		c.AddAt(w, uint32(pos))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	keys, positions := c.PairsPositions(nil, nil)
	got := map[string][]uint32{}
	for i, k := range keys {
		got[k] = positions[i]
	}
	want := map[string][]uint32{"a": {0, 2, 4}, "b": {1, 5}, "c": {3}}
	for k, w := range want {
		if len(got[k]) != len(w) {
			t.Fatalf("positions(%q) = %v, want %v", k, got[k], w)
		}
		for i := range w {
			if got[k][i] != w[i] {
				t.Fatalf("positions(%q) = %v, want %v", k, got[k], w)
			}
		}
		if c.Count(k) != uint32(len(w)) {
			t.Errorf("Count(%q) = %d, want %d", k, c.Count(k), len(w))
		}
	}
	// Growth must carry positions along.
	for i := 0; i < 500; i++ {
		c.AddAt(fmt.Sprintf("grow%03d", i%100), uint32(100+i))
	}
	_, positions = c.PairsPositions(nil, nil)
	if len(positions) != c.Len() {
		t.Fatal("positions lost through growth")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left entries")
	}
	c.AddAt("a", 9)
	if _, positions := c.PairsPositions(nil, nil); len(positions) != 1 || positions[0][0] != 9 {
		t.Fatal("counter unusable after Reset")
	}
}
