package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleSummary(t *testing.T) {
	s := &Sample{}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5) {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Unbiased variance of this classic data set is 32/7.
	if !almost(s.Variance(), 32.0/7.0) {
		t.Errorf("Variance = %v", s.Variance())
	}
	if !almost(s.Stddev(), math.Sqrt(32.0/7.0)) {
		t.Errorf("Stddev = %v", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.Median(), 4.5) {
		t.Errorf("Median = %v", s.Median())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Error("empty sample should summarize to zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.Median() != 3 {
		t.Error("single-element sample wrong")
	}
}

func TestSampleMedianOdd(t *testing.T) {
	s := &Sample{}
	for _, v := range []float64{9, 1, 5} {
		s.Add(v)
	}
	if s.Median() != 5 {
		t.Errorf("Median = %v", s.Median())
	}
}

func TestAddDurationAndValues(t *testing.T) {
	s := &Sample{}
	s.AddDuration(1500 * time.Millisecond)
	vals := s.Values()
	if len(vals) != 1 || !almost(vals[0], 1.5) {
		t.Errorf("Values = %v", vals)
	}
	vals[0] = 99 // must not alias internal storage
	if !almost(s.Mean(), 1.5) {
		t.Error("Values leaked internal storage")
	}
}

func TestSpeedupAndRelDiff(t *testing.T) {
	// Table 4 of the paper: sequential 90s, Impl1 45.9s -> 1.96x.
	sp := Speedup(90, 45.9)
	if math.Abs(sp-1.9608) > 0.001 {
		t.Errorf("Speedup = %v", sp)
	}
	// Impl2 speedup 2.47 vs Impl1 1.96 -> +26%.
	rd := RelDiff(2.47, 1.96)
	if math.Abs(rd-0.2602) > 0.001 {
		t.Errorf("RelDiff = %v", rd)
	}
	if Speedup(1, 0) != 0 || RelDiff(1, 0) != 0 {
		t.Error("zero guards failed")
	}
}

// Property: variance is non-negative and mean lies within [min, max].
func TestSampleInvariants(t *testing.T) {
	if err := quick.Check(func(vs []float64) bool {
		s := &Sample{}
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Scale into a sane range to avoid float overflow artifacts.
			s.Add(math.Mod(v, 1e6))
		}
		if s.N() == 0 {
			return true
		}
		return s.Variance() >= 0 && s.Mean() >= s.Min()-1e-6 && s.Mean() <= s.Max()+1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMeasureN(t *testing.T) {
	calls := 0
	s := MeasureN(5, func() { calls++ })
	if calls != 5 || s.N() != 5 {
		t.Errorf("calls=%d N=%d", calls, s.N())
	}
	for _, v := range s.Values() {
		if v < 0 {
			t.Error("negative duration measured")
		}
	}
}

func TestFormatting(t *testing.T) {
	if FormatSeconds(46.74) != "46.7" {
		t.Errorf("FormatSeconds = %q", FormatSeconds(46.74))
	}
	if FormatSpeedup(4.706) != "4.71" {
		t.Errorf("FormatSpeedup = %q", FormatSpeedup(4.706))
	}
	if FormatPercent(0.165) != "+16.5%" {
		t.Errorf("FormatPercent = %q", FormatPercent(0.165))
	}
	if FormatPercent(-0.0021) != "-0.2%" {
		t.Errorf("FormatPercent = %q", FormatPercent(-0.0021))
	}
	if FormatPercent(0) != "0.0%" {
		t.Errorf("FormatPercent(0) = %q", FormatPercent(0))
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 2. 4-core results", "", "best config.", "exec. time (s)", "speed-up")
	tb.AddRow("Sequential", "-", "220.0", "-")
	tb.AddRow("Implementation 1", "(3, 1, 0)", "46.7", "4.71")
	out := tb.String()
	if !strings.Contains(out, "Table 2. 4-core results") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Implementation 1") || !strings.Contains(out, "(3, 1, 0)") {
		t.Error("row content missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + rule + header + rule + 2 rows = 6 lines
	if len(lines) != 6 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Data rows align: every line after the header rule has same width or less.
	if len(lines[4]) == 0 || len(lines[5]) == 0 {
		t.Error("empty data lines")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "z-extra")
	out := tb.String()
	if !strings.Contains(out, "z-extra") {
		t.Error("extra cell dropped")
	}
	if !strings.Contains(out, "only-one") {
		t.Error("short row dropped")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "n", "v")
	tb.AddRowf("row", 42)
	if !strings.Contains(tb.String(), "42") {
		t.Error("AddRowf did not format int")
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("solo")
	out := tb.String()
	if strings.Contains(out, "=") || strings.Contains(out, "-") {
		t.Errorf("rules rendered without title/headers:\n%s", out)
	}
	if !strings.Contains(out, "solo") {
		t.Error("row missing")
	}
}
