package desksearch

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"desksearch/internal/vfs"
)

// syntheticFS builds an n-file corpus over a small vocabulary: word w
// appears in every (w+1)-th file, repeated a file-dependent number of
// times so term frequencies differ from document frequencies.
func syntheticFS(t testing.TB, n int) *vfs.MemFS {
	t.Helper()
	fs := vfs.NewMemFS()
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for w, word := range words {
			if i%(w+1) == 0 {
				for r := 0; r <= i%5; r++ {
					sb.WriteString(word)
					sb.WriteByte(' ')
				}
			}
		}
		fmt.Fprintf(&sb, "unique%04d", i)
		if err := fs.WriteFile(fmt.Sprintf("dir%d/doc%04d.txt", i%4, i), []byte(sb.String())); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// shardedCatalog builds a catalog over fs with the given partition count.
func shardedCatalog(t testing.TB, fs *vfs.MemFS, shards int) *Catalog {
	t.Helper()
	cat, err := IndexFS(fs, ".", Options{
		Implementation: ReplicatedSearch, Extractors: 4, Updaters: 2, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestQueryPaginationMatchesSearch is the acceptance property: across
// 1/2/4/8 partitions, every page Query returns is byte-identical to the
// corresponding slice of the unpaginated full-sort result, and pages are
// stable (repeating a request returns the same page).
func TestQueryPaginationMatchesSearch(t *testing.T) {
	fs := syntheticFS(t, 200)
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 8} {
		cat := shardedCatalog(t, fs, shards)
		for _, qs := range []string{"alpha", "beta OR gamma", "alpha -delta", "beta OR gamma OR zeta"} {
			full, err := cat.Query(ctx, Query{Text: qs})
			if err != nil {
				t.Fatal(err)
			}
			baseline := full.Hits
			for _, page := range []struct{ limit, offset int }{
				{10, 0}, {1, 0}, {25, 13}, {10, len(baseline) - 3}, {10, len(baseline) + 10}, {0, 7},
			} {
				want := baseline
				if page.offset > 0 {
					if page.offset >= len(want) {
						want = nil
					} else {
						want = want[page.offset:]
					}
				}
				if page.limit > 0 && len(want) > page.limit {
					want = want[:page.limit]
				}
				resp, err := cat.Query(ctx, Query{Text: qs, Limit: page.limit, Offset: page.offset})
				if err != nil {
					t.Fatal(err)
				}
				got := resp.Hits
				if len(want) == 0 {
					want = []Hit{}
				}
				if len(got) == 0 {
					got = []Hit{}
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d %q limit=%d offset=%d:\n got %v\nwant %v",
						shards, qs, page.limit, page.offset, got, want)
				}
				if resp.Total != len(baseline) {
					t.Errorf("shards=%d %q: Total = %d, want %d", shards, qs, resp.Total, len(baseline))
				}
				again, err := cat.Query(ctx, Query{Text: qs, Limit: page.limit, Offset: page.offset})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(resp.Hits, again.Hits) {
					t.Errorf("shards=%d %q limit=%d offset=%d: pages not stable", shards, qs, page.limit, page.offset)
				}
			}
		}
	}
}

func TestQueryCancellation(t *testing.T) {
	fs := syntheticFS(t, 300)
	cat := shardedCatalog(t, fs, 4)
	if _, err := cat.Query(context.Background(), Query{Text: "alpha"}); err != nil { // warm universes
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	// A context canceled before the call fails with ctx.Err() immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cat.Query(ctx, Query{Text: "alpha OR beta", Limit: 10}); err != context.Canceled {
		t.Fatalf("pre-canceled query err = %v, want context.Canceled", err)
	}

	// Cancel racing the fan-out: the query must return promptly with
	// either a complete result or ctx.Err() — and leave no goroutines.
	for i := 0; i < 50; i++ {
		qctx, qcancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := cat.Query(qctx, Query{Text: "alpha OR beta OR gamma OR delta", Limit: 10})
			done <- err
		}()
		qcancel()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Fatalf("iteration %d: err = %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: canceled query did not return", i)
		}
	}

	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d running, started with %d", g, before)
	}
}

// TestQueryConcurrentWithUpdate races paginated queries against
// incremental updates; under -race this verifies the engine's maintenance
// locking covers the v2 path.
func TestQueryConcurrentWithUpdate(t *testing.T) {
	fs := syntheticFS(t, 120)
	cat := shardedCatalog(t, fs, 4)
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cat.Query(ctx, Query{Text: "alpha OR beta", Limit: 5, Ranking: RankTF})
				if err != nil {
					t.Error(err)
					return
				}
				if len(resp.Hits) > 5 {
					t.Errorf("limit ignored: %d hits", len(resp.Hits))
					return
				}
			}
		}()
	}
	for round := 0; round < 5; round++ {
		for j := 0; j < 12; j++ {
			p := fmt.Sprintf("dir%d/doc%04d.txt", j%4, j)
			content := fmt.Sprintf("alpha churned beta round%d edit%d", round, j)
			if err := fs.WriteFile(p, []byte(content)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := cat.Update(fs, "."); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestQueryTFRankingPublic(t *testing.T) {
	fs := vfs.NewMemFS()
	files := map[string]string{
		"many.txt": "storm storm storm storm calm",
		"few.txt":  "storm calm breeze",
	}
	for name, content := range files {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	cat, err := IndexFS(fs, ".", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	coord, err := cat.Query(ctx, Query{Text: "storm OR breeze"})
	if err != nil {
		t.Fatal(err)
	}
	if coord.Hits[0].Path != "few.txt" || coord.Hits[0].Score != 2 {
		t.Errorf("coordination top hit = %+v", coord.Hits[0])
	}
	tf, err := cat.Query(ctx, Query{Text: "storm OR breeze", Ranking: RankTF})
	if err != nil {
		t.Fatal(err)
	}
	if tf.Hits[0].Path != "many.txt" || tf.Hits[0].Score != 4 {
		t.Errorf("tf top hit = %+v", tf.Hits[0])
	}
	if !reflect.DeepEqual(tf.Hits[0].Terms, []string{"storm"}) {
		t.Errorf("tf top hit terms = %v", tf.Hits[0].Terms)
	}
}

func TestQueryPathPrefixPublic(t *testing.T) {
	fs := syntheticFS(t, 80)
	cat := shardedCatalog(t, fs, 4)
	resp, err := cat.Query(context.Background(), Query{Text: "alpha", PathPrefix: "dir2/"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total != 20 {
		t.Errorf("Total = %d, want 20", resp.Total)
	}
	for _, h := range resp.Hits {
		if !strings.HasPrefix(h.Path, "dir2/") {
			t.Errorf("hit %q escapes prefix", h.Path)
		}
	}
}

func TestQueryExprReuse(t *testing.T) {
	cat, err := IndexFS(demoFS(t), ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	expr, err := ParseQuery("quarterly report")
	if err != nil {
		t.Fatal(err)
	}
	if expr.String() != "(quarterly AND report)" {
		t.Errorf("Expr.String = %q", expr.String())
	}
	ctx := context.Background()
	byExpr, err := cat.Query(ctx, Query{Expr: expr})
	if err != nil {
		t.Fatal(err)
	}
	byText, err := cat.Query(ctx, Query{Text: "quarterly report"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byExpr.Hits, byText.Hits) {
		t.Errorf("Expr and Text disagree: %v vs %v", byExpr.Hits, byText.Hits)
	}
	if _, err := ParseQuery("((("); err == nil {
		t.Error("bad query parsed")
	}
}

func TestQueryRequestValidation(t *testing.T) {
	cat, err := IndexFS(demoFS(t), ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, q := range map[string]Query{
		"parse error":      {Text: "((("},
		"negative limit":   {Text: "report", Limit: -1},
		"negative offset":  {Text: "report", Offset: -3},
		"unknown ranking":  {Text: "report", Ranking: Ranking(77)},
		"empty query text": {},
	} {
		if _, err := cat.Query(ctx, q); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestOptionsValidateNegatives: negative option values fail fast with an
// error naming the field, instead of misbehaving downstream.
func TestOptionsValidateNegatives(t *testing.T) {
	fs := demoFS(t)
	for field, opt := range map[string]Options{
		"Shards":     {Shards: -1},
		"Extractors": {Extractors: -2},
		"Updaters":   {Updaters: -3},
		"Joiners":    {Joiners: -4},
		"MinTermLen": {MinTermLen: -5},
	} {
		_, err := IndexFS(fs, ".", opt)
		if err == nil {
			t.Errorf("negative %s accepted", field)
			continue
		}
		if !strings.Contains(err.Error(), field) {
			t.Errorf("error for negative %s does not name it: %v", field, err)
		}
	}
}

// TestStatsExactTerms: a sharded catalog reports the same distinct-term
// count as the equivalent single-index build — the per-partition sum it
// used to report counts shared terms once per shard.
func TestStatsExactTerms(t *testing.T) {
	fs := demoFS(t)
	seq, err := IndexFS(fs, ".", Options{Implementation: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := IndexFS(fs, ".", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sharded.Stats().Terms, seq.Stats().Terms; got != want {
		t.Errorf("sharded Terms = %d, sequential = %d", got, want)
	}
}

// TestQueryDefaults pins the v1-equivalent defaults of the Query API: the
// zero controls return every hit coordination-ranked across partition
// shapes, and degenerate input (the zero Query) is rejected rather than
// silently defaulting to something.
func TestQueryDefaults(t *testing.T) {
	fs := syntheticFS(t, 120)
	for _, shards := range []int{0, 4} {
		cat := shardedCatalog(t, fs, shards)
		for _, q := range []string{
			"alpha",
			"alpha beta",
			"alpha OR beta",
			"gamma -delta",
			"(alpha OR beta) -epsilon",
			"nosuchterm",
		} {
			res, err := cat.Query(context.Background(), Query{Text: q})
			if err != nil {
				t.Fatalf("Query(%q): %v", q, err)
			}
			if len(res.Hits) != res.Total {
				t.Fatalf("shards=%d %q: zero controls returned %d hits but total %d",
					shards, q, len(res.Hits), res.Total)
			}
			for i := 1; i < len(res.Hits); i++ {
				prev, cur := res.Hits[i-1], res.Hits[i]
				if cur.Score > prev.Score || (cur.Score == prev.Score && cur.File < prev.File) {
					t.Fatalf("shards=%d %q: hits %d,%d out of order: %+v then %+v",
						shards, q, i-1, i, prev, cur)
				}
			}
		}

		// The zero Query must fail, not default to an empty expression.
		if _, err := cat.Query(context.Background(), Query{}); err == nil {
			t.Fatalf("shards=%d: empty query accepted", shards)
		}
	}
}

// TestQueryNormalize covers the daemon's cache key: equivalent spellings
// collapse to one key, different retrieval controls do not, and invalid
// requests are rejected before they can occupy a cache slot.
func TestQueryNormalize(t *testing.T) {
	base, key, err := Query{Text: "cat dog"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Expr == nil {
		t.Fatal("Normalize did not populate Expr")
	}
	for _, same := range []string{"cat AND dog", "  cat   dog ", "(cat dog)", "Cat Dog!"} {
		_, k, err := (Query{Text: same}).Normalize()
		if err != nil {
			t.Fatalf("%q: %v", same, err)
		}
		if k != key {
			t.Errorf("%q normalized to %q, want %q", same, k, key)
		}
	}
	for name, other := range map[string]Query{
		"different query": {Text: "cat OR dog"},
		"limit":           {Text: "cat dog", Limit: 10},
		"offset":          {Text: "cat dog", Offset: 5},
		"ranking":         {Text: "cat dog", Ranking: RankTF},
		"bm25 ranking":    {Text: "cat dog", Ranking: RankBM25},
		"snippets":        {Text: "cat dog", Snippets: true},
		"prefix":          {Text: "cat dog", PathPrefix: "docs/"},
		"prefix cap":      {Text: "cat dog", MaxPrefixTerms: 64},
	} {
		_, k, err := other.Normalize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == key {
			t.Errorf("%s: key collided with the base request", name)
		}
	}
	// A pre-parsed Expr takes precedence over Text, exactly as in Query.
	expr, err := ParseQuery("dog cat")
	if err != nil {
		t.Fatal(err)
	}
	_, k, err := (Query{Text: "ignored", Expr: expr}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if k == key {
		t.Error("Expr-based key ignored the expression")
	}
	for name, bad := range map[string]Query{
		"empty":          {},
		"unbalanced":     {Text: "(cat"},
		"negative limit": {Text: "cat", Limit: -1},
		"bad offset":     {Text: "cat", Offset: -2},
		"bad ranking":    {Text: "cat", Ranking: Ranking(9)},
		"bad prefix cap": {Text: "cat", MaxPrefixTerms: -3},
	} {
		if _, _, err := bad.Normalize(); err == nil {
			t.Errorf("%s request normalized without error", name)
		}
	}
}

// TestNormalizeKeyInjective is the regression test for the cache-key
// hardening: PathPrefix is the one free-form field (an HTTP ?prefix=
// parameter can carry any byte, the \x00 separator included), so it is
// length-prefixed in the key. Every pair of distinct requests below must
// produce distinct keys — before the fix, a prefix containing the raw
// separator could impersonate the key structure around it.
func TestNormalizeKeyInjective(t *testing.T) {
	requests := []Query{
		{Text: "cat dog"},
		{Text: "cat dog", PathPrefix: "docs/"},
		{Text: "cat dog", PathPrefix: "docs/\x00limit=1"},
		{Text: "cat dog", Limit: 1, PathPrefix: "docs/"},
		{Text: "cat dog", PathPrefix: "\x00"},
		{Text: "cat dog", PathPrefix: "\x00\x00"},
		{Text: "cat dog", PathPrefix: "1:a"},
		{Text: "cat dog", PathPrefix: "a\x00prefix=1:a"},
		{Text: "cat dog", Limit: 10, Offset: 5, PathPrefix: "p\x00rank=1"},
		{Text: "cat dog", Limit: 10, Offset: 5, Ranking: RankTF, PathPrefix: "p"},
		{Text: `"cat dog"`},                                 // phrase ≠ conjunction in the key
		{Text: "cat dog", Ranking: RankBM25},                // each rank name keys separately
		{Text: "cat dog", Snippets: true, Limit: 1},         // snippet flag keys separately
		{Text: "cat dog", Limit: 1},                         // ...from the plain limited request
		{Text: "cat do*"},                                   // prefix operator ≠ the term
		{Text: "cat dog", PathPrefix: "p\x00snippets=true"}, // crafted prefix can't fake the flag
		{Text: "cat dog", Snippets: true, PathPrefix: "p"},
		{Text: "cat dog", MaxPrefixTerms: 64},              // explicit cap keys separately
		{Text: "cat dog", MaxPrefixTerms: 1024},            // ...even when equal to the default
		{Text: "cat dog", PathPrefix: "p\x00maxprefix=64"}, // crafted prefix can't fake the cap
		{Text: "cat dog", MaxPrefixTerms: 64, PathPrefix: "p"},
	}
	keys := map[string]int{}
	for i, q := range requests {
		_, key, err := q.Normalize()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if prev, dup := keys[key]; dup {
			t.Errorf("requests %d and %d collided on key %q", prev, i, key)
		}
		keys[key] = i
	}
	// The prefix field must be length-delimited, not merely separated.
	_, key, err := (Query{Text: "cat", PathPrefix: "docs/"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(key, "prefix=5:docs/") {
		t.Errorf("key %q does not length-prefix the PathPrefix field", key)
	}
	// The ranking is keyed by wire name (survives enum renumbering) and
	// the snippet flag is always present.
	if !strings.Contains(key, "rank=count") || !strings.Contains(key, "snippets=false") {
		t.Errorf("key %q does not carry the rank name and snippet flag", key)
	}
	_, key, err = (Query{Text: "cat", Ranking: RankBM25, Snippets: true, Limit: 3}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(key, "rank=bm25") || !strings.Contains(key, "snippets=true") {
		t.Errorf("key %q does not carry rank=bm25 and snippets=true", key)
	}
}

// TestGenerationAdvancesOnCommit pins the cache-key contract: building a
// catalog starts a generation, every committed change advances it, and a
// no-op update leaves it alone (so caches stay warm across empty polls).
func TestGenerationAdvancesOnCommit(t *testing.T) {
	fs := demoFS(t)
	cat, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g0 := cat.Generation()
	if _, err := cat.Update(fs, "."); err != nil {
		t.Fatal(err)
	}
	if cat.Generation() != g0 {
		t.Fatal("no-op update advanced the generation")
	}
	if err := fs.WriteFile("fresh.txt", []byte("omega")); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Update(fs, "."); err != nil {
		t.Fatal(err)
	}
	if cat.Generation() == g0 {
		t.Fatal("committed update did not advance the generation")
	}
}

// TestCatalogSwap: a full rebuild swapped in atomically answers with the
// new contents at a new generation, while queries racing the swap stay
// race-free (run with -race).
func TestCatalogSwap(t *testing.T) {
	fs := demoFS(t)
	cat, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g0 := cat.Generation()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cat.Query(context.Background(), Query{Text: "milk OR omega"}); err != nil {
					t.Error(err)
					return
				}
				cat.Stats()
				cat.Shards()
			}
		}()
	}

	if err := fs.WriteFile("swapped.txt", []byte("omega omega")); err != nil {
		t.Fatal(err)
	}
	fresh, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	cat.Swap(fresh)
	close(stop)
	wg.Wait()

	if cat.Generation() == g0 {
		t.Error("swap did not advance the generation")
	}
	if got := cat.Shards(); got != 4 {
		t.Errorf("swapped catalog reports %d shards, want 4", got)
	}
	resp, err := cat.Query(context.Background(), Query{Text: "omega"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total != 1 {
		t.Errorf("post-swap query: total %d, want 1", resp.Total)
	}
}
