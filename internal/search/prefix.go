package search

import (
	"errors"
	"fmt"
	"strings"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// MaxPrefixTerms is the default cap on how many dictionary terms one
// prefix operator may expand to within a single partition — applied when
// a request leaves Request.MaxPrefixTerms at 0. A short prefix over a
// large corpus would otherwise union a huge slice of the dictionary per
// query; past the cap the query fails with ErrPrefixTooBroad instead of
// degrading every other caller, and the fix — lengthen the prefix or
// raise the cap — is in the error.
const MaxPrefixTerms = 1024

// effectivePrefixCap resolves a request's prefix-expansion cap: 0 means
// the MaxPrefixTerms default (negative values are rejected upstream by
// request validation).
func effectivePrefixCap(cap int) int {
	if cap <= 0 {
		return MaxPrefixTerms
	}
	return cap
}

// ErrPrefixTooBroad reports a prefix operator that expands past
// MaxPrefixTerms dictionary terms in some partition. Errors wrapping it
// name the offending prefix.
var ErrPrefixTooBroad = errors.New("search: prefix matches too many terms")

// expandPrefixes precomputes one partition's expansion of every prefix
// operator in q: for each prefix ordinal, the union of the posting lists
// of every dictionary term carrying that prefix, with per-file occurrence
// counts summed across the matched terms (so TF and BM25 score the
// operator as one pseudo-term). Returns nil when the query has no prefix
// operators. Expansion happens before evaluation fans out, which both
// keeps the cap error independent of boolean short-circuiting and lets
// BM25 aggregate the unions' document frequencies globally.
//
// Each prefix seeks to its start of the sorted dictionary and walks only
// the matching range, so expansion cost tracks the prefix's selectivity,
// not the dictionary size — and on a lazy backend only the matched terms'
// posting blocks are decoded. Sorted term order (a Partition guarantee)
// makes the union's construction order, and hence positional merges,
// identical across backends.
func expandPrefixes(ix index.Partition, q *Query, maxTerms int) ([]*postings.List, error) {
	if len(q.prefixes) == 0 {
		return nil, nil
	}
	limit := effectivePrefixCap(maxTerms)
	out := make([]*postings.List, len(q.prefixes))
	for i, p := range q.prefixes {
		u := &postings.List{}
		matches := 0
		var broad error
		ix.TermsFrom(p, func(term string, _ int) bool {
			if !strings.HasPrefix(term, p) {
				return false
			}
			matches++
			if matches > limit {
				broad = fmt.Errorf("%w: %q matches over %d terms in one partition (lengthen the prefix or raise the cap)",
					ErrPrefixTooBroad, p+"*", limit)
				return false
			}
			u.Merge(ix.Lookup(term))
			return true
		})
		if broad != nil {
			return nil, broad
		}
		out[i] = u
	}
	return out, nil
}
