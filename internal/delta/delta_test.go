package delta

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"desksearch/internal/core"
	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/postings"
	"desksearch/internal/search"
	"desksearch/internal/shard"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

func seedFS(t *testing.T) *vfs.MemFS {
	t.Helper()
	fs := vfs.NewMemFS()
	files := []struct{ name, content string }{
		{"docs/a.txt", "alpha beta"},
		{"docs/b.txt", "beta gamma"},
		{"notes/c.txt", "gamma delta alpha"},
		{"notes/d.txt", "epsilon"},
	}
	for _, f := range files {
		if err := fs.WriteFile(f.name, []byte(f.content)); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func build(t *testing.T, fs vfs.FS, shards int) *core.Result {
	t.Helper()
	res, err := core.Run(fs, ".", core.Config{Implementation: core.Sequential, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func opsByPath(cs *Changeset) map[string]Op {
	out := make(map[string]Op, len(cs.Changes))
	for _, c := range cs.Changes {
		out[c.Path] = c.Op
	}
	return out
}

func TestDiffCleanTreeIsEmpty(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 0)
	cs, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Empty() {
		t.Errorf("clean tree diff = %s: %+v", cs, cs.Changes)
	}
}

func TestDiffDetectsAddModifyDelete(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 0)

	if err := fs.WriteFile("docs/new.txt", []byte("zeta")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("docs/a.txt", []byte("alpha rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("notes/d.txt"); err != nil {
		t.Fatal(err)
	}

	cs, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Op{
		"docs/new.txt": OpAdd,
		"docs/a.txt":   OpModify,
		"notes/d.txt":  OpDelete,
	}
	if got := opsByPath(cs); !reflect.DeepEqual(got, want) {
		t.Errorf("diff ops = %v, want %v", got, want)
	}
	a, m, d := cs.Counts()
	if a != 1 || m != 1 || d != 1 {
		t.Errorf("counts = %d/%d/%d", a, m, d)
	}
	// The modify change must carry the existing FileID.
	for _, c := range cs.Changes {
		if c.Op == OpModify {
			if id, ok := res.Files.Lookup(c.Path); !ok || id != c.ID {
				t.Errorf("modify carries ID %d, table says %d", c.ID, id)
			}
		}
	}
}

// TestDiffDetectsSameSizeEdit: a rewrite that keeps the byte size must
// still be caught via the modification stamp.
func TestDiffDetectsSameSizeEdit(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 0)
	// Same length as "alpha beta", different content and a fresh mtime.
	if err := fs.WriteFile("docs/a.txt", []byte("alphA betA")); err != nil {
		t.Fatal(err)
	}
	cs, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if got := opsByPath(cs); got["docs/a.txt"] != OpModify || len(got) != 1 {
		t.Errorf("same-size edit diff = %v", got)
	}
}

// applyAll is the full update path as the catalog drives it.
func applyAll(t *testing.T, fs vfs.FS, res *core.Result) Stats {
	t.Helper()
	cs, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	plan := Extract(fs, cs, extract.Options{Tokenize: tokenize.Default}, 3)
	if len(plan.Skipped) != 0 {
		t.Fatalf("unexpected skips: %v", plan.Skipped)
	}
	return plan.Commit(Target{Files: res.Files, Partitions: res.Indexes()})
}

// searchSet canonicalizes results for cross-catalog comparison: FileIDs
// differ between an updated and a rebuilt index, paths and scores must not.
func searchSet(t *testing.T, files *index.FileTable, parts []*index.Index, query string) []string {
	t.Helper()
	e := search.NewEngine(files, index.Partitions(parts)...)
	hits, err := e.SearchString(query)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = fmt.Sprintf("%s=%g", h.Path, h.Score)
	}
	sort.Strings(out)
	return out
}

func TestCommitMatchesRebuild(t *testing.T) {
	for _, shards := range []int{0, 1, 3} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			fs := seedFS(t)
			res := build(t, fs, shards)

			// Churn: add, modify, delete, and delete-then-recreate.
			steps := []func(){
				func() {
					fs.WriteFile("docs/new.txt", []byte("zeta alpha"))
					fs.Remove("notes/d.txt")
				},
				func() {
					fs.WriteFile("docs/a.txt", []byte("rewritten entirely omega"))
					fs.WriteFile("notes/d.txt", []byte("epsilon returns"))
				},
				func() {
					fs.Remove("docs/b.txt")
					fs.WriteFile("deep/nested/e.txt", []byte("brand new beta"))
				},
			}
			queries := []string{
				"alpha", "beta", "omega", "-alpha", "alpha OR epsilon",
				"beta -gamma", "(alpha OR beta) -omega", "epsilon",
			}
			for step, churn := range steps {
				churn()
				applyAll(t, fs, res)
				rebuilt := build(t, fs, shards)
				for _, q := range queries {
					got := searchSet(t, res.Files, res.Indexes(), q)
					want := searchSet(t, rebuilt.Files, rebuilt.Indexes(), q)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("step %d %q: incremental %v, rebuild %v", step, q, got, want)
					}
				}
			}
		})
	}
}

func TestCommitTombstonesAndNewIDs(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 2)
	oldID, _ := res.Files.Lookup("notes/d.txt")

	fs.Remove("notes/d.txt")
	applyAll(t, fs, res)
	if res.Files.Live(oldID) {
		t.Fatal("deleted file still live")
	}

	fs.WriteFile("notes/d.txt", []byte("epsilon back"))
	applyAll(t, fs, res)
	newID, ok := res.Files.Lookup("notes/d.txt")
	if !ok || newID == oldID {
		t.Fatalf("recreated file: id=%d ok=%v oldID=%d (IDs must not be reused)", newID, ok, oldID)
	}
	if !res.Files.Live(newID) || res.Files.Live(oldID) {
		t.Error("liveness wrong after recreation")
	}
}

// TestCommitRoutesByFNVSplit: on a hash-split set every file's postings
// must stay in its ShardFor partition after updates.
func TestCommitRoutesByFNVSplit(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 3)
	fs.WriteFile("docs/a.txt", []byte("fresh content here"))
	fs.WriteFile("docs/new.txt", []byte("even fresher"))
	applyAll(t, fs, res)

	parts := res.Indexes()
	for i, ix := range parts {
		ix.Range(func(term string, l *postings.List) bool {
			for _, id := range l.IDs() {
				if owner := shard.ShardFor(id, len(parts)); owner != i {
					t.Errorf("term %q: file %d in partition %d, ShardFor says %d", term, id, i, owner)
				}
			}
			return true
		})
	}
}

func TestCommitDirtyTracking(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 4)
	fs.WriteFile("docs/a.txt", []byte("touched once"))

	cs, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	plan := Extract(fs, cs, extract.Options{Tokenize: tokenize.Default}, 2)
	dirty := map[int]bool{}
	plan.Commit(Target{
		Files:      res.Files,
		Partitions: res.Indexes(),
		OnDirty:    func(i int) { dirty[i] = true },
	})
	id, _ := res.Files.Lookup("docs/a.txt")
	owner := shard.ShardFor(id, 4)
	if !dirty[owner] {
		t.Errorf("owning partition %d not marked dirty: %v", owner, dirty)
	}
	if len(dirty) != 1 {
		t.Errorf("one-file modify dirtied %d partitions: %v", len(dirty), dirty)
	}
}

func TestEmptyChangesetCommitIsNoop(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 2)
	before := res.Stats()
	st := applyAll(t, fs, res)
	if st != (Stats{}) {
		t.Errorf("empty commit stats = %+v", st)
	}
	if after := res.Stats(); after != before {
		t.Errorf("no-op commit changed stats: %+v vs %+v", after, before)
	}
}

// flakyFS fails ReadFile for chosen paths, simulating files locked or
// unreadable at the instant an update runs.
type flakyFS struct {
	vfs.FS
	mu   sync.Mutex
	fail map[string]bool
}

func (f *flakyFS) setFail(name string, bad bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail == nil {
		f.fail = make(map[string]bool)
	}
	f.fail[name] = bad
}

func (f *flakyFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	bad := f.fail[name]
	f.mu.Unlock()
	if bad {
		return nil, fmt.Errorf("flaky: %s is locked", name)
	}
	return f.FS.ReadFile(name)
}

// TestFailedModifyExtractionRetries: a modified file whose re-extraction
// fails must stay pending — stale metadata, postings dropped — so the next
// Update retries it instead of silently losing it forever.
func TestFailedModifyExtractionRetries(t *testing.T) {
	mem := seedFS(t)
	fs := &flakyFS{FS: mem}
	res := build(t, fs, 2)

	mem.WriteFile("docs/a.txt", []byte("updated alpha content"))
	fs.setFail("docs/a.txt", true)

	cs, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	plan := Extract(fs, cs, extract.Options{Tokenize: tokenize.Default}, 2)
	if len(plan.Skipped) != 1 {
		t.Fatalf("skipped = %v, want the locked file", plan.Skipped)
	}
	st := plan.Commit(Target{Files: res.Files, Partitions: res.Indexes()})
	if st.Modified != 0 {
		t.Errorf("failed modify counted as applied: %+v", st)
	}

	// The file's old postings are gone (its content is stale) but the
	// change is still pending: a fresh Diff must re-report it.
	cs2, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if got := opsByPath(cs2); got["docs/a.txt"] != OpModify || len(got) != 1 {
		t.Fatalf("after failed extraction diff = %v, want pending modify", got)
	}

	// The lock clears; the retry must converge with a rebuild.
	fs.setFail("docs/a.txt", false)
	applyAll(t, fs, res)
	rebuilt := build(t, mem, 2)
	for _, q := range []string{"alpha", "updated", "-alpha"} {
		got := searchSet(t, res.Files, res.Indexes(), q)
		want := searchSet(t, rebuilt.Files, rebuilt.Indexes(), q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q after retry: %v, want %v", q, got, want)
		}
	}
}

// TestFailedAddExtractionRetries: an added file whose extraction fails is
// not registered, so the next Update sees it as still-new and retries.
func TestFailedAddExtractionRetries(t *testing.T) {
	mem := seedFS(t)
	fs := &flakyFS{FS: mem}
	res := build(t, fs, 2)

	mem.WriteFile("docs/new.txt", []byte("omega content"))
	fs.setFail("docs/new.txt", true)
	cs, _ := Diff(fs, ".", res.Files)
	plan := Extract(fs, cs, extract.Options{Tokenize: tokenize.Default}, 2)
	plan.Commit(Target{Files: res.Files, Partitions: res.Indexes()})
	if _, ok := res.Files.Lookup("docs/new.txt"); ok {
		t.Fatal("failed add was registered anyway")
	}

	fs.setFail("docs/new.txt", false)
	st := applyAll(t, fs, res)
	if st.Added != 1 {
		t.Fatalf("retry stats = %+v", st)
	}
	if _, ok := res.Files.Lookup("docs/new.txt"); !ok {
		t.Error("retried add still missing")
	}
}

// TestCommitIsIdempotent: re-applying a changeset (a retry, or a stale
// diff) must not duplicate file-table entries or postings.
func TestCommitIsIdempotent(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 2)
	fs.WriteFile("docs/new.txt", []byte("zeta fresh"))
	fs.WriteFile("docs/a.txt", []byte("alpha edited"))
	fs.Remove("notes/d.txt")

	cs, err := Diff(fs, ".", res.Files)
	if err != nil {
		t.Fatal(err)
	}
	apply := func() Stats {
		plan := Extract(fs, cs, extract.Options{Tokenize: tokenize.Default}, 2)
		return plan.Commit(Target{Files: res.Files, Partitions: res.Indexes()})
	}
	apply()
	filesAfterOnce := res.Files.LiveCount()
	postingsAfterOnce := res.Stats().Postings

	st := apply() // same changeset again
	if st.Added != 0 {
		t.Errorf("second apply re-added files: %+v", st)
	}
	if got := res.Files.LiveCount(); got != filesAfterOnce {
		t.Errorf("live files %d after double apply, want %d", got, filesAfterOnce)
	}
	if got := res.Stats().Postings; got != postingsAfterOnce {
		t.Errorf("postings %d after double apply, want %d", got, postingsAfterOnce)
	}
	// And the result still matches a rebuild.
	rebuilt := build(t, fs, 2)
	for _, q := range []string{"alpha", "zeta", "-epsilon"} {
		got := searchSet(t, res.Files, res.Indexes(), q)
		want := searchSet(t, rebuilt.Files, rebuilt.Indexes(), q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q after double apply: %v, want %v", q, got, want)
		}
	}
}
