module desksearch

go 1.24
