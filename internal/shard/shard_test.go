package shard

import (
	"testing"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// buildCorpus returns a file table and a single index over a small corpus
// with overlapping vocabulary, plus the per-file term blocks for
// re-deriving expectations.
func buildCorpus(t testing.TB) (*index.FileTable, *index.Index, [][]string) {
	t.Helper()
	blocks := [][]string{
		{"alpha", "beta", "gamma"},
		{"alpha", "delta"},
		{"beta", "delta", "epsilon"},
		{"gamma"},
		{"alpha", "beta", "gamma", "delta", "epsilon"},
		{"zeta"},
		{"alpha", "zeta"},
		{"epsilon", "zeta"},
		{}, // a term-free file still occupies a FileID
		{"alpha"},
	}
	files := index.NewFileTable()
	ix := index.New(16)
	for i, terms := range blocks {
		id := files.Add("file-"+string(rune('a'+i)), int64(len(terms)), int64(i+1))
		ix.AddBlock(id, terms, nil)
	}
	return files, ix, blocks
}

func TestShardForBoundsAndDeterminism(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 13} {
		for id := postings.FileID(0); id < 1000; id++ {
			s := ShardFor(id, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardFor(%d, %d) = %d out of range", id, n, s)
			}
			if s != ShardFor(id, n) {
				t.Fatalf("ShardFor(%d, %d) not deterministic", id, n)
			}
		}
	}
	if ShardFor(42, 0) != 0 || ShardFor(42, 1) != 0 {
		t.Error("n <= 1 must map every file to shard 0")
	}
}

func TestShardForSpreads(t *testing.T) {
	// 1000 sequential IDs over 4 shards: hashing should not leave any
	// shard starved the way a range split of clustered IDs would.
	counts := make([]int, 4)
	for id := postings.FileID(0); id < 1000; id++ {
		counts[ShardFor(id, 4)]++
	}
	for s, c := range counts {
		if c < 100 {
			t.Errorf("shard %d got only %d of 1000 files", s, c)
		}
	}
}

// checkPartition verifies the document-sharding invariants of set against
// the original single index: the shards' union equals the original, and
// every posting sits in the shard its FileID hashes to.
func checkPartition(t *testing.T, set *Set, original *index.Index, hashed bool) {
	t.Helper()
	clones := make([]*index.Index, set.Len())
	for i, ix := range set.Shards() {
		clones[i] = ix.Clone()
	}
	union := index.JoinAll(clones)
	if !union.Equal(original) {
		t.Errorf("union of %d shards != original index", set.Len())
	}
	if !hashed {
		return
	}
	for s, ix := range set.Shards() {
		ix.Range(func(term string, l *postings.List) bool {
			for _, id := range l.IDs() {
				if want := ShardFor(id, set.Len()); want != s {
					t.Errorf("posting (%q, %d) in shard %d, hashes to %d", term, id, s, want)
				}
			}
			return true
		})
	}
}

func TestDistributeSingleSource(t *testing.T) {
	files, ix, _ := buildCorpus(t)
	for _, n := range []int{1, 2, 4, 8} {
		set := Distribute(files, []*index.Index{ix}, n)
		if set.Len() != n {
			t.Fatalf("Len = %d, want %d", set.Len(), n)
		}
		if set.Files() != files {
			t.Error("file table not shared")
		}
		checkPartition(t, set, ix, true)
		if got, want := set.Stats().Postings, ix.NumPostings(); got != want {
			t.Errorf("n=%d: Stats().Postings = %d, want %d", n, got, want)
		}
	}
}

func TestDistributeMultipleSources(t *testing.T) {
	files, ix, blocks := buildCorpus(t)
	// Split the corpus round-robin into 3 "replicas", then re-shard to 4.
	replicas := []*index.Index{index.New(8), index.New(8), index.New(8)}
	for i, terms := range blocks {
		replicas[i%3].AddBlock(postings.FileID(i), terms, nil)
	}
	set := Distribute(files, replicas, 4)
	checkPartition(t, set, ix, true)
}

func TestDistributeClampsShardCount(t *testing.T) {
	files, ix, _ := buildCorpus(t)
	set := Distribute(files, []*index.Index{ix}, 0)
	if set.Len() != 1 {
		t.Fatalf("Len = %d, want 1", set.Len())
	}
	checkPartition(t, set, ix, false)
}

func TestFromReplicas(t *testing.T) {
	files, ix, blocks := buildCorpus(t)
	replicas := []*index.Index{index.New(8), index.New(8)}
	for i, terms := range blocks {
		replicas[i%2].AddBlock(postings.FileID(i), terms, nil)
	}
	set := FromReplicas(files, replicas)
	if set.Len() != 2 {
		t.Fatalf("Len = %d, want 2", set.Len())
	}
	if set.Shards()[0] != replicas[0] || set.Shards()[1] != replicas[1] {
		t.Error("FromReplicas must adopt the replicas without copying")
	}
	checkPartition(t, set, ix, false)
}
