// Package vfs is the filesystem substrate of the index generator.
//
// The paper's experiments depend heavily on filesystem behaviour (directory
// traversal cost, read bandwidth, OS caching). To make the reproduction
// hermetic and deterministic this package abstracts the filesystem behind a
// small interface with four implementations:
//
//   - MemFS: an in-memory tree with deterministic traversal order, used by
//     tests, examples, and live benchmarks;
//   - OSFS: a passthrough to the host filesystem for the real tool;
//   - Meter: a wrapper counting opens, reads, and bytes for measurements;
//   - DelayFS: a wrapper injecting modelled per-open seek and per-byte
//     transfer delays, used to emulate a slow disk on fast hardware.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotExist is returned when a path does not exist.
var ErrNotExist = errors.New("vfs: file does not exist")

// ErrIsDirectory is returned when a file operation hits a directory.
var ErrIsDirectory = errors.New("vfs: is a directory")

// DirEntry describes one entry of a directory listing.
type DirEntry struct {
	Name  string // base name within the directory
	IsDir bool
	Size  int64 // file size in bytes; 0 for directories
	// ModTime is the file's last-modification stamp: Unix nanoseconds for
	// OSFS, a monotonic per-filesystem write counter for MemFS (so change
	// detection stays deterministic in tests), and 0 for directories.
	// Incremental index maintenance compares it, together with Size, to
	// decide whether a file changed since it was indexed.
	ModTime int64
}

// FS is the filesystem seen by the index generator. Paths are
// slash-separated and relative to the filesystem root; "." names the root.
//
// Implementations must be safe for concurrent reads: Stage 2 runs many
// extractor goroutines reading files at once.
type FS interface {
	// Open returns a reader for the named file.
	Open(name string) (io.ReadCloser, error)
	// ReadFile returns the entire content of the named file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the named directory in deterministic (sorted) order.
	ReadDir(name string) ([]DirEntry, error)
	// Stat returns the entry for the named file or directory.
	Stat(name string) (DirEntry, error)
}

// WriteFS is an FS that also supports creating files and directories;
// corpus generation targets this.
type WriteFS interface {
	FS
	// WriteFile creates (or replaces) the named file with data, creating
	// parent directories as needed.
	WriteFile(name string, data []byte) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(name string) error
}

// memNode is a file or directory in a MemFS.
type memNode struct {
	data     []byte
	mtime    int64               // write-counter stamp; 0 for directories
	children map[string]*memNode // nil for files
}

// MemFS is an in-memory filesystem. A zero MemFS is empty and ready to use.
// Reads are safe for concurrent use; writes must not race with reads
// (corpus generation completes before indexing starts, matching the paper's
// phases).
type MemFS struct {
	mu   sync.RWMutex
	root *memNode
	// clock stamps writes with a monotonically increasing counter, the
	// in-memory stand-in for a modification time: deterministic across
	// runs, strictly increasing across writes, bumped even when a file is
	// rewritten with identical content (like a real mtime).
	clock int64
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{root: &memNode{children: map[string]*memNode{}}}
}

// clean normalizes a path into elements; it rejects escapes above the root.
func splitPath(name string) ([]string, error) {
	name = strings.Trim(name, "/")
	if name == "" || name == "." {
		return nil, nil
	}
	parts := strings.Split(name, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			if len(out) == 0 {
				return nil, fmt.Errorf("vfs: path escapes root: %q", name)
			}
			out = out[:len(out)-1]
		default:
			out = append(out, p)
		}
	}
	return out, nil
}

func (m *MemFS) lookup(name string) (*memNode, error) {
	parts, err := splitPath(name)
	if err != nil {
		return nil, err
	}
	n := m.root
	for _, p := range parts {
		if n.children == nil {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		child, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		n = child
	}
	return n, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	data, err := m.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return &memReader{data: data}, nil
}

type memReader struct {
	data []byte
	off  int
}

func (r *memReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *memReader) Close() error { return nil }

// ReadFile implements FS. The returned slice aliases the stored content and
// must not be modified.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := m.lookup(name)
	if err != nil {
		return nil, err
	}
	if n.children != nil {
		return nil, fmt.Errorf("%w: %s", ErrIsDirectory, name)
	}
	return n.data, nil
}

// ReadDir implements FS; entries are sorted by name so traversal order is
// deterministic across runs.
func (m *MemFS) ReadDir(name string) ([]DirEntry, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := m.lookup(name)
	if err != nil {
		return nil, err
	}
	if n.children == nil {
		return nil, fmt.Errorf("vfs: not a directory: %s", name)
	}
	out := make([]DirEntry, 0, len(n.children))
	for base, child := range n.children {
		e := DirEntry{Name: base, IsDir: child.children != nil}
		if !e.IsDir {
			e.Size = int64(len(child.data))
			e.ModTime = child.mtime
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (DirEntry, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := m.lookup(name)
	if err != nil {
		return DirEntry{}, err
	}
	parts, _ := splitPath(name)
	base := "."
	if len(parts) > 0 {
		base = parts[len(parts)-1]
	}
	e := DirEntry{Name: base, IsDir: n.children != nil}
	if !e.IsDir {
		e.Size = int64(len(n.data))
		e.ModTime = n.mtime
	}
	return e, nil
}

// WriteFile implements WriteFS.
func (m *MemFS) WriteFile(name string, data []byte) error {
	parts, err := splitPath(name)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("vfs: cannot write to root")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := n.children[p]
		if !ok {
			child = &memNode{children: map[string]*memNode{}}
			n.children[p] = child
		}
		if child.children == nil {
			return fmt.Errorf("vfs: %s: parent is a file", name)
		}
		n = child
	}
	base := parts[len(parts)-1]
	if existing, ok := n.children[base]; ok && existing.children != nil {
		return fmt.Errorf("%w: %s", ErrIsDirectory, name)
	}
	m.clock++
	n.children[base] = &memNode{data: data, mtime: m.clock}
	return nil
}

// Remove deletes the named file or (recursively) directory. Removing a
// missing path is an error, matching os.RemoveAll's file semantics closely
// enough for the incremental-update tests that churn a corpus.
func (m *MemFS) Remove(name string) error {
	parts, err := splitPath(name)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("vfs: cannot remove root")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := n.children[p]
		if !ok || child.children == nil {
			return fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		n = child
	}
	base := parts[len(parts)-1]
	if _, ok := n.children[base]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(n.children, base)
	return nil
}

// MkdirAll implements WriteFS.
func (m *MemFS) MkdirAll(name string) error {
	parts, err := splitPath(name)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			child = &memNode{children: map[string]*memNode{}}
			n.children[p] = child
		}
		if child.children == nil {
			return fmt.Errorf("vfs: %s: is a file", name)
		}
		n = child
	}
	return nil
}

// OSFS exposes a host directory as an FS rooted at dir.
type OSFS struct {
	dir string
}

// NewOSFS returns an FS backed by the host filesystem, rooted at dir.
func NewOSFS(dir string) *OSFS { return &OSFS{dir: dir} }

func (o *OSFS) host(name string) (string, error) {
	parts, err := splitPath(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(append([]string{o.dir}, parts...)...), nil
}

// Open implements FS.
func (o *OSFS) Open(name string) (io.ReadCloser, error) {
	p, err := o.host(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f, err
}

// ReadFile implements FS.
func (o *OSFS) ReadFile(name string) ([]byte, error) {
	p, err := o.host(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return data, err
}

// ReadDir implements FS.
func (o *OSFS) ReadDir(name string) ([]DirEntry, error) {
	p, err := o.host(name)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	out := make([]DirEntry, 0, len(entries))
	for _, e := range entries {
		de := DirEntry{Name: e.Name(), IsDir: e.IsDir()}
		if !e.IsDir() {
			if info, err := e.Info(); err == nil {
				de.Size = info.Size()
				de.ModTime = info.ModTime().UnixNano()
			}
		}
		out = append(out, de)
	}
	// os.ReadDir sorts already; keep the invariant explicit.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Stat implements FS.
func (o *OSFS) Stat(name string) (DirEntry, error) {
	p, err := o.host(name)
	if err != nil {
		return DirEntry{}, err
	}
	info, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return DirEntry{}, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return DirEntry{}, err
	}
	e := DirEntry{Name: info.Name(), IsDir: info.IsDir()}
	if !e.IsDir {
		e.Size = info.Size()
		e.ModTime = info.ModTime().UnixNano()
	}
	return e, nil
}

// WriteFile implements WriteFS.
func (o *OSFS) WriteFile(name string, data []byte) error {
	p, err := o.host(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, data, 0o644)
}

// MkdirAll implements WriteFS.
func (o *OSFS) MkdirAll(name string) error {
	p, err := o.host(name)
	if err != nil {
		return err
	}
	return os.MkdirAll(p, 0o755)
}

var (
	_ WriteFS = (*MemFS)(nil)
	_ WriteFS = (*OSFS)(nil)
)
