// Package broker implements dsearchd's scatter-gather front end for
// distributed serving: a thin coordinator that fans queries out to worker
// daemons (dsearchd -worker), each holding a subset of one sharded index
// directory, and merges their partial results into responses bit-identical
// to what a single node serving the whole directory would produce.
//
// The deployment unit is the replica group: an ordered list of worker URLs
// that all serve the same shard subset. Groups partition the directory —
// their shard sets are disjoint and together cover every shard — and
// replicas within a group are interchangeable, which is what failover and
// hedging trade on. The topology is declared up front (dsearchd -broker
// -workers=...) and verified against every reachable worker's
// /internal/meta before the broker serves.
//
// Three mechanisms keep tail latency in check, in escalating order:
//
//   - rotation: each request starts at the next healthy replica of a
//     group, spreading load round-robin and skipping replicas the health
//     loop has marked down;
//   - failover: a retryable failure (connection error, 5xx, per-attempt
//     timeout) immediately starts the next replica, so one dead worker
//     costs one RTT, not a user-visible error;
//   - hedging: if the primary has not answered after the group's hedge
//     delay — the 95th percentile of its recent latencies, or a fixed
//     -hedge value — the same request is issued to the next replica and
//     the first answer wins. Requests are read-only and idempotent, so
//     the duplicate work is pure insurance against stragglers.
//
// Only deterministic worker rejections (HTTP 4xx: parse errors, unknown
// rankings, over-broad prefixes) stop a request early — a replica would
// fail identically, so retrying is waste. Everything else is retried
// until the group runs out of replicas.
package broker

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"desksearch/internal/timing"
)

// Config wires a Broker to its worker fleet.
type Config struct {
	// Groups is the replica topology: one inner slice per shard-subset
	// group, each listing the base URLs (http://host:port) of the workers
	// serving that subset. Required, and every group needs at least one
	// URL.
	Groups [][]string
	// Timeout bounds each front-door request end to end; zero falls back
	// to 10 s. A request's own timeout parameter may shorten it.
	Timeout time.Duration
	// MaxLimit caps the per-request limit parameter; zero falls back to
	// 1000. It should not exceed the workers' own -max-limit, or deep
	// pages will come back truncated.
	MaxLimit int
	// HedgeAfter, when positive, is a fixed delay before a straggling
	// worker request is hedged to the next replica. Zero selects the
	// adaptive policy: the group's observed p95 latency (floored at
	// MinHedgeDelay), so hedges fire for genuine stragglers rather than
	// on every slightly slow request.
	HedgeAfter time.Duration
	// Logf, when non-nil, receives one line per replica health transition
	// and per failover.
	Logf func(format string, args ...any)
}

// MinHedgeDelay floors the adaptive hedge delay, keeping a cold window
// (or a microsecond-fast group) from hedging every request in two.
const MinHedgeDelay = 2 * time.Millisecond

// defaultHedgeDelay is the adaptive policy's stand-in before a group has
// observed any latencies.
const defaultHedgeDelay = 50 * time.Millisecond

// replica is one worker endpoint of a group.
type replica struct {
	url     string
	healthy atomic.Bool
}

// group is one shard-subset replica group.
type group struct {
	replicas []*replica
	// rr is the rotation cursor: each request starts at the next healthy
	// replica, spreading load across the group.
	rr atomic.Uint64
	// window holds recent successful request latencies against this
	// group — the adaptive hedge delay's and per-attempt timeout's input.
	window *timing.Window
	// shards is the group's verified shard subset (from /internal/meta).
	shards []int
	// generation is the group's last observed catalog generation.
	generation atomic.Uint64
}

// Broker is the scatter-gather coordinator. Create with New, verify the
// fleet with CheckTopology, serve Handler, and run Watch for health
// rotation.
type Broker struct {
	groups  []*group
	client  httpDoer
	timeout time.Duration
	maxLim  int
	hedge   time.Duration
	logf    func(string, ...any)
	start   time.Time

	// Fleet facts established by CheckTopology.
	totalShards int
	files       int
	positional  bool

	queries, queryErrors         atomic.Uint64
	hedges, hedgeWins, failovers atomic.Uint64

	// metrics is the /metrics exposition surface, built at the end of New
	// over the counters above (see metrics.go).
	metrics *brokerMetrics
}

// New returns a broker over cfg. The worker fleet is not contacted —
// call CheckTopology before serving.
func New(cfg Config) (*Broker, error) {
	if len(cfg.Groups) == 0 {
		return nil, errors.New("broker: no worker groups configured")
	}
	b := &Broker{
		groups:  make([]*group, len(cfg.Groups)),
		client:  newHTTPClient(),
		timeout: cfg.Timeout,
		maxLim:  cfg.MaxLimit,
		hedge:   cfg.HedgeAfter,
		logf:    cfg.Logf,
		start:   time.Now(),
	}
	if b.timeout == 0 {
		b.timeout = 10 * time.Second
	}
	if b.maxLim == 0 {
		b.maxLim = 1000
	}
	if b.logf == nil {
		b.logf = func(string, ...any) {}
	}
	for gi, urls := range cfg.Groups {
		if len(urls) == 0 {
			return nil, fmt.Errorf("broker: group %d has no workers", gi)
		}
		g := &group{window: timing.NewWindow(0)}
		for _, raw := range urls {
			u, err := url.Parse(strings.TrimRight(raw, "/"))
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("broker: group %d: invalid worker URL %q", gi, raw)
			}
			r := &replica{url: u.String()}
			r.healthy.Store(true) // optimistic until the health loop says otherwise
			g.replicas = append(g.replicas, r)
		}
		b.groups[gi] = g
	}
	b.initMetrics()
	return b, nil
}

// CheckTopology fetches /internal/meta from every reachable worker and
// verifies the declared groups form a coherent deployment: replicas of a
// group serve identical shard subsets, every group agrees on the
// directory's shard count and live file count (they must serve the same
// manifest), and the groups' subsets are disjoint and together cover
// every shard. At least one replica per group must be reachable; an
// unreachable replica is marked unhealthy and skipped rather than
// failing the check — that is a capacity problem, not a topology one.
func (b *Broker) CheckTopology(ctx context.Context) error {
	type groupMeta struct {
		meta WorkerMetaView
		from string
	}
	metas := make([]groupMeta, len(b.groups))
	for gi, g := range b.groups {
		var first *groupMeta
		for _, r := range g.replicas {
			m, err := b.fetchMeta(ctx, r.url)
			if err != nil {
				r.healthy.Store(false)
				b.logf("broker: topology: %s unreachable: %v", r.url, err)
				continue
			}
			r.healthy.Store(true)
			if first == nil {
				first = &groupMeta{meta: m, from: r.url}
				continue
			}
			if !equalInts(m.Shards, first.meta.Shards) || m.TotalShards != first.meta.TotalShards {
				return fmt.Errorf("broker: group %d replicas disagree: %s serves shards %v/%d, %s serves %v/%d",
					gi, first.from, first.meta.Shards, first.meta.TotalShards, r.url, m.Shards, m.TotalShards)
			}
		}
		if first == nil {
			return fmt.Errorf("broker: group %d: no reachable worker", gi)
		}
		metas[gi] = *first
	}

	total := metas[0].meta.TotalShards
	files := metas[0].meta.Files
	positional := true
	claimed := make(map[int]int) // shard -> claiming group
	for gi, gm := range metas {
		m := gm.meta
		if m.TotalShards != total {
			return fmt.Errorf("broker: shard-count mismatch: %s reports %d total shards, %s reports %d",
				metas[0].from, total, gm.from, m.TotalShards)
		}
		if m.Files != files {
			return fmt.Errorf("broker: manifest mismatch: %s reports %d files, %s reports %d — workers must serve the same index directory",
				metas[0].from, files, gm.from, m.Files)
		}
		positional = positional && m.Positional
		if len(m.Shards) == 0 {
			return fmt.Errorf("broker: group %d (%s) serves no shards", gi, gm.from)
		}
		for _, s := range m.Shards {
			if prev, dup := claimed[s]; dup {
				return fmt.Errorf("broker: shard %d claimed by both group %d and group %d", s, prev, gi)
			}
			claimed[s] = gi
		}
		b.groups[gi].shards = m.Shards
		b.groups[gi].generation.Store(m.Generation)
	}
	for s := 0; s < total; s++ {
		if _, ok := claimed[s]; !ok {
			return fmt.Errorf("broker: shard %d of %d is served by no group", s, total)
		}
	}
	b.totalShards = total
	b.files = files
	b.positional = positional
	return nil
}

// Watch polls every replica's /healthz every interval until ctx is done,
// rotating replicas out of (and back into) request candidacy. Transitions
// are logged.
func (b *Broker) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			b.healthSweep(ctx, interval)
		}
	}
}

// healthSweep probes every replica once, concurrently.
func (b *Broker) healthSweep(ctx context.Context, budget time.Duration) {
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	var wg sync.WaitGroup
	for _, g := range b.groups {
		for _, r := range g.replicas {
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				ok := b.probeHealth(ctx, r.url)
				if was := r.healthy.Swap(ok); was != ok {
					if ok {
						b.logf("broker: %s healthy again", r.url)
					} else {
						b.logf("broker: %s marked unhealthy", r.url)
					}
				}
			}(r)
		}
	}
	wg.Wait()
}

// candidates returns the group's replicas in attempt order for one
// request: healthy replicas first, rotated by the round-robin cursor,
// then unhealthy ones as a last resort (a "down" replica may have just
// recovered, and trying it beats failing the request).
func (g *group) candidates() []*replica {
	n := len(g.replicas)
	start := int(g.rr.Add(1)) % n
	healthy := make([]*replica, 0, n)
	var down []*replica
	for i := 0; i < n; i++ {
		r := g.replicas[(start+i)%n]
		if r.healthy.Load() {
			healthy = append(healthy, r)
		} else {
			down = append(down, r)
		}
	}
	return append(healthy, down...)
}

// hedgeDelay is how long a group's primary attempt runs before the same
// request is hedged to the next replica.
func (b *Broker) hedgeDelay(g *group) time.Duration {
	if b.hedge > 0 {
		return b.hedge
	}
	d := g.window.P95(defaultHedgeDelay)
	if d < MinHedgeDelay {
		d = MinHedgeDelay
	}
	return d
}

// attemptTimeout bounds one replica attempt: generously above the
// group's recent p95 so normal variance never trips it, but far enough
// inside the request deadline that a hung worker leaves time to fail
// over. Cold windows get the full request budget.
func (b *Broker) attemptTimeout(g *group) time.Duration {
	s, ok := g.window.Snapshot()
	if !ok {
		return b.timeout
	}
	d := 8 * s.P95
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > b.timeout {
		d = b.timeout
	}
	return d
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
