package segment

import (
	"encoding/binary"
	"fmt"
	"io"

	"desksearch/internal/fnv"
	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// Write serializes ix as a DSIX v10 lazy segment (see the package comment
// and docs/FORMAT.md for the layout). The term dictionary is emitted in
// sorted order with one checksummed posting block per term, each block
// prefixed by a skip table; a reader can open the result in O(dictionary)
// and decode blocks on demand.
func Write(w io.Writer, ix *index.Index) error {
	flags := byte(0)
	if ix.Positional() {
		flags |= flagPositional
	}

	// Posting blocks, buffered in term order. Segments are per-shard, so
	// the buffer is bounded by shard size — same budget the eager writer
	// already spends on its frame payload.
	terms := ix.Terms(nil)
	type dictEnt struct {
		term string
		df   int
		blen int
		sum  uint64
	}
	dict := make([]dictEnt, 0, len(terms))
	var blocks []byte
	for _, term := range terms {
		l := ix.Lookup(term)
		if l == nil || l.Len() == 0 {
			continue // defensive: the index never stores empty lists
		}
		start := len(blocks)
		var err error
		blocks, err = appendBlock(blocks, l, ix.Positional())
		if err != nil {
			return fmt.Errorf("segment: term %q: %w", term, err)
		}
		dict = append(dict, dictEnt{
			term: term,
			df:   l.Len(),
			blen: len(blocks) - start,
			sum:  fnv.Hash64Bytes(blocks[start:]),
		})
	}

	// Dictionary region.
	var buf []byte
	docs := ix.Docs().IDs()
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	prev := postings.FileID(0)
	for i, id := range docs {
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		buf = binary.AppendUvarint(buf, delta)
		prev = id
	}
	buf = binary.AppendUvarint(buf, uint64(len(blocks)))
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, e := range dict {
		buf = binary.AppendUvarint(buf, uint64(len(e.term)))
		buf = append(buf, e.term...)
		buf = binary.AppendUvarint(buf, uint64(e.df))
		buf = binary.AppendUvarint(buf, uint64(e.blen))
		buf = binary.LittleEndian.AppendUint64(buf, e.sum)
	}

	// Header + dictionary + their checksum, then the blocks. The checksum
	// covers everything Open parses eagerly, so a reader verifies before
	// trusting a single dictionary byte — the frame codec's checksum-first
	// rule scoped down to the eagerly read region.
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, index.LazySegmentVersion)
	hdr = append(hdr, segKind, flags)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(buf)))

	h := fnv.New64()
	h.Write(hdr)
	h.Write(buf)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())

	for _, part := range [][]byte{hdr, buf, sum[:], blocks} {
		if _, err := w.Write(part); err != nil {
			return err
		}
	}
	return nil
}

// appendBlock appends one term's posting block to dst: the skip table,
// then the standard posting-list encoding. Skip entries are recovered by
// re-scanning the encoding's ID section — entry k records ids[k*skipInterval]
// and the offset just past its varint, both delta-coded, so a seek resumes
// decoding at posting k*skipInterval+1.
func appendBlock(dst []byte, l *postings.List, positional bool) ([]byte, error) {
	var enc []byte
	if positional {
		enc = l.EncodePositional(nil)
	} else {
		enc = l.Encode(nil)
	}

	count, n := binary.Uvarint(enc)
	if n <= 0 || count != uint64(l.Len()) {
		return nil, fmt.Errorf("re-scan of fresh encoding failed") // unreachable
	}
	type skip struct {
		id  uint64
		off int
	}
	skips := make([]skip, 0, maxSkips(l.Len()))
	off := n
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(enc[off:])
		if n <= 0 {
			return nil, fmt.Errorf("re-scan of fresh encoding failed") // unreachable
		}
		off += n
		if i == 0 {
			prev = delta
		} else {
			prev += delta
		}
		if i > 0 && i%skipInterval == 0 {
			skips = append(skips, skip{id: prev, off: off})
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(skips)))
	var prevID uint64
	var prevOff int
	for _, s := range skips {
		dst = binary.AppendUvarint(dst, s.id-prevID)
		dst = binary.AppendUvarint(dst, uint64(s.off-prevOff))
		prevID, prevOff = s.id, s.off
	}
	return append(dst, enc...), nil
}
