package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desksearch/internal/index"
)

func buildSet(t *testing.T, n int) (*Set, *index.Index) {
	t.Helper()
	files, ix, _ := buildCorpus(t)
	return Distribute(files, []*index.Index{ix}, n), ix
}

func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		set, _ := buildSet(t, n)
		dir := t.TempDir()
		if err := SaveDir(dir, set); err != nil {
			t.Fatalf("n=%d: SaveDir: %v", n, err)
		}
		loaded, err := LoadDir(dir)
		if err != nil {
			t.Fatalf("n=%d: LoadDir: %v", n, err)
		}
		if loaded.Len() != n {
			t.Fatalf("n=%d: loaded %d shards", n, loaded.Len())
		}
		if loaded.Files().Len() != set.Files().Len() {
			t.Fatalf("n=%d: file table %d files, want %d", n, loaded.Files().Len(), set.Files().Len())
		}
		for id := 0; id < set.Files().Len(); id++ {
			fid := set.Files().Paths()[id]
			if loaded.Files().Paths()[id] != fid {
				t.Errorf("n=%d: file %d path %q != %q", n, id, loaded.Files().Paths()[id], fid)
			}
		}
		for i := range set.Shards() {
			if !loaded.Shards()[i].Equal(set.Shards()[i]) {
				t.Errorf("n=%d: shard %d differs after round trip", n, i)
			}
		}
	}
}

// savedDir returns a valid saved 4-shard layout for corruption tests.
func savedDir(t *testing.T) string {
	t.Helper()
	set, _ := buildSet(t, 4)
	dir := t.TempDir()
	if err := SaveDir(dir, set); err != nil {
		t.Fatal(err)
	}
	return dir
}

func corruptFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirRejectsTruncatedSegment(t *testing.T) {
	dir := savedDir(t)
	corruptFile(t, filepath.Join(dir, SegmentName(2)), func(b []byte) []byte {
		return b[:len(b)/2]
	})
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestLoadDirRejectsCorruptSegment(t *testing.T) {
	dir := savedDir(t)
	corruptFile(t, filepath.Join(dir, SegmentName(1)), func(b []byte) []byte {
		b[len(b)/2] ^= 0xff
		return b
	})
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("corrupt segment accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("want checksum error, got: %v", err)
	}
}

func TestLoadDirRejectsSwappedSegments(t *testing.T) {
	// Two internally-valid segments exchanged on disk: each file's own
	// trailer still verifies, so only the manifest's per-file checksums
	// can catch the swap.
	dir := savedDir(t)
	a, b := filepath.Join(dir, SegmentName(0)), filepath.Join(dir, SegmentName(3))
	tmp := filepath.Join(dir, "tmp")
	for _, mv := range [][2]string{{a, tmp}, {b, a}, {tmp, b}} {
		if err := os.Rename(mv[0], mv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("swapped segments accepted")
	}
}

func TestLoadDirRejectsMissingSegment(t *testing.T) {
	dir := savedDir(t)
	if err := os.Remove(filepath.Join(dir, SegmentName(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("missing segment accepted")
	}
}

func TestLoadDirRejectsCorruptManifest(t *testing.T) {
	dir := savedDir(t)
	corruptFile(t, filepath.Join(dir, ManifestName), func(b []byte) []byte {
		b[len(b)/3] ^= 0x01
		return b
	})
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestLoadDirRejectsGarbageManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("garbage manifest accepted")
	}
}

func TestLoadDirRejectsMissingManifest(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}

func TestLoadRejectsSegmentFile(t *testing.T) {
	// Feeding a segment to the full-index loader (and vice versa) must
	// fail with a version complaint, not decode garbage.
	dir := savedDir(t)
	f, err := os.Open(filepath.Join(dir, SegmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := index.Load(f); err == nil || !strings.Contains(err.Error(), "segment") {
		t.Errorf("Load(segment) = %v, want segment version error", err)
	}
}

func TestSaveDirRemovesStaleSegments(t *testing.T) {
	dir := t.TempDir()
	four, _ := buildSet(t, 4)
	if err := SaveDir(dir, four); err != nil {
		t.Fatal(err)
	}
	two, _ := buildSet(t, 2)
	if err := SaveDir(dir, two); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, SegmentName(i))); !os.IsNotExist(err) {
			t.Errorf("stale %s survived re-save", SegmentName(i))
		}
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Errorf("loaded %d shards, want 2", loaded.Len())
	}
}
