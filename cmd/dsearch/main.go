// Command dsearch answers desktop-search queries from a saved index or by
// indexing a directory on the fly.
//
// Usage:
//
//	dsearch -index PATH  QUERY...
//	dsearch -root DIR [-shards N] [-formats]  QUERY...
//
// -index accepts either a single index file or a sharded index directory
// (a manifest plus segments, as written by indexgen -shards); -shards
// partitions an on-the-fly index for parallel fan-out search.
//
// Queries are boolean: terms AND together, OR/NOT (or a leading '-')
// and parentheses work as expected: "quarterly report -draft".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"desksearch"
)

func main() {
	var (
		indexPath = flag.String("index", "", "read a saved index from this file or sharded directory")
		root      = flag.String("root", "", "index this directory before searching")
		shards    = flag.Int("shards", 0, "with -root, partition the index into N document shards")
		formats   = flag.Bool("formats", false, "strip HTML/WP markup while indexing")
		limit     = flag.Int("n", 20, "maximum results to print")
		top       = flag.Int("top", 0, "print the N most frequent terms instead of searching")
	)
	flag.Parse()
	if (flag.NArg() == 0 && *top == 0) || (*indexPath == "") == (*root == "") {
		fmt.Fprintln(os.Stderr, "usage: dsearch (-index PATH | -root DIR) [-top N] QUERY...")
		os.Exit(2)
	}

	var (
		cat *desksearch.Catalog
		err error
	)
	switch {
	case *indexPath != "":
		cat, err = loadIndex(*indexPath)
	default:
		cat, err = desksearch.IndexDir(*root, desksearch.Options{Formats: *formats, Shards: *shards})
	}
	if err != nil {
		fatal(err)
	}

	if *top > 0 {
		fmt.Printf("%d most frequent terms:\n", *top)
		for _, tc := range cat.TopTerms(*top) {
			fmt.Printf("%6d  %s\n", tc.Files, tc.Term)
		}
		if flag.NArg() == 0 {
			return
		}
	}

	query := strings.Join(flag.Args(), " ")
	hits, err := cat.Search(query)
	if err != nil {
		fatal(err)
	}
	if len(hits) == 0 {
		fmt.Printf("no matches for %q\n", query)
		return
	}
	fmt.Printf("%d matches for %q:\n", len(hits), query)
	for i, h := range hits {
		if i == *limit {
			fmt.Printf("... and %d more\n", len(hits)-*limit)
			break
		}
		fmt.Printf("%4d. %s\n", h.Score, h.Path)
	}
}

// loadIndex reads a catalog from path: a sharded index directory when path
// is a directory, a single index file otherwise.
func loadIndex(path string) (*desksearch.Catalog, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return desksearch.LoadDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desksearch.Load(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsearch:", err)
	os.Exit(1)
}
