package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"desksearch"
	"desksearch/internal/postings"
	"desksearch/internal/search"
	"desksearch/internal/server"
)

// Handler returns the broker's route table: the same public surface a
// single dsearchd exposes (/search, /suggest, /stats, /healthz,
// /metrics), so clients cannot tell a broker from a node — minus
// /reload, which is a per-worker operation.
func (b *Broker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", b.handleSearch)
	mux.HandleFunc("GET /suggest", b.handleSuggest)
	mux.HandleFunc("GET /stats", b.handleStats)
	mux.HandleFunc("GET /healthz", b.handleHealthz)
	mux.Handle("GET /metrics", b.metrics.reg.Handler())
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeQueryError maps a scatter-gather failure onto the front door:
// deterministic worker rejections keep their status (the client's query
// is at fault), deadline and cancellation map as on a single node, and
// anything else — unreachable groups, malformed worker responses — is
// the fleet's fault, a 502.
func writeQueryError(w http.ResponseWriter, err error, timeout time.Duration) {
	var we *WorkerError
	switch {
	case errors.As(err, &we):
		writeJSON(w, we.Status, errorResponse{Error: we.Message, Code: we.Code})
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query timed out after %s", timeout)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "query canceled")
	default:
		writeError(w, http.StatusBadGateway, "%v", err)
	}
}

func (b *Broker) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	params := r.URL.Query()
	q, err := server.ParseSearchQuery(params, b.maxLim)
	if err != nil {
		b.metrics.observeRequest("search", "bad_request", start)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req, _, err := q.Normalize()
	if err != nil {
		b.metrics.observeRequest("search", "bad_request", start)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout, err := server.ParseTimeout(params, b.timeout)
	if err != nil {
		b.metrics.observeRequest("search", "bad_request", start)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	b.queries.Add(1)
	resp, err := b.query(ctx, req)
	if err != nil {
		b.queryErrors.Add(1)
		b.metrics.observeRequest("search", "error", start)
		writeQueryError(w, err, timeout)
		return
	}
	b.metrics.observeRequest("search", "ok", start)
	resp.Query = req.Expr.String()
	resp.TookMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

// query runs the two-phase scatter-gather protocol for one normalized
// request and merges the partials into a single-node-identical response.
//
// Phase one (BM25 over more than one group only): gather every group's
// local document-frequency vector and sum them. The sums are integer
// element-wise additions — exact and order-independent — and Docs/Tokens
// come from the shared manifest, so they are verified equal rather than
// summed. A single group skips the phase: its local statistics already
// are the global ones.
//
// Phase two: scatter the query with the global statistics attached; each
// worker returns its local top-(limit+offset) with scores as raw
// Float64bits. The partials merge under the same total order the engine
// uses (score descending, file ID ascending — file IDs are global because
// the file table is shared), which makes the distributed merge reproduce
// the single-node ranking bit for bit; the offset is applied after the
// merge, on the globally ranked list.
func (b *Broker) query(ctx context.Context, req desksearch.Query) (*server.SearchResponse, error) {
	canonical := req.Expr.String()
	k := req.Limit + req.Offset

	var df *server.DFPayload
	if req.Ranking == desksearch.RankBM25 && len(b.groups) > 1 {
		var err error
		if df, err = b.gatherDF(ctx, canonical, req.MaxPrefixTerms); err != nil {
			return nil, err
		}
	}

	body, err := json.Marshal(server.InternalSearchRequest{
		Query:          canonical,
		Limit:          k,
		Rank:           req.Ranking.String(),
		PathPrefix:     req.PathPrefix,
		Snippets:       req.Snippets,
		MaxPrefixTerms: req.MaxPrefixTerms,
		DF:             df,
	})
	if err != nil {
		return nil, err
	}

	partials := make([]*server.InternalSearchResponse, len(b.groups))
	errs := make([]error, len(b.groups))
	var wg sync.WaitGroup
	for gi, g := range b.groups {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			var out server.InternalSearchResponse
			if err := b.doGroup(ctx, g, http.MethodPost, "/internal/search", body, &out); err != nil {
				errs[gi] = err
				return
			}
			g.generation.Store(out.Generation)
			partials[gi] = &out
		}(gi, g)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}

	parts := make([][]search.Hit, len(partials))
	total := 0
	var gen uint64
	var partStats []server.PartitionStat
	for gi, p := range partials {
		total += p.Total
		gen += p.Generation
		partStats = append(partStats, p.Partitions...)
		hits := make([]search.Hit, len(p.Hits))
		for i, h := range p.Hits {
			hit := search.Hit{
				File:  postings.FileID(h.File),
				Path:  h.Path,
				Score: math.Float64frombits(h.ScoreBits),
				Terms: h.Terms,
			}
			if h.Snippet != nil {
				sn := &search.Snippet{Text: h.Snippet.Text}
				for _, sp := range h.Snippet.Highlights {
					sn.Highlights = append(sn.Highlights, search.Span{Start: sp.Start, End: sp.End})
				}
				hit.Snippet = sn
			}
			hits[i] = hit
		}
		parts[gi] = hits
	}
	merged := search.MergeRankedPage(parts, k)
	if req.Offset < len(merged) {
		merged = merged[req.Offset:]
	} else {
		merged = nil
	}
	if len(merged) > req.Limit {
		merged = merged[:req.Limit]
	}
	sort.SliceStable(partStats, func(i, j int) bool {
		return partStats[i].Partition < partStats[j].Partition
	})

	out := &server.SearchResponse{
		Generation: gen,
		Total:      total,
		Hits:       make([]server.SearchHit, len(merged)),
		Partitions: partStats,
	}
	for i, h := range merged {
		sh := server.SearchHit{Path: h.Path, Score: h.Score, Terms: h.Terms}
		if h.Snippet != nil {
			snip := &server.SnippetJSON{Text: h.Snippet.Text}
			for _, sp := range h.Snippet.Highlights {
				snip.Highlights = append(snip.Highlights, server.SpanJSON{Start: sp.Start, End: sp.End})
			}
			sh.Snippet = snip
		}
		out.Hits[i] = sh
	}
	return out, nil
}

// gatherDF fans phase one out to every group and sums the local
// document-frequency vectors into the corpus-global payload phase two
// attaches. The client's prefix-expansion cap rides along so phase one
// rejects an over-broad prefix at the same threshold phase two would.
func (b *Broker) gatherDF(ctx context.Context, canonical string, maxPrefixTerms int) (*server.DFPayload, error) {
	path := "/internal/df?q=" + url.QueryEscape(canonical)
	if maxPrefixTerms > 0 {
		path += "&max_prefix_terms=" + strconv.Itoa(maxPrefixTerms)
	}
	dfs := make([]*server.DFResponse, len(b.groups))
	errs := make([]error, len(b.groups))
	var wg sync.WaitGroup
	for gi, g := range b.groups {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			var out server.DFResponse
			if err := b.doGroup(ctx, g, http.MethodGet, path, nil, &out); err != nil {
				errs[gi] = err
				return
			}
			dfs[gi] = &out
		}(gi, g)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}

	first := dfs[0]
	sum := &desksearch.DocFreqs{
		Docs:     first.Docs,
		Tokens:   first.Tokens,
		Terms:    append([]int(nil), first.Terms...),
		Prefixes: append([]int(nil), first.Prefixes...),
	}
	for _, d := range dfs[1:] {
		if d.Query != first.Query {
			return nil, fmt.Errorf("broker: groups normalized the query differently (%q vs %q)", first.Query, d.Query)
		}
		// Docs and Tokens come from the shared manifest: every worker of
		// one directory reports the same values, so a mismatch means the
		// groups are serving different index states and no merge of their
		// partials is meaningful.
		if d.Docs != first.Docs || d.Tokens != first.Tokens {
			return nil, fmt.Errorf("broker: corpus statistics disagree across groups (%d docs/%d tokens vs %d/%d) — workers are serving different index states",
				first.Docs, first.Tokens, d.Docs, d.Tokens)
		}
		if !sum.Add(&desksearch.DocFreqs{Docs: d.Docs, Tokens: d.Tokens, Terms: d.Terms, Prefixes: d.Prefixes}) {
			return nil, fmt.Errorf("broker: document-frequency vectors disagree in shape across groups")
		}
	}
	return &server.DFPayload{Docs: sum.Docs, Tokens: sum.Tokens, Terms: sum.Terms, Prefixes: sum.Prefixes}, nil
}

// firstError prefers a deterministic WorkerError — it tells the client
// what to fix — over transport noise, then falls back to the first error
// in group order.
func firstError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var we *WorkerError
		if errors.As(err, &we) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

func (b *Broker) handleSuggest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	params := r.URL.Query()
	prefix := params.Get("q")
	if prefix == "" {
		b.metrics.observeRequest("suggest", "bad_request", start)
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	n := 10
	if v := params.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			b.metrics.observeRequest("suggest", "bad_request", start)
			writeError(w, http.StatusBadRequest, "invalid n %q", v)
			return
		}
		n = parsed
	}
	if n > b.maxLim {
		n = b.maxLim
	}
	ctx, cancel := context.WithTimeout(r.Context(), b.timeout)
	defer cancel()
	b.queries.Add(1)

	// Each worker returns its local top-n; summing document-disjoint
	// per-term counts gives exact global frequencies for every term that
	// surfaces. A term ranked below every worker's local cutoff can be
	// missed — the classic distributed top-k approximation, acceptable
	// for autocomplete.
	path := "/suggest?q=" + url.QueryEscape(prefix) + "&n=" + strconv.Itoa(n)
	resps := make([]*server.SuggestResponse, len(b.groups))
	errs := make([]error, len(b.groups))
	var wg sync.WaitGroup
	for gi, g := range b.groups {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			var out server.SuggestResponse
			if err := b.doGroup(ctx, g, http.MethodGet, path, nil, &out); err != nil {
				errs[gi] = err
				return
			}
			resps[gi] = &out
		}(gi, g)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		b.queryErrors.Add(1)
		b.metrics.observeRequest("suggest", "error", start)
		writeQueryError(w, err, b.timeout)
		return
	}
	b.metrics.observeRequest("suggest", "ok", start)

	counts := make(map[string]int)
	var gen uint64
	for _, resp := range resps {
		gen += resp.Generation
		for _, sg := range resp.Suggestions {
			counts[sg.Term] += sg.Files
		}
	}
	merged := make([]server.SuggestionJSON, 0, len(counts))
	for term, files := range counts {
		merged = append(merged, server.SuggestionJSON{Term: term, Files: files})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Files != merged[j].Files {
			return merged[i].Files > merged[j].Files
		}
		return merged[i].Term < merged[j].Term
	})
	if len(merged) > n {
		merged = merged[:n]
	}
	writeJSON(w, http.StatusOK, server.SuggestResponse{
		Prefix:      resps[0].Prefix,
		Generation:  gen,
		TookMS:      float64(time.Since(start).Microseconds()) / 1e3,
		Suggestions: merged,
	})
}

// StatsResponse is the JSON shape of the broker's /stats.
type StatsResponse struct {
	UptimeS     float64 `json:"uptime_s"`
	TotalShards int     `json:"total_shards"`
	Files       int     `json:"files"`
	Positional  bool    `json:"positional"`

	Queries     uint64 `json:"queries"`
	QueryErrors uint64 `json:"query_errors"`
	// Hedges counts speculative duplicate requests issued; HedgeWins how
	// many of them answered before the primary; Failovers how many
	// replica attempts were restarted on another replica after a failure.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	Failovers uint64 `json:"failovers"`

	Groups []GroupStats `json:"groups"`
}

// GroupStats is one replica group's block of the broker's /stats.
type GroupStats struct {
	Shards     []int           `json:"shards"`
	Generation uint64          `json:"generation"`
	Replicas   []ReplicaStatus `json:"replicas"`
	// HedgeDelayUS is the delay the next request against this group would
	// hedge after, under the current policy and observations.
	HedgeDelayUS float64 `json:"hedge_delay_us"`
	// Latency summarizes recent successful request latencies against the
	// group; absent before the first success.
	Latency *LatencyStats `json:"latency,omitempty"`
}

// ReplicaStatus is one worker's health as the broker sees it.
type ReplicaStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// LatencyStats summarizes a group's recent request latencies.
type LatencyStats struct {
	Requests uint64  `json:"requests"`
	MinUS    float64 `json:"min_us"`
	MedianUS float64 `json:"median_us"`
	P95US    float64 `json:"p95_us"`
	MaxUS    float64 `json:"max_us"`
}

func (b *Broker) handleStats(w http.ResponseWriter, r *http.Request) {
	out := StatsResponse{
		UptimeS:     time.Since(b.start).Seconds(),
		TotalShards: b.totalShards,
		Files:       b.files,
		Positional:  b.positional,
		Queries:     b.queries.Load(),
		QueryErrors: b.queryErrors.Load(),
		Hedges:      b.hedges.Load(),
		HedgeWins:   b.hedgeWins.Load(),
		Failovers:   b.failovers.Load(),
		Groups:      make([]GroupStats, len(b.groups)),
	}
	for gi, g := range b.groups {
		gs := GroupStats{
			Shards:       g.shards,
			Generation:   g.generation.Load(),
			HedgeDelayUS: float64(b.hedgeDelay(g).Nanoseconds()) / 1e3,
			Replicas:     make([]ReplicaStatus, len(g.replicas)),
		}
		for ri, rep := range g.replicas {
			gs.Replicas[ri] = ReplicaStatus{URL: rep.url, Healthy: rep.healthy.Load()}
		}
		if s, ok := g.window.Snapshot(); ok {
			gs.Latency = &LatencyStats{
				Requests: s.Count,
				MinUS:    float64(s.Min.Nanoseconds()) / 1e3,
				MedianUS: float64(s.Median.Nanoseconds()) / 1e3,
				P95US:    float64(s.P95.Nanoseconds()) / 1e3,
				MaxUS:    float64(s.Max.Nanoseconds()) / 1e3,
			}
		}
		out.Groups[gi] = gs
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz reports 200 while every group has at least one healthy
// replica — the broker can still answer every query then — and 503 the
// moment any shard subset is entirely dark.
func (b *Broker) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var dark []int
	for gi, g := range b.groups {
		ok := false
		for _, rep := range g.replicas {
			if rep.healthy.Load() {
				ok = true
				break
			}
		}
		if !ok {
			dark = append(dark, gi)
		}
	}
	if len(dark) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":      "degraded",
			"dark_groups": dark,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}
