// Package platform models the paper's three evaluation machines.
//
// A Profile captures a machine as the simulator sees it: core count, disk
// characteristics, memory-contention behaviour, and the paper's measured
// Table 1 stage times, from which per-unit costs (seconds per byte read,
// per term inserted, …) are derived against the benchmark corpus statistics.
//
// This package is the heart of the hardware substitution documented in
// DESIGN.md: we do not have a Core2Quad Q6600, a dual Xeon E5320, or a
// four-socket X7560, so their observable behaviour — how stage costs scale
// with threads, where the disk saturates, how expensive shared-index cache
// traffic is — is expressed as calibrated constants instead.
package platform

import (
	"fmt"

	"desksearch/internal/corpus"
)

// Profile describes one simulated machine.
type Profile struct {
	// Name identifies the platform in reports ("4-core Intel machine").
	Name string
	// Cores is the number of processor cores (the simulator's CPU
	// resource capacity).
	Cores int

	// TFilename, TRead, TReadExtract, TInsert are the paper's Table 1
	// sequential stage seconds for this machine; unit costs are derived
	// from them.
	TFilename, TRead, TReadExtract, TInsert float64

	// DiskSeek is the per-file positioning cost in seconds (effective:
	// the paper's corpus reads mostly OS-cached, sequentially laid-out
	// files, so this is far below a cold random seek).
	DiskSeek float64
	// DiskBW is the sustained per-stream disk bandwidth in bytes/second.
	DiskBW float64
	// DiskDepth is how many I/Os the disk serves concurrently at full
	// stream bandwidth (command queueing + readahead).
	DiskDepth int

	// MemBeta and MemGamma shape the memory-contention factor applied to
	// scan CPU bursts: f(A) = 1 + MemBeta·(A−1) + MemGamma·(A−1)², where A
	// is the number of busy cores. Aggregate scan throughput A/f(A) then
	// saturates (and with MemGamma > 0 eventually declines), reproducing
	// each machine's measured parallel-scaling ceiling.
	MemBeta, MemGamma float64
	// SwitchPenalty multiplies CPU bursts granted while other threads are
	// queued for a core (oversubscription: context switches + cache
	// pollution).
	SwitchPenalty float64

	// SharedInsertFactor multiplies insert costs into the single shared
	// index (Implementation 1): cache-coherence traffic on a structure
	// written by several threads. Private replicas pay 1.0.
	SharedInsertFactor float64
	// LockOverhead is the cost of one lock acquire/release pair.
	LockOverhead float64
	// ChannelOp is the cost of one bounded-buffer enqueue+dequeue pair.
	ChannelOp float64
	// JoinPerPosting is the per-posting cost of merging replica indices.
	JoinPerPosting float64

	// PaperSequential is the paper's reported sequential execution time;
	// speed-ups are computed against it. SeqFactor() calibrates the model
	// to reach it.
	PaperSequential float64
}

// Validate reports profiles that cannot drive a simulation.
func (p Profile) Validate() error {
	switch {
	case p.Cores < 1:
		return fmt.Errorf("platform %s: cores %d", p.Name, p.Cores)
	case p.DiskBW <= 0 || p.DiskDepth < 1:
		return fmt.Errorf("platform %s: bad disk model", p.Name)
	case p.TRead <= 0 || p.TReadExtract < p.TRead:
		return fmt.Errorf("platform %s: inconsistent stage targets", p.Name)
	case p.SwitchPenalty < 1 || p.SharedInsertFactor < 1:
		return fmt.Errorf("platform %s: penalties must be ≥ 1", p.Name)
	}
	return nil
}

// ContentionFactor returns f(A), the multiplier on scan CPU bursts when A
// cores are busy.
func (p Profile) ContentionFactor(active int) float64 {
	if active < 1 {
		active = 1
	}
	a := float64(active - 1)
	return 1 + p.MemBeta*a + p.MemGamma*a*a
}

// Costs are the per-unit costs derived from a profile and a corpus.
type Costs struct {
	// FilenamePerFile is Stage 1 traversal cost per file.
	FilenamePerFile float64
	// ReadCPUPerByte is the CPU cost of the byte-reading loop, excluding
	// disk service time.
	ReadCPUPerByte float64
	// ExtractCPUPerByte is the additional CPU cost of term extraction.
	ExtractCPUPerByte float64
	// InsertPerUnique is the index-update cost per distinct (term, file)
	// posting.
	InsertPerUnique float64
	// DiskSeqSeconds is the modelled sequential disk service time for the
	// whole corpus.
	DiskSeqSeconds float64
}

// UnitCosts derives per-unit costs such that a sequential, stage-isolated
// simulation of cs reproduces the profile's Table 1 targets.
func (p Profile) UnitCosts(cs corpus.Stats) Costs {
	n := float64(len(cs.Files))
	bytes := float64(cs.TotalBytes)
	unique := float64(cs.TotalUnique)
	diskSeq := n*p.DiskSeek + bytes/p.DiskBW
	readCPU := p.TRead - diskSeq
	if readCPU < 0 {
		readCPU = 0
	}
	c := Costs{
		DiskSeqSeconds:    diskSeq,
		FilenamePerFile:   p.TFilename / maxF(n, 1),
		ReadCPUPerByte:    readCPU / maxF(bytes, 1),
		ExtractCPUPerByte: maxF(p.TReadExtract-p.TRead, 0) / maxF(bytes, 1),
		InsertPerUnique:   p.TInsert / maxF(unique, 1),
	}
	return c
}

// Scaled returns a copy of the profile whose Table 1 targets and
// sequential baseline are scaled by f.
//
// The targets are absolute seconds for the paper's 869 MB benchmark; when
// simulating a corpus scaled by f, scale the profile by the same factor so
// the derived per-byte and per-posting costs — physical constants of the
// machine — stay put. Speed-ups and implementation orderings are invariant
// under this scaling.
func (p Profile) Scaled(f float64) Profile {
	p.TFilename *= f
	p.TRead *= f
	p.TReadExtract *= f
	p.TInsert *= f
	p.PaperSequential *= f
	return p
}

// SeqFactor returns the calibration multiplier applied to the modeled
// sequential run so that it lands on the paper's reported sequential time.
// The paper's sequential implementation is slower than the sum of its
// Table 1 stage measurements (markedly so on the 4-core machine) for
// reasons the paper does not break down; this factor absorbs that gap.
// Parallel runs are not scaled.
func (p Profile) SeqFactor() float64 {
	stageSum := p.TFilename + p.TReadExtract + p.TInsert
	if stageSum <= 0 {
		return 1
	}
	return p.PaperSequential / stageSum
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// QuadCore models the paper's 4-core machine: Intel Core2Quad Q6600,
// 2.4 GHz, 4 GB RAM, Windows 7 64-bit. A fast desktop: scanning is
// CPU-bound (the disk keeps up), memory contention is mild, and all three
// implementations end up equivalent — the paper's Table 2.
func QuadCore() Profile {
	return Profile{
		Name:  "4-core Intel machine",
		Cores: 4,

		TFilename:    5.0,
		TRead:        77.0,
		TReadExtract: 88.0,
		TInsert:      22.0,

		DiskSeek:  0.10e-3,
		DiskBW:    80e6,
		DiskDepth: 4,

		MemBeta:       0.26,
		MemGamma:      0.004,
		SwitchPenalty: 1.18,

		SharedInsertFactor: 1.25,
		LockOverhead:       2e-6,
		ChannelOp:          2e-6,
		JoinPerPosting:     0.04e-6,

		PaperSequential: 220.0,
	}
}

// Xeon8 models the paper's 8-core machine: two Intel Xeon E5320, 1.86 GHz,
// 8 GB RAM, Ubuntu 8.10 64-bit. Its defining trait is a slow disk: the
// byte-reading stage is I/O-bound, capping every implementation near the
// 47-second read floor and compressing speed-ups to ≈2 — the paper's
// Table 3.
func Xeon8() Profile {
	return Profile{
		Name:  "8-core Intel machine",
		Cores: 8,

		TFilename:    4.0,
		TRead:        47.0,
		TReadExtract: 61.0,
		TInsert:      29.0,

		DiskSeek:  0.05e-3,
		DiskBW:    20.5e6,
		DiskDepth: 1,

		MemBeta:       0.15,
		MemGamma:      0.004,
		SwitchPenalty: 1.18,

		SharedInsertFactor: 1.45,
		LockOverhead:       3e-6,
		ChannelOp:          3e-6,
		JoinPerPosting:     0.60e-6,

		PaperSequential: 105.0,
	}
}

// Manycore32 models the paper's 32-core machine: four Intel Xeon X7560,
// 2.27 GHz, 8 GB RAM, RHEL 4 64-bit (Intel Manycore Testing Lab). Plenty
// of cores and I/O, but cross-socket memory traffic caps aggregate scan
// throughput around 3.5×, and shared-index cache coherence makes
// Implementation 1 distinctly worst — the paper's Table 4.
func Manycore32() Profile {
	return Profile{
		Name:  "32-core Intel machine",
		Cores: 32,

		TFilename:    5.0,
		TRead:        73.0,
		TReadExtract: 80.0,
		TInsert:      28.0,

		DiskSeek:  0.05e-3,
		DiskBW:    200e6,
		DiskDepth: 8,

		MemBeta:       0.08,
		MemGamma:      0.009,
		SwitchPenalty: 1.18,

		SharedInsertFactor: 1.45,
		LockOverhead:       3e-6,
		ChannelOp:          3e-6,
		JoinPerPosting:     0.53e-6,

		PaperSequential: 90.0,
	}
}

// All returns the three paper platforms in presentation order.
func All() []Profile {
	return []Profile{QuadCore(), Xeon8(), Manycore32()}
}

// ByName returns the profile with the given short name: "4core", "8core",
// or "32core".
func ByName(name string) (Profile, error) {
	switch name {
	case "4core", "quadcore":
		return QuadCore(), nil
	case "8core", "xeon8":
		return Xeon8(), nil
	case "32core", "manycore32":
		return Manycore32(), nil
	default:
		return Profile{}, fmt.Errorf("platform: unknown %q (want 4core, 8core, or 32core)", name)
	}
}
