package search

import (
	"sort"
	"sync"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// Hit is one search result.
type Hit struct {
	// File is the matched file's ID.
	File postings.FileID
	// Path is the matched file's path.
	Path string
	// Score counts how many distinct positive query terms the file
	// contains (coordination ranking); for pure conjunctions every hit
	// scores the same, for OR queries broader matches rank higher.
	Score int
}

// Engine executes queries over one or more indices sharing a file table.
// It is the paper's Implementation 3 made whole: "the search can work with
// multiple indices in parallel".
type Engine struct {
	files   *index.FileTable
	indices []*index.Index
	// Parallel fans query evaluation out with one goroutine per index.
	// Off, replicas are searched sequentially (the ablation baseline).
	Parallel bool

	uniOnce   sync.Once
	universes []*postings.List
}

// NewEngine returns an engine over the given indices. For a joined or
// shared index pass exactly one; for Implementation 3 pass all replicas.
func NewEngine(files *index.FileTable, indices ...*index.Index) *Engine {
	return &Engine{files: files, indices: indices, Parallel: true}
}

// Indices returns the number of indices the engine consults.
func (e *Engine) Indices() int { return len(e.indices) }

// Search evaluates q and returns hits sorted by descending score, then
// ascending file ID.
func (e *Engine) Search(q *Query) []Hit {
	unis := e.indexUniverses()
	perIndex := make([][]Hit, len(e.indices))
	if e.Parallel && len(e.indices) > 1 {
		var wg sync.WaitGroup
		for i, ix := range e.indices {
			wg.Add(1)
			go func(i int, ix *index.Index) {
				defer wg.Done()
				perIndex[i] = e.searchOne(ix, unis[i], q)
			}(i, ix)
		}
		wg.Wait()
	} else {
		for i, ix := range e.indices {
			perIndex[i] = e.searchOne(ix, unis[i], q)
		}
	}
	var out []Hit
	for _, hits := range perIndex {
		out = append(out, hits...)
	}
	// Files live in exactly one replica, so concatenation is a disjoint
	// union; only ordering remains.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].File < out[j].File
	})
	return out
}

// SearchString parses and evaluates a query in one step.
func (e *Engine) SearchString(text string) ([]Hit, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return e.Search(q), nil
}

// indexUniverses returns, per index, the posting list of files that index
// is responsible for — the complement base for NOT.
//
// With one index that is simply every file. With replicas, each file's
// block went to exactly one replica, so replica i's universe is the union
// of its posting lists; files that appear in no replica at all (term-free
// files) are assigned to replica 0 so that "NOT anything" still finds
// them exactly once.
func (e *Engine) indexUniverses() []*postings.List {
	e.uniOnce.Do(func() {
		e.universes = make([]*postings.List, len(e.indices))
		if len(e.indices) == 1 {
			e.universes[0] = e.allFiles()
			return
		}
		covered := &postings.List{}
		for i, ix := range e.indices {
			u := &postings.List{}
			ix.Range(func(_ string, l *postings.List) bool {
				u.Merge(l.Clone())
				return true
			})
			e.universes[i] = u
			covered.Merge(u.Clone())
		}
		orphans := postings.Difference(e.allFiles(), covered)
		if orphans.Len() > 0 && len(e.universes) > 0 {
			e.universes[0].Merge(orphans)
		}
	})
	return e.universes
}

func (e *Engine) allFiles() *postings.List {
	ids := make([]postings.FileID, e.files.Len())
	for i := range ids {
		ids[i] = postings.FileID(i)
	}
	return postings.FromIDs(ids)
}

// searchOne evaluates q against a single index and scores its matches.
func (e *Engine) searchOne(ix *index.Index, universe *postings.List, q *Query) []Hit {
	matched := eval(ix, q.root, universe)
	if matched == nil || matched.Len() == 0 {
		return nil
	}
	// Coordination scores: +1 per positive term present.
	scores := make(map[postings.FileID]int, matched.Len())
	for _, id := range matched.IDs() {
		scores[id] = 0
	}
	for _, term := range q.positive {
		l := ix.Lookup(term)
		if l == nil {
			continue
		}
		for _, id := range postings.Intersect(matched, l).IDs() {
			scores[id]++
		}
	}
	hits := make([]Hit, 0, matched.Len())
	for _, id := range matched.IDs() {
		hits = append(hits, Hit{File: id, Path: e.files.Path(id), Score: scores[id]})
	}
	return hits
}

// eval computes the posting list of files satisfying n within one index.
func eval(ix *index.Index, n node, universe *postings.List) *postings.List {
	switch v := n.(type) {
	case termNode:
		l := ix.Lookup(v.term)
		if l == nil {
			return &postings.List{}
		}
		return l
	case andNode:
		acc := eval(ix, v.kids[0], universe)
		for _, k := range v.kids[1:] {
			if acc.Len() == 0 {
				return acc
			}
			acc = postings.Intersect(acc, eval(ix, k, universe))
		}
		return acc
	case orNode:
		acc := &postings.List{}
		for _, k := range v.kids {
			acc = postings.Union(acc, eval(ix, k, universe))
		}
		return acc
	case notNode:
		return postings.Difference(universe, eval(ix, v.kid, universe))
	default:
		return &postings.List{}
	}
}
