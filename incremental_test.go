package desksearch

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"desksearch/internal/vfs"
)

// resultSet canonicalizes a query's hits as sorted "path=score" strings:
// an incrementally updated catalog assigns different FileIDs (the ranking
// tie-breaker) than a fresh build, so paths and scores must agree but
// order within a score band may not.
func resultSet(t *testing.T, cat *Catalog, query string) []string {
	t.Helper()
	hits := queryAll(t, cat, query)
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = fmt.Sprintf("%s=%g", h.Path, h.Score)
	}
	sort.Strings(out)
	return out
}

func TestUpdateNotQueryRegression(t *testing.T) {
	fs := demoFS(t)
	cat, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the NOT universe, then delete a file through Update.
	if hits := queryAll(t, cat, "-milk"); len(hits) == 0 {
		t.Fatal("priming query empty")
	}
	if err := fs.Remove("work/report.txt"); err != nil {
		t.Fatal(err)
	}
	st, err := cat.Update(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 1 {
		t.Fatalf("stats = %+v, want one deletion", st)
	}
	for _, q := range []string{"-milk", "-quarterly", "report"} {
		for _, line := range resultSet(t, cat, q) {
			if strings.HasPrefix(line, "work/report.txt=") {
				t.Errorf("%q returned deleted file", q)
			}
		}
	}
	if s := cat.Stats(); s.Files != 7 {
		t.Errorf("Files = %d after deletion, want 7", s.Files)
	}
}

// TestUpdateMatchesRebuildProperty is the acceptance property: a catalog
// driven through random churn with Catalog.Update must answer every query
// exactly like a catalog freshly built from the final tree — across
// pipeline implementations and partition shapes.
func TestUpdateMatchesRebuildProperty(t *testing.T) {
	configs := []Options{
		{Implementation: Sequential},
		{Implementation: Sequential, Shards: 4},
		{Implementation: ReplicatedSearch, Extractors: 3, Updaters: 2},
		{Implementation: SharedIndex, Extractors: 3, Shards: 3},
	}
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	queries := []string{
		"alpha", "beta OR gamma", "delta -alpha", "-zeta",
		"(alpha OR beta) -gamma", "eta theta", "-alpha -beta",
	}
	content := func(rng *rand.Rand) string {
		n := 1 + rng.Intn(5)
		words := make([]string, n)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		return strings.Join(words, " ")
	}

	for ci, opt := range configs {
		t.Run(fmt.Sprintf("config-%d", ci), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + ci)))
			fs := vfs.NewMemFS()
			live := []string{}
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("dir%d/f%02d.txt", i%5, i)
				if err := fs.WriteFile(name, []byte(content(rng))); err != nil {
					t.Fatal(err)
				}
				live = append(live, name)
			}
			cat, err := IndexFS(fs, ".", opt)
			if err != nil {
				t.Fatal(err)
			}

			next := 30
			for round := 0; round < 6; round++ {
				// Random churn: a few modifies, deletes, and adds.
				for i := 0; i < 4; i++ {
					switch op := rng.Intn(3); {
					case op == 0 || len(live) < 5: // add
						name := fmt.Sprintf("dir%d/f%02d.txt", next%5, next)
						next++
						fs.WriteFile(name, []byte(content(rng)))
						live = append(live, name)
					case op == 1: // modify
						fs.WriteFile(live[rng.Intn(len(live))], []byte(content(rng)))
					default: // delete
						k := rng.Intn(len(live))
						fs.Remove(live[k])
						live = append(live[:k], live[k+1:]...)
					}
				}
				if _, err := cat.Update(fs, "."); err != nil {
					t.Fatal(err)
				}
				rebuilt, err := IndexFS(fs, ".", opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range queries {
					got := resultSet(t, cat, q)
					want := resultSet(t, rebuilt, q)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("round %d %q:\nincremental %v\nrebuild     %v", round, q, got, want)
					}
				}
				if gs, ws := cat.Stats(), rebuilt.Stats(); gs.Files != ws.Files {
					t.Fatalf("round %d: Files %d vs rebuild %d", round, gs.Files, ws.Files)
				}
			}
		})
	}
}

// segmentState fingerprints every file in a catalog directory.
func segmentState(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fmt.Sprintf("%d:%x", len(data), fnvSum(data))
	}
	return out
}

func fnvSum(data []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range data {
		h = (h * 1099511628211) ^ uint64(b)
	}
	return h
}

// TestSaveDirUpdateRoundTrip covers the ISSUE's persistence checklist:
// SaveDir → LoadDir → Update → SaveDir. With no churn the second save must
// leave every file byte-identical to the first (the manifest re-encodes to
// the same bytes, segments are not rewritten at all); with churn, only the
// dirty segments plus the manifest may change on disk.
func TestSaveDirUpdateRoundTrip(t *testing.T) {
	fs := demoFS(t)
	cat, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := cat.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	before := segmentState(t, dir)

	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	// No churn: Update is a no-op and a re-save reproduces every byte.
	st, err := loaded.Update(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	if st != (UpdateStats{}) {
		t.Fatalf("no-op update stats = %+v", st)
	}
	if got := loaded.DirtySegments(); got != 0 {
		t.Fatalf("no-op update dirtied %d segments", got)
	}
	if err := loaded.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if after := segmentState(t, dir); !reflect.DeepEqual(after, before) {
		t.Errorf("no-op save changed bytes on disk:\nbefore %v\nafter  %v", before, after)
	}

	// Churn one file: exactly the owning segment and the manifest change.
	if err := fs.WriteFile("misc/recipe.txt", []byte("pancakes with oat milk and flour")); err != nil {
		t.Fatal(err)
	}
	st, err = loaded.Update(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	if st.Modified != 1 || st.Added != 0 || st.Deleted != 0 {
		t.Fatalf("churn stats = %+v", st)
	}
	dirty := loaded.DirtySegments()
	if dirty != 1 {
		t.Fatalf("one-file modify dirtied %d segments, want 1", dirty)
	}
	if err := loaded.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	after := segmentState(t, dir)
	changed := []string{}
	for name, sum := range after {
		if before[name] != sum {
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)
	// The manifest always rewrites (its file table gained a new mtime);
	// exactly one segment may have changed alongside it.
	wantChanged := 2
	if len(changed) != wantChanged || changed[1] != "manifest.dsix" && changed[0] != "manifest.dsix" {
		t.Errorf("changed files = %v, want manifest + 1 segment", changed)
	}

	// And the reloaded result must equal a fresh build of the final tree.
	rebuilt, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"report", "milk OR flour", "quarterly -draft", "-milk", "oat"} {
		want := resultSet(t, rebuilt, q)
		if got := resultSet(t, loaded, q); !reflect.DeepEqual(got, want) {
			t.Errorf("%q: updated %v, rebuild %v", q, got, want)
		}
		if got := resultSet(t, reloaded, q); !reflect.DeepEqual(got, want) {
			t.Errorf("%q: reloaded %v, rebuild %v", q, got, want)
		}
	}
}

// TestConcurrentSearchAndCatalogUpdate races queries against incremental
// updates at the public API level; meaningful under -race.
func TestConcurrentSearchAndCatalogUpdate(t *testing.T) {
	fs := demoFS(t)
	cat, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			queries := []string{"report", "-milk", "quarterly OR flour"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cat.Query(context.Background(), Query{Text: queries[i%len(queries)]}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Persistence state readers/writers race the updates too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		dir := t.TempDir()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = cat.DirtySegments()
			if i%5 == 0 {
				if err := cat.SaveDir(dir); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 25; i++ {
			name := fmt.Sprintf("churn/f%d.txt", i%5)
			if err := fs.WriteFile(name, []byte(fmt.Sprintf("report revision %d", i))); err != nil {
				t.Error(err)
				return
			}
			if _, err := cat.Update(fs, "."); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestApplyTwiceIsIdempotent: a caller retrying Apply with the same
// changeset must not duplicate files or postings.
func TestApplyTwiceIsIdempotent(t *testing.T) {
	fs := demoFS(t)
	cat, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("notes/extra.txt", []byte("report appendix")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("misc/numbers.txt"); err != nil {
		t.Fatal(err)
	}
	cs, err := cat.Diff(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Apply(fs, cs); err != nil {
		t.Fatal(err)
	}
	once := cat.Stats()
	st, err := cat.Apply(fs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 0 || st.Deleted != 0 {
		t.Errorf("second apply stats = %+v, want no adds or deletes", st)
	}
	if twice := cat.Stats(); twice != once {
		t.Errorf("stats changed on double apply: %+v vs %+v", twice, once)
	}
	rebuilt, err := IndexFS(fs, ".", Options{Implementation: Sequential, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"report", "appendix", "-milk", "2024"} {
		got, want := resultSet(t, cat, q), resultSet(t, rebuilt, q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q after double apply: %v, want %v", q, got, want)
		}
	}
}

func TestUpdateDirOnHostFS(t *testing.T) {
	dir := t.TempDir()
	fs := vfs.NewOSFS(dir)
	if err := fs.WriteFile("a/one.txt", []byte("desktop search rules")); err != nil {
		t.Fatal(err)
	}
	cat, err := IndexDir(dir, Options{Implementation: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("a/two.txt", []byte("brand new document")); err != nil {
		t.Fatal(err)
	}
	st, err := cat.UpdateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 1 {
		t.Fatalf("stats = %+v", st)
	}
	hits := queryAll(t, cat, "brand")
	if len(hits) != 1 || hits[0].Path != "a/two.txt" {
		t.Errorf("hits = %v", hits)
	}
}
