// Package index implements the inverted index of the desktop search engine
// and the paper's three interaction disciplines with it: exclusive
// single-threaded updates, lock-guarded shared updates (Implementation 1),
// and replica indices merged by "Join Forces" (Implementations 2 and 3).
//
// The index maps each term to a posting list of the files containing it.
// Updates arrive as per-file term blocks without duplicates (Stage 2
// eliminates them), so insertion needs no duplicate scan — the design
// decision the paper reaches by analysis in Section 3.
package index

import (
	"fmt"
	"sort"
	"sync"

	"desksearch/internal/container"
	"desksearch/internal/postings"
)

// FileTable maps FileIDs to file paths. Stage 1 builds it before extraction
// starts; batch builds never mutate it afterwards, so it is safely shared by
// all replicas and query threads. Incremental maintenance (internal/delta)
// does mutate it — registering new files and tombstoning deleted ones — and
// must do so under the search engine's maintenance lock.
//
// FileIDs are never reused: a deleted file keeps its slot as a tombstone
// (Live reports false) and a re-created path gets a fresh ID. That keeps
// every posting list ever written valid and makes removal idempotent.
type FileTable struct {
	paths  []string
	sizes  []int64
	mtimes []int64
	// tokens[id] is the file's token length (total emitted term
	// occurrences) — the document length BM25 normalizes by. Meaningful
	// only while hasTokens is set.
	tokens []uint32
	dead   []bool // tombstones; nil-safe via Live
	nDead  int
	byPath map[string]postings.FileID // live paths only

	// hasTokens records whether the tokens column carries real lengths.
	// Fresh tables always do (extraction fills them in); a table loaded
	// from a pre-v9 DSIX file never does — and never will, even across
	// incremental updates, so BM25 fails consistently instead of scoring
	// a mix of known and unknown lengths.
	hasTokens bool
}

// NewFileTable returns an empty table.
func NewFileTable() *FileTable {
	return &FileTable{byPath: make(map[string]postings.FileID), hasTokens: true}
}

// Add appends a live file and returns its ID. mtime is the modification
// stamp change detection compares (vfs.DirEntry.ModTime).
func (t *FileTable) Add(path string, size, mtime int64) postings.FileID {
	id := postings.FileID(len(t.paths))
	t.paths = append(t.paths, path)
	t.sizes = append(t.sizes, size)
	t.mtimes = append(t.mtimes, mtime)
	t.tokens = append(t.tokens, 0)
	t.dead = append(t.dead, false)
	t.byPath[path] = id
	return id
}

// Path returns the path for id.
func (t *FileTable) Path(id postings.FileID) string { return t.paths[id] }

// Size returns the recorded byte size for id.
func (t *FileTable) Size(id postings.FileID) int64 { return t.sizes[id] }

// ModTime returns the recorded modification stamp for id.
func (t *FileTable) ModTime(id postings.FileID) int64 { return t.mtimes[id] }

// SetMeta updates the recorded size and modification stamp for id, the
// bookkeeping half of re-indexing a modified file.
func (t *FileTable) SetMeta(id postings.FileID, size, mtime int64) {
	t.sizes[id] = size
	t.mtimes[id] = mtime
}

// SetTokens records id's token length (extract.TermBlock.Tokens).
// Concurrent extractors may call it for distinct IDs — each write lands in
// its own preallocated slot, so no lock is needed during a build.
func (t *FileTable) SetTokens(id postings.FileID, n uint32) {
	t.tokens[id] = n
}

// Tokens returns the recorded token length for id (0 when unknown).
func (t *FileTable) Tokens(id postings.FileID) uint32 { return t.tokens[id] }

// HasTokens reports whether the table carries real token lengths — true
// for every freshly built table, false for one loaded from a pre-v9 DSIX
// file, whose lengths were never recorded. BM25 requires it.
func (t *FileTable) HasTokens() bool { return t.hasTokens }

// LiveTokens sums the token lengths of all live files — the corpus size
// BM25's average document length derives from.
func (t *FileTable) LiveTokens() uint64 {
	var sum uint64
	for id, n := range t.tokens {
		if !t.dead[id] {
			sum += uint64(n)
		}
	}
	return sum
}

// Live reports whether id is a live file (not tombstoned).
func (t *FileTable) Live(id postings.FileID) bool { return !t.dead[id] }

// Tombstone marks id deleted, freeing its path for re-registration under a
// new ID. Tombstoning an already-dead ID is a no-op.
func (t *FileTable) Tombstone(id postings.FileID) {
	if t.dead[id] {
		return
	}
	t.dead[id] = true
	t.nDead++
	if cur, ok := t.byPath[t.paths[id]]; ok && cur == id {
		delete(t.byPath, t.paths[id])
	}
}

// Lookup returns the live file registered under path, if any. Tombstoned
// files are not found: a deleted-then-recreated path is a new file.
func (t *FileTable) Lookup(path string) (postings.FileID, bool) {
	id, ok := t.byPath[path]
	return id, ok
}

// Len returns the number of table slots, tombstones included — the
// exclusive upper bound of every FileID ever issued.
func (t *FileTable) Len() int { return len(t.paths) }

// LiveCount returns the number of live (non-tombstoned) files.
func (t *FileTable) LiveCount() int { return len(t.paths) - t.nDead }

// LiveIDs appends the IDs of all live files to dst in ascending order and
// returns it — the universe a NOT query complements against.
func (t *FileTable) LiveIDs(dst []postings.FileID) []postings.FileID {
	for id := range t.paths {
		if !t.dead[id] {
			dst = append(dst, postings.FileID(id))
		}
	}
	return dst
}

// Paths returns all paths indexed by FileID, tombstoned slots included.
// Callers must not modify the returned slice.
func (t *FileTable) Paths() []string { return t.paths }

// Index is an inverted index. It is not safe for concurrent mutation; use
// Shared for Implementation 1, or one Index per updater for
// Implementations 2 and 3.
type Index struct {
	terms *container.HashMap[*postings.List]
	// nPostings counts (term, file) pairs for Stats.
	nPostings int64
	// positional records that this index was built (or loaded) with
	// per-posting token positions. It decides which DSIX frame version the
	// codec writes (v8 vs v6/v7 — see docs/FORMAT.md) and whether
	// incremental updates re-extract changed files positionally.
	positional bool

	// sortMu guards the lazily built sorted dictionary cache backing
	// Range/Terms/TermsFrom: the ascending term list plus, parallel to
	// it, each term's posting-list pointer — so a dictionary walk costs
	// no per-term hash lookup. Concurrent readers may race to build it
	// (the engine's read lock admits many queries at once); mutators
	// that change the term set, or swap a term's list pointer
	// (RemoveFiles), drop it. nil sorted means stale.
	sortMu      sync.Mutex
	sorted      []string
	sortedLists []*postings.List
}

// New returns an empty index sized for about capacity terms.
func New(capacity int) *Index {
	return &Index{terms: container.NewHashMap[*postings.List](capacity)}
}

// AddBlock inserts a file's duplicate-free term block. This is the en-bloc
// insertion path the paper chose: one call per file, no per-posting
// duplicate checks (each file is scanned exactly once). counts, when
// non-nil, carries the per-term occurrence frequency parallel to terms
// (extract.TermBlock.Counts); nil records every term with frequency 1.
func (ix *Index) AddBlock(id postings.FileID, terms []string, counts []uint32) {
	defer ix.invalidateSortedOnGrowth(ix.terms.Len())
	for i, term := range terms {
		l := ix.terms.GetOrPut(term, func() *postings.List { return &postings.List{} })
		if counts == nil {
			l.Add(id)
		} else {
			l.AddN(id, counts[i])
		}
	}
	ix.nPostings += int64(len(terms))
}

// AddBlockPositional inserts a file's duplicate-free term block with the
// per-term occurrence positions extracted alongside it
// (extract.TermBlock.Positions): positions[i] lists the ascending token
// positions of terms[i] in the file, and the per-posting frequency is
// derived from it, so TF ranking needs no separate count. Marks the index
// positional.
func (ix *Index) AddBlockPositional(id postings.FileID, terms []string, positions [][]uint32) {
	defer ix.invalidateSortedOnGrowth(ix.terms.Len())
	ix.positional = true
	for i, term := range terms {
		l := ix.terms.GetOrPut(term, func() *postings.List { return &postings.List{} })
		l.AddPositions(id, positions[i])
	}
	ix.nPostings += int64(len(terms))
}

// Positional reports whether the index carries per-posting token positions
// (phrase queries need them; the codec persists them as DSIX v8).
func (ix *Index) Positional() bool { return ix.positional }

// SetPositional marks a (typically fresh) index as positional, so an empty
// positional build still persists as a positional catalog and keeps
// re-extracting positionally through incremental updates.
func (ix *Index) SetPositional() { ix.positional = true }

// AddTermOccurrence inserts a single (term, file) occurrence, tolerating
// duplicates. It is the paper's rejected alternative — terms inserted
// immediately and potentially repeatedly — kept for the ablation benchmark;
// the posting list's sorted insert performs the duplicate check the paper's
// analysis wanted to avoid.
func (ix *Index) AddTermOccurrence(term string, id postings.FileID) {
	defer ix.invalidateSortedOnGrowth(ix.terms.Len())
	l := ix.terms.GetOrPut(term, func() *postings.List { return &postings.List{} })
	before := l.Len()
	l.Add(id)
	if l.Len() > before {
		ix.nPostings++
	}
}

// Lookup returns the posting list for term, or nil if absent. The returned
// list is the index's own storage; callers must not modify it.
func (ix *Index) Lookup(term string) *postings.List {
	l, ok := ix.terms.Get(term)
	if !ok {
		return nil
	}
	return l
}

// Iterator returns a streaming cursor over term's in-memory posting
// list, or nil if the term is absent. The cursor reads the index's own
// storage: valid only while the index is unmutated (the engine's read
// lock guarantees that for query evaluation).
func (ix *Index) Iterator(term string) PostingIterator {
	l := ix.Lookup(term)
	if l == nil {
		return nil
	}
	return postings.NewIterator(l)
}

// DocFreq returns term's document frequency (its posting-list length), or
// 0 if the term is absent.
func (ix *Index) DocFreq(term string) int {
	if l := ix.Lookup(term); l != nil {
		return l.Len()
	}
	return 0
}

// NumTerms returns the number of distinct terms.
func (ix *Index) NumTerms() int { return ix.terms.Len() }

// NumPostings returns the number of (term, file) pairs.
func (ix *Index) NumPostings() int64 { return ix.nPostings }

// invalidateSortedOnGrowth drops the sorted-term cache if the term count
// no longer matches before — the count captured when a mutator started.
// Mutators that only rewrite posting lists of existing terms keep the
// cache; ones that add or drop terms invalidate it.
func (ix *Index) invalidateSortedOnGrowth(before int) {
	if ix.terms.Len() == before {
		return
	}
	ix.invalidateSorted()
}

// invalidateSorted drops the sorted dictionary cache unconditionally.
func (ix *Index) invalidateSorted() {
	ix.sortMu.Lock()
	ix.sorted, ix.sortedLists = nil, nil
	ix.sortMu.Unlock()
}

// sortedDict returns the ascending term list and, parallel to it, each
// term's posting-list pointer, building both on first use after an
// invalidation. List pointers are stable between invalidations (in-place
// mutators keep them; RemoveFiles, the one mutator that swaps a list,
// invalidates), so iterating the pair avoids a hash lookup per term —
// the cost that dominates full-dictionary scans. Safe for concurrent
// readers; callers must not modify the returned slices.
func (ix *Index) sortedDict() ([]string, []*postings.List) {
	ix.sortMu.Lock()
	defer ix.sortMu.Unlock()
	if ix.sorted == nil {
		keys := ix.terms.Keys(make([]string, 0, ix.terms.Len()))
		sort.Strings(keys)
		lists := make([]*postings.List, len(keys))
		for i, term := range keys {
			lists[i], _ = ix.terms.Get(term)
		}
		ix.sorted, ix.sortedLists = keys, lists
	}
	return ix.sorted, ix.sortedLists
}

// sortedTerms returns the ascending term list of sortedDict.
func (ix *Index) sortedTerms() []string {
	terms, _ := ix.sortedDict()
	return terms
}

// Range calls f for every (term, postings) pair in ascending term order
// until f returns false. Sorted order is a documented guarantee (since the
// Partition refactor): it makes prefix expansion, suggestions, and the
// on-disk term section deterministic across runs and identical across
// storage backends. The index must not gain or lose terms during Range.
func (ix *Index) Range(f func(term string, l *postings.List) bool) {
	terms, lists := ix.sortedDict()
	for i, term := range terms {
		if !f(term, lists[i]) {
			return
		}
	}
}

// TermsFrom calls yield for every term >= from in ascending order with its
// document frequency, until yield returns false — the dictionary-range
// primitive of the Partition interface. The seek is a binary search over
// the sorted term cache.
func (ix *Index) TermsFrom(from string, yield func(term string, df int) bool) {
	terms, lists := ix.sortedDict()
	i := sort.SearchStrings(terms, from)
	for ; i < len(terms); i++ {
		if !yield(terms[i], lists[i].Len()) {
			return
		}
	}
}

// Terms appends all terms to dst in ascending order and returns it.
func (ix *Index) Terms(dst []string) []string {
	return append(dst, ix.sortedTerms()...)
}

// Docs returns the set of files this index holds postings for, as a fresh
// pure-ID list (term frequencies are never copied — NOT evaluation, the
// consumer, reads only IDs).
func (ix *Index) Docs() *postings.List {
	u := &postings.List{}
	ix.terms.Range(func(_ string, l *postings.List) bool {
		u.Merge(postings.FromSortedIDs(l.IDs()))
		return true
	})
	return u
}

// ResidentBytes estimates the index's heap footprint: per-term map-entry
// and string bytes plus posting and position storage. An observability
// estimate, not an allocator measurement.
func (ix *Index) ResidentBytes() int64 {
	var b int64
	ix.terms.Range(func(term string, l *postings.List) bool {
		b += int64(len(term)) + 48 // entry, header, list overheads
		b += int64(l.Len()) * 8    // id + count columns
		if l.HasPositions() {
			for i := 0; i < l.Len(); i++ {
				b += int64(len(l.PositionsAt(i))) * 4
			}
		}
		return true
	})
	return b
}

// Join destructively merges other into ix ("Join Forces"): every posting
// list of other is united with ix's. other must not be used afterwards.
func (ix *Index) Join(other *Index) {
	if other == nil {
		return
	}
	defer ix.invalidateSortedOnGrowth(ix.terms.Len())
	ix.positional = ix.positional || other.positional
	other.terms.Range(func(term string, l *postings.List) bool {
		existing, ok := ix.terms.Get(term)
		if !ok {
			ix.terms.Put(term, l)
			ix.nPostings += int64(l.Len())
			return true
		}
		before := existing.Len()
		existing.Merge(l)
		ix.nPostings += int64(existing.Len() - before)
		return true
	})
}

// MergeTerm unions l into term's posting list, creating the term if absent.
// l is read but not retained, so callers may keep using it. Sharding uses
// MergeTerm to route posting sublists between indices without the per-ID
// lookup cost of AddTermOccurrence.
func (ix *Index) MergeTerm(term string, l *postings.List) {
	if l == nil || l.Len() == 0 {
		return
	}
	defer ix.invalidateSortedOnGrowth(ix.terms.Len())
	existing := ix.terms.GetOrPut(term, func() *postings.List { return &postings.List{} })
	before := existing.Len()
	existing.Merge(l)
	ix.nPostings += int64(existing.Len() - before)
}

// Clone returns a deep copy: posting lists are duplicated, so mutating or
// joining the clone leaves the original untouched.
func (ix *Index) Clone() *Index {
	out := New(ix.NumTerms())
	ix.terms.Range(func(term string, l *postings.List) bool {
		out.terms.Put(term, l.Clone())
		return true
	})
	out.nPostings = ix.nPostings
	out.positional = ix.positional
	return out
}

// Equal reports whether two indices contain identical term→postings maps.
func (ix *Index) Equal(other *Index) bool {
	if ix.NumTerms() != other.NumTerms() {
		return false
	}
	equal := true
	ix.terms.Range(func(term string, l *postings.List) bool {
		ol, ok := other.terms.Get(term)
		if !ok || !l.Equal(ol) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// Stats summarizes an index.
type Stats struct {
	Terms    int
	Postings int64
}

// Stats returns summary statistics.
func (ix *Index) Stats() Stats {
	return Stats{Terms: ix.NumTerms(), Postings: ix.NumPostings()}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d terms, %d postings", s.Terms, s.Postings)
}

// Shared wraps an Index with a mutex: the paper's Implementation 1 ("use a
// single shared index and lock it on update"). Every updater thread calls
// AddBlock; the lock is held for the whole en-bloc insertion, which is the
// coarse-grained critical section whose contention the paper measures.
type Shared struct {
	mu sync.Mutex
	ix *Index
}

// NewShared returns a locked wrapper around a fresh index.
func NewShared(capacity int) *Shared { return &Shared{ix: New(capacity)} }

// AddBlock inserts a term block under the lock.
func (s *Shared) AddBlock(id postings.FileID, terms []string, counts []uint32) {
	s.mu.Lock()
	s.ix.AddBlock(id, terms, counts)
	s.mu.Unlock()
}

// AddBlockPositional inserts a positional term block under the lock.
func (s *Shared) AddBlockPositional(id postings.FileID, terms []string, positions [][]uint32) {
	s.mu.Lock()
	s.ix.AddBlockPositional(id, terms, positions)
	s.mu.Unlock()
}

// AddTermOccurrence inserts one occurrence under the lock (ablation path).
func (s *Shared) AddTermOccurrence(term string, id postings.FileID) {
	s.mu.Lock()
	s.ix.AddTermOccurrence(term, id)
	s.mu.Unlock()
}

// Unwrap returns the underlying index. Call only after all updaters have
// finished (the pipeline's barrier guarantees this).
func (s *Shared) Unwrap() *Index { return s.ix }
