package desksearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"desksearch/internal/shard"
)

// openSubset opens a shard subset of dir or fails the test.
func openSubset(t *testing.T, dir string, ids []int, opt Options) *Catalog {
	t.Helper()
	cat, err := OpenDirShards(dir, ids, opt)
	if err != nil {
		t.Fatalf("OpenDirShards(%v): %v", ids, err)
	}
	t.Cleanup(func() { cat.Close() })
	return cat
}

// TestOpenDirShardsSubset pins the worker open path: a subset catalog
// reports its place in the directory's topology, serves exactly the
// documents that hash-route to its shards, and complementary subsets
// tile every query's result set — including NOT queries, whose
// complement universes are the subtle part of subset serving.
func TestOpenDirShardsSubset(t *testing.T) {
	fs := corpusFS(t, 120)
	built, err := IndexFS(fs, ".", Options{Positions: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	opt := Options{Positions: true, BlockCacheBytes: 1 << 20}
	whole, err := OpenDir(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	// Deliberately interleaved subsets: global shard numbers must survive
	// the mapping to local partition indexes.
	subA := openSubset(t, dir, []int{0, 2}, opt)
	subB := openSubset(t, dir, []int{3, 1}, opt)

	if got := subA.PartitionIDs(); fmt.Sprint(got) != "[0 2]" {
		t.Fatalf("subA.PartitionIDs() = %v, want [0 2]", got)
	}
	if got := subB.PartitionIDs(); fmt.Sprint(got) != "[1 3]" {
		t.Fatalf("subB.PartitionIDs() = %v (ids normalize sorted), want [1 3]", got)
	}
	if subA.TotalShards() != 4 || subA.Shards() != 2 {
		t.Fatalf("subA topology = %d local of %d total, want 2 of 4", subA.Shards(), subA.TotalShards())
	}
	if whole.TotalShards() != 4 || whole.Shards() != 4 {
		t.Fatalf("whole topology = %d local of %d total, want 4 of 4", whole.Shards(), whole.TotalShards())
	}
	if budget, _, ok := subA.BlockCache(); !ok || budget != 1<<20 {
		t.Fatalf("subA.BlockCache() = %d, %v; want the configured 1MiB budget", budget, ok)
	}

	// Every query shape — NOT clauses and OR-of-NOT especially, which
	// depend on the subset universes — must tile: subset totals sum to the
	// whole's total and the subsets' hit sets are disjoint.
	queries := []Query{
		{Text: "report"},
		{Text: "quarterly report -draft"},
		{Text: "flour OR -report", Ranking: RankTF},
		{Text: "milk -pancake -allergy"},
		{Text: `"annual report"`, Ranking: RankBM25},
		{Text: "repor* -final", Ranking: RankCount},
	}
	for _, q := range queries {
		rw, err := whole.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%q whole: %v", q.Text, err)
		}
		ra, err := subA.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%q subA: %v", q.Text, err)
		}
		rb, err := subB.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%q subB: %v", q.Text, err)
		}
		if ra.Total+rb.Total != rw.Total {
			t.Fatalf("%q: subset totals %d+%d != whole %d", q.Text, ra.Total, rb.Total, rw.Total)
		}
		seen := make(map[string]bool)
		for _, h := range append(append([]Hit{}, ra.Hits...), rb.Hits...) {
			if seen[h.Path] {
				t.Fatalf("%q: %s served by both subsets", q.Text, h.Path)
			}
			seen[h.Path] = true
		}
	}
}

// TestDistributedBM25Identity proves the df pre-aggregation protocol at
// the API level: summing the subsets' integer document-frequency vectors
// and handing the total back through Query.GlobalDF makes the merged
// subset results bit-identical to the whole directory's — scores, order,
// and ties included. This is the invariant the HTTP broker transports.
func TestDistributedBM25Identity(t *testing.T) {
	fs := corpusFS(t, 150)
	built, err := IndexFS(fs, ".", Options{Positions: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	opt := Options{Positions: true}
	whole, err := OpenDir(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	subsets := []*Catalog{
		openSubset(t, dir, []int{0, 2}, opt),
		openSubset(t, dir, []int{1, 3}, opt),
	}

	queries := []Query{
		{Text: "report", Ranking: RankBM25},
		{Text: "quarterly OR annual", Ranking: RankBM25, Limit: 25},
		{Text: "repor* budget", Ranking: RankBM25, Limit: 10},
		{Text: `"annual report" -draft`, Ranking: RankBM25, Limit: 40},
		{Text: "rev* OR milk", Ranking: RankBM25, Limit: 15, Offset: 5},
	}
	for _, q := range queries {
		// Phase one: gather and sum the local df vectors. The whole
		// catalog's own vector must equal the sum — dfs are integers and
		// partitions are document-disjoint.
		sum, err := subsets[0].DocFreqs(context.Background(), q)
		if err != nil {
			t.Fatalf("%q df: %v", q.Text, err)
		}
		for _, sub := range subsets[1:] {
			df, err := sub.DocFreqs(context.Background(), q)
			if err != nil {
				t.Fatalf("%q df: %v", q.Text, err)
			}
			if !sum.Add(df) {
				t.Fatalf("%q: df vectors disagree in shape", q.Text)
			}
		}
		wdf, err := whole.DocFreqs(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(*sum) != fmt.Sprint(*wdf) {
			t.Fatalf("%q: summed subset dfs %+v != whole dfs %+v", q.Text, *sum, *wdf)
		}

		// Phase two: evaluate each subset under the global statistics and
		// k-way merge the partials by (score desc, file asc) — the
		// engine's total order.
		k := q.Limit + q.Offset
		var partial []Hit
		for _, sub := range subsets {
			sq := q
			sq.Offset = 0
			sq.Limit = k // limit+offset candidates; broker applies offset post-merge
			sq.GlobalDF = sum
			r, err := sub.Query(context.Background(), sq)
			if err != nil {
				t.Fatalf("%q subset query: %v", q.Text, err)
			}
			partial = append(partial, r.Hits...)
		}
		sort.Slice(partial, func(i, j int) bool {
			if partial[i].Score != partial[j].Score {
				return partial[i].Score > partial[j].Score
			}
			return partial[i].File < partial[j].File
		})
		if q.Offset < len(partial) {
			partial = partial[q.Offset:]
		} else {
			partial = nil
		}
		if k > 0 && len(partial) > q.Limit {
			partial = partial[:q.Limit]
		}

		rw, err := whole.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(partial) != len(rw.Hits) {
			t.Fatalf("%q: merged %d hits, whole %d", q.Text, len(partial), len(rw.Hits))
		}
		for i := range partial {
			if partial[i].Path != rw.Hits[i].Path {
				t.Fatalf("%q: hit %d path %q vs %q", q.Text, i, partial[i].Path, rw.Hits[i].Path)
			}
			if math.Float64bits(partial[i].Score) != math.Float64bits(rw.Hits[i].Score) {
				t.Fatalf("%q: hit %d (%s) score bits %x vs %x", q.Text, i,
					partial[i].Path, math.Float64bits(partial[i].Score), math.Float64bits(rw.Hits[i].Score))
			}
		}
	}
}

// TestGlobalDFShapeMismatch: a GlobalDF vector from a different query
// must be rejected, not silently mis-scored.
func TestGlobalDFShapeMismatch(t *testing.T) {
	fs := corpusFS(t, 40)
	cat, err := IndexFS(fs, ".", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	df, err := cat.DocFreqs(context.Background(), Query{Text: "report budget"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cat.Query(context.Background(), Query{Text: "report", Ranking: RankBM25, GlobalDF: df})
	if err == nil {
		t.Fatal("mismatched GlobalDF shape was accepted")
	}
}

// TestOpenDirShardsNotHashRouted: a directory saved from pipeline
// replicas has no shard routing, so opening a true subset of it must be
// refused — the workers could not divide NOT-query responsibility.
func TestOpenDirShardsNotHashRouted(t *testing.T) {
	fs := corpusFS(t, 60)
	built, err := IndexFS(fs, ".", Options{Implementation: ReplicatedSearch, Extractors: 3, Updaters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if built.Indices() < 2 {
		t.Fatalf("want >=2 replicas to form a subset, got %d", built.Indices())
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDirShards(dir, []int{0})
	if !errors.Is(err, shard.ErrNotHashRouted) {
		t.Fatalf("OpenDirShards on a replica-saved directory = %v, want ErrNotHashRouted", err)
	}
	// The full set of the same directory stays serveable: no subset, no
	// routing requirement.
	cat, err := OpenDirShards(dir, nil)
	if err != nil {
		t.Fatalf("whole-directory open of the same directory failed: %v", err)
	}
	cat.Close()
}

// TestOpenDirShardsValidation covers the subset argument contract.
func TestOpenDirShardsValidation(t *testing.T) {
	fs := corpusFS(t, 30)
	built, err := IndexFS(fs, ".", Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDirShards(dir, []int{3}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := OpenDirShards(dir, []int{-1}); err == nil {
		t.Fatal("negative shard accepted")
	}
	cat, err := OpenDirShards(dir, []int{2, 0, 2}) // duplicates collapse
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if got := cat.PartitionIDs(); fmt.Sprint(got) != "[0 2]" {
		t.Fatalf("PartitionIDs = %v, want [0 2]", got)
	}
}
