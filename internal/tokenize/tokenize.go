// Package tokenize implements the term scanner of the index generator's
// Stage 2 (term extraction).
//
// A term is a maximal run of ASCII letters and digits; letters are folded to
// lower case so that "Index" and "index" hit the same posting list. The
// scanner works either over a byte slice (the fast path used by extractors,
// which read whole files) or incrementally over an io.Reader.
package tokenize

import (
	"bufio"
	"io"
)

// Options configure a Scanner.
type Options struct {
	// MinLen drops terms shorter than this many bytes. Zero means 1.
	MinLen int
	// MaxLen truncates recognition: terms longer than MaxLen bytes are
	// dropped entirely (they are almost never useful search terms).
	// Zero means no limit.
	MaxLen int
	// Stopwords, when non-nil, drops the listed (lower-case) terms.
	Stopwords *StopSet
	// KeepDigits controls whether runs of digits count as term characters.
	// The paper's benchmark is prose text; digits default to on because
	// desktop documents contain part numbers, dates, and the like.
	DropDigits bool
}

// Default are the options used by the index generator when none are given.
var Default = Options{MinLen: 1, MaxLen: 64}

var isTermByte [256]bool
var toLower [256]byte

func init() {
	for c := 0; c < 256; c++ {
		toLower[c] = byte(c)
	}
	for c := 'a'; c <= 'z'; c++ {
		isTermByte[c] = true
	}
	for c := 'A'; c <= 'Z'; c++ {
		isTermByte[c] = true
		toLower[c] = byte(c - 'A' + 'a')
	}
	for c := '0'; c <= '9'; c++ {
		isTermByte[c] = true
	}
}

// Scan splits data into terms and calls emit for each one. The string passed
// to emit is freshly allocated and may be retained.
//
// Scan is the hot loop of term extraction: it makes one pass over data and
// allocates only for emitted terms.
func Scan(data []byte, opts Options, emit func(term string)) {
	minLen := opts.MinLen
	if minLen < 1 {
		minLen = 1
	}
	digitOK := !opts.DropDigits
	i := 0
	n := len(data)
	for i < n {
		c := data[i]
		if !isTermByte[c] || (!digitOK && c >= '0' && c <= '9') {
			i++
			continue
		}
		start := i
		lower := true
		for i < n {
			c = data[i]
			if !isTermByte[c] || (!digitOK && c >= '0' && c <= '9') {
				break
			}
			if c >= 'A' && c <= 'Z' {
				lower = false
			}
			i++
		}
		length := i - start
		if length < minLen || (opts.MaxLen > 0 && length > opts.MaxLen) {
			continue
		}
		var term string
		if lower {
			term = string(data[start:i])
		} else {
			buf := make([]byte, length)
			for j := 0; j < length; j++ {
				buf[j] = toLower[data[start+j]]
			}
			term = string(buf)
		}
		if opts.Stopwords != nil && opts.Stopwords.Contains(term) {
			continue
		}
		emit(term)
	}
}

// Terms returns all terms in data, in order of appearance (with duplicates).
func Terms(data []byte, opts Options) []string {
	var out []string
	Scan(data, opts, func(t string) { out = append(out, t) })
	return out
}

// Scanner tokenizes an io.Reader incrementally. It is used when files are
// too large to slurp, e.g. the five large files of the paper's benchmark
// when memory is tight.
type Scanner struct {
	r    *bufio.Reader
	opts Options
	term []byte
	err  error
}

// NewScanner returns a Scanner reading from r.
func NewScanner(r io.Reader, opts Options) *Scanner {
	return &Scanner{r: bufio.NewReaderSize(r, 64<<10), opts: opts, term: make([]byte, 0, 64)}
}

// Next returns the next term, or "" and io.EOF when input is exhausted.
// Other errors from the underlying reader are returned as-is.
func (s *Scanner) Next() (string, error) {
	if s.err != nil {
		return "", s.err
	}
	minLen := s.opts.MinLen
	if minLen < 1 {
		minLen = 1
	}
	digitOK := !s.opts.DropDigits
	for {
		s.term = s.term[:0]
		// Skip separators.
		var c byte
		var err error
		for {
			c, err = s.r.ReadByte()
			if err != nil {
				s.err = err
				return "", err
			}
			if isTermByte[c] && (digitOK || c < '0' || c > '9') {
				break
			}
		}
		// Accumulate the term.
		s.term = append(s.term, toLower[c])
		for {
			c, err = s.r.ReadByte()
			if err != nil {
				if err == io.EOF {
					break
				}
				s.err = err
				return "", err
			}
			if !isTermByte[c] || (!digitOK && c >= '0' && c <= '9') {
				break
			}
			s.term = append(s.term, toLower[c])
		}
		if len(s.term) < minLen || (s.opts.MaxLen > 0 && len(s.term) > s.opts.MaxLen) {
			if err == io.EOF {
				s.err = io.EOF
				return "", io.EOF
			}
			continue
		}
		term := string(s.term)
		if s.opts.Stopwords != nil && s.opts.Stopwords.Contains(term) {
			if err == io.EOF {
				s.err = io.EOF
				return "", io.EOF
			}
			continue
		}
		if err == io.EOF {
			s.err = io.EOF // delivered on the next call
		}
		return term, nil
	}
}

// All drains the scanner and returns the remaining terms.
func (s *Scanner) All() ([]string, error) {
	var out []string
	for {
		t, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
