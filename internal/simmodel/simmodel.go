// Package simmodel maps the index-generation pipeline onto the
// discrete-event simulator: simulated term extractors, index updaters, the
// shared-index lock, the bounded buffer, and the final "Join Forces" merge,
// all driven by per-platform unit costs (internal/platform) over corpus
// metadata (internal/corpus).
//
// The same core.Config that drives a live goroutine run drives a simulated
// run, so the experiment harness can sweep the paper's configuration space
// — any (x, y, z) on any of the three machines — in milliseconds per run
// and regenerate Tables 1–4.
package simmodel

import (
	"fmt"
	"math/rand"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/distribute"
	"desksearch/internal/platform"
	"desksearch/internal/sim"
	"desksearch/internal/walk"
)

// Options control model fidelity.
type Options struct {
	// Batch is the number of files coalesced into one simulated work unit.
	// 1 simulates every file individually; larger values trade temporal
	// resolution for event count. Zero selects 8.
	Batch int
	// Jitter is the relative service-time noise (e.g. 0.01 = ±1%),
	// deterministic per Seed. It reproduces the run-to-run variation the
	// paper averages over five runs.
	Jitter float64
	// Seed drives the jitter stream.
	Seed int64
}

func (o Options) normalized() Options {
	if o.Batch < 1 {
		o.Batch = 8
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	return o
}

// RunResult is the outcome of one simulated pipeline execution.
type RunResult struct {
	// Exec is end-to-end virtual seconds.
	Exec float64
	// FilenameGen, ExtractUpdate, and Join are the phase times.
	FilenameGen   float64
	ExtractUpdate float64
	Join          float64
	// CoreBusy and DiskBusy are resource holder-seconds, for utilization
	// analysis.
	CoreBusy float64
	DiskBusy float64
	// Events is the number of simulator events dispatched.
	Events uint64
}

// batch is one simulated unit of Stage 2+3 work: a run of files from one
// extractor's private vector.
type batch struct {
	disk   float64 // disk service seconds (seeks + transfer)
	scan   float64 // CPU seconds to read + extract
	insert float64 // CPU seconds to update the index
	unique float64 // postings produced (for join sizing)
}

// Simulate runs the configured pipeline on the simulated platform over the
// corpus described by cs.
func Simulate(p platform.Profile, cs corpus.Stats, cfg core.Config, opt Options) (RunResult, error) {
	if err := p.Validate(); err != nil {
		return RunResult{}, err
	}
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	if len(cs.Files) == 0 {
		return RunResult{}, fmt.Errorf("simmodel: empty corpus")
	}
	opt = opt.normalized()
	cfg = normalizeConfig(cfg)

	m := &model{
		p:     p,
		costs: p.UnitCosts(cs),
		cfg:   cfg,
		opt:   opt,
		eng:   sim.NewEngine(),
		rng:   rand.New(rand.NewSource(opt.Seed)),
	}
	m.cores = sim.NewResource(m.eng, p.Cores)
	m.disk = sim.NewResource(m.eng, p.DiskDepth)
	m.lock = sim.NewResource(m.eng, 1)

	m.buildBatches(cs)
	m.run()

	return RunResult{
		Exec:          m.eng.Now(),
		FilenameGen:   m.filenameGen,
		ExtractUpdate: m.extractEnd - m.filenameGen,
		Join:          m.joinTime,
		CoreBusy:      m.cores.BusySeconds(),
		DiskBusy:      m.disk.BusySeconds(),
		Events:        m.eng.Steps(),
	}, nil
}

// SequentialBaseline returns the modeled sequential execution time scaled
// by the platform's calibration factor — the number the paper's speed-ups
// divide by (≈220/105/90 s on the three machines).
func SequentialBaseline(p platform.Profile, cs corpus.Stats, opt Options) (float64, error) {
	res, err := Simulate(p, cs, core.Config{Implementation: core.Sequential}, opt)
	if err != nil {
		return 0, err
	}
	return res.Exec * p.SeqFactor(), nil
}

// StageTimes returns the modeled Table 1 row for the platform: sequential,
// stage-isolated times for filename generation, reading, reading plus
// extraction, and index update. By construction of the unit-cost
// derivation these reproduce the profile's calibration targets.
func StageTimes(p platform.Profile, cs corpus.Stats) (filename, read, readExtract, insert float64) {
	c := p.UnitCosts(cs)
	n := float64(len(cs.Files))
	bytes := float64(cs.TotalBytes)
	unique := float64(cs.TotalUnique)
	filename = c.FilenamePerFile * n
	read = c.DiskSeqSeconds + c.ReadCPUPerByte*bytes
	readExtract = read + c.ExtractCPUPerByte*bytes
	insert = c.InsertPerUnique * unique
	return filename, read, readExtract, insert
}

// normalizeConfig mirrors core's private normalization so the model
// interprets zero-valued configs exactly as core.Run does.
func normalizeConfig(cfg core.Config) core.Config {
	if cfg.Implementation == core.Sequential {
		cfg.Extractors, cfg.Updaters, cfg.Joiners = 1, 0, 0
		cfg.WorkStealing = false
	}
	if cfg.Extractors < 1 {
		cfg.Extractors = 1
	}
	if cfg.Updaters < 0 {
		cfg.Updaters = 0
	}
	if cfg.Joiners < 0 {
		cfg.Joiners = 0
	}
	if cfg.Implementation != core.ReplicatedJoin {
		cfg.Joiners = 0
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 8 * cfg.Extractors
	}
	return cfg
}

type model struct {
	p     platform.Profile
	costs platform.Costs
	cfg   core.Config
	opt   Options
	eng   *sim.Engine
	rng   *rand.Rand

	cores *sim.Resource
	disk  *sim.Resource
	lock  *sim.Resource

	// batches[w] is extractor w's private work vector.
	batches   [][]batch
	total     int // total batch count
	fileCount int

	filenameGen float64
	extractEnd  float64
	joinTime    float64
}

// jitter perturbs a service time by the configured noise.
func (m *model) jitter(x float64) float64 {
	if m.opt.Jitter == 0 || x == 0 {
		return x
	}
	return x * (1 + m.opt.Jitter*(2*m.rng.Float64()-1))
}

// buildBatches partitions the corpus across extractors with the configured
// strategy and coalesces each share into batches. Work stealing is
// approximated by round-robin: with costs proportional to bytes and sizes
// known up front, the steady-state steal distribution matches the dealt
// one (measured live by BenchmarkAblationDistribution).
func (m *model) buildBatches(cs corpus.Stats) {
	refs := make([]walk.FileRef, len(cs.Files))
	byPath := make(map[string]*corpus.FileStat, len(cs.Files))
	for i := range cs.Files {
		f := &cs.Files[i]
		refs[i] = walk.FileRef{Path: f.Path, Size: f.Size}
		byPath[f.Path] = f
	}
	m.fileCount = len(refs)
	parts := distribute.Partition(refs, m.cfg.Extractors, m.cfg.Distribution)

	m.batches = make([][]batch, len(parts))
	for w, part := range parts {
		var bs []batch
		var cur batch
		n := 0
		for _, ref := range part {
			f := byPath[ref.Path]
			cur.disk += m.p.DiskSeek + float64(f.Size)/m.p.DiskBW
			cur.scan += float64(f.Size) * (m.costs.ReadCPUPerByte + m.costs.ExtractCPUPerByte)
			cur.insert += float64(f.Unique) * m.costs.InsertPerUnique
			cur.unique += float64(f.Unique)
			n++
			if n == m.opt.Batch {
				bs = append(bs, cur)
				cur, n = batch{}, 0
			}
		}
		if n > 0 {
			bs = append(bs, cur)
		}
		m.batches[w] = bs
		m.total += len(bs)
	}
}

// run drives the three phases: filename generation (sequential wall time),
// extract+update, then join.
func (m *model) run() {
	m.filenameGen = m.costs.FilenamePerFile * float64(m.fileCount)
	m.eng.After(m.filenameGen, m.startStage23)
	m.eng.Run()
}

// cpuScan charges a read/extract CPU burst: it competes for a core and is
// stretched by the platform's memory-contention factor (and the
// oversubscription penalty when threads are queued for cores).
func (m *model) cpuScan(nominal float64, cont func()) {
	m.cores.Acquire(func() {
		f := m.p.ContentionFactor(m.cores.InUse())
		if m.cores.QueueLen() > 0 {
			f *= m.p.SwitchPenalty
		}
		m.eng.After(m.jitter(nominal*f), func() {
			m.cores.Release()
			cont()
		})
	})
}

// cpuPlain charges an index-update or join CPU burst: it competes for a
// core and pays the oversubscription penalty, but not the scan-bandwidth
// contention factor (its costs are calibrated separately, and the shared-
// index coherence penalty is applied by the caller).
func (m *model) cpuPlain(nominal float64, cont func()) {
	m.cores.Acquire(func() {
		d := nominal
		if m.cores.QueueLen() > 0 {
			d *= m.p.SwitchPenalty
		}
		m.eng.After(m.jitter(d), func() {
			m.cores.Release()
			cont()
		})
	})
}

// startStage23 launches extractors (and updaters when y > 0).
func (m *model) startStage23() {
	x := m.cfg.Extractors
	useBuffer := m.cfg.Updaters > 0

	// Replica posting totals for join sizing.
	replicas := make([]float64, replicaCount(m.cfg))

	onStage23Done := func() {
		m.extractEnd = m.eng.Now()
		m.startJoin(replicas)
	}

	if !useBuffer {
		wg := sim.NewWaitGroup(m.eng, x)
		wg.Wait(onStage23Done)
		for w := 0; w < x; w++ {
			m.extractorDirect(w, replicas, wg)
		}
		return
	}

	// Bounded buffer between extractors and updaters.
	slots := sim.NewSemaphore(m.eng, m.cfg.Buffer)
	items := sim.NewSemaphore(m.eng, 0)
	queue := make([]batch, 0, m.cfg.Buffer)
	claimed := 0

	wgUpd := sim.NewWaitGroup(m.eng, m.cfg.Updaters)
	wgUpd.Wait(onStage23Done)

	for w := 0; w < x; w++ {
		m.extractorProducing(w, slots, items, &queue)
	}
	for u := 0; u < m.cfg.Updaters; u++ {
		m.updater(u, slots, items, &queue, &claimed, replicas, wgUpd)
	}
}

func replicaCount(cfg core.Config) int {
	switch cfg.Implementation {
	case core.ReplicatedJoin, core.ReplicatedSearch:
		if cfg.Updaters > 0 {
			return cfg.Updaters
		}
		return cfg.Extractors
	default:
		return 1
	}
}

// extractorDirect models an extractor that updates the index itself
// (y = 0): read, scan, insert (locked for SharedIndex, private otherwise).
func (m *model) extractorDirect(w int, replicas []float64, wg *sim.WaitGroup) {
	bs := m.batches[w]
	i := 0
	var step func()
	step = func() {
		if i >= len(bs) {
			wg.Done()
			return
		}
		b := bs[i]
		i++
		m.disk.Use(m.jitter(b.disk), func() {
			m.cpuScan(b.scan, func() {
				m.insertPath(b, w, replicas, step)
			})
		})
	}
	step()
}

// extractorProducing models an extractor feeding the bounded buffer.
func (m *model) extractorProducing(w int, slots, items *sim.Semaphore, queue *[]batch) {
	bs := m.batches[w]
	i := 0
	var step func()
	step = func() {
		if i >= len(bs) {
			return
		}
		b := bs[i]
		i++
		m.disk.Use(m.jitter(b.disk), func() {
			// The enqueue's lock pair is charged with the scan burst.
			m.cpuScan(b.scan+m.p.ChannelOp, func() {
				slots.P(func() {
					*queue = append(*queue, b)
					items.V()
					step()
				})
			})
		})
	}
	step()
}

// updater models an index-update thread draining the buffer (y > 0).
// claimed reserves batches so the y updaters collectively stop after
// exactly total batches.
func (m *model) updater(u int, slots, items *sim.Semaphore, queue *[]batch, claimed *int, replicas []float64, wg *sim.WaitGroup) {
	var loop func()
	loop = func() {
		if *claimed == m.total {
			wg.Done()
			return
		}
		*claimed++
		items.P(func() {
			b := (*queue)[0]
			*queue = (*queue)[1:]
			slots.V()
			b.insert += m.p.ChannelOp // the dequeue's lock pair
			m.insertPath(b, u, replicas, loop)
		})
	}
	loop()
}

// insertPath charges Stage 3 for one batch according to the
// implementation: under the global lock with the coherence penalty
// (SharedIndex), or into the worker's private replica (Replicated*,
// Sequential).
func (m *model) insertPath(b batch, slot int, replicas []float64, cont func()) {
	switch m.cfg.Implementation {
	case core.SharedIndex:
		m.lock.Acquire(func() {
			cost := b.insert*m.p.SharedInsertFactor + m.p.LockOverhead
			m.cpuPlain(cost, func() {
				m.lock.Release()
				cont()
			})
		})
	default:
		if slot < len(replicas) {
			replicas[slot] += b.unique
		}
		m.cpuPlain(b.insert, cont)
	}
}

// startJoin runs the "Join Forces" reduction for ReplicatedJoin; other
// implementations finish here.
func (m *model) startJoin(replicas []float64) {
	if m.cfg.Implementation != core.ReplicatedJoin || len(replicas) < 2 {
		return
	}
	joinStart := m.eng.Now()
	z := m.cfg.Joiners
	if z < 1 {
		z = 1
	}
	ready := append([]float64(nil), replicas...)
	busy := 0
	remaining := len(replicas) - 1

	var tryDispatch func()
	tryDispatch = func() {
		for len(ready) >= 2 && busy < z {
			a, b := ready[0], ready[1]
			ready = ready[2:]
			busy++
			cost := (a + b) * m.p.JoinPerPosting
			m.cpuPlain(cost, func() {
				busy--
				ready = append(ready, a+b)
				remaining--
				if remaining == 0 {
					m.joinTime = m.eng.Now() - joinStart
					return
				}
				tryDispatch()
			})
		}
	}
	tryDispatch()
}
