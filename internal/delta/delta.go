// Package delta implements catalog-level incremental index maintenance:
// keeping a built index in step with a living file tree without the full
// rebuild the paper's batch pipeline performs.
//
// An update runs in three phases, mirroring the pipeline's stages:
//
//  1. Diff — walk the tree (Stage 1's traversal) and compare every file
//     against the index's FileTable by path, size, and modification stamp,
//     producing a Changeset of added, modified, and deleted files.
//  2. Extract — re-extract the added and modified files with a pool of
//     Stage-2 extractors, one per worker, in parallel.
//  3. Commit — apply the changeset in place: one batched posting scan per
//     partition removes deleted and modified files (partitions are
//     independent, so the scans run in parallel), tombstoned FileIDs are
//     retired, new files register fresh IDs, and each new term block is
//     routed to its owning partition by the same FNV FileID split
//     internal/shard uses.
//
// Diff and Extract only read; Commit mutates and must run with queries
// excluded (search.Engine.Maintain does exactly that for the public
// Catalog API).
package delta

import (
	"fmt"
	"sync"

	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/postings"
	"desksearch/internal/shard"
	"desksearch/internal/vfs"
	"desksearch/internal/walk"
)

// Op is the kind of a file-level change.
type Op uint8

const (
	// OpAdd is a file present in the tree but not in the index.
	OpAdd Op = iota
	// OpModify is a file whose size or modification stamp differs from the
	// indexed state.
	OpModify
	// OpDelete is an indexed file no longer present in the tree.
	OpDelete
)

// String returns a short human-readable name for the operation.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpModify:
		return "modify"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Change is one file-level difference between the indexed state and the
// live tree.
type Change struct {
	Op   Op
	Path string
	// ID is the file's existing FileID for OpModify and OpDelete. OpAdd
	// changes have no ID until commit time: FileIDs are never reused, and
	// only the commit phase may grow the file table.
	ID postings.FileID
	// Size and ModTime are the live tree's values (zero for OpDelete).
	Size    int64
	ModTime int64
}

// Changeset is the list of differences Diff found, in a deterministic
// order: deletions in ascending FileID order first, then additions and
// modifications in tree-traversal order (so added files receive IDs in the
// same relative order a fresh build would assign them).
type Changeset struct {
	Changes []Change
}

// Empty reports whether the changeset contains no changes.
func (cs *Changeset) Empty() bool { return len(cs.Changes) == 0 }

// Counts returns the number of additions, modifications, and deletions.
func (cs *Changeset) Counts() (added, modified, deleted int) {
	for _, c := range cs.Changes {
		switch c.Op {
		case OpAdd:
			added++
		case OpModify:
			modified++
		case OpDelete:
			deleted++
		}
	}
	return
}

// String summarizes the changeset.
func (cs *Changeset) String() string {
	a, m, d := cs.Counts()
	return fmt.Sprintf("+%d ~%d -%d", a, m, d)
}

// Diff walks fsys from root and compares the tree against the indexed
// state in files. It performs Stage 1's traversal plus one map lookup per
// file; nothing is read or extracted yet.
func Diff(fsys vfs.FS, root string, files *index.FileTable) (*Changeset, error) {
	refs, err := walk.List(fsys, root)
	if err != nil {
		return nil, fmt.Errorf("delta: diff traversal: %w", err)
	}
	cs := &Changeset{}
	seen := make([]bool, files.Len())
	var addMod []Change
	for _, ref := range refs {
		id, ok := files.Lookup(ref.Path)
		if !ok {
			addMod = append(addMod, Change{Op: OpAdd, Path: ref.Path, Size: ref.Size, ModTime: ref.ModTime})
			continue
		}
		seen[id] = true
		if files.Size(id) != ref.Size || files.ModTime(id) != ref.ModTime {
			addMod = append(addMod, Change{Op: OpModify, Path: ref.Path, ID: id, Size: ref.Size, ModTime: ref.ModTime})
		}
	}
	for id, ok := range seen {
		fid := postings.FileID(id)
		if !ok && files.Live(fid) {
			cs.Changes = append(cs.Changes, Change{Op: OpDelete, Path: files.Path(fid), ID: fid})
		}
	}
	cs.Changes = append(cs.Changes, addMod...)
	return cs, nil
}

// Plan is a changeset with the term blocks of its added and modified files
// already extracted, ready to commit.
type Plan struct {
	Changeset *Changeset
	// blocks maps a change's position in Changeset.Changes to its extracted
	// duplicate-free term block (terms plus occurrence counts). Unreadable
	// files have no entry; Commit leaves their indexed state positioned so
	// the next Diff sees them as still-pending changes and retries.
	blocks map[int]extract.TermBlock
	// Skipped lists the files whose extraction failed.
	Skipped []Skipped
}

// Skipped records a changed file that could not be re-extracted.
type Skipped struct {
	Path string
	Err  error
}

// Extract re-extracts the plan's added and modified files with workers
// parallel Stage-2 extractors and returns the resulting plan. Each worker
// owns one extract.Extractor (they are single-owner by design), fed
// through a shared channel like the pipeline's extraction stage.
func Extract(fsys vfs.FS, cs *Changeset, opts extract.Options, workers int) *Plan {
	plan := &Plan{Changeset: cs, blocks: make(map[int]extract.TermBlock)}
	var todo []int
	for i, c := range cs.Changes {
		if c.Op == OpAdd || c.Op == OpModify {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return plan
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	type extracted struct {
		pos   int
		block extract.TermBlock
		err   error
	}
	jobs := make(chan int, len(todo))
	for _, i := range todo {
		jobs <- i
	}
	close(jobs)
	results := make(chan extracted, len(todo))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := extract.New(fsys, opts)
			for i := range jobs {
				block, err := ex.File(cs.Changes[i].Path, 0)
				results <- extracted{pos: i, block: block, err: err}
			}
		}()
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			plan.Skipped = append(plan.Skipped, Skipped{Path: cs.Changes[r.pos].Path, Err: r.err})
			continue
		}
		plan.blocks[r.pos] = r.block
	}
	return plan
}

// Target is the mutable index state a plan commits into: the shared file
// table and the document-disjoint partitions (a single index, unjoined
// replicas, or the shards of a shard.Set all qualify).
type Target struct {
	Files      *index.FileTable
	Partitions []*index.Index
	// OnDirty, when non-nil, is called once for each partition the commit
	// modified — the hook dirty-segment persistence hangs off.
	OnDirty func(partition int)
}

// Stats summarizes a committed update.
type Stats struct {
	Added, Modified, Deleted       int
	PostingsRemoved, PostingsAdded int64
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("+%d ~%d -%d files (-%d/+%d postings)",
		s.Added, s.Modified, s.Deleted, s.PostingsRemoved, s.PostingsAdded)
}

// Commit applies the plan to t in place and returns what changed.
//
// The caller must exclude concurrent queries (search.Engine.Maintain);
// Commit itself parallelizes the removal scans — partitions are
// independent — but mutates the file table single-threaded.
//
// Removal scans every partition rather than only the hash-owning one
// because partitions built from ReplicatedSearch replicas follow the
// pipeline's distribution order, not the FNV split; membership is the only
// universal owner test, and the batched scan costs one pass per partition
// regardless of how many files the changeset touches. New blocks — for
// added and modified files alike — are routed by shard.ShardFor, so
// hash-split sets keep their invariant and replica-adopted sets stay
// document-disjoint (the old copy of a modified file is gone from every
// partition before the new block lands in exactly one).
//
// Commit is idempotent and safe on stale changesets: before applying, the
// plan is normalized against the live file table — an add whose path is
// already registered becomes a modify of that file, and modifies or
// deletes of an already-retired FileID are dropped — so re-applying a
// changeset (or one computed before an intervening update) cannot
// duplicate table entries or attach postings to tombstones.
func (p *Plan) Commit(t Target) Stats {
	var st Stats
	n := len(t.Partitions)

	type step struct {
		c   Change
		pos int // position in the original changeset, the key into p.blocks
	}
	steps := make([]step, 0, len(p.Changeset.Changes))
	for i, c := range p.Changeset.Changes {
		switch c.Op {
		case OpAdd:
			if id, ok := t.Files.Lookup(c.Path); ok {
				c.Op, c.ID = OpModify, id
			}
		case OpModify, OpDelete:
			if !t.Files.Live(c.ID) {
				continue
			}
		}
		steps = append(steps, step{c: c, pos: i})
	}

	// Phase 1: batched removal of deleted and modified files, one scan per
	// partition, in parallel.
	var victimIDs []postings.FileID
	for _, s := range steps {
		if s.c.Op == OpModify || s.c.Op == OpDelete {
			victimIDs = append(victimIDs, s.c.ID)
		}
	}
	if len(victimIDs) > 0 {
		victims := postings.FromIDs(victimIDs)
		removed := make([]int, n)
		var wg sync.WaitGroup
		for i, ix := range t.Partitions {
			wg.Add(1)
			go func(i int, ix *index.Index) {
				defer wg.Done()
				removed[i] = ix.RemoveFiles(victims)
			}(i, ix)
		}
		wg.Wait()
		for i, r := range removed {
			st.PostingsRemoved += int64(r)
			if r > 0 && t.OnDirty != nil {
				t.OnDirty(i)
			}
		}
	}

	// Phase 2: file-table bookkeeping and en-bloc insertion of the fresh
	// term blocks, each routed to its FNV-owning partition. Files whose
	// re-extraction failed are left pending rather than finalized: a
	// failed modify keeps its stale metadata (so the next Diff still sees
	// the file as changed and retries — its old postings are gone, which
	// is what a rebuild skipping an unreadable file would show), and a
	// failed add is not registered at all (the next Diff re-adds it).
	for _, s := range steps {
		c := s.c
		switch c.Op {
		case OpDelete:
			t.Files.Tombstone(c.ID)
			st.Deleted++
		case OpModify:
			block, ok := p.blocks[s.pos]
			if !ok {
				continue
			}
			t.Files.SetMeta(c.ID, c.Size, c.ModTime)
			t.Files.SetTokens(c.ID, block.Tokens)
			commitBlock(t, c.ID, block, &st)
			st.Modified++
		case OpAdd:
			block, ok := p.blocks[s.pos]
			if !ok {
				continue
			}
			id := t.Files.Add(c.Path, c.Size, c.ModTime)
			t.Files.SetTokens(id, block.Tokens)
			commitBlock(t, id, block, &st)
			st.Added++
		}
	}
	return st
}

// commitBlock routes a fresh term block to id's owning partition, through
// the positional insertion path when the block was extracted with
// positions (a positional catalog re-extracts positionally, so updates
// keep phrase queries answerable).
func commitBlock(t Target, id postings.FileID, block extract.TermBlock, st *Stats) {
	if len(block.Terms) == 0 {
		return
	}
	owner := shard.ShardFor(id, len(t.Partitions))
	if block.Positions != nil {
		t.Partitions[owner].AddBlockPositional(id, block.Terms, block.Positions)
	} else {
		t.Partitions[owner].AddBlock(id, block.Terms, block.Counts)
	}
	st.PostingsAdded += int64(len(block.Terms))
	if t.OnDirty != nil {
		t.OnDirty(owner)
	}
}
