package autotune

import (
	"time"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
	"desksearch/internal/simmodel"
	"desksearch/internal/vfs"
)

// SimObjective returns an objective that evaluates configurations on the
// discrete-event simulator, averaging reps jittered runs — the paper's
// five-runs-per-configuration methodology at simulator speed.
func SimObjective(p platform.Profile, cs corpus.Stats, opt simmodel.Options, reps int) Objective {
	if reps < 1 {
		reps = 1
	}
	return func(cfg core.Config) (float64, error) {
		var sum float64
		for r := 0; r < reps; r++ {
			o := opt
			o.Seed = opt.Seed + int64(r)
			res, err := simmodel.Simulate(p, cs, cfg, o)
			if err != nil {
				return 0, err
			}
			sum += res.Exec
		}
		return sum / float64(reps), nil
	}
}

// LiveObjective returns an objective that evaluates configurations by
// actually running the pipeline on fsys with real goroutines, averaging
// reps wall-clock runs. This is what tuning on the user's own machine
// looks like.
func LiveObjective(fsys vfs.FS, root string, reps int) Objective {
	if reps < 1 {
		reps = 1
	}
	return func(cfg core.Config) (float64, error) {
		var sum time.Duration
		for r := 0; r < reps; r++ {
			res, err := core.Run(fsys, root, cfg)
			if err != nil {
				return 0, err
			}
			sum += res.Timings.Total
		}
		return (sum / time.Duration(reps)).Seconds(), nil
	}
}

// Memoized wraps an objective with a cache keyed by implementation and
// thread tuple, so repeated searches over overlapping spaces (e.g. a hill
// climb refining an exhaustive scan) pay for each configuration once.
func Memoized(obj Objective) Objective {
	cache := map[string]float64{}
	return func(cfg core.Config) (float64, error) {
		k := key(cfg)
		if c, ok := cache[k]; ok {
			return c, nil
		}
		c, err := obj(cfg)
		if err != nil {
			return 0, err
		}
		cache[k] = c
		return c, nil
	}
}
