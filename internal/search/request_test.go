package search

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// bigFixture builds a corpus of n files over a small vocabulary as a
// single index and r replicas, with term frequencies that vary by file so
// TF ranking orders differently than coordination ranking.
func bigFixture(n, r int) (*index.FileTable, *index.Index, []*index.Index) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	files := index.NewFileTable()
	single := index.New(0)
	replicas := make([]*index.Index, r)
	for i := range replicas {
		replicas[i] = index.New(0)
	}
	for i := 0; i < n; i++ {
		var terms []string
		var counts []uint32
		for b, w := range vocab {
			if i%(b+1) == 0 {
				terms = append(terms, w)
				counts = append(counts, uint32(i%7+1))
			}
		}
		id := files.Add(fmt.Sprintf("dir%d/f%04d.txt", i%3, i), int64(i), int64(i+1))
		single.AddBlock(id, terms, counts)
		replicas[i%r].AddBlock(id, terms, counts)
	}
	return files, single, replicas
}

// TestQueryPagedMatchesSearch: every (limit, offset) page must be exactly
// the corresponding slice of the full-sort Search result, over both a
// single index and a replica fan-out.
func TestQueryPagedMatchesSearch(t *testing.T) {
	files, single, replicas := bigFixture(240, 4)
	for _, engines := range []struct {
		name string
		e    *Engine
	}{
		{"single", NewEngine(files, single)},
		{"replicas", NewEngine(files, index.Partitions(replicas)...)},
	} {
		e := engines.e
		for _, qs := range []string{"alpha", "beta OR gamma", "alpha -delta", "beta OR gamma OR epsilon"} {
			q := MustParse(qs)
			fullResp, err := e.Query(context.Background(), Request{Query: q})
			if err != nil {
				t.Fatal(err)
			}
			full := fullResp.Hits
			// The v1 wrapper returns the same ranking, minus the term
			// metadata v1 hits never carried.
			v1 := e.Search(q)
			if len(v1) != len(full) {
				t.Fatalf("%s %q: Search %d hits, Query %d", engines.name, qs, len(v1), len(full))
			}
			for i, h := range v1 {
				if h.Terms != nil {
					t.Fatalf("%s %q: v1 hit %d carries term metadata", engines.name, qs, i)
				}
				if h.File != full[i].File || h.Score != full[i].Score || h.Path != full[i].Path {
					t.Fatalf("%s %q: v1 hit %d = %+v, Query hit = %+v", engines.name, qs, i, h, full[i])
				}
			}
			for _, page := range []struct{ limit, offset int }{
				{10, 0}, {1, 0}, {7, 3}, {10, len(full) - 5}, {10, len(full) + 5}, {len(full) + 10, 0}, {0, 4},
			} {
				resp, err := e.Query(context.Background(), Request{Query: q, Limit: page.limit, Offset: page.offset})
				if err != nil {
					t.Fatalf("%s %q limit=%d offset=%d: %v", engines.name, qs, page.limit, page.offset, err)
				}
				want := full
				if page.offset > 0 {
					if page.offset >= len(want) {
						want = nil
					} else {
						want = want[page.offset:]
					}
				}
				if page.limit > 0 && len(want) > page.limit {
					want = want[:page.limit]
				}
				if len(resp.Hits) != len(want) {
					t.Fatalf("%s %q limit=%d offset=%d: got %d hits, want %d",
						engines.name, qs, page.limit, page.offset, len(resp.Hits), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(resp.Hits[i], want[i]) {
						t.Errorf("%s %q limit=%d offset=%d hit %d: got %+v, want %+v",
							engines.name, qs, page.limit, page.offset, i, resp.Hits[i], want[i])
					}
				}
				if resp.Total != len(full) {
					t.Errorf("%s %q: Total = %d, want %d", engines.name, qs, resp.Total, len(full))
				}
			}
		}
	}
}

func TestQueryPartitionStats(t *testing.T) {
	files, _, replicas := bigFixture(120, 4)
	e := NewEngine(files, index.Partitions(replicas)...)
	resp, err := e.Query(context.Background(), Request{Query: MustParse("alpha OR beta"), Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Partitions) != 4 {
		t.Fatalf("got %d partition stats, want 4", len(resp.Partitions))
	}
	sum := 0
	for i, p := range resp.Partitions {
		if p.Partition != i {
			t.Errorf("partition %d labeled %d", i, p.Partition)
		}
		sum += p.Matched
	}
	if sum != resp.Total {
		t.Errorf("partition Matched sum %d != Total %d", sum, resp.Total)
	}
}

func TestQueryTFRanking(t *testing.T) {
	files := index.NewFileTable()
	ix := index.New(0)
	// f0 mentions "cat" 5 times; f1 mentions "cat" once and "dog" once.
	a := files.Add("f0", 1, 1)
	b := files.Add("f1", 2, 2)
	ix.AddBlock(a, []string{"cat"}, []uint32{5})
	ix.AddBlock(b, []string{"cat", "dog"}, []uint32{1, 1})
	e := NewEngine(files, ix)
	q := MustParse("cat OR dog")

	coord, err := e.Query(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	// Coordination: f1 matches two distinct terms, f0 one.
	if coord.Hits[0].File != b || coord.Hits[0].Score != 2 || coord.Hits[1].Score != 1 {
		t.Errorf("coordination hits = %+v", coord.Hits)
	}

	tf, err := e.Query(context.Background(), Request{Query: q, Ranking: RankTF})
	if err != nil {
		t.Fatal(err)
	}
	// TF: f0's five cats outweigh f1's cat+dog.
	if tf.Hits[0].File != a || tf.Hits[0].Score != 5 || tf.Hits[1].Score != 2 {
		t.Errorf("tf hits = %+v", tf.Hits)
	}
}

func TestQueryMatchedTerms(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	resp, err := e.Query(context.Background(), Request{Query: MustParse("cat OR dog OR fish")})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range resp.Hits {
		if float64(len(h.Terms)) != h.Score {
			t.Errorf("file %d: %d matched terms but score %g", h.File, len(h.Terms), h.Score)
		}
	}
	// doc4 holds all three.
	for _, h := range resp.Hits {
		if h.File == 4 && !reflect.DeepEqual(h.Terms, []string{"cat", "dog", "fish"}) {
			t.Errorf("doc4 terms = %v", h.Terms)
		}
	}
	// Pure NOT queries match with no positive terms.
	not, err := e.Query(context.Background(), Request{Query: MustParse("NOT cat")})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range not.Hits {
		if h.Terms != nil || h.Score != 0 {
			t.Errorf("NOT hit carries terms: %+v", h)
		}
	}
}

func TestQueryPathPrefix(t *testing.T) {
	files, single, replicas := bigFixture(90, 3)
	for _, e := range []*Engine{NewEngine(files, single), NewEngine(files, index.Partitions(replicas)...)} {
		all, err := e.Query(context.Background(), Request{Query: MustParse("alpha")})
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := e.Query(context.Background(), Request{Query: MustParse("alpha"), PathPrefix: "dir1/"})
		if err != nil {
			t.Fatal(err)
		}
		wantTotal := 0
		for _, h := range all.Hits {
			if len(h.Path) >= 5 && h.Path[:5] == "dir1/" {
				wantTotal++
			}
		}
		if filtered.Total != wantTotal {
			t.Errorf("prefix Total = %d, want %d", filtered.Total, wantTotal)
		}
		for _, h := range filtered.Hits {
			if h.Path[:5] != "dir1/" {
				t.Errorf("hit %q escapes prefix", h.Path)
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	q := MustParse("cat")
	cases := []Request{
		{},                              // no query
		{Query: q, Limit: -1},           // negative limit
		{Query: q, Offset: -2},          // negative offset
		{Query: q, Ranking: Ranking(9)}, // unknown ranking
	}
	for i, req := range cases {
		if _, err := e.Query(context.Background(), req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestQueryCanceledUpFront(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, Request{Query: MustParse("cat")}); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// countdownCtx reports itself canceled after its Err method has been
// consulted n times — a deterministic way to trip cancellation in the
// middle of the fan-out's evaluation steps.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestQueryCanceledMidFanout(t *testing.T) {
	files, _, replicas := bigFixture(200, 4)
	e := NewEngine(files, index.Partitions(replicas)...)
	e.Search(MustParse("alpha")) // warm universes
	q := MustParse("alpha OR beta OR gamma OR delta OR epsilon")
	// Trip cancellation at a spread of depths: the query must either
	// complete in full or fail with context.Canceled — never a partial
	// result presented as complete.
	full := e.Search(q)
	for n := int64(1); n < 40; n += 3 {
		resp, err := e.Query(newCountdownCtx(n), Request{Query: q, Limit: 10})
		if err == nil {
			if len(resp.Hits) != 10 || resp.Total != len(full) {
				t.Fatalf("n=%d: completed query returned %d hits total %d, want 10/%d",
					n, len(resp.Hits), resp.Total, len(full))
			}
			continue
		}
		if err != context.Canceled {
			t.Fatalf("n=%d: err = %v, want context.Canceled", n, err)
		}
		if resp != nil {
			t.Fatalf("n=%d: canceled query returned a response", n)
		}
	}
}

func TestQueryCancelPrompt(t *testing.T) {
	files, _, replicas := bigFixture(400, 4)
	e := NewEngine(files, index.Partitions(replicas)...)
	e.Search(MustParse("alpha")) // warm universes
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx, Request{Query: MustParse("alpha OR beta OR gamma"), Limit: 10})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		// Either the query finished before the cancel landed (nil) or it
		// observed the cancellation.
		if err != nil && err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query did not return within 5s")
	}
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(20) + 1
		all := make([]scored, n)
		for i := range all {
			all[i] = scored{hit: Hit{File: postings.FileID(i), Score: float64(rng.Intn(10))}}
		}
		heap := newTopK(k)
		for _, s := range rng.Perm(n) {
			heap.consider(all[s])
		}
		got := heap.ranked()
		want := append([]scored(nil), all...)
		sortScored(want)
		if len(want) > k {
			want = want[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): topK = %v, want %v", trial, n, k, got, want)
		}
	}
	// k = 0 collects nothing.
	zero := newTopK(0)
	zero.consider(scored{hit: Hit{File: 1, Score: 1}})
	if len(zero.ranked()) != 0 {
		t.Error("topK(0) retained a hit")
	}
}

func TestMergePage(t *testing.T) {
	h := func(file postings.FileID, score float64) Hit {
		return Hit{File: file, Score: score}
	}
	parts := [][]Hit{
		{h(2, 3), h(0, 1)},
		{h(1, 3), h(4, 2)},
		{h(3, 3)},
	}
	fullWant := []Hit{h(1, 3), h(2, 3), h(3, 3), h(4, 2), h(0, 1)}
	for n := 1; n <= len(fullWant)+2; n++ {
		got := mergePage(parts, n)
		want := fullWant
		if len(want) > n {
			want = want[:n]
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mergePage(n=%d) = %v, want %v", n, got, want)
		}
	}
	if mergePage(nil, 5) != nil {
		t.Error("mergePage(nil) != nil")
	}
	// A full-page merge agrees with the unbounded pairwise merge.
	sameParts := [][]Hit{
		{h(0, 5), h(1, 4), h(2, 3), h(3, 2), h(4, 1)},
		{h(5, 3)},
	}
	if got, want := mergePage(sameParts, 100), mergeRanked(sameParts); !reflect.DeepEqual(got, want) {
		t.Errorf("mergePage full = %v, mergeRanked = %v", got, want)
	}
}
