package cache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New[string](0, 0)
	if _, ok := c.Get(1, "k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(1, "k", "v", 1)
	if v, ok := c.Get(1, "k"); !ok || v != "v" {
		t.Fatalf("Get = %q, %v; want v, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestGenerationMismatchIsMiss is the staleness guarantee: an entry stored
// at generation g is invisible to any other generation, in both
// directions.
func TestGenerationMismatchIsMiss(t *testing.T) {
	c := New[string](0, 0)
	c.Put(1, "k", "old", 1)
	if _, ok := c.Get(2, "k"); ok {
		t.Fatal("post-reload Get served a pre-reload entry")
	}
	// The reverse race: a slow query stores under the old generation after
	// the reload already advanced it.
	c.Put(1, "slow", "stale", 1)
	if _, ok := c.Get(2, "slow"); ok {
		t.Fatal("entry stored under an old generation served as current")
	}
	if v, ok := c.Get(1, "slow"); !ok || v != "stale" {
		t.Fatal("entry should still answer at its own generation")
	}
}

func TestEntryBoundEvictsLRU(t *testing.T) {
	c := New[int](2, 0)
	c.Put(1, "a", 1, 1)
	c.Put(1, "b", 2, 1)
	if _, ok := c.Get(1, "a"); !ok { // touch a, making b the cold end
		t.Fatal("a missing before eviction")
	}
	c.Put(1, "c", 3, 1)
	if _, ok := c.Get(1, "b"); ok {
		t.Fatal("LRU eviction dropped the wrong entry")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(1, k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestByteBudgetEvicts(t *testing.T) {
	c := New[int](0, 100)
	c.Put(1, "a", 1, 60)
	c.Put(1, "b", 2, 60) // over budget: a (cold) must go
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 60 {
		t.Fatalf("stats = %+v, want 1 entry / 60 bytes", st)
	}
	if _, ok := c.Get(1, "b"); !ok {
		t.Fatal("newest entry evicted instead of the cold one")
	}
	// An entry bigger than the whole budget may not wedge the cache.
	c.Put(1, "huge", 3, 500)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry left residue: %+v", st)
	}
	c.Put(1, "after", 4, 10)
	if _, ok := c.Get(1, "after"); !ok {
		t.Fatal("cache unusable after oversized entry")
	}
}

func TestPutReplacesAcrossGenerations(t *testing.T) {
	c := New[string](0, 100)
	c.Put(1, "k", "old", 40)
	c.Put(2, "k", "new", 10)
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("replacement leaked bytes: %+v", st)
	}
	if v, ok := c.Get(2, "k"); !ok || v != "new" {
		t.Fatalf("Get = %q, %v after replacement", v, ok)
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New[int](0, 0)
	var calls int
	for i := 0; i < 3; i++ {
		v, cached, err := c.Do(context.Background(), 1, "k", func() (int, int64, error) {
			calls++
			return 42, 8, nil
		})
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
		if cached != (i > 0) {
			t.Errorf("call %d: cached = %v", i, cached)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](0, 0)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), 1, "k", func() (int, int64, error) { return 0, 0, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.Do(context.Background(), 1, "k", func() (int, int64, error) { return 7, 1, nil })
	if err != nil || v != 7 || cached {
		t.Fatalf("retry after error: %d, %v, %v", v, cached, err)
	}
}

// TestDoSingleFlight hammers one key from many goroutines while the leader
// blocks, then asserts exactly one execution and that every follower got
// the leader's value.
func TestDoSingleFlight(t *testing.T) {
	c := New[int](0, 0)
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	leaderDone := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, _ := c.Do(context.Background(), 5, "k", func() (int, int64, error) {
			calls.Add(1)
			close(started)
			<-release
			return 99, 4, nil
		})
		leaderDone <- v
	}()
	<-started

	const followers = 16
	results := make(chan int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, cached, err := c.Do(context.Background(), 5, "k", func() (int, int64, error) {
				calls.Add(1)
				return -1, 0, nil
			})
			if err != nil {
				t.Error(err)
			}
			if !cached {
				t.Error("follower reported uncached")
			}
			results <- v
		}()
	}
	// Followers may still be en route to the flight map; give them no
	// synchronization help — Do must be correct regardless — but do the
	// release only after they are all launched.
	close(release)
	wg.Wait()
	close(results)
	for v := range results {
		if v != 99 {
			t.Fatalf("follower got %d, want 99", v)
		}
	}
	if <-leaderDone != 99 {
		t.Fatal("leader value wrong")
	}
	if n := calls.Load(); n != 1 {
		// Followers that arrived after the leader finished legitimately
		// hit the cache; ones racing the flight may never double-execute.
		t.Fatalf("fn ran %d times, want 1", n)
	}
}

// TestDoDifferentGenerationsDoNotShareFlights pins the reload race: a
// flight started at generation g must not hand its result to a caller at
// g+1.
func TestDoDifferentGenerationsDoNotShareFlights(t *testing.T) {
	c := New[string](0, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do(context.Background(), 1, "k", func() (string, int64, error) {
			close(started)
			<-release
			return "old", 3, nil
		})
	}()
	<-started
	done := make(chan string)
	go func() {
		v, cached, err := c.Do(context.Background(), 2, "k", func() (string, int64, error) { return "new", 3, nil })
		if err != nil || cached {
			t.Errorf("gen-2 Do: %v cached=%v", err, cached)
		}
		done <- v
	}()
	if v := <-done; v != "new" {
		t.Fatalf("generation 2 received %q from a generation-1 flight", v)
	}
	close(release)
}

// TestDoWaiterCancellationLeavesFlightRunning pins the decoupling: a
// caller that gives up (cancel, disconnect, short deadline) receives its
// own ctx.Err() immediately, while the flight runs to completion, caches
// its result, and serves the other waiters.
func TestDoWaiterCancellationLeavesFlightRunning(t *testing.T) {
	c := New[int](0, 0)
	release := make(chan struct{})
	started := make(chan struct{})

	patient := make(chan int, 1)
	go func() {
		v, _, err := c.Do(context.Background(), 1, "k", func() (int, int64, error) {
			close(started)
			<-release
			return 7, 1, nil
		})
		if err != nil {
			t.Error(err)
		}
		patient <- v
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, 1, "k", func() (int, int64, error) { return -1, 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}

	close(release)
	if v := <-patient; v != 7 {
		t.Fatalf("patient waiter got %d", v)
	}
	// The abandoned flight must still have populated the cache.
	if v, ok := c.Get(1, "k"); !ok || v != 7 {
		t.Fatalf("flight result not cached after a waiter bailed: %d, %v", v, ok)
	}
}

// TestDoPanicDoesNotWedgeKey: a panicking computation must surface as an
// error to every waiter and leave the key retryable — not a permanently
// registered dead flight that hangs all future identical queries.
func TestDoPanicDoesNotWedgeKey(t *testing.T) {
	c := New[int](0, 0)
	_, _, err := c.Do(context.Background(), 1, "k", func() (int, int64, error) {
		panic("corrupted index")
	})
	if err == nil || !strings.Contains(err.Error(), "corrupted index") {
		t.Fatalf("err = %v, want the recovered panic", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.Do(context.Background(), 1, "k", func() (int, int64, error) { return 3, 1, nil })
		if err != nil || v != 3 {
			t.Errorf("retry after panic: %d, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after a panicking flight")
	}
}

func TestPrune(t *testing.T) {
	c := New[int](0, 0)
	c.Put(1, "a", 1, 10)
	c.Put(1, "b", 2, 10)
	c.Put(2, "c", 3, 10)
	c.Prune(2)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("after prune: %+v", st)
	}
	if _, ok := c.Get(2, "c"); !ok {
		t.Fatal("current-generation entry pruned")
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New[int](64, 1<<16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				gen := uint64(i % 3)
				key := fmt.Sprintf("k%d", (i+w)%97)
				switch i % 4 {
				case 0:
					c.Get(gen, key)
				case 1:
					c.Put(gen, key, i, int64(i%50))
				case 2:
					c.Do(context.Background(), gen, key, func() (int, int64, error) { return i, 8, nil })
				default:
					c.Prune(gen)
				}
			}
		}(w)
	}
	wg.Wait()
	c.Stats() // must not race or panic
}
