package delta

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/search"
)

// TestApplyDuringConcurrentQuery exercises the exact interleaving the
// daemon's -watch mode lives on: full Diff → Extract → Commit cycles
// applied through the engine's maintenance lock while queries hammer the
// same partitions. Under -race it proves the commit phase never lets a
// query observe a half-applied changeset or a posting list being mutated
// mid-read; functionally it checks that after the final apply the index
// answers only from the final tree.
func TestApplyDuringConcurrentQuery(t *testing.T) {
	fs := seedFS(t)
	res := build(t, fs, 2)
	engine := search.NewEngine(res.Files, index.Partitions(res.Indexes())...)
	target := Target{Files: res.Files, Partitions: res.Indexes()}
	if set := res.Shards; set != nil {
		target.OnDirty = set.MarkDirty
	}

	queries := []*search.Query{
		search.MustParse("alpha"),
		search.MustParse("alpha OR beta"),
		search.MustParse("-gamma"),
		search.MustParse("churn -delta"),
		search.MustParse("(alpha OR churn) -epsilon"),
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := search.Request{Query: queries[(i+w)%len(queries)], Limit: 3}
				if _, err := engine.Query(ctx, req); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// The updater: churn one file through adds, modifies, and a delete,
	// committing each changeset under the maintenance lock — the
	// public-API path (Catalog.Apply) minus the facade.
	apply := func() {
		t.Helper()
		cs, err := Diff(fs, ".", res.Files)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Empty() {
			return
		}
		plan := Extract(fs, cs, extract.Options{}, 2)
		if len(plan.Skipped) != 0 {
			t.Fatalf("extraction skipped files: %+v", plan.Skipped)
		}
		engine.Maintain(func() { plan.Commit(target) })
	}

	for i := 0; i < 50; i++ {
		content := fmt.Sprintf("churn alpha round%d", i)
		if i%10 == 9 {
			if err := fs.Remove("docs/churn.txt"); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := fs.WriteFile("docs/churn.txt", []byte(content)); err != nil {
				t.Fatal(err)
			}
		}
		apply()
	}
	close(stop)
	wg.Wait()

	// 50 rounds end on i=49, a delete, so churn.txt must be gone: its
	// last content (round48) and its churn marker must both have left the
	// index, while the untouched seed files still answer.
	if hits := engine.Search(search.MustParse("round48")); len(hits) != 0 {
		t.Fatalf("stale content still indexed: %+v", hits)
	}
	if hits := engine.Search(search.MustParse("churn")); len(hits) != 0 {
		t.Fatalf("deleted file still indexed: %+v", hits)
	}
	if hits := engine.Search(search.MustParse("alpha")); len(hits) != 2 {
		t.Fatalf("seed files damaged by churn: alpha hits = %+v", hits)
	}
	if engine.Generation() == 0 {
		t.Error("maintenance commits did not advance the engine generation")
	}
}
