package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAfterOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3, func() { order = append(order, 3) })
	e.After(1, func() { order = append(order, 1) })
	e.After(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Errorf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		e.After(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-1, func() { ran = true })
	if end := e.Run(); end != 0 || !ran {
		t.Errorf("end=%v ran=%v", end, ran)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []float64
	e.After(1, func() {
		at = append(at, e.Now())
		e.After(2, func() {
			at = append(at, e.Now())
		})
	})
	e.Run()
	if len(at) != 2 || at[0] != 1 || at[1] != 3 {
		t.Errorf("at = %v", at)
	}
	if e.Steps() != 2 {
		t.Errorf("Steps = %d", e.Steps())
	}
}

func TestClockMonotonic(t *testing.T) {
	if err := quick.Check(func(delays []float64, seed int64) bool {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		last := -1.0
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth < 3 && rng.Intn(2) == 0 {
				e.After(rng.Float64(), func() { schedule(depth + 1) })
			}
		}
		for _, d := range delays {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			e.After(math.Abs(math.Mod(d, 100)), func() { schedule(0) })
		}
		e.Run()
		return ok
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestResourceMServerMakespan checks the m-server law: N identical jobs of
// duration d on capacity c finish at ceil(N/c)*d.
func TestResourceMServerMakespan(t *testing.T) {
	for _, tc := range []struct {
		n, c int
		d    float64
		want float64
	}{
		{10, 1, 2, 20},
		{10, 2, 2, 10},
		{10, 3, 2, 8}, // ceil(10/3)=4 waves × 2
		{1, 8, 5, 5},
		{7, 7, 1, 1},
	} {
		e := NewEngine()
		r := NewResource(e, tc.c)
		for i := 0; i < tc.n; i++ {
			r.Use(tc.d, func() {})
		}
		if got := e.Run(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("n=%d c=%d d=%v: makespan %v, want %v", tc.n, tc.c, tc.d, got, tc.want)
		}
	}
}

func TestResourceCapacityNeverExceeded(t *testing.T) {
	if err := quick.Check(func(jobs []uint8, capRaw uint8, seed int64) bool {
		capacity := int(capRaw%6) + 1
		e := NewEngine()
		r := NewResource(e, capacity)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		for range jobs {
			delay := rng.Float64() * 3
			dur := rng.Float64() * 2
			e.After(delay, func() {
				r.Use(dur, func() {
					if r.InUse() > capacity {
						ok = false
					}
				})
			})
		}
		e.Run()
		return ok && r.InUse() == 0 && r.PeakUse() <= capacity
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	r.Use(1, func() {}) // occupies until t=1
	for i := 1; i <= 5; i++ {
		r.Acquire(func() {
			order = append(order, i)
			e.After(0.5, r.Release)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("waiters served out of order: %v", order)
		}
	}
}

func TestResourceBusyAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	r.Use(3, func() {})
	r.Use(5, func() {})
	e.Run()
	if got := r.BusySeconds(); math.Abs(got-8) > 1e-9 {
		t.Errorf("BusySeconds = %v, want 8", got)
	}
	if r.PeakUse() != 2 {
		t.Errorf("PeakUse = %d", r.PeakUse())
	}
}

func TestResourceReleasePanicsWhenIdle(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceMinimumCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 0)
	if r.Capacity() != 1 {
		t.Errorf("capacity clamped to %d", r.Capacity())
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	e := NewEngine()
	slots := NewSemaphore(e, 2) // buffer capacity 2
	items := NewSemaphore(e, 0)
	const n = 20
	produced, consumed := 0, 0

	var produce func()
	produce = func() {
		if produced == n {
			return
		}
		slots.P(func() {
			produced++
			items.V()
			e.After(0.1, produce)
		})
	}
	var consume func()
	consume = func() {
		if consumed == n {
			return
		}
		items.P(func() {
			consumed++
			slots.V()
			e.After(0.3, consume)
		})
	}
	produce()
	consume()
	e.Run()
	if produced != n || consumed != n {
		t.Errorf("produced=%d consumed=%d", produced, consumed)
	}
	// Buffer never held more than its two slots.
	if slots.Count() != 2 || items.Count() != 0 {
		t.Errorf("final sems: slots=%d items=%d", slots.Count(), items.Count())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 0)
	var order []int
	for i := 0; i < 5; i++ {
		s.P(func() { order = append(order, i) })
	}
	if s.Waiting() != 5 {
		t.Fatalf("Waiting = %d", s.Waiting())
	}
	for i := 0; i < 5; i++ {
		s.V()
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSemaphoreNegativeInitialClamped(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, -5)
	if s.Count() != 0 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestWaitGroupBarrier(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, 3)
	fired := -1.0
	wg.Wait(func() { fired = e.Now() })
	e.After(1, wg.Done)
	e.After(5, wg.Done)
	e.After(3, wg.Done)
	e.Run()
	if fired != 5 {
		t.Errorf("barrier fired at %v, want 5", fired)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, 0)
	fired := false
	wg.Wait(func() { fired = true })
	e.Run()
	if !fired {
		t.Error("Wait on zero group never fired")
	}
}

func TestWaitGroupDoneBelowZeroPanics(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, 0)
	defer func() {
		if recover() == nil {
			t.Error("Done below zero did not panic")
		}
	}()
	wg.Done()
}

// TestDeterminism runs a randomized mixed workload twice with the same seed
// and requires identical event traces.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []float64 {
		e := NewEngine()
		cores := NewResource(e, 3)
		disk := NewResource(e, 1)
		lock := NewResource(e, 1)
		rng := rand.New(rand.NewSource(seed))
		var log []float64
		for w := 0; w < 5; w++ {
			n := 10
			var step func()
			step = func() {
				if n == 0 {
					return
				}
				n--
				dd := rng.Float64() * 0.01
				cd := rng.Float64() * 0.02
				disk.Use(dd, func() {
					cores.Use(cd, func() {
						lock.Use(0.001, func() {
							log = append(log, e.Now())
							step()
						})
					})
				})
			}
			step()
		}
		e.Run()
		return log
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// TestMakespanLowerBounds: for any job set on a c-server, the makespan is
// at least max(total/c, longest job).
func TestMakespanLowerBounds(t *testing.T) {
	if err := quick.Check(func(durRaw []uint16, capRaw uint8) bool {
		if len(durRaw) == 0 {
			return true
		}
		capacity := int(capRaw%8) + 1
		e := NewEngine()
		r := NewResource(e, capacity)
		var total, longest float64
		for _, d := range durRaw {
			dur := float64(d) / 1000
			total += dur
			if dur > longest {
				longest = dur
			}
			r.Use(dur, func() {})
		}
		makespan := e.Run()
		lower := math.Max(total/float64(capacity), longest)
		return makespan >= lower-1e-9 && makespan <= total+1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	cores := NewResource(e, 8)
	n := 0
	var step func()
	step = func() {
		if n >= b.N {
			return
		}
		n++
		cores.Use(0.001, step)
	}
	for i := 0; i < 16; i++ {
		step()
	}
	e.Run()
}
