// Package postings implements the posting lists of the inverted index:
// for each term, the list of files that contain it, with an optional
// per-posting term frequency (how many times the term occurs in the file).
//
// The paper's design inserts one term block per file, with the guarantee
// that each file is scanned exactly once; a posting list therefore never
// sees the same file twice during generation, and duplicate checking — the
// linear search the paper's analysis eliminates — is only needed when lists
// from different runs are merged. Lists keep file IDs sorted so that merge,
// intersection, and union run in linear time.
//
// Term frequencies are stored lazily: a list whose postings all have
// frequency 1 (boolean-only corpora, NOT universes, intermediate query
// results) carries no count storage at all, so the frequency feature costs
// nothing until a build actually records real counts.
package postings

import "sort"

// FileID identifies a file in the indexed corpus. IDs are assigned by
// Stage 1 (filename generation) in traversal order.
type FileID uint32

// List is a posting list: a sorted set of FileIDs, each with a term
// frequency.
//
// The zero value is an empty list. Lists built exclusively through Add with
// the generator's one-block-per-file discipline stay sorted for free when
// IDs arrive in order; Add handles out-of-order arrival (as happens with
// parallel extractors) by insertion.
type List struct {
	ids []FileID
	// counts holds the per-posting term frequency, parallel to ids. nil
	// means every frequency is 1 — the representation is normalized so the
	// common boolean case allocates nothing. counts is never populated
	// while positions is set: a positional posting's frequency is the
	// length of its position list.
	counts []uint32
	// positions, when non-nil, is parallel to ids: positions[i] holds the
	// ascending token positions (emission ordinals of the build's
	// tokenizer) at which the term occurs in file ids[i]. A list is either
	// uniformly positional (every insertion went through AddPositions /
	// FromSortedIDPositions) or not positional at all; the two insertion
	// disciplines must not be mixed within one list.
	positions [][]uint32
}

// FromIDs builds a list from ids, sorting and deduplicating as needed.
// Every posting gets frequency 1.
func FromIDs(ids []FileID) *List {
	l := &List{ids: append([]FileID(nil), ids...)}
	sort.Slice(l.ids, func(i, j int) bool { return l.ids[i] < l.ids[j] })
	l.dedupSorted()
	return l
}

// FromSortedIDs builds a list from ids, which must already be strictly
// ascending (the invariant of every posting list's own IDs). It copies but
// skips the sort and dedup FromIDs pays. Every posting gets frequency 1.
func FromSortedIDs(ids []FileID) *List {
	return &List{ids: append([]FileID(nil), ids...)}
}

// FromSortedIDCounts builds a list from strictly ascending ids and their
// parallel frequencies. counts may be nil (all frequencies 1) or must have
// len(counts) == len(ids); a zero frequency is recorded as 1, matching
// AddN (Encode biases frequencies by -1, so a zero must never be stored).
// Both slices are copied.
func FromSortedIDCounts(ids []FileID, counts []uint32) *List {
	l := &List{ids: append([]FileID(nil), ids...)}
	if counts != nil {
		l.counts = append([]uint32(nil), counts...)
		for i, c := range l.counts {
			if c == 0 {
				l.counts[i] = 1
			}
		}
		l.normalize()
	}
	return l
}

func (l *List) dedupSorted() {
	out := l.ids[:0]
	for i, id := range l.ids {
		if i == 0 || id != l.ids[i-1] {
			out = append(out, id)
		}
	}
	l.ids = out
}

// FromSortedIDPositions builds a positional list from strictly ascending
// ids and their parallel position lists: positions[i] holds the ascending
// token positions of the term in file ids[i] and must be non-empty. The
// outer slices are copied; the inner position slices are shared and must
// be treated as read-only by the caller afterwards (no code path mutates a
// stored position slice in place).
func FromSortedIDPositions(ids []FileID, positions [][]uint32) *List {
	return &List{
		ids:       append([]FileID(nil), ids...),
		positions: append([][]uint32(nil), positions...),
	}
}

// normalize drops an all-ones counts slice so equal lists share one
// representation regardless of how they were built.
func (l *List) normalize() {
	for _, c := range l.counts {
		if c != 1 {
			return
		}
	}
	l.counts = nil
}

// HasPositions reports whether the list carries per-posting positions —
// the capability probe phrase evaluation uses before attempting a
// positional intersection.
func (l *List) HasPositions() bool { return l.positions != nil }

// PositionsAt returns the ascending token positions of the posting at
// position i, or nil for a non-positional list. The returned slice is the
// list's backing storage; callers must not modify it.
func (l *List) PositionsAt(i int) []uint32 {
	if l.positions == nil {
		return nil
	}
	return l.positions[i]
}

// demotePositions converts a positional list to plain count storage: the
// per-posting frequencies survive as explicit counts, the positions are
// dropped. It is the meeting point when a positional and a non-positional
// list flow into one operator — positions cannot be invented for the
// non-positional side, so the result keeps only what both sides have.
func (l *List) demotePositions() {
	if l.positions == nil {
		return
	}
	l.counts = make([]uint32, len(l.positions))
	for i, p := range l.positions {
		if n := len(p); n > 0 {
			l.counts[i] = uint32(n)
		} else {
			l.counts[i] = 1
		}
	}
	l.positions = nil
	l.normalize()
}

// materializePositions switches the list to explicit position storage.
// Pre-existing postings (which should not exist under the uniform-insertion
// discipline) get nil position lists.
func (l *List) materializePositions() {
	if l.positions == nil {
		l.positions = make([][]uint32, len(l.ids))
	}
}

// AddPositions inserts id with the given ascending, non-empty position
// list, keeping the list sorted and duplicate-free; it is the positional
// counterpart of AddN (the posting's frequency is len(pos)). The list
// takes ownership of pos. Re-adding a present id merges the position sets.
// The common fast path — id greater than every present posting — is O(1)
// amortized, matching the generator's one-block-per-file discipline.
func (l *List) AddPositions(id FileID, pos []uint32) {
	if len(pos) == 0 {
		return
	}
	if l.positions == nil && len(l.ids) > 0 {
		// The list already holds position-free postings (a positional
		// insert into a list built without positions). Positions cannot be
		// retrofitted onto the existing postings, so record the frequency
		// and stay non-positional rather than desync the parallel slices —
		// the mirror of AddN's demotion rule.
		l.AddN(id, uint32(len(pos)))
		return
	}
	// The codec delta-codes position runs with strictly positive gaps, so
	// a non-ascending or duplicated run would be unencodable; sanitize the
	// rare violation instead of persisting corruption. The check is one
	// branch per position on the (always-ascending) hot path.
	for i := 1; i < len(pos); i++ {
		if pos[i] <= pos[i-1] {
			pos = sortedDedupPositions(pos)
			break
		}
	}
	l.materializePositions()
	sz := len(l.ids)
	if sz == 0 || id > l.ids[sz-1] {
		l.ids = append(l.ids, id)
		l.positions = append(l.positions, pos)
		return
	}
	i := sort.Search(sz, func(i int) bool { return l.ids[i] >= id })
	if i < sz && l.ids[i] == id {
		l.positions[i] = unionPositions(l.positions[i], pos)
		return
	}
	l.ids = append(l.ids, 0)
	copy(l.ids[i+1:], l.ids[i:])
	l.ids[i] = id
	l.positions = append(l.positions, nil)
	copy(l.positions[i+1:], l.positions[i:])
	l.positions[i] = pos
}

// sortedDedupPositions returns pos sorted ascending with duplicates
// removed, mutating pos in place.
func sortedDedupPositions(pos []uint32) []uint32 {
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	out := pos[:1]
	for _, p := range pos[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// unionPositions merges two ascending position lists into a fresh ascending
// duplicate-free slice. Neither input is mutated.
func unionPositions(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// materializeCounts switches the list to explicit count storage.
func (l *List) materializeCounts() {
	if l.counts != nil {
		return
	}
	l.counts = make([]uint32, len(l.ids))
	for i := range l.counts {
		l.counts[i] = 1
	}
}

// Len returns the number of postings.
func (l *List) Len() int { return len(l.ids) }

// IDs returns the postings in ascending order. The returned slice is the
// list's backing storage; callers must not modify it.
func (l *List) IDs() []FileID { return l.ids }

// CountAt returns the term frequency of the posting at position i. On a
// positional list the frequency is derived — one occurrence per recorded
// position — so counts and positions can never disagree.
func (l *List) CountAt(i int) uint32 {
	if l.positions != nil {
		if n := len(l.positions[i]); n > 0 {
			return uint32(n)
		}
		return 1
	}
	if l.counts == nil {
		return 1
	}
	return l.counts[i]
}

// CountOf returns the term frequency recorded for id, or 0 if id is not in
// the list.
func (l *List) CountOf(id FileID) uint32 {
	i := sort.Search(len(l.ids), func(i int) bool { return l.ids[i] >= id })
	if i >= len(l.ids) || l.ids[i] != id {
		return 0
	}
	return l.CountAt(i)
}

// Contains reports whether id is in the list.
func (l *List) Contains(id FileID) bool {
	i := sort.Search(len(l.ids), func(i int) bool { return l.ids[i] >= id })
	return i < len(l.ids) && l.ids[i] == id
}

// Add inserts id with frequency 1, keeping the list sorted and
// duplicate-free. On a boolean (implicit-frequency) list, re-adding a
// present id is a no-op — the set semantics the immediate-insertion
// ablation path relies on; on a list with materialized frequencies it
// records one more occurrence, like AddN(id, 1). The common fast path —
// id greater than every present posting — is O(1) amortized.
func (l *List) Add(id FileID) { l.AddN(id, 1) }

// AddN inserts id with frequency n (n == 0 is recorded as 1). Re-adding a
// present id sums frequencies, matching Merge's discipline — except the
// pure boolean case (n == 1 into a list with implicit counts), which
// keeps Add's set semantics.
func (l *List) AddN(id FileID, n uint32) {
	if n == 0 {
		n = 1
	}
	// A position-free insertion into a positional list cannot keep the
	// positions truthful; demote to plain counts rather than desync the
	// parallel slices. Uniform build paths never hit this.
	l.demotePositions()
	sz := len(l.ids)
	if sz == 0 || id > l.ids[sz-1] {
		l.ids = append(l.ids, id)
		l.appendCount(n)
		return
	}
	i := sort.Search(sz, func(i int) bool { return l.ids[i] >= id })
	if i < sz && l.ids[i] == id {
		if n > 1 || l.counts != nil {
			l.materializeCounts()
			l.counts[i] += n
		}
		return
	}
	l.ids = append(l.ids, 0)
	copy(l.ids[i+1:], l.ids[i:])
	l.ids[i] = id
	if n > 1 {
		// ids already grew, so materialization covers the inserted slot too;
		// the shift below then moves all-ones over all-ones harmlessly.
		l.materializeCounts()
	}
	if l.counts != nil {
		if len(l.counts) < len(l.ids) {
			l.counts = append(l.counts, 0)
		}
		copy(l.counts[i+1:], l.counts[i:])
		l.counts[i] = n
	}
}

// appendCount records the frequency of a posting just appended to ids.
func (l *List) appendCount(n uint32) {
	if n == 1 && l.counts == nil {
		return
	}
	if l.counts == nil {
		// The new id is already in ids; materialize counts for the others.
		l.counts = make([]uint32, len(l.ids)-1, len(l.ids))
		for i := range l.counts {
			l.counts[i] = 1
		}
	}
	l.counts = append(l.counts, n)
}

// Merge destructively merges other into l (set union) and returns l; other
// is only read. When either list carries explicit frequencies, frequencies
// of postings present in both sum; when both are boolean (implicit
// all-ones) lists the overlap keeps frequency 1 — set semantics, so
// query-time unions of match sets never materialize count storage. Callers
// merging counted data that may overlap (none of the document-disjoint
// partition paths do) must not rely on the boolean exception.
//
// Positions survive only when both lists carry them (postings present in
// both merge their position sets); a merge of a positional and a
// non-positional list demotes to explicit counts, since positions cannot
// be invented for the non-positional side. The two-pointer merge is linear
// in the combined length.
func (l *List) Merge(other *List) *List {
	if other == nil || len(other.ids) == 0 {
		return l
	}
	if len(l.ids) == 0 {
		l.ids = append(l.ids, other.ids...)
		l.counts = nil
		l.positions = nil
		if other.positions != nil {
			l.positions = append([][]uint32(nil), other.positions...)
		} else if other.counts != nil {
			l.counts = append([]uint32(nil), other.counts...)
		}
		return l
	}
	withPos := l.positions != nil && other.positions != nil
	if !withPos {
		// Other's positional frequencies still flow through CountAt below;
		// only l's own storage needs the demotion.
		l.demotePositions()
	}
	withCounts := !withPos && (l.counts != nil || other.counts != nil || other.positions != nil)
	// Fast path: disjoint ranges, the usual case when replicas own
	// round-robin slices of the corpus.
	if l.ids[len(l.ids)-1] < other.ids[0] {
		if withPos {
			l.positions = append(l.positions, other.positions...)
		} else if withCounts {
			l.materializeCounts()
			for i := range other.ids {
				l.counts = append(l.counts, other.CountAt(i))
			}
		}
		l.ids = append(l.ids, other.ids...)
		return l
	}
	if other.ids[len(other.ids)-1] < l.ids[0] {
		merged := make([]FileID, 0, len(l.ids)+len(other.ids))
		merged = append(merged, other.ids...)
		merged = append(merged, l.ids...)
		if withPos {
			positions := make([][]uint32, 0, len(merged))
			positions = append(positions, other.positions...)
			positions = append(positions, l.positions...)
			l.positions = positions
		} else if withCounts {
			counts := make([]uint32, 0, len(merged))
			for i := range other.ids {
				counts = append(counts, other.CountAt(i))
			}
			for i := range l.ids {
				counts = append(counts, l.CountAt(i))
			}
			l.counts = counts
		}
		l.ids = merged
		return l
	}
	merged := make([]FileID, 0, len(l.ids)+len(other.ids))
	var counts []uint32
	if withCounts {
		counts = make([]uint32, 0, len(l.ids)+len(other.ids))
	}
	var positions [][]uint32
	if withPos {
		positions = make([][]uint32, 0, len(l.ids)+len(other.ids))
	}
	i, j := 0, 0
	for i < len(l.ids) && j < len(other.ids) {
		a, b := l.ids[i], other.ids[j]
		switch {
		case a < b:
			merged = append(merged, a)
			if withCounts {
				counts = append(counts, l.CountAt(i))
			}
			if withPos {
				positions = append(positions, l.positions[i])
			}
			i++
		case b < a:
			merged = append(merged, b)
			if withCounts {
				counts = append(counts, other.CountAt(j))
			}
			if withPos {
				positions = append(positions, other.positions[j])
			}
			j++
		default:
			merged = append(merged, a)
			if withCounts {
				counts = append(counts, l.CountAt(i)+other.CountAt(j))
			}
			if withPos {
				positions = append(positions, unionPositions(l.positions[i], other.positions[j]))
			}
			i++
			j++
		}
	}
	for ; i < len(l.ids); i++ {
		merged = append(merged, l.ids[i])
		if withCounts {
			counts = append(counts, l.CountAt(i))
		}
		if withPos {
			positions = append(positions, l.positions[i])
		}
	}
	for ; j < len(other.ids); j++ {
		merged = append(merged, other.ids[j])
		if withCounts {
			counts = append(counts, other.CountAt(j))
		}
		if withPos {
			positions = append(positions, other.positions[j])
		}
	}
	l.ids = merged
	l.counts = counts
	if withPos {
		l.positions = positions
	}
	return l
}

// WithoutCounts returns a frequency- and position-free view of the list:
// same IDs, every frequency 1. The view shares the ID storage and must be
// treated as read-only; lists already in the implicit all-ones form return
// themselves. Set-algebra pipelines (query match sets) use it so
// frequencies and positions are not copied through operators that never
// read them.
func (l *List) WithoutCounts() *List {
	if l.counts == nil && l.positions == nil {
		return l
	}
	return &List{ids: l.ids}
}

// Clone returns an independent copy of the list.
func (l *List) Clone() *List {
	out := &List{ids: append([]FileID(nil), l.ids...)}
	if l.counts != nil {
		out.counts = append([]uint32(nil), l.counts...)
	}
	if l.positions != nil {
		out.positions = make([][]uint32, len(l.positions))
		for i, p := range l.positions {
			out.positions[i] = append([]uint32(nil), p...)
		}
	}
	return out
}

// Equal reports whether two lists hold the same postings with the same
// frequencies (an all-ones counts slice equals no counts slice) and — when
// either list is positional — the same positions (a positional list never
// equals a non-positional one).
func (l *List) Equal(other *List) bool {
	if l.Len() != other.Len() {
		return false
	}
	if (l.positions != nil) != (other.positions != nil) {
		return false
	}
	for i, id := range l.ids {
		if other.ids[i] != id || l.CountAt(i) != other.CountAt(i) {
			return false
		}
		if l.positions != nil {
			a, b := l.positions[i], other.positions[i]
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
	}
	return true
}

// Intersect returns the postings common to a and b (boolean AND). The
// result carries no frequencies: an intersection is a match set, and
// ranking reads frequencies from the term lists themselves.
func Intersect(a, b *List) *List {
	small, large := a, b
	if small.Len() > large.Len() {
		small, large = large, small
	}
	out := &List{}
	// Galloping search pays off when sizes are skewed, the common case for
	// query terms of very different frequency.
	if large.Len() > 8*small.Len() {
		lo := 0
		for _, id := range small.ids {
			i := lo + sort.Search(len(large.ids)-lo, func(i int) bool { return large.ids[lo+i] >= id })
			if i < len(large.ids) && large.ids[i] == id {
				out.ids = append(out.ids, id)
			}
			lo = i
			if lo >= len(large.ids) {
				break
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(small.ids) && j < len(large.ids) {
		a, b := small.ids[i], large.ids[j]
		switch {
		case a < b:
			i++
		case b < a:
			j++
		default:
			out.ids = append(out.ids, a)
			i++
			j++
		}
	}
	return out
}

// IntersectEach calls f for every posting common to a and b, in ascending
// ID order, with b's frequency for it — the ranking walk: a is a match
// set, b a term's posting list whose frequencies score the match.
func IntersectEach(a, b *List, f func(id FileID, bCount uint32)) {
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		x, y := a.ids[i], b.ids[j]
		switch {
		case x < y:
			i++
		case y < x:
			j++
		default:
			f(x, b.CountAt(j))
			i++
			j++
		}
	}
}

// Union returns all postings in a or b (boolean OR), with Merge's
// frequency discipline on postings present in both.
func Union(a, b *List) *List {
	return a.Clone().Merge(b)
}

// Difference returns the postings in a but not in b (boolean AND NOT),
// keeping a's frequencies — and, for a positional a, its positions — for
// the survivors. Position slices are shared with a, not copied; the
// incremental-update removal scan (index.RemoveFiles) relies on this to
// keep positional postings intact without re-allocating them.
func Difference(a, b *List) *List {
	out := &List{ids: make([]FileID, 0, a.Len())}
	if a.positions != nil {
		out.positions = make([][]uint32, 0, a.Len())
	} else if a.counts != nil {
		out.counts = make([]uint32, 0, a.Len())
	}
	i, j := 0, 0
	for i < len(a.ids) {
		for j < len(b.ids) && b.ids[j] < a.ids[i] {
			j++
		}
		if j >= len(b.ids) || b.ids[j] != a.ids[i] {
			out.ids = append(out.ids, a.ids[i])
			if out.positions != nil {
				out.positions = append(out.positions, a.positions[i])
			} else if out.counts != nil {
				out.counts = append(out.counts, a.counts[i])
			}
		}
		i++
	}
	if out.counts != nil {
		out.normalize()
	}
	if len(out.ids) == 0 {
		// Keep the empty list canonical: no payload storage, regardless of
		// what a carried.
		out.counts, out.positions = nil, nil
	}
	return out
}
