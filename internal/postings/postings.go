// Package postings implements the posting lists of the inverted index:
// for each term, the list of files that contain it, with an optional
// per-posting term frequency (how many times the term occurs in the file).
//
// The paper's design inserts one term block per file, with the guarantee
// that each file is scanned exactly once; a posting list therefore never
// sees the same file twice during generation, and duplicate checking — the
// linear search the paper's analysis eliminates — is only needed when lists
// from different runs are merged. Lists keep file IDs sorted so that merge,
// intersection, and union run in linear time.
//
// Term frequencies are stored lazily: a list whose postings all have
// frequency 1 (boolean-only corpora, NOT universes, intermediate query
// results) carries no count storage at all, so the frequency feature costs
// nothing until a build actually records real counts.
package postings

import "sort"

// FileID identifies a file in the indexed corpus. IDs are assigned by
// Stage 1 (filename generation) in traversal order.
type FileID uint32

// List is a posting list: a sorted set of FileIDs, each with a term
// frequency.
//
// The zero value is an empty list. Lists built exclusively through Add with
// the generator's one-block-per-file discipline stay sorted for free when
// IDs arrive in order; Add handles out-of-order arrival (as happens with
// parallel extractors) by insertion.
type List struct {
	ids []FileID
	// counts holds the per-posting term frequency, parallel to ids. nil
	// means every frequency is 1 — the representation is normalized so the
	// common boolean case allocates nothing.
	counts []uint32
}

// FromIDs builds a list from ids, sorting and deduplicating as needed.
// Every posting gets frequency 1.
func FromIDs(ids []FileID) *List {
	l := &List{ids: append([]FileID(nil), ids...)}
	sort.Slice(l.ids, func(i, j int) bool { return l.ids[i] < l.ids[j] })
	l.dedupSorted()
	return l
}

// FromSortedIDs builds a list from ids, which must already be strictly
// ascending (the invariant of every posting list's own IDs). It copies but
// skips the sort and dedup FromIDs pays. Every posting gets frequency 1.
func FromSortedIDs(ids []FileID) *List {
	return &List{ids: append([]FileID(nil), ids...)}
}

// FromSortedIDCounts builds a list from strictly ascending ids and their
// parallel frequencies. counts may be nil (all frequencies 1) or must have
// len(counts) == len(ids); a zero frequency is recorded as 1, matching
// AddN (Encode biases frequencies by -1, so a zero must never be stored).
// Both slices are copied.
func FromSortedIDCounts(ids []FileID, counts []uint32) *List {
	l := &List{ids: append([]FileID(nil), ids...)}
	if counts != nil {
		l.counts = append([]uint32(nil), counts...)
		for i, c := range l.counts {
			if c == 0 {
				l.counts[i] = 1
			}
		}
		l.normalize()
	}
	return l
}

func (l *List) dedupSorted() {
	out := l.ids[:0]
	for i, id := range l.ids {
		if i == 0 || id != l.ids[i-1] {
			out = append(out, id)
		}
	}
	l.ids = out
}

// normalize drops an all-ones counts slice so equal lists share one
// representation regardless of how they were built.
func (l *List) normalize() {
	for _, c := range l.counts {
		if c != 1 {
			return
		}
	}
	l.counts = nil
}

// materializeCounts switches the list to explicit count storage.
func (l *List) materializeCounts() {
	if l.counts != nil {
		return
	}
	l.counts = make([]uint32, len(l.ids))
	for i := range l.counts {
		l.counts[i] = 1
	}
}

// Len returns the number of postings.
func (l *List) Len() int { return len(l.ids) }

// IDs returns the postings in ascending order. The returned slice is the
// list's backing storage; callers must not modify it.
func (l *List) IDs() []FileID { return l.ids }

// CountAt returns the term frequency of the posting at position i.
func (l *List) CountAt(i int) uint32 {
	if l.counts == nil {
		return 1
	}
	return l.counts[i]
}

// CountOf returns the term frequency recorded for id, or 0 if id is not in
// the list.
func (l *List) CountOf(id FileID) uint32 {
	i := sort.Search(len(l.ids), func(i int) bool { return l.ids[i] >= id })
	if i >= len(l.ids) || l.ids[i] != id {
		return 0
	}
	return l.CountAt(i)
}

// Contains reports whether id is in the list.
func (l *List) Contains(id FileID) bool {
	i := sort.Search(len(l.ids), func(i int) bool { return l.ids[i] >= id })
	return i < len(l.ids) && l.ids[i] == id
}

// Add inserts id with frequency 1, keeping the list sorted and
// duplicate-free. On a boolean (implicit-frequency) list, re-adding a
// present id is a no-op — the set semantics the immediate-insertion
// ablation path relies on; on a list with materialized frequencies it
// records one more occurrence, like AddN(id, 1). The common fast path —
// id greater than every present posting — is O(1) amortized.
func (l *List) Add(id FileID) { l.AddN(id, 1) }

// AddN inserts id with frequency n (n == 0 is recorded as 1). Re-adding a
// present id sums frequencies, matching Merge's discipline — except the
// pure boolean case (n == 1 into a list with implicit counts), which
// keeps Add's set semantics.
func (l *List) AddN(id FileID, n uint32) {
	if n == 0 {
		n = 1
	}
	sz := len(l.ids)
	if sz == 0 || id > l.ids[sz-1] {
		l.ids = append(l.ids, id)
		l.appendCount(n)
		return
	}
	i := sort.Search(sz, func(i int) bool { return l.ids[i] >= id })
	if i < sz && l.ids[i] == id {
		if n > 1 || l.counts != nil {
			l.materializeCounts()
			l.counts[i] += n
		}
		return
	}
	l.ids = append(l.ids, 0)
	copy(l.ids[i+1:], l.ids[i:])
	l.ids[i] = id
	if n > 1 {
		// ids already grew, so materialization covers the inserted slot too;
		// the shift below then moves all-ones over all-ones harmlessly.
		l.materializeCounts()
	}
	if l.counts != nil {
		if len(l.counts) < len(l.ids) {
			l.counts = append(l.counts, 0)
		}
		copy(l.counts[i+1:], l.counts[i:])
		l.counts[i] = n
	}
}

// appendCount records the frequency of a posting just appended to ids.
func (l *List) appendCount(n uint32) {
	if n == 1 && l.counts == nil {
		return
	}
	if l.counts == nil {
		// The new id is already in ids; materialize counts for the others.
		l.counts = make([]uint32, len(l.ids)-1, len(l.ids))
		for i := range l.counts {
			l.counts[i] = 1
		}
	}
	l.counts = append(l.counts, n)
}

// Merge destructively merges other into l (set union) and returns l.
// When either list carries explicit frequencies, frequencies of postings
// present in both sum; when both are boolean (implicit all-ones) lists the
// overlap keeps frequency 1 — set semantics, so query-time unions of match
// sets never materialize count storage. Callers merging counted data that
// may overlap (none of the document-disjoint partition paths do) must not
// rely on the boolean exception. The two-pointer merge is linear in the
// combined length.
func (l *List) Merge(other *List) *List {
	if other == nil || len(other.ids) == 0 {
		return l
	}
	if len(l.ids) == 0 {
		l.ids = append(l.ids, other.ids...)
		l.counts = nil
		if other.counts != nil {
			l.counts = append([]uint32(nil), other.counts...)
		}
		return l
	}
	// Fast path: disjoint ranges, the usual case when replicas own
	// round-robin slices of the corpus.
	if l.ids[len(l.ids)-1] < other.ids[0] {
		if l.counts != nil || other.counts != nil {
			l.materializeCounts()
			for i := range other.ids {
				l.counts = append(l.counts, other.CountAt(i))
			}
		}
		l.ids = append(l.ids, other.ids...)
		return l
	}
	if other.ids[len(other.ids)-1] < l.ids[0] {
		merged := make([]FileID, 0, len(l.ids)+len(other.ids))
		merged = append(merged, other.ids...)
		merged = append(merged, l.ids...)
		if l.counts != nil || other.counts != nil {
			counts := make([]uint32, 0, len(merged))
			for i := range other.ids {
				counts = append(counts, other.CountAt(i))
			}
			for i := range l.ids {
				counts = append(counts, l.CountAt(i))
			}
			l.counts = counts
		}
		l.ids = merged
		return l
	}
	merged := make([]FileID, 0, len(l.ids)+len(other.ids))
	withCounts := l.counts != nil || other.counts != nil
	var counts []uint32
	if withCounts {
		counts = make([]uint32, 0, len(l.ids)+len(other.ids))
	}
	i, j := 0, 0
	for i < len(l.ids) && j < len(other.ids) {
		a, b := l.ids[i], other.ids[j]
		switch {
		case a < b:
			merged = append(merged, a)
			if withCounts {
				counts = append(counts, l.CountAt(i))
			}
			i++
		case b < a:
			merged = append(merged, b)
			if withCounts {
				counts = append(counts, other.CountAt(j))
			}
			j++
		default:
			merged = append(merged, a)
			if withCounts {
				counts = append(counts, l.CountAt(i)+other.CountAt(j))
			}
			i++
			j++
		}
	}
	for ; i < len(l.ids); i++ {
		merged = append(merged, l.ids[i])
		if withCounts {
			counts = append(counts, l.CountAt(i))
		}
	}
	for ; j < len(other.ids); j++ {
		merged = append(merged, other.ids[j])
		if withCounts {
			counts = append(counts, other.CountAt(j))
		}
	}
	l.ids = merged
	l.counts = counts
	return l
}

// WithoutCounts returns a frequency-free view of the list: same IDs, every
// frequency 1. The view shares the ID storage and must be treated as
// read-only; lists already in the implicit all-ones form return themselves.
// Set-algebra pipelines (query match sets) use it so frequencies are not
// copied and summed through operators that never read them.
func (l *List) WithoutCounts() *List {
	if l.counts == nil {
		return l
	}
	return &List{ids: l.ids}
}

// Clone returns an independent copy of the list.
func (l *List) Clone() *List {
	out := &List{ids: append([]FileID(nil), l.ids...)}
	if l.counts != nil {
		out.counts = append([]uint32(nil), l.counts...)
	}
	return out
}

// Equal reports whether two lists hold the same postings with the same
// frequencies (an all-ones counts slice equals no counts slice).
func (l *List) Equal(other *List) bool {
	if l.Len() != other.Len() {
		return false
	}
	for i, id := range l.ids {
		if other.ids[i] != id || l.CountAt(i) != other.CountAt(i) {
			return false
		}
	}
	return true
}

// Intersect returns the postings common to a and b (boolean AND). The
// result carries no frequencies: an intersection is a match set, and
// ranking reads frequencies from the term lists themselves.
func Intersect(a, b *List) *List {
	small, large := a, b
	if small.Len() > large.Len() {
		small, large = large, small
	}
	out := &List{}
	// Galloping search pays off when sizes are skewed, the common case for
	// query terms of very different frequency.
	if large.Len() > 8*small.Len() {
		lo := 0
		for _, id := range small.ids {
			i := lo + sort.Search(len(large.ids)-lo, func(i int) bool { return large.ids[lo+i] >= id })
			if i < len(large.ids) && large.ids[i] == id {
				out.ids = append(out.ids, id)
			}
			lo = i
			if lo >= len(large.ids) {
				break
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(small.ids) && j < len(large.ids) {
		a, b := small.ids[i], large.ids[j]
		switch {
		case a < b:
			i++
		case b < a:
			j++
		default:
			out.ids = append(out.ids, a)
			i++
			j++
		}
	}
	return out
}

// IntersectEach calls f for every posting common to a and b, in ascending
// ID order, with b's frequency for it — the ranking walk: a is a match
// set, b a term's posting list whose frequencies score the match.
func IntersectEach(a, b *List, f func(id FileID, bCount uint32)) {
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		x, y := a.ids[i], b.ids[j]
		switch {
		case x < y:
			i++
		case y < x:
			j++
		default:
			f(x, b.CountAt(j))
			i++
			j++
		}
	}
}

// Union returns all postings in a or b (boolean OR), with Merge's
// frequency discipline on postings present in both.
func Union(a, b *List) *List {
	return a.Clone().Merge(b)
}

// Difference returns the postings in a but not in b (boolean AND NOT),
// keeping a's frequencies for the survivors.
func Difference(a, b *List) *List {
	out := &List{ids: make([]FileID, 0, a.Len())}
	if a.counts != nil {
		out.counts = make([]uint32, 0, a.Len())
	}
	i, j := 0, 0
	for i < len(a.ids) {
		for j < len(b.ids) && b.ids[j] < a.ids[i] {
			j++
		}
		if j >= len(b.ids) || b.ids[j] != a.ids[i] {
			out.ids = append(out.ids, a.ids[i])
			if out.counts != nil {
				out.counts = append(out.counts, a.counts[i])
			}
		}
		i++
	}
	if out.counts != nil {
		out.normalize()
	}
	return out
}
