package desksearch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"desksearch/internal/vfs"
)

// bm25FS generates a deterministic corpus with skewed term frequencies and
// widely varying document lengths — the regime where BM25's IDF weighting
// and length normalization actually discriminate.
func bm25FS(t *testing.T) *vfs.MemFS {
	t.Helper()
	fs := vfs.NewMemFS()
	vocab := []string{
		"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
		"theta", "iota", "kappa", "lambda", "report", "reposition",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 24; i++ {
		n := 3 + rng.Intn(60) // token lengths from 3 to 62
		words := make([]string, n)
		for j := range words {
			// Skew: low vocabulary indices appear far more often.
			k := rng.Intn(len(vocab))
			if rng.Intn(2) == 0 {
				k = rng.Intn(4)
			}
			words[j] = vocab[k]
		}
		name := fmt.Sprintf("dir%d/doc%02d.txt", i%3, i)
		if err := fs.WriteFile(name, []byte(strings.Join(words, " "))); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

var bm25Queries = []string{
	"alpha",
	"report",
	"alpha OR kappa",
	"alpha AND beta AND NOT gamma",
	"repo*",
	"alpha OR rep*",
	"a* OR b*",
}

// bm25Scores runs q BM25-ranked and returns the ordered (path, score-bits)
// rendering of the full hit list, so two catalogs compare bit-for-bit.
func bm25Scores(t *testing.T, cat *Catalog, q string) []string {
	t.Helper()
	resp, err := cat.Query(context.Background(), Query{Text: q, Ranking: RankBM25})
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	out := make([]string, len(resp.Hits))
	for i, h := range resp.Hits {
		out[i] = fmt.Sprintf("%s:%016x", h.Path, math.Float64bits(h.Score))
	}
	return out
}

func assertBM25Identical(t *testing.T, stage string, flat, sharded *Catalog) {
	t.Helper()
	for _, q := range bm25Queries {
		a := bm25Scores(t, flat, q)
		b := bm25Scores(t, sharded, q)
		if len(a) == 0 {
			t.Errorf("%s: %q matched nothing — fixture too weak", stage, q)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("%s: %q diverges\n  unsharded: %v\n  sharded:   %v", stage, q, a, b)
		}
	}
}

// TestBM25ShardInvariance is the acceptance property for the v3 relevance
// work: a sharded catalog's BM25 scores are byte-for-byte (Float64bits)
// the unsharded catalog's scores, through every catalog lifecycle — fresh
// build, persisted round-trip, and incremental update.
func TestBM25ShardInvariance(t *testing.T) {
	fs := bm25FS(t)
	flat, err := IndexFS(fs, ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := IndexFS(fs, ".", Options{Implementation: ReplicatedSearch, Shards: 4, Extractors: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBM25Identical(t, "fresh", flat, sharded)

	// Persisted round-trip: sharded catalogs through SaveDir/LoadDir.
	dir := t.TempDir()
	if err := sharded.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertBM25Identical(t, "persisted", flat, loaded)

	// Incremental update: mutate the corpus (add, modify, delete) and
	// apply the same changeset to the flat and the loaded sharded catalog.
	if err := fs.WriteFile("dir0/new.txt", []byte("alpha alpha report kappa")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("dir0/doc00.txt", []byte("beta beta beta reposition")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("dir1/doc01.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Update(fs, "."); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Update(fs, "."); err != nil {
		t.Fatal(err)
	}
	assertBM25Identical(t, "updated", flat, loaded)
}

// TestBM25SurvivesSingleFileRoundTrip: the v9 single-file codec preserves
// document lengths, so a Save/Load round trip scores identically too.
func TestBM25SurvivesSingleFileRoundTrip(t *testing.T) {
	fs := bm25FS(t)
	cat, err := IndexFS(fs, ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := cat.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	assertBM25Identical(t, "single-file", cat, loaded)
}

// TestSuggestPublicAPI exercises Catalog.Suggest end to end: document-
// frequency ranking with ties broken alphabetically, and the n cap.
func TestSuggestPublicAPI(t *testing.T) {
	cat, err := IndexFS(demoFS(t), ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cat.Suggest(context.Background(), "rep", 0)
	if err != nil {
		t.Fatal(err)
	}
	// "report" appears in five demo files; no other term shares the prefix.
	if len(got) != 1 || got[0].Term != "report" || got[0].Files != 5 {
		t.Errorf("Suggest(rep) = %+v", got)
	}
	if _, err := cat.Suggest(context.Background(), "two words", 0); err == nil {
		t.Error("multi-word prefix accepted")
	}
}

// TestSnippetsPublicAPI: a positional catalog returns highlighted context
// windows; one built without positions degrades with the phrase-style
// error.
func TestSnippetsPublicAPI(t *testing.T) {
	cat, err := IndexFS(demoFS(t), ".", Options{Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cat.Query(context.Background(), Query{Text: "quarterly", Limit: 10, Snippets: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range resp.Hits {
		if h.Snippet == nil {
			t.Fatalf("%s: nil snippet", h.Path)
		}
		if !strings.Contains(h.Snippet.Text, "quarterly") {
			t.Errorf("%s: snippet %q misses the match", h.Path, h.Snippet.Text)
		}
		if len(h.Snippet.Highlights) == 0 {
			t.Errorf("%s: no highlights", h.Path)
		}
		for _, s := range h.Snippet.Highlights {
			if s.Start < 0 || s.End > len(h.Snippet.Text) || s.Start >= s.End {
				t.Errorf("%s: span %+v out of bounds", h.Path, s)
			}
		}
	}

	plain, err := IndexFS(demoFS(t), ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Query(context.Background(), Query{Text: "quarterly", Limit: 10, Snippets: true}); err == nil {
		t.Error("snippets on a position-free catalog succeeded")
	}
}

// TestPrefixQueryPublicAPI: the trailing-wildcard operator works through
// the public Query API and round-trips through ParseQuery.
func TestPrefixQueryPublicAPI(t *testing.T) {
	cat, err := IndexFS(demoFS(t), ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	hits := queryAll(t, cat, "repor*")
	want := queryAll(t, cat, "report")
	if fmt.Sprint(paths(hits)) != fmt.Sprint(paths(want)) {
		t.Errorf("repor* = %v, report = %v", paths(hits), paths(want))
	}
	e, err := ParseQuery("milk AND NOT repor*")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(milk AND (NOT repor*))" {
		t.Errorf("canonical form = %q", e.String())
	}
	resp, err := cat.Query(context.Background(), Query{Expr: e})
	if err != nil {
		t.Fatal(err)
	}
	// In the demo corpus repor* expands to exactly {report}, so the
	// negated prefix behaves like the negated term.
	if want := queryAll(t, cat, "milk AND NOT report"); fmt.Sprint(paths(resp.Hits)) != fmt.Sprint(paths(want)) {
		t.Errorf("milk AND NOT repor* = %v, want %v", paths(resp.Hits), paths(want))
	}
}

func TestParseRankingWire(t *testing.T) {
	cases := []struct {
		in   string
		want Ranking
		ok   bool
	}{
		{"count", RankCount, true},
		{"COUNT", RankCount, true},
		{"coordination", RankCount, true},
		{"tf", RankTF, true},
		{"bm25", RankBM25, true},
		{"BM25", RankBM25, true},
		{"0", RankCount, true},
		{"1", RankTF, true},
		{"2", RankBM25, true},
		{"3", 0, false},
		{"-1", 0, false},
		{"bm", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseRanking(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseRanking(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseRanking(%q) succeeded with %v, want error", c.in, got)
		}
	}
	for _, r := range []Ranking{RankCount, RankTF, RankBM25} {
		back, err := ParseRanking(r.String())
		if err != nil || back != r {
			t.Errorf("round trip %v: %v, %v", r, back, err)
		}
	}
}
