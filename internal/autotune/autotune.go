// Package autotune searches the thread-configuration space (x, y, z) for
// the fastest pipeline configuration.
//
// The paper used the auto-tuner of Schäfer et al. to explore configurations
// ("Use an auto-tuner to speed up exploring the design space", lesson 6) but
// could not apply it throughout because it targeted C#. This package plays
// that role here: an exhaustive sweep for the experiment tables, and a
// cheaper hill-climbing search for interactive tuning, both over a
// pluggable objective (simulated or live runs).
package autotune

import (
	"fmt"

	"desksearch/internal/core"
)

// Objective evaluates one configuration and returns its cost in seconds
// (lower is better).
type Objective func(cfg core.Config) (float64, error)

// Space bounds the configurations to explore for one implementation.
type Space struct {
	// Implementation to tune.
	Implementation core.Implementation
	// MaxExtractors bounds x (≥ 1).
	MaxExtractors int
	// MaxUpdaters bounds y (0 allows extractor-updates-directly configs).
	MaxUpdaters int
	// Joiners lists the z values to try. Empty means {0} for designs that
	// never join and {1} for ReplicatedJoin.
	Joiners []int
	// MinReplicas excludes degenerate replica counts: the replicated
	// implementations are defined by replication, so the paper's sweeps
	// require at least two replicas. Zero means no constraint.
	MinReplicas int
}

// DefaultSpace returns the sweep the experiment harness uses for a machine
// with cores cores, mirroring the paper's "any combination of thread
// counts" within practical bounds.
func DefaultSpace(im core.Implementation, cores int) Space {
	maxX := 2 * cores
	if maxX > 16 {
		maxX = 16
	}
	maxY := cores
	if maxY > 8 {
		maxY = 8
	}
	s := Space{
		Implementation: im,
		MaxExtractors:  maxX,
		MaxUpdaters:    maxY,
	}
	switch im {
	case core.ReplicatedJoin:
		s.Joiners = []int{1, 2, 4}
		s.MinReplicas = 2
	case core.ReplicatedSearch:
		s.MinReplicas = 2
	case core.Sequential:
		s.MaxExtractors = 1
		s.MaxUpdaters = 0
	}
	return s
}

// Configs enumerates the space in deterministic order.
func (s Space) Configs() []core.Config {
	maxX := s.MaxExtractors
	if maxX < 1 {
		maxX = 1
	}
	joiners := s.Joiners
	if len(joiners) == 0 {
		if s.Implementation == core.ReplicatedJoin {
			joiners = []int{1}
		} else {
			joiners = []int{0}
		}
	}
	var out []core.Config
	for x := 1; x <= maxX; x++ {
		for y := 0; y <= s.MaxUpdaters; y++ {
			for _, z := range joiners {
				cfg := core.Config{
					Implementation: s.Implementation,
					Extractors:     x,
					Updaters:       y,
					Joiners:        z,
				}
				if s.MinReplicas > 0 && cfg.Replicas() < s.MinReplicas {
					continue
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

// Result is the outcome of a search.
type Result struct {
	// Config is the chosen configuration.
	Config core.Config
	// Cost is its objective value in seconds.
	Cost float64
	// Evaluated counts objective calls (cache misses only).
	Evaluated int
}

// Options tune the search itself.
type Options struct {
	// TieTolerance treats configurations within this relative distance of
	// the optimum as ties and picks the one with the fewest threads —
	// flat regions of the space otherwise make the reported "best
	// configuration" an arbitrary noise artifact. Zero means 1 %.
	TieTolerance float64
}

func (o Options) tieTolerance() float64 {
	if o.TieTolerance <= 0 {
		return 0.01
	}
	return o.TieTolerance
}

// Exhaustive evaluates every configuration in the space and returns the
// best, breaking near-ties toward fewer threads.
func Exhaustive(space Space, obj Objective, opt Options) (Result, error) {
	configs := space.Configs()
	if len(configs) == 0 {
		return Result{}, fmt.Errorf("autotune: empty space")
	}
	type entry struct {
		cfg  core.Config
		cost float64
	}
	entries := make([]entry, 0, len(configs))
	best := -1.0
	for _, cfg := range configs {
		cost, err := obj(cfg)
		if err != nil {
			return Result{}, fmt.Errorf("autotune: %s: %w", cfg.Tuple(), err)
		}
		entries = append(entries, entry{cfg, cost})
		if best < 0 || cost < best {
			best = cost
		}
	}
	chosen := entry{cost: -1}
	for _, e := range entries {
		if e.cost > best*(1+opt.tieTolerance()) {
			continue
		}
		if chosen.cost < 0 || threads(e.cfg) < threads(chosen.cfg) ||
			(threads(e.cfg) == threads(chosen.cfg) && e.cost < chosen.cost) {
			chosen = e
		}
	}
	return Result{Config: chosen.cfg, Cost: chosen.cost, Evaluated: len(entries)}, nil
}

func threads(cfg core.Config) int {
	return cfg.Extractors + cfg.Updaters + cfg.Joiners
}

// HillClimb starts from start and greedily follows single-step
// neighbourhood improvements (±1 on each of x, y, z) until no neighbour is
// better or maxSteps is exhausted. It evaluates far fewer configurations
// than Exhaustive but can stop in a local minimum — which is exactly the
// trade-off an interactive tuner makes.
func HillClimb(space Space, start core.Config, obj Objective, maxSteps int, opt Options) (Result, error) {
	if maxSteps < 1 {
		maxSteps = 32
	}
	valid := map[string]bool{}
	for _, cfg := range space.Configs() {
		valid[key(cfg)] = true
	}
	if !valid[key(normalize(start, space))] {
		return Result{}, fmt.Errorf("autotune: start %s outside space", start.Tuple())
	}
	cur := normalize(start, space)

	cache := map[string]float64{}
	evaluated := 0
	eval := func(cfg core.Config) (float64, error) {
		k := key(cfg)
		if c, ok := cache[k]; ok {
			return c, nil
		}
		c, err := obj(cfg)
		if err != nil {
			return 0, err
		}
		cache[k] = c
		evaluated++
		return c, nil
	}

	curCost, err := eval(cur)
	if err != nil {
		return Result{}, err
	}
	for step := 0; step < maxSteps; step++ {
		improved := false
		for _, nb := range neighbors(cur) {
			if !valid[key(nb)] {
				continue
			}
			cost, err := eval(nb)
			if err != nil {
				return Result{}, err
			}
			if cost < curCost*(1-1e-9) {
				cur, curCost = nb, cost
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return Result{Config: cur, Cost: curCost, Evaluated: evaluated}, nil
}

func normalize(cfg core.Config, space Space) core.Config {
	cfg.Implementation = space.Implementation
	if cfg.Extractors < 1 {
		cfg.Extractors = 1
	}
	return cfg
}

func key(cfg core.Config) string {
	return fmt.Sprintf("%d/%s", int(cfg.Implementation), cfg.Tuple())
}

func neighbors(cfg core.Config) []core.Config {
	var out []core.Config
	deltas := []struct{ dx, dy, dz int }{
		{1, 0, 0}, {-1, 0, 0},
		{0, 1, 0}, {0, -1, 0},
		{0, 0, 1}, {0, 0, -1},
	}
	for _, d := range deltas {
		nb := cfg
		nb.Extractors += d.dx
		nb.Updaters += d.dy
		nb.Joiners += d.dz
		if nb.Extractors < 1 || nb.Updaters < 0 || nb.Joiners < 0 {
			continue
		}
		out = append(out, nb)
	}
	return out
}
