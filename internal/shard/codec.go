package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"desksearch/internal/fnv"
	"desksearch/internal/index"
	"desksearch/internal/segment"
)

// The sharded on-disk layout: one directory holding
//
//	manifest.dsix   DSIX version 5 or 9 — file table + segment directory
//	shard-0000.dsix DSIX version 10 (lazy segment; internal/segment) for
//	                fresh saves, or the version 7/8 term-section frame a
//	                pre-v10 directory was loaded with
//	shard-0001.dsix ...
//
// The manifest payload, inside the standard DSIX frame, is
//
//	u8 kind (manifest) | u8 flags     (version 9 frames only)
//	file table (shared by all shards)
//	doc-length section                (version 9 frames only)
//	uvarint shardCount
//	shardCount × (uvarint nameLen | segment file name | u64 FNV-1 checksum
//	              of the segment file's entire contents)
//
// A file table carrying token lengths (every fresh build) persists as
// version 9 with the doc-length section BM25 needs; a set loaded from a
// pre-v9 manifest has no lengths and re-saves as version 5, byte-identical.
// Segments are unaffected either way — doc lengths live with the file
// table, once per set.
//
// Every file carries its own checksum trailer; the manifest's per-segment
// checksums additionally pin the exact segment bytes, so a segment that was
// swapped with another (internally valid) one, regenerated, or truncated is
// rejected before its postings are trusted. Segments are written and read
// with one goroutine per shard.

// ManifestName is the manifest's file name inside a sharded index directory.
const ManifestName = "manifest.dsix"

// maxShards bounds the shard count against corrupt manifests.
const maxShards = 1 << 16

// SegmentName returns the file name of shard i's segment.
func SegmentName(i int) string { return fmt.Sprintf("shard-%04d.dsix", i) }

// SaveDir writes s under dir as a manifest plus one segment file per shard.
// Segments are written concurrently, one goroutine per shard, each hashing
// its own file as it streams out. All files are staged under temporary
// names and renamed into place only after every write has succeeded —
// segments first, manifest last — so a crash during the data writes leaves
// any pre-existing index untouched, and a crash during the renames is
// caught at load time by the manifest's per-segment checksums rather than
// serving mixed data.
//
// A set previously loaded from or saved to the same directory rewrites
// only its dirty segments: clean segments keep their on-disk files, whose
// recorded checksums are carried into the fresh manifest unchanged. The
// manifest itself — file table plus segment directory — is always
// rewritten. That is the incremental-update fast path: a small changeset
// dirties few shards, so most segment bytes are never touched.
func SaveDir(dir string, s *Set) error {
	dir = filepath.Clean(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	const stage = ".tmp"
	sums := make([]uint64, s.Len())
	written := make([]bool, s.Len())
	errs := make([]error, s.Len())
	clean := s.cleanSums(dir)
	lazy := !s.legacySegments
	var wg sync.WaitGroup
	for i, ix := range s.shards {
		if clean[i] != nil {
			sums[i] = *clean[i]
			continue
		}
		written[i] = true
		wg.Add(1)
		go func(i int, ix *index.Index) {
			defer wg.Done()
			sums[i], errs[i] = saveSegmentFile(filepath.Join(dir, SegmentName(i)+stage), ix, lazy)
		}(i, ix)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: segment %d: %w", i, err)
		}
	}
	if err := saveManifest(filepath.Join(dir, ManifestName+stage), s, sums); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		if !written[i] {
			continue
		}
		name := filepath.Join(dir, SegmentName(i))
		if err := os.Rename(name+stage, name); err != nil {
			return fmt.Errorf("shard: segment %d: %w", i, err)
		}
	}
	name := filepath.Join(dir, ManifestName)
	if err := os.Rename(name+stage, name); err != nil {
		return fmt.Errorf("shard: manifest: %w", err)
	}
	removeStaleSegments(dir, s.Len())
	s.markSaved(dir, sums)
	return nil
}

// removeStaleSegments deletes segment files a previous save with more
// shards left behind — the new manifest no longer references them, so they
// would otherwise linger on disk forever — along with staging leftovers of
// a crashed earlier save. Removal failures are ignored — stale files are
// dead weight, not a correctness hazard.
func removeStaleSegments(dir string, n int) {
	if leftovers, err := filepath.Glob(filepath.Join(dir, "*.dsix.tmp")); err == nil {
		for _, path := range leftovers {
			os.Remove(path)
		}
	}
	stale, err := filepath.Glob(filepath.Join(dir, "shard-*.dsix"))
	if err != nil {
		return
	}
	for _, path := range stale {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(path), "shard-%04d.dsix", &i); err == nil && i >= n {
			os.Remove(path)
		}
	}
}

// saveSegmentFile writes one segment and returns the FNV-1 checksum of the
// complete file contents. Fresh sets write the v10 lazy form; sets loaded
// from pre-v10 directories keep the legacy v7/v8 frame (lazy false), so
// old catalogs round-trip byte-identically.
func saveSegmentFile(path string, ix *index.Index, lazy bool) (uint64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	h := fnv.New64()
	w := io.MultiWriter(f, h)
	if lazy {
		err = segment.Write(w, ix)
	} else {
		err = index.SaveSegment(w, ix)
	}
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

func saveManifest(path string, s *Set, sums []uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	version := uint16(index.ManifestVersion)
	if s.files.HasTokens() {
		version = index.DocLengthVersion
	}
	err = index.EncodeFrame(f, version, func(bw *bufio.Writer) error {
		if version == index.DocLengthVersion {
			if err := index.WriteManifestHeader(bw); err != nil {
				return err
			}
		}
		if err := index.WriteFileTable(bw, s.files); err != nil {
			return err
		}
		if version == index.DocLengthVersion {
			if err := index.WriteDocLengths(bw, s.files); err != nil {
				return err
			}
		}
		if err := index.WriteUvarint(bw, uint64(s.Len())); err != nil {
			return err
		}
		var b [8]byte
		for i := range s.shards {
			if err := index.WriteString(bw, SegmentName(i)); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(b[:], sums[i])
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		f.Close()
		return fmt.Errorf("shard: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: manifest: %w", err)
	}
	return nil
}

// manifest is the decoded segment directory.
type manifest struct {
	files *index.FileTable
	names []string
	sums  []uint64
}

func parseManifest(data []byte) (*manifest, error) {
	br, _, version, err := index.DecodeFrameAny(data, index.ManifestVersion, index.DocLengthVersion)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	if version == index.DocLengthVersion {
		if err := index.ReadManifestHeader(br); err != nil {
			return nil, fmt.Errorf("shard: manifest: %w", err)
		}
	}
	files, err := index.ReadFileTable(br)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	if version == index.DocLengthVersion {
		if err := index.ReadDocLengths(br, files); err != nil {
			return nil, fmt.Errorf("shard: manifest: %w", err)
		}
	}
	shardCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest: reading shard count: %w", err)
	}
	if shardCount == 0 || shardCount > maxShards {
		return nil, fmt.Errorf("shard: manifest: absurd shard count %d", shardCount)
	}
	m := &manifest{
		files: files,
		names: make([]string, shardCount),
		sums:  make([]uint64, shardCount),
	}
	sumBuf := make([]byte, 8)
	for i := range m.names {
		name, err := index.ReadString(br)
		if err != nil {
			return nil, fmt.Errorf("shard: manifest: segment %d name: %w", i, err)
		}
		// Segment names are opaque manifest data; refuse anything that
		// would escape the index directory.
		if name == "" || name != filepath.Base(name) {
			return nil, fmt.Errorf("shard: manifest: invalid segment name %q", name)
		}
		m.names[i] = name
		if _, err := io.ReadFull(br, sumBuf); err != nil {
			return nil, fmt.Errorf("shard: manifest: segment %d checksum: %w", i, err)
		}
		m.sums[i] = binary.LittleEndian.Uint64(sumBuf)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("shard: manifest: %d trailing payload bytes", br.Len())
	}
	return m, nil
}

// LoadDir reads a sharded index directory written by SaveDir: the manifest
// first (checksum-verified before anything in it is trusted), then every
// segment concurrently, one goroutine per shard, each segment checked
// against the manifest's whole-file checksum and then against its own
// trailer by the segment codec.
func LoadDir(dir string) (*Set, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	m, err := parseManifest(data)
	if err != nil {
		return nil, err
	}
	shards := make([]*index.Index, len(m.names))
	legacy := make([]bool, len(m.names))
	errs := make([]error, len(m.names))
	var wg sync.WaitGroup
	for i, name := range m.names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			shards[i], legacy[i], errs[i] = loadSegmentFile(filepath.Join(dir, name), m.sums[i])
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: segment %s: %w", m.names[i], err)
		}
	}
	set := New(m.files, shards)
	for _, l := range legacy {
		if l {
			set.legacySegments = true
			break
		}
	}
	// Remember where the segments live and their checksums, so a later
	// SaveDir back into the same directory rewrites only dirty ones. Only
	// canonically named segments qualify: SaveDir writes SegmentName(i),
	// so a manifest with foreign names cannot vouch for those files.
	canonical := true
	for i, name := range m.names {
		if name != SegmentName(i) {
			canonical = false
			break
		}
	}
	if canonical {
		set.markSaved(filepath.Clean(dir), m.sums)
	}
	return set, nil
}

// loadSegmentFile eagerly loads one segment of either vintage, reporting
// whether it was a legacy (pre-v10) frame. A v10 file is opened in place
// over the already-read bytes and fully materialized — the eager path
// through the lazy format.
func loadSegmentFile(path string, wantSum uint64) (*index.Index, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if got := fnv.Hash64Bytes(data); got != wantSum {
		return nil, false, fmt.Errorf("file checksum mismatch: manifest %#x, computed %#x", wantSum, got)
	}
	if segmentVersion(data) == index.LazySegmentVersion {
		r, err := segment.OpenBytes(path, data, nil)
		if err != nil {
			return nil, false, err
		}
		ix, err := r.Materialize()
		r.Close()
		return ix, false, err
	}
	ix, err := index.LoadSegment(bytes.NewReader(data))
	return ix, err == nil, err
}

// segmentVersion peeks a DSIX file's version field (0 if too short).
func segmentVersion(data []byte) uint16 {
	if len(data) < 6 {
		return 0
	}
	return binary.LittleEndian.Uint16(data[4:6])
}
