package autotune

import (
	"fmt"
	"math"
	"testing"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
	"desksearch/internal/simmodel"
	"desksearch/internal/vfs"
)

// quadratic is a synthetic objective with a unique known minimum.
func quadratic(bestX, bestY, bestZ int) Objective {
	return func(cfg core.Config) (float64, error) {
		dx := float64(cfg.Extractors - bestX)
		dy := float64(cfg.Updaters - bestY)
		dz := float64(cfg.Joiners - bestZ)
		return 10 + dx*dx + dy*dy + dz*dz, nil
	}
}

func TestSpaceConfigsBounds(t *testing.T) {
	s := Space{Implementation: core.SharedIndex, MaxExtractors: 3, MaxUpdaters: 2}
	configs := s.Configs()
	if len(configs) != 3*3 { // x ∈ 1..3, y ∈ 0..2, z = {0}
		t.Fatalf("got %d configs", len(configs))
	}
	for _, cfg := range configs {
		if cfg.Extractors < 1 || cfg.Extractors > 3 || cfg.Updaters < 0 || cfg.Updaters > 2 || cfg.Joiners != 0 {
			t.Errorf("out-of-space config %s", cfg.Tuple())
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("invalid config enumerated: %v", err)
		}
	}
}

func TestSpaceMinReplicas(t *testing.T) {
	s := Space{Implementation: core.ReplicatedSearch, MaxExtractors: 4, MaxUpdaters: 3, MinReplicas: 2}
	for _, cfg := range s.Configs() {
		if cfg.Replicas() < 2 {
			t.Errorf("degenerate replica config enumerated: %s (%d replicas)", cfg.Tuple(), cfg.Replicas())
		}
	}
	// (1, 0, 0) — one extractor updating its own single replica — and any
	// y=1 config must be excluded.
	for _, cfg := range s.Configs() {
		if cfg.Updaters == 1 {
			t.Errorf("y=1 enumerated for replicated: %s", cfg.Tuple())
		}
	}
}

func TestDefaultSpaces(t *testing.T) {
	for _, im := range []core.Implementation{core.SharedIndex, core.ReplicatedJoin, core.ReplicatedSearch} {
		s := DefaultSpace(im, 8)
		if len(s.Configs()) == 0 {
			t.Errorf("%v: empty default space", im)
		}
	}
	if n := len(DefaultSpace(core.Sequential, 8).Configs()); n != 1 {
		t.Errorf("sequential space has %d configs", n)
	}
	if s := DefaultSpace(core.ReplicatedJoin, 8); len(s.Joiners) == 0 || s.MinReplicas != 2 {
		t.Errorf("join space = %+v", s)
	}
	// Bounds cap at 16/8 even on huge machines.
	big := DefaultSpace(core.SharedIndex, 64)
	if big.MaxExtractors > 16 || big.MaxUpdaters > 8 {
		t.Errorf("unbounded space: %+v", big)
	}
}

func TestExhaustiveFindsKnownMinimum(t *testing.T) {
	s := Space{Implementation: core.ReplicatedJoin, MaxExtractors: 8, MaxUpdaters: 6, Joiners: []int{0, 1, 2, 3}}
	res, err := Exhaustive(s, quadratic(5, 3, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Extractors != 5 || res.Config.Updaters != 3 || res.Config.Joiners != 2 {
		t.Errorf("found %s, want (5, 3, 2)", res.Config.Tuple())
	}
	if math.Abs(res.Cost-10) > 1e-12 {
		t.Errorf("cost = %v", res.Cost)
	}
	if res.Evaluated != len(s.Configs()) {
		t.Errorf("Evaluated = %d, want %d", res.Evaluated, len(s.Configs()))
	}
}

func TestExhaustiveTieBreaksTowardFewerThreads(t *testing.T) {
	// A flat objective: everything ties; the smallest config must win.
	flat := func(cfg core.Config) (float64, error) { return 42, nil }
	s := Space{Implementation: core.SharedIndex, MaxExtractors: 6, MaxUpdaters: 4}
	res, err := Exhaustive(s, flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Extractors != 1 || res.Config.Updaters != 0 {
		t.Errorf("flat objective chose %s, want (1, 0, 0)", res.Config.Tuple())
	}
}

func TestExhaustivePropagatesErrors(t *testing.T) {
	s := Space{Implementation: core.SharedIndex, MaxExtractors: 2, MaxUpdaters: 0}
	bad := func(cfg core.Config) (float64, error) { return 0, fmt.Errorf("boom") }
	if _, err := Exhaustive(s, bad, Options{}); err == nil {
		t.Error("objective error swallowed")
	}
}

func TestHillClimbFindsConvexMinimum(t *testing.T) {
	s := Space{Implementation: core.ReplicatedJoin, MaxExtractors: 10, MaxUpdaters: 8, Joiners: []int{0, 1, 2, 3, 4}}
	res, err := HillClimb(s, core.Config{Implementation: core.ReplicatedJoin, Extractors: 1, Updaters: 0, Joiners: 0},
		quadratic(6, 4, 2), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Extractors != 6 || res.Config.Updaters != 4 || res.Config.Joiners != 2 {
		t.Errorf("hill climb found %s, want (6, 4, 2)", res.Config.Tuple())
	}
	exhaustiveEvals := len(s.Configs())
	if res.Evaluated >= exhaustiveEvals {
		t.Errorf("hill climb evaluated %d ≥ exhaustive %d", res.Evaluated, exhaustiveEvals)
	}
}

func TestHillClimbRejectsStartOutsideSpace(t *testing.T) {
	s := Space{Implementation: core.SharedIndex, MaxExtractors: 2, MaxUpdaters: 1}
	if _, err := HillClimb(s, core.Config{Implementation: core.SharedIndex, Extractors: 99}, quadratic(1, 0, 0), 10, Options{}); err == nil {
		t.Error("out-of-space start accepted")
	}
}

func TestMemoizedCaches(t *testing.T) {
	calls := 0
	obj := Memoized(func(cfg core.Config) (float64, error) {
		calls++
		return float64(cfg.Extractors), nil
	})
	cfg := core.Config{Implementation: core.SharedIndex, Extractors: 3}
	for i := 0; i < 5; i++ {
		if c, err := obj(cfg); err != nil || c != 3 {
			t.Fatalf("obj = %v, %v", c, err)
		}
	}
	if calls != 1 {
		t.Errorf("objective called %d times", calls)
	}
}

func TestSimObjectiveAgainstModel(t *testing.T) {
	cs := corpus.Describe(corpus.PaperSpec().Scale(1.0 / 16))
	p := platform.Manycore32()
	obj := SimObjective(p, cs, simmodel.Options{Batch: 16}, 2)
	c1, err := obj(core.Config{Implementation: core.SharedIndex, Extractors: 8, Updaters: 4})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := obj(core.Config{Implementation: core.ReplicatedSearch, Extractors: 9, Updaters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c3 >= c1 {
		t.Errorf("Impl3 (%.1f) should beat Impl1 (%.1f) on the 32-core model", c3, c1)
	}
}

// TestTunerReproducesPaperOrdering is the autotuner's integration test: on
// the 32-core platform, the tuned best of each implementation must order
// Impl1 > Impl2 > Impl3 in execution time, as in the paper's Table 4.
func TestTunerReproducesPaperOrdering(t *testing.T) {
	cs := corpus.Describe(corpus.PaperSpec().Scale(1.0 / 8))
	p := platform.Manycore32()
	opt := simmodel.Options{Batch: 32}
	costs := map[core.Implementation]float64{}
	for _, im := range []core.Implementation{core.SharedIndex, core.ReplicatedJoin, core.ReplicatedSearch} {
		space := DefaultSpace(im, p.Cores)
		// Keep the test quick: halve the grid.
		space.MaxExtractors = 10
		space.MaxUpdaters = 5
		res, err := Exhaustive(space, SimObjective(p, cs, opt, 1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		costs[im] = res.Cost
	}
	if !(costs[core.SharedIndex] > costs[core.ReplicatedJoin] && costs[core.ReplicatedJoin] > costs[core.ReplicatedSearch]) {
		t.Errorf("tuned ordering broken: I1=%.1f I2=%.1f I3=%.1f",
			costs[core.SharedIndex], costs[core.ReplicatedJoin], costs[core.ReplicatedSearch])
	}
}

func TestLiveObjectiveRuns(t *testing.T) {
	fs := vfs.NewMemFS()
	spec := corpus.SmallSpec()
	spec.Files = 40
	spec.TotalBytes = 200 << 10
	if _, err := corpus.Generate(spec, fs); err != nil {
		t.Fatal(err)
	}
	obj := LiveObjective(fs, ".", 1)
	cost, err := obj(core.Config{Implementation: core.SharedIndex, Extractors: 2, Updaters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
	if _, err := obj(core.Config{Implementation: core.Implementation(9)}); err == nil {
		t.Error("invalid config accepted by live objective")
	}
}
