// Serving: run the dsearchd daemon machinery against the quickstart
// corpus, on a real host directory so live reloads have something to
// watch.
//
// The example is self-driving: it writes a miniature corpus to a temp
// directory, starts the HTTP server on a loopback port, issues the same
// requests the README shows with curl, edits the corpus, reloads, and
// shows the cache dropping the stale result — then shuts down. Run with:
//
//	go run ./examples/server
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"desksearch"
	"desksearch/internal/server"
)

func main() {
	// A miniature "home directory" on the host filesystem: reloads diff
	// the real tree, exactly like dsearchd -root would.
	root, err := os.MkdirTemp("", "desksearch-server-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	files := map[string]string{
		"docs/thesis-draft.txt": "thesis draft: parallel index generation for desktop search",
		"docs/thesis-final.txt": "thesis final: parallel index generation for desktop search",
		"mail/inbox.txt":        "lunch tomorrow? also the search demo crashed again",
		"notes/shopping.txt":    "milk eggs flour",
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Load the catalog once; the daemon keeps it memory-resident across
	// requests — this is dsearchd's startup path.
	opts := desksearch.Options{Shards: 2}
	cat, err := desksearch.IndexDir(root, opts)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{
		Catalog: cat,
		Update:  func() (desksearch.UpdateStats, error) { return cat.UpdateDir(root) },
		Rebuild: func() (*desksearch.Catalog, error) { return desksearch.IndexDir(root, opts) },
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("dsearchd-style server on %s\n\n", base)

	// The README's curl requests, verbatim.
	show("GET /search?q=search+-crashed", get(base+"/search?q=search+-crashed"))
	show("GET /search?q=search+-crashed   (repeat: served from cache)", get(base+"/search?q=search+-crashed"))
	show("GET /healthz", get(base+"/healthz"))

	// Edit the corpus and reload: the daemon re-diffs the tree through
	// the delta pipeline and the stale cached result stops being served.
	if err := os.WriteFile(filepath.Join(root, "mail/sent.txt"),
		[]byte("fixed the crashed demo, the search index was racing"), 0o644); err != nil {
		log.Fatal(err)
	}
	show("POST /reload   (after writing mail/sent.txt)", post(base+"/reload"))
	show("GET /search?q=search+-crashed   (fresh generation, not cached)", get(base+"/search?q=search+-crashed"))
	show("GET /stats", get(base+"/stats"))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body
}

func post(url string) []byte {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body
}

// show pretty-prints one JSON response under its request line.
func show(req string, body []byte) {
	var buf map[string]any
	if err := json.Unmarshal(body, &buf); err != nil {
		log.Fatalf("%s: %v\n%s", req, err, body)
	}
	pretty, _ := json.MarshalIndent(buf, "  ", "  ")
	fmt.Printf("%s\n  %s\n\n", req, pretty)
}
