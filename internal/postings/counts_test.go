package postings

import (
	"reflect"
	"testing"
)

func TestAddNCounts(t *testing.T) {
	l := &List{}
	l.AddN(5, 3)
	l.Add(9)
	l.AddN(2, 2) // out-of-order insert
	if got := l.IDs(); !reflect.DeepEqual(got, []FileID{2, 5, 9}) {
		t.Fatalf("ids = %v", got)
	}
	for _, tc := range []struct {
		id   FileID
		want uint32
	}{{2, 2}, {5, 3}, {9, 1}, {7, 0}} {
		if got := l.CountOf(tc.id); got != tc.want {
			t.Errorf("CountOf(%d) = %d, want %d", tc.id, got, tc.want)
		}
	}
	// Re-adding sums frequencies (Merge's discipline).
	l.AddN(9, 4)
	if got := l.CountOf(9); got != 5 {
		t.Errorf("CountOf(9) after re-add = %d, want 5", got)
	}
}

func TestCountsStayImplicitForBooleanLists(t *testing.T) {
	l := &List{}
	for i := 0; i < 10; i++ {
		l.Add(FileID(i * 2))
	}
	if l.counts != nil {
		t.Error("all-ones list materialized counts")
	}
	if l.CountAt(3) != 1 || l.CountOf(4) != 1 {
		t.Error("implicit frequency != 1")
	}
}

func TestMergeSumsCounts(t *testing.T) {
	a := FromSortedIDCounts([]FileID{1, 3, 5}, []uint32{2, 1, 4})
	b := FromSortedIDCounts([]FileID{2, 3, 6}, []uint32{1, 5, 2})
	a.Merge(b)
	want := FromSortedIDCounts([]FileID{1, 2, 3, 5, 6}, []uint32{2, 1, 6, 4, 2})
	if !a.Equal(want) {
		t.Errorf("merged = %v / %v", a.IDs(), a.counts)
	}
	// Disjoint fast path keeps counts aligned.
	c := FromSortedIDCounts([]FileID{1, 2}, []uint32{3, 1})
	d := FromSortedIDCounts([]FileID{10, 11}, []uint32{1, 7})
	c.Merge(d)
	if c.CountOf(1) != 3 || c.CountOf(10) != 1 || c.CountOf(11) != 7 {
		t.Errorf("disjoint merge counts wrong: %v", c.counts)
	}
	// Mixed: counted merged into boolean materializes the boolean side.
	e := FromSortedIDs([]FileID{1, 2})
	e.Merge(FromSortedIDCounts([]FileID{2, 3}, []uint32{4, 2}))
	if e.CountOf(1) != 1 || e.CountOf(2) != 5 || e.CountOf(3) != 2 {
		t.Errorf("mixed merge counts wrong: %v", e.counts)
	}
}

func TestDifferencePreservesCounts(t *testing.T) {
	a := FromSortedIDCounts([]FileID{1, 2, 3, 4}, []uint32{5, 1, 7, 1})
	out := Difference(a, FromSortedIDs([]FileID{2, 4}))
	want := FromSortedIDCounts([]FileID{1, 3}, []uint32{5, 7})
	if !out.Equal(want) {
		t.Errorf("difference = %v / %v", out.IDs(), out.counts)
	}
	// Survivors all at frequency 1 normalize back to the implicit form.
	b := FromSortedIDCounts([]FileID{1, 2, 3}, []uint32{1, 9, 1})
	out2 := Difference(b, FromSortedIDs([]FileID{2}))
	if out2.counts != nil {
		t.Error("all-ones survivors kept explicit counts")
	}
}

func TestIntersectEach(t *testing.T) {
	matched := FromSortedIDs([]FileID{1, 3, 5, 7})
	term := FromSortedIDCounts([]FileID{3, 4, 7, 9}, []uint32{6, 1, 2, 8})
	var ids []FileID
	var counts []uint32
	IntersectEach(matched, term, func(id FileID, c uint32) {
		ids = append(ids, id)
		counts = append(counts, c)
	})
	if !reflect.DeepEqual(ids, []FileID{3, 7}) || !reflect.DeepEqual(counts, []uint32{6, 2}) {
		t.Errorf("IntersectEach = %v / %v", ids, counts)
	}
}

func TestEncodeDecodeCounts(t *testing.T) {
	cases := []*List{
		{},
		FromSortedIDs([]FileID{0, 1, 7, 100}),
		FromSortedIDCounts([]FileID{2, 9, 300}, []uint32{1, 128, 3}),
		FromSortedIDCounts([]FileID{5}, []uint32{0xFFFF_FFFF}),
	}
	for i, l := range cases {
		buf := l.Encode(nil)
		if len(buf) != l.EncodedSize() {
			t.Errorf("case %d: EncodedSize %d != len %d", i, l.EncodedSize(), len(buf))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("case %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !got.Equal(l) {
			t.Errorf("case %d: round trip %v/%v != %v/%v", i, got.ids, got.counts, l.ids, l.counts)
		}
	}
	// An all-ones explicit list round-trips into the implicit form.
	l := FromSortedIDCounts([]FileID{1, 2}, []uint32{1, 1})
	got, _, err := Decode(l.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.counts != nil {
		t.Error("all-ones counts not normalized on decode")
	}
}

func TestDecodeCountErrors(t *testing.T) {
	// Truncated before the frequency marker.
	l := FromSortedIDs([]FileID{1, 2, 3})
	buf := l.Encode(nil)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("missing marker accepted")
	}
	// Unknown marker byte.
	bad := append(append([]byte(nil), buf[:len(buf)-1]...), 9)
	if _, _, err := Decode(bad); err == nil {
		t.Error("unknown marker accepted")
	}
	// Counted marker with missing frequencies.
	counted := append(append([]byte(nil), buf[:len(buf)-1]...), 1)
	if _, _, err := Decode(counted); err == nil {
		t.Error("truncated frequencies accepted")
	}
}

func TestCloneAndEqualWithCounts(t *testing.T) {
	a := FromSortedIDCounts([]FileID{1, 2}, []uint32{3, 1})
	b := a.Clone()
	b.AddN(2, 1)
	if a.CountOf(2) != 1 {
		t.Error("clone shares count storage")
	}
	if a.Equal(b) {
		t.Error("lists with different counts compare equal")
	}
	if !FromSortedIDs([]FileID{1}).Equal(FromSortedIDCounts([]FileID{1}, []uint32{1})) {
		t.Error("implicit and explicit all-ones lists compare unequal")
	}
}

func TestFromSortedIDCountsClampsZero(t *testing.T) {
	l := FromSortedIDCounts([]FileID{1, 2}, []uint32{0, 3})
	if l.CountOf(1) != 1 || l.CountOf(2) != 3 {
		t.Errorf("counts = %d/%d, want 1/3", l.CountOf(1), l.CountOf(2))
	}
	// An all-zero (→ all-one) slice normalizes to the implicit form and
	// the round trip stays loadable.
	z := FromSortedIDCounts([]FileID{5}, []uint32{0})
	if z.counts != nil {
		t.Error("clamped all-ones counts not normalized")
	}
	if _, _, err := Decode(l.Encode(nil)); err != nil {
		t.Errorf("round trip after clamp: %v", err)
	}
}
