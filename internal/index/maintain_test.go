package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"desksearch/internal/postings"
)

func TestRemoveFile(t *testing.T) {
	ix := New(0)
	ix.AddBlock(1, []string{"shared", "only1"}, nil)
	ix.AddBlock(2, []string{"shared", "only2"}, nil)

	removed := ix.RemoveFile(1)
	if removed != 2 {
		t.Errorf("removed %d postings, want 2", removed)
	}
	if ix.Lookup("only1") != nil {
		t.Error("emptied term survived")
	}
	if l := ix.Lookup("shared"); !reflect.DeepEqual(l.IDs(), []postings.FileID{2}) {
		t.Errorf("shared -> %v", l.IDs())
	}
	if ix.NumPostings() != 2 {
		t.Errorf("NumPostings = %d", ix.NumPostings())
	}
	if ix.NumTerms() != 2 {
		t.Errorf("NumTerms = %d", ix.NumTerms())
	}
}

func TestRemoveFileAbsent(t *testing.T) {
	ix := New(0)
	ix.AddBlock(1, []string{"a"}, nil)
	if got := ix.RemoveFile(99); got != 0 {
		t.Errorf("removed %d from absent file", got)
	}
	if ix.NumPostings() != 1 {
		t.Error("index mutated by absent removal")
	}
}

func TestUpdateFile(t *testing.T) {
	ix := New(0)
	ix.AddBlock(1, []string{"old", "stays"}, nil)
	ix.AddBlock(2, []string{"stays"}, nil)
	ix.UpdateFile(1, []string{"new", "stays"}, nil)
	if ix.Lookup("old") != nil {
		t.Error("stale term survived update")
	}
	if l := ix.Lookup("new"); !reflect.DeepEqual(l.IDs(), []postings.FileID{1}) {
		t.Errorf("new -> %v", l)
	}
	if l := ix.Lookup("stays"); !reflect.DeepEqual(l.IDs(), []postings.FileID{1, 2}) {
		t.Errorf("stays -> %v", l.IDs())
	}
}

// Property: removing every file one at a time empties the index, and after
// each removal the index equals one built from scratch without that file.
func TestRemoveFileMatchesRebuild(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := map[postings.FileID][]string{}
		nFiles := 2 + rng.Intn(10)
		for f := 0; f < nFiles; f++ {
			n := 1 + rng.Intn(5)
			seen := map[string]bool{}
			var terms []string
			for len(terms) < n {
				w := fmt.Sprintf("w%d", rng.Intn(8))
				if !seen[w] {
					seen[w] = true
					terms = append(terms, w)
				}
			}
			blocks[postings.FileID(f)] = terms
		}
		ix := New(0)
		for f := 0; f < nFiles; f++ {
			ix.AddBlock(postings.FileID(f), blocks[postings.FileID(f)], nil)
		}
		victim := postings.FileID(rng.Intn(nFiles))
		ix.RemoveFile(victim)

		rebuilt := New(0)
		for f := 0; f < nFiles; f++ {
			if postings.FileID(f) == victim {
				continue
			}
			rebuilt.AddBlock(postings.FileID(f), blocks[postings.FileID(f)], nil)
		}
		return ix.Equal(rebuilt) && ix.NumPostings() == rebuilt.NumPostings()
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRemoveAllFilesEmptiesIndex(t *testing.T) {
	ix := New(0)
	for f := postings.FileID(0); f < 20; f++ {
		ix.AddBlock(f, []string{"common", fmt.Sprintf("f%d", f)}, nil)
	}
	for f := postings.FileID(0); f < 20; f++ {
		ix.RemoveFile(f)
	}
	if ix.NumTerms() != 0 || ix.NumPostings() != 0 {
		t.Errorf("index not empty: %v", ix.Stats())
	}
}

func TestTopTerms(t *testing.T) {
	ix := New(0)
	ix.AddBlock(0, []string{"rare", "common", "medium"}, nil)
	ix.AddBlock(1, []string{"common", "medium"}, nil)
	ix.AddBlock(2, []string{"common"}, nil)
	top := ix.TopTerms(2)
	want := []TermCount{{Term: "common", Files: 3}, {Term: "medium", Files: 2}}
	if !reflect.DeepEqual(top, want) {
		t.Errorf("TopTerms = %v, want %v", top, want)
	}
	if got := ix.TopTerms(0); got != nil {
		t.Errorf("TopTerms(0) = %v", got)
	}
	if got := ix.TopTerms(100); len(got) != 3 {
		t.Errorf("TopTerms(100) returned %d", len(got))
	}
}

func TestTopTermsDeterministicTies(t *testing.T) {
	ix := New(0)
	ix.AddBlock(0, []string{"zebra", "apple", "mango"}, nil)
	top := ix.TopTerms(3)
	if top[0].Term != "apple" || top[1].Term != "mango" || top[2].Term != "zebra" {
		t.Errorf("tie order not alphabetical: %v", top)
	}
}
