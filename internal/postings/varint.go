package postings

import (
	"encoding/binary"
	"fmt"
)

// Frequency-section markers following the delta-coded IDs: listBoolean
// means every posting has frequency 1 and no count bytes follow;
// listCounted means one uvarint(frequency-1) per posting follows.
const (
	listBoolean = 0
	listCounted = 1
)

// Encode appends a compact encoding of the list to dst and returns it:
// a uvarint count, uvarint deltas between consecutive IDs, then a
// frequency-section marker and — for counted lists — uvarint(frequency-1)
// per posting. Delta coding exploits the sorted invariant; small gaps
// dominate in dense posting lists, making most deltas one byte, and the
// frequency-1 bias makes the overwhelmingly common single-occurrence
// posting cost one zero byte.
func (l *List) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(l.ids)))
	prev := FileID(0)
	for i, id := range l.ids {
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		dst = binary.AppendUvarint(dst, delta)
		prev = id
	}
	if l.counts == nil {
		return append(dst, listBoolean)
	}
	dst = append(dst, listCounted)
	for _, c := range l.counts {
		dst = binary.AppendUvarint(dst, uint64(c-1))
	}
	return dst
}

// Decode parses a list encoded by Encode from buf, returning the list and
// the number of bytes consumed.
func Decode(buf []byte) (*List, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("postings: corrupt count")
	}
	if count > uint64(len(buf)) { // each posting takes ≥1 byte
		return nil, 0, fmt.Errorf("postings: count %d exceeds buffer", count)
	}
	off := n
	l := &List{ids: make([]FileID, 0, count)}
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("postings: corrupt delta at %d", i)
		}
		off += n
		var id uint64
		if i == 0 {
			id = delta
		} else {
			id = prev + delta
			if delta == 0 {
				return nil, 0, fmt.Errorf("postings: zero delta at %d (duplicate id)", i)
			}
		}
		if id > 0xFFFF_FFFF {
			return nil, 0, fmt.Errorf("postings: id %d overflows FileID", id)
		}
		l.ids = append(l.ids, FileID(id))
		prev = id
	}
	if off >= len(buf) {
		return nil, 0, fmt.Errorf("postings: missing frequency marker")
	}
	marker := buf[off]
	off++
	switch marker {
	case listBoolean:
	case listCounted:
		l.counts = make([]uint32, 0, count)
		for i := uint64(0); i < count; i++ {
			c, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("postings: corrupt frequency at %d", i)
			}
			if c > 0xFFFF_FFFE {
				return nil, 0, fmt.Errorf("postings: frequency %d overflows at %d", c, i)
			}
			off += n
			l.counts = append(l.counts, uint32(c)+1)
		}
		l.normalize()
	default:
		return nil, 0, fmt.Errorf("postings: unknown frequency marker %d", marker)
	}
	return l, off, nil
}

// EncodedSize returns the exact number of bytes Encode will produce.
func (l *List) EncodedSize() int {
	size := uvarintLen(uint64(len(l.ids)))
	prev := FileID(0)
	for i, id := range l.ids {
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		size += uvarintLen(delta)
		prev = id
	}
	size++ // frequency marker
	for _, c := range l.counts {
		size += uvarintLen(uint64(c - 1))
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
