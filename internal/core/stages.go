package core

import (
	"fmt"
	"time"

	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/postings"
	"desksearch/internal/vfs"
	"desksearch/internal/walk"
)

// StageTimes holds the paper's Table 1 measurements: the isolated
// sequential cost of each pipeline component.
type StageTimes struct {
	// FilenameGen is the directory traversal alone.
	FilenameGen time.Duration
	// ReadFiles is the "empty scanner": reading every file with no term
	// extraction — the paper's probe for whether the program is I/O bound.
	ReadFiles time.Duration
	// ReadExtract is reading plus term extraction, still without updating
	// any index.
	ReadExtract time.Duration
	// IndexUpdate is inserting pre-extracted term blocks into a fresh
	// index, isolating Stage 3.
	IndexUpdate time.Duration
}

// MeasureStages reproduces the paper's Table 1 methodology on a live
// filesystem: each stage runs sequentially and in isolation.
func MeasureStages(fsys vfs.FS, root string, opts extract.Options) (StageTimes, error) {
	var st StageTimes

	start := time.Now()
	files, err := walk.List(fsys, root)
	if err != nil {
		return st, fmt.Errorf("core: stage 1: %w", err)
	}
	st.FilenameGen = time.Since(start)

	ex := extract.New(fsys, opts)

	start = time.Now()
	for _, f := range files {
		if _, err := ex.ReadOnly(f.Path); err != nil {
			return st, fmt.Errorf("core: read stage: %w", err)
		}
	}
	st.ReadFiles = time.Since(start)

	start = time.Now()
	for _, f := range files {
		if _, err := ex.ScanOnly(f.Path); err != nil {
			return st, fmt.Errorf("core: extract stage: %w", err)
		}
	}
	st.ReadExtract = time.Since(start)

	// Pre-extract all blocks, then time only the index insertion.
	blocks := make([]extract.TermBlock, 0, len(files))
	for i, f := range files {
		block, err := ex.File(f.Path, postings.FileID(i))
		if err != nil {
			return st, fmt.Errorf("core: block preparation: %w", err)
		}
		blocks = append(blocks, block)
	}
	ix := index.New(1 << 12)
	start = time.Now()
	for _, b := range blocks {
		if b.Positions != nil {
			ix.AddBlockPositional(b.File, b.Terms, b.Positions)
		} else {
			ix.AddBlock(b.File, b.Terms, b.Counts)
		}
	}
	st.IndexUpdate = time.Since(start)

	return st, nil
}
