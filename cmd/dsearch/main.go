// Command dsearch answers desktop-search queries from a saved index or by
// indexing a directory on the fly.
//
// Usage:
//
//	dsearch -index PATH  QUERY...
//	dsearch -root DIR [-shards N] [-formats]  QUERY...
//
// -index accepts either a single index file or a sharded index directory
// (a manifest plus segments, as written by indexgen -shards); -shards
// partitions an on-the-fly index for parallel fan-out search. With a
// sharded directory, -lazy opens the index in place (OpenDir) instead of
// materializing it: posting blocks decode on first touch only, so a
// selective query over a large index starts answering without paying the
// full load. Results are bit-identical either way.
//
// Queries are boolean: terms AND together, OR/NOT (or a leading '-'),
// parentheses, and quoted phrases work as expected:
//
//	dsearch -index idx 'quarterly report -draft'
//	dsearch -root docs -positions '"annual report" -draft'
//
// Quoted phrases match consecutive words only and need an index built
// with -positions (indexgen -positions, or dsearch -root -positions);
// against a position-free index they fail with a clear error. The shell
// usually requires wrapping a phrase query in single quotes.
//
// Retrieval runs through the Query API: -n and -offset page through the
// ranked results with bounded top-k retrieval per partition, -rank picks
// the scoring mode by name (count, tf, or bm25 — bm25 needs an index that
// records document lengths, which every fresh build does), -prefix
// restricts hits to a path prefix, -snippets prints a highlighted context
// window per hit (positional indexes only), and -timeout bounds the query
// via context cancellation. A trailing-wildcard term (repor*) matches every
// indexed term with that prefix; -suggest lists matching dictionary terms
// instead of searching.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"desksearch"
)

func main() {
	var (
		indexPath = flag.String("index", "", "read a saved index from this file or sharded directory")
		root      = flag.String("root", "", "index this directory before searching")
		shards    = flag.Int("shards", 0, "with -root, partition the index into N document shards")
		formats   = flag.Bool("formats", false, "strip HTML/WP markup while indexing")
		pos       = flag.Bool("positions", false, "with -root, record token positions so quoted phrase queries work")
		lazy      = flag.Bool("lazy", false, "with -index DIR, serve the index in place without materializing it (decode only the posting blocks the query touches)")
		limit     = flag.Int("n", 20, "maximum results to return (0 = all)")
		offset    = flag.Int("offset", 0, "skip this many ranked results (pagination)")
		rank      = flag.String("rank", "count", "ranking mode: count (distinct matched terms), tf (term frequency), or bm25 (relevance)")
		prefix    = flag.String("prefix", "", "only return hits whose path starts with this prefix")
		snippets  = flag.Bool("snippets", false, "print a highlighted context window per hit (needs a positional index)")
		suggest   = flag.Bool("suggest", false, "treat QUERY as a term prefix and list completions instead of searching")
		timeout   = flag.Duration("timeout", 0, "abort the query after this duration (0 = no limit)")
		verbose   = flag.Bool("v", false, "print per-partition match counts and timings")
		top       = flag.Int("top", 0, "print the N most frequent terms instead of searching")
	)
	flag.Parse()
	if (flag.NArg() == 0 && *top == 0) || (*indexPath == "") == (*root == "") {
		fmt.Fprintln(os.Stderr, "usage: dsearch (-index PATH | -root DIR) [-top N] QUERY...")
		os.Exit(2)
	}

	// Ranking names are the wire values the daemon accepts too; the legacy
	// integer forms keep old scripts working.
	ranking, err := desksearch.ParseRanking(*rank)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsearch: unknown -rank %q (want count, tf, or bm25)\n", *rank)
		os.Exit(2)
	}

	var cat *desksearch.Catalog
	switch {
	case *indexPath != "":
		cat, err = loadIndex(*indexPath, *lazy)
	default:
		if *lazy {
			fmt.Fprintln(os.Stderr, "dsearch: -lazy requires -index DIR (an on-the-fly index is already in memory)")
			os.Exit(2)
		}
		cat, err = desksearch.IndexDir(*root, desksearch.Options{Formats: *formats, Shards: *shards, Positions: *pos})
	}
	if err != nil {
		fatal(err)
	}

	if *top > 0 {
		fmt.Printf("%d most frequent terms:\n", *top)
		for _, tc := range cat.TopTerms(*top) {
			fmt.Printf("%6d  %s\n", tc.Files, tc.Term)
		}
		if flag.NArg() == 0 {
			return
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	query := strings.Join(flag.Args(), " ")
	if *suggest {
		n := *limit
		if n <= 0 {
			n = 10
		}
		sugs, err := cat.Suggest(ctx, query, n)
		if err != nil {
			fatal(err)
		}
		if len(sugs) == 0 {
			fmt.Printf("no completions for %q\n", query)
			return
		}
		for _, sg := range sugs {
			fmt.Printf("%6d  %s\n", sg.Files, sg.Term)
		}
		return
	}
	// Snippets require a bounded page; give the flag a sane one when the
	// user asked for every hit.
	snipLimit := *limit
	if *snippets && snipLimit <= 0 {
		snipLimit = 20
	}
	resp, err := cat.Query(ctx, desksearch.Query{
		Text:       query,
		Limit:      snipLimit,
		Offset:     *offset,
		Ranking:    ranking,
		PathPrefix: *prefix,
		Snippets:   *snippets,
	})
	if err != nil {
		fatal(err)
	}
	if resp.Total == 0 {
		fmt.Printf("no matches for %q\n", query)
		return
	}
	fmt.Printf("%d matches for %q", resp.Total, query)
	switch {
	case len(resp.Hits) == 0:
		fmt.Printf(" (page at offset %d is empty)", *offset)
	case len(resp.Hits) < resp.Total:
		fmt.Printf(" (showing %d-%d)", *offset+1, *offset+len(resp.Hits))
	}
	fmt.Println(":")
	for _, h := range resp.Hits {
		fmt.Printf("%8s. %s\n", formatScore(h.Score), h.Path)
		if h.Snippet != nil {
			fmt.Printf("          ...%s...\n", highlightSnippet(h.Snippet))
		}
	}
	if *verbose {
		for _, p := range resp.Partitions {
			fmt.Printf("partition %d: %d matched in %s\n", p.Partition, p.Matched, p.Duration.Round(time.Microsecond))
		}
	}
}

// formatScore prints integral scores (count and tf modes) without a
// fractional tail and BM25 scores with enough precision to compare.
func formatScore(s float64) string {
	if s == math.Trunc(s) {
		return strconv.FormatFloat(s, 'f', 0, 64)
	}
	return strconv.FormatFloat(s, 'f', 3, 64)
}

// highlightSnippet brackets the snippet's highlighted spans for terminal
// output: "the [annual] [report] for" — spans arrive ascending and
// non-overlapping, so a single left-to-right pass suffices.
func highlightSnippet(sn *desksearch.Snippet) string {
	var b strings.Builder
	last := 0
	for _, sp := range sn.Highlights {
		b.WriteString(sn.Text[last:sp.Start])
		b.WriteByte('[')
		b.WriteString(sn.Text[sp.Start:sp.End])
		b.WriteByte(']')
		last = sp.End
	}
	b.WriteString(sn.Text[last:])
	return b.String()
}

// loadIndex reads a catalog from path: a sharded index directory when path
// is a directory (opened in place when lazy), a single index file
// otherwise.
func loadIndex(path string, lazy bool) (*desksearch.Catalog, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		if lazy {
			return desksearch.OpenDir(path)
		}
		return desksearch.LoadDir(path)
	}
	if lazy {
		return nil, fmt.Errorf("-lazy requires a sharded index directory, not a single index file")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desksearch.Load(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsearch:", err)
	os.Exit(1)
}
