// Autotuning: explore the (x, y, z) thread-configuration space the way the
// paper did with the Schäfer et al. auto-tuner.
//
// The example tunes Implementation 2 (replicate + join) on two simulated
// platforms, comparing an exhaustive sweep against greedy hill climbing,
// and shows that the optimum is platform-specific — the paper's central
// lesson.
//
// Run with:
//
//	go run ./examples/autotuning
package main

import (
	"fmt"
	"log"

	"desksearch/internal/autotune"
	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
	"desksearch/internal/simmodel"
)

func main() {
	cs := corpus.Describe(corpus.PaperSpec())
	im := core.ReplicatedJoin

	for _, p := range []platform.Profile{platform.QuadCore(), platform.Manycore32()} {
		obj := autotune.Memoized(autotune.SimObjective(p, cs, simmodel.Options{Batch: 16, Jitter: 0.01, Seed: 1}, 3))
		space := autotune.DefaultSpace(im, p.Cores)

		exhaustive, err := autotune.Exhaustive(space, obj, autotune.Options{})
		if err != nil {
			log.Fatal(err)
		}

		start := core.Config{Implementation: im, Extractors: 2, Updaters: 2, Joiners: 1}
		climbed, err := autotune.HillClimb(space, start, obj, 64, autotune.Options{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s — tuning %s\n", p.Name, im)
		fmt.Printf("  exhaustive: best %-10s %.1fs after %3d evaluations\n",
			exhaustive.Config.Tuple(), exhaustive.Cost, exhaustive.Evaluated)
		fmt.Printf("  hill climb: best %-10s %.1fs after %3d evaluations (%.1f%% off optimum)\n\n",
			climbed.Config.Tuple(), climbed.Cost, climbed.Evaluated,
			100*(climbed.Cost-exhaustive.Cost)/exhaustive.Cost)
	}

	fmt.Println("Different machines, different optima — measure, don't guess (paper §5).")
}
