// Package postings implements the posting lists of the inverted index:
// for each term, the list of files that contain it.
//
// The paper's design inserts one term block per file, with the guarantee
// that each file is scanned exactly once; a posting list therefore never
// sees the same file twice during generation, and duplicate checking — the
// linear search the paper's analysis eliminates — is only needed when lists
// from different runs are merged. Lists keep file IDs sorted so that merge,
// intersection, and union run in linear time.
package postings

import "sort"

// FileID identifies a file in the indexed corpus. IDs are assigned by
// Stage 1 (filename generation) in traversal order.
type FileID uint32

// List is a posting list: a sorted set of FileIDs.
//
// The zero value is an empty list. Lists built exclusively through Add with
// the generator's one-block-per-file discipline stay sorted for free when
// IDs arrive in order; Add handles out-of-order arrival (as happens with
// parallel extractors) by insertion.
type List struct {
	ids []FileID
}

// FromIDs builds a list from ids, sorting and deduplicating as needed.
func FromIDs(ids []FileID) *List {
	l := &List{ids: append([]FileID(nil), ids...)}
	sort.Slice(l.ids, func(i, j int) bool { return l.ids[i] < l.ids[j] })
	l.dedupSorted()
	return l
}

// FromSortedIDs builds a list from ids, which must already be strictly
// ascending (the invariant of every posting list's own IDs). It copies but
// skips the sort and dedup FromIDs pays.
func FromSortedIDs(ids []FileID) *List {
	return &List{ids: append([]FileID(nil), ids...)}
}

func (l *List) dedupSorted() {
	out := l.ids[:0]
	for i, id := range l.ids {
		if i == 0 || id != l.ids[i-1] {
			out = append(out, id)
		}
	}
	l.ids = out
}

// Len returns the number of postings.
func (l *List) Len() int { return len(l.ids) }

// IDs returns the postings in ascending order. The returned slice is the
// list's backing storage; callers must not modify it.
func (l *List) IDs() []FileID { return l.ids }

// Contains reports whether id is in the list.
func (l *List) Contains(id FileID) bool {
	i := sort.Search(len(l.ids), func(i int) bool { return l.ids[i] >= id })
	return i < len(l.ids) && l.ids[i] == id
}

// Add inserts id, keeping the list sorted and duplicate-free. The common
// fast path — id greater than every present posting — is O(1) amortized.
func (l *List) Add(id FileID) {
	n := len(l.ids)
	if n == 0 || id > l.ids[n-1] {
		l.ids = append(l.ids, id)
		return
	}
	i := sort.Search(n, func(i int) bool { return l.ids[i] >= id })
	if i < n && l.ids[i] == id {
		return
	}
	l.ids = append(l.ids, 0)
	copy(l.ids[i+1:], l.ids[i:])
	l.ids[i] = id
}

// Merge destructively merges other into l (set union) and returns l.
// The two-pointer merge is linear in the combined length.
func (l *List) Merge(other *List) *List {
	if other == nil || len(other.ids) == 0 {
		return l
	}
	if len(l.ids) == 0 {
		l.ids = append(l.ids, other.ids...)
		return l
	}
	// Fast path: disjoint ranges, the usual case when replicas own
	// round-robin slices of the corpus.
	if l.ids[len(l.ids)-1] < other.ids[0] {
		l.ids = append(l.ids, other.ids...)
		return l
	}
	if other.ids[len(other.ids)-1] < l.ids[0] {
		merged := make([]FileID, 0, len(l.ids)+len(other.ids))
		merged = append(merged, other.ids...)
		merged = append(merged, l.ids...)
		l.ids = merged
		return l
	}
	merged := make([]FileID, 0, len(l.ids)+len(other.ids))
	i, j := 0, 0
	for i < len(l.ids) && j < len(other.ids) {
		a, b := l.ids[i], other.ids[j]
		switch {
		case a < b:
			merged = append(merged, a)
			i++
		case b < a:
			merged = append(merged, b)
			j++
		default:
			merged = append(merged, a)
			i++
			j++
		}
	}
	merged = append(merged, l.ids[i:]...)
	merged = append(merged, other.ids[j:]...)
	l.ids = merged
	return l
}

// Clone returns an independent copy of the list.
func (l *List) Clone() *List {
	return &List{ids: append([]FileID(nil), l.ids...)}
}

// Equal reports whether two lists hold the same postings.
func (l *List) Equal(other *List) bool {
	if l.Len() != other.Len() {
		return false
	}
	for i, id := range l.ids {
		if other.ids[i] != id {
			return false
		}
	}
	return true
}

// Intersect returns the postings common to a and b (boolean AND).
func Intersect(a, b *List) *List {
	small, large := a, b
	if small.Len() > large.Len() {
		small, large = large, small
	}
	out := &List{}
	// Galloping search pays off when sizes are skewed, the common case for
	// query terms of very different frequency.
	if large.Len() > 8*small.Len() {
		lo := 0
		for _, id := range small.ids {
			i := lo + sort.Search(len(large.ids)-lo, func(i int) bool { return large.ids[lo+i] >= id })
			if i < len(large.ids) && large.ids[i] == id {
				out.ids = append(out.ids, id)
			}
			lo = i
			if lo >= len(large.ids) {
				break
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(small.ids) && j < len(large.ids) {
		a, b := small.ids[i], large.ids[j]
		switch {
		case a < b:
			i++
		case b < a:
			j++
		default:
			out.ids = append(out.ids, a)
			i++
			j++
		}
	}
	return out
}

// Union returns all postings in a or b (boolean OR).
func Union(a, b *List) *List {
	return a.Clone().Merge(b)
}

// Difference returns the postings in a but not in b (boolean AND NOT).
func Difference(a, b *List) *List {
	out := &List{ids: make([]FileID, 0, a.Len())}
	i, j := 0, 0
	for i < len(a.ids) {
		for j < len(b.ids) && b.ids[j] < a.ids[i] {
			j++
		}
		if j >= len(b.ids) || b.ids[j] != a.ids[i] {
			out.ids = append(out.ids, a.ids[i])
		}
		i++
	}
	return out
}
