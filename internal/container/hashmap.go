package container

import "desksearch/internal/fnv"

const (
	mapInitialBuckets = 16
	// The map grows when entries exceed buckets (load factor 1.0), matching
	// the default max_load_factor of Boost's unordered_map.
	mapMaxLoad = 1
)

// HashMap is a string-keyed hash map with separate chaining, the index
// structure of the paper's generator (a stand-in for Boost unordered_map
// keyed by FNV-1). V is the value type; the inverted index stores posting
// lists.
type HashMap[V any] struct {
	buckets []*mapEntry[V]
	n       int
}

type mapEntry[V any] struct {
	key  string
	hash uint32
	val  V
	next *mapEntry[V]
}

// NewHashMap returns a map sized for about capacity entries.
func NewHashMap[V any](capacity int) *HashMap[V] {
	buckets := mapInitialBuckets
	for buckets*mapMaxLoad < capacity {
		buckets *= 2
	}
	return &HashMap[V]{buckets: make([]*mapEntry[V], buckets)}
}

// Len returns the number of entries.
func (m *HashMap[V]) Len() int { return m.n }

// Get returns the value for key and whether it is present.
func (m *HashMap[V]) Get(key string) (V, bool) {
	h := fnv.Hash32(key)
	for e := m.buckets[h&uint32(len(m.buckets)-1)]; e != nil; e = e.next {
		if e.hash == h && e.key == key {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// Put sets key to val, replacing any existing value.
func (m *HashMap[V]) Put(key string, val V) {
	h := fnv.Hash32(key)
	b := h & uint32(len(m.buckets)-1)
	for e := m.buckets[b]; e != nil; e = e.next {
		if e.hash == h && e.key == key {
			e.val = val
			return
		}
	}
	if m.n+1 > len(m.buckets)*mapMaxLoad {
		m.grow()
		b = h & uint32(len(m.buckets)-1)
	}
	m.buckets[b] = &mapEntry[V]{key: key, hash: h, val: val, next: m.buckets[b]}
	m.n++
}

// GetOrPut returns the value for key, inserting mk() first if absent.
// The hot path of index update: one hash, one probe, one optional insert.
func (m *HashMap[V]) GetOrPut(key string, mk func() V) V {
	h := fnv.Hash32(key)
	b := h & uint32(len(m.buckets)-1)
	for e := m.buckets[b]; e != nil; e = e.next {
		if e.hash == h && e.key == key {
			return e.val
		}
	}
	if m.n+1 > len(m.buckets)*mapMaxLoad {
		m.grow()
		b = h & uint32(len(m.buckets)-1)
	}
	v := mk()
	m.buckets[b] = &mapEntry[V]{key: key, hash: h, val: v, next: m.buckets[b]}
	m.n++
	return v
}

// Update replaces the value for key with f(old, present) and returns the new
// value. It performs exactly one lookup.
func (m *HashMap[V]) Update(key string, f func(old V, present bool) V) V {
	h := fnv.Hash32(key)
	b := h & uint32(len(m.buckets)-1)
	for e := m.buckets[b]; e != nil; e = e.next {
		if e.hash == h && e.key == key {
			e.val = f(e.val, true)
			return e.val
		}
	}
	if m.n+1 > len(m.buckets)*mapMaxLoad {
		m.grow()
		b = h & uint32(len(m.buckets)-1)
	}
	var zero V
	v := f(zero, false)
	m.buckets[b] = &mapEntry[V]{key: key, hash: h, val: v, next: m.buckets[b]}
	m.n++
	return v
}

// Delete removes key and reports whether it was present.
func (m *HashMap[V]) Delete(key string) bool {
	h := fnv.Hash32(key)
	b := h & uint32(len(m.buckets)-1)
	for p := &m.buckets[b]; *p != nil; p = &(*p).next {
		if e := *p; e.hash == h && e.key == key {
			*p = e.next
			m.n--
			return true
		}
	}
	return false
}

// Range calls f for every entry until f returns false. Iteration order is
// unspecified. The map must not be modified during Range.
func (m *HashMap[V]) Range(f func(key string, val V) bool) {
	for _, e := range m.buckets {
		for ; e != nil; e = e.next {
			if !f(e.key, e.val) {
				return
			}
		}
	}
}

// Keys appends all keys to dst (unspecified order) and returns it.
func (m *HashMap[V]) Keys(dst []string) []string {
	m.Range(func(k string, _ V) bool {
		dst = append(dst, k)
		return true
	})
	return dst
}

func (m *HashMap[V]) grow() {
	old := m.buckets
	m.buckets = make([]*mapEntry[V], len(old)*2)
	mask := uint32(len(m.buckets) - 1)
	for _, e := range old {
		for e != nil {
			next := e.next
			b := e.hash & mask
			e.next = m.buckets[b]
			m.buckets[b] = e
			e = next
		}
	}
}
