package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ds_queries_total", "Total queries.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	out := render(r)
	want := "# HELP ds_queries_total Total queries.\n" +
		"# TYPE ds_queries_total counter\n" +
		"ds_queries_total 5\n"
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestCounterVecSharesChildren(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("ds_requests_total", "Requests by endpoint and outcome.", "endpoint", "outcome")
	cv.With("search", "ok").Inc()
	cv.With("search", "ok").Inc()
	cv.With("search", "error").Inc()
	cv.With("suggest", "ok").Add(3)

	out := render(r)
	for _, line := range []string{
		`ds_requests_total{endpoint="search",outcome="ok"} 2`,
		`ds_requests_total{endpoint="search",outcome="error"} 1`,
		`ds_requests_total{endpoint="suggest",outcome="ok"} 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
	// Children render in first-use order, so output is deterministic.
	if i, j := strings.Index(out, `outcome="ok"} 2`), strings.Index(out, `outcome="error"}`); i > j {
		t.Errorf("label sets not in first-use order:\n%s", out)
	}
}

func TestCounterVecArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("ds_x_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label arity mismatch")
		}
	}()
	cv.With("only-one")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ds_dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.NewCounter("ds_dup", "second")
}

func TestGaugeAndFuncMetrics(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("ds_cache_bytes", "Resident cache bytes.")
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatalf("Value = %v, want 1.5", g.Value())
	}
	g.Set(4096)

	var hits float64 = 7
	r.NewCounterFunc("ds_cache_hits_total", "Cache hits.", func() float64 { return hits })
	r.NewGaugeFunc("ds_generation", "Reload generation.", func() float64 { return 3 })

	out := render(r)
	for _, line := range []string{
		"# TYPE ds_cache_bytes gauge",
		"ds_cache_bytes 4096",
		"# TYPE ds_cache_hits_total counter",
		"ds_cache_hits_total 7",
		"# TYPE ds_generation gauge",
		"ds_generation 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
	// Func metrics sample at scrape time: a later change must show up.
	hits = 9
	if !strings.Contains(render(r), "ds_cache_hits_total 9\n") {
		t.Errorf("func counter did not re-sample:\n%s", render(r))
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("ds_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	out := render(r)
	want := "# HELP ds_latency_seconds Latency.\n" +
		"# TYPE ds_latency_seconds histogram\n" +
		"ds_latency_seconds_bucket{le=\"0.001\"} 1\n" +
		"ds_latency_seconds_bucket{le=\"0.01\"} 3\n" +
		"ds_latency_seconds_bucket{le=\"0.1\"} 4\n" +
		"ds_latency_seconds_bucket{le=\"+Inf\"} 5\n" +
		"ds_latency_seconds_sum 5.0605\n" +
		"ds_latency_seconds_count 5\n"
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("ds_h", "h", []float64{1, 2})
	h.Observe(1) // exactly on a bound counts in that bucket (le semantics)
	out := render(r)
	if !strings.Contains(out, `ds_h_bucket{le="1"} 1`+"\n") {
		t.Fatalf("observation at bound not counted le-inclusively:\n%s", out)
	}
}

func TestHelpAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("ds_esc", "line1\nline2 with \\ slash", "q")
	cv.With(`he said "hi"` + "\nbye").Inc()
	out := render(r)
	if !strings.Contains(out, `# HELP ds_esc line1\nline2 with \\ slash`+"\n") {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `ds_esc{q="he said \"hi\"\nbye"} 1`+"\n") {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ds_c", "c")
	cv := r.NewCounterVec("ds_cv", "cv", "k")
	h := r.NewHistogram("ds_hist", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				cv.With("a").Inc()
				h.Observe(float64(j) / 1000)
				if j%100 == 0 {
					render(r)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if !strings.Contains(render(r), `ds_cv{k="a"} 8000`+"\n") {
		t.Fatalf("vec child lost increments:\n%s", render(r))
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ds_one", "one").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain prefix", ct)
	}
	if !strings.Contains(rec.Body.String(), "ds_one 1\n") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}
