// Package stats provides the measurement utilities behind the experiment
// harness: repeated-run samples, summary statistics, speed-up computation,
// and the fixed-width text tables all experiment output is rendered with.
//
// The paper runs every configuration five times per platform and reports
// averages plus a relative "variance" column (relative difference of an
// implementation's speed-up to Implementation 1's); Sample and RelDiff
// implement exactly those computations.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates repeated measurements of one quantity.
type Sample struct {
	values []float64
}

// Add appends a measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddDuration appends a time measurement in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// measurements).
func (s *Sample) Variance() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.values {
		d := v - m
		acc += d * d
	}
	return acc / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest measurement, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Median returns the middle measurement (mean of the two middle ones for
// even sizes), or 0 for an empty sample.
func (s *Sample) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Values returns a copy of the measurements in insertion order.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.values...) }

// Speedup returns baseline/measured — the paper's speed-up definition
// (sequential time over parallel time). It returns 0 when measured is 0.
func Speedup(baseline, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return baseline / measured
}

// RelDiff returns (v-ref)/ref, the paper's "variance" column: the relative
// difference of an implementation's speed-up from the reference
// implementation's. It returns 0 when ref is 0.
func RelDiff(v, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return (v - ref) / ref
}

// Measure runs f once and returns the wall-clock duration.
func Measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// MeasureN runs f reps times and returns the sample of durations in seconds.
func MeasureN(reps int, f func()) *Sample {
	s := &Sample{}
	for i := 0; i < reps; i++ {
		s.AddDuration(Measure(f))
	}
	return s
}

// FormatSeconds renders a duration in seconds with one decimal, the paper's
// table format ("46.7").
func FormatSeconds(seconds float64) string { return fmt.Sprintf("%.1f", seconds) }

// FormatSpeedup renders a speed-up with two decimals ("4.71").
func FormatSpeedup(s float64) string { return fmt.Sprintf("%.2f", s) }

// FormatPercent renders a relative difference as a signed percentage with
// one decimal ("+16.5%", "0.0%").
func FormatPercent(p float64) string {
	pct := p * 100
	if pct == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}
