package search

import "testing"

// FuzzParse exercises the extended query grammar (terms, AND/OR/NOT,
// parentheses, '-' negation, quoted phrases) with arbitrary input. Two
// properties must hold for every input:
//
//  1. Parse never panics — it returns a query or an error;
//  2. the canonical form is a fixed point: rendering a parsed query and
//     parsing it again yields the same canonical form. Cache keys
//     (Query.Normalize) and the server's result cache depend on this
//     stability.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"cat",
		"cat dog",
		"cat AND dog",
		"cat OR dog",
		"NOT cat",
		"-draft report",
		"(cat OR dog) food",
		`"annual report"`,
		`"annual report" -draft`,
		`"a b c" OR (d -e)`,
		`""`,
		`"unterminated`,
		"((((x))))",
		"e-mail",
		"Cat!",
		"OR OR",
		") (",
		`-"bad press"`,
		"\x00\xff",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		canonical := q.String()
		again, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canonical, text, err)
		}
		if again.String() != canonical {
			t.Fatalf("canonical form unstable: %q → %q → %q", text, canonical, again.String())
		}
		// Positive terms must be identical across the round trip — ranking
		// and matched-term metadata depend on them.
		a, b := q.Terms(), again.Terms()
		if len(a) != len(b) {
			t.Fatalf("positive terms changed: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("positive terms changed: %v vs %v", a, b)
			}
		}
	})
}
