package desksearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"desksearch/internal/shard"
	"desksearch/internal/vfs"
)

// corpusFS generates a deterministic synthetic corpus big enough to give
// prefix expansion, BM25 statistics, and phrase evaluation real work.
func corpusFS(t testing.TB, nFiles int) *vfs.MemFS {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	vocab := []string{
		"report", "reporting", "reported", "quarterly", "annual", "draft",
		"final", "review", "milk", "flour", "pancake", "allergy", "budget",
		"forecast", "revenue", "index", "search", "parallel", "thread",
	}
	fs := vfs.NewMemFS()
	for i := 0; i < nFiles; i++ {
		var words []string
		n := 5 + rng.Intn(40)
		for w := 0; w < n; w++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		if i%7 == 0 {
			words = append(words, "annual", "report") // phrase material
		}
		name := fmt.Sprintf("dir%d/file%03d.txt", i%5, i)
		if err := fs.WriteFile(name, []byte(strings.Join(words, " "))); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// equalResponses requires r1 and r2 to agree bit-for-bit where it matters:
// paths, scores under math.Float64bits, matched terms, totals, and
// snippets. Partition timings are excluded (wall-clock) but partition
// match counts must agree.
func equalResponses(t *testing.T, label string, r1, r2 *Response) {
	t.Helper()
	if r1.Total != r2.Total {
		t.Fatalf("%s: Total %d vs %d", label, r1.Total, r2.Total)
	}
	if len(r1.Hits) != len(r2.Hits) {
		t.Fatalf("%s: %d vs %d hits", label, len(r1.Hits), len(r2.Hits))
	}
	for i := range r1.Hits {
		h1, h2 := r1.Hits[i], r2.Hits[i]
		if h1.Path != h2.Path {
			t.Fatalf("%s: hit %d path %q vs %q", label, i, h1.Path, h2.Path)
		}
		if math.Float64bits(h1.Score) != math.Float64bits(h2.Score) {
			t.Fatalf("%s: hit %d (%s) score bits %x vs %x (%v vs %v)",
				label, i, h1.Path, math.Float64bits(h1.Score), math.Float64bits(h2.Score), h1.Score, h2.Score)
		}
		if fmt.Sprint(h1.Terms) != fmt.Sprint(h2.Terms) {
			t.Fatalf("%s: hit %d terms %v vs %v", label, i, h1.Terms, h2.Terms)
		}
		s1, s2 := h1.Snippet, h2.Snippet
		if (s1 == nil) != (s2 == nil) {
			t.Fatalf("%s: hit %d snippet presence %v vs %v", label, i, s1 != nil, s2 != nil)
		}
		if s1 != nil && (s1.Text != s2.Text || fmt.Sprint(s1.Highlights) != fmt.Sprint(s2.Highlights)) {
			t.Fatalf("%s: hit %d snippet %+v vs %+v", label, i, s1, s2)
		}
	}
	for i := range r1.Partitions {
		if r1.Partitions[i].Matched != r2.Partitions[i].Matched {
			t.Fatalf("%s: partition %d matched %d vs %d",
				label, i, r1.Partitions[i].Matched, r2.Partitions[i].Matched)
		}
	}
}

// TestLazyBackendEquality is the refactor's property test: every query
// shape, against heap-loaded and lazily opened views of the same saved
// catalog, must answer identically down to the score bits — across
// catalogs saved fresh, sharded, and positional.
func TestLazyBackendEquality(t *testing.T) {
	queries := []Query{
		{Text: "report"},
		{Text: "quarterly report -draft"},
		{Text: "milk OR flour", Ranking: RankTF},
		{Text: "repor*", Ranking: RankBM25, Limit: 25},
		{Text: "(annual OR quarterly) report", Ranking: RankBM25, Limit: 10, Offset: 5},
		{Text: `"annual report"`, Ranking: RankBM25, Limit: 20},
		{Text: `"annual report" -flour`, Ranking: RankCount},
		{Text: "report", PathPrefix: "dir2/", Ranking: RankBM25, Limit: 50},
		{Text: "rev* forecast", Ranking: RankBM25, Limit: 15},
		{Text: "report -nonexistentterm", Limit: 30, Ranking: RankTF},
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"single", 0},
		{"sharded", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := corpusFS(t, 120)
			opt := Options{Positions: true, Shards: tc.shards}
			built, err := IndexFS(fs, ".", opt)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := built.SaveDir(dir); err != nil {
				t.Fatal(err)
			}
			heap, err := LoadDir(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			lazy, err := OpenDir(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer lazy.Close()
			if !lazy.Lazy() || heap.Lazy() {
				t.Fatalf("Lazy() = %v/%v, want true/false", lazy.Lazy(), heap.Lazy())
			}

			for _, q := range queries {
				wantSnips := q.Limit > 0
				q.Snippets = wantSnips
				label := fmt.Sprintf("%q rank=%s", q.Text, q.Ranking)
				rh, err := heap.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("%s heap: %v", label, err)
				}
				rl, err := lazy.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("%s lazy: %v", label, err)
				}
				equalResponses(t, label, rh, rl)
			}

			// Suggestions are dictionary walks — must agree exactly too.
			sh, err := heap.Suggest(context.Background(), "repor", 10)
			if err != nil {
				t.Fatal(err)
			}
			sl, err := lazy.Suggest(context.Background(), "repor", 10)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(sh) != fmt.Sprint(sl) {
				t.Fatalf("Suggest: heap %v vs lazy %v", sh, sl)
			}

			// Catalog statistics agree (terms exactly; postings exactly).
			hs, ls := heap.Stats(), lazy.Stats()
			if hs.Files != ls.Files || hs.Terms != ls.Terms || hs.Postings != ls.Postings {
				t.Fatalf("Stats: heap %+v vs lazy %+v", hs, ls)
			}
			if heap.Shards() != lazy.Shards() || heap.Indices() != lazy.Indices() {
				t.Fatalf("shape: heap %d shards/%d indices vs lazy %d/%d",
					heap.Shards(), heap.Indices(), lazy.Shards(), lazy.Indices())
			}
			if fmt.Sprint(heap.TopTerms(8)) != fmt.Sprint(lazy.TopTerms(8)) {
				t.Fatalf("TopTerms: heap %v vs lazy %v", heap.TopTerms(8), lazy.TopTerms(8))
			}
		})
	}
}

// TestOpenDirIsLazy pins the cold-start contract at the API level: opening
// a directory decodes zero posting blocks; the first query touches only
// the blocks it needs.
func TestOpenDirIsLazy(t *testing.T) {
	fs := corpusFS(t, 80)
	built, err := IndexFS(fs, ".", Options{Shards: 3, Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	set, err := shard.OpenDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	decodes := func() (n uint64) {
		for _, r := range set.Readers() {
			n += r.BlockDecodes()
		}
		return
	}
	if n := decodes(); n != 0 {
		t.Fatalf("OpenDir decoded %d posting blocks, want 0", n)
	}
	// Statistics come from the dictionaries alone.
	set.Stats()
	if n := decodes(); n != 0 {
		t.Fatalf("Stats decoded %d posting blocks, want 0", n)
	}
}

// TestLazyEvaluationDecodesFewerBlocks pins the streaming evaluator's
// cost claim: a selective AND and a BM25 top-k on a lazy catalog must
// decode strictly fewer posting blocks than the full traversal the
// pre-iterator evaluator paid (one block per query term per shard that
// holds it) — and, as implemented, exactly zero: boolean intersection
// rides SeekGE over the skip tables and scoring streams the frequency
// sections, so no posting block is ever materialized.
func TestLazyEvaluationDecodesFewerBlocks(t *testing.T) {
	fs := corpusFS(t, 200)
	built, err := IndexFS(fs, ".", Options{Shards: 3, Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenDir(dir, Options{Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	readers := cat.lazy.Readers()
	decodes := func() (n uint64) {
		for _, r := range readers {
			n += r.BlockDecodes()
		}
		return
	}

	// The eager full-list path's cost, computed from the dictionaries:
	// Lookup-driven evaluation decodes each query term's block on every
	// shard that holds the term.
	terms := []string{"milk", "report"}
	var full uint64
	for _, term := range terms {
		for _, r := range readers {
			if r.DocFreq(term) > 0 {
				full++
			}
		}
	}
	if full == 0 {
		t.Fatal("corpus holds none of the query terms; the baseline is vacuous")
	}

	run := func(label string, q Query) uint64 {
		t.Helper()
		before := decodes()
		if _, err := cat.Query(context.Background(), q); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return decodes() - before
	}
	andCost := run("selective AND", Query{Text: "milk report", Limit: 10})
	wandCost := run("WAND top-k", Query{Text: "milk report", Ranking: RankBM25, Limit: 10})

	if andCost >= full {
		t.Errorf("selective AND decoded %d blocks, want < %d (full traversal)", andCost, full)
	}
	if wandCost >= full {
		t.Errorf("BM25 top-k decoded %d blocks, want < %d (full traversal)", wandCost, full)
	}
	if andCost != 0 || wandCost != 0 {
		t.Errorf("streaming evaluation decoded %d (AND) / %d (BM25) blocks, want 0: boolean and scoring paths must not materialize posting lists", andCost, wandCost)
	}
}

func TestLazyCatalogIsReadOnly(t *testing.T) {
	fs := corpusFS(t, 20)
	built, err := IndexFS(fs, ".", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	if err := cat.SaveDir(t.TempDir()); !errors.Is(err, ErrReadOnly) {
		t.Errorf("SaveDir = %v, want ErrReadOnly", err)
	}
	if err := cat.Save(&strings.Builder{}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Save = %v, want ErrReadOnly", err)
	}
	if _, err := cat.Update(fs, "."); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Update = %v, want ErrReadOnly", err)
	}
	cs, err := cat.Diff(fs, ".") // Diff is read-only and keeps working
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if _, err := cat.Apply(fs, cs); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Apply = %v, want ErrReadOnly", err)
	}
}

// TestLoadDirLazyOption checks the Options.Lazy delegation and the legacy
// fallback: OpenDir on a pre-v10 directory loads eagerly but still works.
func TestLoadDirLazyOption(t *testing.T) {
	fs := corpusFS(t, 30)
	built, err := IndexFS(fs, ".", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	cat, err := LoadDir(dir, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if !cat.Lazy() {
		t.Fatal("LoadDir(Options{Lazy:true}) produced a heap catalog")
	}
	if len(queryAll(t, cat, "report")) == 0 {
		t.Fatal("lazy catalog found nothing for a common term")
	}
}

// TestLazySwap exercises dsearchd's full-reload path on a lazy catalog:
// swapping in a fresh heap catalog must retire the mappings and serve the
// new contents.
func TestLazySwap(t *testing.T) {
	fs := corpusFS(t, 40)
	built, err := IndexFS(fs, ".", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	gen := cat.Generation()

	fresh, err := IndexFS(demoFS(t), ".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat.Swap(fresh)
	if cat.Lazy() {
		t.Fatal("catalog still lazy after swapping in a heap catalog")
	}
	if cat.Generation() == gen {
		t.Fatal("Swap did not advance the generation")
	}
	hits := queryAll(t, cat, "pancakes")
	if len(hits) != 1 || hits[0].Path != "misc/recipe.txt" {
		t.Fatalf("post-swap query = %v", hits)
	}
}

// TestLazyQuerySwapRace hammers concurrent queries, suggestions, and stats
// against Swap and Close on a segment-backed engine — the race-detector
// test for the lazy read path (run under -race in CI).
func TestLazyQuerySwapRace(t *testing.T) {
	fs := corpusFS(t, 60)
	built, err := IndexFS(fs, ".", Options{Shards: 3, Positions: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qs := []string{"report", "repor*", `"annual report"`, "milk OR flour -draft"}
			for i := 0; i < rounds; i++ {
				q := Query{Text: qs[(g+i)%len(qs)], Ranking: RankBM25, Limit: 10, Snippets: true}
				if _, err := cat.Query(context.Background(), q); err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if _, err := cat.Suggest(context.Background(), "re", 5); err != nil {
					t.Errorf("suggest: %v", err)
					return
				}
				cat.PartitionBytes()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			replacement, err := OpenDir(dir)
			if err != nil {
				t.Errorf("reopen: %v", err)
				return
			}
			cat.Swap(replacement)
		}
	}()
	wg.Wait()
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
}
