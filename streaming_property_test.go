package desksearch

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"desksearch/internal/index"
	"desksearch/internal/postings"
	"desksearch/internal/search"
	"desksearch/internal/vfs"
)

// eagerPartition forces full-list evaluation: its Iterator materializes
// the complete posting list via Lookup and walks it with the in-memory
// cursor, so galloping AND, WAND, and every other skip-driven consumer
// still runs over a fully decoded list. It is the reference semantics the
// streaming backends are held to.
type eagerPartition struct {
	index.Partition
}

func (p eagerPartition) Iterator(term string) index.PostingIterator {
	l := p.Partition.Lookup(term)
	if l == nil {
		return nil
	}
	return postings.NewIterator(l)
}

// eagerView rebuilds a heap catalog's engine over eagerPartition wrappers,
// sharing the underlying result. Queries against it evaluate every posting
// list in full.
func eagerView(c *Catalog) *Catalog {
	parts := index.Partitions(c.result.Indexes())
	wrapped := make([]index.Partition, len(parts))
	for i, p := range parts {
		wrapped[i] = eagerPartition{p}
	}
	return &Catalog{
		result: c.result,
		engine: search.NewEngine(c.result.Files, wrapped...),
	}
}

// randomVocab builds a vocabulary of stem+suffix words, deterministic in
// rng, with deliberate shared prefixes so prefix queries expand to several
// dictionary terms.
func randomVocab(rng *rand.Rand) []string {
	stems := []string{"rep", "ann", "bud", "for", "mil", "qua", "dra", "rev"}
	suffixes := []string{"ort", "orted", "orting", "ual", "get", "ecast", "kshake", "rterly", "ft", "iew", "enue", "ine"}
	seen := make(map[string]bool)
	var vocab []string
	n := 12 + rng.Intn(16)
	for len(vocab) < n {
		w := stems[rng.Intn(len(stems))] + suffixes[rng.Intn(len(suffixes))]
		if !seen[w] {
			seen[w] = true
			vocab = append(vocab, w)
		}
	}
	return vocab
}

// randomCorpus writes a seeded random corpus: Zipf-free uniform draws are
// fine here — the property is semantic equality, not performance.
func randomCorpus(t *testing.T, rng *rand.Rand, vocab []string) *vfs.MemFS {
	t.Helper()
	fs := vfs.NewMemFS()
	nFiles := 40 + rng.Intn(100)
	for i := 0; i < nFiles; i++ {
		var words []string
		n := 3 + rng.Intn(45)
		for w := 0; w < n; w++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		if rng.Intn(4) == 0 {
			// Adjacent pair from the vocabulary: phrase-query material.
			j := rng.Intn(len(vocab) - 1)
			words = append(words, vocab[j], vocab[j+1])
		}
		name := fmt.Sprintf("dir%d/file%03d.txt", i%4, i)
		if err := fs.WriteFile(name, []byte(strings.Join(words, " "))); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// randomQueries draws a mixed workload — AND, OR, NOT, phrase, prefix,
// grouped boolean, single term — across all three rankings with random
// limits and offsets.
func randomQueries(rng *rand.Rand, vocab []string) []Query {
	pick := func() string { return vocab[rng.Intn(len(vocab))] }
	ranks := []Ranking{RankCount, RankTF, RankBM25}
	var qs []Query
	for i := 0; i < 30; i++ {
		var text string
		switch rng.Intn(7) {
		case 0:
			text = pick() + " " + pick() // AND
		case 1:
			text = pick() + " OR " + pick()
		case 2:
			text = pick() + " -" + pick() // NOT
		case 3:
			j := rng.Intn(len(vocab) - 1)
			text = fmt.Sprintf("%q", vocab[j]+" "+vocab[j+1]) // phrase
		case 4:
			text = pick()[:3] + "*" // prefix expansion
		case 5:
			text = "(" + pick() + " OR " + pick() + ") " + pick()
		case 6:
			text = pick()
		}
		q := Query{Text: text, Ranking: ranks[rng.Intn(len(ranks))]}
		if rng.Intn(2) == 0 {
			q.Limit = 1 + rng.Intn(30)
			if rng.Intn(3) == 0 {
				q.Offset = rng.Intn(12)
			}
			q.Snippets = rng.Intn(2) == 0
		}
		qs = append(qs, q)
	}
	return qs
}

// TestStreamingMatchesEagerEvaluation is the randomized cross-backend
// property test: for seeded random corpora and query mixes, streaming
// evaluation on the heap backend and on the lazy segment backend must be
// bit-identical (scores under math.Float64bits, paths, terms, totals,
// snippets) to eager full-list evaluation of the same queries. Any
// divergence — a galloping AND skipping a document it shouldn't, a WAND
// bound pruning a true top-k hit, an offset page sliced differently — is
// a correctness bug, not a tolerance question.
func TestStreamingMatchesEagerEvaluation(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		shards := 0
		if trial%2 == 1 {
			shards = 3
		}
		t.Run(fmt.Sprintf("seed%d_shards%d", trial, shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			vocab := randomVocab(rng)
			fs := randomCorpus(t, rng, vocab)
			opt := Options{Positions: true, Shards: shards}
			built, err := IndexFS(fs, ".", opt)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := built.SaveDir(dir); err != nil {
				t.Fatal(err)
			}
			heap, err := LoadDir(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			lazy, err := OpenDir(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer lazy.Close()
			eager := eagerView(heap)

			ctx := context.Background()
			for qi, q := range randomQueries(rng, vocab) {
				label := fmt.Sprintf("q%d %q rank=%s limit=%d offset=%d",
					qi, q.Text, q.Ranking, q.Limit, q.Offset)
				re, err := eager.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s eager: %v", label, err)
				}
				rh, err := heap.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s heap: %v", label, err)
				}
				rl, err := lazy.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s lazy: %v", label, err)
				}
				equalResponses(t, label+" [heap vs eager]", re, rh)
				equalResponses(t, label+" [lazy vs eager]", re, rl)
			}
		})
	}
}
