package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

func manifestVersion(t *testing.T, dir string) uint16 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 6 {
		t.Fatalf("manifest too short: %d bytes", len(data))
	}
	return binary.LittleEndian.Uint16(data[4:6])
}

// TestManifestCarriesDocLengths: a fresh corpus (whose file table carries
// token lengths) persists a v9 manifest, and LoadDir restores every
// per-file length plus the HasTokens provenance bit.
func TestManifestCarriesDocLengths(t *testing.T) {
	files, ix, blocks := buildCorpus(t)
	for i := range blocks {
		files.SetTokens(postings.FileID(i), uint32(5+2*i))
	}
	set := Distribute(files, []*index.Index{ix}, 4)

	dir := t.TempDir()
	if err := SaveDir(dir, set); err != nil {
		t.Fatal(err)
	}
	if v := manifestVersion(t, dir); v != index.DocLengthVersion {
		t.Fatalf("manifest version = %d, want %d", v, index.DocLengthVersion)
	}

	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Files().HasTokens() {
		t.Fatal("loaded manifest lost HasTokens")
	}
	for i := range blocks {
		fid := postings.FileID(i)
		if got, want := loaded.Files().Tokens(fid), files.Tokens(fid); got != want {
			t.Errorf("file %d: tokens = %d, want %d", i, got, want)
		}
	}
}

// TestLegacyManifestStaysV5: a file table loaded from pre-v9 bytes has no
// token lengths, so SaveDir must keep writing the v5 manifest existing
// deployments expect.
func TestLegacyManifestStaysV5(t *testing.T) {
	files, ix, _ := buildCorpus(t)

	// Round-trip the table through the raw file-table section: ReadFileTable
	// is the pre-v9 load path and clears the HasTokens provenance bit.
	var raw bytes.Buffer
	bw := bufio.NewWriter(&raw)
	if err := index.WriteFileTable(bw, files); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	legacy, err := index.ReadFileTable(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.HasTokens() {
		t.Fatal("ReadFileTable produced a table with HasTokens set")
	}

	set := Distribute(legacy, []*index.Index{ix}, 2)
	dir := t.TempDir()
	if err := SaveDir(dir, set); err != nil {
		t.Fatal(err)
	}
	if v := manifestVersion(t, dir); v != index.ManifestVersion {
		t.Fatalf("legacy manifest version = %d, want %d", v, index.ManifestVersion)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Files().HasTokens() {
		t.Error("v5 manifest loaded with HasTokens set")
	}
}
