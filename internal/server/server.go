// Package server implements dsearchd's HTTP layer: a resident query broker
// over a desksearch.Catalog, in the spirit of the parallel web search
// engines of the related work — the catalog is loaded once and stays
// memory-resident across requests, queries fan out over its partitions,
// and a bounded LRU cache with single-flight de-duplication absorbs
// repeated and concurrent identical queries.
//
// Endpoints:
//
//	GET  /search?q=...   evaluate a query (limit, offset, rank, prefix,
//	                     snippets, timeout parameters), JSON response; q
//	                     uses the full grammar, quoted phrases and prefix
//	                     operators included (q=%22annual%20report%22,
//	                     q=repor* — phrase queries and snippets need a
//	                     catalog built with positions and otherwise fail
//	                     with 400). rank accepts the wire names count,
//	                     tf, and bm25 (legacy integers still parse);
//	                     unknown names fail with 400.
//	GET  /suggest?q=...  autocomplete: indexed terms with the given
//	                     prefix, ranked by document frequency (n caps
//	                     the count, default 10)
//	GET  /stats          catalog, server, and cache counters
//	GET  /healthz        liveness probe
//	GET  /metrics        the same counters plus per-endpoint latency
//	                     histograms in Prometheus text format (see
//	                     metrics.go and internal/metrics)
//	POST /reload         run an incremental update (or a full rebuild
//	                     with ?mode=full) and invalidate the cache
//
// Results are cached keyed on (catalog generation, normalized query).
// Reloads commit through the catalog's maintenance path, which advances
// the generation — so the instant a reload completes, every cached result
// from before it stops being served, even ones stored by queries that
// were still in flight while the reload committed.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"desksearch"
	"desksearch/internal/cache"
	"desksearch/internal/timing"
)

// Config wires a Server to its catalog and reload sources.
type Config struct {
	// Catalog answers the queries. Required.
	Catalog *desksearch.Catalog
	// Update runs an incremental reload (typically Catalog.UpdateDir
	// against the watched root) and reports what changed. nil disables
	// /reload and Watch.
	Update func() (desksearch.UpdateStats, error)
	// Rebuild builds a replacement catalog from scratch; /reload?mode=full
	// swaps it in atomically. nil disables full reloads.
	Rebuild func() (*desksearch.Catalog, error)
	// CacheEntries and CacheBytes bound the query-result cache; zero
	// values fall back to 1024 entries and 64 MiB. A negative
	// CacheEntries disables caching entirely.
	CacheEntries int
	CacheBytes   int64
	// Timeout bounds each request's query evaluation; zero falls back to
	// 10 s. A request's own timeout parameter may shorten but never
	// exceed it.
	Timeout time.Duration
	// MaxLimit caps the per-request limit parameter (and replaces an
	// unbounded limit=0) so one request cannot materialize the entire
	// catalog; zero falls back to 1000.
	MaxLimit int
	// Logf, when non-nil, receives one line per reload and per watch
	// error.
	Logf func(format string, args ...any)
	// Worker additionally exposes the distributed-serving endpoints
	// (/internal/meta, /internal/df, /internal/search) a scatter-gather
	// broker fans queries out to — dsearchd's -worker mode. The public
	// endpoints stay available, so a worker can also be queried directly.
	Worker bool
}

// Server is the daemon's HTTP state. Create with New; serve via Handler.
type Server struct {
	cat     *desksearch.Catalog
	update  func() (desksearch.UpdateStats, error)
	rebuild func() (*desksearch.Catalog, error)
	cache   *cache.Cache[*desksearch.Response]
	timeout time.Duration
	maxLim  int
	logf    func(string, ...any)
	start   time.Time
	worker  bool

	// partMu guards partTimings: one sliding window of evaluation wall
	// times per global partition ID, fed by every fresh (uncached) query
	// and summarized in /stats — the observability brokers tune their
	// per-worker timeouts from.
	partMu      sync.Mutex
	partTimings map[int]*timing.Window

	// reloadMu serializes /reload and Watch ticks, so overlapping reloads
	// cannot interleave their prune steps.
	reloadMu sync.Mutex

	// statsMu guards the per-generation memo of Catalog.Stats: the exact
	// distinct-term count walks every partition's term table, far too
	// expensive to recompute for every monitoring poll, and between
	// reloads it cannot change.
	statsMu   sync.Mutex
	statsGen  uint64
	statsOK   bool
	statsSnap desksearch.Stats

	queries, queryErrors, reloads atomic.Uint64

	// metrics is the /metrics exposition surface, built once in New over
	// the counters and caches above (see metrics.go).
	metrics *serverMetrics
}

// New returns a server over cfg. It panics when cfg.Catalog is nil — the
// daemon cannot exist without one.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		panic("server: Config.Catalog is required")
	}
	entries, bytes := cfg.CacheEntries, cfg.CacheBytes
	if entries == 0 {
		entries = 1024
	}
	if bytes == 0 {
		bytes = 64 << 20
	}
	var c *cache.Cache[*desksearch.Response]
	if entries > 0 {
		c = cache.New[*desksearch.Response](entries, bytes)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	maxLim := cfg.MaxLimit
	if maxLim == 0 {
		maxLim = 1000
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		cat:         cfg.Catalog,
		update:      cfg.Update,
		rebuild:     cfg.Rebuild,
		cache:       c,
		timeout:     timeout,
		maxLim:      maxLim,
		logf:        logf,
		start:       time.Now(),
		worker:      cfg.Worker,
		partTimings: make(map[int]*timing.Window),
	}
	s.initMetrics()
	return s
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /suggest", s.handleSuggest)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.HandleFunc("POST /reload", s.handleReload)
	if s.worker {
		mux.HandleFunc("GET /internal/meta", s.handleWorkerMeta)
		mux.HandleFunc("GET /internal/df", s.handleWorkerDF)
		mux.HandleFunc("POST /internal/search", s.handleWorkerSearch)
	}
	return mux
}

// observePartitions feeds one fresh evaluation's per-partition wall times
// into the server's sliding windows, keyed by global partition ID (shard
// numbers for a subset worker), so /stats summarizes them.
func (s *Server) observePartitions(parts []desksearch.PartitionTiming) {
	if len(parts) == 0 {
		return
	}
	ids := s.cat.PartitionIDs()
	s.partMu.Lock()
	for _, p := range parts {
		id := p.Partition
		if p.Partition < len(ids) {
			id = ids[p.Partition]
		}
		w := s.partTimings[id]
		if w == nil {
			w = timing.NewWindow(0)
			s.partTimings[id] = w
		}
		w.Observe(p.Duration)
	}
	s.partMu.Unlock()
}

// partitionTimingStats summarizes the per-partition windows for /stats,
// ordered by partition ID.
func (s *Server) partitionTimingStats() []PartitionTimingStat {
	s.partMu.Lock()
	ids := make([]int, 0, len(s.partTimings))
	for id := range s.partTimings {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]PartitionTimingStat, 0, len(ids))
	for _, id := range ids {
		if sum, ok := s.partTimings[id].Snapshot(); ok {
			out = append(out, PartitionTimingStat{
				Partition: id,
				Queries:   sum.Count,
				MinUS:     float64(sum.Min.Nanoseconds()) / 1e3,
				MedianUS:  float64(sum.Median.Nanoseconds()) / 1e3,
				P95US:     float64(sum.P95.Nanoseconds()) / 1e3,
				MaxUS:     float64(sum.Max.Nanoseconds()) / 1e3,
			})
		}
	}
	s.partMu.Unlock()
	return out
}

// SearchResponse is the JSON shape of /search.
type SearchResponse struct {
	// Query is the canonical form of the evaluated expression.
	Query string `json:"query"`
	// Generation identifies the catalog state that produced the result.
	Generation uint64 `json:"generation"`
	// Cached reports whether the result came from the cache or a shared
	// in-flight evaluation — in either case no partition was evaluated
	// for this request.
	Cached bool `json:"cached"`
	// TookMS is the server-side handling time in milliseconds.
	TookMS float64 `json:"took_ms"`
	// Total counts matches across the whole catalog.
	Total int `json:"total"`
	// Hits is the requested page.
	Hits []SearchHit `json:"hits"`
	// Partitions reports per-partition match counts and evaluation times.
	// For a cached response these are the timings of the original
	// evaluation, not of this request.
	Partitions []PartitionStat `json:"partitions"`
}

// SearchHit is one hit of /search.
type SearchHit struct {
	Path  string   `json:"path"`
	Score float64  `json:"score"`
	Terms []string `json:"terms,omitempty"`
	// Snippet is present only when the request asked for snippets and the
	// hit produced one.
	Snippet *SnippetJSON `json:"snippet,omitempty"`
}

// SnippetJSON is the wire form of a hit's context window. Highlights are
// half-open [start, end) byte ranges into Text.
type SnippetJSON struct {
	Text       string     `json:"text"`
	Highlights []SpanJSON `json:"highlights,omitempty"`
}

// SpanJSON is one highlighted byte range of a snippet.
type SpanJSON struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// PartitionStat is one partition's share of a query's work.
type PartitionStat struct {
	Partition  int     `json:"partition"`
	Matched    int     `json:"matched"`
	DurationUS float64 `json:"duration_us"`
}

// StatsResponse is the JSON shape of /stats.
type StatsResponse struct {
	Files      int     `json:"files"`
	Terms      int     `json:"terms"`
	Postings   int64   `json:"postings"`
	Skipped    int     `json:"skipped"`
	Indices    int     `json:"indices"`
	Shards     int     `json:"shards"`
	Generation uint64  `json:"generation"`
	UptimeS    float64 `json:"uptime_s"`

	// OpenMode is how the catalog is held: "heap" (fully materialized) or
	// "lazy" (posting blocks served from segment files on demand).
	OpenMode string `json:"open_mode"`
	// PartitionBytes estimates each partition's resident heap footprint in
	// partition order — for a lazy catalog, the dictionary plus currently
	// cached posting blocks, the number that shows what lazy open saves.
	PartitionBytes []int64 `json:"partition_bytes"`

	Queries     uint64 `json:"queries"`
	QueryErrors uint64 `json:"query_errors"`
	Reloads     uint64 `json:"reloads"`

	Cache *CacheStats `json:"cache,omitempty"`

	// BlockCache reports a lazy catalog's posting-block cache: the byte
	// budget (the -block-cache-bytes flag) and current estimated usage.
	// Absent for eager catalogs.
	BlockCache *BlockCacheStats `json:"block_cache,omitempty"`

	// PartitionTimings summarizes recent per-partition evaluation wall
	// times (a sliding window of the last few hundred fresh queries),
	// keyed by global partition ID — shard numbers for a worker serving a
	// subset. This is the signal a broker derives its per-worker timeouts
	// and hedging delays from. Absent until the first uncached query.
	PartitionTimings []PartitionTimingStat `json:"partition_timings,omitempty"`

	// Worker, when present, describes the worker's place in a distributed
	// deployment: which global shards it serves out of how many.
	Worker *WorkerStats `json:"worker,omitempty"`
}

// BlockCacheStats is the lazy posting-block cache block of /stats.
type BlockCacheStats struct {
	BudgetBytes int64 `json:"budget_bytes"`
	UsedBytes   int64 `json:"used_bytes"`
}

// PartitionTimingStat summarizes one partition's recent evaluation times.
type PartitionTimingStat struct {
	Partition int     `json:"partition"`
	Queries   uint64  `json:"queries"`
	MinUS     float64 `json:"min_us"`
	MedianUS  float64 `json:"median_us"`
	P95US     float64 `json:"p95_us"`
	MaxUS     float64 `json:"max_us"`
}

// WorkerStats is the worker block of /stats.
type WorkerStats struct {
	// Shards lists the global shard numbers this worker serves.
	Shards []int `json:"shards"`
	// TotalShards is the directory's full shard count.
	TotalShards int `json:"total_shards"`
}

// CacheStats is the cache block of /stats.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
}

// ReloadResponse is the JSON shape of /reload.
type ReloadResponse struct {
	Mode       string  `json:"mode"`
	Generation uint64  `json:"generation"`
	TookMS     float64 `json:"took_ms"`

	// Incremental reload counters (zero for mode=full).
	Added           int   `json:"added"`
	Modified        int   `json:"modified"`
	Deleted         int   `json:"deleted"`
	PostingsRemoved int64 `json:"postings_removed"`
	PostingsAdded   int64 `json:"postings_added"`
	SkippedFiles    int   `json:"skipped_files"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is the stable machine-readable code of a typed query error
	// (desksearch.QueryErrorCode), empty for every other failure. Clients
	// branch on it instead of parsing Error's prose.
	Code string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// queryErrorStatus is the one place evaluation errors become wire
// statuses, shared by the daemon's /search and /suggest handlers and the
// worker endpoints (the broker passes worker statuses through unchanged).
// Timeouts and cancellations are retryable against a replica (504/503);
// everything else is deterministic — a replica would fail the same way —
// and maps to 400, with typed query errors contributing their stable
// desksearch code for the response body.
func queryErrorStatus(err error) (status int, code string) {
	var qe *desksearch.QueryError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, ""
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, ""
	case errors.As(err, &qe):
		return http.StatusBadRequest, string(qe.Code)
	default:
		return http.StatusBadRequest, ""
	}
}

// writeQueryError writes an evaluation failure through the shared status
// mapping, rewriting the retryable statuses to their conventional prose
// and attaching the stable code when the error carries one.
func writeQueryError(w http.ResponseWriter, err error, timeout time.Duration) {
	status, code := queryErrorStatus(err)
	msg := err.Error()
	switch status {
	case http.StatusGatewayTimeout:
		msg = fmt.Sprintf("query timed out after %s", timeout)
	case http.StatusServiceUnavailable:
		msg = "query canceled"
	}
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, status, err := s.parseSearch(r)
	if err != nil {
		s.metrics.observeRequest("search", "bad_request", start)
		writeError(w, status, "%v", err)
		return
	}
	req, key, err := req.Normalize()
	if err != nil {
		s.metrics.observeRequest("search", "bad_request", start)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	timeout, err := ParseTimeout(r.URL.Query(), s.timeout)
	if err != nil {
		s.metrics.observeRequest("search", "bad_request", start)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// The generation is read before evaluation: if a reload commits while
	// this query runs, the result is stored under the pre-reload
	// generation and post-reload requests can never see it.
	gen := s.cat.Generation()
	s.queries.Add(1)
	resp, cached, err := s.cachedQuery(ctx, gen, key, req)
	if err != nil {
		s.queryErrors.Add(1)
		s.metrics.observeRequest("search", "error", start)
		writeQueryError(w, err, timeout)
		return
	}
	if !cached {
		s.observePartitions(resp.Partitions)
	}
	s.metrics.observeRequest("search", "ok", start)

	out := SearchResponse{
		Query:      req.Expr.String(),
		Generation: gen,
		Cached:     cached,
		TookMS:     float64(time.Since(start).Microseconds()) / 1e3,
		Total:      resp.Total,
		Hits:       make([]SearchHit, len(resp.Hits)),
		Partitions: make([]PartitionStat, len(resp.Partitions)),
	}
	for i, h := range resp.Hits {
		hit := SearchHit{Path: h.Path, Score: h.Score, Terms: h.Terms}
		if h.Snippet != nil {
			snip := &SnippetJSON{Text: h.Snippet.Text}
			for _, sp := range h.Snippet.Highlights {
				snip.Highlights = append(snip.Highlights, SpanJSON{Start: sp.Start, End: sp.End})
			}
			hit.Snippet = snip
		}
		out.Hits[i] = hit
	}
	for i, p := range resp.Partitions {
		out.Partitions[i] = PartitionStat{
			Partition:  p.Partition,
			Matched:    p.Matched,
			DurationUS: float64(p.Duration.Nanoseconds()) / 1e3,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// SuggestResponse is the JSON shape of /suggest.
type SuggestResponse struct {
	// Prefix is the normalized prefix the suggestions complete.
	Prefix string `json:"prefix"`
	// Generation identifies the catalog state that produced the result.
	Generation uint64 `json:"generation"`
	// TookMS is the server-side handling time in milliseconds.
	TookMS float64 `json:"took_ms"`
	// Suggestions are ranked by descending document frequency, then term.
	Suggestions []SuggestionJSON `json:"suggestions"`
}

// SuggestionJSON is one autocomplete candidate of /suggest.
type SuggestionJSON struct {
	Term  string `json:"term"`
	Files int    `json:"files"`
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	params := r.URL.Query()
	prefix := params.Get("q")
	if prefix == "" {
		s.metrics.observeRequest("suggest", "bad_request", start)
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	n := 10
	if v := params.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			s.metrics.observeRequest("suggest", "bad_request", start)
			writeError(w, http.StatusBadRequest, "invalid n %q", v)
			return
		}
		n = parsed
	}
	if n > s.maxLim {
		n = s.maxLim
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	gen := s.cat.Generation()
	s.queries.Add(1)
	sugs, err := s.cat.Suggest(ctx, prefix, n)
	if err != nil {
		s.queryErrors.Add(1)
		s.metrics.observeRequest("suggest", "error", start)
		writeQueryError(w, err, s.timeout)
		return
	}
	s.metrics.observeRequest("suggest", "ok", start)
	out := SuggestResponse{
		Prefix:      strings.TrimRight(prefix, "*"),
		Generation:  gen,
		TookMS:      float64(time.Since(start).Microseconds()) / 1e3,
		Suggestions: make([]SuggestionJSON, len(sugs)),
	}
	for i, sg := range sugs {
		out.Suggestions[i] = SuggestionJSON{Term: sg.Term, Files: sg.Files}
	}
	writeJSON(w, http.StatusOK, out)
}

// cachedQuery evaluates req through the cache (when enabled), de-duplicated
// against identical in-flight queries at the same generation. The caller's
// ctx governs only its own wait: the shared evaluation runs under a
// server-owned context bounded by the server's timeout ceiling, so one
// impatient or disconnected client can neither fail the flight for every
// coalesced request behind it nor hold a follower past its own deadline.
func (s *Server) cachedQuery(ctx context.Context, gen uint64, key string, req desksearch.Query) (*desksearch.Response, bool, error) {
	if s.cache == nil {
		resp, err := s.cat.Query(ctx, req)
		return resp, false, err
	}
	return s.cache.Do(ctx, gen, key, func() (*desksearch.Response, int64, error) {
		evalCtx, cancel := context.WithTimeout(context.Background(), s.timeout)
		defer cancel()
		resp, err := s.cat.Query(evalCtx, req)
		if err != nil {
			return nil, 0, err
		}
		return resp, responseSize(resp), nil
	})
}

// parseSearch maps query parameters onto a desksearch.Query.
func (s *Server) parseSearch(r *http.Request) (desksearch.Query, int, error) {
	req, err := ParseSearchQuery(r.URL.Query(), s.maxLim)
	if err != nil {
		return req, http.StatusBadRequest, err
	}
	return req, 0, nil
}

// ParseSearchQuery maps /search-style URL parameters (q, limit, offset,
// rank, snippets, prefix, max_prefix_terms) onto a desksearch.Query. It
// is exported so the
// distributed broker's front door accepts exactly the same dialect as a
// single-node daemon — every error it returns is the client's mistake and
// maps to 400. maxLimit caps the limit parameter and replaces an
// unbounded limit=0.
func ParseSearchQuery(params url.Values, maxLimit int) (desksearch.Query, error) {
	var req desksearch.Query
	req.Text = params.Get("q")
	if req.Text == "" {
		return req, fmt.Errorf("missing q parameter")
	}
	req.Limit = 10
	if v := params.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return req, fmt.Errorf("invalid limit %q", v)
		}
		req.Limit = n
	}
	if req.Limit == 0 || req.Limit > maxLimit {
		req.Limit = maxLimit
	}
	if v := params.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return req, fmt.Errorf("invalid offset %q", v)
		}
		req.Offset = n
	}
	if v := params.Get("rank"); v != "" {
		// ParseRanking resolves the wire names (count, tf, bm25) and the
		// legacy integer forms; anything else is the client's mistake, so
		// it maps to 400, never 500.
		rank, err := desksearch.ParseRanking(v)
		if err != nil {
			return req, err
		}
		req.Ranking = rank
	}
	if v := params.Get("snippets"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("invalid snippets %q (want a boolean)", v)
		}
		req.Snippets = on
	}
	if v := params.Get("max_prefix_terms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return req, fmt.Errorf("invalid max_prefix_terms %q", v)
		}
		req.MaxPrefixTerms = n
	}
	req.PathPrefix = params.Get("prefix")
	return req, nil
}

// ParseTimeout resolves a request's timeout parameter against a ceiling:
// the parameter may shorten the ceiling but never exceed it, and an
// unparseable or non-positive value is a client error. Shared by the
// daemon's /search handler and the broker.
func ParseTimeout(params url.Values, ceiling time.Duration) (time.Duration, error) {
	t := params.Get("timeout")
	if t == "" {
		return ceiling, nil
	}
	d, err := time.ParseDuration(t)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("invalid timeout %q", t)
	}
	if d < ceiling {
		return d, nil
	}
	return ceiling, nil
}

// catalogStats returns Catalog.Stats memoized per generation. A snapshot
// computed while a reload races the memo may be stored under the older
// generation; the next poll at the new generation simply recomputes.
func (s *Server) catalogStats() (desksearch.Stats, uint64) {
	gen := s.cat.Generation()
	s.statsMu.Lock()
	if s.statsOK && s.statsGen == gen {
		snap := s.statsSnap
		s.statsMu.Unlock()
		return snap, gen
	}
	s.statsMu.Unlock()
	snap := s.cat.Stats()
	s.statsMu.Lock()
	s.statsGen, s.statsSnap, s.statsOK = gen, snap, true
	s.statsMu.Unlock()
	return snap, gen
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs, gen := s.catalogStats()
	mode := "heap"
	if s.cat.Lazy() {
		mode = "lazy"
	}
	out := StatsResponse{
		Files:          cs.Files,
		Terms:          cs.Terms,
		Postings:       cs.Postings,
		Skipped:        cs.Skipped,
		Indices:        s.cat.Indices(),
		Shards:         s.cat.Shards(),
		Generation:     gen,
		UptimeS:        time.Since(s.start).Seconds(),
		OpenMode:       mode,
		PartitionBytes: s.cat.PartitionBytes(),
		Queries:        s.queries.Load(),
		QueryErrors:    s.queryErrors.Load(),
		Reloads:        s.reloads.Load(),
	}
	if s.cache != nil {
		st := s.cache.Stats()
		out.Cache = &CacheStats{
			Entries:   st.Entries,
			Bytes:     st.Bytes,
			Hits:      st.Hits,
			Misses:    st.Misses,
			Coalesced: st.Coalesced,
			Evictions: st.Evictions,
		}
	}
	if budget, used, ok := s.cat.BlockCache(); ok {
		out.BlockCache = &BlockCacheStats{BudgetBytes: budget, UsedBytes: used}
	}
	out.PartitionTimings = s.partitionTimingStats()
	if s.worker {
		out.Worker = &WorkerStats{
			Shards:      s.cat.PartitionIDs(),
			TotalShards: s.cat.TotalShards(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": s.cat.Generation(),
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	mode := r.URL.Query().Get("mode")
	switch mode {
	case "", "update":
		if s.update == nil {
			writeError(w, http.StatusNotImplemented, "reload disabled: no update source configured")
			return
		}
		start := time.Now()
		st, err := s.Reload()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "reload: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, ReloadResponse{
			Mode:            "update",
			Generation:      s.cat.Generation(),
			TookMS:          float64(time.Since(start).Microseconds()) / 1e3,
			Added:           st.Added,
			Modified:        st.Modified,
			Deleted:         st.Deleted,
			PostingsRemoved: st.PostingsRemoved,
			PostingsAdded:   st.PostingsAdded,
			SkippedFiles:    st.SkippedFiles,
		})
	case "full":
		if s.rebuild == nil {
			writeError(w, http.StatusNotImplemented, "full reload disabled: no rebuild source configured")
			return
		}
		start := time.Now()
		if err := s.fullReload(); err != nil {
			writeError(w, http.StatusInternalServerError, "rebuild: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, ReloadResponse{
			Mode:       "full",
			Generation: s.cat.Generation(),
			TookMS:     float64(time.Since(start).Microseconds()) / 1e3,
		})
	default:
		writeError(w, http.StatusBadRequest, "unknown reload mode %q (want update or full)", mode)
	}
}

// Reload runs the incremental update source and, when anything changed,
// prunes cache entries orphaned by the generation bump. Safe to call
// directly (the watch loop does); concurrent reloads serialize.
func (s *Server) Reload() (desksearch.UpdateStats, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	st, err := s.update()
	if err != nil {
		return st, err
	}
	s.reloads.Add(1)
	if s.cache != nil {
		// An empty changeset does not advance the generation, so pruning
		// to the current generation is a no-op then and a cleanup after
		// real changes.
		s.cache.Prune(s.cat.Generation())
	}
	if st.Added+st.Modified+st.Deleted > 0 {
		s.logf("reload: +%d ~%d -%d files (generation %d)",
			st.Added, st.Modified, st.Deleted, s.cat.Generation())
	}
	return st, nil
}

// fullReload rebuilds the catalog from scratch and swaps it in atomically.
func (s *Server) fullReload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	fresh, err := s.rebuild()
	if err != nil {
		return err
	}
	s.cat.Swap(fresh)
	s.reloads.Add(1)
	if s.cache != nil {
		s.cache.Prune(s.cat.Generation())
	}
	s.logf("full reload complete (generation %d)", s.cat.Generation())
	return nil
}

// Watch polls the update source every interval until ctx is done — the
// daemon's -watch mode. Each tick runs the same reload path as /reload,
// so changes picked up by polling invalidate the cache identically.
func (s *Server) Watch(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := s.Reload(); err != nil {
				s.logf("watch: reload failed: %v", err)
			}
		}
	}
}

// responseSize approximates a response's JSON footprint for the cache's
// byte budget: string payloads plus a fixed per-hit and per-partition
// overhead for the numeric fields and framing.
func responseSize(r *desksearch.Response) int64 {
	size := int64(64)
	for _, h := range r.Hits {
		size += int64(len(h.Path)) + 32
		for _, t := range h.Terms {
			size += int64(len(t)) + 4
		}
		if h.Snippet != nil {
			size += int64(len(h.Snippet.Text)) + 16 + int64(len(h.Snippet.Highlights))*24
		}
	}
	size += int64(len(r.Partitions)) * 48
	return size
}
