// Command indexgen builds an inverted index over a directory tree with any
// of the paper's pipeline implementations and reports stage timings.
//
// Usage:
//
//	indexgen -root DIR [-impl seq|shared|join|nojoin] [-x N -y N -z N]
//	         [-shards N] [-formats] [-positions] [-save PATH] [-stages]
//	indexgen -root DIR -update -save DIR [-formats] [-x N]
//
// With -positions every term occurrence's token position is recorded,
// enabling quoted phrase queries ('"annual report"') at the cost of a
// larger index; positional catalogs persist as DSIX v8 (docs/FORMAT.md)
// and -update re-extracts positionally without restating the flag.
//
// With -shards N the index is partitioned into N document shards and
// -save PATH writes the sharded layout (a checksummed manifest plus one
// segment file per shard) into the directory PATH; without -shards, -save
// writes a single index file.
//
// With -update the catalog saved under -save (the sharded directory
// layout) is loaded, diffed against the live tree under -root, patched in
// place — added, modified, and deleted files only, no full rebuild — and
// written back, rewriting only the segment files the changeset dirtied
// plus the manifest. Pass the same -formats (and optionally -x) the build
// used: extraction options are not persisted in the catalog.
//
// With -stages it instead reproduces the paper's Table 1 methodology on
// the live directory: isolated sequential timings of filename generation,
// reading, reading+extraction, and index update.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"desksearch"
	"desksearch/internal/core"
	"desksearch/internal/extract"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

func main() {
	var (
		root    = flag.String("root", "", "directory to index (required)")
		impl    = flag.String("impl", "nojoin", "implementation: seq, shared (impl 1), join (impl 2), nojoin (impl 3)")
		x       = flag.Int("x", 0, "term-extraction threads (0 = auto)")
		y       = flag.Int("y", 0, "index-update threads")
		z       = flag.Int("z", 0, "index-join threads (join only)")
		shards  = flag.Int("shards", 0, "partition the index into N document shards (0 = off)")
		formats = flag.Bool("formats", false, "strip HTML/WP markup before indexing")
		pos     = flag.Bool("positions", false, "record token positions (enables quoted phrase queries; larger index, DSIX v8 single-file / v10 segments)")
		save    = flag.String("save", "", "write the built index to this path (a directory with -shards)")
		stages  = flag.Bool("stages", false, "measure isolated sequential stage times (paper Table 1) and exit")
		update  = flag.Bool("update", false, "incrementally update the saved catalog under -save against -root instead of rebuilding")
	)
	flag.Parse()
	if *root == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *update {
		if *save == "" {
			fatal(fmt.Errorf("-update needs -save DIR naming the saved catalog"))
		}
		// Build options are not persisted in the catalog, so the update
		// must be told the original extraction flags to re-extract changed
		// files the same way. Positions are the exception: the DSIX frame
		// version records them, so LoadDir re-enables them automatically.
		runUpdate(*root, *save, desksearch.Options{Formats: *formats, Extractors: *x, Positions: *pos})
		return
	}

	if *stages {
		st, err := core.MeasureStages(vfs.NewOSFS(*root), ".", extract.Options{
			Tokenize: tokenize.Default, Formats: *formats, Positions: *pos,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("filename generation:      %8.3fs\n", st.FilenameGen.Seconds())
		fmt.Printf("read files:               %8.3fs\n", st.ReadFiles.Seconds())
		fmt.Printf("read files + extract:     %8.3fs\n", st.ReadExtract.Seconds())
		fmt.Printf("index update:             %8.3fs\n", st.IndexUpdate.Seconds())
		return
	}

	implementation, err := parseImpl(*impl)
	if err != nil {
		fatal(err)
	}
	cat, err := desksearch.IndexDir(*root, desksearch.Options{
		Implementation: implementation,
		Extractors:     *x,
		Updaters:       *y,
		Joiners:        *z,
		Shards:         *shards,
		Formats:        *formats,
		Positions:      *pos,
	})
	if err != nil {
		fatal(err)
	}

	s := cat.Stats()
	fGen, eu, join, shardT, total := cat.Timings()
	fmt.Printf("indexed %d files: %d terms, %d postings (%d indices, %d skipped)\n",
		s.Files, s.Terms, s.Postings, cat.Indices(), s.Skipped)
	if n := cat.Shards(); n > 0 {
		fmt.Printf("sharded into %d document partitions\n", n)
	}
	fmt.Printf("filename generation: %.3fs   extract+update: %.3fs   join: %.3fs   shard: %.3fs   total: %.3fs\n",
		fGen, eu, join, shardT, total)

	if *save != "" {
		if *shards > 0 {
			if err := cat.SaveDir(*save); err != nil {
				fatal(err)
			}
			fmt.Printf("index saved to %s/ (manifest + %d segments)\n", *save, cat.Shards())
			return
		}
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := cat.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("index saved to %s\n", *save)
	}
}

// runUpdate loads the catalog under saveDir, applies the changes found
// under root, and writes back only what the changeset dirtied.
func runUpdate(root, saveDir string, opt desksearch.Options) {
	start := time.Now()
	cat, err := desksearch.LoadDir(saveDir, opt)
	if err != nil {
		fatal(err)
	}
	loaded := time.Since(start)

	startUpdate := time.Now()
	st, err := cat.UpdateDir(root)
	if err != nil {
		fatal(err)
	}
	updated := time.Since(startUpdate)
	dirty := cat.DirtySegments()

	startSave := time.Now()
	if err := cat.SaveDir(saveDir); err != nil {
		fatal(err)
	}
	saved := time.Since(startSave)

	s := cat.Stats()
	fmt.Printf("updated %s: +%d added, ~%d modified, -%d deleted files (+%d/-%d postings, %d skipped)\n",
		saveDir, st.Added, st.Modified, st.Deleted, st.PostingsAdded, st.PostingsRemoved, st.SkippedFiles)
	fmt.Printf("catalog now: %d files, %d terms, %d postings across %d indices\n",
		s.Files, s.Terms, s.Postings, cat.Indices())
	fmt.Printf("rewrote %d/%d segments + manifest\n", dirty, cat.Indices())
	fmt.Printf("load: %.3fs   update: %.3fs   save: %.3fs\n",
		loaded.Seconds(), updated.Seconds(), saved.Seconds())
}

func parseImpl(name string) (desksearch.Implementation, error) {
	switch name {
	case "seq", "sequential":
		return desksearch.Sequential, nil
	case "shared", "impl1", "1":
		return desksearch.SharedIndex, nil
	case "join", "impl2", "2":
		return desksearch.ReplicatedJoin, nil
	case "nojoin", "impl3", "3":
		return desksearch.ReplicatedSearch, nil
	default:
		return 0, fmt.Errorf("unknown implementation %q (want seq, shared, join, or nojoin)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indexgen:", err)
	os.Exit(1)
}
