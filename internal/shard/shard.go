// Package shard implements the document-sharded index subsystem: a set of
// independent index partitions, each owning every posting of the files
// hashed to it, queried in parallel and persisted as a checksummed manifest
// plus one segment file per shard.
//
// Sharding is the production step the paper's ReplicatedSearch design hints
// at: its unjoined replicas already are document partitions (each file's
// term block goes to exactly one replica), so replicas become shards for
// free. Every other pipeline implementation reaches the same shape by
// splitting on a hash of the FileID, the standard document-partitioning
// rule of parallel search engines.
package shard

import (
	"encoding/binary"
	"sync"

	"desksearch/internal/fnv"
	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// Set is a document-sharded index: len(shards) partitions over one shared
// file table. Every posting of a given file lives in exactly one shard, so
// a query fanned out over all shards sees each file once and the merged
// hits equal a single-index search.
//
// A set additionally tracks per-shard persistence state for incremental
// saves: which directory it was last saved to or loaded from, each
// segment's whole-file checksum there, and which shards have been dirtied
// by in-place updates since. SaveDir consults that state to rewrite only
// dirty segments.
type Set struct {
	files  *index.FileTable
	shards []*index.Index

	// persistMu guards the persistence state below: SaveDir (reading and
	// rewriting it) may run concurrently with MarkDirty from an update
	// commit or a DirtyCount poll.
	persistMu sync.Mutex
	// savedDir is the directory the set's segments were last persisted in
	// ("" for a set never saved or loaded), savedSums the per-segment
	// whole-file checksums recorded there, and dirty the per-shard
	// modified-since flags. dirty == nil means everything is dirty (a
	// freshly built set).
	savedDir  string
	savedSums []uint64
	dirty     []bool

	// legacySegments records that the set was loaded from pre-v10 (v7/v8)
	// segment files. SaveDir then keeps writing that legacy form, so a
	// load/save cycle on an old directory never silently upgrades it —
	// the same provenance rule the v9 manifest gating follows. Fresh sets
	// persist as v10 lazy segments.
	legacySegments bool
}

// New returns a set over the given partitions. The caller guarantees the
// partitions are document-disjoint; FromReplicas and Distribute both do.
func New(files *index.FileTable, shards []*index.Index) *Set {
	return &Set{files: files, shards: shards}
}

// MarkDirty records that shard i has been modified in place since it was
// last persisted, so the next SaveDir rewrites its segment. It matches the
// delta.Target.OnDirty hook.
func (s *Set) MarkDirty(i int) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.dirty != nil {
		s.dirty[i] = true
	}
}

// DirtyCount reports how many segments the next SaveDir to the same
// directory would rewrite. A set never persisted is entirely dirty.
func (s *Set) DirtyCount() int {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.dirty == nil {
		return len(s.shards)
	}
	n := 0
	for _, d := range s.dirty {
		if d {
			n++
		}
	}
	return n
}

// cleanSums returns, for a save into dir, the checksums of the segments
// whose on-disk files are already current (nil entries mean "rewrite").
// The snapshot is taken under the persistence lock so a concurrent
// MarkDirty cannot tear it mid-save.
func (s *Set) cleanSums(dir string) []*uint64 {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	out := make([]*uint64, len(s.shards))
	if s.dirty == nil || s.savedDir == "" || s.savedDir != dir {
		return out
	}
	for i := range s.shards {
		if !s.dirty[i] {
			sum := s.savedSums[i]
			out[i] = &sum
		}
	}
	return out
}

// markSaved records a successful save of every segment under dir with the
// given checksums.
func (s *Set) markSaved(dir string, sums []uint64) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.savedDir = dir
	s.savedSums = sums
	s.dirty = make([]bool, len(s.shards))
}

// LegacySegments reports whether the set came from pre-v10 segment files
// (and will re-save in that form).
func (s *Set) LegacySegments() bool { return s.legacySegments }

// Files returns the shared file table.
func (s *Set) Files() *index.FileTable { return s.files }

// Shards returns the partitions. Callers must not modify the slice.
func (s *Set) Shards() []*index.Index { return s.shards }

// Len returns the number of shards.
func (s *Set) Len() int { return len(s.shards) }

// Positional reports whether the set carries token positions: a set built
// or loaded positionally has every shard flagged (segments persist as DSIX
// v8), and the flag decides how incremental updates re-extract.
func (s *Set) Positional() bool {
	for _, ix := range s.shards {
		if ix.Positional() {
			return true
		}
	}
	return false
}

// Stats aggregates index statistics across the shards. Terms is an upper
// bound: a term present in several shards is counted once per shard.
func (s *Set) Stats() index.Stats {
	var agg index.Stats
	for _, ix := range s.shards {
		st := ix.Stats()
		agg.Terms += st.Terms
		agg.Postings += st.Postings
	}
	return agg
}

// ShardFor maps a file to its shard: FNV-1 over the FileID's little-endian
// bytes, modulo the shard count. Hashing (rather than id % n) decorrelates
// shard assignment from Stage 1's traversal order, so directory-clustered
// corpora still spread evenly.
func ShardFor(id postings.FileID, n int) int {
	if n <= 1 {
		return 0
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(id))
	return int(fnv.Hash32Bytes(b[:]) % uint32(n))
}

// FromReplicas turns ReplicatedSearch replicas into shards directly — no
// join pass and no copying. Each file was extracted into exactly one
// replica, so the replicas already satisfy the document-disjointness Set
// requires; the partition rule is whatever the pipeline's distribution
// strategy produced rather than ShardFor.
func FromReplicas(files *index.FileTable, replicas []*index.Index) *Set {
	return New(files, replicas)
}

// Distribute builds an n-shard set from any document-disjoint source
// indices (a single joined index, or unjoined replicas when their count
// does not match n), routing every posting to ShardFor of its file. One
// goroutine per destination shard scans the sources — which are only read —
// so shard construction parallelizes without locks; each file's shard is
// hashed once up front (every FileID comes from files, so the table covers
// them all) and the per-posting work in the scans is a table lookup.
func Distribute(files *index.FileTable, sources []*index.Index, n int) *Set {
	if n < 1 {
		n = 1
	}
	assign := make([]int32, files.Len())
	for id := range assign {
		assign[id] = int32(ShardFor(postings.FileID(id), n))
	}
	totalTerms := 0
	positional := false
	for _, src := range sources {
		totalTerms += src.NumTerms()
		positional = positional || src.Positional()
	}
	shards := make([]*index.Index, n)
	var wg sync.WaitGroup
	for s := range shards {
		wg.Add(1)
		go func(s int32) {
			defer wg.Done()
			dst := index.New(totalTerms / n)
			if positional {
				dst.SetPositional()
			}
			var mine []postings.FileID
			var mineCounts []uint32
			var minePos [][]uint32
			for _, src := range sources {
				src.Range(func(term string, l *postings.List) bool {
					mine, mineCounts, minePos = mine[:0], mineCounts[:0], minePos[:0]
					withPos := l.HasPositions()
					for i, id := range l.IDs() {
						if assign[id] == s {
							mine = append(mine, id)
							if withPos {
								minePos = append(minePos, l.PositionsAt(i))
							} else {
								mineCounts = append(mineCounts, l.CountAt(i))
							}
						}
					}
					if len(mine) > 0 {
						// Filtering an ascending list keeps it ascending,
						// so the sort-free constructors apply; frequencies —
						// and positions, for positional sources — travel
						// with their postings.
						if withPos {
							dst.MergeTerm(term, postings.FromSortedIDPositions(mine, minePos))
						} else {
							dst.MergeTerm(term, postings.FromSortedIDCounts(mine, mineCounts))
						}
					}
					return true
				})
			}
			shards[s] = dst
		}(int32(s))
	}
	wg.Wait()
	return New(files, shards)
}
