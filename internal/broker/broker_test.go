package broker

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"desksearch"
	"desksearch/internal/server"
	"desksearch/internal/vfs"
)

// buildDir builds a 4-shard corpus and saves it to a temp directory.
func buildDir(t *testing.T, nFiles int, positional bool) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	vocab := []string{
		"report", "reporting", "reported", "quarterly", "annual", "draft",
		"final", "review", "milk", "flour", "pancake", "allergy", "budget",
		"forecast", "revenue", "index", "search", "parallel", "thread",
	}
	fs := vfs.NewMemFS()
	for i := 0; i < nFiles; i++ {
		var words []string
		n := 5 + rng.Intn(40)
		for w := 0; w < n; w++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		if i%6 == 0 {
			words = append(words, "annual", "report")
		}
		name := fmt.Sprintf("dir%d/file%03d.txt", i%5, i)
		if err := fs.WriteFile(name, []byte(strings.Join(words, " "))); err != nil {
			t.Fatal(err)
		}
	}
	built, err := desksearch.IndexFS(fs, ".", desksearch.Options{Positions: positional, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startWorker serves a shard subset of dir as a dsearchd worker over
// loopback HTTP.
func startWorker(t *testing.T, dir string, shards []int) *httptest.Server {
	t.Helper()
	cat, err := desksearch.OpenDirShards(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	srv := server.New(server.Config{Catalog: cat, Worker: true, CacheEntries: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// startSingle serves the whole directory as one node — the ground truth
// the distributed responses are compared against.
func startSingle(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	cat, err := desksearch.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	srv := server.New(server.Config{Catalog: cat, CacheEntries: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newTestBroker builds a broker over the groups, verifies topology, and
// serves it over loopback HTTP.
func newTestBroker(t *testing.T, groups [][]string, hedgeAfter time.Duration) (*Broker, *httptest.Server) {
	t.Helper()
	b, err := New(Config{Groups: groups, HedgeAfter: hedgeAfter})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckTopology(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(b.Handler())
	t.Cleanup(ts.Close)
	return b, ts
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON[T any](t *testing.T, rawURL string) (int, T) {
	t.Helper()
	var out T
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", rawURL, err)
	}
	return resp.StatusCode, out
}

// TestBrokerEqualsSingleNode is the distributed-serving property test: a
// broker over two shard-subset workers must answer every query shape —
// boolean, phrase, prefix, all three rankings, snippets, paging, path
// filters — byte-for-byte like a single node over the whole directory:
// same totals, same order, bit-identical scores, same snippets, and the
// same per-partition match counts.
func TestBrokerEqualsSingleNode(t *testing.T) {
	dir := buildDir(t, 150, true)
	single := startSingle(t, dir)
	// Interleaved subsets, to prove partition identity is global.
	w1 := startWorker(t, dir, []int{0, 2})
	w2 := startWorker(t, dir, []int{1, 3})
	_, bts := newTestBroker(t, [][]string{{w1.URL}, {w2.URL}}, 0)

	cases := []url.Values{
		{"q": {"report"}},
		{"q": {"quarterly report -draft"}, "rank": {"tf"}, "limit": {"20"}},
		{"q": {"milk OR flour"}, "rank": {"count"}, "limit": {"50"}},
		{"q": {`"annual report"`}, "rank": {"bm25"}, "limit": {"15"}, "snippets": {"true"}},
		{"q": {"repor*"}, "rank": {"bm25"}, "limit": {"25"}},
		{"q": {"flour OR -report"}, "limit": {"60"}},
		{"q": {"report"}, "rank": {"bm25"}, "limit": {"10"}, "offset": {"5"}, "snippets": {"true"}},
		{"q": {"report"}, "prefix": {"dir2/"}, "rank": {"bm25"}, "limit": {"30"}},
		{"q": {"rev* forecast"}, "rank": {"bm25"}, "limit": {"15"}, "snippets": {"true"}},
		{"q": {`"annual report" -flour`}, "rank": {"tf"}, "limit": {"35"}},
	}
	for _, params := range cases {
		label := params.Encode()
		s1, want := getJSON[server.SearchResponse](t, single.URL+"/search?"+label)
		s2, got := getJSON[server.SearchResponse](t, bts.URL+"/search?"+label)
		if s1 != http.StatusOK || s2 != http.StatusOK {
			t.Fatalf("%s: status single=%d broker=%d", label, s1, s2)
		}
		if got.Query != want.Query {
			t.Fatalf("%s: canonical query %q vs %q", label, got.Query, want.Query)
		}
		if got.Total != want.Total {
			t.Fatalf("%s: Total %d vs single-node %d", label, got.Total, want.Total)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("%s: %d hits vs single-node %d", label, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			h1, h2 := want.Hits[i], got.Hits[i]
			if h1.Path != h2.Path {
				t.Fatalf("%s: hit %d path %q vs %q", label, i, h2.Path, h1.Path)
			}
			if math.Float64bits(h1.Score) != math.Float64bits(h2.Score) {
				t.Fatalf("%s: hit %d (%s) score bits %x vs %x", label, i, h1.Path,
					math.Float64bits(h2.Score), math.Float64bits(h1.Score))
			}
			if fmt.Sprint(h1.Terms) != fmt.Sprint(h2.Terms) {
				t.Fatalf("%s: hit %d terms %v vs %v", label, i, h2.Terms, h1.Terms)
			}
			if (h1.Snippet == nil) != (h2.Snippet == nil) {
				t.Fatalf("%s: hit %d snippet presence %v vs %v", label, i, h2.Snippet != nil, h1.Snippet != nil)
			}
			if h1.Snippet != nil && (h1.Snippet.Text != h2.Snippet.Text ||
				fmt.Sprint(h1.Snippet.Highlights) != fmt.Sprint(h2.Snippet.Highlights)) {
				t.Fatalf("%s: hit %d snippet %+v vs %+v", label, i, h2.Snippet, h1.Snippet)
			}
		}
		// Per-partition match counts, keyed by global shard number, agree
		// with the single node's local partitions.
		wantMatched := make(map[int]int)
		for _, p := range want.Partitions {
			wantMatched[p.Partition] = p.Matched
		}
		for _, p := range got.Partitions {
			if p.Matched != wantMatched[p.Partition] {
				t.Fatalf("%s: shard %d matched %d, single-node %d",
					label, p.Partition, p.Matched, wantMatched[p.Partition])
			}
		}
	}

	// Suggestions: n exceeds the vocabulary, so the distributed merge is
	// exact and must match the single node term for term.
	s1, wantSug := getJSON[server.SuggestResponse](t, single.URL+"/suggest?q=re&n=50")
	s2, gotSug := getJSON[server.SuggestResponse](t, bts.URL+"/suggest?q=re&n=50")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("suggest status single=%d broker=%d", s1, s2)
	}
	if fmt.Sprint(wantSug.Suggestions) != fmt.Sprint(gotSug.Suggestions) {
		t.Fatalf("suggest: broker %v vs single-node %v", gotSug.Suggestions, wantSug.Suggestions)
	}
}

// TestBrokerHedgedRequests: with one replica artificially stalled, the
// hedge fires after the configured delay and the healthy replica's
// answer wins — queries stay fast and correct instead of hanging on the
// straggler.
func TestBrokerHedgedRequests(t *testing.T) {
	dir := buildDir(t, 60, true)

	fast := startWorker(t, dir, nil)

	// A second full-directory replica whose /internal/search stalls until
	// the broker abandons it (the request context ends) once the flag
	// flips — topology and health checks keep answering normally.
	var stall atomic.Bool
	cat, err := desksearch.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	inner := server.New(server.Config{Catalog: cat, Worker: true, CacheEntries: -1}).Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stall.Load() && r.URL.Path == "/internal/search" {
			// Drain the body first: the server only notices the broker
			// abandoning the request (and cancels r.Context) once it can
			// read the connection.
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-time.After(30 * time.Second):
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)

	b, bts := newTestBroker(t, [][]string{{slow.URL, fast.URL}}, 5*time.Millisecond)
	stall.Store(true)

	start := time.Now()
	const rounds = 6 // rotation alternates primaries, so ~half stall
	for i := 0; i < rounds; i++ {
		status, resp := getJSON[server.SearchResponse](t, bts.URL+"/search?q=report&rank=bm25&limit=10")
		if status != http.StatusOK {
			t.Fatalf("round %d: status %d", i, status)
		}
		if resp.Total == 0 || len(resp.Hits) == 0 {
			t.Fatalf("round %d: empty response %+v", i, resp)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedging did not rescue stalled replicas: %d rounds took %s", rounds, elapsed)
	}
	if b.hedges.Load() == 0 || b.hedgeWins.Load() == 0 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both > 0", b.hedges.Load(), b.hedgeWins.Load())
	}

	// The policy is visible in /stats and /metrics alike.
	status, st := getJSON[StatsResponse](t, bts.URL+"/stats")
	if status != http.StatusOK || st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("/stats = %d %+v, want hedge counters > 0", status, st)
	}
	m := scrapeMetrics(t, bts.URL)
	if m["ds_hedges_total"] == 0 || m["ds_hedge_wins_total"] == 0 {
		t.Fatalf("/metrics hedges=%v hedge_wins=%v, want both > 0",
			m["ds_hedges_total"], m["ds_hedge_wins_total"])
	}
	if m[`ds_requests_total{endpoint="search",outcome="ok"}`] < rounds {
		t.Fatalf("/metrics request counter = %v, want >= %d",
			m[`ds_requests_total{endpoint="search",outcome="ok"}`], rounds)
	}
}

// TestBrokerFailover: killing one replica of a two-replica group
// degrades to success — the broker fails over to the survivor, counts
// it, delists the dead replica, and /healthz stays green.
func TestBrokerFailover(t *testing.T) {
	dir := buildDir(t, 60, false)
	w1 := startWorker(t, dir, nil)
	w2 := startWorker(t, dir, nil)
	b, bts := newTestBroker(t, [][]string{{w1.URL, w2.URL}}, 0)

	w1.Close() // the fleet loses a replica after topology verification

	for i := 0; i < 4; i++ { // rotation guarantees the dead one is tried
		status, resp := getJSON[server.SearchResponse](t, bts.URL+"/search?q=report&limit=5")
		if status != http.StatusOK {
			t.Fatalf("round %d: status %d", i, status)
		}
		if resp.Total == 0 {
			t.Fatalf("round %d: empty response", i)
		}
	}
	if b.failovers.Load() == 0 {
		t.Fatal("no failover was recorded against a dead replica")
	}

	status, st := getJSON[StatsResponse](t, bts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("/stats status %d", status)
	}
	if st.Failovers == 0 {
		t.Fatal("/stats does not surface the failovers")
	}
	var deadSeen bool
	for _, g := range st.Groups {
		for _, r := range g.Replicas {
			if r.URL == w1.URL && !r.Healthy {
				deadSeen = true
			}
		}
	}
	if !deadSeen {
		t.Fatalf("/stats does not show the dead replica as unhealthy: %+v", st.Groups)
	}
	// One replica per group still stands: the broker is degraded, not down.
	status, _ = getJSON[map[string]any](t, bts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz = %d with a live replica remaining, want 200", status)
	}
}

// TestBrokerTopologyValidation: incoherent fleets are refused at startup.
func TestBrokerTopologyValidation(t *testing.T) {
	dir := buildDir(t, 40, false)
	w02 := startWorker(t, dir, []int{0, 2})
	w13 := startWorker(t, dir, []int{1, 3})
	w02b := startWorker(t, dir, []int{0, 2})

	check := func(groups [][]string) error {
		b, err := New(Config{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		return b.CheckTopology(context.Background())
	}
	if err := check([][]string{{w02.URL}, {w02b.URL}}); err == nil || !strings.Contains(err.Error(), "claimed by both") {
		t.Fatalf("overlapping groups accepted: %v", err)
	}
	if err := check([][]string{{w02.URL}}); err == nil || !strings.Contains(err.Error(), "served by no group") {
		t.Fatalf("uncovered shards accepted: %v", err)
	}
	if err := check([][]string{{w02.URL, w13.URL}}); err == nil || !strings.Contains(err.Error(), "replicas disagree") {
		t.Fatalf("mismatched replicas accepted: %v", err)
	}
	if err := check([][]string{{w02.URL}, {w13.URL}}); err != nil {
		t.Fatalf("valid topology refused: %v", err)
	}

	// Workers over different directories disagree on the manifest.
	other := buildDir(t, 25, false)
	o13 := startWorker(t, other, []int{1, 3})
	if err := check([][]string{{w02.URL}, {o13.URL}}); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mixed directories accepted: %v", err)
	}
}

// TestBrokerDeterministicErrors: a worker-side 4xx (here: a phrase query
// against a positionless index) propagates to the client as the same
// 4xx, not as a retried-then-502 fleet error.
func TestBrokerDeterministicErrors(t *testing.T) {
	dir := buildDir(t, 30, false) // no positions: phrase queries are 400s
	w1 := startWorker(t, dir, []int{0, 2})
	w2 := startWorker(t, dir, []int{1, 3})
	b, bts := newTestBroker(t, [][]string{{w1.URL}, {w2.URL}}, 0)

	status, body := getJSON[map[string]any](t, bts.URL+`/search?q=%22annual+report%22&limit=5`)
	if status != http.StatusBadRequest {
		t.Fatalf("phrase query on positionless fleet = %d (%v), want 400", status, body)
	}
	if body["code"] != string(desksearch.CodeNoPositions) {
		t.Fatalf("worker error code %v not forwarded through broker, want %q", body["code"], desksearch.CodeNoPositions)
	}
	if b.failovers.Load() != 0 {
		t.Fatalf("deterministic 4xx caused %d failovers, want 0", b.failovers.Load())
	}

	// Broker-local parse errors never reach the fleet.
	status, _ = getJSON[map[string]any](t, bts.URL+"/search?q=report&rank=nonsense")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown ranking = %d, want 400", status)
	}
}
