package distribute

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"desksearch/internal/walk"
)

func mkFiles(sizes ...int64) []walk.FileRef {
	out := make([]walk.FileRef, len(sizes))
	for i, s := range sizes {
		out[i] = walk.FileRef{Path: fmt.Sprintf("f%03d", i), Size: s}
	}
	return out
}

func flatten(parts [][]walk.FileRef) []walk.FileRef {
	var out []walk.FileRef
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func TestStrategyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || BySize.String() != "by-size" ||
		Chunked.String() != "chunked" || Strategy(99).String() != "unknown" {
		t.Error("Strategy names wrong")
	}
}

func TestRoundRobinDealsInRotation(t *testing.T) {
	files := mkFiles(1, 2, 3, 4, 5, 6, 7)
	parts := Partition(files, 3, RoundRobin)
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	wantCounts := []int{3, 2, 2}
	for i, p := range parts {
		if len(p) != wantCounts[i] {
			t.Errorf("part %d has %d files, want %d", i, len(p), wantCounts[i])
		}
	}
	// File i goes to worker i%k: the paper's exact scheme.
	if parts[0][0].Path != "f000" || parts[1][0].Path != "f001" || parts[2][0].Path != "f002" {
		t.Error("rotation order wrong")
	}
	if parts[0][1].Path != "f003" {
		t.Error("second round wrong")
	}
}

func TestChunkedContiguous(t *testing.T) {
	files := mkFiles(1, 1, 1, 1, 1)
	parts := Partition(files, 2, Chunked)
	if len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Fatalf("chunk sizes %d/%d", len(parts[0]), len(parts[1]))
	}
	if parts[0][2].Path != "f002" || parts[1][0].Path != "f003" {
		t.Error("chunk boundaries wrong")
	}
}

func TestBySizeBalancesSkewedLoad(t *testing.T) {
	// One huge file plus many small: LPT must isolate the huge file.
	files := mkFiles(1000, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10)
	parts := Partition(files, 2, BySize)
	imb := Imbalance(parts)
	rrImb := Imbalance(Partition(files, 2, RoundRobin))
	if imb >= rrImb {
		t.Errorf("BySize imbalance %.3f not better than round-robin %.3f", imb, rrImb)
	}
	// The huge file's worker should carry (about) only it.
	for _, p := range parts {
		for _, f := range p {
			if f.Size == 1000 && len(p) > 2 {
				t.Errorf("huge file shares a worker with %d files", len(p)-1)
			}
		}
	}
}

// Property: every strategy partitions the input exactly (no loss, no
// duplication) for any k.
func TestPartitionPreservesMultiset(t *testing.T) {
	if err := quick.Check(func(rawSizes []uint16, kRaw uint8) bool {
		sizes := make([]int64, len(rawSizes))
		for i, s := range rawSizes {
			sizes[i] = int64(s)
		}
		files := mkFiles(sizes...)
		k := int(kRaw%8) + 1
		for _, strat := range []Strategy{RoundRobin, BySize, Chunked} {
			parts := Partition(files, k, strat)
			if len(parts) != k {
				return false
			}
			if !reflect.DeepEqual(flatten(parts), append([]walk.FileRef{}, files...)) && len(files) > 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPartitionDegenerateInputs(t *testing.T) {
	if parts := Partition(nil, 4, RoundRobin); len(parts) != 4 {
		t.Error("nil files should still give k empty parts")
	}
	if parts := Partition(mkFiles(1, 2), 0, RoundRobin); len(parts) != 1 {
		t.Error("k<1 should clamp to 1")
	}
	parts := Partition(mkFiles(5), 3, BySize)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 1 {
		t.Error("single file distributed wrongly")
	}
}

func TestImbalance(t *testing.T) {
	perfect := [][]walk.FileRef{mkFiles(10), mkFiles(10)}
	if got := Imbalance(perfect); got != 1.0 {
		t.Errorf("perfect imbalance = %v", got)
	}
	skewed := [][]walk.FileRef{mkFiles(30), mkFiles(10)}
	if got := Imbalance(skewed); got != 1.5 {
		t.Errorf("skewed imbalance = %v", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Errorf("nil imbalance = %v", got)
	}
}

func TestQueueSequential(t *testing.T) {
	q := NewQueue()
	files := mkFiles(1, 2, 3)
	for _, f := range files {
		q.Push(f)
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
	q.Close()
	var got []walk.FileRef
	for {
		f, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, f)
	}
	if !reflect.DeepEqual(got, files) {
		t.Errorf("FIFO violated: %v", got)
	}
	// Pop after drain keeps returning done.
	if _, ok := q.Pop(); ok {
		t.Error("Pop on drained queue returned ok")
	}
}

func TestQueueConcurrentProducerConsumers(t *testing.T) {
	q := NewQueue()
	const n = 1000
	go func() {
		for i := 0; i < n; i++ {
			q.Push(walk.FileRef{Path: fmt.Sprintf("f%04d", i), Size: 1})
		}
		q.Close()
	}()
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				f, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				if seen[f.Path] {
					t.Errorf("duplicate delivery of %s", f.Path)
				}
				seen[f.Path] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("delivered %d files, want %d", len(seen), n)
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	q := NewQueue()
	q.Close()
	defer func() {
		if recover() == nil {
			t.Error("Push after Close did not panic")
		}
	}()
	q.Push(walk.FileRef{})
}

func TestStealingPoolDrainsEverything(t *testing.T) {
	files := mkFiles(make([]int64, 500)...)
	p := NewStealingPool(files, 4)
	if p.Workers() != 4 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				f, ok := p.Next(w)
				if !ok {
					return
				}
				mu.Lock()
				if seen[f.Path] {
					t.Errorf("file %s delivered twice", f.Path)
				}
				seen[f.Path] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != len(files) {
		t.Errorf("drained %d files, want %d", len(seen), len(files))
	}
	if p.Remaining() != 0 {
		t.Errorf("Remaining = %d", p.Remaining())
	}
}

func TestStealingHappensWhenOneWorkerIsSlow(t *testing.T) {
	// Worker 0 never calls Next; the others must steal its share.
	files := mkFiles(make([]int64, 90)...)
	p := NewStealingPool(files, 3)
	count := 0
	for {
		_, ok := p.Next(1)
		if !ok {
			break
		}
		count++
		if count > len(files) {
			t.Fatal("more deliveries than files")
		}
	}
	if count != len(files) {
		t.Errorf("worker 1 alone drained %d, want all %d", count, len(files))
	}
}

func TestStealingSingleWorker(t *testing.T) {
	p := NewStealingPool(mkFiles(1, 2, 3), 1)
	n := 0
	for {
		if _, ok := p.Next(0); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("drained %d", n)
	}
}

// Property: stealing pool delivers each file exactly once under a random
// single-threaded access pattern.
func TestStealingExactlyOnce(t *testing.T) {
	if err := quick.Check(func(nFiles uint8, k uint8, seed int64) bool {
		n := int(nFiles%64) + 1
		workers := int(k%5) + 1
		files := mkFiles(make([]int64, n)...)
		p := NewStealingPool(files, workers)
		rng := rand.New(rand.NewSource(seed))
		seen := map[string]bool{}
		for {
			w := rng.Intn(workers)
			f, ok := p.Next(w)
			if !ok {
				// Next(w)=false means globally empty.
				break
			}
			if seen[f.Path] {
				return false
			}
			seen[f.Path] = true
		}
		return len(seen) == n
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPartitionRoundRobin(b *testing.B) {
	files := mkFiles(make([]int64, 51000)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(files, 8, RoundRobin)
	}
}

func BenchmarkPartitionBySize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sizes := make([]int64, 51000)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(1 << 16))
	}
	files := mkFiles(sizes...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(files, 8, BySize)
	}
}

func BenchmarkQueueThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := NewQueue()
		go func() {
			for j := 0; j < 1000; j++ {
				q.Push(walk.FileRef{Size: 1})
			}
			q.Close()
		}()
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}
