// Package corpus generates the synthetic benchmark corpus.
//
// The paper's benchmark is ≈51,000 ASCII text files totalling ≈869 MB —
// "many small files and five large text files", produced by extracting plain
// text from word-processor documents. That corpus is not available, so this
// package builds a statistically equivalent one: a deterministic generator
// parameterized by file count, total size, small/large mix, vocabulary size,
// and Zipfian term skew.
//
// Two products are offered from the same Spec and seed:
//
//   - Generate materializes real files (into any vfs.WriteFS) for live runs;
//   - Describe produces metadata only (per-file sizes and term statistics)
//     so the discrete-event simulator can model the full 869 MB corpus
//     without allocating it.
package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"desksearch/internal/vfs"
)

// Spec describes a synthetic corpus. The zero value is not useful; start
// from PaperSpec or SmallSpec and adjust.
type Spec struct {
	// Files is the total number of files, including the large ones.
	Files int
	// TotalBytes is the aggregate corpus size.
	TotalBytes int64
	// LargeFiles is the number of outsized files (the paper has five).
	LargeFiles int
	// LargeBytesFraction is the fraction of TotalBytes carried by the
	// large files.
	LargeBytesFraction float64
	// VocabSize is the number of distinct words available to the generator.
	VocabSize int
	// ZipfS is the Zipf skew (> 1); larger means more repetition.
	ZipfS float64
	// MinTermLen and MaxTermLen bound generated word lengths.
	MinTermLen, MaxTermLen int
	// FilesPerDir controls directory tree shape.
	FilesPerDir int
	// DirFanout is the number of subdirectories per directory level.
	DirFanout int
	// HTMLFraction and WPFraction of files are written in those formats
	// (exercising internal/docfmt); the rest are plain text.
	HTMLFraction, WPFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// PaperSpec returns the shape of the paper's benchmark: ≈51,000 files,
// ≈869 MB, five large files. Generating it materializes ≈869 MB — use
// Scale for tests.
func PaperSpec() Spec {
	return Spec{
		Files:              51_000,
		TotalBytes:         869 << 20,
		LargeFiles:         5,
		LargeBytesFraction: 0.30,
		VocabSize:          150_000,
		ZipfS:              1.20,
		MinTermLen:         2,
		MaxTermLen:         12,
		FilesPerDir:        64,
		DirFanout:          8,
		HTMLFraction:       0.0, // the paper pre-extracted everything to plain text
		WPFraction:         0.0,
		Seed:               20100511, // the report's publication date
	}
}

// SmallSpec returns a laptop-test-sized corpus (≈400 files, ≈6 MB) with the
// same proportions and a format mix that exercises docfmt.
func SmallSpec() Spec {
	s := PaperSpec().Scale(1.0 / 128)
	s.HTMLFraction = 0.10
	s.WPFraction = 0.10
	return s
}

// Scale returns a copy of s with file count and byte volume scaled by f.
// Vocabulary scales with the square root of f (Heaps-like growth), and the
// large-file count never exceeds the total file count.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.Files = maxInt(1, int(float64(s.Files)*f))
	out.TotalBytes = int64(float64(s.TotalBytes) * f)
	if out.TotalBytes < 1<<10 {
		out.TotalBytes = 1 << 10
	}
	out.VocabSize = maxInt(64, int(float64(s.VocabSize)*math.Sqrt(f)))
	if out.LargeFiles > out.Files/2 {
		out.LargeFiles = out.Files / 2
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// normalize fills defaults for zero fields.
func (s Spec) normalize() Spec {
	if s.Files <= 0 {
		s.Files = 1
	}
	if s.LargeFiles < 0 {
		s.LargeFiles = 0
	}
	if s.LargeFiles > s.Files {
		s.LargeFiles = s.Files
	}
	if s.TotalBytes <= 0 {
		s.TotalBytes = 1 << 20
	}
	if s.LargeBytesFraction < 0 || s.LargeBytesFraction >= 1 || s.LargeFiles == 0 {
		s.LargeBytesFraction = 0
	}
	if s.VocabSize <= 0 {
		s.VocabSize = 1000
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.MinTermLen <= 0 {
		s.MinTermLen = 2
	}
	if s.MaxTermLen < s.MinTermLen {
		s.MaxTermLen = s.MinTermLen + 8
	}
	if s.FilesPerDir <= 0 {
		s.FilesPerDir = 64
	}
	if s.DirFanout <= 1 {
		s.DirFanout = 8
	}
	return s
}

// FileStat is the metadata of one corpus file, used directly by the
// simulator and by work-distribution tests.
type FileStat struct {
	// Path is the slash-separated file path within the corpus root.
	Path string
	// Size is the file's byte length.
	Size int64
	// Terms is the (modelled) number of term occurrences in the file.
	Terms int
	// Unique is the (modelled) number of distinct terms in the file.
	Unique int
	// Format is the docfmt extension used ("txt", "html", "wp").
	Format string
}

// Stats is the metadata-only description of a corpus.
type Stats struct {
	Spec       Spec
	Files      []FileStat
	TotalBytes int64
	// TotalTerms is the sum of per-file term counts.
	TotalTerms int64
	// TotalUnique is the sum of per-file unique counts (the number of
	// (term, file) postings the index will hold).
	TotalUnique int64
	// VocabEstimate approximates the number of distinct terms corpus-wide
	// (the final index size).
	VocabEstimate int
}

// avgTermBytes returns the expected generated word length including its
// separator, used to convert byte budgets to term counts.
func (s Spec) avgTermBytes() float64 {
	return (float64(s.MinTermLen)+float64(s.MaxTermLen))/2 + 1
}

// heapsUnique models the number of distinct terms among n Zipfian draws
// (Heaps' law with parameters matching the generator's Zipf skew; validated
// against measured corpora in the tests at small scale).
func heapsUnique(n int, vocab int) int {
	if n <= 0 {
		return 0
	}
	u := int(math.Ceil(2.2 * math.Pow(float64(n), 0.62)))
	if u > n {
		u = n
	}
	if u > vocab {
		u = vocab
	}
	return u
}

// Describe computes per-file metadata for the spec without generating any
// content. The same seed yields file sizes identical to Generate's.
func Describe(spec Spec) Stats {
	spec = spec.normalize()
	rng := rand.New(rand.NewSource(spec.Seed))
	sizes, formats := layoutSizes(spec, rng)
	stats := Stats{Spec: spec, Files: make([]FileStat, len(sizes))}
	atb := spec.avgTermBytes()
	for i, size := range sizes {
		terms := int(float64(size) / atb)
		unique := heapsUnique(terms, spec.VocabSize)
		stats.Files[i] = FileStat{
			Path:   filePath(spec, i, formats[i]),
			Size:   size,
			Terms:  terms,
			Unique: unique,
			Format: formats[i],
		}
		stats.TotalBytes += size
		stats.TotalTerms += int64(terms)
		stats.TotalUnique += int64(unique)
	}
	stats.VocabEstimate = heapsUnique(int(minI64(stats.TotalTerms, 1<<31-1)), spec.VocabSize)
	return stats
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// layoutSizes draws the per-file sizes and formats. Index 0..LargeFiles-1
// are the large files; the rest are small files with exponential spread.
func layoutSizes(spec Spec, rng *rand.Rand) (sizes []int64, formats []string) {
	sizes = make([]int64, spec.Files)
	formats = make([]string, spec.Files)
	largeTotal := int64(float64(spec.TotalBytes) * spec.LargeBytesFraction)
	smallTotal := spec.TotalBytes - largeTotal
	smallFiles := spec.Files - spec.LargeFiles

	for i := 0; i < spec.LargeFiles; i++ {
		sizes[i] = largeTotal / int64(spec.LargeFiles)
		formats[i] = "txt" // the paper's large files are plain text
	}
	if smallFiles > 0 {
		weights := make([]float64, smallFiles)
		var sum float64
		for i := range weights {
			w := 0.15 + rng.ExpFloat64()
			if w > 6 {
				w = 6
			}
			weights[i] = w
			sum += w
		}
		for i, w := range weights {
			size := int64(float64(smallTotal) * w / sum)
			if size < 64 {
				size = 64
			}
			sizes[spec.LargeFiles+i] = size
			formats[spec.LargeFiles+i] = drawFormat(spec, rng)
		}
	}
	return sizes, formats
}

func drawFormat(spec Spec, rng *rand.Rand) string {
	r := rng.Float64()
	switch {
	case r < spec.HTMLFraction:
		return "html"
	case r < spec.HTMLFraction+spec.WPFraction:
		return "wp"
	default:
		return "txt"
	}
}

// filePath places file i in the directory tree. Large files sit at the
// root, like the paper's five big extractions; small files are spread over
// a DirFanout-ary tree with FilesPerDir files per leaf.
func filePath(spec Spec, i int, format string) string {
	if i < spec.LargeFiles {
		return fmt.Sprintf("large-%d.%s", i, format)
	}
	n := i - spec.LargeFiles
	dir := n / spec.FilesPerDir
	// Express dir in base DirFanout, one path element per digit.
	path := ""
	for d := dir; ; d /= spec.DirFanout {
		path = fmt.Sprintf("d%02d/%s", d%spec.DirFanout, path)
		if d < spec.DirFanout {
			break
		}
	}
	return fmt.Sprintf("%sfile-%06d.%s", path, n, format)
}

// Generate materializes the corpus into fs. It returns the same metadata as
// Describe (sizes match exactly; term statistics in the metadata remain the
// model's, while file content is the ground truth).
func Generate(spec Spec, fs vfs.WriteFS) (Stats, error) {
	spec = spec.normalize()
	stats := Describe(spec)
	vocab := BuildVocabulary(spec)
	// Content RNG is separate from the layout RNG so Describe and Generate
	// agree on sizes.
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed_c0de))
	zipf := rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.VocabSize-1))
	for i := range stats.Files {
		f := &stats.Files[i]
		data := renderFile(f, vocab, zipf, rng)
		if err := fs.WriteFile(f.Path, data); err != nil {
			return stats, fmt.Errorf("corpus: writing %s: %w", f.Path, err)
		}
	}
	return stats, nil
}

// BuildVocabulary returns the deterministic word list for the spec.
// Words are lower-case ASCII, unique, with lengths in the configured range.
func BuildVocabulary(spec Spec) []string {
	spec = spec.normalize()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x7e57_ab1e))
	words := make([]string, spec.VocabSize)
	seen := make(map[string]bool, spec.VocabSize)
	for i := range words {
		for {
			w := randomWord(rng, spec.MinTermLen, spec.MaxTermLen)
			if !seen[w] {
				seen[w] = true
				words[i] = w
				break
			}
		}
	}
	return words
}

func randomWord(rng *rand.Rand, minLen, maxLen int) string {
	n := minLen + rng.Intn(maxLen-minLen+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// renderFile produces the file body: Zipf-drawn words separated by spaces
// with occasional newlines, wrapped according to the file's format.
func renderFile(f *FileStat, vocab []string, zipf *rand.Zipf, rng *rand.Rand) []byte {
	budget := int(f.Size)
	body := make([]byte, 0, budget+16)
	var overhead int
	switch f.Format {
	case "html":
		overhead = len(htmlHeader) + len(htmlFooter)
	case "wp":
		overhead = len(wpHeader)
	}
	col := 0
	for len(body)+overhead < budget {
		w := vocab[zipf.Uint64()]
		body = append(body, w...)
		col += len(w) + 1
		if col >= 72 {
			body = append(body, '\n')
			col = 0
		} else {
			body = append(body, ' ')
		}
	}
	switch f.Format {
	case "html":
		out := make([]byte, 0, len(body)+overhead)
		out = append(out, htmlHeader...)
		out = append(out, body...)
		out = append(out, htmlFooter...)
		return out
	case "wp":
		out := make([]byte, 0, len(body)+overhead)
		out = append(out, wpHeader...)
		out = append(out, body...)
		return out
	default:
		return body
	}
}

const (
	htmlHeader = "<!DOCTYPE html><html><body><p>\n"
	htmlFooter = "</p></body></html>\n"
	wpHeader   = ".wp 1.0\n.pp\n"
)
