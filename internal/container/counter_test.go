package container

import (
	"fmt"
	"sort"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter(4)
	if !c.Add("cat") || c.Add("cat") || !c.Add("dog") {
		t.Error("Add new/seen reporting wrong")
	}
	c.Add("cat")
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if c.Count("cat") != 3 || c.Count("dog") != 1 || c.Count("fish") != 0 {
		t.Errorf("counts: cat=%d dog=%d fish=%d", c.Count("cat"), c.Count("dog"), c.Count("fish"))
	}
	keys, counts := c.Pairs(nil, nil)
	if len(keys) != 2 || len(counts) != 2 {
		t.Fatalf("Pairs = %v / %v", keys, counts)
	}
	for i, k := range keys {
		if counts[i] != c.Count(k) {
			t.Errorf("pair %q: %d != %d", k, counts[i], c.Count(k))
		}
	}
}

func TestCounterGrowAndReset(t *testing.T) {
	c := NewCounter(2)
	want := map[string]uint32{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("term%03d", i%100)
		c.Add(k)
		want[k]++
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	keys, counts := c.Pairs(nil, nil)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for k, n := range want {
		if c.Count(k) != n {
			t.Errorf("Count(%q) = %d, want %d", k, c.Count(k), n)
		}
	}
	_ = counts
	c.Reset()
	if c.Len() != 0 || c.Count("term001") != 0 {
		t.Error("Reset left state behind")
	}
	if !c.Add("term001") || c.Count("term001") != 1 {
		t.Error("counter unusable after Reset")
	}
}
