package vfs

import (
	"io"
	"sync"
	"testing"
	"time"
)

func newPopulatedMem(t *testing.T) *MemFS {
	t.Helper()
	fs := NewMemFS()
	files := map[string]string{
		"a.txt":      "0123456789",       // 10 bytes
		"dir/b.txt":  "0123456789012345", // 16 bytes
		"dir/c.html": "<b>x</b>",
	}
	for name, content := range files {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func TestMeterCountsReads(t *testing.T) {
	m := NewMeter(newPopulatedMem(t))
	if _, err := m.ReadFile("a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("dir/b.txt"); err != nil {
		t.Fatal(err)
	}
	c := m.Counts()
	if c.Opens != 2 {
		t.Errorf("Opens = %d, want 2", c.Opens)
	}
	if c.BytesRead != 26 {
		t.Errorf("BytesRead = %d, want 26", c.BytesRead)
	}
	if c.ReadCalls != 2 {
		t.Errorf("ReadCalls = %d, want 2", c.ReadCalls)
	}
}

func TestMeterCountsOpenStream(t *testing.T) {
	m := NewMeter(newPopulatedMem(t))
	rc, err := m.Open("dir/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	total := 0
	for {
		n, err := rc.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	rc.Close()
	c := m.Counts()
	if c.BytesRead != 16 || total != 16 {
		t.Errorf("BytesRead = %d (read %d), want 16", c.BytesRead, total)
	}
	if c.Opens != 1 {
		t.Errorf("Opens = %d", c.Opens)
	}
}

func TestMeterCountsDirsAndStats(t *testing.T) {
	m := NewMeter(newPopulatedMem(t))
	m.ReadDir(".")
	m.ReadDir("dir")
	m.Stat("a.txt")
	c := m.Counts()
	if c.ReadDirs != 2 || c.Stats != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestMeterErrorPathsNotCountedAsBytes(t *testing.T) {
	m := NewMeter(newPopulatedMem(t))
	m.ReadFile("missing.txt")
	c := m.Counts()
	if c.BytesRead != 0 {
		t.Errorf("failed read counted bytes: %+v", c)
	}
	if c.Opens != 1 {
		t.Errorf("failed read should still count the open attempt: %+v", c)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(newPopulatedMem(t))
	m.ReadFile("a.txt")
	m.Reset()
	if c := m.Counts(); c != (Counts{}) {
		t.Errorf("after Reset: %+v", c)
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter(newPopulatedMem(t))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.ReadFile("a.txt")
			}
		}()
	}
	wg.Wait()
	c := m.Counts()
	if c.Opens != 400 || c.BytesRead != 4000 {
		t.Errorf("concurrent counts = %+v", c)
	}
}

func TestDiskModelTransferTime(t *testing.T) {
	d := DiskModel{Seek: time.Millisecond, BytesPerSecond: 1000}
	if got := d.TransferTime(500); got != 500*time.Millisecond {
		t.Errorf("TransferTime(500) = %v", got)
	}
	if got := (DiskModel{}).TransferTime(1 << 30); got != 0 {
		t.Errorf("zero-bandwidth TransferTime = %v", got)
	}
}

func TestDelayFSChargesModeledTime(t *testing.T) {
	var slept time.Duration
	var mu sync.Mutex
	d := NewDelayFS(newPopulatedMem(t), DiskModel{Seek: 5 * time.Millisecond, BytesPerSecond: 1000})
	d.sleep = func(dur time.Duration) {
		mu.Lock()
		slept += dur
		mu.Unlock()
	}

	// ReadFile of 10 bytes at 1000 B/s: 10ms transfer + 5ms seek.
	if _, err := d.ReadFile("a.txt"); err != nil {
		t.Fatal(err)
	}
	if slept != 15*time.Millisecond {
		t.Errorf("ReadFile slept %v, want 15ms", slept)
	}

	slept = 0
	rc, err := d.Open("a.txt") // seek only
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(rc) // transfer charged per Read call
	rc.Close()
	if slept != 15*time.Millisecond {
		t.Errorf("Open+ReadAll slept %v, want 15ms", slept)
	}

	slept = 0
	d.ReadDir(".")
	if slept != 5*time.Millisecond {
		t.Errorf("ReadDir slept %v, want 5ms (one seek)", slept)
	}

	slept = 0
	d.Stat("a.txt")
	if slept != 0 {
		t.Errorf("Stat slept %v, want 0", slept)
	}
}

func TestLimitedSerializesOperations(t *testing.T) {
	base := newPopulatedMem(t)
	lim := NewLimited(base, 1)

	var inFlight, peak int32
	var mu sync.Mutex
	probe := probeFS{FS: base, enter: func() {
		mu.Lock()
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
		mu.Unlock()
	}, exit: func() {
		mu.Lock()
		inFlight--
		mu.Unlock()
	}}
	lim = NewLimited(probe, 1)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := lim.ReadFile("a.txt"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if peak > 1 {
		t.Errorf("depth-1 limit allowed %d concurrent reads", peak)
	}
}

func TestLimitedAllowsConfiguredDepth(t *testing.T) {
	lim := NewLimited(newPopulatedMem(t), 4)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := lim.ReadFile("a.txt"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Depth clamps to minimum 1.
	if l := NewLimited(newPopulatedMem(t), 0); cap(l.sem) != 1 {
		t.Errorf("depth clamp = %d", cap(l.sem))
	}
}

func TestLimitedStreaming(t *testing.T) {
	lim := NewLimited(newPopulatedMem(t), 1)
	rc, err := lim.Open("dir/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || len(data) != 16 {
		t.Errorf("streamed %d bytes, %v", len(data), err)
	}
	if _, err := lim.Open("missing"); err == nil {
		t.Error("Open(missing) succeeded")
	}
	if _, err := lim.ReadDir("dir"); err != nil {
		t.Error(err)
	}
	if _, err := lim.Stat("a.txt"); err != nil {
		t.Error(err)
	}
}

type probeFS struct {
	FS
	enter, exit func()
}

func (p probeFS) ReadFile(name string) ([]byte, error) {
	p.enter()
	defer p.exit()
	return p.FS.ReadFile(name)
}

func TestDelayFSPropagatesErrors(t *testing.T) {
	d := NewDelayFS(newPopulatedMem(t), DiskModel{})
	d.sleep = func(time.Duration) {}
	if _, err := d.ReadFile("missing"); err == nil {
		t.Error("DelayFS swallowed error")
	}
	if _, err := d.Open("missing"); err == nil {
		t.Error("DelayFS Open swallowed error")
	}
}
