// Incremental: keep the index in step with a changing file tree.
//
// The paper builds its index in one batch; a real desktop search tool must
// also follow the user's edits. This example builds an index with the
// batch pipeline, then removes and re-indexes individual files through the
// maintenance API (internal/index RemoveFile / UpdateFile), checking the
// incrementally maintained index against a fresh rebuild at every step.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"desksearch/internal/core"
	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/postings"
	"desksearch/internal/search"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

func main() {
	fs := vfs.NewMemFS()
	write := func(name, content string) {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			log.Fatal(err)
		}
	}
	write("inbox/1.txt", "meeting notes budget review")
	write("inbox/2.txt", "lunch plans")
	write("projects/plan.txt", "project plan budget draft")

	build := func() (*index.Index, *index.FileTable) {
		res, err := core.Run(fs, ".", core.Config{Implementation: core.Sequential})
		if err != nil {
			log.Fatal(err)
		}
		return res.Index, res.Files
	}
	ix, files := build()
	report := func(when string) {
		engine := search.NewEngine(files, ix)
		hits, err := engine.SearchString("budget")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s budget matches %d file(s), index holds %s\n",
			when+":", len(hits), ix.Stats())
	}
	report("initial build")

	// The user excludes a file from search (or deletes it): drop its
	// postings in place. FileIDs are never reused, so the file table keeps
	// its slot as a tombstone — the reason incremental maintenance beats
	// re-walking the tree.
	var planID postings.FileID
	for i, p := range files.Paths() {
		if p == "projects/plan.txt" {
			planID = postings.FileID(i)
		}
	}
	removed := ix.RemoveFile(planID)
	fmt.Printf("removed projects/plan.txt: %d postings dropped\n", removed)
	report("after delete")

	// The user edits a file: re-extract it and swap its block in place.
	write("inbox/2.txt", "lunch plans moved, budget discussion instead")
	var lunchID postings.FileID
	for i, p := range files.Paths() {
		if p == "inbox/2.txt" {
			lunchID = postings.FileID(i)
		}
	}
	ex := extract.New(fs, extract.Options{Tokenize: tokenize.Default})
	block, err := ex.File("inbox/2.txt", lunchID)
	if err != nil {
		log.Fatal(err)
	}
	ix.UpdateFile(block.File, block.Terms)
	report("after edit")

	// Cross-check: the incrementally maintained index must answer like a
	// rebuilt one (modulo the deleted file, which a rebuild would not see).
	fresh, freshFiles := build()
	fresh.RemoveFile(planID) // rebuild still walks the deleted file's ID space
	_ = freshFiles
	if !ix.Equal(fresh) {
		log.Fatal("incremental index diverged from rebuild")
	}
	fmt.Println("incremental index verified against a fresh rebuild ✓")
}
