package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// fsUnderTest builds each implementation with identical content so shared
// conformance tests can run against both.
func fsUnderTest(t *testing.T) map[string]WriteFS {
	t.Helper()
	impls := map[string]WriteFS{
		"MemFS": NewMemFS(),
		"OSFS":  NewOSFS(t.TempDir()),
	}
	return impls
}

var conformanceContent = map[string]string{
	"a.txt":              "alpha file",
	"docs/b.txt":         "bravo file",
	"docs/c.txt":         "charlie file",
	"docs/deep/d.txt":    "delta",
	"empty.txt":          "",
	"docs/deep/e/f.txt":  "foxtrot",
	"zzz/last-entry.txt": "zulu",
}

func populate(t *testing.T, fs WriteFS) {
	t.Helper()
	for name, content := range conformanceContent {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatalf("WriteFile(%q): %v", name, err)
		}
	}
}

func TestFSConformance(t *testing.T) {
	for name, fs := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			populate(t, fs)

			// ReadFile round-trips every file.
			for path, content := range conformanceContent {
				got, err := fs.ReadFile(path)
				if err != nil {
					t.Fatalf("ReadFile(%q): %v", path, err)
				}
				if string(got) != content {
					t.Errorf("ReadFile(%q) = %q, want %q", path, got, content)
				}
			}

			// Open agrees with ReadFile.
			rc, err := fs.Open("docs/b.txt")
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err != nil || string(data) != "bravo file" {
				t.Errorf("Open/ReadAll = %q, %v", data, err)
			}

			// ReadDir is sorted and complete.
			entries, err := fs.ReadDir("docs")
			if err != nil {
				t.Fatal(err)
			}
			var names []string
			for _, e := range entries {
				names = append(names, e.Name)
			}
			want := []string{"b.txt", "c.txt", "deep"}
			if !reflect.DeepEqual(names, want) {
				t.Errorf("ReadDir(docs) names = %v, want %v", names, want)
			}
			if !sort.StringsAreSorted(names) {
				t.Error("ReadDir not sorted")
			}
			for _, e := range entries {
				if e.Name == "deep" && !e.IsDir {
					t.Error("deep should be a directory")
				}
				if e.Name == "b.txt" && e.Size != int64(len("bravo file")) {
					t.Errorf("b.txt size = %d", e.Size)
				}
			}

			// Root listing via ".".
			rootEntries, err := fs.ReadDir(".")
			if err != nil {
				t.Fatal(err)
			}
			if len(rootEntries) != 4 { // a.txt, docs, empty.txt, zzz
				t.Errorf("root has %d entries: %+v", len(rootEntries), rootEntries)
			}

			// Stat.
			st, err := fs.Stat("docs/deep/d.txt")
			if err != nil {
				t.Fatal(err)
			}
			if st.IsDir || st.Size != 5 || st.Name != "d.txt" {
				t.Errorf("Stat = %+v", st)
			}
			dst, err := fs.Stat("docs")
			if err != nil || !dst.IsDir {
				t.Errorf("Stat(docs) = %+v, %v", dst, err)
			}

			// Missing files report ErrNotExist.
			if _, err := fs.ReadFile("nope.txt"); !errors.Is(err, ErrNotExist) {
				t.Errorf("ReadFile(missing) err = %v", err)
			}
			if _, err := fs.Open("docs/missing"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Open(missing) err = %v", err)
			}
			if _, err := fs.Stat("missing/deep"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Stat(missing) err = %v", err)
			}

			// Path escapes are rejected.
			if _, err := fs.ReadFile("../outside"); err == nil {
				t.Error("path escape not rejected")
			}

			// Overwrite replaces content.
			if err := fs.WriteFile("a.txt", []byte("replaced")); err != nil {
				t.Fatal(err)
			}
			got, _ := fs.ReadFile("a.txt")
			if string(got) != "replaced" {
				t.Errorf("overwrite failed: %q", got)
			}

			// MkdirAll then list it empty.
			if err := fs.MkdirAll("fresh/dir/tree"); err != nil {
				t.Fatal(err)
			}
			sub, err := fs.ReadDir("fresh/dir/tree")
			if err != nil || len(sub) != 0 {
				t.Errorf("fresh dir listing = %v, %v", sub, err)
			}
		})
	}
}

func TestMemFSReadDirOfFileFails(t *testing.T) {
	fs := NewMemFS()
	fs.WriteFile("f.txt", []byte("x"))
	if _, err := fs.ReadDir("f.txt"); err == nil {
		t.Error("ReadDir of a file should fail")
	}
	if _, err := fs.ReadFile("."); !errors.Is(err, ErrIsDirectory) {
		t.Errorf("ReadFile(.) err = %v, want ErrIsDirectory", err)
	}
}

func TestMemFSWriteOverDirectoryFails(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("dir")
	if err := fs.WriteFile("dir", []byte("x")); err == nil {
		t.Error("WriteFile over directory should fail")
	}
	fs.WriteFile("file", []byte("x"))
	if err := fs.MkdirAll("file"); err == nil {
		t.Error("MkdirAll over file should fail")
	}
	if err := fs.WriteFile("file/child", []byte("x")); err == nil {
		t.Error("WriteFile under a file should fail")
	}
}

func TestSplitPathNormalization(t *testing.T) {
	tests := []struct {
		in   string
		want []string
		err  bool
	}{
		{".", nil, false},
		{"", nil, false},
		{"/", nil, false},
		{"a/b", []string{"a", "b"}, false},
		{"a//b", []string{"a", "b"}, false},
		{"./a/./b/", []string{"a", "b"}, false},
		{"a/../b", []string{"b"}, false},
		{"..", nil, true},
		{"a/../../b", nil, true},
	}
	for _, tc := range tests {
		got, err := splitPath(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("splitPath(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && !reflect.DeepEqual(append([]string{}, got...), append([]string{}, tc.want...)) {
			t.Errorf("splitPath(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// Property: MemFS behaves like a map from cleaned path to content for
// write-then-read sequences.
func TestMemFSQuickWriteRead(t *testing.T) {
	type op struct {
		Name    string
		Content []byte
	}
	if err := quick.Check(func(ops []op) bool {
		fs := NewMemFS()
		model := map[string][]byte{}
		for _, o := range ops {
			parts, err := splitPath(o.Name)
			if err != nil || len(parts) == 0 {
				continue
			}
			clean := ""
			for i, p := range parts {
				if i > 0 {
					clean += "/"
				}
				clean += p
			}
			if fs.WriteFile(clean, o.Content) == nil {
				model[clean] = o.Content
				// A file write shadows any model entries beneath it
				// (they could never have succeeded anyway) — and vice
				// versa writes under an existing file fail; emulate by
				// trusting fs's error, which we already did.
			}
		}
		for name, content := range model {
			got, err := fs.ReadFile(name)
			if err != nil {
				return false
			}
			if string(got) != string(content) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMemFSConcurrentReads(t *testing.T) {
	fs := NewMemFS()
	const files = 200
	for i := 0; i < files; i++ {
		fs.WriteFile(filepath.Join("dir", string(rune('a'+i%26)), "f"+string(rune('0'+i%10))+".txt"), []byte("content"))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := fs.ReadDir("dir"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOSFSRejectsEscape(t *testing.T) {
	dir := t.TempDir()
	outside := filepath.Join(filepath.Dir(dir), "outside.txt")
	os.WriteFile(outside, []byte("secret"), 0o644)
	defer os.Remove(outside)
	fs := NewOSFS(dir)
	if _, err := fs.ReadFile("../outside.txt"); err == nil {
		t.Fatal("OSFS allowed path escape")
	}
}
