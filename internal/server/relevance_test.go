package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"desksearch"
	"desksearch/internal/vfs"
)

// positionalFixture builds a test server over a positional catalog, so
// snippet requests succeed.
func positionalFixture(t *testing.T) *httptest.Server {
	t.Helper()
	fs := vfs.NewMemFS()
	for name, content := range map[string]string{
		"docs/a.txt": "the annual report was filed before the deadline last march",
		"docs/b.txt": "report drafts pile up",
		"docs/c.txt": "nothing of note",
	} {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	cat, err := desksearch.IndexFS(fs, ".", desksearch.Options{Positions: true, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Catalog: cat}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: decoding: %v", url, err)
	}
	return resp.StatusCode
}

func TestBM25OverHTTP(t *testing.T) {
	f := newFixture(t, Config{})
	var sr SearchResponse
	if code := f.get(t, "/search?q=report&rank=bm25", &sr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if sr.Total != 2 {
		t.Fatalf("total = %d, want 2", sr.Total)
	}
	for _, h := range sr.Hits {
		if h.Score <= 0 {
			t.Errorf("%s: BM25 score %v not positive", h.Path, h.Score)
		}
	}
	// The legacy integer wire form still selects the same ranking.
	var legacy SearchResponse
	if code := f.get(t, "/search?q=report&rank=2", &legacy); code != http.StatusOK {
		t.Fatalf("rank=2 status %d", code)
	}
	if len(legacy.Hits) != len(sr.Hits) || legacy.Hits[0].Score != sr.Hits[0].Score {
		t.Errorf("rank=2 disagrees with rank=bm25: %+v vs %+v", legacy.Hits, sr.Hits)
	}
}

func TestPrefixQueryOverHTTP(t *testing.T) {
	f := newFixture(t, Config{})
	var sr SearchResponse
	if code := f.get(t, "/search?q=repor*", &sr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if sr.Total != 2 {
		t.Errorf("repor* total = %d, want 2", sr.Total)
	}
	if sr.Query != "repor*" {
		t.Errorf("canonical query = %q", sr.Query)
	}
}

func TestSnippetsOverHTTP(t *testing.T) {
	ts := positionalFixture(t)
	var sr SearchResponse
	if code := getJSON(t, ts.URL+"/search?q=report&limit=10&snippets=true", &sr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(sr.Hits) != 2 {
		t.Fatalf("hits = %+v", sr.Hits)
	}
	for _, h := range sr.Hits {
		if h.Snippet == nil {
			t.Fatalf("%s: no snippet in JSON", h.Path)
		}
		if h.Snippet.Text == "" || len(h.Snippet.Highlights) == 0 {
			t.Errorf("%s: empty snippet %+v", h.Path, h.Snippet)
		}
		for _, s := range h.Snippet.Highlights {
			if s.Start < 0 || s.End > len(h.Snippet.Text) || s.Start >= s.End {
				t.Errorf("%s: span %+v out of range", h.Path, s)
			}
		}
	}

	// Without snippets=true the field stays absent from the JSON.
	var plain SearchResponse
	if code := getJSON(t, ts.URL+"/search?q=report&limit=10", &plain); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, h := range plain.Hits {
		if h.Snippet != nil {
			t.Errorf("%s: unsolicited snippet", h.Path)
		}
	}

	// A position-free catalog answers snippet requests with a client error.
	f := newFixture(t, Config{})
	var er struct {
		Error string `json:"error"`
	}
	if code := f.get(t, "/search?q=report&limit=10&snippets=true", &er); code != http.StatusBadRequest {
		t.Errorf("position-free snippets: status %d, want 400", code)
	}
	// Snippets without an explicit limit succeed: the server's default
	// limit satisfies the engine's positive-limit requirement, so HTTP
	// clients can never trip it.
	var defaulted SearchResponse
	if code := getJSON(t, ts.URL+"/search?q=report&snippets=true", &defaulted); code != http.StatusOK {
		t.Errorf("snippets with default limit: status %d, want 200", code)
	} else if len(defaulted.Hits) == 0 || defaulted.Hits[0].Snippet == nil {
		t.Errorf("snippets with default limit: hits = %+v", defaulted.Hits)
	}
	if code := getJSON(t, ts.URL+"/search?q=report&limit=5&snippets=maybe", &er); code != http.StatusBadRequest {
		t.Errorf("bad snippets value: status %d, want 400", code)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	f := newFixture(t, Config{})
	var out SuggestResponse
	if code := f.get(t, "/suggest?q=re", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// Corpus terms with prefix "re": report (df 2).
	if len(out.Suggestions) != 1 || out.Suggestions[0].Term != "report" || out.Suggestions[0].Files != 2 {
		t.Fatalf("suggestions = %+v", out.Suggestions)
	}
	if out.Prefix != "re" {
		t.Errorf("metadata = %+v", out)
	}

	var capped SuggestResponse
	if code := f.get(t, "/suggest?q=a&n=1", &capped); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(capped.Suggestions) != 1 {
		t.Errorf("n=1 returned %d suggestions", len(capped.Suggestions))
	}

	var er struct {
		Error string `json:"error"`
	}
	for _, path := range []string{
		"/suggest",             // missing q
		"/suggest?q=",          // empty q
		"/suggest?q=a&n=x",     // bad n
		"/suggest?q=two+words", // multi-term prefix
		"/suggest?q=%2A",       // bare '*'
	} {
		if code := f.get(t, path, &er); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
		if er.Error == "" {
			t.Errorf("%s: missing error message", path)
		}
	}

	// Method discipline: POST is rejected like the other read endpoints.
	resp, err := http.Post(f.ts.URL+"/suggest?q=re", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /suggest: status %d, want 405", resp.StatusCode)
	}
}

func TestPrefixTooBroadOverHTTP(t *testing.T) {
	f := newFixture(t, Config{})
	var er struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	// The demo corpus is tiny, so any prefix is in-cap; parse-level errors
	// still surface as 400 (a bare '*' has no searchable term).
	if code := f.get(t, "/search?q=%2A", &er); code != http.StatusBadRequest {
		t.Errorf("bare '*': status %d, want 400", code)
	}
}

// TestMaxPrefixTermsOverHTTP drives the per-request expansion cap through
// the HTTP dialect: a cap below a prefix's expansion fails with the
// stable prefix_too_broad code, the same query succeeds with a
// sufficient (or default) cap, and an unparseable cap is rejected.
func TestMaxPrefixTermsOverHTTP(t *testing.T) {
	fs := vfs.NewMemFS()
	// One document holds every zz-term, so whichever partition owns it
	// expands zz* to four dictionary terms.
	if err := fs.WriteFile("z.txt", []byte("zz1 zz2 zz3 zz4 other")); err != nil {
		t.Fatal(err)
	}
	cat, err := desksearch.IndexFS(fs, ".", desksearch.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Catalog: cat}).Handler())
	t.Cleanup(ts.Close)

	var er struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if code := getJSON(t, ts.URL+"/search?q=zz%2A&max_prefix_terms=2", &er); code != http.StatusBadRequest {
		t.Fatalf("cap=2: status %d, want 400", code)
	}
	if er.Code != string(desksearch.CodePrefixTooBroad) {
		t.Errorf("cap=2: code = %q, want %q", er.Code, desksearch.CodePrefixTooBroad)
	}
	for _, q := range []string{
		"/search?q=zz%2A&max_prefix_terms=4",
		"/search?q=zz%2A", // default cap
	} {
		var sr SearchResponse
		if code := getJSON(t, ts.URL+q, &sr); code != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", q, code)
		}
		if sr.Total != 1 {
			t.Errorf("%s: total = %d, want 1", q, sr.Total)
		}
	}
	var bad struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/search?q=zz%2A&max_prefix_terms=nope", &bad); code != http.StatusBadRequest {
		t.Errorf("bad cap: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/search?q=zz%2A&max_prefix_terms=-1", &bad); code != http.StatusBadRequest {
		t.Errorf("negative cap: status %d, want 400", code)
	}
}
