// Command dsearch answers desktop-search queries from a saved index or by
// indexing a directory on the fly.
//
// Usage:
//
//	dsearch -index FILE  QUERY...
//	dsearch -root DIR [-formats]  QUERY...
//
// Queries are boolean: terms AND together, OR/NOT (or a leading '-')
// and parentheses work as expected: "quarterly report -draft".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"desksearch"
)

func main() {
	var (
		indexFile = flag.String("index", "", "read a saved index from this file")
		root      = flag.String("root", "", "index this directory before searching")
		formats   = flag.Bool("formats", false, "strip HTML/WP markup while indexing")
		limit     = flag.Int("n", 20, "maximum results to print")
		top       = flag.Int("top", 0, "print the N most frequent terms instead of searching")
	)
	flag.Parse()
	if (flag.NArg() == 0 && *top == 0) || (*indexFile == "") == (*root == "") {
		fmt.Fprintln(os.Stderr, "usage: dsearch (-index FILE | -root DIR) [-top N] QUERY...")
		os.Exit(2)
	}

	var (
		cat *desksearch.Catalog
		err error
	)
	if *indexFile != "" {
		f, ferr := os.Open(*indexFile)
		if ferr != nil {
			fatal(ferr)
		}
		cat, err = desksearch.Load(f)
		f.Close()
	} else {
		cat, err = desksearch.IndexDir(*root, desksearch.Options{Formats: *formats})
	}
	if err != nil {
		fatal(err)
	}

	if *top > 0 {
		fmt.Printf("%d most frequent terms:\n", *top)
		for _, tc := range cat.TopTerms(*top) {
			fmt.Printf("%6d  %s\n", tc.Files, tc.Term)
		}
		if flag.NArg() == 0 {
			return
		}
	}

	query := strings.Join(flag.Args(), " ")
	hits, err := cat.Search(query)
	if err != nil {
		fatal(err)
	}
	if len(hits) == 0 {
		fmt.Printf("no matches for %q\n", query)
		return
	}
	fmt.Printf("%d matches for %q:\n", len(hits), query)
	for i, h := range hits {
		if i == *limit {
			fmt.Printf("... and %d more\n", len(hits)-*limit)
			break
		}
		fmt.Printf("%4d. %s\n", h.Score, h.Path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsearch:", err)
	os.Exit(1)
}
