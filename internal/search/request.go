package search

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// Ranking selects how hits are scored.
type Ranking int

const (
	// RankCoordination scores a hit by how many distinct positive query
	// terms the file contains — the v1 behavior and the default.
	RankCoordination Ranking = iota
	// RankTF scores a hit by the summed occurrence counts (term
	// frequencies) of the positive query terms in the file, so a file
	// that mentions a term many times outranks one that mentions it once.
	RankTF
)

// String names the ranking mode.
func (r Ranking) String() string {
	switch r {
	case RankCoordination:
		return "coordination"
	case RankTF:
		return "tf"
	default:
		return fmt.Sprintf("Ranking(%d)", int(r))
	}
}

// Request is a v2 query: a parsed boolean expression plus retrieval
// controls. The zero controls reproduce v1 Search exactly — every hit,
// coordination-ranked.
type Request struct {
	// Query is the parsed boolean expression to evaluate.
	Query *Query
	// Limit caps the number of hits returned; 0 means unlimited. With a
	// limit, each partition retains only its local top Limit+Offset hits
	// in a bounded min-heap instead of sorting its full hit list.
	Limit int
	// Offset skips that many hits before the returned page — pagination's
	// second half. Offset without Limit is honored against the full
	// ranked result.
	Offset int
	// Ranking selects the scoring mode.
	Ranking Ranking
	// PathPrefix, when non-empty, keeps only hits whose path starts with
	// it (a cheap directory filter); filtered-out matches do not count
	// toward Response.Total.
	PathPrefix string
	// OmitTerms skips the per-hit matched-term metadata — the v1
	// compatibility path, whose callers discard it, uses this to keep the
	// full-result Search as allocation-lean as before the redesign.
	OmitTerms bool
}

// PartitionStat is one partition's share of a query's work.
type PartitionStat struct {
	// Partition is the index's position in the engine's partition list.
	Partition int
	// Matched counts the partition's matches after path filtering —
	// before the top-k truncation, so partition Matched values sum to
	// Response.Total.
	Matched int
	// Duration is the partition's evaluation wall time.
	Duration time.Duration
}

// Response is the result of a v2 query.
type Response struct {
	// Hits is the requested page, ordered by descending score then
	// ascending file ID.
	Hits []Hit
	// Total is the number of matches across all partitions — the count
	// pagination pages through, independent of Limit/Offset.
	Total int
	// Partitions reports per-partition match counts and timings, in
	// partition order.
	Partitions []PartitionStat
}

// partResult is one partition's contribution to a query.
type partResult struct {
	hits    []Hit
	matched int
	dur     time.Duration
	// err is the partition's evaluation failure (a phrase query against a
	// partition without positions); it fails the whole query.
	err error
}

// Query evaluates req over every partition and returns the requested page.
//
// With more than one partition the query fans out to one goroutine per
// partition; each evaluates, scores, and keeps its local top Limit+Offset
// hits in a bounded min-heap (its full hit list when unbounded), and the
// per-partition ranked lists are k-way merged only until the page is
// full. Cancellation is honored between evaluation steps: a context
// canceled mid-fan-out aborts the in-flight partitions at their next step
// boundary and Query returns ctx.Err() with no goroutines left behind.
func (e *Engine) Query(ctx context.Context, req Request) (*Response, error) {
	if req.Query == nil || req.Query.root == nil {
		return nil, fmt.Errorf("search: request has no query")
	}
	if req.Limit < 0 {
		return nil, fmt.Errorf("search: negative limit %d", req.Limit)
	}
	if req.Offset < 0 {
		return nil, fmt.Errorf("search: negative offset %d", req.Offset)
	}
	switch req.Ranking {
	case RankCoordination, RankTF:
	default:
		return nil, fmt.Errorf("search: unknown ranking mode %d", int(req.Ranking))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	unis := e.lockShared()
	defer e.mu.RUnlock()

	// Each partition only ever contributes to one page of Limit hits at
	// Offset, so its local top Limit+Offset bound every merge outcome.
	k := 0
	if req.Limit > 0 {
		k = req.Limit + req.Offset
	}
	parts := make([]partResult, len(e.indices))
	if e.Parallel && len(e.indices) > 1 {
		var wg sync.WaitGroup
		for i, ix := range e.indices {
			wg.Add(1)
			go func(i int, ix *index.Index) {
				defer wg.Done()
				parts[i] = e.queryOne(ctx, ix, unis[i], req, k)
			}(i, ix)
		}
		wg.Wait()
	} else {
		for i, ix := range e.indices {
			if ctx.Err() != nil {
				break
			}
			parts[i] = e.queryOne(ctx, ix, unis[i], req, k)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
	}

	resp := &Response{Partitions: make([]PartitionStat, len(parts))}
	ranked := make([][]Hit, len(parts))
	for i, p := range parts {
		resp.Total += p.matched
		resp.Partitions[i] = PartitionStat{Partition: i, Matched: p.matched, Duration: p.dur}
		ranked[i] = p.hits
	}
	var merged []Hit
	if k > 0 {
		merged = mergePage(ranked, k)
	} else {
		merged = mergeRanked(ranked)
	}
	if req.Offset > 0 {
		if req.Offset >= len(merged) {
			merged = nil
		} else {
			merged = merged[req.Offset:]
		}
	}
	if req.Limit > 0 && len(merged) > req.Limit {
		merged = merged[:req.Limit]
	}
	resp.Hits = merged
	return resp, nil
}

// scored is a hit plus the bitmask of positive query terms it matched
// (bit i = positive term i, first 64 terms); the mask is expanded to
// Hit.Terms only for the hits that survive top-k selection.
type scored struct {
	hit  Hit
	mask uint64
}

// queryOne evaluates req against a single partition: match, score, filter,
// and retain the local top k (all hits when k == 0), ranked.
func (e *Engine) queryOne(ctx context.Context, ix *index.Index, universe *postings.List, req Request, k int) partResult {
	start := time.Now()
	// Phrase queries are rejected on position-free partitions before
	// evaluation, not inside it: AND's empty-accumulator short-circuit
	// could otherwise skip the phrase node, making the error appear and
	// disappear with term order. (evalPhrase still checks per term list,
	// which covers partially positional lists inside a positional index.)
	if req.Query.hasPhrase && !ix.Positional() {
		return partResult{err: ErrNoPositions, dur: time.Since(start)}
	}
	matched, err := eval(ctx, ix, req.Query.root, universe)
	if err != nil {
		return partResult{err: err, dur: time.Since(start)}
	}
	if ctx.Err() != nil || matched.Len() == 0 {
		return partResult{dur: time.Since(start)}
	}

	// Score pass: one bounded intersection per positive term accumulates
	// the score and the matched-term mask.
	type fileScore struct {
		score int
		mask  uint64
	}
	scores := make(map[postings.FileID]fileScore, matched.Len())
	for ti, term := range req.Query.positive {
		if ctx.Err() != nil {
			return partResult{dur: time.Since(start)}
		}
		l := ix.Lookup(term)
		if l == nil {
			continue
		}
		postings.IntersectEach(matched, l, func(id postings.FileID, count uint32) {
			fs := scores[id]
			if req.Ranking == RankTF {
				fs.score += int(count)
			} else {
				fs.score++
			}
			if ti < 64 {
				fs.mask |= 1 << uint(ti)
			}
			scores[id] = fs
		})
	}

	// Selection pass: walk the match list, filter by path prefix, and
	// feed a bounded heap (or collect everything when unbounded).
	res := partResult{}
	heap := newTopK(k)
	var all []scored
	for i, id := range matched.IDs() {
		if i&1023 == 0 && ctx.Err() != nil {
			return partResult{dur: time.Since(start)}
		}
		path := e.files.Path(id)
		if req.PathPrefix != "" && !strings.HasPrefix(path, req.PathPrefix) {
			continue
		}
		res.matched++
		fs := scores[id]
		s := scored{hit: Hit{File: id, Path: path, Score: fs.score}, mask: fs.mask}
		if k > 0 {
			heap.consider(s)
		} else {
			all = append(all, s)
		}
	}
	if k > 0 {
		all = heap.ranked()
	} else {
		sortScored(all)
	}
	if len(all) > 0 {
		res.hits = make([]Hit, len(all))
		for i, s := range all {
			h := s.hit
			if !req.OmitTerms {
				h.Terms = termsFromMask(req.Query.positive, s.mask)
			}
			res.hits[i] = h
		}
	}
	res.dur = time.Since(start)
	return res
}

// termsFromMask expands a matched-term bitmask back into the query's
// positive terms, preserving query order.
func termsFromMask(positive []string, mask uint64) []string {
	if mask == 0 {
		return nil
	}
	out := make([]string, 0, 4)
	for i, term := range positive {
		if i >= 64 {
			break
		}
		if mask&(1<<uint(i)) != 0 {
			out = append(out, term)
		}
	}
	return out
}
