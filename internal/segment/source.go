package segment

import (
	"fmt"
	"os"
	"sync"

	"desksearch/internal/platform"
)

// source abstracts how a Reader gets at segment bytes: a read-only memory
// mapping where the platform supports one (linux — internal/platform), a
// pread-per-request file handle elsewhere. Decoders never retain returned
// slices (postings.Decode copies), so mapped reads are zero-copy and the
// fallback's allocations are short-lived.
type source struct {
	size int64

	data  []byte       // the mapping; nil in fallback mode
	unmap func() error // releases data; nil in fallback mode

	mu     sync.Mutex // guards f and closed in fallback mode
	f      *os.File   // open handle in fallback mode; nil when mapped
	closed bool
}

// newByteSource wraps an in-memory file image — the eager loading path,
// which has already read (and whole-file-verified) the segment bytes.
func newByteSource(data []byte) *source {
	return &source{size: int64(len(data)), data: data}
}

// openSource opens path for random access, preferring a memory mapping.
func openSource(path string) (*source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if data, unmap, err := platform.MapFile(f, size); err == nil {
		// The mapping outlives the descriptor; no reason to hold the fd.
		f.Close()
		return &source{size: size, data: data, unmap: unmap}, nil
	}
	// Any mapping failure — unsupported platform, empty file, exotic
	// filesystem — degrades to positioned reads, never to an error.
	return &source{size: size, f: f}, nil
}

// slice returns n bytes at offset off. Mapped sources return a window into
// the mapping; fallback sources allocate and pread.
func (s *source) slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off > s.size || n > s.size-off {
		return nil, fmt.Errorf("range [%d, %d) outside %d-byte file", off, off+n, s.size)
	}
	if s.data != nil {
		return s.data[off : off+n], nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("read of closed segment")
	}
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (s *source) Close() error {
	if s.unmap != nil {
		unmap := s.unmap
		s.unmap, s.data = nil, nil
		return unmap()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.f == nil {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
