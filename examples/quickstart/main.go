// Quickstart: build an index over an in-memory corpus and search it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"desksearch"
	"desksearch/internal/vfs"
)

func main() {
	// A miniature "home directory".
	fs := vfs.NewMemFS()
	files := map[string]string{
		"docs/thesis-draft.txt": "thesis draft: parallel index generation for desktop search",
		"docs/thesis-final.txt": "thesis final: parallel index generation for desktop search",
		"mail/inbox.txt":        "lunch tomorrow? also the search demo crashed again",
		"mail/sent.txt":         "fixed the demo, the index rebuild was racing the search",
		"notes/shopping.txt":    "milk eggs flour",
	}
	for name, content := range files {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			log.Fatal(err)
		}
	}

	// Index with the paper's Implementation 3 (replicated indices,
	// searched in parallel) — desksearch.Options{} auto-sizes it.
	cat, err := desksearch.IndexFS(fs, ".", desksearch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := cat.Stats()
	fmt.Printf("indexed %d files into %d terms, %d postings (%d parallel indices)\n\n",
		s.Files, s.Terms, s.Postings, cat.Indices())

	for _, query := range []string{
		"search",
		"index search",
		"thesis -draft",
		"milk OR eggs",
	} {
		hits, err := cat.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16q -> %d hit(s)\n", query, len(hits))
		for _, h := range hits {
			fmt.Printf("    score %d  %s\n", h.Score, h.Path)
		}
	}
}
