package desksearch

// The benchmark harness regenerating the paper's evaluation:
//
//   - BenchmarkTable1StageTimes     — Table 1 (sequential stage times, simulated)
//   - BenchmarkTable2QuadCore       — Table 2 (4-core best configurations)
//   - BenchmarkTable3Xeon8          — Table 3 (8-core best configurations)
//   - BenchmarkTable4Manycore32     — Table 4 (32-core best configurations)
//   - BenchmarkLiveImplementations  — Tables 2–4 analogue with real goroutines on this host
//
// and the ablations for the design decisions the paper discusses:
//
//   - BenchmarkAblationDistribution     — round-robin vs size-aware vs chunked vs stealing (§3)
//   - BenchmarkAblationEnBloc           — en-bloc block insert vs immediate per-term insert (§3)
//   - BenchmarkAblationJoin             — single-threaded vs parallel reduction join (§2.3)
//   - BenchmarkAblationConcurrentStage1 — up-front vs overlapped filename generation (§3)
//   - BenchmarkAblationParallelSearch   — multi-index parallel query (§5, future work)
//
// Simulated benches report model output as custom metrics (exec-s,
// speedup); live benches measure this machine.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/distribute"
	"desksearch/internal/experiments"
	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/platform"
	"desksearch/internal/postings"
	"desksearch/internal/search"
	"desksearch/internal/shard"
	"desksearch/internal/simmodel"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
	"desksearch/internal/walk"
)

// ---- shared fixtures ----

var (
	paperOnce  sync.Once
	paperStats corpus.Stats

	liveOnce sync.Once
	liveFS   *vfs.MemFS
)

func paperShape() corpus.Stats {
	paperOnce.Do(func() { paperStats = corpus.Describe(corpus.PaperSpec()) })
	return paperStats
}

// liveCorpus returns a 1/128-scale corpus (≈400 files, ≈7 MB) in memory for
// live goroutine benchmarks.
func liveCorpus(b *testing.B) *vfs.MemFS {
	b.Helper()
	liveOnce.Do(func() {
		fs := vfs.NewMemFS()
		if _, err := corpus.Generate(corpus.PaperSpec().Scale(1.0/128), fs); err != nil {
			panic(err)
		}
		liveFS = fs
	})
	return liveFS
}

// ---- Table 1 ----

func BenchmarkTable1StageTimes(b *testing.B) {
	cs := paperShape()
	for _, p := range platform.All() {
		b.Run(p.Name, func(b *testing.B) {
			var f, r, re, ins float64
			for i := 0; i < b.N; i++ {
				f, r, re, ins = simmodel.StageTimes(p, cs)
			}
			b.ReportMetric(f, "filename-s")
			b.ReportMetric(r, "read-s")
			b.ReportMetric(re, "read+extract-s")
			b.ReportMetric(ins, "insert-s")
		})
	}
}

// ---- Tables 2–4 ----

// benchTable simulates the paper's best configuration per implementation
// on the given platform and reports exec time and speed-up as metrics.
func benchTable(b *testing.B, p platform.Profile) {
	cs := paperShape()
	no, err := experiments.TableNumber(p)
	if err != nil {
		b.Fatal(err)
	}
	seq, err := simmodel.SequentialBaseline(p, cs, simmodel.Options{Batch: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Sequential", func(b *testing.B) {
		b.ReportMetric(seq, "exec-s")
	})
	for _, im := range []core.Implementation{core.SharedIndex, core.ReplicatedJoin, core.ReplicatedSearch} {
		ref := experiments.PaperBest[no][im]
		cfg := configFromTuple(im, ref.Tuple)
		b.Run(fmt.Sprintf("%s@%s", im, ref.Tuple), func(b *testing.B) {
			var res simmodel.RunResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = simmodel.Simulate(p, cs, cfg, simmodel.Options{Batch: 16})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Exec, "exec-s")
			b.ReportMetric(seq/res.Exec, "speedup")
			b.ReportMetric(ref.Exec, "paper-exec-s")
			b.ReportMetric(ref.Speedup, "paper-speedup")
		})
	}
}

// configFromTuple parses the paper's "(x, y, z)" notation.
func configFromTuple(im core.Implementation, tuple string) core.Config {
	var x, y, z int
	fmt.Sscanf(tuple, "(%d, %d, %d)", &x, &y, &z)
	return core.Config{Implementation: im, Extractors: x, Updaters: y, Joiners: z}
}

func BenchmarkTable2QuadCore(b *testing.B)   { benchTable(b, platform.QuadCore()) }
func BenchmarkTable3Xeon8(b *testing.B)      { benchTable(b, platform.Xeon8()) }
func BenchmarkTable4Manycore32(b *testing.B) { benchTable(b, platform.Manycore32()) }

// ---- live host runs ----

func BenchmarkLiveImplementations(b *testing.B) {
	fs := liveCorpus(b)
	x := runtime.NumCPU() - 1
	if x < 2 {
		x = 2
	}
	configs := []core.Config{
		{Implementation: core.Sequential},
		{Implementation: core.SharedIndex, Extractors: x, Updaters: 1},
		{Implementation: core.ReplicatedJoin, Extractors: x, Updaters: 2, Joiners: 1},
		{Implementation: core.ReplicatedSearch, Extractors: x, Updaters: 2},
	}
	for _, cfg := range configs {
		b.Run(cfg.Implementation.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(fs, ".", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveDiskBound reproduces the paper's 8-core finding on real
// goroutines: behind a depth-1 disk (vfs.Limited over vfs.DelayFS), no
// thread count beats the serialized read floor, so the parallel speed-up
// collapses toward the paper's ≈2× — while the same corpus without the
// disk limit parallelizes freely.
func BenchmarkLiveDiskBound(b *testing.B) {
	mem := vfs.NewMemFS()
	if _, err := corpus.Generate(corpus.PaperSpec().Scale(1.0/1024), mem); err != nil {
		b.Fatal(err)
	}
	slow := vfs.NewLimited(vfs.NewDelayFS(mem, vfs.DiskModel{
		Seek:           50 * time.Microsecond,
		BytesPerSecond: 64 << 20,
	}), 1)
	x := runtime.NumCPU() - 1
	if x < 2 {
		x = 2
	}
	cases := []struct {
		name string
		fs   vfs.FS
		cfg  core.Config
	}{
		{"fast-disk/sequential", mem, core.Config{Implementation: core.Sequential}},
		{"fast-disk/impl3", mem, core.Config{Implementation: core.ReplicatedSearch, Extractors: x, Updaters: 2}},
		{"slow-disk/sequential", slow, core.Config{Implementation: core.Sequential}},
		{"slow-disk/impl3", slow, core.Config{Implementation: core.ReplicatedSearch, Extractors: x, Updaters: 2}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(tc.fs, ".", tc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablation A1: work distribution strategies (§3) ----

func BenchmarkAblationDistribution(b *testing.B) {
	fs := liveCorpus(b)
	x := runtime.NumCPU() - 1
	if x < 2 {
		x = 2
	}
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"round-robin", core.Config{Implementation: core.ReplicatedSearch, Extractors: x, Distribution: distribute.RoundRobin}},
		{"by-size", core.Config{Implementation: core.ReplicatedSearch, Extractors: x, Distribution: distribute.BySize}},
		{"chunked", core.Config{Implementation: core.ReplicatedSearch, Extractors: x, Distribution: distribute.Chunked}},
		{"work-stealing", core.Config{Implementation: core.ReplicatedSearch, Extractors: x, WorkStealing: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(fs, ".", tc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablation A2: en-bloc vs immediate insertion (§3) ----

func BenchmarkAblationEnBloc(b *testing.B) {
	fs := liveCorpus(b)
	files, err := walk.List(fs, ".")
	if err != nil {
		b.Fatal(err)
	}
	x := runtime.NumCPU() - 1
	if x < 2 {
		x = 2
	}
	parts := distribute.Partition(files, x, distribute.RoundRobin)

	b.Run("en-bloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shared := index.NewShared(1 << 12)
			var wg sync.WaitGroup
			for w := 0; w < x; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ex := extract.New(fs, extract.Options{Tokenize: tokenize.Default})
					for j, f := range parts[w] {
						block, err := ex.File(f.Path, postings.FileID(w*len(files)+j))
						if err != nil {
							b.Error(err)
							return
						}
						shared.AddBlock(block.File, block.Terms, nil)
					}
				}(w)
			}
			wg.Wait()
		}
	})

	b.Run("immediate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shared := index.NewShared(1 << 12)
			var wg sync.WaitGroup
			for w := 0; w < x; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ex := extract.New(fs, extract.Options{Tokenize: tokenize.Default})
					for j, f := range parts[w] {
						id := postings.FileID(w*len(files) + j)
						err := ex.Occurrences(f.Path, id, func(term string, id postings.FileID) {
							shared.AddTermOccurrence(term, id)
						})
						if err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		}
	})
}

// ---- Ablation A3: join strategies (§2.3) ----

func buildReplicas(b *testing.B, n int) []*index.Index {
	b.Helper()
	fs := liveCorpus(b)
	res, err := core.Run(fs, ".", core.Config{
		Implementation: core.ReplicatedSearch, Extractors: 4, Updaters: n,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.Replicas
}

func BenchmarkAblationJoin(b *testing.B) {
	const replicas = 8
	source := buildReplicas(b, replicas)
	clone := func() []*index.Index {
		out := make([]*index.Index, len(source))
		for i, r := range source {
			out[i] = r.Clone()
		}
		return out
	}
	b.Run("single-joiner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rs := clone()
			b.StartTimer()
			index.JoinAll(rs)
		}
	})
	for _, z := range []int{2, 4} {
		b.Run(fmt.Sprintf("parallel-%d", z), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rs := clone()
				b.StartTimer()
				index.ParallelJoin(rs, z)
			}
		})
	}
}

// ---- Ablation A4: concurrent Stage 1 (§3) ----

func BenchmarkAblationConcurrentStage1(b *testing.B) {
	fs := liveCorpus(b)
	x := runtime.NumCPU() - 1
	if x < 2 {
		x = 2
	}
	b.Run("upfront", func(b *testing.B) {
		cfg := core.Config{Implementation: core.SharedIndex, Extractors: x}
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(fs, ".", cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunConcurrentStage1(fs, ".", x, extract.Options{Tokenize: tokenize.Default}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Ablation A5: parallel search over replicas (§5) ----

func BenchmarkAblationParallelSearch(b *testing.B) {
	fs := liveCorpus(b)
	res, err := core.Run(fs, ".", core.Config{
		Implementation: core.ReplicatedSearch, Extractors: 4, Updaters: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	joined := index.JoinAll(func() []*index.Index {
		out := make([]*index.Index, len(res.Replicas))
		for i, r := range res.Replicas {
			out[i] = r.Clone()
		}
		return out
	}())

	vocab := corpus.BuildVocabulary(corpus.PaperSpec().Scale(1.0 / 128))
	query := search.MustParse(fmt.Sprintf("%s OR %s OR (%s -%s)", vocab[0], vocab[1], vocab[2], vocab[3]))

	singleEngine := search.NewEngine(res.Files, joined)
	multiSeq := search.NewEngine(res.Files, index.Partitions(res.Replicas)...)
	multiSeq.Parallel = false
	multiPar := search.NewEngine(res.Files, index.Partitions(res.Replicas)...)

	// Warm the per-engine universes outside the timed region.
	singleEngine.Search(query)
	multiSeq.Search(query)
	multiPar.Search(query)

	b.Run("joined-single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			singleEngine.Search(query)
		}
	})
	b.Run("replicas-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			multiSeq.Search(query)
		}
	})
	b.Run("replicas-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			multiPar.Search(query)
		}
	})
}

// ---- sharded fan-out search and codec ----

// shardCounts is the sweep the sharding benchmarks compare.
var shardCounts = []int{1, 2, 4, 8}

// buildShards builds an n-shard set over the live corpus.
func buildShards(b *testing.B, n int) *core.Result {
	b.Helper()
	res, err := core.Run(liveCorpus(b), ".", core.Config{
		Implementation: core.ReplicatedSearch, Extractors: 4, Updaters: 4, Shards: n,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkShardedBuild measures end-to-end index construction into a
// 4-shard catalog — the bench-regression gate's build-side canary (see
// bench_baseline.json and make bench-check).
func BenchmarkShardedBuild(b *testing.B) {
	fs := liveCorpus(b)
	b.Run("shards-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(fs, ".", core.Config{
				Implementation: core.ReplicatedSearch, Extractors: 4, Updaters: 4, Shards: 4,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedSearch measures fan-out query latency across shard
// counts: 1 shard is the single-index baseline the fan-out overhead and
// speed-up are judged against.
func BenchmarkShardedSearch(b *testing.B) {
	vocab := corpus.BuildVocabulary(corpus.PaperSpec().Scale(1.0 / 128))
	query := search.MustParse(fmt.Sprintf("%s OR %s OR (%s -%s)", vocab[0], vocab[1], vocab[2], vocab[3]))
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			res := buildShards(b, n)
			eng := search.NewEngine(res.Files, index.Partitions(res.Shards.Shards())...)
			eng.Search(query) // warm the per-shard universes
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Search(query)
			}
		})
	}
}

// BenchmarkShardedSave measures parallel segment writing (one goroutine per
// shard) across shard counts.
func BenchmarkShardedSave(b *testing.B) {
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			res := buildShards(b, n)
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := shard.SaveDir(dir, res.Shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedLoad measures parallel segment loading and checksum
// verification across shard counts.
func BenchmarkShardedLoad(b *testing.B) {
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			res := buildShards(b, n)
			dir := b.TempDir()
			if err := shard.SaveDir(dir, res.Shards); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := shard.LoadDir(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- cold open: eager materialize vs lazy dictionary-only ----

// coldDir saves the top-k corpus' 4-shard catalog to disk once and keeps
// the directory for the process lifetime (not b.TempDir: -count reruns
// the benchmark after that cleanup would have deleted the fixture).
var (
	coldOnce sync.Once
	coldDir  string
)

func coldOpenDir(b *testing.B) string {
	b.Helper()
	coldOnce.Do(func() {
		cat, _ := topkCatalog(b)
		dir, err := os.MkdirTemp("", "desksearch-coldopen-")
		if err != nil {
			panic(err)
		}
		if err := cat.SaveDir(dir); err != nil {
			panic(err)
		}
		coldDir = dir
	})
	return coldDir
}

// BenchmarkColdOpen measures catalog cold start from a saved 4-shard
// directory: LoadDir decodes and materializes every posting list up
// front, OpenDir reads only the term dictionaries and maps posting data
// for on-demand decode (DSIX v10). The gap is the lazy backend's reason
// to exist; the bench gate pins both arms and their ratio (see
// bench_baseline.json).
func BenchmarkColdOpen(b *testing.B) {
	dir := coldOpenDir(b)
	b.Run("load-dir", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LoadDir(dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open-dir", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cat, err := OpenDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			if err := cat.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- incremental update vs full rebuild ----

// churnLevels is the churn sweep for the incremental-maintenance benches:
// the fraction of the corpus rewritten between updates. The acceptance
// criterion is that Catalog.Update beats a full rebuild at ≤10 %.
var churnLevels = []int{1, 10, 50}

// churnCorpus returns a private corpus (the benches mutate it) plus its
// file list.
func churnCorpus(b *testing.B) (*vfs.MemFS, []string) {
	b.Helper()
	fs := vfs.NewMemFS()
	if _, err := corpus.Generate(corpus.PaperSpec().Scale(1.0/128), fs); err != nil {
		b.Fatal(err)
	}
	refs, err := walk.List(fs, ".")
	if err != nil {
		b.Fatal(err)
	}
	paths := make([]string, len(refs))
	for i, r := range refs {
		paths[i] = r.Path
	}
	return fs, paths
}

// churn rewrites k files, rotating through the corpus so successive rounds
// touch different files, with round-stamped content so every write is a
// real change.
func churn(b *testing.B, fs *vfs.MemFS, paths []string, k, round int) {
	b.Helper()
	for j := 0; j < k; j++ {
		p := paths[(round*k+j)%len(paths)]
		content := fmt.Sprintf("churned revision %d of %s with fresh terms rev%d edit%d", round, p, round, j)
		if err := fs.WriteFile(p, []byte(content)); err != nil {
			b.Fatal(err)
		}
	}
}

var churnOptions = Options{Implementation: ReplicatedSearch, Extractors: 4, Updaters: 2, Shards: 4}

// BenchmarkIncrementalUpdate measures Catalog.Update absorbing a churned
// tree in place: diff, parallel re-extraction of only the changed files,
// and batched per-partition commit.
func BenchmarkIncrementalUpdate(b *testing.B) {
	for _, pct := range churnLevels {
		b.Run(fmt.Sprintf("churn-%d", pct), func(b *testing.B) {
			fs, paths := churnCorpus(b)
			cat, err := IndexFS(fs, ".", churnOptions)
			if err != nil {
				b.Fatal(err)
			}
			k := len(paths) * pct / 100
			if k < 1 {
				k = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				churn(b, fs, paths, k, i)
				b.StartTimer()
				if _, err := cat.Update(fs, "."); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullRebuild is the baseline the incremental path must beat at
// low churn: the batch pipeline re-indexing the whole churned tree.
func BenchmarkFullRebuild(b *testing.B) {
	for _, pct := range churnLevels {
		b.Run(fmt.Sprintf("churn-%d", pct), func(b *testing.B) {
			fs, paths := churnCorpus(b)
			if _, err := IndexFS(fs, ".", churnOptions); err != nil {
				b.Fatal(err)
			}
			k := len(paths) * pct / 100
			if k < 1 {
				k = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				churn(b, fs, paths, k, i)
				b.StartTimer()
				if _, err := IndexFS(fs, ".", churnOptions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalSaveDir measures persisting an update back into an
// existing catalog directory, where only dirty segments rewrite, against
// the all-segments write a fresh save pays.
func BenchmarkIncrementalSaveDir(b *testing.B) {
	fs, paths := churnCorpus(b)
	cat, err := IndexFS(fs, ".", churnOptions)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := cat.SaveDir(dir); err != nil {
		b.Fatal(err)
	}
	k := len(paths) / 100
	if k < 1 {
		k = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		churn(b, fs, paths, k, i)
		if _, err := cat.Update(fs, "."); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := cat.SaveDir(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- top-k query retrieval ----

var (
	topkOnce sync.Once
	topkCat  *Catalog
	topkQ    string
)

// topkCatalog returns a shared 4-shard catalog over a large corpus
// (≈1600 files) plus a broad OR query matching most of it — the workload
// where bounded top-k retrieval should beat materializing and sorting
// every hit.
func topkCatalog(b *testing.B) (*Catalog, string) {
	b.Helper()
	topkOnce.Do(func() {
		fs := vfs.NewMemFS()
		if _, err := corpus.Generate(corpus.PaperSpec().Scale(1.0/32), fs); err != nil {
			panic(err)
		}
		cat, err := IndexFS(fs, ".", Options{
			Implementation: ReplicatedSearch, Extractors: 4, Updaters: 4, Shards: 4,
		})
		if err != nil {
			panic(err)
		}
		vocab := corpus.BuildVocabulary(corpus.PaperSpec().Scale(1.0 / 32))
		topkCat = cat
		topkQ = fmt.Sprintf("%s OR %s OR %s OR %s", vocab[0], vocab[1], vocab[2], vocab[3])
	})
	return topkCat, topkQ
}

// BenchmarkTopKQuery compares the old full-sort retrieval (Search: every
// partition materializes and sorts its entire hit list) against the v2
// bounded-heap path at page sizes 10 and 100. The hits-per-query metric
// reports how much work the full sort does per request.
func BenchmarkTopKQuery(b *testing.B) {
	cat, q := topkCatalog(b)
	ctx := context.Background()
	expr, err := ParseQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := cat.Query(ctx, Query{Expr: expr, Limit: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-sort", func(b *testing.B) {
		req := Query{Expr: expr} // no limit: every partition sorts its full hit list
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(warm.Total), "hits/query")
	})
	for _, limit := range []int{10, 100} {
		b.Run(fmt.Sprintf("limit-%d", limit), func(b *testing.B) {
			req := Query{Expr: expr, Limit: limit}
			for i := 0; i < b.N; i++ {
				if _, err := cat.Query(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("limit-10-tf", func(b *testing.B) {
		req := Query{Expr: expr, Limit: 10, Ranking: RankTF}
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBM25Query measures BM25-ranked retrieval on the top-k corpus —
// the per-request global statistics pass (df aggregation across shards,
// IDFs, avgdl) plus the per-document float scoring — against the same
// query coordination-ranked (the limit-10 arm of BenchmarkTopKQuery).
func BenchmarkBM25Query(b *testing.B) {
	cat, q := topkCatalog(b)
	ctx := context.Background()
	expr, err := ParseQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cat.Query(ctx, Query{Expr: expr, Limit: 1, Ranking: RankBM25}); err != nil {
		b.Fatal(err) // warm the universes
	}
	b.Run("limit-10", func(b *testing.B) {
		req := Query{Expr: expr, Limit: 10, Ranking: RankBM25}
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-sort", func(b *testing.B) {
		req := Query{Expr: expr, Ranking: RankBM25}
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSuggest measures autocomplete: one term-dictionary scan per
// partition, df aggregation, and the ranked truncation, for a short
// (broad) and a longer (narrow) prefix.
func BenchmarkSuggest(b *testing.B) {
	cat, _ := topkCatalog(b)
	ctx := context.Background()
	vocab := corpus.BuildVocabulary(corpus.PaperSpec().Scale(1.0 / 32))
	long := vocab[0]
	short := long[:1]
	for _, tc := range []struct{ name, prefix string }{
		{"short-prefix", short},
		{"long-prefix", long},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cat.Suggest(ctx, tc.prefix, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnippets measures what snippet assembly adds to a positional
// query: the same request with and without the per-hit window
// reconstruction (anchor scan, dictionary pass, highlight spans).
func BenchmarkSnippets(b *testing.B) {
	cat, phrase := phraseCatalog(b)
	ctx := context.Background()
	word := strings.Fields(strings.Trim(phrase, `"`))[0]
	if _, err := cat.Query(ctx, Query{Text: word, Limit: 1}); err != nil {
		b.Fatal(err) // warm the universes
	}
	b.Run("with-snippets", func(b *testing.B) {
		req := Query{Text: word, Limit: 10, Snippets: true}
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without", func(b *testing.B) {
		req := Query{Text: word, Limit: 10}
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- positional / phrase benchmarks ----

var (
	phraseOnce sync.Once
	phraseCat  *Catalog
	phraseText string
)

// phraseCatalog builds a positional 4-shard catalog once and picks a real
// bigram out of the corpus so the phrase walk does non-trivial work.
func phraseCatalog(b *testing.B) (*Catalog, string) {
	b.Helper()
	phraseOnce.Do(func() {
		fs := vfs.NewMemFS()
		if _, err := corpus.Generate(corpus.PaperSpec().Scale(1.0/64), fs); err != nil {
			panic(err)
		}
		cat, err := IndexFS(fs, ".", Options{
			Implementation: ReplicatedSearch, Extractors: 4, Updaters: 4,
			Shards: 4, Positions: true,
		})
		if err != nil {
			panic(err)
		}
		refs, err := walk.List(fs, ".")
		if err != nil {
			panic(err)
		}
		data, err := fs.ReadFile(refs[len(refs)/2].Path)
		if err != nil {
			panic(err)
		}
		toks := tokenize.Terms(data, tokenize.Default)
		mid := len(toks) / 2
		phraseCat = cat
		phraseText = fmt.Sprintf("%q", toks[mid]+" "+toks[mid+1])
	})
	return phraseCat, phraseText
}

// BenchmarkPhraseQuery measures quoted-phrase evaluation — candidate
// intersection plus the positional adjacency walk — against the same
// catalog's plain conjunction of the phrase words (the work a phrase
// query does on top of AND is the positional part).
func BenchmarkPhraseQuery(b *testing.B) {
	cat, phrase := phraseCatalog(b)
	ctx := context.Background()
	and := strings.Trim(phrase, `"`)
	warm, err := cat.Query(ctx, Query{Text: phrase, Limit: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("phrase", func(b *testing.B) {
		req := Query{Text: phrase, Limit: 10}
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(warm.Total), "hits/query")
	})
	b.Run("and-of-words", func(b *testing.B) {
		req := Query{Text: and, Limit: 10}
		for i := 0; i < b.N; i++ {
			if _, err := cat.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPositionalBuild measures what recording positions costs the
// batch pipeline: the same corpus and thread tuple, positions off vs on.
func BenchmarkPositionalBuild(b *testing.B) {
	fs := liveCorpus(b)
	for _, positional := range []bool{false, true} {
		name := "positions-off"
		if positional {
			name = "positions-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := IndexFS(fs, ".", Options{
					Implementation: ReplicatedSearch, Extractors: 4, Updaters: 4,
					Positions: positional,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- streaming evaluation: selective AND and WAND top-k ----

var (
	skewOnce  sync.Once
	skewEager *Catalog
	skewLazy  *Catalog
)

// skewCatalogs builds a frequency-skewed corpus — "common" in all 4000
// documents, "rare" in every 100th — as both an eager (heap) catalog
// and a lazy OpenDir catalog over its saved directory. The lazy catalog
// gets a minimal block cache so every operation pays its real decode
// cost: the blocks/op metrics below measure the algorithm, not the
// cache.
func skewCatalogs(b *testing.B) (eager, lazy *Catalog) {
	b.Helper()
	skewOnce.Do(func() {
		fs := vfs.NewMemFS()
		for i := 0; i < 4000; i++ {
			var sb strings.Builder
			for r := 0; r <= i%3; r++ {
				sb.WriteString("common ")
			}
			if i%100 == 0 {
				sb.WriteString("rare ")
			}
			fmt.Fprintf(&sb, "filler%03d tail%d", i%97, i%13)
			if err := fs.WriteFile(fmt.Sprintf("d/%04d.txt", i), []byte(sb.String())); err != nil {
				panic(err)
			}
		}
		cat, err := IndexFS(fs, ".", Options{Shards: 4})
		if err != nil {
			panic(err)
		}
		dir, err := os.MkdirTemp("", "desksearch-skew-")
		if err != nil {
			panic(err)
		}
		if err := cat.SaveDir(dir); err != nil {
			panic(err)
		}
		lz, err := OpenDir(dir, Options{BlockCacheBytes: 1})
		if err != nil {
			panic(err)
		}
		skewEager, skewLazy = cat, lz
	})
	return skewEager, skewLazy
}

// lazyBlockDecodes sums the posting-block decode counters across a lazy
// catalog's segment readers.
func lazyBlockDecodes(cat *Catalog) uint64 {
	var n uint64
	for _, r := range cat.lazy.Readers() {
		n += r.BlockDecodes()
	}
	return n
}

// benchSkewQuery runs one skewed-corpus query on the eager and lazy
// backends plus the full-lists baseline — decoding every queried term's
// entire posting list, the work the pre-streaming evaluator did per
// query — reporting blocks/op on the lazy-backend arms. The bench gate
// holds lazy blocks/op under half of full-lists (see bench_baseline.json).
func benchSkewQuery(b *testing.B, req Query, terms []string) {
	eager, lazy := skewCatalogs(b)
	ctx := context.Background()
	if _, err := eager.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	if _, err := lazy.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eager.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		start := lazyBlockDecodes(lazy)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lazy.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(lazyBlockDecodes(lazy)-start)/float64(b.N), "blocks/op")
	})
	b.Run("full-lists", func(b *testing.B) {
		readers := lazy.lazy.Readers()
		start := lazyBlockDecodes(lazy)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range readers {
				for _, term := range terms {
					r.Lookup(term)
				}
			}
		}
		b.ReportMetric(float64(lazyBlockDecodes(lazy)-start)/float64(b.N), "blocks/op")
	})
}

// BenchmarkSelectiveAND measures the streaming conjunction on the
// skewed corpus: "rare common" matches 40 of 4000 documents, so the
// galloping intersection driven by the rare term touches a fraction of
// the common term's postings — and on the lazy backend decodes no
// posting blocks at all, where materializing both lists would decode
// every touched block per query.
func BenchmarkSelectiveAND(b *testing.B) {
	benchSkewQuery(b, Query{Text: "rare common", Limit: 10}, []string{"rare", "common"})
}

// BenchmarkWANDTopK measures BM25 bounded retrieval with max-score
// skipping on the same conjunction: match enumeration streams, and
// per-scorer score ceilings let documents that provably cannot enter
// the page stop scoring early, so the lazy backend again decodes no
// blocks where full-list evaluation decodes them all.
func BenchmarkWANDTopK(b *testing.B) {
	benchSkewQuery(b, Query{Text: "rare common", Ranking: RankBM25, Limit: 10}, []string{"rare", "common"})
}

// ---- facade benchmark ----

func BenchmarkIndexFS(b *testing.B) {
	fs := liveCorpus(b)
	b.Run("auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := IndexFS(fs, ".", Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
