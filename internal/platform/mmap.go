package platform

import "errors"

// ErrNoMmap reports that memory mapping is unavailable — the platform has
// no support (MmapSupported false) or the file cannot be mapped (empty,
// or longer than the address space). Callers treat it as "use the
// io.ReaderAt fallback", never as a failure.
var ErrNoMmap = errors.New("platform: memory mapping unavailable")
