package search

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// bm25Fixture builds a three-file corpus with known term frequencies and
// document lengths, as a single index and as two document-disjoint shards:
//
//	f0 (4 tokens): cat cat the the
//	f1 (2 tokens): cat dog
//	f2 (6 tokens): dog dog dog the the the
func bm25Fixture() (*index.FileTable, *index.Index, []*index.Index) {
	files := index.NewFileTable()
	single := index.New(0)
	shards := []*index.Index{index.New(0), index.New(0)}
	add := func(path string, shard int, terms []string, counts []uint32, tokens uint32) {
		id := files.Add(path, int64(tokens), 1)
		files.SetTokens(id, tokens)
		single.AddBlock(id, terms, counts)
		shards[shard].AddBlock(id, terms, counts)
	}
	add("f0", 0, []string{"cat", "the"}, []uint32{2, 2}, 4)
	add("f1", 1, []string{"cat", "dog"}, []uint32{1, 1}, 2)
	add("f2", 0, []string{"dog", "the"}, []uint32{3, 3}, 6)
	return files, single, shards
}

// refIDF and refScore restate the BM25 formula independently of bm25.go so
// the test fails if either side drifts: the Lucene non-negative IDF and
// the k1=1.2, b=0.75 saturation curve.
func refIDF(df, n int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

func refScore(idf float64, tf, dl uint32, avgdl float64) float64 {
	t := float64(tf)
	return idf * (t * 2.2) / (t + 1.2*(1-0.75+0.75*float64(dl)/avgdl))
}

func TestBM25HandComputed(t *testing.T) {
	files, single, _ := bm25Fixture()
	e := NewEngine(files, single)

	// N = 3 live files, 12 live tokens, avgdl = 4.
	const avgdl = 4.0
	idfCat := refIDF(2, 3) // "cat" appears in f0, f1
	idfDog := refIDF(2, 3) // "dog" appears in f1, f2

	res, err := e.Query(context.Background(), Request{
		Query:   MustParse("cat OR dog"),
		Ranking: RankBM25,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[postings.FileID]float64{
		0: refScore(idfCat, 2, 4, avgdl),
		1: refScore(idfCat, 1, 2, avgdl) + refScore(idfDog, 1, 2, avgdl),
		2: refScore(idfDog, 3, 6, avgdl),
	}
	if len(res.Hits) != 3 {
		t.Fatalf("got %d hits, want 3", len(res.Hits))
	}
	for _, h := range res.Hits {
		if w := want[h.File]; h.Score != w {
			t.Errorf("file %d: score = %v, want %v", h.File, h.Score, w)
		}
	}
	// The short, term-dense f1 must outrank the long f2.
	if want[1] <= want[2] {
		t.Fatalf("fixture does not discriminate: f1 %v <= f2 %v", want[1], want[2])
	}
	if res.Hits[0].File != 1 {
		t.Errorf("top hit = file %d, want 1", res.Hits[0].File)
	}
}

// TestBM25ShardsMatchSingleExactly: the core invariant — BM25 scores from
// a sharded engine are bit-for-bit the scores from the same corpus in one
// partition, because document frequencies aggregate globally before the
// fan-out and each document accumulates in its one owning partition.
func TestBM25ShardsMatchSingleExactly(t *testing.T) {
	files, single, shards := bm25Fixture()
	se := NewEngine(files, single)
	re := NewEngine(files, index.Partitions(shards)...)
	re.Parallel = true

	for _, qs := range []string{"cat", "dog", "cat OR dog", "the AND NOT dog", "c* OR dog", "th*"} {
		q := MustParse(qs)
		a, err := se.Query(context.Background(), Request{Query: q, Ranking: RankBM25})
		if err != nil {
			t.Fatalf("%q single: %v", qs, err)
		}
		b, err := re.Query(context.Background(), Request{Query: q, Ranking: RankBM25})
		if err != nil {
			t.Fatalf("%q sharded: %v", qs, err)
		}
		if len(a.Hits) != len(b.Hits) {
			t.Fatalf("%q: %d vs %d hits", qs, len(a.Hits), len(b.Hits))
		}
		for i := range a.Hits {
			if a.Hits[i].File != b.Hits[i].File ||
				math.Float64bits(a.Hits[i].Score) != math.Float64bits(b.Hits[i].Score) {
				t.Errorf("%q hit %d: single (%d, %v) vs sharded (%d, %v)",
					qs, i, a.Hits[i].File, a.Hits[i].Score, b.Hits[i].File, b.Hits[i].Score)
			}
		}
	}
}

// TestBM25RequiresDocLengths: a file table loaded from pre-v9 bytes (no
// token lengths) fails BM25 requests with ErrNoDocLengths instead of
// scoring garbage.
func TestBM25RequiresDocLengths(t *testing.T) {
	files, single, _ := fixture()

	// Launder the table through the raw pre-v9 section codec, which
	// clears the token-length provenance bit.
	var raw bytes.Buffer
	bw := bufio.NewWriter(&raw)
	if err := index.WriteFileTable(bw, files); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	legacy, err := index.ReadFileTable(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine(legacy, single)
	_, err = e.Query(context.Background(), Request{Query: MustParse("cat"), Ranking: RankBM25})
	if !errors.Is(err, ErrNoDocLengths) {
		t.Errorf("err = %v, want ErrNoDocLengths", err)
	}
	// Other rankings keep working on the same catalog.
	if _, err := e.Query(context.Background(), Request{Query: MustParse("cat"), Ranking: RankTF}); err != nil {
		t.Errorf("RankTF on legacy catalog: %v", err)
	}
}

func TestPrefixParseAndString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"repor*", "repor*"},
		{"Repor*", "repor*"},
		{"ca* AND dog", "(ca* AND dog)"},
		{"NOT ca*", "(NOT ca*)"},
		{"\"cat dog\" OR fi*", "(\"cat dog\" OR fi*)"},
		{"ca**", "ca*"},        // extra trailing stars collapse
		{"ca*t", "(ca AND t)"}, // '*' mid-word is punctuation, not a wildcard
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical form is a fixed point of the grammar.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse %q: %v", q.String(), err)
		} else if q2.String() != q.String() {
			t.Errorf("reparse %q = %q, not a fixed point", q.String(), q2.String())
		}
	}
	for _, bad := range []string{"*", "!*", "**"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestPrefixQueryMatches(t *testing.T) {
	files, single, replicas := fixture()
	for _, e := range []*Engine{NewEngine(files, single), NewEngine(files, index.Partitions(replicas)...)} {
		// "ca*" expands to {cat}: files 0, 3, 4, 7, 8.
		res, err := e.Query(context.Background(), Request{Query: MustParse("ca*")})
		if err != nil {
			t.Fatal(err)
		}
		if got := ids(res.Hits); fmt.Sprint(got) != "[0 3 4 7 8]" {
			t.Errorf("ca* hits = %v", got)
		}
		// Prefix matching several terms: "d*"+"f*" behaves as the union.
		res, err = e.Query(context.Background(), Request{Query: MustParse("d* AND f*")})
		if err != nil {
			t.Fatal(err)
		}
		if got := ids(res.Hits); fmt.Sprint(got) != "[4 6]" {
			t.Errorf("d* AND f* hits = %v", got)
		}
		// Negated prefix.
		res, err = e.Query(context.Background(), Request{Query: MustParse("cat AND NOT fi*")})
		if err != nil {
			t.Fatal(err)
		}
		if got := ids(res.Hits); fmt.Sprint(got) != "[0 3 8]" {
			t.Errorf("cat AND NOT fi* hits = %v", got)
		}
	}
}

func TestPrefixHitTerms(t *testing.T) {
	files, single, _ := fixture()
	e := NewEngine(files, single)
	res, err := e.Query(context.Background(), Request{Query: MustParse("ca* OR bird")})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.File == 8 { // bird cat: matches both the prefix and the term
			want := []string{"bird", "ca*"}
			if fmt.Sprint(h.Terms) != fmt.Sprint(want) {
				t.Errorf("file 8 terms = %v, want %v", h.Terms, want)
			}
		}
		if h.File == 3 { // cat only
			if fmt.Sprint(h.Terms) != "[ca*]" {
				t.Errorf("file 3 terms = %v, want [ca*]", h.Terms)
			}
		}
	}
}

func TestPrefixTooBroad(t *testing.T) {
	files := index.NewFileTable()
	ix := index.New(0)
	id := files.Add("big", 1, 1)
	terms := make([]string, MaxPrefixTerms+1)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%04d", i)
	}
	ix.AddBlock(id, terms, nil)
	e := NewEngine(files, ix)

	_, err := e.Query(context.Background(), Request{Query: MustParse("t*")})
	if !errors.Is(err, ErrPrefixTooBroad) {
		t.Fatalf("err = %v, want ErrPrefixTooBroad", err)
	}
	if !strings.Contains(err.Error(), `"t*"`) {
		t.Errorf("error does not name the prefix: %v", err)
	}
	// A longer prefix under the cap works.
	if _, err := e.Query(context.Background(), Request{Query: MustParse("t00*")}); err != nil {
		t.Errorf("t00*: %v", err)
	}
	// The per-request knob overrides the default in both directions: a
	// raised cap admits the broad prefix, a lowered one rejects a prefix
	// the default would allow. DocFreqs applies the same cap.
	if _, err := e.Query(context.Background(), Request{Query: MustParse("t*"), MaxPrefixTerms: MaxPrefixTerms + 1}); err != nil {
		t.Errorf("raised cap: %v", err)
	}
	_, err = e.Query(context.Background(), Request{Query: MustParse("t00*"), MaxPrefixTerms: 3})
	if !errors.Is(err, ErrPrefixTooBroad) {
		t.Errorf("lowered cap: err = %v, want ErrPrefixTooBroad", err)
	}
	if _, err := e.DocFreqs(context.Background(), MustParse("t00*"), 3); !errors.Is(err, ErrPrefixTooBroad) {
		t.Errorf("DocFreqs lowered cap: err = %v, want ErrPrefixTooBroad", err)
	}
	if _, err := e.DocFreqs(context.Background(), MustParse("t*"), MaxPrefixTerms+1); err != nil {
		t.Errorf("DocFreqs raised cap: %v", err)
	}
}

func TestSuggest(t *testing.T) {
	files := index.NewFileTable()
	ix := index.New(0)
	docs := [][]string{
		{"app", "apple"},
		{"app", "apply"},
		{"app", "apple", "banana"},
		{"apply"},
	}
	for i, terms := range docs {
		id := files.Add(fmt.Sprintf("f%d", i), 1, 1)
		ix.AddBlock(id, terms, nil)
	}
	e := NewEngine(files, ix)

	got, err := e.Suggest(context.Background(), "ap", 0)
	if err != nil {
		t.Fatal(err)
	}
	// df: app=3, apple=2, apply=2 — ties break ascending by term.
	want := []Suggestion{{"app", 3}, {"apple", 2}, {"apply", 2}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Suggest(ap) = %v, want %v", got, want)
	}

	got, err = e.Suggest(context.Background(), "Ap*", 2) // tokenizer-normalized, '*' tolerated
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Term != "app" || got[1].Term != "apple" {
		t.Errorf("Suggest(Ap*, 2) = %v", got)
	}

	if got, err := e.Suggest(context.Background(), "zzz", 0); err != nil || len(got) != 0 {
		t.Errorf("Suggest(zzz) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "  ", "two words"} {
		if _, err := e.Suggest(context.Background(), bad, 0); err == nil {
			t.Errorf("Suggest(%q) succeeded, want error", bad)
		}
	}
}

// positionalFixture indexes one file per token slice with positions, so
// snippets can be reconstructed.
func positionalFixture(docs [][]string) (*index.FileTable, *index.Index) {
	files := index.NewFileTable()
	ix := index.New(0)
	for i, tokens := range docs {
		id := files.Add(fmt.Sprintf("f%d", i), int64(len(tokens)), 1)
		files.SetTokens(id, uint32(len(tokens)))
		pos := map[string][]uint32{}
		var terms []string
		for p, tok := range tokens {
			if _, seen := pos[tok]; !seen {
				terms = append(terms, tok)
			}
			pos[tok] = append(pos[tok], uint32(p))
		}
		positions := make([][]uint32, len(terms))
		for j, term := range terms {
			positions[j] = pos[term]
		}
		ix.AddBlockPositional(id, terms, positions)
	}
	return files, ix
}

func TestSnippets(t *testing.T) {
	files, ix := positionalFixture([][]string{
		strings.Fields("the quick brown fox jumps over the lazy dog and then some more words"),
	})
	e := NewEngine(files, ix)

	res, err := e.Query(context.Background(), Request{
		Query:    MustParse("fox AND lazy"),
		Limit:    10,
		Snippets: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Snippet == nil {
		t.Fatalf("hits = %+v", res.Hits)
	}
	sn := res.Hits[0].Snippet
	// Anchor is the earliest match ("fox" at position 3); the window spans
	// positions 0–8.
	wantText := "the quick brown fox jumps over the lazy dog"
	if sn.Text != wantText {
		t.Errorf("snippet text = %q, want %q", sn.Text, wantText)
	}
	wantSpans := []Span{
		{strings.Index(wantText, "fox"), strings.Index(wantText, "fox") + 3},
		{strings.Index(wantText, "lazy"), strings.Index(wantText, "lazy") + 4},
	}
	if fmt.Sprint(sn.Highlights) != fmt.Sprint(wantSpans) {
		t.Errorf("highlights = %v, want %v", sn.Highlights, wantSpans)
	}
	for _, s := range sn.Highlights {
		if s.Start < 0 || s.End > len(sn.Text) || s.Start >= s.End {
			t.Errorf("span %v out of bounds", s)
		}
	}
}

func TestSnippetPrefixHighlight(t *testing.T) {
	files, ix := positionalFixture([][]string{
		strings.Fields("alpha reporting beta gamma"),
	})
	e := NewEngine(files, ix)
	res, err := e.Query(context.Background(), Request{
		Query:    MustParse("repor*"),
		Limit:    5,
		Snippets: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Snippet == nil {
		t.Fatalf("hits = %+v", res.Hits)
	}
	sn := res.Hits[0].Snippet
	if sn.Text != "alpha reporting beta gamma" {
		t.Errorf("text = %q", sn.Text)
	}
	if len(sn.Highlights) != 1 || sn.Text[sn.Highlights[0].Start:sn.Highlights[0].End] != "reporting" {
		t.Errorf("highlights = %v", sn.Highlights)
	}
}

func TestSnippetsValidation(t *testing.T) {
	files, single, _ := fixture() // non-positional
	e := NewEngine(files, single)

	_, err := e.Query(context.Background(), Request{Query: MustParse("cat"), Limit: 5, Snippets: true})
	if !errors.Is(err, ErrNoPositions) {
		t.Errorf("non-positional snippets: err = %v, want ErrNoPositions", err)
	}

	pf, pix := positionalFixture([][]string{{"cat"}})
	pe := NewEngine(pf, pix)
	_, err = pe.Query(context.Background(), Request{Query: MustParse("cat"), Snippets: true})
	if err == nil || !strings.Contains(err.Error(), "positive limit") {
		t.Errorf("unbounded snippets: err = %v, want positive-limit error", err)
	}
}
