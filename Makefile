# Local targets mirroring .github/workflows/ci.yml exactly, so `make ci`
# reproduces what CI runs.

GO ?= go

# Pinned staticcheck version, matching .github/workflows/ci.yml.
STATICCHECK_VERSION ?= 2025.1

# govulncheck version, matching .github/workflows/ci.yml.
GOVULNCHECK_VERSION ?= latest

# The bench-regression gate: which benchmarks are compared against
# bench_baseline.json, and how they are run. -count=3 with benchcheck's
# min-of-runs parsing keeps single noisy runs from tripping the gate.
BENCH_GATE = ^(BenchmarkTopKQuery|BenchmarkShardedBuild|BenchmarkBM25Query|BenchmarkSuggest|BenchmarkSnippets|BenchmarkColdOpen|BenchmarkSelectiveAND|BenchmarkWANDTopK)$$
BENCH_GATE_FLAGS = -run '^$$' -bench '$(BENCH_GATE)' -benchtime=10x -count=3

.PHONY: build test vet fmt lint vuln bench bench-check bench-baseline docs-check load-smoke ci

build:
	$(GO) build ./...

# -shuffle=on matches CI: randomized test order within each package.
test:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# staticcheck: use the PATH binary when present, otherwise fetch the pinned
# version via `go run` (needs network once). Only tool *availability* is
# probed with -version; real findings always fail the target. Offline
# machines without the binary get a skip, not a failure — CI always has it.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "lint: staticcheck unavailable (offline, not installed); skipping" >&2; \
	fi

# govulncheck: same availability probe as lint — use the PATH binary when
# present, otherwise fetch via `go run` (needs network once). Real findings
# always fail the target; offline machines without the binary get a skip.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	else \
		echo "vuln: govulncheck unavailable (offline, not installed); skipping" >&2; \
	fi

# One iteration per benchmark: compile-and-run proof, no measurement. The
# top-k query benchmark runs explicitly first so the v2 retrieval path is
# always exercised even if the full sweep is filtered down.
bench:
	$(GO) test -run='^$$' -bench='^BenchmarkTopKQuery$$' -benchtime=1x .
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-check fails when any gated benchmark (the top-k query path and the
# 4-shard build) regressed past bench_baseline.json's tolerance, or when a
# machine-independent ratio gate (bounded heap vs full sort) breaks.
# BENCH_TOLERANCE overrides the file's absolute tolerance — CI uses a
# looser one because its runners are not the baseline's hardware; the
# ratio gates hold at full strength everywhere.
BENCH_TOLERANCE ?=
bench-check:
	$(GO) test $(BENCH_GATE_FLAGS) . | $(GO) run ./cmd/benchcheck -baseline bench_baseline.json $(if $(BENCH_TOLERANCE),-tolerance $(BENCH_TOLERANCE))

# bench-baseline re-records bench_baseline.json from this machine. Run it
# after an intentional perf change (or on new reference hardware) and
# commit the result.
bench-baseline:
	$(GO) test $(BENCH_GATE_FLAGS) . | $(GO) run ./cmd/benchcheck -baseline bench_baseline.json -update

# The doc-drift gate: the DSIX version constants in internal/index/codec.go
# must match the version history documented in docs/FORMAT.md.
docs-check:
	$(GO) run ./cmd/docscheck

# load-smoke replays cmd/loadgen's CI preset — a tiny in-process corpus,
# 300 mixed queries, exit 1 on any error — proving the load harness and
# the query surface it drives end to end.
load-smoke:
	$(GO) run ./cmd/loadgen -smoke -out /dev/null

ci: build vet fmt lint vuln docs-check test bench bench-check load-smoke
