// Package core implements the paper's contribution: the parallel index
// generation pipeline, in the three alternative designs whose comparison is
// the subject of the study.
//
//   - Implementation 1 (SharedIndex): one index shared by every updater,
//     locked on update.
//   - Implementation 2 (ReplicatedJoin): one private index per updater,
//     joined into a single index at the end ("Join Forces" — no locking,
//     just a barrier and a join).
//   - Implementation 3 (ReplicatedSearch): private indices that are never
//     joined; the search side queries all of them in parallel instead.
//
// A pipeline run is described by a Config carrying the paper's thread
// tuple (x, y, z): x term extractors, y index updaters, z index joiners.
// With y = 0 the extractors update the index themselves (no separate
// updater stage); with y ≥ 1 extractors pass term blocks to updaters
// through a bounded buffer.
package core

import (
	"fmt"

	"desksearch/internal/distribute"
	"desksearch/internal/extract"
)

// Implementation selects one of the paper's index-interaction designs.
type Implementation int

const (
	// Sequential is the single-threaded baseline the paper's speed-ups are
	// measured against.
	Sequential Implementation = iota
	// SharedIndex is Implementation 1: a single lock-guarded index.
	SharedIndex
	// ReplicatedJoin is Implementation 2: replica indices joined at the end.
	ReplicatedJoin
	// ReplicatedSearch is Implementation 3: replica indices left unjoined.
	ReplicatedSearch
)

// String returns the paper's name for the implementation.
func (im Implementation) String() string {
	switch im {
	case Sequential:
		return "Sequential"
	case SharedIndex:
		return "Implementation 1"
	case ReplicatedJoin:
		return "Implementation 2"
	case ReplicatedSearch:
		return "Implementation 3"
	default:
		return fmt.Sprintf("Implementation(%d)", int(im))
	}
}

// Config describes one pipeline run. The zero value runs sequentially; use
// Default for a sensible parallel starting point.
type Config struct {
	// Implementation selects the index-interaction design.
	Implementation Implementation
	// Extractors is x: the number of term-extraction goroutines.
	Extractors int
	// Updaters is y: the number of index-update goroutines. Zero means
	// extractors update the index directly (no separate stage 3 threads).
	Updaters int
	// Joiners is z: the number of goroutines merging replica indices at
	// the end (ReplicatedJoin only). Zero or one joins single-threaded.
	Joiners int
	// Buffer is the capacity of the term-block channel between extractors
	// and updaters. Zero selects 8 blocks per extractor.
	Buffer int
	// Distribution selects how filenames are dealt to extractors.
	// The default, round-robin, is the paper's measured winner.
	Distribution distribute.Strategy
	// WorkStealing replaces the static distribution with per-extractor
	// deques and stealing (the paper's fourth considered option).
	WorkStealing bool
	// Shards, when positive, partitions the run's output into that many
	// document shards (a shard.Set in Result.Shards) instead of a single
	// index or replica slice. ReplicatedSearch replicas whose count equals
	// Shards become shards directly, with no join or redistribution pass;
	// every other combination splits by FileID hash. For ReplicatedJoin
	// the shard build replaces the join phase entirely.
	Shards int
	// Extract configures term extraction.
	Extract extract.Options
}

// Default returns the paper's default parallel configuration for the given
// implementation on a machine with cores cores: extractors fill the
// machine, one updater, single-threaded join.
func Default(im Implementation, cores int) Config {
	if cores < 1 {
		cores = 1
	}
	x := cores - 1
	if x < 1 {
		x = 1
	}
	cfg := Config{Implementation: im, Extractors: x, Updaters: 1}
	if im == Sequential {
		cfg.Extractors, cfg.Updaters = 1, 0
	}
	return cfg
}

// Tuple renders the thread configuration in the paper's notation, e.g.
// "(3, 1, 0)".
func (c Config) Tuple() string {
	return fmt.Sprintf("(%d, %d, %d)", c.Extractors, c.Updaters, c.Joiners)
}

// normalized returns a copy with defaults filled in and nonsense clamped.
func (c Config) normalized() Config {
	if c.Implementation == Sequential {
		c.Extractors, c.Updaters, c.Joiners = 1, 0, 0
		c.WorkStealing = false
	}
	if c.Extractors < 1 {
		c.Extractors = 1
	}
	if c.Updaters < 0 {
		c.Updaters = 0
	}
	if c.Joiners < 0 {
		c.Joiners = 0
	}
	if c.Implementation != ReplicatedJoin {
		c.Joiners = 0
	}
	if c.Buffer <= 0 {
		c.Buffer = 8 * c.Extractors
	}
	return c
}

// Validate reports configurations that cannot be run.
func (c Config) Validate() error {
	switch c.Implementation {
	case Sequential, SharedIndex, ReplicatedJoin, ReplicatedSearch:
	default:
		return fmt.Errorf("core: unknown implementation %d", int(c.Implementation))
	}
	if c.Extractors < 0 || c.Updaters < 0 || c.Joiners < 0 || c.Buffer < 0 {
		return fmt.Errorf("core: negative thread count in %s", c.Tuple())
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	switch c.Distribution {
	case distribute.RoundRobin, distribute.BySize, distribute.Chunked:
	default:
		return fmt.Errorf("core: unknown distribution strategy %d", int(c.Distribution))
	}
	return nil
}

// Replicas returns the number of replica indices the configuration builds:
// one per updater, or one per extractor when updaters are absent. The
// SharedIndex and Sequential designs always have exactly one.
func (c Config) Replicas() int {
	c = c.normalized()
	switch c.Implementation {
	case ReplicatedJoin, ReplicatedSearch:
		if c.Updaters > 0 {
			return c.Updaters
		}
		return c.Extractors
	default:
		return 1
	}
}
