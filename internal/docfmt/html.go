package docfmt

import "bytes"

// htmlExtractor strips tags, comments, script/style bodies, and decodes the
// handful of entities that matter for term extraction. It is a permissive
// single-pass scanner, not a validating parser: desktop files are often
// malformed and indexing must never fail on them.
type htmlExtractor struct{}

var htmlEntities = map[string]byte{
	"amp":  '&',
	"lt":   '<',
	"gt":   '>',
	"quot": '"',
	"apos": '\'',
	"nbsp": ' ',
}

func (htmlExtractor) Extract(data []byte) []byte {
	out := make([]byte, 0, len(data)/2)
	i, n := 0, len(data)
	for i < n {
		c := data[i]
		switch {
		case c == '<':
			if hasFoldPrefix(data[i:], "<!--") {
				end := bytes.Index(data[i+4:], []byte("-->"))
				if end < 0 {
					return out // unterminated comment swallows the rest
				}
				i += 4 + end + 3
				// Comments separate words, like tags do.
				out = append(out, ' ')
				continue
			}
			if skip, ok := skipRawElement(data, i, "script"); ok {
				i = skip
				out = append(out, ' ')
				continue
			}
			if skip, ok := skipRawElement(data, i, "style"); ok {
				i = skip
				out = append(out, ' ')
				continue
			}
			end := bytes.IndexByte(data[i:], '>')
			if end < 0 {
				return out // unterminated tag
			}
			i += end + 1
			// Tags separate words: "<b>a</b>b" must not merge a and b.
			out = append(out, ' ')
		case c == '&':
			semi := bytes.IndexByte(data[i:], ';')
			if semi > 1 && semi <= 8 {
				name := string(data[i+1 : i+semi])
				if b, ok := htmlEntities[name]; ok {
					out = append(out, b)
					i += semi + 1
					continue
				}
			}
			out = append(out, c)
			i++
		default:
			out = append(out, c)
			i++
		}
	}
	return out
}

// skipRawElement, when data[i:] opens the named raw-text element, returns
// the offset just past its closing tag and true.
func skipRawElement(data []byte, i int, name string) (int, bool) {
	open := "<" + name
	if !hasFoldPrefix(data[i:], open) {
		return 0, false
	}
	after := i + len(open)
	if after < len(data) && data[after] != '>' && data[after] != ' ' && data[after] != '\t' && data[after] != '\n' {
		return 0, false // e.g. <scripted>
	}
	closeTag := "</" + name
	rest := data[after:]
	for off := 0; ; {
		j := bytes.IndexByte(rest[off:], '<')
		if j < 0 {
			return len(data), true // unterminated raw element
		}
		off += j
		if hasFoldPrefix(rest[off:], closeTag) {
			gt := bytes.IndexByte(rest[off:], '>')
			if gt < 0 {
				return len(data), true
			}
			return after + off + gt + 1, true
		}
		off++
	}
}

// hasFoldPrefix reports whether b begins with prefix, ASCII case-insensitively.
func hasFoldPrefix(b []byte, prefix string) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		c, p := b[i], prefix[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if p >= 'A' && p <= 'Z' {
			p += 'a' - 'A'
		}
		if c != p {
			return false
		}
	}
	return true
}
