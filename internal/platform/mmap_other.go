//go:build !linux

package platform

import "os"

// MmapSupported reports whether MapFile can succeed on this platform.
const MmapSupported = false

// MapFile is unsupported here; callers fall back to io.ReaderAt access.
// See mmap_linux.go for the supported implementation and the rationale
// for hosting it in this package.
func MapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, ErrNoMmap
}
