package core

import (
	"fmt"
	"path"
	"sync"
	"time"

	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/postings"
	"desksearch/internal/vfs"
)

// RunConcurrentStage1 overlaps filename generation with term extraction:
// a single walker goroutine feeds filenames through a shared queue that x
// extractor goroutines consume, updating one shared locked index.
//
// This is the design the paper measured and rejected — "running the
// filename generator concurrently with the term extractors proved to be
// highly inefficient, because of a pair of lock operations for every
// filename generated and consumed" — kept as the ablation behind
// BenchmarkAblationConcurrentStage1. Run (with its up-front Stage 1) is
// the production path.
func RunConcurrentStage1(fsys vfs.FS, root string, extractors int, opts extract.Options) (*Result, error) {
	if extractors < 1 {
		extractors = 1
	}
	res := &Result{
		Implementation: SharedIndex,
		Config: Config{
			Implementation: SharedIndex,
			Extractors:     extractors,
		},
	}
	start := time.Now()

	table := index.NewFileTable()
	shared := index.NewShared(1 << 12)

	type job struct {
		path string
		id   postings.FileID
	}
	// An unbuffered-ish channel maximizes the handoff cost the paper
	// observed; a small buffer keeps the walker from becoming the
	// artificial bottleneck.
	jobs := make(chan job, 1)

	var (
		skippedMu sync.Mutex
		walkErr   error
	)

	var wg sync.WaitGroup
	for w := 0; w < extractors; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := extract.New(fsys, opts)
			for j := range jobs {
				block, err := ex.File(j.path, j.id)
				if err != nil {
					skippedMu.Lock()
					res.SkippedFiles = append(res.SkippedFiles, Skipped{Path: j.path, Err: err})
					skippedMu.Unlock()
					continue
				}
				shared.AddBlock(block.File, block.Terms, block.Counts)
			}
		}()
	}

	// The walker runs concurrently with extraction; file IDs are assigned
	// in traversal order, and only the walker touches the file table.
	var walkDir func(dir string) error
	walkDir = func(dir string) error {
		entries, err := fsys.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			child := path.Join(dir, e.Name)
			if e.IsDir {
				if err := walkDir(child); err != nil {
					return err
				}
				continue
			}
			id := table.Add(child, e.Size, e.ModTime)
			jobs <- job{path: child, id: id}
		}
		return nil
	}
	walkErr = walkDir(root)
	close(jobs)
	wg.Wait()

	if walkErr != nil {
		return nil, fmt.Errorf("core: concurrent filename generation: %w", walkErr)
	}
	res.Files = table
	res.Index = shared.Unwrap()
	res.Timings.Total = time.Since(start)
	res.Timings.ExtractUpdate = res.Timings.Total
	return res, nil
}
