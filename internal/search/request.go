package search

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// Ranking selects how hits are scored.
type Ranking int

const (
	// RankCoordination scores a hit by how many distinct positive query
	// terms the file contains — the v1 behavior and the default.
	RankCoordination Ranking = iota
	// RankTF scores a hit by the summed occurrence counts (term
	// frequencies) of the positive query terms in the file, so a file
	// that mentions a term many times outranks one that mentions it once.
	RankTF
	// RankBM25 scores a hit by Okapi BM25: per positive term (and per
	// prefix operator, as one pseudo-term), an inverse-document-frequency
	// weight from corpus-global document frequencies times a saturated,
	// length-normalized term frequency. Requires a catalog whose file
	// table records document lengths (every fresh build; DSIX v9 on disk)
	// — ErrNoDocLengths otherwise. Sharded and unsharded catalogs over
	// the same corpus produce bit-identical BM25 scores: document
	// frequencies aggregate across partitions before scoring starts.
	RankBM25
)

// String names the ranking mode.
func (r Ranking) String() string {
	switch r {
	case RankCoordination:
		return "coordination"
	case RankTF:
		return "tf"
	case RankBM25:
		return "bm25"
	default:
		return fmt.Sprintf("Ranking(%d)", int(r))
	}
}

// Request is a v2 query: a parsed boolean expression plus retrieval
// controls. The zero controls reproduce v1 Search exactly — every hit,
// coordination-ranked.
type Request struct {
	// Query is the parsed boolean expression to evaluate.
	Query *Query
	// Limit caps the number of hits returned; 0 means unlimited. With a
	// limit, each partition retains only its local top Limit+Offset hits
	// in a bounded min-heap instead of sorting its full hit list.
	Limit int
	// Offset skips that many hits before the returned page — pagination's
	// second half. Offset without Limit is honored against the full
	// ranked result.
	Offset int
	// Ranking selects the scoring mode.
	Ranking Ranking
	// PathPrefix, when non-empty, keeps only hits whose path starts with
	// it (a cheap directory filter); filtered-out matches do not count
	// toward Response.Total.
	PathPrefix string
	// OmitTerms skips the per-hit matched-term metadata — the v1
	// compatibility path, whose callers discard it, uses this to keep the
	// full-result Search as allocation-lean as before the redesign.
	OmitTerms bool
	// Snippets asks for a per-hit context window (Hit.Snippet) built from
	// the index's token positions. Requires a positional catalog
	// (ErrNoPositions otherwise, exactly like phrase queries) and a
	// positive Limit — snippets are generated for the retained page only,
	// never for an unbounded result.
	Snippets bool
	// MaxPrefixTerms caps how many dictionary terms one prefix operator
	// may expand to within a single partition; 0 applies the
	// MaxPrefixTerms package default. Negative values are rejected by the
	// public API before a Request is ever built.
	MaxPrefixTerms int
	// GlobalDF, when non-nil, supplies corpus-wide document-frequency
	// statistics for BM25 ranking in place of the engine's own aggregation
	// — the distributed-serving hook. A broker that fans a query out over
	// workers each holding a subset of the corpus first gathers every
	// worker's DocFreqs, sums them, and attaches the total here, so each
	// worker scores with the exact statistics a single-node evaluation
	// would have used. Ignored by the other ranking modes. The vector must
	// match the query's shape (one entry per positive term and per scoring
	// prefix operator) or the query fails.
	GlobalDF *DocFreqs
}

// DocFreqs is the corpus-global half of BM25 scoring as plain data: the
// live-document count, the total live token count, and one document
// frequency per positive query term and per scoring prefix operator, in
// the query's canonical order. Partitions are document-disjoint, so the
// vectors of two engines serving disjoint partition subsets sum
// element-wise to the vector of the whole corpus — the invariant the
// distributed broker's pre-aggregation phase rides. Docs and Tokens are
// corpus-wide properties of the shared file table, identical on every
// worker of one catalog; a broker verifies rather than sums them.
type DocFreqs struct {
	// Docs is the number of live documents (BM25's N).
	Docs int
	// Tokens is the summed token length of the live documents; Tokens/Docs
	// is BM25's average document length.
	Tokens uint64
	// Terms[i] is the document frequency of the query's i-th positive
	// term, summed over this engine's partitions.
	Terms []int
	// Prefixes[j] is the document frequency of the query's j-th scoring
	// prefix operator — the total size of its expansion unions.
	Prefixes []int
}

// Add accumulates other into d element-wise: document frequencies sum
// (partition subsets are document-disjoint), while Docs and Tokens — equal
// on every worker by construction — are taken from the first operand. It
// reports whether the shapes matched.
func (d *DocFreqs) Add(other *DocFreqs) bool {
	if len(d.Terms) != len(other.Terms) || len(d.Prefixes) != len(other.Prefixes) {
		return false
	}
	for i, v := range other.Terms {
		d.Terms[i] += v
	}
	for j, v := range other.Prefixes {
		d.Prefixes[j] += v
	}
	return true
}

// DocFreqs computes the engine's local document-frequency vector for q:
// per positive term, the DocFreq summed over the engine's partitions
// (answered from term dictionaries, no posting blocks decoded); per
// scoring prefix operator, the summed size of its expansion unions. It is
// phase one of the distributed BM25 protocol — cheap enough to run as a
// separate round-trip before the query itself. Expansion obeys the same
// prefix-expansion cap as evaluation — maxPrefixTerms, with 0 meaning the
// MaxPrefixTerms default — so an over-broad prefix fails here, before any
// worker evaluates anything.
func (e *Engine) DocFreqs(ctx context.Context, q *Query, maxPrefixTerms int) (*DocFreqs, error) {
	if q == nil || q.root == nil {
		return nil, fmt.Errorf("search: request has no query")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := &DocFreqs{
		Docs:     e.files.LiveCount(),
		Tokens:   e.files.LiveTokens(),
		Terms:    make([]int, len(q.positive)),
		Prefixes: make([]int, len(q.scorePrefixes)),
	}
	for i, term := range q.positive {
		for _, ix := range e.indices {
			out.Terms[i] += ix.DocFreq(term)
		}
	}
	if len(q.prefixes) > 0 {
		expansions := make([][]*postings.List, len(e.indices))
		expErrs := make([]error, len(e.indices))
		if e.Parallel && len(e.indices) > 1 {
			var wg sync.WaitGroup
			for i, ix := range e.indices {
				wg.Add(1)
				go func(i int, ix index.Partition) {
					defer wg.Done()
					expansions[i], expErrs[i] = expandPrefixes(ix, q, maxPrefixTerms)
				}(i, ix)
			}
			wg.Wait()
		} else {
			for i, ix := range e.indices {
				expansions[i], expErrs[i] = expandPrefixes(ix, q, maxPrefixTerms)
			}
		}
		for _, err := range expErrs {
			if err != nil {
				return nil, err
			}
		}
		for j, ord := range q.scorePrefixes {
			for _, exp := range expansions {
				out.Prefixes[j] += exp[ord].Len()
			}
		}
	}
	return out, nil
}

// PartitionStat is one partition's share of a query's work.
type PartitionStat struct {
	// Partition is the index's position in the engine's partition list.
	Partition int
	// Matched counts the partition's matches after path filtering —
	// before the top-k truncation, so partition Matched values sum to
	// Response.Total.
	Matched int
	// Duration is the partition's evaluation wall time.
	Duration time.Duration
}

// Response is the result of a v2 query.
type Response struct {
	// Hits is the requested page, ordered by descending score then
	// ascending file ID.
	Hits []Hit
	// Total is the number of matches across all partitions — the count
	// pagination pages through, independent of Limit/Offset.
	Total int
	// Partitions reports per-partition match counts and timings, in
	// partition order.
	Partitions []PartitionStat
}

// partResult is one partition's contribution to a query.
type partResult struct {
	hits    []Hit
	matched int
	dur     time.Duration
	// err is the partition's evaluation failure (a phrase query against a
	// partition without positions); it fails the whole query.
	err error
}

// Query evaluates req over every partition and returns the requested page.
//
// With more than one partition the query fans out to one goroutine per
// partition; each evaluates, scores, and keeps its local top Limit+Offset
// hits in a bounded min-heap (its full hit list when unbounded), and the
// per-partition ranked lists are k-way merged only until the page is
// full. Cancellation is honored between evaluation steps: a context
// canceled mid-fan-out aborts the in-flight partitions at their next step
// boundary and Query returns ctx.Err() with no goroutines left behind.
func (e *Engine) Query(ctx context.Context, req Request) (*Response, error) {
	if req.Query == nil || req.Query.root == nil {
		return nil, fmt.Errorf("search: request has no query")
	}
	if req.Limit < 0 {
		return nil, fmt.Errorf("search: negative limit %d", req.Limit)
	}
	if req.Offset < 0 {
		return nil, fmt.Errorf("search: negative offset %d", req.Offset)
	}
	switch req.Ranking {
	case RankCoordination, RankTF, RankBM25:
	default:
		return nil, fmt.Errorf("search: unknown ranking mode %d", int(req.Ranking))
	}
	if req.Snippets && req.Limit <= 0 {
		return nil, fmt.Errorf("search: snippets require a positive limit")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	unis := e.lockShared()
	defer e.mu.RUnlock()

	if req.Ranking == RankBM25 && !e.files.HasTokens() {
		return nil, ErrNoDocLengths
	}

	// Prefix operators expand before evaluation fans out: the cap error
	// must not depend on boolean short-circuiting, and BM25 needs every
	// partition's expansion to aggregate global document frequencies.
	var expansions [][]*postings.List
	if len(req.Query.prefixes) > 0 {
		expansions = make([][]*postings.List, len(e.indices))
		expErrs := make([]error, len(e.indices))
		if e.Parallel && len(e.indices) > 1 {
			var wg sync.WaitGroup
			for i, ix := range e.indices {
				wg.Add(1)
				go func(i int, ix index.Partition) {
					defer wg.Done()
					expansions[i], expErrs[i] = expandPrefixes(ix, req.Query, req.MaxPrefixTerms)
				}(i, ix)
			}
			wg.Wait()
		} else {
			for i, ix := range e.indices {
				expansions[i], expErrs[i] = expandPrefixes(ix, req.Query, req.MaxPrefixTerms)
			}
		}
		// First failing partition in partition order, so the reported
		// prefix does not vary with goroutine scheduling.
		for _, err := range expErrs {
			if err != nil {
				return nil, err
			}
		}
	}
	var bm *bm25Stats
	if req.Ranking == RankBM25 {
		var err error
		bm, err = e.computeBM25Stats(req.Query, expansions, req.GlobalDF)
		if err != nil {
			return nil, err
		}
	}

	// Each partition only ever contributes to one page of Limit hits at
	// Offset, so its local top Limit+Offset bound every merge outcome.
	k := 0
	if req.Limit > 0 {
		k = req.Limit + req.Offset
	}
	exp := func(i int) []*postings.List {
		if expansions == nil {
			return nil
		}
		return expansions[i]
	}
	parts := make([]partResult, len(e.indices))
	if e.Parallel && len(e.indices) > 1 {
		var wg sync.WaitGroup
		for i, ix := range e.indices {
			wg.Add(1)
			go func(i int, ix index.Partition) {
				defer wg.Done()
				parts[i] = e.queryOne(ctx, ix, unis[i], req, k, exp(i), bm)
			}(i, ix)
		}
		wg.Wait()
	} else {
		for i, ix := range e.indices {
			if ctx.Err() != nil {
				break
			}
			parts[i] = e.queryOne(ctx, ix, unis[i], req, k, exp(i), bm)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
	}

	resp := &Response{Partitions: make([]PartitionStat, len(parts))}
	ranked := make([][]Hit, len(parts))
	for i, p := range parts {
		resp.Total += p.matched
		resp.Partitions[i] = PartitionStat{Partition: i, Matched: p.matched, Duration: p.dur}
		ranked[i] = p.hits
	}
	var merged []Hit
	if k > 0 {
		merged = mergePage(ranked, k)
	} else {
		merged = mergeRanked(ranked)
	}
	if req.Offset > 0 {
		if req.Offset >= len(merged) {
			merged = nil
		} else {
			merged = merged[req.Offset:]
		}
	}
	if req.Limit > 0 && len(merged) > req.Limit {
		merged = merged[:req.Limit]
	}
	resp.Hits = merged
	return resp, nil
}

// scored is a hit plus the bitmask of positive query terms it matched
// (bit i = positive term i, first 64 terms); the mask is expanded to
// Hit.Terms only for the hits that survive top-k selection.
type scored struct {
	hit  Hit
	mask uint64
}

// queryOne evaluates req against a single partition: match, score, filter,
// and retain the local top k (all hits when k == 0), ranked. exp is the
// partition's prefix expansion unions (nil without prefix operators) and bm
// the request's global BM25 statistics (nil for other rankings).
func (e *Engine) queryOne(ctx context.Context, ix index.Partition, universe *postings.List, req Request, k int, exp []*postings.List, bm *bm25Stats) partResult {
	start := time.Now()
	// Phrase queries and snippets are rejected on position-free partitions
	// before evaluation, not inside it: AND's empty-accumulator
	// short-circuit could otherwise skip the phrase node, making the error
	// appear and disappear with term order. (evalPhrase still checks per
	// term list, which covers partially positional lists inside a
	// positional index.)
	if (req.Query.hasPhrase || req.Snippets) && !ix.Positional() {
		return partResult{err: ErrNoPositions, dur: time.Since(start)}
	}
	env := &evalEnv{ctx: ctx, ix: ix, universe: universe, prefixes: exp}
	matched, err := env.eval(req.Query.root)
	if err != nil {
		return partResult{err: err, dur: time.Since(start)}
	}
	if ctx.Err() != nil || matched.Len() == 0 {
		return partResult{dur: time.Since(start)}
	}

	// Scoring walks the match list once, document-at-a-time, seeking one
	// streaming iterator per positive term — then per scored prefix
	// pseudo-term — forward through the match set. The accumulation order
	// (positive terms in query order, then prefixes in scorePrefixes
	// order) is part of the API's determinism contract: BM25 adds float
	// terms in this exact sequence, so any partitioning of the corpus —
	// and either storage backend — produces bit-identical scores.
	type scorer struct {
		it  index.PostingIterator // nil when the term is absent here
		idf float64
		bit int
	}
	scorers := make([]scorer, 0, len(req.Query.positive)+len(req.Query.scorePrefixes))
	for ti, term := range req.Query.positive {
		sc := scorer{it: ix.Iterator(term), bit: ti}
		if bm != nil {
			sc.idf = bm.idfTerm[ti]
		}
		scorers = append(scorers, sc)
	}
	for pi, ord := range req.Query.scorePrefixes {
		sc := scorer{it: postings.NewIterator(exp[ord]), bit: len(req.Query.positive) + pi}
		if bm != nil {
			sc.idf = bm.idfPrefix[pi]
		}
		scorers = append(scorers, sc)
	}

	// WAND-style max-score skipping (BM25 top-k only): rem[i] bounds from
	// above what scorers i.. can still add to a document's score. Once
	// the heap is full, a document whose partial score plus rem cannot
	// reach the heap's worst retained score is dropped without seeking
	// its remaining scorers — matched IDs ascend, so an exact tie would
	// lose the File tie-break anyway and skipping it is sound. wandSlack
	// absorbs the associativity gap between the precomputed bound sum and
	// the sequential accumulation it bounds (≤ a few ulps per scorer);
	// scores and bounds are nonnegative, so inflating the bound only
	// makes skipping more conservative, never wrong.
	const wandSlack = 1 + 1e-12
	wand := bm != nil && k > 0
	var rem []float64
	if wand {
		rem = make([]float64, len(scorers)+1)
		for i := len(scorers) - 1; i >= 0; i-- {
			rem[i] = rem[i+1]
			if scorers[i].it != nil {
				rem[i] += bm.maxScore(scorers[i].idf, scorers[i].it.MaxCount())
			}
		}
	}

	// Selection pass: walk the match list, filter by path prefix, score,
	// and feed a bounded heap (or collect everything when unbounded).
	res := partResult{}
	heap := newTopK(k)
	var all []scored
	for i, id := range matched.IDs() {
		if i&1023 == 0 && ctx.Err() != nil {
			return partResult{dur: time.Since(start)}
		}
		path := e.files.Path(id)
		if req.PathPrefix != "" && !strings.HasPrefix(path, req.PathPrefix) {
			continue
		}
		res.matched++
		var dl uint32
		if bm != nil {
			dl = e.files.Tokens(id)
		}
		var score float64
		var mask uint64
		skipped := false
		for si := range scorers {
			if wand && heap.full() {
				if (score+rem[si])*wandSlack <= heap.worst().Score {
					skipped = true
					break
				}
			}
			sc := &scorers[si]
			if sc.it == nil {
				continue
			}
			if !sc.it.SeekGE(id) {
				sc.it = nil // exhausted; no later match-set ID can hit it
				continue
			}
			if sc.it.ID() != id {
				continue
			}
			count := sc.it.Count()
			switch req.Ranking {
			case RankBM25:
				score += bm.score(sc.idf, count, dl)
			case RankTF:
				score += float64(count)
			default:
				score++
			}
			if sc.bit < 64 {
				mask |= 1 << uint(sc.bit)
			}
		}
		if skipped {
			continue
		}
		s := scored{hit: Hit{File: id, Path: path, Score: score}, mask: mask}
		if k > 0 {
			heap.consider(s)
		} else {
			all = append(all, s)
		}
	}
	if k > 0 {
		all = heap.ranked()
	} else {
		sortScored(all)
	}
	if len(all) > 0 {
		labels := req.Query.positive
		if !req.OmitTerms && len(req.Query.scorePrefixes) > 0 {
			labels = make([]string, 0, len(req.Query.positive)+len(req.Query.scorePrefixes))
			labels = append(labels, req.Query.positive...)
			for _, ord := range req.Query.scorePrefixes {
				labels = append(labels, req.Query.prefixes[ord]+"*")
			}
		}
		res.hits = make([]Hit, len(all))
		for i, s := range all {
			h := s.hit
			if !req.OmitTerms {
				h.Terms = termsFromMask(labels, s.mask)
			}
			res.hits[i] = h
		}
		if req.Snippets {
			buildSnippets(ix, req.Query, exp, res.hits)
		}
	}
	res.dur = time.Since(start)
	return res
}

// termsFromMask expands a matched-term bitmask back into the query's score
// labels — the positive terms followed by the canonical prefix operators —
// preserving query order.
func termsFromMask(labels []string, mask uint64) []string {
	if mask == 0 {
		return nil
	}
	out := make([]string, 0, 4)
	for i, label := range labels {
		if i >= 64 {
			break
		}
		if mask&(1<<uint(i)) != 0 {
			out = append(out, label)
		}
	}
	return out
}
