// Command dsearchd is the desktop-search daemon: it loads (or builds) a
// catalog once, keeps it memory-resident, and serves concurrent queries
// over HTTP — the resident query broker in front of the partitioned index.
//
// Usage:
//
//	dsearchd -root DIR [-shards N] [-formats] [flags]
//	dsearchd -index PATH [-root DIR] [flags]
//	dsearchd -index DIR -lazy [flags]
//	dsearchd -index DIR -worker [-shards 0,2] [flags]
//	dsearchd -broker -workers URLS [flags]
//
// -root builds the index at startup; -index loads a saved one (a single
// index file or a sharded directory as written by indexgen). With both,
// the saved index is loaded and then kept in step with DIR: -watch polls
// it on an interval, and POST /reload updates on demand — both run the
// incremental delta pipeline and atomically invalidate the query cache,
// so no request is ever answered from a stale generation.
//
// -lazy serves a sharded directory without materializing it: startup reads
// only the term dictionaries, and posting data is mapped and decoded per
// query (see desksearch.OpenDir). The catalog is read-only — -lazy
// conflicts with -root and -watch — and /stats reports open_mode "lazy"
// with the per-partition resident-byte estimates. -block-cache-bytes
// bounds the decoded posting-block cache.
//
// -worker turns the daemon into a distributed-serving worker: the internal
// scatter-gather endpoints (/internal/meta, /internal/df,
// /internal/search) come up next to the public ones. With -shards as a
// comma-separated list of shard numbers ("0,2"), only those segments of
// the -index directory are opened (lazily, per shard subset); the
// directory must be hash-routed, i.e. built with a shard count.
//
// -broker runs the scatter-gather front end instead of serving an index:
// -workers declares the replica topology as comma-separated groups of
// |-separated worker URLs ("http://a:7701|http://a2:7701,http://b:7702" is
// two groups, the first with two replicas). The broker verifies at startup
// that the groups' shard subsets tile the directory, then serves the same
// public API as a single node, with per-group failover and hedged
// requests.
//
// Endpoints:
//
//	GET  /search?q=QUERY&limit=N&offset=N&rank=count|tf|bm25&prefix=P&timeout=D
//	GET  /suggest?q=PREFIX&n=N
//	GET  /stats
//	GET  /healthz
//	GET  /metrics           (Prometheus text format)
//	POST /reload            (add ?mode=full to rebuild from scratch)
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ (CPU
// and heap profiles, goroutine dumps) in both node and broker modes —
// opt-in because the profiling surface exposes internals that do not
// belong on a production listener by default.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"desksearch"
	"desksearch/internal/broker"
	"desksearch/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7700", "listen address")
		indexPath    = flag.String("index", "", "load a saved index from this file or sharded directory")
		root         = flag.String("root", "", "directory to index at startup (and to watch for changes)")
		shards       = flag.String("shards", "", "with -root, partition the index into N document shards; with -worker, the comma-separated list of shard numbers to serve (empty = all)")
		formats      = flag.Bool("formats", false, "strip HTML/WP markup while indexing")
		lazy         = flag.Bool("lazy", false, "with -index DIR, serve segment files lazily (mmap + on-demand decode) instead of loading them into memory; the catalog is read-only")
		watch        = flag.Duration("watch", 0, "poll -root for changes on this interval (0 = off)")
		cacheEntries = flag.Int("cache-entries", 1024, "query cache entry bound (negative disables the cache)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "query cache byte budget")
		blockCache   = flag.Int64("block-cache-bytes", 0, "posting-block cache byte budget for lazy catalogs (0 = built-in default)")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request query timeout ceiling")
		maxLimit     = flag.Int("max-limit", 1000, "cap on the per-request limit parameter")
		drain        = flag.Duration("drain", 5*time.Second, "in-flight request drain budget on shutdown")
		worker       = flag.Bool("worker", false, "serve the distributed-serving worker endpoints (/internal/*)")
		brokerMode   = flag.Bool("broker", false, "run as a scatter-gather broker over -workers instead of serving an index")
		workers      = flag.String("workers", "", "with -broker, the worker topology: comma-separated replica groups of |-separated URLs")
		hedge        = flag.Duration("hedge", 0, "with -broker, fixed hedged-request delay (0 = adaptive, p95 of recent group latencies)")
		healthEvery  = flag.Duration("health-interval", 2*time.Second, "with -broker, worker health poll interval")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	if *brokerMode {
		switch {
		case *workers == "":
			fmt.Fprintln(os.Stderr, "dsearchd: -broker needs -workers with at least one worker URL")
			os.Exit(2)
		case *indexPath != "" || *root != "" || *worker || *lazy:
			fmt.Fprintln(os.Stderr, "dsearchd: -broker serves no index of its own; it conflicts with -index, -root, -worker, and -lazy")
			os.Exit(2)
		}
		runBroker(*addr, *workers, *timeout, *hedge, *healthEvery, *drain, *maxLimit, *pprofOn)
		return
	}

	if *indexPath == "" && *root == "" {
		fmt.Fprintln(os.Stderr, "usage: dsearchd (-root DIR | -index PATH | -broker -workers URLS) [flags]")
		os.Exit(2)
	}
	if *watch > 0 && *root == "" {
		fmt.Fprintln(os.Stderr, "dsearchd: -watch needs -root to poll")
		os.Exit(2)
	}
	shardCount, shardSubset, err := parseShardsFlag(*shards, *worker)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsearchd: %v\n", err)
		os.Exit(2)
	}
	if len(shardSubset) > 0 {
		// A shard subset only makes sense against a saved, hash-routed
		// directory; it forces the lazy per-segment open path.
		switch {
		case *indexPath == "":
			fmt.Fprintln(os.Stderr, "dsearchd: -worker -shards needs -index DIR (a sharded index directory)")
			os.Exit(2)
		case *root != "":
			fmt.Fprintln(os.Stderr, "dsearchd: a shard-subset worker serves a read-only directory; it conflicts with -root")
			os.Exit(2)
		}
	}
	if *lazy {
		// A lazy catalog is read-only: it cannot absorb incremental
		// updates, so every way of asking for them is a flag conflict.
		switch {
		case *indexPath == "":
			fmt.Fprintln(os.Stderr, "dsearchd: -lazy needs -index DIR (a sharded index directory)")
			os.Exit(2)
		case *root != "":
			fmt.Fprintln(os.Stderr, "dsearchd: -lazy serves a read-only catalog; it cannot watch or update -root")
			os.Exit(2)
		}
	}

	opts := desksearch.Options{
		Formats:         *formats,
		Shards:          shardCount,
		Lazy:            *lazy,
		BlockCacheBytes: *blockCache,
	}
	var cat *desksearch.Catalog
	start := time.Now()
	switch {
	case len(shardSubset) > 0:
		cat, err = desksearch.OpenDirShards(*indexPath, shardSubset, opts)
	case *indexPath != "":
		cat, err = loadIndex(*indexPath, opts)
	default:
		cat, err = desksearch.IndexDir(*root, opts)
	}
	if err != nil {
		log.Fatalf("dsearchd: %v", err)
	}
	mode := "heap"
	if cat.Lazy() {
		mode = "lazy"
	}
	st := cat.Stats()
	log.Printf("catalog ready in %s (%s): %d files, %d terms, %d postings, %d partition(s)",
		time.Since(start).Round(time.Millisecond), mode, st.Files, st.Terms, st.Postings, cat.Indices())
	if *worker && len(shardSubset) > 0 {
		log.Printf("worker serving shards %v of %d", cat.PartitionIDs(), cat.TotalShards())
	}

	cfg := server.Config{
		Catalog:      cat,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheBytes,
		Timeout:      *timeout,
		MaxLimit:     *maxLimit,
		Logf:         log.Printf,
		Worker:       *worker,
	}
	if *root != "" {
		dir := *root
		cfg.Update = func() (desksearch.UpdateStats, error) { return cat.UpdateDir(dir) }
		cfg.Rebuild = func() (*desksearch.Catalog, error) { return desksearch.IndexDir(dir, opts) }
	}
	srv := server.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watch > 0 {
		log.Printf("watching %s every %s", *root, *watch)
		go srv.Watch(ctx, *watch)
	}
	serveHTTP(ctx, *addr, maybePprof(srv.Handler(), *pprofOn), *drain)
}

// runBroker brings up the scatter-gather front end and blocks until
// shutdown.
func runBroker(addr, workers string, timeout, hedge, healthEvery, drain time.Duration, maxLimit int, pprofOn bool) {
	groups := parseWorkerGroups(workers)
	b, err := broker.New(broker.Config{
		Groups:     groups,
		Timeout:    timeout,
		MaxLimit:   maxLimit,
		HedgeAfter: hedge,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatalf("dsearchd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	topoCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	err = b.CheckTopology(topoCtx)
	cancel()
	if err != nil {
		log.Fatalf("dsearchd: %v", err)
	}
	log.Printf("broker topology verified: %d group(s)", len(groups))
	go b.Watch(ctx, healthEvery)
	serveHTTP(ctx, addr, maybePprof(b.Handler(), pprofOn), drain)
}

// maybePprof wraps h with the net/http/pprof routes under /debug/pprof/
// when enabled. The profiling endpoints are mounted on an explicit outer
// mux, never the DefaultServeMux, and stay opt-in: they expose stack
// traces and heap contents, which do not belong on an always-on
// production surface.
func maybePprof(h http.Handler, on bool) http.Handler {
	if !on {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// serveHTTP serves h on addr until ctx is cancelled (SIGINT/SIGTERM),
// then shuts down gracefully: the listener closes immediately, in-flight
// requests get up to drain to finish, and stragglers are cut off.
func serveHTTP(ctx context.Context, addr string, h http.Handler, drain time.Duration) {
	httpSrv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on http://%s", addr)

	select {
	case err := <-errc:
		log.Fatalf("dsearchd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining up to %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("dsearchd: drain budget exceeded; closing remaining connections")
			httpSrv.Close()
		} else {
			log.Printf("dsearchd: shutdown: %v", err)
		}
	}
}

// parseShardsFlag resolves the two readings of -shards: a shard count for
// builds ("4"), or — in worker mode — the comma-separated list of global
// shard numbers to serve ("0,2").
func parseShardsFlag(v string, worker bool) (count int, subset []int, err error) {
	if v == "" {
		return 0, nil, nil
	}
	if worker {
		for _, f := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 0 {
				return 0, nil, fmt.Errorf("invalid -shards list %q (want comma-separated shard numbers)", v)
			}
			subset = append(subset, n)
		}
		return 0, subset, nil
	}
	count, err = strconv.Atoi(v)
	if err != nil || count < 0 {
		return 0, nil, fmt.Errorf("invalid -shards %q (want a shard count)", v)
	}
	return count, nil, nil
}

// parseWorkerGroups splits the -workers topology: groups by comma,
// replicas within a group by pipe.
func parseWorkerGroups(v string) [][]string {
	var groups [][]string
	for _, g := range strings.Split(v, ",") {
		var replicas []string
		for _, r := range strings.Split(g, "|") {
			if r = strings.TrimSpace(r); r != "" {
				replicas = append(replicas, r)
			}
		}
		if len(replicas) > 0 {
			groups = append(groups, replicas)
		}
	}
	return groups
}

// loadIndex reads a catalog from path: a sharded index directory when path
// is a directory, a single index file otherwise. The build options ride
// along so incremental updates re-extract consistently; with Options.Lazy
// a directory is opened in place rather than materialized.
func loadIndex(path string, opts desksearch.Options) (*desksearch.Catalog, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return desksearch.LoadDir(path, opts)
	}
	if opts.Lazy {
		return nil, fmt.Errorf("-lazy needs a sharded index directory, and %s is a file", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desksearch.Load(f, opts)
}
