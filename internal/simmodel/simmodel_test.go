package simmodel

import (
	"math"
	"sync"
	"testing"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
)

// paperStats is the full-shape corpus metadata, computed once (it is pure
// metadata — cheap, but not free).
var (
	paperStatsOnce sync.Once
	paperStatsVal  corpus.Stats
)

func paperStats() corpus.Stats {
	paperStatsOnce.Do(func() { paperStatsVal = corpus.Describe(corpus.PaperSpec()) })
	return paperStatsVal
}

func mustSim(t *testing.T, p platform.Profile, cfg core.Config, opt Options) RunResult {
	t.Helper()
	res, err := Simulate(p, paperStats(), cfg, opt)
	if err != nil {
		t.Fatalf("%s %s: %v", p.Name, cfg.Tuple(), err)
	}
	return res
}

func TestStageTimesMatchPaperTable1(t *testing.T) {
	for _, p := range platform.All() {
		f, r, re, ins := StageTimes(p, paperStats())
		within := func(got, want, tol float64, what string) {
			if math.Abs(got-want) > tol {
				t.Errorf("%s %s: %.2f, want %.2f", p.Name, what, got, want)
			}
		}
		within(f, p.TFilename, 0.05, "filename")
		within(r, p.TRead, 0.5, "read")
		within(re, p.TReadExtract, 0.5, "read+extract")
		within(ins, p.TInsert, 0.05, "insert")
	}
}

func TestSequentialBaselineMatchesPaper(t *testing.T) {
	for _, p := range platform.All() {
		seq, err := SequentialBaseline(p, paperStats(), Options{Batch: 32})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq-p.PaperSequential)/p.PaperSequential > 0.02 {
			t.Errorf("%s: sequential %.1f, paper %.1f", p.Name, seq, p.PaperSequential)
		}
	}
}

func TestDeterministicSameSeed(t *testing.T) {
	p := platform.Manycore32()
	cfg := core.Config{Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 4, Joiners: 2}
	a := mustSim(t, p, cfg, Options{Batch: 16, Jitter: 0.02, Seed: 7})
	b := mustSim(t, p, cfg, Options{Batch: 16, Jitter: 0.02, Seed: 7})
	if a.Exec != b.Exec || a.Events != b.Events {
		t.Errorf("same seed diverged: %.6f/%d vs %.6f/%d", a.Exec, a.Events, b.Exec, b.Events)
	}
	c := mustSim(t, p, cfg, Options{Batch: 16, Jitter: 0.02, Seed: 8})
	if a.Exec == c.Exec {
		t.Error("different seeds produced identical jittered runs")
	}
}

func TestJitterIsSmall(t *testing.T) {
	p := platform.QuadCore()
	cfg := core.Config{Implementation: core.SharedIndex, Extractors: 3, Updaters: 1}
	base := mustSim(t, p, cfg, Options{Batch: 16}).Exec
	for seed := int64(1); seed <= 5; seed++ {
		jit := mustSim(t, p, cfg, Options{Batch: 16, Jitter: 0.01, Seed: seed}).Exec
		if math.Abs(jit-base)/base > 0.05 {
			t.Errorf("seed %d: jittered run %.2f vs base %.2f", seed, jit, base)
		}
	}
}

func TestBatchSizeInsensitivity(t *testing.T) {
	// Model results must not depend materially on the fidelity knob.
	p := platform.Xeon8()
	cfg := core.Config{Implementation: core.ReplicatedSearch, Extractors: 6, Updaters: 2}
	coarse := mustSim(t, p, cfg, Options{Batch: 64}).Exec
	fine := mustSim(t, p, cfg, Options{Batch: 4}).Exec
	if math.Abs(coarse-fine)/fine > 0.05 {
		t.Errorf("batch 64 → %.2f, batch 4 → %.2f (>5%% apart)", coarse, fine)
	}
}

// TestTable2Shape: on the 4-core machine all three implementations are
// equivalent (within a few percent) and reach ≈4.7× over the paper's
// sequential baseline.
func TestTable2Shape(t *testing.T) {
	p := platform.QuadCore()
	opt := Options{Batch: 16}
	seq, _ := SequentialBaseline(p, paperStats(), opt)
	e1 := mustSim(t, p, core.Config{Implementation: core.SharedIndex, Extractors: 3, Updaters: 1}, opt).Exec
	e2 := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 3, Updaters: 2, Joiners: 1}, opt).Exec
	e3 := mustSim(t, p, core.Config{Implementation: core.ReplicatedSearch, Extractors: 3, Updaters: 2}, opt).Exec

	for _, tc := range []struct {
		name        string
		exec, paper float64
	}{
		{"Impl1", e1, 46.7}, {"Impl2", e2, 46.9}, {"Impl3", e3, 46.4},
	} {
		if math.Abs(tc.exec-tc.paper)/tc.paper > 0.15 {
			t.Errorf("4-core %s: %.1fs, paper %.1fs", tc.name, tc.exec, tc.paper)
		}
	}
	// Near-equivalence: max/min within 10%.
	lo := math.Min(e1, math.Min(e2, e3))
	hi := math.Max(e1, math.Max(e2, e3))
	if hi/lo > 1.10 {
		t.Errorf("4-core implementations should be equivalent: %.1f/%.1f/%.1f", e1, e2, e3)
	}
	if sp := seq / e3; sp < 4.0 || sp > 5.5 {
		t.Errorf("4-core speed-up %.2f, paper ≈4.7", sp)
	}
}

// TestTable3Shape: on the 8-core machine the disk floor caps speed-ups near
// 2 and the ordering is Impl1 slowest, Impl3 fastest.
func TestTable3Shape(t *testing.T) {
	p := platform.Xeon8()
	opt := Options{Batch: 16}
	seq, _ := SequentialBaseline(p, paperStats(), opt)
	e1 := mustSim(t, p, core.Config{Implementation: core.SharedIndex, Extractors: 3, Updaters: 2}, opt).Exec
	e2 := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 6, Updaters: 2, Joiners: 1}, opt).Exec
	e3 := mustSim(t, p, core.Config{Implementation: core.ReplicatedSearch, Extractors: 6, Updaters: 2}, opt).Exec

	if !(e1 > e2 && e2 > e3) {
		t.Errorf("8-core ordering broken: I1=%.1f I2=%.1f I3=%.1f (want I1>I2>I3)", e1, e2, e3)
	}
	for _, tc := range []struct {
		name        string
		exec, paper float64
	}{
		{"Impl1", e1, 59.5}, {"Impl2", e2, 57.7}, {"Impl3", e3, 49.5},
	} {
		if math.Abs(tc.exec-tc.paper)/tc.paper > 0.15 {
			t.Errorf("8-core %s: %.1fs, paper %.1fs", tc.name, tc.exec, tc.paper)
		}
	}
	if sp := seq / e3; sp < 1.8 || sp > 2.4 {
		t.Errorf("8-core best speed-up %.2f, paper 2.12", sp)
	}
}

// TestTable4Shape: on the 32-core machine the gaps widen — Impl1 ≈1.96×,
// Impl2 ≈2.47×, Impl3 ≈3.5×.
func TestTable4Shape(t *testing.T) {
	p := platform.Manycore32()
	opt := Options{Batch: 16}
	seq, _ := SequentialBaseline(p, paperStats(), opt)
	e1 := mustSim(t, p, core.Config{Implementation: core.SharedIndex, Extractors: 8, Updaters: 4}, opt).Exec
	e2 := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 4, Joiners: 1}, opt).Exec
	e3 := mustSim(t, p, core.Config{Implementation: core.ReplicatedSearch, Extractors: 9, Updaters: 4}, opt).Exec

	if !(e1 > e2 && e2 > e3) {
		t.Errorf("32-core ordering broken: I1=%.1f I2=%.1f I3=%.1f", e1, e2, e3)
	}
	s1, s2, s3 := seq/e1, seq/e2, seq/e3
	check := func(name string, got, want float64) {
		if math.Abs(got-want)/want > 0.20 {
			t.Errorf("32-core %s speed-up %.2f, paper %.2f", name, got, want)
		}
	}
	check("Impl1", s1, 1.96)
	check("Impl2", s2, 2.47)
	check("Impl3", s3, 3.50)
	// The headline factor: Impl3 beats Impl1 by ≈1.8×.
	if ratio := e1 / e3; ratio < 1.4 || ratio > 2.2 {
		t.Errorf("Impl1/Impl3 exec ratio %.2f, paper ≈1.79", ratio)
	}
}

// TestSharedIndexLockBound: on the 32-core machine Implementation 1 cannot
// be fixed by more threads — the serialized shared-index updates are the
// bottleneck.
func TestSharedIndexLockBound(t *testing.T) {
	p := platform.Manycore32()
	opt := Options{Batch: 16}
	small := mustSim(t, p, core.Config{Implementation: core.SharedIndex, Extractors: 8, Updaters: 4}, opt).Exec
	big := mustSim(t, p, core.Config{Implementation: core.SharedIndex, Extractors: 16, Updaters: 8}, opt).Exec
	if big < small*0.95 {
		t.Errorf("doubling threads 'fixed' the lock bottleneck: %.1f → %.1f", small, big)
	}
}

// TestDiskFloorOn8Core: no configuration of Implementation 3 on the 8-core
// machine beats the sequential disk time — the paper's I/O-bound finding.
func TestDiskFloorOn8Core(t *testing.T) {
	p := platform.Xeon8()
	c := p.UnitCosts(paperStats())
	floor := c.DiskSeqSeconds // depth-1 disk: no parallel speedup of I/O
	for _, x := range []int{2, 6, 12} {
		exec := mustSim(t, p, core.Config{Implementation: core.ReplicatedSearch, Extractors: x, Updaters: 2}, Options{Batch: 16}).Exec
		if exec < floor {
			t.Errorf("x=%d: exec %.1f beat the %.1f disk floor", x, exec, floor)
		}
	}
}

func TestJoinCostScalesWithReplicas(t *testing.T) {
	p := platform.Manycore32()
	opt := Options{Batch: 16}
	j2 := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 2, Joiners: 1}, opt)
	j8 := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 8, Joiners: 1}, opt)
	if j2.Join <= 0 || j8.Join <= 0 {
		t.Fatalf("join not timed: %v %v", j2.Join, j8.Join)
	}
	// More replicas → more merge passes over the postings.
	if j8.Join <= j2.Join {
		t.Errorf("8-replica join %.2fs not slower than 2-replica %.2fs", j8.Join, j2.Join)
	}
}

func TestParallelJoinFasterThanSingle(t *testing.T) {
	p := platform.Manycore32()
	opt := Options{Batch: 16}
	z1 := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 8, Joiners: 1}, opt)
	z4 := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 8, Joiners: 4}, opt)
	if z4.Join >= z1.Join {
		t.Errorf("parallel join (%.2fs) not faster than single joiner (%.2fs)", z4.Join, z1.Join)
	}
}

func TestReplicatedSearchSkipsJoin(t *testing.T) {
	p := platform.QuadCore()
	res := mustSim(t, p, core.Config{Implementation: core.ReplicatedSearch, Extractors: 4, Updaters: 2}, Options{Batch: 16})
	if res.Join != 0 {
		t.Errorf("Implementation 3 joined: %.2fs", res.Join)
	}
}

func TestPhaseTimesSumToExec(t *testing.T) {
	p := platform.Xeon8()
	res := mustSim(t, p, core.Config{Implementation: core.ReplicatedJoin, Extractors: 4, Updaters: 2, Joiners: 1}, Options{Batch: 16})
	sum := res.FilenameGen + res.ExtractUpdate + res.Join
	if math.Abs(sum-res.Exec)/res.Exec > 0.01 {
		t.Errorf("phases %.2f+%.2f+%.2f = %.2f ≠ exec %.2f",
			res.FilenameGen, res.ExtractUpdate, res.Join, sum, res.Exec)
	}
	if res.CoreBusy <= 0 || res.DiskBusy <= 0 || res.Events == 0 {
		t.Errorf("resource accounting empty: %+v", res)
	}
}

// TestResourceConservation: busy-seconds can never exceed capacity ×
// elapsed time, for any platform, implementation, and thread tuple.
func TestResourceConservation(t *testing.T) {
	cs := paperStats()
	for _, p := range platform.All() {
		for _, cfg := range []core.Config{
			{Implementation: core.Sequential},
			{Implementation: core.SharedIndex, Extractors: p.Cores, Updaters: 4},
			{Implementation: core.ReplicatedJoin, Extractors: 2 * p.Cores, Updaters: 8, Joiners: 4},
			{Implementation: core.ReplicatedSearch, Extractors: 3, Updaters: 2},
		} {
			res, err := Simulate(p, cs, cfg, Options{Batch: 32})
			if err != nil {
				t.Fatal(err)
			}
			if res.CoreBusy > res.Exec*float64(p.Cores)*1.0001 {
				t.Errorf("%s %s %s: core busy %.1f > %.1f possible",
					p.Name, cfg.Implementation, cfg.Tuple(), res.CoreBusy, res.Exec*float64(p.Cores))
			}
			if res.DiskBusy > res.Exec*float64(p.DiskDepth)*1.0001 {
				t.Errorf("%s %s %s: disk busy %.1f > %.1f possible",
					p.Name, cfg.Implementation, cfg.Tuple(), res.DiskBusy, res.Exec*float64(p.DiskDepth))
			}
			// Total work is conserved: the disk must serve at least the
			// sequential disk service time regardless of configuration.
			c := p.UnitCosts(cs)
			if res.DiskBusy < c.DiskSeqSeconds*0.99 {
				t.Errorf("%s %s: disk busy %.1f < sequential service %.1f",
					p.Name, cfg.Tuple(), res.DiskBusy, c.DiskSeqSeconds)
			}
		}
	}
}

// TestMoreExtractorsNeverLoseWorkConservation: whatever the thread count,
// the simulated run must take at least the critical-path lower bound
// (total CPU work / cores) and at most the sequential time.
func TestExecBounds(t *testing.T) {
	cs := paperStats()
	p := platform.QuadCore()
	seqRes, err := Simulate(p, cs, core.Config{Implementation: core.Sequential}, Options{Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x <= 8; x++ {
		res, err := Simulate(p, cs, core.Config{
			Implementation: core.ReplicatedSearch, Extractors: x, Updaters: 2,
		}, Options{Batch: 32})
		if err != nil {
			t.Fatal(err)
		}
		// Lower bound: even perfect parallelism cannot beat total base CPU
		// work spread over all cores (contention only adds to it).
		c := p.UnitCosts(cs)
		baseCPU := (c.ReadCPUPerByte+c.ExtractCPUPerByte)*float64(cs.TotalBytes) +
			c.InsertPerUnique*float64(cs.TotalUnique)
		lower := baseCPU / float64(p.Cores)
		if res.Exec < lower {
			t.Errorf("x=%d: exec %.1f beats CPU lower bound %.1f", x, res.Exec, lower)
		}
		// Upper bound: parallel never slower than 1.2× sequential here.
		if res.Exec > seqRes.Exec*1.2 {
			t.Errorf("x=%d: exec %.1f much slower than sequential %.1f", x, res.Exec, seqRes.Exec)
		}
	}
}

func TestSimulateRejectsBadInputs(t *testing.T) {
	good := core.Config{Implementation: core.SharedIndex, Extractors: 2}
	if _, err := Simulate(platform.Profile{}, paperStats(), good, Options{}); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := Simulate(platform.QuadCore(), corpus.Stats{}, good, Options{}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Simulate(platform.QuadCore(), paperStats(), core.Config{Implementation: core.Implementation(9)}, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBufferBackpressure(t *testing.T) {
	// A tiny buffer with one slow updater must stretch the run: the
	// extractors block on the full buffer.
	p := platform.Manycore32()
	fast := mustSim(t, p, core.Config{Implementation: core.SharedIndex, Extractors: 8, Updaters: 4, Buffer: 64}, Options{Batch: 16})
	tight := mustSim(t, p, core.Config{Implementation: core.SharedIndex, Extractors: 8, Updaters: 1, Buffer: 1}, Options{Batch: 16})
	if tight.Exec < fast.Exec {
		t.Errorf("tight buffer run (%.1f) beat roomy run (%.1f)", tight.Exec, fast.Exec)
	}
}

func BenchmarkSimulate32Core(b *testing.B) {
	cs := corpus.Describe(corpus.PaperSpec())
	p := platform.Manycore32()
	cfg := core.Config{Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 4, Joiners: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p, cs, cfg, Options{Batch: 16}); err != nil {
			b.Fatal(err)
		}
	}
}
