// Command corpusgen materializes the synthetic benchmark corpus — the
// stand-in for the paper's 51,000-file / 869 MB extracted-text benchmark —
// to a directory, or just describes it.
//
// Usage:
//
//	corpusgen -out DIR [-scale F] [-seed N] [-html F] [-wp F]
//	corpusgen -describe [-scale F]
package main

import (
	"flag"
	"fmt"
	"os"

	"desksearch/internal/corpus"
	"desksearch/internal/vfs"
)

func main() {
	var (
		out      = flag.String("out", "", "directory to write the corpus into")
		describe = flag.Bool("describe", false, "print corpus statistics without writing files")
		scale    = flag.Float64("scale", 1.0/64, "scale factor relative to the paper's 869 MB benchmark")
		seed     = flag.Int64("seed", 0, "generation seed (0 = the spec default)")
		html     = flag.Float64("html", 0, "fraction of files written as HTML")
		wp       = flag.Float64("wp", 0, "fraction of files written as WP markup")
	)
	flag.Parse()
	if *out == "" && !*describe {
		fmt.Fprintln(os.Stderr, "usage: corpusgen (-out DIR | -describe) [-scale F]")
		os.Exit(2)
	}

	spec := corpus.PaperSpec().Scale(*scale)
	if *seed != 0 {
		spec.Seed = *seed
	}
	spec.HTMLFraction = *html
	spec.WPFraction = *wp

	if *describe {
		report(corpus.Describe(spec))
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	stats, err := corpus.Generate(spec, vfs.NewOSFS(*out))
	if err != nil {
		fatal(err)
	}
	report(stats)
	fmt.Printf("written to %s\n", *out)
}

func report(stats corpus.Stats) {
	fmt.Printf("files:           %d (%d large)\n", len(stats.Files), stats.Spec.LargeFiles)
	fmt.Printf("total bytes:     %.1f MB\n", float64(stats.TotalBytes)/(1<<20))
	fmt.Printf("term occurrences %d\n", stats.TotalTerms)
	fmt.Printf("postings:        %d\n", stats.TotalUnique)
	fmt.Printf("vocabulary est.: %d distinct terms\n", stats.VocabEstimate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
