// Package walk implements Stage 1 of the index generator: filename
// generation. It traverses the directory hierarchy from a root and produces
// the complete list of files to index.
//
// The paper measured this stage at 2–5 % of total runtime and concluded
// that parallelizing it was unnecessary; the sequential List is therefore
// the pipeline's default. A concurrent walker is provided for the ablation
// experiment (and because it is the natural baseline a parallelization
// effort would reach for first).
package walk

import (
	"path"
	"sort"
	"sync"

	"desksearch/internal/vfs"
)

// FileRef names one file to be indexed, with the size used by size-aware
// work distribution strategies and the modification stamp used by
// incremental change detection (internal/delta).
type FileRef struct {
	Path    string
	Size    int64
	ModTime int64
}

// List traverses fsys from root ("." for the whole filesystem) and returns
// every file beneath it, depth-first in sorted directory order. The
// deterministic order makes FileIDs stable across runs, which the paper's
// round-robin distribution (and our tests) relies on.
func List(fsys vfs.FS, root string) ([]FileRef, error) {
	var out []FileRef
	err := walkDir(fsys, root, &out)
	return out, err
}

func walkDir(fsys vfs.FS, dir string, out *[]FileRef) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := path.Join(dir, e.Name)
		if e.IsDir {
			if err := walkDir(fsys, child, out); err != nil {
				return err
			}
			continue
		}
		*out = append(*out, FileRef{Path: child, Size: e.Size, ModTime: e.ModTime})
	}
	return nil
}

// ListParallel traverses with up to workers concurrent directory readers.
// Directory trees are unbalanced, so work is distributed through a shared
// frontier; the result is sorted afterwards to restore the deterministic
// order List guarantees.
//
// The paper found this not worth doing for index generation (Stage 1 is
// 2–5 % of runtime and the synchronization has real cost); it exists to
// let the benchmarks demonstrate exactly that.
func ListParallel(fsys vfs.FS, root string, workers int) ([]FileRef, error) {
	if workers < 1 {
		workers = 1
	}
	var (
		mu       sync.Mutex
		out      []FileRef
		firstErr error
		pending  sync.WaitGroup
	)
	dirs := make(chan string, 1024)
	// pending counts unprocessed directories; when it reaches zero the
	// channel can close.
	pending.Add(1)
	dirs <- root

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dir := range dirs {
				entries, err := fsys.ReadDir(dir)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					pending.Done()
					continue
				}
				var files []FileRef
				for _, e := range entries {
					child := path.Join(dir, e.Name)
					if e.IsDir {
						pending.Add(1)
						// Non-blocking feed with synchronous fallback:
						// if the frontier channel is full, recurse inline
						// rather than deadlocking all workers on send.
						select {
						case dirs <- child:
						default:
							walkInline(fsys, child, &mu, &out, &firstErr, &pending)
						}
						continue
					}
					files = append(files, FileRef{Path: child, Size: e.Size, ModTime: e.ModTime})
				}
				if len(files) > 0 {
					mu.Lock()
					out = append(out, files...)
					mu.Unlock()
				}
				pending.Done()
			}
		}()
	}
	pending.Wait()
	close(dirs)
	wg.Wait()

	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// walkInline processes a directory synchronously when the frontier is full.
// pending has already been incremented for dir.
func walkInline(fsys vfs.FS, dir string, mu *sync.Mutex, out *[]FileRef, firstErr *error, pending *sync.WaitGroup) {
	defer pending.Done()
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		mu.Lock()
		if *firstErr == nil {
			*firstErr = err
		}
		mu.Unlock()
		return
	}
	var files []FileRef
	for _, e := range entries {
		child := path.Join(dir, e.Name)
		if e.IsDir {
			pending.Add(1)
			walkInline(fsys, child, mu, out, firstErr, pending)
			continue
		}
		files = append(files, FileRef{Path: child, Size: e.Size})
	}
	if len(files) > 0 {
		mu.Lock()
		*out = append(*out, files...)
		mu.Unlock()
	}
}

// TotalBytes sums the sizes of the listed files.
func TotalBytes(files []FileRef) int64 {
	var total int64
	for _, f := range files {
		total += f.Size
	}
	return total
}

// IsSorted reports whether files are in ascending path order — the order
// ListParallel guarantees, and List produces on corpus-shaped trees (a
// file can sort between a directory and its children only with exotic
// names such as "foo.txt" next to "foo/").
func IsSorted(files []FileRef) bool {
	return sort.SliceIsSorted(files, func(i, j int) bool { return files[i].Path < files[j].Path })
}
