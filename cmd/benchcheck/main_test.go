package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"desksearch/internal/loadgen"
)

func TestParseLoadSummary(t *testing.T) {
	sum := loadgen.Summary{
		Queries:     500,
		Errors:      2,
		AchievedQPS: 1234.5,
		Classes: map[string]loadgen.ClassSummary{
			"and":  {Queries: 300, Errors: 0, P50MS: 0.5, P95MS: 2.5, P99MS: 4, MaxMS: 9},
			"bm25": {Queries: 200, Errors: 2, P50MS: 1, P95MS: 8, P99MS: 12, MaxMS: 30},
		},
	}
	path := filepath.Join(t.TempDir(), "summary.json")
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	measured, err := parseLoadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	// p95 milliseconds become ns/op, so a latency baseline rides the
	// existing tolerance machinery.
	if got, ok := lookup(measured, "Loadgen/and", "ns/op"); !ok || got != 2.5e6 {
		t.Fatalf("Loadgen/and ns/op = %v (%v), want 2.5e6", got, ok)
	}
	if got, ok := lookup(measured, "Loadgen/bm25", "errors"); !ok || got != 2 {
		t.Fatalf("Loadgen/bm25 errors = %v (%v), want 2", got, ok)
	}
	if got, ok := lookup(measured, "Loadgen/overall", "qps"); !ok || got != 1234.5 {
		t.Fatalf("Loadgen/overall qps = %v (%v), want 1234.5", got, ok)
	}

	// An empty summary is a refused gate, not a silently passing one.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"queries":0,"classes":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseLoadSummary(empty); err == nil {
		t.Fatal("empty load summary accepted")
	}
}
