package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"desksearch/internal/postings"
)

// frameVersion extracts the u16 version of a DSIX frame's header.
func frameVersion(t *testing.T, data []byte) uint16 {
	t.Helper()
	if len(data) < 6 {
		t.Fatalf("frame too short: %d bytes", len(data))
	}
	return binary.LittleEndian.Uint16(data[4:6])
}

// buildTokenIndex is buildSampleIndex plus a deterministic token length per
// file — the fresh-build shape whose provenance selects the v9 frame.
func buildTokenIndex(rng *rand.Rand, nFiles, vocab int) (*Index, *FileTable) {
	ix, ft := buildSampleIndex(rng, nFiles, vocab)
	for id := 0; id < ft.Len(); id++ {
		ft.SetTokens(postings.FileID(id), uint32(10+id*3))
	}
	return ix, ft
}

// TestDocLengthSaveLoadRoundTrip: a fresh build persists as a v9 frame
// whose doc-length section reloads every file's token length, and the
// reloaded catalog re-saves byte-identically (the fixed-point every DSIX
// version maintains).
func TestDocLengthSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ix, ft := buildTokenIndex(rng, 40, 25)
	ft.Tombstone(postings.FileID(7)) // tombstoned slots keep their length

	var buf bytes.Buffer
	if err := Save(&buf, ix, ft); err != nil {
		t.Fatal(err)
	}
	if v := frameVersion(t, buf.Bytes()); v != DocLengthVersion {
		t.Fatalf("frame version = %d, want %d", v, DocLengthVersion)
	}

	loadedIx, loadedFt, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loadedIx.Equal(ix) {
		t.Error("loaded index differs")
	}
	if !loadedFt.HasTokens() {
		t.Fatal("loaded table lost HasTokens")
	}
	for id := 0; id < ft.Len(); id++ {
		fid := postings.FileID(id)
		if loadedFt.Tokens(fid) != ft.Tokens(fid) {
			t.Errorf("file %d: tokens = %d, want %d", id, loadedFt.Tokens(fid), ft.Tokens(fid))
		}
	}
	if loadedFt.LiveTokens() != ft.LiveTokens() {
		t.Errorf("LiveTokens = %d, want %d", loadedFt.LiveTokens(), ft.LiveTokens())
	}

	// Re-saving keeps the v9 format (term-section byte order is
	// hash-map-dependent, so only the frame version is pinned here).
	var again bytes.Buffer
	if err := Save(&again, loadedIx, loadedFt); err != nil {
		t.Fatal(err)
	}
	if v := frameVersion(t, again.Bytes()); v != DocLengthVersion {
		t.Errorf("re-saved frame version = %d, want %d", v, DocLengthVersion)
	}
}

// TestDocLengthPositionalFlag: positional posting lists ride the v9 frame's
// flags byte, and the loaded index remembers positional-ness from it.
func TestDocLengthPositionalFlag(t *testing.T) {
	ft := NewFileTable()
	ix := New(0)
	id := ft.Add("a.txt", 10, 1)
	ft.SetTokens(id, 3)
	ix.AddBlockPositional(id, []string{"cat", "dog"}, [][]uint32{{0, 2}, {1}})

	var buf bytes.Buffer
	if err := Save(&buf, ix, ft); err != nil {
		t.Fatal(err)
	}
	if v := frameVersion(t, buf.Bytes()); v != DocLengthVersion {
		t.Fatalf("frame version = %d, want %d", v, DocLengthVersion)
	}
	loadedIx, loadedFt, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loadedIx.Positional() {
		t.Error("positional-ness lost through the v9 flags byte")
	}
	if !loadedFt.HasTokens() || loadedFt.Tokens(id) != 3 {
		t.Errorf("tokens = %d (HasTokens %v), want 3", loadedFt.Tokens(id), loadedFt.HasTokens())
	}
}

// TestLegacyResaveStaysLegacy: an index loaded from a pre-v9 file has no
// token lengths, so it must re-save in its original v6 form with identical
// semantics — the acceptance guarantee that existing catalogs never
// silently migrate formats.
func TestLegacyResaveStaysLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ix, ft := buildSampleIndex(rng, 30, 20)
	ft.hasTokens = false // pre-v9 provenance

	var legacy bytes.Buffer
	if err := Save(&legacy, ix, ft); err != nil {
		t.Fatal(err)
	}
	if v := frameVersion(t, legacy.Bytes()); v != codecVersion {
		t.Fatalf("legacy frame version = %d, want %d", v, codecVersion)
	}

	loadedIx, loadedFt, err := Load(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loadedFt.HasTokens() {
		t.Fatal("pre-v9 file loaded with HasTokens set")
	}
	var resaved bytes.Buffer
	if err := Save(&resaved, loadedIx, loadedFt); err != nil {
		t.Fatal(err)
	}
	if v := frameVersion(t, resaved.Bytes()); v != codecVersion {
		t.Errorf("pre-v9 catalog re-saved as version %d, want %d", v, codecVersion)
	}
	if !loadedIx.Equal(ix) {
		t.Error("loaded legacy index differs")
	}
}

// docLengthFrame hand-writes a v9 full-index frame with a chosen flags byte
// and doc-length count, so validation paths the honest writer can never
// produce (the checksum passes; only the section contents are wrong) are
// still exercised.
func docLengthFrame(t *testing.T, flags byte, lengthCount int) []byte {
	t.Helper()
	ft := NewFileTable()
	ft.Add("a.txt", 1, 1)
	ft.Add("b.txt", 2, 2)
	var buf bytes.Buffer
	err := EncodeFrame(&buf, DocLengthVersion, func(bw *bufio.Writer) error {
		if err := bw.WriteByte(kindFullIndex); err != nil {
			return err
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := WriteFileTable(bw, ft); err != nil {
			return err
		}
		if err := WriteUvarint(bw, uint64(lengthCount)); err != nil {
			return err
		}
		for i := 0; i < lengthCount; i++ {
			if err := WriteUvarint(bw, 5); err != nil {
				return err
			}
		}
		// Empty term section.
		return WriteUvarint(bw, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDocLengthCountMismatchRejected(t *testing.T) {
	data := docLengthFrame(t, 0, 1) // 2 files, 1 length
	if _, _, err := Load(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "doc-length count") {
		t.Errorf("mismatched doc-length section: err = %v", err)
	}
}

func TestDocLengthUnknownFlagsRejected(t *testing.T) {
	data := docLengthFrame(t, 0x4, 2)
	if _, _, err := Load(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "flags") {
		t.Errorf("unknown flags: err = %v", err)
	}
}

// TestDocLengthCorruptionRejected: bit flips anywhere in a v9 frame —
// doc-length section included — fail the checksum or the parser.
func TestDocLengthCorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix, ft := buildTokenIndex(rng, 15, 10)
	var buf bytes.Buffer
	if err := Save(&buf, ix, ft); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	for _, pos := range []int{0, 4, 6, 7, len(pristine) / 3, len(pristine) / 2, len(pristine) - 1} {
		corrupt := append([]byte(nil), pristine...)
		corrupt[pos] ^= 0x40
		if _, _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

// TestFileTableTokenBookkeeping pins the in-memory half: fresh tables carry
// lengths, Add preallocates a slot, and LiveTokens skips tombstones.
func TestFileTableTokenBookkeeping(t *testing.T) {
	ft := NewFileTable()
	if !ft.HasTokens() {
		t.Fatal("fresh table must carry token lengths")
	}
	var ids []postings.FileID
	for i := 0; i < 4; i++ {
		ids = append(ids, ft.Add(fmt.Sprintf("f%d", i), 1, 1))
	}
	for i, id := range ids {
		ft.SetTokens(id, uint32(10*(i+1)))
	}
	if got := ft.LiveTokens(); got != 100 {
		t.Errorf("LiveTokens = %d, want 100", got)
	}
	ft.Tombstone(ids[3])
	if got := ft.LiveTokens(); got != 60 {
		t.Errorf("LiveTokens after tombstone = %d, want 60", got)
	}
	if ft.Tokens(ids[1]) != 20 {
		t.Errorf("Tokens = %d, want 20", ft.Tokens(ids[1]))
	}
}
