package desksearch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"desksearch/internal/core"
	"desksearch/internal/delta"
	"desksearch/internal/distribute"
	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/search"
	"desksearch/internal/shard"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

// Implementation selects one of the paper's parallel designs.
type Implementation int

const (
	// Auto picks ReplicatedSearch with a machine-sized thread
	// configuration — the paper's overall winner.
	Auto Implementation = iota
	// Sequential runs single-threaded (the paper's baseline).
	Sequential
	// SharedIndex is the paper's Implementation 1.
	SharedIndex
	// ReplicatedJoin is the paper's Implementation 2.
	ReplicatedJoin
	// ReplicatedSearch is the paper's Implementation 3.
	ReplicatedSearch
)

// Options configure index construction. The zero value auto-configures for
// the host machine.
type Options struct {
	// Implementation selects the parallel design.
	Implementation Implementation
	// Extractors, Updaters, and Joiners are the paper's (x, y, z) thread
	// tuple. All zero means auto-size from the CPU count.
	Extractors, Updaters, Joiners int
	// Formats enables document-format extraction (HTML, WP markup) before
	// tokenization.
	Formats bool
	// Stopwords, when non-empty, excludes the listed words from the index.
	Stopwords []string
	// MinTermLen drops terms shorter than this many bytes (0 = keep all).
	MinTermLen int
	// Shards, when positive, partitions the catalog into that many
	// document shards, searched with parallel fan-out and saved with
	// SaveDir as a manifest plus one segment file per shard.
	Shards int
	// Positions records each term occurrence's token position in the
	// index, enabling quoted phrase queries ("annual report") at the cost
	// of a larger index; positional catalogs persist in the DSIX v8 format
	// (docs/FORMAT.md). Phrase queries against a catalog built without
	// positions fail with a clear error instead of guessing adjacency.
	Positions bool
	// Lazy, honored only by LoadDir, opens the directory lazily (see
	// OpenDir) instead of materializing it: queries read posting data
	// straight off the segment files, so startup is proportional to the
	// term dictionaries, not the postings, and the catalog is read-only.
	// Ignored by the indexing entry points.
	Lazy bool
	// BlockCacheBytes bounds the shared posting-block cache of lazily
	// opened catalogs (OpenDir, OpenDirShards, LoadDir with Lazy): decoded
	// posting blocks of hot terms are kept up to this many estimated
	// bytes, shared across all partitions. Non-positive falls back to the
	// package default (segment.DefaultCacheBytes, 64 MiB). Ignored by
	// eager loads and the indexing entry points.
	BlockCacheBytes int64
}

// validate rejects option values that would misbehave downstream, with a
// descriptive error naming the field.
func (o Options) validate() error {
	for _, f := range []struct {
		name  string
		value int
	}{
		{"Extractors", o.Extractors},
		{"Updaters", o.Updaters},
		{"Joiners", o.Joiners},
		{"MinTermLen", o.MinTermLen},
		{"Shards", o.Shards},
	} {
		if f.value < 0 {
			return fmt.Errorf("desksearch: Options.%s must be non-negative, got %d", f.name, f.value)
		}
	}
	return nil
}

func (o Options) coreConfig() (core.Config, error) {
	if err := o.validate(); err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Extractors:   o.Extractors,
		Updaters:     o.Updaters,
		Joiners:      o.Joiners,
		Shards:       o.Shards,
		Distribution: distribute.RoundRobin,
	}
	tok := tokenize.Default
	if o.MinTermLen > 0 {
		tok.MinLen = o.MinTermLen
	}
	if len(o.Stopwords) > 0 {
		tok.Stopwords = tokenize.NewStopSet(o.Stopwords)
	}
	cfg.Extract = extract.Options{Tokenize: tok, Formats: o.Formats, Positions: o.Positions}

	switch o.Implementation {
	case Auto:
		cfg.Implementation = core.ReplicatedSearch
		if cfg.Extractors == 0 {
			auto := core.Default(core.ReplicatedSearch, runtime.NumCPU())
			cfg.Extractors, cfg.Updaters = auto.Extractors, auto.Updaters
			if cfg.Updaters < 2 {
				cfg.Updaters = 2 // replication needs at least two replicas
			}
		}
	case Sequential:
		cfg.Implementation = core.Sequential
	case SharedIndex:
		cfg.Implementation = core.SharedIndex
	case ReplicatedJoin:
		cfg.Implementation = core.ReplicatedJoin
	case ReplicatedSearch:
		cfg.Implementation = core.ReplicatedSearch
	default:
		return core.Config{}, fmt.Errorf("desksearch: unknown implementation %d", int(o.Implementation))
	}
	if cfg.Implementation != core.Sequential && cfg.Extractors == 0 {
		auto := core.Default(cfg.Implementation, runtime.NumCPU())
		cfg.Extractors, cfg.Updaters = auto.Extractors, auto.Updaters
	}
	return cfg, nil
}

// Sentinel evaluation errors, re-exported so callers can errors.Is
// against them without reaching into internal packages. Query and
// DocFreqs return them wrapped in a *QueryError carrying the matching
// stable code.
var (
	// ErrNoPositions reports a phrase query or snippet request against a
	// catalog built without Options.Positions.
	ErrNoPositions = search.ErrNoPositions
	// ErrNoDocLengths reports a BM25-ranked request against a catalog
	// whose file table carries no document lengths (pre-v9 DSIX).
	ErrNoDocLengths = search.ErrNoDocLengths
	// ErrPrefixTooBroad reports a prefix operator that expanded to more
	// dictionary terms than the request's MaxPrefixTerms cap.
	ErrPrefixTooBroad = search.ErrPrefixTooBroad
)

// QueryErrorCode is the stable, wire-safe name of a query failure class.
// Codes are part of the API: transports map them to statuses and clients
// may switch on them, so existing values never change meaning.
type QueryErrorCode string

const (
	// CodeNoPositions: phrase or snippet request, position-free catalog.
	CodeNoPositions QueryErrorCode = "no_positions"
	// CodeNoDocLengths: BM25 request, catalog without document lengths.
	CodeNoDocLengths QueryErrorCode = "no_doc_lengths"
	// CodePrefixTooBroad: prefix operator over the expansion cap.
	CodePrefixTooBroad QueryErrorCode = "prefix_too_broad"
)

// QueryError is a typed, deterministic query rejection: the same request
// against the same catalog state fails the same way on every replica.
// Err is the underlying sentinel (ErrNoPositions, ErrNoDocLengths,
// ErrPrefixTooBroad), so errors.Is sees through the wrapper; Code is the
// stable name transports key status mappings on — internal/server owns
// the one code→HTTP table.
type QueryError struct {
	Code QueryErrorCode
	Err  error
}

func (e *QueryError) Error() string { return e.Err.Error() }

// Unwrap exposes the sentinel to errors.Is/errors.As.
func (e *QueryError) Unwrap() error { return e.Err }

// wrapQueryError attaches the stable code to a recognized deterministic
// evaluation error; anything else (context cancellation, validation)
// passes through untouched.
func wrapQueryError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, search.ErrNoPositions):
		return &QueryError{Code: CodeNoPositions, Err: err}
	case errors.Is(err, search.ErrNoDocLengths):
		return &QueryError{Code: CodeNoDocLengths, Err: err}
	case errors.Is(err, search.ErrPrefixTooBroad):
		return &QueryError{Code: CodePrefixTooBroad, Err: err}
	default:
		return err
	}
}

// Ranking selects how Query scores hits.
type Ranking int

const (
	// RankCount scores a hit by how many distinct positive query terms
	// the file contains (coordination ranking, the Search default).
	RankCount Ranking = iota
	// RankTF scores a hit by the summed occurrence counts of the positive
	// query terms in the file, so a file mentioning a term many times
	// outranks one mentioning it once.
	RankTF
	// RankBM25 scores a hit by Okapi BM25 relevance: rarer terms weigh
	// more, repeated occurrences saturate, and long documents are
	// normalized by their token length. Requires a catalog that records
	// document lengths — every fresh build does; catalogs loaded from
	// pre-v9 DSIX files fail with a clear error (rebuild to enable).
	// Sharding never changes BM25 scores: statistics aggregate across
	// partitions first, so a sharded catalog scores bit-identically to
	// the same corpus unsharded.
	RankBM25
)

// String returns the ranking's wire name — the value the HTTP rank=
// parameter and the dsearch -rank flag accept.
func (r Ranking) String() string {
	switch r {
	case RankCount:
		return "count"
	case RankTF:
		return "tf"
	case RankBM25:
		return "bm25"
	default:
		return fmt.Sprintf("Ranking(%d)", int(r))
	}
}

// ParseRanking resolves a ranking's wire name ("count", "tf", "bm25",
// case-insensitively) to its Ranking value. The pre-v3 integer forms ("0",
// "1") still parse, so clients built against the numeric wire format keep
// working; anything else is an error naming the accepted values.
func ParseRanking(s string) (Ranking, error) {
	switch strings.ToLower(s) {
	case "count", "coordination":
		return RankCount, nil
	case "tf":
		return RankTF, nil
	case "bm25":
		return RankBM25, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		switch r := Ranking(n); r {
		case RankCount, RankTF, RankBM25:
			return r, nil
		}
	}
	return 0, fmt.Errorf("desksearch: unknown ranking %q (want count, tf, or bm25)", s)
}

// Expr is a parsed query expression, reusable across Query calls.
type Expr struct{ q *search.Query }

// ParseQuery parses a boolean query ("cat dog", "cat OR dog",
// "report -draft", parentheses allowed, quoted phrases like
// `"annual report" -draft` — see the README's query-syntax reference) into
// a reusable expression. Evaluating a multi-word phrase requires a catalog
// built with Options.Positions.
func ParseQuery(text string) (*Expr, error) {
	q, err := search.Parse(text)
	if err != nil {
		return nil, err
	}
	return &Expr{q: q}, nil
}

// String renders the expression in canonical form.
func (e *Expr) String() string { return e.q.String() }

// Query is a v2 search request: the query itself plus retrieval controls.
// The zero controls return every hit, coordination-ranked — exactly what
// the v1 Search returned.
type Query struct {
	// Text is the boolean query string, parsed with the same grammar as
	// Search. Ignored when Expr is set.
	Text string
	// Expr is an optional pre-parsed expression (ParseQuery), letting hot
	// paths skip re-parsing. Takes precedence over Text.
	Expr *Expr
	// Limit caps the returned hits; 0 means unlimited. With a limit, each
	// partition retains only its local top Limit+Offset hits in a bounded
	// heap instead of materializing and sorting its entire hit list.
	Limit int
	// Offset skips that many ranked hits before the returned page.
	Offset int
	// Ranking selects the scoring mode.
	Ranking Ranking
	// PathPrefix, when non-empty, restricts hits to paths starting with
	// it; filtered-out matches do not count toward Response.Total.
	PathPrefix string
	// Snippets asks for a per-hit context window (Hit.Snippet) built from
	// the catalog's positional index. Requires a catalog built with
	// Options.Positions (the same error phrase queries give otherwise) and
	// a positive Limit.
	Snippets bool
	// MaxPrefixTerms caps how many dictionary terms a single prefix
	// operator ("repor*") may expand to before the request fails with
	// ErrPrefixTooBroad (code prefix_too_broad); 0 applies the default of
	// 1024. The cap is per operator and per partition, bounds both
	// evaluation and DocFreqs, and is part of the Normalize cache key —
	// the same text under a different cap is a different request.
	MaxPrefixTerms int
	// GlobalDF, when non-nil with RankBM25, supplies the corpus-wide
	// document-frequency statistics to score with instead of aggregating
	// them from this catalog — the distributed-serving hook. A broker
	// fanning one query out over catalogs that each hold a subset of the
	// corpus gathers every catalog's DocFreqs, sums them with
	// DocFreqs.Add, and attaches the total here; each subset then scores
	// with exactly the statistics the whole corpus would have produced,
	// keeping BM25 scores bit-identical to a single-node evaluation. The
	// vector must come from DocFreqs on the same normalized query.
	// Ignored by the other rankings; not part of the Normalize cache key
	// (transports attach it per request, after normalization).
	GlobalDF *DocFreqs
}

// DocFreqs is a query's corpus-global document-frequency vector — the
// statistics half of BM25 scoring as plain, transportable data. See
// Catalog.DocFreqs and Query.GlobalDF; the field semantics are documented
// on the internal search type this aliases.
type DocFreqs = search.DocFreqs

// Normalize parses the query (when Expr is unset) and returns a copy with
// Expr populated plus the canonical cache key identifying the request:
// the parsed expression rendered in canonical form — so "cat  dog",
// "cat AND dog", and "(cat) dog" collapse to one key — joined with the
// retrieval controls that change the response. Two requests with equal
// keys evaluated at the same catalog generation produce identical
// responses, which is what makes the key safe to cache on; invalid
// requests (unparseable text, negative limit or offset, unknown ranking)
// are rejected here, before they can occupy a cache slot.
func (q Query) Normalize() (Query, string, error) {
	if q.Limit < 0 {
		return q, "", fmt.Errorf("desksearch: negative limit %d", q.Limit)
	}
	if q.Offset < 0 {
		return q, "", fmt.Errorf("desksearch: negative offset %d", q.Offset)
	}
	if q.MaxPrefixTerms < 0 {
		return q, "", fmt.Errorf("desksearch: negative max prefix terms %d", q.MaxPrefixTerms)
	}
	switch q.Ranking {
	case RankCount, RankTF, RankBM25:
	default:
		return q, "", fmt.Errorf("desksearch: unknown ranking mode %d", int(q.Ranking))
	}
	if q.Expr == nil {
		expr, err := ParseQuery(q.Text)
		if err != nil {
			return q, "", err
		}
		q.Expr = expr
	}
	// PathPrefix is the one free-form field (an HTTP ?prefix= parameter can
	// carry any byte, the \x00 field separator included), so it is
	// length-prefixed AND kept last: the key stays injective in its fields
	// no matter what the prefix contains, and no future field appended
	// after the fixed-form ones can be impersonated by a crafted prefix.
	// The ranking is keyed by wire name, not integer, so the key survives
	// any renumbering of the enum.
	key := fmt.Sprintf("%s\x00limit=%d\x00offset=%d\x00rank=%s\x00snippets=%t\x00maxprefix=%d\x00prefix=%d:%s",
		q.Expr.String(), q.Limit, q.Offset, q.Ranking, q.Snippets, q.MaxPrefixTerms, len(q.PathPrefix), q.PathPrefix)
	return q, key, nil
}

// Hit is one search hit of the Query API.
type Hit struct {
	// Path is the matched file, relative to the indexed root.
	Path string
	// File is the hit's catalog-internal document ID — the ascending
	// half of the tie-break rule (see Score). It is stable for the life
	// of a saved catalog and shared by every worker serving the same
	// directory, which is what lets a distributed merge reproduce the
	// single-node order exactly.
	File uint32
	// Score ranks the hit under the request's Ranking mode. Count and TF
	// scores are small integers represented exactly; BM25 scores are real
	// relevance weights. Ties break by indexing order, deterministically:
	// hits are ordered by descending Score under exact float64 comparison,
	// then ascending file identity, and scores are never NaN.
	Score float64
	// Terms lists the positive query terms the file contains, in query
	// order, followed by any matched prefix operators in their canonical
	// "repor*" form (the first 64 are tracked).
	Terms []string
	// Snippet is the hit's context window; non-nil only when the request
	// set Snippets and the file had an anchorable match.
	Snippet *Snippet
}

// Span is a half-open byte range [Start, End) into a Snippet's Text.
type Span struct {
	Start int
	End   int
}

// Snippet is a hit's context window, reconstructed from the positional
// index: the indexed (normalized) tokens around the hit's first matched
// position, joined by single spaces. Highlights lists the byte spans of
// Text covered by tokens that matched the query, in ascending order. The
// window comes from the index alone — the original file is never re-read,
// so snippets work on catalogs loaded far from their corpus.
type Snippet struct {
	Text       string
	Highlights []Span
}

// Suggestion is one autocomplete candidate: an indexed term and the number
// of files containing it.
type Suggestion struct {
	Term  string
	Files int
}

// PartitionTiming is one partition's share of a query's work.
type PartitionTiming struct {
	// Partition is the partition's position in the catalog.
	Partition int
	// Matched counts the partition's matches (after path filtering,
	// before top-k truncation); partition counts sum to Response.Total.
	Matched int
	// Duration is the partition's evaluation wall time.
	Duration time.Duration
}

// Response is the result of a v2 query.
type Response struct {
	// Hits is the requested page, ordered by descending score then by
	// indexing order.
	Hits []Hit
	// Total is the number of matches across the whole catalog — the count
	// pagination pages through, independent of Limit/Offset.
	Total int
	// Partitions reports per-partition match counts and timings.
	Partitions []PartitionTiming
}

// Stats summarizes a catalog.
type Stats struct {
	// Files is the number of files indexed.
	Files int
	// Terms is the exact number of distinct terms across all partitions
	// (a term present in several partitions counts once).
	Terms int
	// Postings is the number of (term, file) pairs.
	Postings int64
	// Skipped is the number of unreadable files that were skipped.
	Skipped int
}

// Catalog is a built index (or replica set) ready to answer queries.
//
// A catalog is safe for concurrent Search calls, and Search is safe
// against a concurrent Update/Apply: incremental updates commit under the
// engine's maintenance lock, so a query sees the catalog either before or
// after a changeset, never mid-apply.
type Catalog struct {
	result *core.Result
	engine *search.Engine
	// lazy, when non-nil, is the open segment-reader set behind a catalog
	// opened with OpenDir (or LoadDir with Options.Lazy). Such a catalog
	// is read-only: the mutating surface (Save, SaveDir, Apply, Update)
	// returns ErrReadOnly, and Close must be called to release the
	// mappings.
	lazy *shard.LazySet
	// updateMu serializes Update/Apply against each other; the engine's
	// read-write lock already serializes them against queries.
	updateMu sync.Mutex
}

// ErrReadOnly is returned by the mutating methods of a lazily opened
// catalog. Re-index, or load the directory eagerly with LoadDir, to get a
// writable catalog.
var ErrReadOnly = errors.New("desksearch: lazily opened catalog is read-only (use LoadDir to load it eagerly)")

// IndexDir indexes every file under dir on the host filesystem.
func IndexDir(dir string, opt Options) (*Catalog, error) {
	return IndexFS(vfs.NewOSFS(dir), ".", opt)
}

// IndexFS indexes every file under root in the given filesystem. It is the
// hook for in-memory corpora (internal/vfs.MemFS) used by the examples and
// benchmarks.
func IndexFS(fsys vfs.FS, root string, opt Options) (*Catalog, error) {
	cfg, err := opt.coreConfig()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(fsys, root, cfg)
	if err != nil {
		return nil, err
	}
	return newCatalog(res), nil
}

func newCatalog(res *core.Result) *Catalog {
	return &Catalog{
		result: res,
		engine: search.NewEngine(res.Files, index.Partitions(res.Indexes())...),
	}
}

// partitionsLocked returns the catalog's query partitions. Callers must
// hold the engine's read or write lock (View, Maintain, or a Swap
// callback), which is what keeps result/lazy coherent.
func (c *Catalog) partitionsLocked() []index.Partition {
	if c.lazy != nil {
		return c.lazy.Partitions()
	}
	return index.Partitions(c.result.Indexes())
}

// Query evaluates a v2 search request. The query fans out with one
// goroutine per partition; each keeps only its local top Limit+Offset
// hits in a bounded min-heap, and the per-partition ranked lists are
// merged just until the page is full — on multi-partition catalogs a
// Limit-10 query does a fraction of the work a full Search does. ctx
// cancellation is honored between evaluation steps: a canceled context
// aborts in-flight partitions and returns ctx.Err().
func (c *Catalog) Query(ctx context.Context, q Query) (*Response, error) {
	expr := q.Expr
	if expr == nil {
		parsed, err := ParseQuery(q.Text)
		if err != nil {
			return nil, err
		}
		expr = parsed
	}
	var ranking search.Ranking
	switch q.Ranking {
	case RankCount:
		ranking = search.RankCoordination
	case RankTF:
		ranking = search.RankTF
	case RankBM25:
		ranking = search.RankBM25
	default:
		return nil, fmt.Errorf("desksearch: unknown ranking mode %d", int(q.Ranking))
	}
	resp, err := c.engine.Query(ctx, search.Request{
		Query:          expr.q,
		Limit:          q.Limit,
		Offset:         q.Offset,
		Ranking:        ranking,
		PathPrefix:     q.PathPrefix,
		Snippets:       q.Snippets,
		MaxPrefixTerms: q.MaxPrefixTerms,
		GlobalDF:       q.GlobalDF,
	})
	if err != nil {
		return nil, wrapQueryError(err)
	}
	out := &Response{
		Hits:       make([]Hit, len(resp.Hits)),
		Total:      resp.Total,
		Partitions: make([]PartitionTiming, len(resp.Partitions)),
	}
	for i, h := range resp.Hits {
		hit := Hit{Path: h.Path, File: uint32(h.File), Score: h.Score, Terms: h.Terms}
		if h.Snippet != nil {
			spans := make([]Span, len(h.Snippet.Highlights))
			for j, s := range h.Snippet.Highlights {
				spans[j] = Span{Start: s.Start, End: s.End}
			}
			hit.Snippet = &Snippet{Text: h.Snippet.Text, Highlights: spans}
		}
		out.Hits[i] = hit
	}
	for i, p := range resp.Partitions {
		out.Partitions[i] = PartitionTiming{Partition: p.Partition, Matched: p.Matched, Duration: p.Duration}
	}
	return out, nil
}

// DocFreqs computes the catalog's local document-frequency vector for q:
// the live-document and token counts plus, per positive query term and
// per scoring prefix operator, the number of this catalog's documents
// matching it. It is phase one of the distributed BM25 protocol: a broker
// gathers every worker catalog's vector, sums them with DocFreqs.Add
// (worker catalogs are document-disjoint, so frequencies add exactly),
// and passes the total back through Query.GlobalDF — after which every
// worker scores with corpus-global statistics and the merged result is
// bit-identical to a single-node evaluation. Term frequencies are
// answered from the term dictionaries (no posting blocks are decoded);
// prefix operators are expanded under the same cap as evaluation, so an
// over-broad prefix fails here first.
func (c *Catalog) DocFreqs(ctx context.Context, q Query) (*DocFreqs, error) {
	q, _, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	df, err := c.engine.DocFreqs(ctx, q.Expr.q, q.MaxPrefixTerms)
	if err != nil {
		return nil, wrapQueryError(err)
	}
	return df, nil
}

// Suggest returns up to n indexed terms starting with prefix — the
// autocomplete surface behind the server's /suggest endpoint — ranked by
// descending document frequency, ties broken alphabetically. The prefix
// normalizes like query text (a trailing '*' is tolerated, so "Repor*"
// suggests like "repor") and must yield a single term. n <= 0 applies a
// default of 10. Suggestions reflect the catalog's committed state: the
// call takes the same read lock queries do.
func (c *Catalog) Suggest(ctx context.Context, prefix string, n int) ([]Suggestion, error) {
	sugs, err := c.engine.Suggest(ctx, prefix, n)
	if err != nil {
		return nil, err
	}
	out := make([]Suggestion, len(sugs))
	for i, s := range sugs {
		out[i] = Suggestion{Term: s.Term, Files: s.Files}
	}
	return out, nil
}

// Stats summarizes the catalog. Files counts live files only: a file
// deleted by an incremental update keeps its FileID slot as a tombstone
// but no longer counts. Terms is exact for every catalog shape: distinct
// terms are counted once across partitions with the same single-pass
// counter TopTerms aggregates with, not summed per partition.
func (c *Catalog) Stats() Stats {
	var out Stats
	c.engine.View(func() {
		var postings int64
		if c.lazy != nil {
			postings = c.lazy.Stats().Postings
		} else {
			postings = c.result.Stats().Postings
		}
		out = Stats{
			Files:    c.result.Files.LiveCount(),
			Terms:    index.DistinctTermsAcross(c.partitionsLocked()),
			Postings: postings,
			Skipped:  len(c.result.SkippedFiles),
		}
	})
	return out
}

// Indices reports how many indices answer queries (1, or the replica or
// shard count for partitioned catalogs).
func (c *Catalog) Indices() int { return c.engine.Indices() }

// Generation returns the catalog's mutation generation: a counter that
// advances every time an update commits (Apply, Update, UpdateDir) or the
// contents are replaced (Swap). Queries observing the same generation ran
// against the same index state, so (generation, normalized query) is a
// safe result-cache key — a cache entry tagged with an older generation
// can never masquerade as current.
func (c *Catalog) Generation() uint64 { return c.engine.Generation() }

// Swap atomically replaces c's contents with other's — the full-reload
// counterpart of the incremental Update, used by long-running servers to
// rebuild a catalog in the background and cut queries over in one step.
// In-flight queries finish against the old contents; queries arriving
// after Swap returns see only the new ones, at a new generation. other
// must not be used afterwards: c owns its contents.
func (c *Catalog) Swap(other *Catalog) {
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	res, lz := other.result, other.lazy
	parts := index.Partitions(res.Indexes())
	if lz != nil {
		parts = lz.Partitions()
	}
	var old *shard.LazySet
	c.engine.Swap(res.Files, parts, func() {
		old = c.lazy
		c.result = res
		c.lazy = lz
	})
	// The swap drained in-flight queries (it holds the engine's write
	// lock), so a displaced lazy set has no remaining readers and its
	// mappings can go. Lists already handed out stay valid — decoding
	// copies out of the mapping.
	if old != nil {
		old.Close()
	}
}

// Close releases the file mappings and handles of a lazily opened catalog
// after draining in-flight queries; the catalog must not be queried
// afterwards. On eagerly loaded catalogs it is a no-op, so callers can
// defer it unconditionally.
func (c *Catalog) Close() error {
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	if c.lazy == nil { // writes to c.lazy all hold updateMu
		return nil
	}
	var err error
	c.engine.Maintain(func() {
		err = c.lazy.Close()
		c.lazy = nil
	})
	return err
}

// Lazy reports whether the catalog was opened lazily (posting data served
// from segment files on demand) rather than materialized on the heap.
func (c *Catalog) Lazy() bool {
	var lazy bool
	c.engine.View(func() { lazy = c.lazy != nil })
	return lazy
}

// PartitionBytes returns each partition's estimated resident heap bytes,
// in partition order: full posting storage for heap partitions, dictionary
// plus cached blocks for lazy ones. It is an estimate for observability
// (the server's /stats), not an accounting guarantee.
func (c *Catalog) PartitionBytes() []int64 {
	return c.engine.ResidentBytes()
}

// Shards reports how many document shards the catalog holds; 0 for
// unsharded catalogs. A lazily opened directory is always sharded — its
// segment count is the answer.
func (c *Catalog) Shards() int {
	var n int
	c.engine.View(func() {
		switch {
		case c.lazy != nil:
			n = c.lazy.Len()
		case c.result.Shards != nil:
			n = c.result.Shards.Len()
		}
	})
	return n
}

// PartitionIDs returns each query partition's global identity, in
// partition order: for a catalog opened over a shard subset
// (OpenDirShards) the directory-wide shard numbers, and the identity
// 0..Indices()-1 for every whole catalog. Response.Partitions indexes are
// local; this is the mapping a distributed worker applies before
// reporting per-partition statistics to its broker, so the broker's view
// names every shard consistently across workers.
func (c *Catalog) PartitionIDs() []int {
	var out []int
	c.engine.View(func() {
		if c.lazy != nil {
			out = append(out, c.lazy.ShardIDs()...)
			return
		}
		out = make([]int, c.engine.Indices())
		for i := range out {
			out[i] = i
		}
	})
	return out
}

// TotalShards returns the shard count of the directory behind the
// catalog, which for a subset catalog (OpenDirShards) exceeds Shards —
// the local count. Whole catalogs report their own shard count (0 when
// unsharded).
func (c *Catalog) TotalShards() int {
	var n int
	c.engine.View(func() {
		if c.lazy != nil {
			n = c.lazy.TotalShards()
		} else if c.result.Shards != nil {
			n = c.result.Shards.Len()
		}
	})
	return n
}

// BlockCache reports the posting-block cache of a lazily opened catalog:
// its byte budget and current estimated usage. ok is false for eager
// catalogs, which have no block cache.
func (c *Catalog) BlockCache() (budget, used int64, ok bool) {
	c.engine.View(func() {
		if c.lazy == nil {
			return
		}
		cache := c.lazy.Cache()
		budget, used, ok = cache.MaxBytes(), cache.Bytes(), true
	})
	return budget, used, ok
}

// Positional reports whether the catalog carries token positions — the
// capability phrase queries and snippets need. Workers surface it through
// /internal/meta so a broker can reject positional queries up front when
// any worker lacks positions.
func (c *Catalog) Positional() bool {
	var on bool
	c.engine.View(func() { on = c.result.Config.Extract.Positions })
	return on
}

// Timings returns the pipeline phase durations of the build, in seconds:
// filename generation, extraction+update, join, shard-set construction,
// and total.
func (c *Catalog) Timings() (filenameGen, extractUpdate, join, shard, total float64) {
	var t core.Timings
	c.engine.View(func() {
		t = c.result.Timings
	})
	return t.FilenameGen.Seconds(), t.ExtractUpdate.Seconds(), t.Join.Seconds(),
		t.Shard.Seconds(), t.Total.Seconds()
}

// TermCount is a term with the number of files containing it.
type TermCount struct {
	Term  string
	Files int
}

// TopTerms returns the catalog's n most frequent terms by document count.
// For partitioned catalogs (replicas or shards) the per-partition counts
// are summed directly — partitions are document-disjoint, so document
// frequencies add — without cloning or joining any index: the cost is one
// pass over each partition's term map plus a counter per distinct term,
// not a materialized copy of the whole catalog.
func (c *Catalog) TopTerms(n int) []TermCount {
	if n <= 0 {
		return nil
	}
	var out []TermCount
	c.engine.View(func() {
		top := index.TopTermsAcross(c.partitionsLocked(), n)
		out = make([]TermCount, len(top))
		for i, tc := range top {
			out[i] = TermCount{Term: tc.Term, Files: tc.Files}
		}
	})
	return out
}

// Save writes the catalog to w in the single-file binary index format.
// Replica and shard sets are joined first — on copies, so the live catalog
// stays queryable — and a saved catalog always reloads as a single index.
// Use SaveDir to persist the partitions instead.
func (c *Catalog) Save(w io.Writer) error {
	var err error
	c.engine.View(func() {
		if c.lazy != nil {
			err = ErrReadOnly
			return
		}
		ix := c.result.Index
		if ix == nil {
			parts := c.result.Indexes()
			clones := make([]*index.Index, len(parts))
			for i, p := range parts {
				clones[i] = p.Clone()
			}
			ix = index.JoinAll(clones)
		}
		err = index.Save(w, ix, c.result.Files)
	})
	return err
}

// Load reads a catalog previously written by Save. Loaded catalogs accept
// incremental updates; build options are not persisted, so a catalog built
// with non-default extraction (Formats, Stopwords, MinTermLen) must be
// given the same Options again here or updates will re-extract changed
// files differently than the original build did.
func Load(r io.Reader, opt ...Options) (*Catalog, error) {
	cfg, err := loadedConfig(opt)
	if err != nil {
		return nil, err
	}
	ix, files, err := index.Load(r)
	if err != nil {
		return nil, err
	}
	// Positional-ness is persisted in the frame version (DSIX v8) and is
	// authoritative in both directions: a loaded positional catalog keeps
	// re-extracting positionally without the caller restating the option,
	// and Options.Positions cannot turn a non-positional catalog
	// positional — only re-extracted files would ever carry positions,
	// leaving the index half-positional. Rebuild to change it.
	cfg.Extract.Positions = ix.Positional()
	return newCatalog(&core.Result{
		Implementation: core.Sequential,
		Config:         cfg,
		Files:          files,
		Index:          ix,
	}), nil
}

// loadedConfig is the pipeline configuration assumed for catalogs loaded
// from disk, whose build options were not persisted: the caller's Options
// when given, defaults otherwise.
func loadedConfig(opts []Options) (core.Config, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	// coreConfig always bases extraction on tokenize.Default, so the zero
	// Options value yields the pipeline's default extraction.
	return o.coreConfig()
}

// SaveDir writes the catalog under dir in the sharded layout: a checksummed
// manifest plus one segment file per shard, written in parallel. Catalogs
// built without Options.Shards are saved with their existing partitions as
// shards — replicas are document-disjoint, and a single index becomes a
// one-segment layout — so any catalog can be saved this way.
func (c *Catalog) SaveDir(dir string) error {
	// updateMu keeps two saves from staging the same temporary files; the
	// engine's read lock keeps the indices stable while segments stream
	// out (updates commit under the write lock).
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	var err error
	c.engine.View(func() {
		if c.lazy != nil {
			err = ErrReadOnly
			return
		}
		set := c.result.Shards
		if set == nil {
			set = shard.FromReplicas(c.result.Files, c.result.Indexes())
		}
		err = shard.SaveDir(dir, set)
	})
	return err
}

// LoadDir reads a sharded catalog previously written by SaveDir, loading
// and verifying all segments in parallel. Queries fan out over the loaded
// shards. A loaded catalog remembers its directory: after an incremental
// Update, SaveDir back to it rewrites only the segments the update
// dirtied. Like Load, pass the build's Options if it used non-default
// extraction, so updates re-extract consistently.
func LoadDir(dir string, opt ...Options) (*Catalog, error) {
	if len(opt) > 0 && opt[0].Lazy {
		return OpenDir(dir, opt...)
	}
	cfg, err := loadedConfig(opt)
	if err != nil {
		return nil, err
	}
	set, err := shard.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	// Like Load: the segments' frame version decides positional-ness in
	// both directions (see Load), overriding Options.Positions.
	cfg.Extract.Positions = set.Positional()
	return newCatalog(&core.Result{
		Implementation: core.ReplicatedSearch,
		Config:         cfg,
		Files:          set.Files(),
		Shards:         set,
	}), nil
}

// OpenDir opens a sharded catalog directory lazily: only the manifest and
// each segment's term dictionary are read up front — never the posting
// data — so cold start is proportional to the vocabulary, not the corpus.
// Queries then page posting blocks in on demand (memory-mapped on linux,
// positioned reads elsewhere), verify them against their per-block
// checksums, and keep hot terms in a bounded cache shared across shards.
// Every query answers bit-identically to the same catalog loaded with
// LoadDir.
//
// The returned catalog is read-only — Save, SaveDir, Apply, and Update
// return ErrReadOnly — and holds open file mappings until Close (Swap to a
// replacement catalog also releases them, which is how dsearchd reloads).
// Directories whose segments predate the DSIX v10 lazy format cannot be
// served in place; OpenDir falls back to an eager LoadDir of them
// (Catalog.Lazy reports which mode resulted), and a re-save from any
// writable catalog upgrades the directory.
func OpenDir(dir string, opt ...Options) (*Catalog, error) {
	cfg, err := loadedConfig(opt)
	if err != nil {
		return nil, err
	}
	var cacheBytes int64
	if len(opt) > 0 {
		cacheBytes = opt[0].BlockCacheBytes
	}
	set, err := shard.OpenDir(dir, cacheBytes)
	if err != nil {
		if errors.Is(err, shard.ErrNotLazy) {
			var eager []Options
			if len(opt) > 0 {
				o := opt[0]
				o.Lazy = false
				eager = []Options{o}
			}
			return LoadDir(dir, eager...)
		}
		return nil, err
	}
	return lazyCatalog(cfg, set), nil
}

// OpenDirShards is OpenDir restricted to a subset of the directory's
// shards — the distributed worker's open path (dsearchd -worker
// -shards=0,2): only the named segments' dictionaries are read and
// mapped, so the worker's startup cost and memory footprint track its
// share of the corpus, not the whole directory. shardIDs lists global
// shard numbers; nil or empty opens every shard, identically to OpenDir.
//
// A true subset requires a hash-routed directory — any directory built
// with Options.Shards. Directories saved from pipeline replicas are not
// hash-routed and fail with a descriptive error (rebuild with a shard
// count), because without the routing the workers of one directory could
// not partition NOT-query responsibility among themselves. Unlike
// OpenDir, a pre-v10 directory is an error here, never an eager
// fallback: a worker that silently materialized every shard would defeat
// the deployment's point.
//
// The catalog answers queries exactly as the full directory would for
// its own documents: merged across a disjoint worker set (and, for BM25,
// scored via the Query.GlobalDF protocol), responses are bit-identical
// to a single-node catalog over the whole directory.
func OpenDirShards(dir string, shardIDs []int, opt ...Options) (*Catalog, error) {
	cfg, err := loadedConfig(opt)
	if err != nil {
		return nil, err
	}
	var cacheBytes int64
	if len(opt) > 0 {
		cacheBytes = opt[0].BlockCacheBytes
	}
	set, err := shard.OpenDirShards(dir, cacheBytes, shardIDs)
	if err != nil {
		return nil, err
	}
	return lazyCatalog(cfg, set), nil
}

// lazyCatalog wraps an open lazy set as a read-only catalog, installing
// the subset-aware NOT universes when the set holds only part of its
// directory.
func lazyCatalog(cfg core.Config, set *shard.LazySet) *Catalog {
	cfg.Extract.Positions = set.Positional()
	res := &core.Result{
		Implementation: core.ReplicatedSearch,
		Config:         cfg,
		Files:          set.Files(),
	}
	engine := search.NewEngine(set.Files(), set.Partitions()...)
	if set.Subset() {
		engine.SetUniverses(set.Universes)
	}
	return &Catalog{
		result: res,
		engine: engine,
		lazy:   set,
	}
}

// Changeset is a tree diff computed by Catalog.Diff and consumed by
// Catalog.Apply: the files added, modified, and deleted since the catalog
// last matched the tree.
type Changeset = delta.Changeset

// UpdateStats summarizes an applied incremental update.
type UpdateStats struct {
	// Added, Modified, and Deleted count the files in the changeset.
	Added, Modified, Deleted int
	// PostingsRemoved and PostingsAdded count the (term, file) pairs the
	// update dropped and inserted.
	PostingsRemoved, PostingsAdded int64
	// SkippedFiles counts changed files that could not be re-extracted;
	// like the batch pipeline, they stay registered without postings.
	SkippedFiles int
}

// Diff walks fsys from root and returns the changes since the catalog was
// built or last updated, without applying anything. Size and modification
// stamps decide whether a file changed; nothing is read or re-extracted.
func (c *Catalog) Diff(fsys vfs.FS, root string) (*Changeset, error) {
	var cs *Changeset
	var err error
	c.engine.View(func() {
		cs, err = delta.Diff(fsys, root, c.result.Files)
	})
	return cs, err
}

// Apply re-extracts the changeset's added and modified files in parallel
// and commits the changes to the catalog in place: deleted files are
// tombstoned and their postings dropped, modified files are re-indexed,
// and new files register fresh FileIDs, each term block routed to its
// owning partition by the same FNV FileID split sharding uses. Queries are
// excluded only during the in-memory commit, not during extraction.
func (c *Catalog) Apply(fsys vfs.FS, cs *Changeset) (UpdateStats, error) {
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	if c.lazy != nil {
		return UpdateStats{}, ErrReadOnly
	}
	return c.applyLocked(fsys, cs)
}

// Update diffs the catalog against the tree under root and applies the
// resulting changeset: Diff followed by Apply in one step. It returns what
// changed; an up-to-date catalog returns zero stats and does no work.
func (c *Catalog) Update(fsys vfs.FS, root string) (UpdateStats, error) {
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	if c.lazy != nil {
		return UpdateStats{}, ErrReadOnly
	}
	cs, err := c.Diff(fsys, root)
	if err != nil {
		return UpdateStats{}, err
	}
	return c.applyLocked(fsys, cs)
}

// UpdateDir is Update over a host directory, the incremental counterpart
// of IndexDir.
func (c *Catalog) UpdateDir(dir string) (UpdateStats, error) {
	return c.Update(vfs.NewOSFS(dir), ".")
}

func (c *Catalog) applyLocked(fsys vfs.FS, cs *Changeset) (UpdateStats, error) {
	if cs.Empty() {
		return UpdateStats{}, nil
	}
	plan := delta.Extract(fsys, cs, c.result.Config.Extract, c.updateWorkers())
	target := delta.Target{
		Files:      c.result.Files,
		Partitions: c.result.Indexes(),
	}
	if set := c.result.Shards; set != nil {
		target.OnDirty = set.MarkDirty
	}
	var st delta.Stats
	c.engine.Maintain(func() {
		st = plan.Commit(target)
	})
	return UpdateStats{
		Added:           st.Added,
		Modified:        st.Modified,
		Deleted:         st.Deleted,
		PostingsRemoved: st.PostingsRemoved,
		PostingsAdded:   st.PostingsAdded,
		SkippedFiles:    len(plan.Skipped),
	}, nil
}

// updateWorkers sizes the re-extraction pool: the build's extractor count
// when known, otherwise one per spare CPU.
func (c *Catalog) updateWorkers() int {
	if x := c.result.Config.Extractors; x > 0 {
		return x
	}
	x := runtime.NumCPU() - 1
	if x < 1 {
		x = 1
	}
	return x
}

// DirtySegments reports how many segment files the next SaveDir back to
// the catalog's directory would rewrite. Catalogs never persisted with
// SaveDir (or not sharded) count every partition as dirty.
func (c *Catalog) DirtySegments() int {
	var n int
	c.engine.View(func() {
		if set := c.result.Shards; set != nil {
			n = set.DirtyCount()
		} else {
			n = len(c.result.Indexes())
		}
	})
	return n
}
