package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"desksearch"
	"desksearch/internal/vfs"
)

// workerFixture saves a 3-shard positional corpus and serves the [0, 2]
// subset in worker mode.
func workerFixture(t *testing.T) (*fixture, string) {
	t.Helper()
	fs := vfs.NewMemFS()
	for name, content := range map[string]string{
		"docs/report.txt":  "quarterly report alpha beta report",
		"docs/draft.txt":   "draft report beta gamma",
		"docs/minutes.txt": "annual report alpha",
		"notes/todo.txt":   "alpha gamma delta",
		"notes/plan.txt":   "beta quarterly forecast",
		"notes/memo.txt":   "report forecast gamma",
	} {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	built, err := desksearch.IndexFS(fs, ".", desksearch.Options{Positions: true, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	cat, err := desksearch.OpenDirShards(dir, []int{0, 2}, desksearch.Options{BlockCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	srv := New(Config{Catalog: cat, Worker: true, CacheEntries: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &fixture{cat: cat, srv: srv, ts: ts}, dir
}

// TestWorkerEndpoints drives the three /internal routes of a subset
// worker directly: topology in meta, a df vector consistent with the
// catalog, and partial results with global partition IDs and exact score
// bits.
func TestWorkerEndpoints(t *testing.T) {
	fx, _ := workerFixture(t)

	var meta WorkerMeta
	mustGetJSON(t, fx.ts.URL+"/internal/meta", &meta)
	if fmt.Sprint(meta.Shards) != "[0 2]" || meta.TotalShards != 3 {
		t.Fatalf("meta topology = %v of %d, want [0 2] of 3", meta.Shards, meta.TotalShards)
	}
	if meta.Files != 6 {
		t.Fatalf("meta.Files = %d, want the directory-wide 6", meta.Files)
	}
	if !meta.Positional {
		t.Fatal("meta.Positional = false for a positional directory")
	}

	var df DFResponse
	mustGetJSON(t, fx.ts.URL+"/internal/df?q=report+forecast", &df)
	if df.Query != "(report AND forecast)" {
		t.Fatalf("df.Query = %q, want the canonical expression", df.Query)
	}
	if df.Docs != 6 {
		t.Fatalf("df.Docs = %d, want corpus-wide 6", df.Docs)
	}
	if len(df.Terms) != 2 {
		t.Fatalf("df.Terms = %v, want one count per positive term", df.Terms)
	}

	body, _ := json.Marshal(InternalSearchRequest{Query: "report", Rank: "bm25", Limit: 10})
	resp, err := http.Post(fx.ts.URL+"/internal/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/internal/search status %d", resp.StatusCode)
	}
	var out InternalSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Hits) == 0 {
		t.Fatal("worker found nothing for a common term")
	}
	for _, h := range out.Hits {
		if s := math.Float64frombits(h.ScoreBits); s <= 0 || math.IsNaN(s) {
			t.Fatalf("hit %s: bad score bits %x", h.Path, h.ScoreBits)
		}
	}
	for _, p := range out.Partitions {
		if p.Partition != 0 && p.Partition != 2 {
			t.Fatalf("partition stat uses local index %d, want global shard numbers 0/2", p.Partition)
		}
	}

	// The uncached evaluation fed the per-partition timing windows, and
	// /stats reports them by global shard number, alongside the worker
	// and block-cache blocks.
	var st StatsResponse
	mustGetJSON(t, fx.ts.URL+"/stats", &st)
	if st.Worker == nil || fmt.Sprint(st.Worker.Shards) != "[0 2]" || st.Worker.TotalShards != 3 {
		t.Fatalf("stats.Worker = %+v, want shards [0 2] of 3", st.Worker)
	}
	if st.BlockCache == nil || st.BlockCache.BudgetBytes != 1<<20 {
		t.Fatalf("stats.BlockCache = %+v, want the configured 1MiB budget", st.BlockCache)
	}
	if len(st.PartitionTimings) == 0 {
		t.Fatal("stats.PartitionTimings empty after an uncached query")
	}
	for _, pt := range st.PartitionTimings {
		if pt.Partition != 0 && pt.Partition != 2 {
			t.Fatalf("timing summary for partition %d, want global shard numbers 0/2", pt.Partition)
		}
		if pt.Queries == 0 || pt.MaxUS < pt.MinUS || pt.P95US < pt.MedianUS {
			t.Fatalf("inconsistent timing summary %+v", pt)
		}
	}
}

// TestWorkerSearchWithGlobalDF: scoring under broker-supplied statistics
// changes the BM25 idf inputs, and a mis-shaped vector is a 400.
func TestWorkerSearchWithGlobalDF(t *testing.T) {
	fx, _ := workerFixture(t)

	post := func(req InternalSearchRequest) (int, InternalSearchResponse) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(fx.ts.URL+"/internal/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out InternalSearchResponse
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	// A df vector matching the query shape is accepted; corpus-global
	// values equal to the local ones reproduce the local scores.
	status, _ := post(InternalSearchRequest{
		Query: "report", Rank: "bm25", Limit: 5,
		DF: &DFPayload{Docs: 6, Tokens: 24, Terms: []int{4}},
	})
	if status != http.StatusOK {
		t.Fatalf("well-shaped GlobalDF rejected: %d", status)
	}

	// Wrong arity for the query → deterministic client error.
	status, _ = post(InternalSearchRequest{
		Query: "report", Rank: "bm25", Limit: 5,
		DF: &DFPayload{Docs: 6, Tokens: 24, Terms: []int{4, 9}},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("mis-shaped GlobalDF = %d, want 400", status)
	}
}

// TestWorkerRoutesGated: without Config.Worker the internal surface does
// not exist.
func TestWorkerRoutesGated(t *testing.T) {
	fx := newFixture(t, Config{})
	resp, err := http.Get(fx.ts.URL + "/internal/meta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/internal/meta on a non-worker = %d, want 404", resp.StatusCode)
	}
}

// mustGetJSON fetches a URL, requires 200, and decodes the body.
func mustGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
