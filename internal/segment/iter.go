package segment

import (
	"encoding/binary"
	"fmt"
	"sort"

	"desksearch/internal/fnv"
	"desksearch/internal/postings"
)

// Iter streams one term's posting IDs straight off the raw block bytes,
// without materializing the list. SeekGE uses the block's skip table to
// jump within skipInterval postings of any target, which is what makes
// intersecting a rare term against a dense one sublinear in the dense
// list. The iterator reads the segment's storage directly, so it must not
// be used after the owning Reader is closed.
type Iter struct {
	enc   []byte // standard posting encoding (skip table stripped)
	skips []skipEntry
	count int

	idx   int    // postings consumed
	off   int    // next varint offset in enc
	prev  uint64 // last decoded ID
	valid bool
	err   error
}

type skipEntry struct {
	id  uint64 // ids[(k+1)*skipInterval], absolute
	off int    // offset in enc just past that ID's varint
	idx int    // its posting index
}

// Iter returns a streaming iterator over term's postings, or nil if the
// term is absent. The block's checksum and skip table are verified; the
// postings themselves are validated as they stream (Next fails and Err
// reports on corruption). No posting is decoded up front.
func (r *Reader) Iter(term string) (*Iter, error) {
	ord := r.find(term)
	if ord < 0 {
		return nil, nil
	}
	e := &r.entries[ord]
	blk, err := r.src.slice(r.blocksOff+e.off, e.blen)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: term %q: %w", r.path, e.term, err)
	}
	if got := fnv.Hash64Bytes(blk); got != e.sum {
		return nil, fmt.Errorf("segment: %s: term %q: block checksum mismatch: dictionary %#x, computed %#x",
			r.path, e.term, e.sum, got)
	}

	c := &cursor{b: blk}
	skipN := c.uvarint()
	if want := uint64(maxSkips(e.df)); skipN != want {
		return nil, fmt.Errorf("segment: %s: term %q: %d skip entries, want %d", r.path, e.term, skipN, want)
	}
	skips := make([]skipEntry, 0, skipN)
	var sid uint64
	var soff int
	for k := uint64(0); k < skipN; k++ {
		sid += c.uvarint()
		soff += int(c.uvarint())
		skips = append(skips, skipEntry{id: sid, off: soff, idx: int(k+1) * skipInterval})
	}
	if c.err != nil {
		return nil, fmt.Errorf("segment: %s: term %q: corrupt skip table: %w", r.path, e.term, c.err)
	}
	enc := blk[c.off:]
	count, n := binary.Uvarint(enc)
	if n <= 0 || count != uint64(e.df) {
		return nil, fmt.Errorf("segment: %s: term %q: block count disagrees with dictionary", r.path, e.term)
	}
	for _, s := range skips {
		if s.off <= n || s.off > len(enc) || s.idx >= int(count) {
			return nil, fmt.Errorf("segment: %s: term %q: skip entry out of range", r.path, e.term)
		}
	}
	return &Iter{enc: enc, skips: skips, count: int(count), off: n}, nil
}

// Next advances to the next posting, returning false at the end of the
// list or on corruption (check Err to tell the two apart).
func (it *Iter) Next() bool {
	if it.err != nil || it.idx >= it.count {
		it.valid = false
		return false
	}
	delta, n := binary.Uvarint(it.enc[it.off:])
	if n <= 0 {
		it.err = fmt.Errorf("segment: corrupt posting delta at index %d", it.idx)
		it.valid = false
		return false
	}
	if it.idx > 0 && delta == 0 {
		it.err = fmt.Errorf("segment: duplicate posting id at index %d", it.idx)
		it.valid = false
		return false
	}
	it.off += n
	if it.idx == 0 {
		it.prev = delta
	} else {
		it.prev += delta
	}
	if it.prev > 0xFFFF_FFFF {
		it.err = fmt.Errorf("segment: posting id %d overflows FileID", it.prev)
		it.valid = false
		return false
	}
	it.idx++
	it.valid = true
	return true
}

// SeekGE positions the iterator at the first posting with ID >= id —
// never moving backwards — and reports whether one exists.
func (it *Iter) SeekGE(id postings.FileID) bool {
	if it.err != nil {
		return false
	}
	if it.valid && it.prev >= uint64(id) {
		return true
	}
	// Jump to the last skip entry strictly below the target, if it is
	// ahead of the cursor; the target then lies within skipInterval
	// postings of the landing point.
	j := sort.Search(len(it.skips), func(k int) bool { return it.skips[k].id >= uint64(id) })
	if j > 0 && it.skips[j-1].idx+1 > it.idx {
		s := it.skips[j-1]
		it.prev, it.off, it.idx, it.valid = s.id, s.off, s.idx+1, true
	}
	for it.Next() {
		if it.prev >= uint64(id) {
			return true
		}
	}
	return false
}

// ID returns the current posting's file ID; valid only after a true
// Next/SeekGE.
func (it *Iter) ID() postings.FileID { return postings.FileID(it.prev) }

// Err returns the corruption that stopped iteration, if any.
func (it *Iter) Err() error { return it.err }
