package segment

import (
	"testing"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// edgeIndex builds posting lists with known shapes: a single-posting
// list, a two-posting list with a wide gap, and a dense skip-table-backed
// list (every third file of 3000, count 1+(f/3)%4) whose last ID is 2997.
func edgeIndex(t *testing.T) *index.Index {
	t.Helper()
	ix := index.New(4)
	for f := 0; f < 3000; f++ {
		id := postings.FileID(f)
		switch f {
		case 7:
			ix.AddBlock(id, []string{"single"}, []uint32{3})
		case 10:
			ix.AddBlock(id, []string{"pair"}, []uint32{1})
		case 500:
			ix.AddBlock(id, []string{"pair"}, []uint32{2})
		}
		if f%3 == 0 {
			for k := 0; k <= (f/3)%4; k++ {
				ix.AddTermOccurrence("dense", id)
			}
		}
	}
	return ix
}

// TestPostingIteratorEdgeCases runs the same edge-case battery against
// both Partition backends — the heap index and the lazy segment reader —
// through the index.PostingIterator interface: seeks past and exactly to
// the last ID, single-posting lists, repeated equal seek targets, and
// absent terms. The two backends must agree on every observation.
func TestPostingIteratorEdgeCases(t *testing.T) {
	ix := edgeIndex(t)
	r, err := Open(writeSegment(t, ix), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	denseWant := ix.Lookup("dense") // reference for IDs and counts
	lastID := denseWant.IDs()[denseWant.Len()-1]
	if lastID != 2997 {
		t.Fatalf("fixture last dense ID = %d, want 2997", lastID)
	}

	for _, b := range []struct {
		name string
		p    index.Partition
	}{
		{"heap", ix},
		{"lazy", r},
	} {
		t.Run(b.name, func(t *testing.T) {
			// Absent term: nil iterator, on both backends.
			if it := b.p.Iterator("absent"); it != nil {
				t.Fatal("Iterator(absent) != nil")
			}

			// SeekGE past the last ID exhausts; the cursor stays dead.
			it := b.p.Iterator("dense")
			if it.SeekGE(lastID + 1) {
				t.Fatalf("SeekGE(%d) past last ID = true at %d", lastID+1, it.ID())
			}
			if it.Next() {
				t.Fatal("Next() revived an exhausted cursor")
			}
			if it.SeekGE(0) {
				t.Fatal("SeekGE never moves backwards, even after exhaustion")
			}

			// SeekGE to exactly the last ID lands on it; Next then exhausts.
			it = b.p.Iterator("dense")
			if !it.SeekGE(lastID) || it.ID() != lastID {
				t.Fatalf("SeekGE(last=%d) = %d", lastID, it.ID())
			}
			if want := denseWant.CountAt(denseWant.Len() - 1); it.Count() != want {
				t.Fatalf("Count at last ID = %d, want %d", it.Count(), want)
			}
			if it.Next() {
				t.Fatalf("Next() past the last ID = true at %d", it.ID())
			}

			// Single-posting list: Len, Next-once, seek-to, seek-past.
			it = b.p.Iterator("single")
			if it.Len() != 1 {
				t.Fatalf("single Len() = %d", it.Len())
			}
			if !it.Next() || it.ID() != 7 || it.Count() != 3 {
				t.Fatalf("single Next() = %d count %d, want 7 count 3", it.ID(), it.Count())
			}
			if it.Next() {
				t.Fatal("single list yielded a second posting")
			}
			it = b.p.Iterator("single")
			if !it.SeekGE(7) || it.ID() != 7 {
				t.Fatalf("single SeekGE(7) = %d", it.ID())
			}
			if b.p.Iterator("single").SeekGE(8) {
				t.Fatal("single SeekGE(8) found a posting past the only ID")
			}

			// Repeated SeekGE with equal targets is a stable no-op, and a
			// smaller target after a larger one never rewinds.
			it = b.p.Iterator("dense")
			if !it.SeekGE(1500) {
				t.Fatal("SeekGE(1500) exhausted")
			}
			at := it.ID()
			for i := 0; i < 3; i++ {
				if !it.SeekGE(1500) || it.ID() != at {
					t.Fatalf("repeat SeekGE(1500) #%d moved %d -> %d", i, at, it.ID())
				}
				if !it.SeekGE(at) || it.ID() != at {
					t.Fatalf("SeekGE(current) #%d moved %d -> %d", i, at, it.ID())
				}
			}
			if !it.SeekGE(9) || it.ID() != at {
				t.Fatalf("SeekGE(9) rewound %d -> %d", at, it.ID())
			}

			// A two-posting list with a wide gap: the gap has no posting.
			it = b.p.Iterator("pair")
			if !it.SeekGE(11) || it.ID() != 500 || it.Count() != 2 {
				t.Fatalf("pair SeekGE(11) = %d count %d, want 500 count 2", it.ID(), it.Count())
			}

			// MaxCount is an upper bound on every Count, or the explicit
			// no-bound sentinel — never an underestimate.
			it = b.p.Iterator("dense")
			mc := it.MaxCount()
			for it.Next() {
				if mc != postings.NoMaxCount && it.Count() > mc {
					t.Fatalf("Count %d at %d exceeds MaxCount %d", it.Count(), it.ID(), mc)
				}
			}
		})
	}
}

// TestLazyIteratorCountWithoutDecode pins the lazy backend's cost
// contract for the Count path: SeekGE deep into a list whose posting
// block was never materialized must report the correct term frequency
// while decoding zero whole posting blocks — Count streams the frequency
// section, it does not fall back to Lookup.
func TestLazyIteratorCountWithoutDecode(t *testing.T) {
	ix := edgeIndex(t)
	r, err := Open(writeSegment(t, ix), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	want := ix.Lookup("dense")
	for _, target := range []postings.FileID{0, 999, 1500, 2400, 2997} {
		it := r.Iterator("dense")
		if !it.SeekGE(target) {
			t.Fatalf("SeekGE(%d) exhausted", target)
		}
		// Reference count from the heap list at the landed ID.
		i := 0
		for want.IDs()[i] < it.ID() {
			i++
		}
		if want.IDs()[i] != it.ID() {
			t.Fatalf("SeekGE(%d) landed on %d, not a real posting", target, it.ID())
		}
		if got := it.Count(); got != want.CountAt(i) {
			t.Fatalf("Count after SeekGE(%d) = %d, want %d", target, got, want.CountAt(i))
		}
	}
	if n := r.BlockDecodes(); n != 0 {
		t.Fatalf("streaming Count decoded %d posting blocks, want 0", n)
	}

	// The empty heap-side cursor contract rides the same seam: an
	// explicitly empty list yields an iterator that is exhausted from the
	// start on both Next and SeekGE.
	empty := postings.NewIterator(postings.FromSortedIDs(nil))
	if empty.Next() || empty.SeekGE(0) || empty.Len() != 0 {
		t.Fatal("iterator over an empty list produced a posting")
	}
}
