// Command loadgen replays a mixed query workload — boolean AND/OR/NOT,
// phrase, prefix, BM25 top-k, suggest — against a search target at
// controlled QPS and emits a structured JSON latency summary. It is the
// load-test harness that measures the serving stack at realistic scale,
// the experiment shape the source paper's throughput evaluation calls
// for.
//
// Usage:
//
//	loadgen [-scale F] [-seed N] [-queries N] [-qps F] [-workers N] [flags]
//	loadgen -url http://host:7700 [flags]
//	loadgen -smoke
//
// Without -url, loadgen generates a corpusgen corpus in memory
// (internal/corpus's paper-shaped spec scaled by -scale; -scale 1 is the
// full ≈51k-file/869MB corpus, so scaling toward 1M docs is -scale ~20),
// indexes it positionally, and drives the catalog in-process — the
// zero-network mode that measures the evaluation stack itself.
//
// With -url, the same deterministic workload is replayed over HTTP
// against a running dsearchd or broker. Query terms are drawn from the
// corpusgen vocabulary for -scale/-seed, so point -url at a daemon
// serving a corpus generated with the same parameters (cmd/corpusgen)
// for realistic term-frequency behavior.
//
// The summary (stdout, or -out FILE) carries per-class
// p50/p95/p99/max latency, error counts, and achieved QPS — the
// artifact cmd/benchcheck gates with its -load flag.
//
// -smoke is the CI preset: a tiny corpus, a short unpaced replay, and a
// non-zero exit if any query fails — a pipeline step proving the whole
// harness end to end.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"desksearch"
	"desksearch/internal/corpus"
	"desksearch/internal/loadgen"
	"desksearch/internal/vfs"
)

func main() {
	var (
		targetURL = flag.String("url", "", "replay against this dsearchd/broker base URL instead of an in-process catalog")
		scale     = flag.Float64("scale", 1.0/256, "corpus scale relative to the paper's ≈51k files/869MB (1 = full size)")
		seed      = flag.Int64("seed", 1, "corpus and workload seed (deterministic op stream)")
		queries   = flag.Int("queries", 2000, "total operations to issue")
		qps       = flag.Float64("qps", 0, "aggregate dispatch rate (0 = as fast as the workers complete)")
		workers   = flag.Int("workers", 8, "concurrent workers")
		shards    = flag.Int("shards", 4, "shard count for the in-process catalog")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-operation timeout")
		out       = flag.String("out", "-", "summary JSON destination (- = stdout)")
		smoke     = flag.Bool("smoke", false, "CI preset: tiny corpus, 300 unpaced queries, exit 1 on any error")
	)
	flag.Parse()

	if *smoke {
		*scale = 1.0 / 4096
		*queries = 300
		*qps = 0
		*workers = 4
	}

	spec := corpus.PaperSpec().Scale(*scale)
	spec.Seed = *seed
	vocab := corpus.BuildVocabulary(spec)

	var target loadgen.Target
	if *targetURL != "" {
		target = &loadgen.HTTPTarget{BaseURL: *targetURL}
		log.Printf("target: %s (vocabulary of %d terms for scale %g, seed %d)",
			*targetURL, len(vocab), *scale, *seed)
	} else {
		start := time.Now()
		fs := vfs.NewMemFS()
		stats, err := corpus.Generate(spec, fs)
		if err != nil {
			log.Fatalf("loadgen: generating corpus: %v", err)
		}
		cat, err := desksearch.IndexFS(fs, ".", desksearch.Options{Positions: true, Shards: *shards})
		if err != nil {
			log.Fatalf("loadgen: indexing corpus: %v", err)
		}
		st := cat.Stats()
		log.Printf("in-process corpus ready in %s: %d files / %s, %d terms, %d postings, %d shard(s)",
			time.Since(start).Round(time.Millisecond), len(stats.Files),
			humanBytes(stats.TotalBytes), st.Terms, st.Postings, cat.Indices())
		target = &loadgen.CatalogTarget{Cat: cat}
	}

	gen, err := loadgen.NewGenerator(*seed, vocab, nil)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	log.Printf("replaying %d queries (%d workers, qps=%s)", *queries, *workers, qpsLabel(*qps))
	sum, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:    target,
		Generator: gen,
		Queries:   *queries,
		QPS:       *qps,
		Workers:   *workers,
		Timeout:   *timeout,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	var w *os.File = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatalf("loadgen: writing summary: %v", err)
	}

	log.Printf("done: %d queries in %.0f ms (%.0f QPS achieved), %d error(s)",
		sum.Queries, sum.WallMS, sum.AchievedQPS, sum.Errors)
	if *smoke && sum.Errors > 0 {
		log.Fatalf("loadgen: smoke replay saw %d error(s)", sum.Errors)
	}
}

func qpsLabel(q float64) string {
	if q <= 0 {
		return "unpaced"
	}
	return fmt.Sprintf("%g", q)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
