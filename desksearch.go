package desksearch

import (
	"fmt"
	"io"
	"runtime"

	"desksearch/internal/core"
	"desksearch/internal/distribute"
	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/search"
	"desksearch/internal/shard"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

// Implementation selects one of the paper's parallel designs.
type Implementation int

const (
	// Auto picks ReplicatedSearch with a machine-sized thread
	// configuration — the paper's overall winner.
	Auto Implementation = iota
	// Sequential runs single-threaded (the paper's baseline).
	Sequential
	// SharedIndex is the paper's Implementation 1.
	SharedIndex
	// ReplicatedJoin is the paper's Implementation 2.
	ReplicatedJoin
	// ReplicatedSearch is the paper's Implementation 3.
	ReplicatedSearch
)

// Options configure index construction. The zero value auto-configures for
// the host machine.
type Options struct {
	// Implementation selects the parallel design.
	Implementation Implementation
	// Extractors, Updaters, and Joiners are the paper's (x, y, z) thread
	// tuple. All zero means auto-size from the CPU count.
	Extractors, Updaters, Joiners int
	// Formats enables document-format extraction (HTML, WP markup) before
	// tokenization.
	Formats bool
	// Stopwords, when non-empty, excludes the listed words from the index.
	Stopwords []string
	// MinTermLen drops terms shorter than this many bytes (0 = keep all).
	MinTermLen int
	// Shards, when positive, partitions the catalog into that many
	// document shards, searched with parallel fan-out and saved with
	// SaveDir as a manifest plus one segment file per shard.
	Shards int
}

func (o Options) coreConfig() (core.Config, error) {
	cfg := core.Config{
		Extractors:   o.Extractors,
		Updaters:     o.Updaters,
		Joiners:      o.Joiners,
		Shards:       o.Shards,
		Distribution: distribute.RoundRobin,
	}
	tok := tokenize.Default
	if o.MinTermLen > 0 {
		tok.MinLen = o.MinTermLen
	}
	if len(o.Stopwords) > 0 {
		tok.Stopwords = tokenize.NewStopSet(o.Stopwords)
	}
	cfg.Extract = extract.Options{Tokenize: tok, Formats: o.Formats}

	switch o.Implementation {
	case Auto:
		cfg.Implementation = core.ReplicatedSearch
		if cfg.Extractors == 0 {
			auto := core.Default(core.ReplicatedSearch, runtime.NumCPU())
			cfg.Extractors, cfg.Updaters = auto.Extractors, auto.Updaters
			if cfg.Updaters < 2 {
				cfg.Updaters = 2 // replication needs at least two replicas
			}
		}
	case Sequential:
		cfg.Implementation = core.Sequential
	case SharedIndex:
		cfg.Implementation = core.SharedIndex
	case ReplicatedJoin:
		cfg.Implementation = core.ReplicatedJoin
	case ReplicatedSearch:
		cfg.Implementation = core.ReplicatedSearch
	default:
		return core.Config{}, fmt.Errorf("desksearch: unknown implementation %d", int(o.Implementation))
	}
	if cfg.Implementation != core.Sequential && cfg.Extractors == 0 {
		auto := core.Default(cfg.Implementation, runtime.NumCPU())
		cfg.Extractors, cfg.Updaters = auto.Extractors, auto.Updaters
	}
	return cfg, nil
}

// Result is one search hit.
type Result struct {
	// Path is the matched file, relative to the indexed root.
	Path string
	// Score counts how many distinct query terms the file contains.
	Score int
}

// Stats summarizes a catalog.
type Stats struct {
	// Files is the number of files indexed.
	Files int
	// Terms is the number of distinct terms (summed across replicas, so
	// an upper bound for ReplicatedSearch catalogs).
	Terms int
	// Postings is the number of (term, file) pairs.
	Postings int64
	// Skipped is the number of unreadable files that were skipped.
	Skipped int
}

// Catalog is a built index (or replica set) ready to answer queries.
type Catalog struct {
	result *core.Result
	engine *search.Engine
}

// IndexDir indexes every file under dir on the host filesystem.
func IndexDir(dir string, opt Options) (*Catalog, error) {
	return IndexFS(vfs.NewOSFS(dir), ".", opt)
}

// IndexFS indexes every file under root in the given filesystem. It is the
// hook for in-memory corpora (internal/vfs.MemFS) used by the examples and
// benchmarks.
func IndexFS(fsys vfs.FS, root string, opt Options) (*Catalog, error) {
	cfg, err := opt.coreConfig()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(fsys, root, cfg)
	if err != nil {
		return nil, err
	}
	return newCatalog(res), nil
}

func newCatalog(res *core.Result) *Catalog {
	return &Catalog{
		result: res,
		engine: search.NewEngine(res.Files, res.Indexes()...),
	}
}

// Search runs a boolean query ("cat dog", "cat OR dog", "report -draft",
// parentheses allowed) and returns hits ordered by score.
func (c *Catalog) Search(query string) ([]Result, error) {
	hits, err := c.engine.SearchString(query)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{Path: h.Path, Score: h.Score}
	}
	return out, nil
}

// Stats summarizes the catalog.
func (c *Catalog) Stats() Stats {
	s := c.result.Stats()
	return Stats{
		Files:    c.result.Files.Len(),
		Terms:    s.Terms,
		Postings: s.Postings,
		Skipped:  len(c.result.SkippedFiles),
	}
}

// Indices reports how many indices answer queries (1, or the replica or
// shard count for partitioned catalogs).
func (c *Catalog) Indices() int { return c.engine.Indices() }

// Shards reports how many document shards the catalog holds; 0 for
// unsharded catalogs.
func (c *Catalog) Shards() int {
	if c.result.Shards == nil {
		return 0
	}
	return c.result.Shards.Len()
}

// Timings returns the pipeline phase durations of the build, in seconds:
// filename generation, extraction+update, join, shard-set construction,
// and total.
func (c *Catalog) Timings() (filenameGen, extractUpdate, join, shard, total float64) {
	t := c.result.Timings
	return t.FilenameGen.Seconds(), t.ExtractUpdate.Seconds(), t.Join.Seconds(),
		t.Shard.Seconds(), t.Total.Seconds()
}

// TermCount is a term with the number of files containing it.
type TermCount struct {
	Term  string
	Files int
}

// TopTerms returns the catalog's n most frequent terms by document count.
// For replica catalogs the counts are aggregated across replicas.
func (c *Catalog) TopTerms(n int) []TermCount {
	if n <= 0 {
		return nil
	}
	indexes := c.result.Indexes()
	var source *index.Index
	if len(indexes) == 1 {
		source = indexes[0]
	} else {
		// Aggregate on clones so the live replicas stay untouched.
		clones := make([]*index.Index, len(indexes))
		for i, ix := range indexes {
			clones[i] = ix.Clone()
		}
		source = index.JoinAll(clones)
	}
	top := source.TopTerms(n)
	out := make([]TermCount, len(top))
	for i, tc := range top {
		out[i] = TermCount{Term: tc.Term, Files: tc.Files}
	}
	return out
}

// Save writes the catalog to w in the single-file binary index format.
// Replica and shard sets are joined first — on copies, so the live catalog
// stays queryable — and a saved catalog always reloads as a single index.
// Use SaveDir to persist the partitions instead.
func (c *Catalog) Save(w io.Writer) error {
	ix := c.result.Index
	if ix == nil {
		parts := c.result.Indexes()
		clones := make([]*index.Index, len(parts))
		for i, p := range parts {
			clones[i] = p.Clone()
		}
		ix = index.JoinAll(clones)
	}
	return index.Save(w, ix, c.result.Files)
}

// Load reads a catalog previously written by Save.
func Load(r io.Reader) (*Catalog, error) {
	ix, files, err := index.Load(r)
	if err != nil {
		return nil, err
	}
	return newCatalog(&core.Result{
		Implementation: core.Sequential,
		Files:          files,
		Index:          ix,
	}), nil
}

// SaveDir writes the catalog under dir in the sharded layout: a checksummed
// manifest plus one segment file per shard, written in parallel. Catalogs
// built without Options.Shards are saved with their existing partitions as
// shards — replicas are document-disjoint, and a single index becomes a
// one-segment layout — so any catalog can be saved this way.
func (c *Catalog) SaveDir(dir string) error {
	set := c.result.Shards
	if set == nil {
		set = shard.FromReplicas(c.result.Files, c.result.Indexes())
	}
	return shard.SaveDir(dir, set)
}

// LoadDir reads a sharded catalog previously written by SaveDir, loading
// and verifying all segments in parallel. Queries fan out over the loaded
// shards.
func LoadDir(dir string) (*Catalog, error) {
	set, err := shard.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return newCatalog(&core.Result{
		Implementation: core.ReplicatedSearch,
		Files:          set.Files(),
		Shards:         set,
	}), nil
}
