package platform

import (
	"math"
	"testing"
	"testing/quick"

	"desksearch/internal/corpus"
)

func TestPresetsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(All()) != 3 {
		t.Errorf("expected the paper's three platforms, got %d", len(All()))
	}
}

func TestPresetCoreCounts(t *testing.T) {
	if QuadCore().Cores != 4 || Xeon8().Cores != 8 || Manycore32().Cores != 32 {
		t.Error("preset core counts do not match the paper")
	}
}

func TestPresetTable1Targets(t *testing.T) {
	// The paper's Table 1, transcribed.
	q := QuadCore()
	if q.TFilename != 5 || q.TRead != 77 || q.TReadExtract != 88 || q.TInsert != 22 {
		t.Errorf("QuadCore targets = %+v", q)
	}
	x := Xeon8()
	if x.TFilename != 4 || x.TRead != 47 || x.TReadExtract != 61 || x.TInsert != 29 {
		t.Errorf("Xeon8 targets = %+v", x)
	}
	m := Manycore32()
	if m.TFilename != 5 || m.TRead != 73 || m.TReadExtract != 80 || m.TInsert != 28 {
		t.Errorf("Manycore32 targets = %+v", m)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []Profile{
		{Name: "no-cores", Cores: 0, DiskBW: 1, DiskDepth: 1, TRead: 1, TReadExtract: 2, SwitchPenalty: 1, SharedInsertFactor: 1},
		{Name: "no-disk", Cores: 1, DiskBW: 0, DiskDepth: 1, TRead: 1, TReadExtract: 2, SwitchPenalty: 1, SharedInsertFactor: 1},
		{Name: "bad-stages", Cores: 1, DiskBW: 1, DiskDepth: 1, TRead: 5, TReadExtract: 2, SwitchPenalty: 1, SharedInsertFactor: 1},
		{Name: "penalty", Cores: 1, DiskBW: 1, DiskDepth: 1, TRead: 1, TReadExtract: 2, SwitchPenalty: 0.5, SharedInsertFactor: 1},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", p.Name)
		}
	}
}

func TestContentionFactor(t *testing.T) {
	p := Profile{MemBeta: 0.1, MemGamma: 0.01}
	if got := p.ContentionFactor(1); got != 1 {
		t.Errorf("f(1) = %v", got)
	}
	if got := p.ContentionFactor(0); got != 1 {
		t.Errorf("f(0) clamps to f(1), got %v", got)
	}
	// f(3) = 1 + 0.1*2 + 0.01*4 = 1.24
	if got := p.ContentionFactor(3); math.Abs(got-1.24) > 1e-12 {
		t.Errorf("f(3) = %v", got)
	}
}

func TestContentionFactorMonotone(t *testing.T) {
	for _, p := range All() {
		prev := 0.0
		for a := 1; a <= p.Cores; a++ {
			f := p.ContentionFactor(a)
			if f < prev {
				t.Errorf("%s: f(%d)=%v < f(%d)=%v", p.Name, a, f, a-1, prev)
			}
			prev = f
		}
	}
}

func TestContentionThroughputCeiling(t *testing.T) {
	// The 32-core machine's aggregate scan throughput A/f(A) must peak
	// near the paper's observed ≈3.5× ceiling.
	p := Manycore32()
	peak := 0.0
	for a := 1; a <= p.Cores; a++ {
		g := float64(a) / p.ContentionFactor(a)
		if g > peak {
			peak = g
		}
	}
	if peak < 3.0 || peak > 5.0 {
		t.Errorf("32-core scan throughput ceiling = %.2f, want ≈3.5–4.5", peak)
	}
}

func TestUnitCostsReproduceTable1(t *testing.T) {
	cs := corpus.Describe(corpus.PaperSpec())
	for _, p := range All() {
		c := p.UnitCosts(cs)
		n := float64(len(cs.Files))
		bytes := float64(cs.TotalBytes)
		unique := float64(cs.TotalUnique)

		if got := c.FilenamePerFile * n; math.Abs(got-p.TFilename) > 0.01 {
			t.Errorf("%s: filename %.2f, want %.2f", p.Name, got, p.TFilename)
		}
		if got := c.DiskSeqSeconds + c.ReadCPUPerByte*bytes; math.Abs(got-p.TRead) > 0.5 {
			t.Errorf("%s: read %.2f, want %.2f", p.Name, got, p.TRead)
		}
		if got := c.DiskSeqSeconds + (c.ReadCPUPerByte+c.ExtractCPUPerByte)*bytes; math.Abs(got-p.TReadExtract) > 0.5 {
			t.Errorf("%s: read+extract %.2f, want %.2f", p.Name, got, p.TReadExtract)
		}
		if got := c.InsertPerUnique * unique; math.Abs(got-p.TInsert) > 0.01 {
			t.Errorf("%s: insert %.2f, want %.2f", p.Name, got, p.TInsert)
		}
	}
}

func TestXeon8IsDiskBound(t *testing.T) {
	// The 8-core machine's defining trait: the read stage is almost
	// entirely disk service, so parallel reads cannot beat the disk floor.
	cs := corpus.Describe(corpus.PaperSpec())
	p := Xeon8()
	c := p.UnitCosts(cs)
	if c.DiskSeqSeconds < 0.85*p.TRead {
		t.Errorf("disk %.1fs of %.1fs read: not disk-bound", c.DiskSeqSeconds, p.TRead)
	}
	// And with depth 1, parallelism cannot raise throughput.
	if p.DiskDepth != 1 {
		t.Errorf("DiskDepth = %d", p.DiskDepth)
	}
}

func TestQuadCoreIsCPUBound(t *testing.T) {
	cs := corpus.Describe(corpus.PaperSpec())
	p := QuadCore()
	c := p.UnitCosts(cs)
	cpuRead := c.ReadCPUPerByte * float64(cs.TotalBytes)
	if cpuRead < 0.7*p.TRead {
		t.Errorf("read CPU %.1fs of %.1fs: 4-core should be CPU-bound", cpuRead, p.TRead)
	}
}

func TestSeqFactor(t *testing.T) {
	// 4-core: 220 / (5+88+22) ≈ 1.913.
	if got := QuadCore().SeqFactor(); math.Abs(got-220.0/115.0) > 1e-9 {
		t.Errorf("QuadCore SeqFactor = %v", got)
	}
	if got := (Profile{}).SeqFactor(); got != 1 {
		t.Errorf("zero profile SeqFactor = %v", got)
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	p := Xeon8()
	s := p.Scaled(0.25)
	if math.Abs(s.TRead-p.TRead/4) > 1e-9 || math.Abs(s.PaperSequential-p.PaperSequential/4) > 1e-9 {
		t.Errorf("Scaled targets wrong: %+v", s)
	}
	// SeqFactor (a ratio) is scale-invariant.
	if math.Abs(s.SeqFactor()-p.SeqFactor()) > 1e-9 {
		t.Errorf("SeqFactor changed under scaling: %v vs %v", s.SeqFactor(), p.SeqFactor())
	}
	// Unit costs derived from a matching scaled corpus are unchanged:
	// per-byte and per-posting costs are machine constants.
	full := corpus.Describe(corpus.PaperSpec())
	quarter := corpus.Describe(corpus.PaperSpec().Scale(0.25))
	cFull := p.UnitCosts(full)
	cQuarter := s.UnitCosts(quarter)
	if math.Abs(cFull.ReadCPUPerByte-cQuarter.ReadCPUPerByte)/maxF(cFull.ReadCPUPerByte, 1e-18) > 0.15 {
		t.Errorf("per-byte read cost drifted: %v vs %v", cFull.ReadCPUPerByte, cQuarter.ReadCPUPerByte)
	}
	if math.Abs(cFull.InsertPerUnique-cQuarter.InsertPerUnique)/cFull.InsertPerUnique > 0.15 {
		t.Errorf("per-posting cost drifted: %v vs %v", cFull.InsertPerUnique, cQuarter.InsertPerUnique)
	}
}

func TestByName(t *testing.T) {
	for name, cores := range map[string]int{"4core": 4, "8core": 8, "32core": 32, "quadcore": 4, "xeon8": 8, "manycore32": 32} {
		p, err := ByName(name)
		if err != nil || p.Cores != cores {
			t.Errorf("ByName(%q) = %d cores, %v", name, p.Cores, err)
		}
	}
	if _, err := ByName("pdp11"); err == nil {
		t.Error("unknown platform accepted")
	}
}

// Property: unit costs are non-negative for any corpus the generator can
// describe.
func TestUnitCostsNonNegative(t *testing.T) {
	if err := quick.Check(func(files uint16, kb uint16, seed int64) bool {
		spec := corpus.Spec{
			Files:      int(files%500) + 1,
			TotalBytes: int64(kb)<<10 + 1024,
			Seed:       seed,
		}
		cs := corpus.Describe(spec)
		for _, p := range All() {
			c := p.UnitCosts(cs)
			if c.FilenamePerFile < 0 || c.ReadCPUPerByte < 0 ||
				c.ExtractCPUPerByte < 0 || c.InsertPerUnique < 0 || c.DiskSeqSeconds < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
