// Command experiments regenerates the paper's evaluation tables.
//
// Tables 1–4 run on the discrete-event simulator with the three calibrated
// platform models (4-, 8-, and 32-core Intel machines) over the full
// 51,000-file corpus shape; -live instead measures the three
// implementations with real goroutines on this machine over a generated
// in-memory corpus.
//
// Usage:
//
//	experiments [-table 0|1|2|3|4] [-reps N] [-batch N] [-seed N]
//	experiments -live [-scale F] [-reps N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/experiments"
	"desksearch/internal/platform"
	"desksearch/internal/stats"
	"desksearch/internal/vfs"
)

func main() {
	var (
		table  = flag.Int("table", 0, "paper table to reproduce (0 = all)")
		reps   = flag.Int("reps", 5, "simulated runs averaged per configuration (paper: 5)")
		batch  = flag.Int("batch", 16, "simulator fidelity: files per event batch (1 = exact)")
		seed   = flag.Int64("seed", 1, "sweep seed")
		live   = flag.Bool("live", false, "measure live goroutine runs on this machine instead")
		scale  = flag.Float64("scale", 1.0/32, "live corpus scale relative to the paper's 869 MB")
		curves = flag.Bool("curves", false, "render speed-up vs thread-count scaling curves instead of tables")
	)
	flag.Parse()

	if *live {
		if err := runLive(*scale, *reps); err != nil {
			fatal(err)
		}
		return
	}

	cs := corpus.Describe(corpus.PaperSpec())
	opt := experiments.SweepOptions{Reps: *reps, Batch: *batch, Seed: *seed}

	if *curves {
		out, err := experiments.RunAllCurves(cs, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	if *table == 0 || *table == 1 {
		t1 := experiments.RunTable1(cs)
		fmt.Println(t1.Render())
		fmt.Println(t1.RenderComparison())
	}
	for _, p := range platform.All() {
		no, err := experiments.TableNumber(p)
		if err != nil {
			fatal(err)
		}
		if *table != 0 && *table != no {
			continue
		}
		fmt.Printf("sweeping %s ...\n", p.Name)
		res, err := experiments.RunBestConfigs(p, cs, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
		fmt.Println(res.RenderComparison())
	}
}

// runLive measures the three implementations with real goroutines over an
// in-memory corpus — the host-hardware analogue of Tables 2–4.
func runLive(scale float64, reps int) error {
	cores := runtime.NumCPU()
	fmt.Printf("live run on this machine (%d cores), corpus scale %.4f\n", cores, scale)

	fs := vfs.NewMemFS()
	spec := corpus.PaperSpec().Scale(scale)
	if _, err := corpus.Generate(spec, fs); err != nil {
		return err
	}

	x := cores - 1
	if x < 2 {
		x = 2
	}
	configs := []core.Config{
		{Implementation: core.Sequential},
		{Implementation: core.SharedIndex, Extractors: x, Updaters: 1},
		{Implementation: core.ReplicatedJoin, Extractors: x, Updaters: 2, Joiners: 1},
		{Implementation: core.ReplicatedSearch, Extractors: x, Updaters: 2},
	}

	tb := stats.NewTable(
		fmt.Sprintf("Live implementations on %d cores (mean of %d runs)", cores, reps),
		"", "config", "exec. time (s)", "speed-up")
	var seq float64
	for _, cfg := range configs {
		sample := &stats.Sample{}
		for r := 0; r < reps; r++ {
			res, err := core.Run(fs, ".", cfg)
			if err != nil {
				return err
			}
			sample.AddDuration(res.Timings.Total)
		}
		mean := sample.Mean()
		if cfg.Implementation == core.Sequential {
			seq = mean
			tb.AddRow("Sequential", "-", stats.FormatSeconds(mean), "-")
			continue
		}
		tb.AddRow(cfg.Implementation.String(), cfg.Tuple(),
			stats.FormatSeconds(mean), stats.FormatSpeedup(stats.Speedup(seq, mean)))
	}
	fmt.Println(tb.String())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
