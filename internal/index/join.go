package index

import "sync"

// JoinAll sequentially folds the replica indices into the first one and
// returns it — the single-joiner strategy (z = 1 in the paper's
// configuration tuples). The inputs must not be used afterwards.
func JoinAll(replicas []*Index) *Index {
	if len(replicas) == 0 {
		return New(0)
	}
	root := replicas[0]
	for _, r := range replicas[1:] {
		root.Join(r)
	}
	return root
}

// ParallelJoin merges the replicas with a reduction tree executed by up to
// workers concurrent joiners (z > 1) and returns the single joined index.
// The inputs must not be used afterwards.
//
// Each reduction round pairs adjacent indices and merges them concurrently;
// rounds repeat until one index remains. With w workers the critical path is
// ceil(log2(n)) rounds, against n-1 sequential merges for JoinAll — the
// "parallel reduction setup with multiple joining processes" the paper asks
// about in Section 2.3.
func ParallelJoin(replicas []*Index, workers int) *Index {
	if len(replicas) == 0 {
		return New(0)
	}
	if workers < 1 {
		workers = 1
	}
	live := replicas
	sem := make(chan struct{}, workers)
	for len(live) > 1 {
		next := make([]*Index, 0, (len(live)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(live); i += 2 {
			a, b := live[i], live[i+1]
			next = append(next, a)
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				a.Join(b)
				<-sem
			}()
		}
		if len(live)%2 == 1 {
			next = append(next, live[len(live)-1])
		}
		wg.Wait()
		live = next
	}
	return live[0]
}
