package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"desksearch/internal/postings"
)

func buildSampleIndex(rng *rand.Rand, nFiles, vocab int) (*Index, *FileTable) {
	ft := NewFileTable()
	ix := New(0)
	for f := 0; f < nFiles; f++ {
		id := ft.Add(fmt.Sprintf("dir%d/file%d.txt", f%4, f), int64(100+f), int64(f+1))
		n := 1 + rng.Intn(10)
		if n > vocab {
			n = vocab
		}
		seen := map[string]bool{}
		var terms []string
		for len(terms) < n {
			w := fmt.Sprintf("term%d", rng.Intn(vocab))
			if !seen[w] {
				seen[w] = true
				terms = append(terms, w)
			}
		}
		ix.AddBlock(id, terms, nil)
	}
	return ix, ft
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix, ft := buildSampleIndex(rng, 50, 30)
	var buf bytes.Buffer
	if err := Save(&buf, ix, ft); err != nil {
		t.Fatal(err)
	}
	loadedIx, loadedFt, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loadedIx.Equal(ix) {
		t.Error("loaded index differs")
	}
	if loadedIx.NumPostings() != ix.NumPostings() {
		t.Errorf("postings = %d, want %d", loadedIx.NumPostings(), ix.NumPostings())
	}
	if loadedFt.Len() != ft.Len() {
		t.Fatalf("file table len = %d, want %d", loadedFt.Len(), ft.Len())
	}
	for i := 0; i < ft.Len(); i++ {
		id := postings.FileID(i)
		if loadedFt.Path(id) != ft.Path(id) || loadedFt.Size(id) != ft.Size(id) {
			t.Errorf("file %d: %q/%d vs %q/%d", i,
				loadedFt.Path(id), loadedFt.Size(id), ft.Path(id), ft.Size(id))
		}
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, New(0), NewFileTable()); err != nil {
		t.Fatal(err)
	}
	ix, ft, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumTerms() != 0 || ft.Len() != 0 {
		t.Error("empty round trip not empty")
	}
}

// Property: round-trip over random small indices.
func TestSaveLoadQuick(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix, ft := buildSampleIndex(rng, 1+rng.Intn(20), 1+rng.Intn(15))
		var buf bytes.Buffer
		if err := Save(&buf, ix, ft); err != nil {
			return false
		}
		got, gotFt, err := Load(&buf)
		if err != nil {
			return false
		}
		return got.Equal(ix) && gotFt.Len() == ft.Len()
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ix, ft := buildSampleIndex(rng, 20, 10)
	var buf bytes.Buffer
	if err := Save(&buf, ix, ft); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one byte at several positions: every corruption must be caught
	// by the checksum (or the parser).
	for _, pos := range []int{0, 4, 6, len(pristine) / 2, len(pristine) - 9, len(pristine) - 1} {
		corrupt := append([]byte(nil), pristine...)
		corrupt[pos] ^= 0x40
		if _, _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ix, ft := buildSampleIndex(rng, 10, 5)
	var buf bytes.Buffer
	Save(&buf, ix, ft)
	data := buf.Bytes()
	for _, n := range []int{0, 3, 10, len(data) / 2, len(data) - 1} {
		if _, _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestLoadRejectsWrongMagicAndVersion(t *testing.T) {
	if _, _, err := Load(strings.NewReader("BOGUS-format-data-long-enough-000000")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSavePropagatesWriteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix, ft := buildSampleIndex(rng, 10, 5)
	if err := Save(failWriter{}, ix, ft); err == nil {
		t.Error("Save to failing writer succeeded")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("full disk") }

func BenchmarkSave(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	ix, ft := buildSampleIndex(rng, 1000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		Save(&buf, ix, ft)
	}
}

func BenchmarkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	ix, ft := buildSampleIndex(rng, 1000, 500)
	var buf bytes.Buffer
	Save(&buf, ix, ft)
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
