package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"io"

	"desksearch/internal/fnv"
	"desksearch/internal/postings"
)

// The DSIX on-disk family. The authoritative format specification —
// including the full v1–v8 version history, the varint delta coding of IDs
// and positions, the frequency- and positions-section markers, and the
// corruption-detection guarantees — lives in docs/FORMAT.md; keep the two
// in sync (CI's docs-check gate compares the version constants below
// against the spec).
//
// All forms share the frame
//
//	magic "DSIX" | u16 version | payload | u64 FNV-1 checksum of everything above
//
// and differ in the payload:
//
//	version 6 (full index):     file table | term section
//	version 7 (shard segment):  term section only — the file table lives in
//	                            the shard manifest (see internal/shard)
//	version 5 (shard manifest): file table | segment directory, written and
//	                            read by internal/shard over this package's
//	                            exported frame helpers
//	version 8 (positional):     u8 kind | same payload as version 6 (kind 0,
//	                            full index) or version 7 (kind 1, shard
//	                            segment), with every posting list in the
//	                            positional encoding (positions section after
//	                            the frequency section)
//	version 9 (doc lengths):    u8 kind | u8 flags | payload. Kind 0 (full
//	                            index): file table | doc-length section |
//	                            term section, positional iff flags bit 0.
//	                            Kind 2 (shard manifest): file table |
//	                            doc-length section | segment directory,
//	                            flags 0. The doc-length section records each
//	                            file's token length for BM25; segments stay
//	                            v7/v8 (lengths live with the file table).
//
// where the file table is
//
//	uvarint fileCount | fileCount × (uvarint pathLen | path bytes |
//	                                 uvarint size | uvarint mtime | u8 flags)
//
// (flags bit 0 set = live; clear = tombstone of a deleted file whose ID is
// retired but never reused), and the term section is
//
//	uvarint termCount | termCount × (uvarint termLen | term bytes | posting-list varint encoding)
//
// Versions 1 and 3 were the pre-incremental forms of the full index and the
// manifest, whose file tables carried neither modification stamps nor
// tombstones; versions 4 and 2 were their successors whose posting lists
// carried no term frequencies. Each bump retires the older form rather than
// guessing at the missing state (the manifest carries no posting lists, so
// version 5 survives the frequency bump unchanged). Version 8 is opt-in
// rather than a retirement: a build without Options.Positions still writes
// versions 6/7, byte-identical to the pre-positions codec. Version 9 is
// likewise opt-in by provenance: every fresh build records token lengths
// and persists v9, while an index loaded from a pre-v9 file has no lengths
// to save and re-persists in its original form, byte-identical.
//
// A desktop search tool persists its index between sessions; this codec is
// that persistence layer for cmd/indexgen and cmd/dsearch.

const (
	codecMagic = "DSIX"
	// codecVersion is the full single-file form: file table + term section.
	codecVersion = 6
	// SegmentVersion is the shard segment form: the term section alone.
	SegmentVersion = 7
	// ManifestVersion is the shard manifest form (internal/shard).
	ManifestVersion = 5
	// PositionalVersion is the positional form: a kind byte (full index or
	// shard segment) followed by the corresponding v6/v7 payload with
	// posting lists in the positional encoding.
	PositionalVersion = 8
	// DocLengthVersion is the doc-length form: a kind byte (full index or
	// shard manifest), a flags byte (bit 0 = positional posting lists), and
	// the corresponding payload with a doc-length section — each file's
	// token length, which BM25 ranking normalizes by — directly after the
	// file table.
	DocLengthVersion = 9
	// LazySegmentVersion is the lazy shard-segment form (internal/segment):
	// a sorted, checksummed term dictionary pointing into per-term posting
	// blocks, openable in O(dictionary) and decoded on demand. It is not a
	// single-checksum frame like the versions above — see docs/FORMAT.md.
	LazySegmentVersion = 10
	// maxCount bounds file/term/posting counts against corrupt headers.
	maxCount = 1 << 31
)

// Frame kind bytes: the first payload byte of a PositionalVersion or
// DocLengthVersion frame says which payload shape follows.
const (
	kindFullIndex = 0
	kindSegment   = 1
	kindManifest  = 2
)

// flagPositional marks a DocLengthVersion full-index frame whose posting
// lists use the positional encoding. All other flag bits must be zero.
const flagPositional = 1

// versionKind names each known version for error messages.
func versionKind(v uint16) string {
	switch v {
	case codecVersion:
		return "a full index file"
	case SegmentVersion:
		return "a shard segment"
	case ManifestVersion:
		return "a shard manifest"
	case PositionalVersion:
		return "a positional index"
	case DocLengthVersion:
		return "a doc-length index"
	case LazySegmentVersion:
		return "a lazy shard segment"
	default:
		return "unsupported"
	}
}

// EncodeFrame writes a DSIX frame to w: magic, version, the payload written
// by body, and the FNV-1 checksum trailer over everything before it.
func EncodeFrame(w io.Writer, version uint16, body func(*bufio.Writer) error) error {
	h := fnv.New64()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], version)
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	if err := body(bw); err != nil {
		return err
	}
	return finishPayload(w, bw, h)
}

// finishPayload flushes the buffered payload into the hash and appends the
// checksum trailer directly to w.
func finishPayload(w io.Writer, bw *bufio.Writer, h hash.Hash64) error {
	if err := bw.Flush(); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], h.Sum64())
	_, err := w.Write(b[:])
	return err
}

// DecodeFrame verifies data's checksum trailer, magic, and version, and
// returns a reader positioned at the payload body plus the full payload
// slice (posting lists decode zero-copy from it).
func DecodeFrame(data []byte, wantVersion uint16) (*bytes.Reader, []byte, error) {
	br, payload, _, err := DecodeFrameAny(data, wantVersion)
	return br, payload, err
}

// DecodeFrameAny is DecodeFrame accepting any of several versions — the
// hook readers use when a payload shape exists in both a legacy and a
// positional form (v6/v8 full indexes, v7/v8 segments). It returns the
// frame's actual version alongside the payload reader.
func DecodeFrameAny(data []byte, wantVersions ...uint16) (*bytes.Reader, []byte, uint16, error) {
	if len(data) < len(codecMagic)+2+8 {
		return nil, nil, 0, fmt.Errorf("index: truncated (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	want := binary.LittleEndian.Uint64(trailer)
	if got := fnv.Hash64Bytes(payload); got != want {
		// A LazySegmentVersion file is not a trailer-checksummed frame, so
		// it lands here rather than at the version check below; peeking the
		// header (without trusting anything in it) turns a baffling
		// checksum complaint into the version mismatch it actually is.
		if string(data[:len(codecMagic)]) == codecMagic {
			if v := binary.LittleEndian.Uint16(data[len(codecMagic):]); v == LazySegmentVersion {
				return nil, nil, 0, fmt.Errorf("index: version %d is %s, want %s",
					v, versionKind(v), versionKind(wantVersions[0]))
			}
		}
		return nil, nil, 0, fmt.Errorf("index: checksum mismatch: file %#x, computed %#x", want, got)
	}
	br := bytes.NewReader(payload)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, 0, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, nil, 0, fmt.Errorf("index: bad magic %q", magic)
	}
	verBuf := make([]byte, 2)
	if _, err := io.ReadFull(br, verBuf); err != nil {
		return nil, nil, 0, fmt.Errorf("index: reading version: %w", err)
	}
	v := binary.LittleEndian.Uint16(verBuf)
	for _, w := range wantVersions {
		if v == w {
			return br, payload, v, nil
		}
	}
	return nil, nil, 0, fmt.Errorf("index: version %d is %s, want %s",
		v, versionKind(v), versionKind(wantVersions[0]))
}

// WriteUvarint writes v in varint form.
func WriteUvarint(bw *bufio.Writer, v uint64) error {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	_, err := bw.Write(scratch[:n])
	return err
}

// WriteString writes a length-prefixed string.
func WriteString(bw *bufio.Writer, s string) error {
	if err := WriteUvarint(bw, uint64(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

// ReadString reads a length-prefixed string.
func ReadString(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("absurd string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// fileLiveFlag marks a live (non-tombstoned) file-table entry on disk.
const fileLiveFlag = 1

// WriteFileTable writes the file-table payload section, tombstones
// included: retired FileIDs must survive a save/load cycle so that posting
// IDs stay aligned and deleted files stay deleted.
func WriteFileTable(bw *bufio.Writer, files *FileTable) error {
	if err := WriteUvarint(bw, uint64(files.Len())); err != nil {
		return err
	}
	for id, path := range files.Paths() {
		fid := postings.FileID(id)
		if err := WriteString(bw, path); err != nil {
			return err
		}
		if err := WriteUvarint(bw, uint64(files.Size(fid))); err != nil {
			return err
		}
		if err := WriteUvarint(bw, uint64(files.ModTime(fid))); err != nil {
			return err
		}
		var flags byte
		if files.Live(fid) {
			flags |= fileLiveFlag
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return nil
}

// WriteDocLengths writes the doc-length payload section of a
// DocLengthVersion frame: the table's per-file token lengths, tombstoned
// slots included so the section stays parallel to the file table.
//
//	uvarint fileCount | fileCount × uvarint tokens
//
// The repeated fileCount must match the file table's; readers treat a
// mismatch as corruption.
func WriteDocLengths(bw *bufio.Writer, files *FileTable) error {
	if err := WriteUvarint(bw, uint64(files.Len())); err != nil {
		return err
	}
	for id := range files.Len() {
		if err := WriteUvarint(bw, uint64(files.Tokens(postings.FileID(id)))); err != nil {
			return err
		}
	}
	return nil
}

// ReadDocLengths reads the doc-length payload section into files, which
// must be the table read immediately before it, and marks the table as
// carrying token lengths.
func ReadDocLengths(br *bytes.Reader, files *FileTable) error {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("index: reading doc-length count: %w", err)
	}
	if count != uint64(files.Len()) {
		return fmt.Errorf("index: doc-length count %d does not match %d files", count, files.Len())
	}
	for id := range files.Len() {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("index: file %d doc length: %w", id, err)
		}
		if n > 1<<32-1 {
			return fmt.Errorf("index: absurd doc length %d for file %d", n, id)
		}
		files.SetTokens(postings.FileID(id), uint32(n))
	}
	files.hasTokens = true
	return nil
}

// WriteManifestHeader writes the kind and flags bytes that open a
// DocLengthVersion shard-manifest frame (internal/shard writes the rest of
// the payload through this package's exported helpers).
func WriteManifestHeader(bw *bufio.Writer) error {
	if err := bw.WriteByte(kindManifest); err != nil {
		return err
	}
	return bw.WriteByte(0)
}

// ReadManifestHeader consumes and validates the kind and flags bytes of a
// DocLengthVersion shard-manifest frame.
func ReadManifestHeader(br *bytes.Reader) error {
	if err := readKind(br, kindManifest); err != nil {
		return err
	}
	flags, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("index: reading manifest flags: %w", err)
	}
	if flags != 0 {
		return fmt.Errorf("index: unknown manifest flags %#x", flags)
	}
	return nil
}

// ReadFileTable reads the file-table payload section. The returned table
// reports HasTokens false until a doc-length section is read into it —
// pre-v9 files never recorded token lengths.
func ReadFileTable(br *bytes.Reader) (*FileTable, error) {
	fileCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading file count: %w", err)
	}
	if fileCount > maxCount {
		return nil, fmt.Errorf("index: absurd file count %d", fileCount)
	}
	files := NewFileTable()
	files.hasTokens = false
	for i := uint64(0); i < fileCount; i++ {
		path, err := ReadString(br)
		if err != nil {
			return nil, fmt.Errorf("index: file %d path: %w", i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: file %d size: %w", i, err)
		}
		mtime, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: file %d mtime: %w", i, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("index: file %d flags: %w", i, err)
		}
		id := files.Add(path, int64(size), int64(mtime))
		if flags&fileLiveFlag == 0 {
			files.Tombstone(id)
		}
	}
	return files, nil
}

// writeTermSection writes the term→postings payload section. positional
// selects the positional posting-list encoding (v8 frames only).
func writeTermSection(bw *bufio.Writer, ix *Index, positional bool) error {
	if err := WriteUvarint(bw, uint64(ix.NumTerms())); err != nil {
		return err
	}
	var saveErr error
	var buf []byte
	ix.Range(func(term string, l *postings.List) bool {
		if saveErr = WriteString(bw, term); saveErr != nil {
			return false
		}
		if positional {
			buf = l.EncodePositional(buf[:0])
		} else {
			buf = l.Encode(buf[:0])
		}
		if _, saveErr = bw.Write(buf); saveErr != nil {
			return false
		}
		return true
	})
	return saveErr
}

// readTermSection reads the term→postings payload section. payload is the
// backing slice br reads from; posting lists decode zero-copy from it.
// positional selects the positional posting-list decoding (v8 frames).
func readTermSection(br *bytes.Reader, payload []byte, positional bool) (*Index, error) {
	termCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: reading term count: %w", err)
	}
	if termCount > maxCount {
		return nil, fmt.Errorf("index: absurd term count %d", termCount)
	}
	ix := New(int(termCount))
	ix.positional = positional
	for i := uint64(0); i < termCount; i++ {
		term, err := ReadString(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d: %w", i, err)
		}
		// Decode the posting list directly from the remaining payload.
		rest := payload[len(payload)-br.Len():]
		var (
			l *postings.List
			n int
		)
		if positional {
			l, n, err = postings.DecodePositional(rest)
		} else {
			l, n, err = postings.Decode(rest)
		}
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", term, err)
		}
		if _, err := br.Seek(int64(n), io.SeekCurrent); err != nil {
			return nil, err
		}
		if _, dup := ix.terms.Get(term); dup {
			return nil, fmt.Errorf("index: duplicate term %q", term)
		}
		ix.terms.Put(term, l)
		ix.nPostings += int64(l.Len())
	}
	return ix, nil
}

// readKind consumes and validates the kind byte of a v8/v9 frame.
func readKind(br *bytes.Reader, want byte) error {
	kind, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("index: reading frame kind: %w", err)
	}
	if kind != want {
		return fmt.Errorf("index: frame kind %d, want %d", kind, want)
	}
	return nil
}

// Save writes the index and its file table to w. A table carrying token
// lengths (every fresh build) persists as version 9 with the doc-length
// section; otherwise the legacy forms apply — version 8 when the index
// carries token positions, version 6 when not — so an index loaded from a
// pre-v9 file re-saves byte-identically.
func Save(w io.Writer, ix *Index, files *FileTable) error {
	if files.HasTokens() {
		return EncodeFrame(w, DocLengthVersion, func(bw *bufio.Writer) error {
			if err := bw.WriteByte(kindFullIndex); err != nil {
				return err
			}
			var flags byte
			if ix.Positional() {
				flags |= flagPositional
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
			if err := WriteFileTable(bw, files); err != nil {
				return err
			}
			if err := WriteDocLengths(bw, files); err != nil {
				return err
			}
			return writeTermSection(bw, ix, ix.Positional())
		})
	}
	if ix.Positional() {
		return EncodeFrame(w, PositionalVersion, func(bw *bufio.Writer) error {
			if err := bw.WriteByte(kindFullIndex); err != nil {
				return err
			}
			if err := WriteFileTable(bw, files); err != nil {
				return err
			}
			return writeTermSection(bw, ix, true)
		})
	}
	return EncodeFrame(w, codecVersion, func(bw *bufio.Writer) error {
		if err := WriteFileTable(bw, files); err != nil {
			return err
		}
		return writeTermSection(bw, ix, false)
	})
}

// Load reads an index written by Save — the v6, positional v8, or
// doc-length v9 full-index form; the loaded index remembers which
// (Positional, FileTable.HasTokens), so a catalog loaded from a positional
// file keeps updating positionally and one loaded from a pre-v9 file keeps
// re-saving in its original form. It reads the whole stream into memory
// first so the checksum can be verified over the exact payload before any
// of it is trusted.
func Load(r io.Reader) (*Index, *FileTable, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("index: reading: %w", err)
	}
	br, payload, version, err := DecodeFrameAny(data, codecVersion, PositionalVersion, DocLengthVersion)
	if err != nil {
		return nil, nil, err
	}
	positional := version == PositionalVersion
	if version == PositionalVersion || version == DocLengthVersion {
		if err := readKind(br, kindFullIndex); err != nil {
			return nil, nil, err
		}
	}
	if version == DocLengthVersion {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, nil, fmt.Errorf("index: reading frame flags: %w", err)
		}
		if flags&^flagPositional != 0 {
			return nil, nil, fmt.Errorf("index: unknown frame flags %#x", flags)
		}
		positional = flags&flagPositional != 0
	}
	files, err := ReadFileTable(br)
	if err != nil {
		return nil, nil, err
	}
	if version == DocLengthVersion {
		if err := ReadDocLengths(br, files); err != nil {
			return nil, nil, err
		}
	}
	ix, err := readTermSection(br, payload, positional)
	if err != nil {
		return nil, nil, err
	}
	if br.Len() != 0 {
		return nil, nil, fmt.Errorf("index: %d trailing payload bytes", br.Len())
	}
	return ix, files, nil
}
