package fnv

import (
	stdfnv "hash/fnv"
	"testing"
	"testing/quick"
)

// Reference vectors from Landon Curt Noll's FNV test suite
// (http://isthe.com/chongo/tech/comp/fnv/).
var vectors32 = []struct {
	in   string
	fnv1 uint32
}{
	{"", 0x811c9dc5},
	{"a", 0x050c5d7e},
	{"b", 0x050c5d7d},
	{"c", 0x050c5d7c},
	{"foobar", 0x31f0b262},
}

var vectors64 = []struct {
	in   string
	fnv1 uint64
}{
	{"", 0xcbf29ce484222325},
	{"a", 0xaf63bd4c8601b7be},
	{"foobar", 0x340d8765a4dda9c2},
}

func TestHash32Vectors(t *testing.T) {
	for _, v := range vectors32 {
		if got := Hash32(v.in); got != v.fnv1 {
			t.Errorf("Hash32(%q) = %#x, want %#x", v.in, got, v.fnv1)
		}
	}
}

func TestHash64Vectors(t *testing.T) {
	for _, v := range vectors64 {
		if got := Hash64(v.in); got != v.fnv1 {
			t.Errorf("Hash64(%q) = %#x, want %#x", v.in, got, v.fnv1)
		}
	}
}

func TestHash32aMatchesStdlib(t *testing.T) {
	// The standard library implements FNV-1a; our 1a variants must agree.
	if err := quick.Check(func(b []byte) bool {
		h := stdfnv.New32a()
		h.Write(b)
		return Hash32a(string(b)) == h.Sum32()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64aMatchesStdlib(t *testing.T) {
	if err := quick.Check(func(b []byte) bool {
		h := stdfnv.New64a()
		h.Write(b)
		return Hash64a(string(b)) == h.Sum64()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHash32MatchesStdlibFNV1(t *testing.T) {
	// hash/fnv's New32 is plain FNV-1, same as ours.
	if err := quick.Check(func(b []byte) bool {
		h := stdfnv.New32()
		h.Write(b)
		return Hash32Bytes(b) == h.Sum32()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64MatchesStdlibFNV1(t *testing.T) {
	if err := quick.Check(func(b []byte) bool {
		h := stdfnv.New64()
		h.Write(b)
		return Hash64Bytes(b) == h.Sum64()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesAndStringFormsAgree(t *testing.T) {
	if err := quick.Check(func(b []byte) bool {
		return Hash32(string(b)) == Hash32Bytes(b) &&
			Hash64(string(b)) == Hash64Bytes(b)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStreaming32EqualsOneShot(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		d := New32()
		d.Write(a)
		d.Write(b)
		whole := append(append([]byte{}, a...), b...)
		return d.Sum32() == Hash32Bytes(whole)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStreaming64EqualsOneShot(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		d := New64()
		d.Write(a)
		d.Write(b)
		whole := append(append([]byte{}, a...), b...)
		return d.Sum64() == Hash64Bytes(whole)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	d := New32()
	d.Write([]byte("polluted state"))
	d.Reset()
	if d.Sum32() != Hash32("") {
		t.Errorf("Reset did not restore offset basis: %#x", d.Sum32())
	}
	d64 := New64()
	d64.Write([]byte("polluted state"))
	d64.Reset()
	if d64.Sum64() != Hash64("") {
		t.Errorf("Reset did not restore offset basis: %#x", d64.Sum64())
	}
}

func TestSumAppends(t *testing.T) {
	d := New32()
	d.Write([]byte("a"))
	out := d.Sum([]byte{0xff})
	if len(out) != 5 || out[0] != 0xff {
		t.Fatalf("Sum should append to prefix, got % x", out)
	}
	want := Hash32("a")
	got := uint32(out[1])<<24 | uint32(out[2])<<16 | uint32(out[3])<<8 | uint32(out[4])
	if got != want {
		t.Errorf("Sum bytes = %#x, want %#x", got, want)
	}
	d64 := New64()
	d64.Write([]byte("a"))
	out64 := d64.Sum(nil)
	if len(out64) != 8 {
		t.Fatalf("Sum64 length = %d, want 8", len(out64))
	}
}

func TestSizeBlockSize(t *testing.T) {
	if New32().Size() != 4 || New32().BlockSize() != 1 {
		t.Error("unexpected 32-bit Size/BlockSize")
	}
	if New64().Size() != 8 || New64().BlockSize() != 1 {
		t.Error("unexpected 64-bit Size/BlockSize")
	}
}

func TestDistinctShortStringsDiffer(t *testing.T) {
	// Not a guarantee for any hash, but these specific short keys must not
	// collide for the container tests to be meaningful.
	seen := map[uint32]string{}
	for _, s := range []string{"a", "b", "c", "ab", "ba", "abc", "cab", "index", "term"} {
		h := Hash32(s)
		if prev, ok := seen[h]; ok {
			t.Fatalf("unexpected collision: %q and %q -> %#x", prev, s, h)
		}
		seen[h] = s
	}
}

func BenchmarkHash32(b *testing.B) {
	s := "the quick brown fox jumps over the lazy dog"
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		Hash32(s)
	}
}

func BenchmarkHash64(b *testing.B) {
	s := "the quick brown fox jumps over the lazy dog"
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		Hash64(s)
	}
}
