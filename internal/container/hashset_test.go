package container

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashSetBasics(t *testing.T) {
	s := NewHashSet(0)
	if s.Len() != 0 {
		t.Fatalf("empty set Len = %d", s.Len())
	}
	if !s.Add("term") {
		t.Error("first Add should report absent")
	}
	if s.Add("term") {
		t.Error("second Add should report present")
	}
	if !s.Contains("term") {
		t.Error("Contains after Add = false")
	}
	if s.Contains("other") {
		t.Error("Contains of absent key = true")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestHashSetEmptyStringKey(t *testing.T) {
	// "" must be storable: the probe loop must distinguish a used entry
	// holding "" from an unused slot.
	s := NewHashSet(0)
	if s.Contains("") {
		t.Fatal("empty set claims to contain \"\"")
	}
	if !s.Add("") {
		t.Fatal("Add(\"\") reported present on empty set")
	}
	if !s.Contains("") || s.Len() != 1 {
		t.Fatal("\"\" not stored correctly")
	}
}

func TestHashSetGrowthPreservesMembers(t *testing.T) {
	s := NewHashSet(0)
	const n = 10_000
	for i := 0; i < n; i++ {
		s.Add(fmt.Sprintf("key-%d", i))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !s.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("lost key-%d after growth", i)
		}
	}
	if s.Contains("key--1") || s.Contains("key-10000") {
		t.Error("set contains keys that were never added")
	}
}

func TestHashSetReset(t *testing.T) {
	s := NewHashSet(4)
	for i := 0; i < 100; i++ {
		s.Add(fmt.Sprintf("k%d", i))
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	for i := 0; i < 100; i++ {
		if s.Contains(fmt.Sprintf("k%d", i)) {
			t.Fatal("Reset did not clear membership")
		}
	}
	// Reuse after reset must behave like a fresh set.
	if !s.Add("again") || !s.Contains("again") || s.Len() != 1 {
		t.Fatal("set unusable after Reset")
	}
}

func TestHashSetKeys(t *testing.T) {
	s := NewHashSet(0)
	want := map[string]bool{"a": true, "b": true, "c": true}
	for k := range want {
		s.Add(k)
	}
	got := s.Keys(nil)
	if len(got) != len(want) {
		t.Fatalf("Keys returned %d elements, want %d", len(got), len(want))
	}
	for _, k := range got {
		if !want[k] {
			t.Errorf("Keys returned unexpected %q", k)
		}
	}
	// Keys must append to the destination.
	prefixed := s.Keys([]string{"existing"})
	if len(prefixed) != 4 || prefixed[0] != "existing" {
		t.Error("Keys did not append to dst")
	}
}

// TestHashSetMatchesMapModel drives the set and a map[string]bool with the
// same operations and checks they always agree.
func TestHashSetMatchesMapModel(t *testing.T) {
	if err := quick.Check(func(ops []string, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewHashSet(0)
		model := map[string]bool{}
		for _, k := range ops {
			switch rng.Intn(3) {
			case 0:
				added := s.Add(k)
				if added == model[k] {
					return false // Add must report the inverse of prior membership
				}
				model[k] = true
			case 1:
				if s.Contains(k) != model[k] {
					return false
				}
			case 2:
				if s.Len() != len(model) {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashSetCollidingKeysViaLinearProbe(t *testing.T) {
	// Insert many keys into a small set so chains of displaced entries form;
	// all must remain findable.
	s := NewHashSet(0)
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("%d", i)
		s.Add(keys[i])
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("probe chain lost %q", k)
		}
	}
}

func BenchmarkHashSetAdd(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("term-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewHashSet(1024)
		for _, k := range keys {
			s.Add(k)
		}
	}
}

func BenchmarkHashSetAddDuplicates(b *testing.B) {
	// The extractor's common case: mostly duplicate terms within one file.
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("term-%d", i%128)
	}
	s := NewHashSet(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		for _, k := range keys {
			s.Add(k)
		}
	}
}
