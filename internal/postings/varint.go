package postings

import (
	"encoding/binary"
	"fmt"
)

// Frequency-section markers following the delta-coded IDs: listBoolean
// means every posting has frequency 1 and no count bytes follow;
// listCounted means one uvarint(frequency-1) per posting follows.
const (
	listBoolean = 0
	listCounted = 1
)

// Positions-section markers, used only by the positional encoding
// (EncodePositional / DecodePositional, DSIX v8 frames — see
// docs/FORMAT.md): posAbsent means the list carries no positions and no
// position bytes follow; posPresent means each posting is followed by its
// delta-coded position run, whose length is that posting's frequency from
// the frequency section.
const (
	posAbsent  = 0
	posPresent = 1
)

// Encode appends a compact encoding of the list to dst and returns it:
// a uvarint count, uvarint deltas between consecutive IDs, then a
// frequency-section marker and — for counted lists — uvarint(frequency-1)
// per posting. Delta coding exploits the sorted invariant; small gaps
// dominate in dense posting lists, making most deltas one byte, and the
// frequency-1 bias makes the overwhelmingly common single-occurrence
// posting cost one zero byte.
func (l *List) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(l.ids)))
	prev := FileID(0)
	for i, id := range l.ids {
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		dst = binary.AppendUvarint(dst, delta)
		prev = id
	}
	return l.encodeFreqs(dst)
}

// encodeFreqs appends the frequency section. A positional list derives its
// frequencies from the position runs (counts is never populated alongside
// positions); the non-positional paths are byte-for-byte the pre-positions
// encoding.
func (l *List) encodeFreqs(dst []byte) []byte {
	if l.positions != nil {
		allOnes := true
		for _, p := range l.positions {
			if len(p) != 1 {
				allOnes = false
				break
			}
		}
		if allOnes {
			return append(dst, listBoolean)
		}
		dst = append(dst, listCounted)
		for _, p := range l.positions {
			n := len(p)
			if n == 0 {
				n = 1
			}
			dst = binary.AppendUvarint(dst, uint64(n-1))
		}
		return dst
	}
	if l.counts == nil {
		return append(dst, listBoolean)
	}
	dst = append(dst, listCounted)
	for _, c := range l.counts {
		dst = binary.AppendUvarint(dst, uint64(c-1))
	}
	return dst
}

// EncodePositional appends the positional encoding of the list to dst and
// returns it: the base Encode form followed by a positions section — a
// posAbsent/posPresent marker and, when present, each posting's positions
// delta-coded (first absolute, then gaps, exactly like the ID section),
// with the run length implied by the posting's frequency. Only DSIX v8
// frames use this form; v6/v7 frames keep the base encoding, which is why
// non-positional indexes stay byte-identical on disk.
func (l *List) EncodePositional(dst []byte) []byte {
	dst = l.Encode(dst)
	if l.positions == nil {
		return append(dst, posAbsent)
	}
	dst = append(dst, posPresent)
	for _, p := range l.positions {
		prev := uint32(0)
		for i, v := range p {
			delta := uint64(v - prev)
			if i == 0 {
				delta = uint64(v)
			}
			dst = binary.AppendUvarint(dst, delta)
			prev = v
		}
	}
	return dst
}

// Decode parses a list encoded by Encode from buf, returning the list and
// the number of bytes consumed.
func Decode(buf []byte) (*List, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("postings: corrupt count")
	}
	if count > uint64(len(buf)) { // each posting takes ≥1 byte
		return nil, 0, fmt.Errorf("postings: count %d exceeds buffer", count)
	}
	off := n
	l := &List{ids: make([]FileID, 0, count)}
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("postings: corrupt delta at %d", i)
		}
		off += n
		var id uint64
		if i == 0 {
			id = delta
		} else {
			id = prev + delta
			if delta == 0 {
				return nil, 0, fmt.Errorf("postings: zero delta at %d (duplicate id)", i)
			}
		}
		if id > 0xFFFF_FFFF {
			return nil, 0, fmt.Errorf("postings: id %d overflows FileID", id)
		}
		l.ids = append(l.ids, FileID(id))
		prev = id
	}
	if off >= len(buf) {
		return nil, 0, fmt.Errorf("postings: missing frequency marker")
	}
	marker := buf[off]
	off++
	switch marker {
	case listBoolean:
	case listCounted:
		l.counts = make([]uint32, 0, count)
		for i := uint64(0); i < count; i++ {
			c, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("postings: corrupt frequency at %d", i)
			}
			if c > 0xFFFF_FFFE {
				return nil, 0, fmt.Errorf("postings: frequency %d overflows at %d", c, i)
			}
			off += n
			l.counts = append(l.counts, uint32(c)+1)
		}
		l.normalize()
	default:
		return nil, 0, fmt.Errorf("postings: unknown frequency marker %d", marker)
	}
	return l, off, nil
}

// DecodePositional parses a list encoded by EncodePositional from buf,
// returning the list and the number of bytes consumed. Position runs are
// validated like the ID section: strictly ascending (a zero delta after
// the first is a duplicate), bounded, and capped against the buffer so a
// corrupt frequency section cannot force an absurd allocation.
func DecodePositional(buf []byte) (*List, int, error) {
	l, off, err := Decode(buf)
	if err != nil {
		return nil, 0, err
	}
	if off >= len(buf) {
		return nil, 0, fmt.Errorf("postings: missing positions marker")
	}
	marker := buf[off]
	off++
	switch marker {
	case posAbsent:
		return l, off, nil
	case posPresent:
		// Snapshot the frequencies before installing position storage:
		// CountAt derives from positions once they exist, and the slots are
		// still empty here.
		counts := make([]int, len(l.ids))
		for i := range l.ids {
			counts[i] = int(l.CountAt(i))
		}
		l.positions = make([][]uint32, len(l.ids))
		for i := range l.ids {
			count := counts[i]
			if count > len(buf)-off { // each position takes ≥1 byte
				return nil, 0, fmt.Errorf("postings: position count %d at posting %d exceeds buffer", count, i)
			}
			p := make([]uint32, 0, count)
			var prev uint64
			for k := 0; k < count; k++ {
				delta, n := binary.Uvarint(buf[off:])
				if n <= 0 {
					return nil, 0, fmt.Errorf("postings: corrupt position at posting %d", i)
				}
				off += n
				var v uint64
				if k == 0 {
					v = delta
				} else {
					if delta == 0 {
						return nil, 0, fmt.Errorf("postings: zero position delta at posting %d (duplicate position)", i)
					}
					v = prev + delta
				}
				if v > 0xFFFF_FFFF {
					return nil, 0, fmt.Errorf("postings: position %d overflows at posting %d", v, i)
				}
				p = append(p, uint32(v))
				prev = v
			}
			l.positions[i] = p
		}
		// Positions are authoritative for frequencies from here on.
		l.counts = nil
		return l, off, nil
	default:
		return nil, 0, fmt.Errorf("postings: unknown positions marker %d", marker)
	}
}

// EncodedSize returns the exact number of bytes Encode will produce.
func (l *List) EncodedSize() int {
	size := uvarintLen(uint64(len(l.ids)))
	prev := FileID(0)
	for i, id := range l.ids {
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		size += uvarintLen(delta)
		prev = id
	}
	size++ // frequency marker
	if l.positions != nil {
		if l.hasMultiOccurrence() {
			for i := range l.positions {
				size += uvarintLen(uint64(l.CountAt(i) - 1))
			}
		}
		return size
	}
	for _, c := range l.counts {
		size += uvarintLen(uint64(c - 1))
	}
	return size
}

// hasMultiOccurrence reports whether any posting of a positional list
// occurs more than once — the condition under which Encode emits an
// explicit frequency section.
func (l *List) hasMultiOccurrence() bool {
	for _, p := range l.positions {
		if len(p) > 1 {
			return true
		}
	}
	return false
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
