package postings

import (
	"encoding/binary"
	"fmt"
)

// Encode appends a compact encoding of the list to dst and returns it:
// a uvarint count followed by uvarint deltas between consecutive IDs.
// Delta coding exploits the sorted invariant; small gaps dominate in dense
// posting lists, making most deltas one byte.
func (l *List) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(l.ids)))
	prev := FileID(0)
	for i, id := range l.ids {
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		dst = binary.AppendUvarint(dst, delta)
		prev = id
	}
	return dst
}

// Decode parses a list encoded by Encode from buf, returning the list and
// the number of bytes consumed.
func Decode(buf []byte) (*List, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("postings: corrupt count")
	}
	if count > uint64(len(buf)) { // each posting takes ≥1 byte
		return nil, 0, fmt.Errorf("postings: count %d exceeds buffer", count)
	}
	off := n
	l := &List{ids: make([]FileID, 0, count)}
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("postings: corrupt delta at %d", i)
		}
		off += n
		var id uint64
		if i == 0 {
			id = delta
		} else {
			id = prev + delta
			if delta == 0 {
				return nil, 0, fmt.Errorf("postings: zero delta at %d (duplicate id)", i)
			}
		}
		if id > 0xFFFF_FFFF {
			return nil, 0, fmt.Errorf("postings: id %d overflows FileID", id)
		}
		l.ids = append(l.ids, FileID(id))
		prev = id
	}
	return l, off, nil
}

// EncodedSize returns the exact number of bytes Encode will produce.
func (l *List) EncodedSize() int {
	size := uvarintLen(uint64(len(l.ids)))
	prev := FileID(0)
	for i, id := range l.ids {
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		size += uvarintLen(delta)
		prev = id
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
