package docfmt

// wpExtractor handles a simple word-processor-like markup:
//
//   - lines starting with '.' are formatting directives (".wp 1.0",
//     ".ti Title", ".pp", ".ft Helvetica") — the directive name is dropped
//     but its textual argument is kept, since titles and headings are
//     exactly what desktop search should index;
//   - inline control sequences "\x{...}" apply character formatting; the
//     braces and the one-letter code are dropped, the content kept;
//   - everything else is body text.
//
// internal/corpus emits this format for a slice of the synthetic benchmark,
// emulating the paper's pre-extraction word-processor originals.
type wpExtractor struct{}

func (wpExtractor) Extract(data []byte) []byte {
	out := make([]byte, 0, len(data))
	i, n := 0, len(data)
	atLineStart := true
	for i < n {
		c := data[i]
		switch {
		case atLineStart && c == '.':
			// Skip the directive name (up to first space or EOL); keep the
			// rest of the line as text.
			j := i
			for j < n && data[j] != ' ' && data[j] != '\n' {
				j++
			}
			if j < n && data[j] == ' ' {
				j++ // keep argument text after the space
			}
			i = j
			atLineStart = false
		case c == '\\' && i+2 < n && data[i+2] == '{':
			// Inline control "\b{bold text}": drop "\b{", keep content; the
			// matching '}' is dropped when reached.
			i += 3
			atLineStart = false
		case c == '}':
			out = append(out, ' ')
			i++
			atLineStart = false
		case c == '\n':
			out = append(out, c)
			i++
			atLineStart = true
		default:
			out = append(out, c)
			i++
			atLineStart = false
		}
	}
	return out
}
