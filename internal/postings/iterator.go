package postings

import "sort"

// NoMaxCount is the MaxCount sentinel of iterators that cannot bound
// their per-posting frequencies without doing the decoding work they
// exist to avoid. Consumers must fall back to a frequency-independent
// bound (for BM25, the tf→∞ saturation limit).
const NoMaxCount = ^uint32(0)

// Iterator is a forward-only streaming cursor over a decoded posting
// list. SeekGE gallops — an exponential probe from the current position
// bracketing the target, then a binary search inside the bracket — so a
// run of seeks costs O(Σ log gap) comparisons no matter how the gaps are
// distributed: near-linear when the driven list interleaves tightly with
// the driver, logarithmic per seek when it is jumped over in large
// strides. The iterator reads the list in place; the list must not be
// mutated while a cursor is live.
type Iterator struct {
	l        *List
	i        int    // current posting index; -1 before the first Next/SeekGE
	maxCount uint32 // memoized MaxCount; 0 = not yet computed
}

// NewIterator returns a cursor positioned before l's first posting. A
// nil l iterates the empty list.
func NewIterator(l *List) *Iterator {
	if l == nil {
		l = &List{}
	}
	return &Iterator{l: l, i: -1}
}

// Next advances to the next posting, returning false once the list is
// exhausted.
func (it *Iterator) Next() bool {
	if it.i+1 >= len(it.l.ids) {
		it.i = len(it.l.ids)
		return false
	}
	it.i++
	return true
}

// SeekGE advances to the first posting with ID >= id — never moving
// backwards — and reports whether one exists.
func (it *Iterator) SeekGE(id FileID) bool {
	ids := it.l.ids
	n := len(ids)
	i := it.i
	if i < 0 {
		i = 0
	}
	if i >= n {
		it.i = n
		return false
	}
	if ids[i] >= id {
		it.i = i
		return true
	}
	// Gallop: double the probe distance until it brackets the target,
	// then binary-search the half-open bracket. Entering here ids[i] < id.
	bound := 1
	for i+bound < n && ids[i+bound] < id {
		bound <<= 1
	}
	lo := i + bound/2 + 1 // ids[i+bound/2] < id held on the prior probe
	hi := i + bound
	if hi > n-1 {
		hi = n - 1
	}
	j := lo + sort.Search(hi+1-lo, func(k int) bool { return ids[lo+k] >= id })
	it.i = j
	return j < n
}

// ID returns the current posting's file ID; valid only after a true
// Next/SeekGE.
func (it *Iterator) ID() FileID { return it.l.ids[it.i] }

// Count returns the current posting's term frequency; valid only after a
// true Next/SeekGE.
func (it *Iterator) Count() uint32 { return it.l.CountAt(it.i) }

// Len returns the list's total posting count (the term's document
// frequency).
func (it *Iterator) Len() int { return len(it.l.ids) }

// MaxCount returns the largest per-posting frequency in the list: 1 for
// boolean lists, otherwise a memoized single scan. It never returns
// NoMaxCount — the list is already decoded, so the exact bound is cheap.
func (it *Iterator) MaxCount() uint32 {
	if it.maxCount != 0 {
		return it.maxCount
	}
	max := uint32(1)
	if it.l.counts != nil || it.l.positions != nil {
		for i := range it.l.ids {
			if c := it.l.CountAt(i); c > max {
				max = c
			}
		}
	}
	it.maxCount = max
	return max
}
