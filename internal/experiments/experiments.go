package experiments

import (
	"fmt"
	"strings"

	"desksearch/internal/autotune"
	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
	"desksearch/internal/simmodel"
	"desksearch/internal/stats"
)

// SweepOptions control a Tables 2–4 reproduction run.
type SweepOptions struct {
	// Reps is the number of jittered runs averaged per configuration
	// (the paper ran each configuration five times). Zero selects 5.
	Reps int
	// Batch is the simulator fidelity knob (files per event). Zero
	// selects 16.
	Batch int
	// Jitter is the per-run service-time noise. Zero selects 1 %.
	Jitter float64
	// Seed makes the whole sweep reproducible.
	Seed int64
	// MaxExtractors and MaxUpdaters shrink the sweep grid (0 = the
	// default space for the platform). Tests use these to stay fast.
	MaxExtractors, MaxUpdaters int
}

func (o SweepOptions) normalized() SweepOptions {
	if o.Reps < 1 {
		o.Reps = 5
	}
	if o.Batch < 1 {
		o.Batch = 16
	}
	if o.Jitter == 0 {
		o.Jitter = 0.01
	}
	return o
}

// Cell is one implementation's measured row.
type Cell struct {
	Implementation core.Implementation
	// Config is the best configuration found by the sweep.
	Config core.Config
	// Exec is its mean execution time in seconds.
	Exec float64
	// Speedup is Sequential / Exec.
	Speedup float64
	// Variance is the relative difference of Speedup from
	// Implementation 1's, the paper's "variance" column.
	Variance float64
	// Paper carries the published reference values.
	Paper PaperCell
}

// BestConfigResult reproduces one of the paper's Tables 2–4.
type BestConfigResult struct {
	Platform platform.Profile
	// TableNo is the paper table this reproduces (2, 3, or 4).
	TableNo int
	// Sequential is the modeled sequential baseline (calibrated to the
	// paper's).
	Sequential float64
	// Cells holds Implementations 1–3 in order.
	Cells []Cell
}

// RunBestConfigs sweeps the configuration space of every implementation on
// the platform and reports the best of each — the experiment behind the
// paper's Tables 2–4.
func RunBestConfigs(p platform.Profile, cs corpus.Stats, o SweepOptions) (BestConfigResult, error) {
	o = o.normalized()
	tableNo, err := TableNumber(p)
	if err != nil {
		return BestConfigResult{}, err
	}
	simOpt := simmodel.Options{Batch: o.Batch, Jitter: o.Jitter, Seed: o.Seed}
	seq, err := simmodel.SequentialBaseline(p, cs, simOpt)
	if err != nil {
		return BestConfigResult{}, err
	}
	res := BestConfigResult{Platform: p, TableNo: tableNo, Sequential: seq}

	var impl1Speedup float64
	for _, im := range []core.Implementation{core.SharedIndex, core.ReplicatedJoin, core.ReplicatedSearch} {
		space := autotune.DefaultSpace(im, p.Cores)
		if o.MaxExtractors > 0 {
			space.MaxExtractors = o.MaxExtractors
		}
		if o.MaxUpdaters > 0 {
			space.MaxUpdaters = o.MaxUpdaters
		}
		best, err := autotune.Exhaustive(space, autotune.SimObjective(p, cs, simOpt, o.Reps), autotune.Options{})
		if err != nil {
			return BestConfigResult{}, fmt.Errorf("experiments: %s on %s: %w", im, p.Name, err)
		}
		cell := Cell{
			Implementation: im,
			Config:         best.Config,
			Exec:           best.Cost,
			Speedup:        stats.Speedup(seq, best.Cost),
			Paper:          PaperBest[tableNo][im],
		}
		if im == core.SharedIndex {
			impl1Speedup = cell.Speedup
		}
		cell.Variance = stats.RelDiff(cell.Speedup, impl1Speedup)
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Render prints the result in the paper's table layout.
func (r BestConfigResult) Render() string {
	tb := stats.NewTable(
		fmt.Sprintf("Table %d. Execution time and speed-up for the best configurations on the %s (simulated)", r.TableNo, r.Platform.Name),
		"", "best config.", "exec. time (s)", "speed-up", "variance")
	tb.AddRow("Sequential", "-", stats.FormatSeconds(r.Sequential), "-", "-")
	for _, c := range r.Cells {
		tb.AddRow(c.Implementation.String(), c.Config.Tuple(),
			stats.FormatSeconds(c.Exec), stats.FormatSpeedup(c.Speedup),
			stats.FormatPercent(c.Variance))
	}
	return tb.String()
}

// RenderComparison prints model-vs-paper for every cell.
func (r BestConfigResult) RenderComparison() string {
	tb := stats.NewTable(
		fmt.Sprintf("Table %d comparison — %s (model vs paper)", r.TableNo, r.Platform.Name),
		"", "config (model/paper)", "exec s (model/paper)", "speed-up (model/paper)")
	tb.AddRow("Sequential", "-",
		fmt.Sprintf("%s / %s", stats.FormatSeconds(r.Sequential), stats.FormatSeconds(PaperSequential[r.TableNo])),
		"-")
	for _, c := range r.Cells {
		tb.AddRow(c.Implementation.String(),
			fmt.Sprintf("%s / %s", c.Config.Tuple(), c.Paper.Tuple),
			fmt.Sprintf("%s / %s", stats.FormatSeconds(c.Exec), stats.FormatSeconds(c.Paper.Exec)),
			fmt.Sprintf("%s / %s", stats.FormatSpeedup(c.Speedup), stats.FormatSpeedup(c.Paper.Speedup)),
		)
	}
	return tb.String()
}

// Table1Result reproduces the paper's Table 1 on the simulator.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one platform's modeled stage times.
type Table1Row struct {
	Platform                            string
	Filename, Read, ReadExtract, Insert float64
	Paper                               PaperStageRow
}

// RunTable1 computes the modeled sequential stage times for all three
// platforms. The platform profiles are calibrated against the paper's
// Table 1, so agreement here validates the unit-cost derivation (and the
// corpus statistics feeding it), not an independent measurement.
func RunTable1(cs corpus.Stats) Table1Result {
	var res Table1Result
	for i, p := range platform.All() {
		f, rd, re, ins := simmodel.StageTimes(p, cs)
		res.Rows = append(res.Rows, Table1Row{
			Platform: p.Name,
			Filename: f, Read: rd, ReadExtract: re, Insert: ins,
			Paper: PaperTable1[i],
		})
	}
	return res
}

// Render prints Table 1 in the paper's layout.
func (r Table1Result) Render() string {
	tb := stats.NewTable(
		"Table 1. Execution times for sequential index generation (simulated)",
		"", "filename generation", "read files", "read + extract", "index update")
	for _, row := range r.Rows {
		tb.AddRow(row.Platform,
			stats.FormatSeconds(row.Filename), stats.FormatSeconds(row.Read),
			stats.FormatSeconds(row.ReadExtract), stats.FormatSeconds(row.Insert))
	}
	return tb.String()
}

// RenderComparison prints model-vs-paper stage times.
func (r Table1Result) RenderComparison() string {
	tb := stats.NewTable(
		"Table 1 comparison (model / paper, seconds)",
		"", "filename", "read", "read+extract", "index update")
	for _, row := range r.Rows {
		pair := func(m, pp float64) string {
			return fmt.Sprintf("%s / %s", stats.FormatSeconds(m), stats.FormatSeconds(pp))
		}
		tb.AddRow(row.Platform,
			pair(row.Filename, row.Paper.Filename),
			pair(row.Read, row.Paper.Read),
			pair(row.ReadExtract, row.Paper.ReadExtract),
			pair(row.Insert, row.Paper.Insert))
	}
	return tb.String()
}

// RunAll reproduces every table on the simulator and renders a full
// report, the body of cmd/experiments and the source of EXPERIMENTS.md's
// measured numbers.
func RunAll(cs corpus.Stats, o SweepOptions) (string, error) {
	var sb strings.Builder
	t1 := RunTable1(cs)
	sb.WriteString(t1.Render())
	sb.WriteString("\n")
	sb.WriteString(t1.RenderComparison())
	sb.WriteString("\n")
	for _, p := range platform.All() {
		res, err := RunBestConfigs(p, cs, o)
		if err != nil {
			return "", err
		}
		sb.WriteString(res.Render())
		sb.WriteString("\n")
		sb.WriteString(res.RenderComparison())
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
