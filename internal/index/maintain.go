package index

import (
	"sort"

	"desksearch/internal/postings"
)

// This file implements index maintenance beyond the paper's batch build:
// a desktop search tool must follow the user's filesystem, removing and
// re-indexing files as they change between full rebuilds.

// RemoveFile deletes every posting of the given file and returns the
// number of postings removed. Terms whose posting lists become empty are
// dropped from the index.
//
// The inverted mapping makes removal a full scan (the index has no
// file → terms direction); that is the structural price of the paper's
// design and the reason desktop search tools batch deletions.
func (ix *Index) RemoveFile(id postings.FileID) int {
	return ix.RemoveFiles(postings.FromIDs([]postings.FileID{id}))
}

// RemoveFiles deletes every posting of every file in victims and returns
// the number of postings removed. One scan over the term map handles the
// whole batch, which is how the incremental update path (internal/delta)
// amortizes the full-scan price of removal across a changeset; it is also
// why removing files absent from this index — routine when a catalog's
// partitions are scanned in parallel and only one owns the file — costs
// only the scan.
func (ix *Index) RemoveFiles(victims *postings.List) int {
	if victims == nil || victims.Len() == 0 {
		return 0
	}
	removed := 0
	var emptied []string
	ix.terms.Range(func(term string, l *postings.List) bool {
		rest := postings.Difference(l, victims)
		hit := l.Len() - rest.Len()
		if hit == 0 {
			return true
		}
		removed += hit
		if rest.Len() == 0 {
			emptied = append(emptied, term)
			return true
		}
		ix.terms.Put(term, rest)
		return true
	})
	for _, term := range emptied {
		ix.terms.Delete(term)
	}
	if removed > 0 {
		// Not just on emptied terms: the Put above swaps surviving
		// terms' list pointers, which the sorted dictionary cache holds.
		ix.invalidateSorted()
	}
	ix.nPostings -= int64(removed)
	return removed
}

// UpdateFile replaces a file's postings with a fresh duplicate-free term
// block (remove + en-bloc insert), the re-index path for a modified file.
// counts follows AddBlock's convention (nil = every frequency 1).
func (ix *Index) UpdateFile(id postings.FileID, terms []string, counts []uint32) {
	ix.RemoveFile(id)
	ix.AddBlock(id, terms, counts)
}

// TermCount is a term with its document frequency.
type TermCount struct {
	Term string
	// Files is the number of files containing the term.
	Files int
}

// TopTerms returns the n most frequent terms by document count, most
// frequent first (ties broken alphabetically, so the result is
// deterministic).
func (ix *Index) TopTerms(n int) []TermCount {
	if n <= 0 {
		return nil
	}
	all := make([]TermCount, 0, ix.NumTerms())
	ix.terms.Range(func(term string, l *postings.List) bool {
		all = append(all, TermCount{Term: term, Files: l.Len()})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Files != all[j].Files {
			return all[i].Files > all[j].Files
		}
		return all[i].Term < all[j].Term
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// termDocCounts aggregates per-term document counts over a set of
// document-disjoint partitions in one pass: each file lives in exactly one
// partition, so per-partition document counts add, and the cost is a pass
// over each partition's term dictionary plus a counter per distinct term —
// no posting list is cloned, merged, joined, or (on a lazy backend) even
// decoded.
func termDocCounts(parts []Partition) map[string]int {
	counts := make(map[string]int)
	for _, p := range parts {
		p.TermsFrom("", func(term string, df int) bool {
			counts[term] += df
			return true
		})
	}
	return counts
}

// DistinctTermsAcross returns the exact number of distinct terms over a set
// of document-disjoint partitions — not the per-partition sum, which counts
// a term once per partition it appears in. Like termDocCounts it is one
// pass over each partition's term dictionary, but with a value-free set,
// since only the cardinality is wanted.
func DistinctTermsAcross(parts []Partition) int {
	if len(parts) == 1 {
		return parts[0].NumTerms()
	}
	seen := make(map[string]struct{})
	for _, p := range parts {
		p.TermsFrom("", func(term string, _ int) bool {
			seen[term] = struct{}{}
			return true
		})
	}
	return len(seen)
}

// TopTermsAcross returns the n most frequent terms by document count over a
// set of document-disjoint partitions (replicas or shards), most frequent
// first with ties broken alphabetically, using the same single-pass counter
// as DistinctTermsAcross.
func TopTermsAcross(parts []Partition, n int) []TermCount {
	if n <= 0 || len(parts) == 0 {
		return nil
	}
	counts := termDocCounts(parts)
	all := make([]TermCount, 0, len(counts))
	for term, files := range counts {
		all = append(all, TermCount{Term: term, Files: files})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Files != all[j].Files {
			return all[i].Files > all[j].Files
		}
		return all[i].Term < all[j].Term
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
