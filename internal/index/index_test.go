package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"desksearch/internal/postings"
)

func TestFileTable(t *testing.T) {
	ft := NewFileTable()
	if ft.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	a := ft.Add("docs/a.txt", 100, 11)
	b := ft.Add("docs/b.txt", 200, 22)
	if a != 0 || b != 1 {
		t.Errorf("ids = %d, %d", a, b)
	}
	if ft.Path(a) != "docs/a.txt" || ft.Size(b) != 200 {
		t.Error("lookup wrong")
	}
	if len(ft.Paths()) != 2 {
		t.Error("Paths wrong")
	}
}

func TestAddBlockAndLookup(t *testing.T) {
	ix := New(0)
	ix.AddBlock(1, []string{"alpha", "beta"}, nil)
	ix.AddBlock(2, []string{"beta", "gamma"}, nil)
	if ix.NumTerms() != 3 {
		t.Errorf("NumTerms = %d", ix.NumTerms())
	}
	if ix.NumPostings() != 4 {
		t.Errorf("NumPostings = %d", ix.NumPostings())
	}
	if l := ix.Lookup("beta"); !reflect.DeepEqual(l.IDs(), []postings.FileID{1, 2}) {
		t.Errorf("beta -> %v", l.IDs())
	}
	if l := ix.Lookup("alpha"); !reflect.DeepEqual(l.IDs(), []postings.FileID{1}) {
		t.Errorf("alpha -> %v", l.IDs())
	}
	if ix.Lookup("absent") != nil {
		t.Error("absent term returned a list")
	}
}

func TestAddTermOccurrenceDeduplicates(t *testing.T) {
	ix := New(0)
	// The immediate-insertion path sees duplicates (same term repeatedly in
	// one file); the index must end up identical to the en-bloc path.
	for _, term := range []string{"dup", "dup", "other", "dup"} {
		ix.AddTermOccurrence(term, 7)
	}
	if ix.NumPostings() != 2 {
		t.Errorf("NumPostings = %d, want 2", ix.NumPostings())
	}
	en := New(0)
	en.AddBlock(7, []string{"dup", "other"}, nil)
	if !ix.Equal(en) {
		t.Error("immediate insertion diverged from en-bloc insertion")
	}
}

func TestRangeAndTerms(t *testing.T) {
	ix := New(0)
	ix.AddBlock(0, []string{"a", "b", "c"}, nil)
	var seen []string
	ix.Range(func(term string, l *postings.List) bool {
		seen = append(seen, term)
		return true
	})
	sort.Strings(seen)
	if !reflect.DeepEqual(seen, []string{"a", "b", "c"}) {
		t.Errorf("Range saw %v", seen)
	}
	terms := ix.Terms(nil)
	sort.Strings(terms)
	if !reflect.DeepEqual(terms, []string{"a", "b", "c"}) {
		t.Errorf("Terms = %v", terms)
	}
}

func TestJoinMergesPostings(t *testing.T) {
	a := New(0)
	a.AddBlock(0, []string{"shared", "onlyA"}, nil)
	b := New(0)
	b.AddBlock(1, []string{"shared", "onlyB"}, nil)
	a.Join(b)
	if a.NumTerms() != 3 {
		t.Errorf("NumTerms = %d", a.NumTerms())
	}
	if a.NumPostings() != 4 {
		t.Errorf("NumPostings = %d", a.NumPostings())
	}
	if l := a.Lookup("shared"); !reflect.DeepEqual(l.IDs(), []postings.FileID{0, 1}) {
		t.Errorf("shared -> %v", l.IDs())
	}
	a.Join(nil) // must not panic
}

func TestJoinOverlappingPostingsCountsOnce(t *testing.T) {
	a := New(0)
	a.AddBlock(3, []string{"t"}, nil)
	b := New(0)
	b.AddBlock(3, []string{"t"}, nil) // same (term, file) posting in both
	a.Join(b)
	if a.NumPostings() != 1 {
		t.Errorf("NumPostings = %d, want 1", a.NumPostings())
	}
}

func TestEqual(t *testing.T) {
	a := New(0)
	a.AddBlock(0, []string{"x", "y"}, nil)
	b := New(0)
	b.AddBlock(0, []string{"y", "x"}, nil)
	if !a.Equal(b) {
		t.Error("order-insensitive indices should be equal")
	}
	b.AddBlock(1, []string{"x"}, nil)
	if a.Equal(b) {
		t.Error("different indices reported equal")
	}
	c := New(0)
	c.AddBlock(0, []string{"x", "z"}, nil)
	if a.Equal(c) {
		t.Error("same size, different terms reported equal")
	}
}

func TestStatsString(t *testing.T) {
	ix := New(0)
	ix.AddBlock(0, []string{"a"}, nil)
	s := ix.Stats()
	if s.Terms != 1 || s.Postings != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.String() != "1 terms, 1 postings" {
		t.Errorf("String = %q", s.String())
	}
}

// referenceIndex builds an index sequentially from (file, terms) pairs.
func referenceIndex(blocks map[postings.FileID][]string) *Index {
	ix := New(0)
	ids := make([]postings.FileID, 0, len(blocks))
	for id := range blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ix.AddBlock(id, blocks[id], nil)
	}
	return ix
}

func randomBlocks(rng *rand.Rand, nFiles, vocab int) map[postings.FileID][]string {
	blocks := map[postings.FileID][]string{}
	for f := 0; f < nFiles; f++ {
		n := 1 + rng.Intn(8)
		seen := map[string]bool{}
		var terms []string
		for len(terms) < n {
			w := fmt.Sprintf("w%d", rng.Intn(vocab))
			if !seen[w] {
				seen[w] = true
				terms = append(terms, w)
			}
		}
		blocks[postings.FileID(f)] = terms
	}
	return blocks
}

// Property: joining a partition of the blocks (in any order, with any join
// strategy) equals indexing them all sequentially — "Join Forces" loses and
// invents nothing.
func TestJoinEqualsSequentialReference(t *testing.T) {
	if err := quick.Check(func(seed int64, nReplicas uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := randomBlocks(rng, 30, 20)
		want := referenceIndex(blocks)

		r := int(nReplicas%5) + 1
		replicas := make([]*Index, r)
		for i := range replicas {
			replicas[i] = New(0)
		}
		// Round-robin distribution, like the pipeline's.
		i := 0
		ids := make([]postings.FileID, 0, len(blocks))
		for id := range blocks {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			replicas[i%r].AddBlock(id, blocks[id], nil)
			i++
		}
		got := JoinAll(replicas)
		return got.Equal(want)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParallelJoinEqualsSequentialJoin(t *testing.T) {
	for _, nReplicas := range []int{1, 2, 3, 5, 8, 16} {
		for _, workers := range []int{1, 2, 4} {
			rng := rand.New(rand.NewSource(int64(nReplicas*100 + workers)))
			blocks := randomBlocks(rng, 60, 30)
			want := referenceIndex(blocks)

			build := func() []*Index {
				replicas := make([]*Index, nReplicas)
				for i := range replicas {
					replicas[i] = New(0)
				}
				i := 0
				ids := make([]postings.FileID, 0, len(blocks))
				for id := range blocks {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
				for _, id := range ids {
					replicas[i%nReplicas].AddBlock(id, blocks[id], nil)
					i++
				}
				return replicas
			}
			got := ParallelJoin(build(), workers)
			if !got.Equal(want) {
				t.Fatalf("ParallelJoin(%d replicas, %d workers) diverged", nReplicas, workers)
			}
			if got.NumPostings() != want.NumPostings() {
				t.Fatalf("posting count diverged: %d vs %d", got.NumPostings(), want.NumPostings())
			}
		}
	}
}

func TestJoinAllEmpty(t *testing.T) {
	if ix := JoinAll(nil); ix.NumTerms() != 0 {
		t.Error("JoinAll(nil) not empty")
	}
	if ix := ParallelJoin(nil, 4); ix.NumTerms() != 0 {
		t.Error("ParallelJoin(nil) not empty")
	}
}

func TestSharedConcurrentAddBlock(t *testing.T) {
	s := NewShared(0)
	const workers = 8
	const filesPerWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for f := 0; f < filesPerWorker; f++ {
				id := postings.FileID(w*filesPerWorker + f)
				s.AddBlock(id, []string{"common", fmt.Sprintf("w%d", w), fmt.Sprintf("f%d", f)}, nil)
			}
		}(w)
	}
	wg.Wait()
	ix := s.Unwrap()
	if got := ix.Lookup("common").Len(); got != workers*filesPerWorker {
		t.Errorf("common has %d postings, want %d", got, workers*filesPerWorker)
	}
	// Per-worker terms appear in exactly filesPerWorker files.
	for w := 0; w < workers; w++ {
		if got := ix.Lookup(fmt.Sprintf("w%d", w)).Len(); got != filesPerWorker {
			t.Errorf("w%d has %d postings", w, got)
		}
	}
}

func TestSharedConcurrentAddTermOccurrence(t *testing.T) {
	s := NewShared(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.AddTermOccurrence("hot", postings.FileID(i%10))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Unwrap().Lookup("hot").Len(); got != 10 {
		t.Errorf("hot has %d postings, want 10", got)
	}
}
