// Incremental: keep a catalog in step with a changing file tree.
//
// The paper builds its index in one batch; a real desktop search tool must
// also follow the user's edits. This example builds a sharded catalog with
// the batch pipeline, persists it, then drives it through the public
// incremental API — Catalog.Update — as files are created, edited, and
// deleted, checking after every step that the incrementally maintained
// catalog answers exactly like a fresh rebuild of the current tree, and
// that saving the update back rewrites only the segments it dirtied.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"desksearch"
	"desksearch/internal/vfs"
)

func main() {
	fs := vfs.NewMemFS()
	write := func(name, content string) {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			log.Fatal(err)
		}
	}
	write("inbox/1.txt", "meeting notes budget review")
	write("inbox/2.txt", "lunch plans")
	write("projects/plan.txt", "project plan budget draft")

	opts := desksearch.Options{Implementation: desksearch.Sequential, Shards: 2}
	cat, err := desksearch.IndexFS(fs, ".", opts)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "incremental-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := cat.SaveDir(dir); err != nil {
		log.Fatal(err)
	}

	report := func(when string) {
		resp, err := cat.Query(context.Background(), desksearch.Query{Text: "budget"})
		if err != nil {
			log.Fatal(err)
		}
		s := cat.Stats()
		fmt.Printf("%-28s budget matches %d file(s); %d files, %d postings\n",
			when+":", resp.Total, s.Files, s.Postings)
	}
	report("initial build")

	// The user deletes a file: Update tombstones its FileID and drops its
	// postings in place — no re-walk of the unchanged files.
	if err := fs.Remove("projects/plan.txt"); err != nil {
		log.Fatal(err)
	}
	st, err := cat.Update(fs, ".")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete: %d file removed, %d postings dropped\n",
		st.Deleted, st.PostingsRemoved)
	report("after delete")

	// The user edits one file and creates another: one Update re-extracts
	// exactly those two and routes their term blocks to the owning shards.
	write("inbox/2.txt", "lunch plans moved, budget discussion instead")
	write("inbox/3.txt", "new budget spreadsheet attached")
	if st, err = cat.Update(fs, "."); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after edits: +%d added, ~%d modified (+%d postings)\n",
		st.Added, st.Modified, st.PostingsAdded)
	report("after edits")

	// Persist the delta: only the dirtied segments are rewritten.
	fmt.Printf("saving back: %d/2 segments dirty\n", cat.DirtySegments())
	if err := cat.SaveDir(dir); err != nil {
		log.Fatal(err)
	}

	// Cross-check: the incrementally maintained catalog, and a reload of
	// what it saved, must answer exactly like a fresh rebuild of the tree.
	fresh, err := desksearch.IndexFS(fs, ".", opts)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := desksearch.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []string{"budget", "plans -lunch", "-budget", "meeting OR spreadsheet"} {
		want := resultSet(fresh, q)
		if got := resultSet(cat, q); got != want {
			log.Fatalf("%q: incremental %q diverged from rebuild %q", q, got, want)
		}
		if got := resultSet(reloaded, q); got != want {
			log.Fatalf("%q: reloaded %q diverged from rebuild %q", q, got, want)
		}
	}
	fmt.Println("incremental catalog verified against a fresh rebuild ✓")
}

// resultSet renders a query's hits as a canonical sorted "path=score,..."
// string for comparison across catalogs. Paths and scores must agree;
// result order may not, because an incrementally maintained catalog
// assigns different FileIDs (the tie-breaker) than a fresh build.
func resultSet(cat *desksearch.Catalog, query string) string {
	resp, err := cat.Query(context.Background(), desksearch.Query{Text: query})
	if err != nil {
		log.Fatal(err)
	}
	lines := make([]string, len(resp.Hits))
	for i, h := range resp.Hits {
		lines[i] = fmt.Sprintf("%s=%g", h.Path, h.Score)
	}
	sort.Strings(lines)
	return strings.Join(lines, ",")
}
