package search

import "sort"

// topK retains the best k scored hits seen under hitLess, in a bounded
// min-heap with the worst retained hit at the root. Considering a hit is
// O(1) when it does not beat the current worst — the overwhelmingly common
// case once the heap warms up — and O(log k) otherwise, so a partition
// ranks its page contribution in O(m log k) instead of the O(m log m) full
// sort the v1 engine paid per query.
type topK struct {
	k int
	h []scored
}

// newTopK returns a collector for the best k hits; k <= 0 collects
// nothing (callers use a plain slice for unbounded retrieval).
func newTopK(k int) *topK {
	if k < 0 {
		k = 0
	}
	return &topK{k: k, h: make([]scored, 0, min(k, 1024))}
}

// worse reports whether a ranks below b — the heap's ordering, with the
// worst retained hit at the root.
func worse(a, b scored) bool { return hitLess(b.hit, a.hit) }

// full reports whether the heap holds its k hits — only then does the
// worst retained hit define a meaningful skip threshold, and it can only
// rise from there (consider never replaces the root with a worse hit).
func (t *topK) full() bool { return t.k > 0 && len(t.h) == t.k }

// worst returns the worst retained hit (the heap root); valid only when
// full.
func (t *topK) worst() Hit { return t.h[0].hit }

// consider offers a hit: it is retained iff fewer than k hits are held or
// it beats the worst retained hit, which it then evicts.
func (t *topK) consider(s scored) {
	if t.k == 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, s)
		t.up(len(t.h) - 1)
		return
	}
	if hitLess(s.hit, t.h[0].hit) {
		t.h[0] = s
		t.down(0)
	}
}

// ranked destructively sorts the retained hits best-first and returns them.
func (t *topK) ranked() []scored {
	sortScored(t.h)
	return t.h
}

func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(t.h[i], t.h[parent]) {
			break
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *topK) down(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && worse(t.h[l], t.h[worst]) {
			worst = l
		}
		if r < n && worse(t.h[r], t.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}

// sortScored orders hits best-first under hitLess.
func sortScored(hits []scored) {
	sort.Slice(hits, func(i, j int) bool { return hitLess(hits[i].hit, hits[j].hit) })
}
