// Package sim is a deterministic discrete-event simulation engine.
//
// It is the hardware substitute of this reproduction: the paper's three
// evaluation machines (4-, 8-, and 32-core Intel systems with their disks)
// are modelled as simulator resources with calibrated service times, so the
// full 51,000-file experiment grid runs in seconds of host time and yields
// identical results on every machine.
//
// The engine is continuation-passing: model code never blocks. A simulated
// thread is a chain of callbacks; waiting is expressed by passing the rest
// of the computation to After, Resource.Acquire, or Semaphore.P. All
// continuations are dispatched through the event queue in (time, sequence)
// order, which makes runs deterministic and keeps callback stacks shallow.
package sim

import "container/heap"

// Engine is a discrete-event scheduler. The zero value is not ready; use
// NewEngine.
type Engine struct {
	now    float64
	events eventHeap
	seq    uint64
	steps  uint64
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events dispatched so far.
func (e *Engine) Steps() uint64 { return e.steps }

// After schedules fn to run d seconds from now. Negative d is treated as 0.
// Events scheduled for the same instant run in scheduling order.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + d, seq: e.seq, fn: fn})
}

// Run dispatches events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() float64 {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.steps++
		ev.fn()
	}
	return e.now
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Resource is an m-server FIFO queue: up to Capacity holders at once,
// waiters served in arrival order. It models cores (capacity = core
// count), disks (capacity = command queue depth), and locks (capacity 1).
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func()
	// peakUse tracks the high-water mark for tests and utilization stats.
	peakUse int
	// busy accumulates holder-seconds for utilization reporting.
	busy       float64
	lastChange float64
}

// NewResource returns a resource with the given capacity (min 1).
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Acquire grants one unit to cont, immediately if a unit is free, otherwise
// when one is released. cont runs via the event queue.
func (r *Resource) Acquire(cont func()) {
	if r.inUse < r.capacity {
		r.grant(cont)
		return
	}
	r.waiters = append(r.waiters, cont)
}

func (r *Resource) grant(cont func()) {
	r.accumulate()
	r.inUse++
	if r.inUse > r.peakUse {
		r.peakUse = r.inUse
	}
	r.eng.After(0, cont)
}

// Release returns one unit; the longest-waiting Acquire (if any) is granted.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if len(r.waiters) > 0 {
		cont := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Hand the unit straight to the waiter: inUse is unchanged, but
		// busy-time accounting continues.
		r.eng.After(0, cont)
		return
	}
	r.accumulate()
	r.inUse--
}

// Use acquires a unit, holds it for d seconds, releases it, then runs cont.
func (r *Resource) Use(d float64, cont func()) {
	r.Acquire(func() {
		r.eng.After(d, func() {
			r.Release()
			cont()
		})
	})
}

// InUse returns the number of currently granted units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// QueueLen returns the number of blocked Acquires.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// PeakUse returns the maximum concurrent holders observed.
func (r *Resource) PeakUse() int { return r.peakUse }

// BusySeconds returns accumulated holder-seconds up to the current time.
func (r *Resource) BusySeconds() float64 {
	r.accumulate()
	return r.busy
}

func (r *Resource) accumulate() {
	r.busy += float64(r.inUse) * (r.eng.now - r.lastChange)
	r.lastChange = r.eng.now
}

// Semaphore is a counting semaphore that may start at zero; unlike
// Resource, permits are created by V, so it models producer/consumer
// hand-off (the bounded buffer between extractors and updaters).
type Semaphore struct {
	eng     *Engine
	count   int
	waiters []func()
}

// NewSemaphore returns a semaphore with the given initial permit count.
func NewSemaphore(eng *Engine, initial int) *Semaphore {
	if initial < 0 {
		initial = 0
	}
	return &Semaphore{eng: eng, count: initial}
}

// P takes a permit, running cont immediately if one is available or when
// the next V supplies one. Waiters are served FIFO.
func (s *Semaphore) P(cont func()) {
	if s.count > 0 {
		s.count--
		s.eng.After(0, cont)
		return
	}
	s.waiters = append(s.waiters, cont)
}

// V supplies one permit.
func (s *Semaphore) V() {
	if len(s.waiters) > 0 {
		cont := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.After(0, cont)
		return
	}
	s.count++
}

// Count returns the available permits.
func (s *Semaphore) Count() int { return s.count }

// Waiting returns the number of blocked P calls.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// WaitGroup counts down pending simulated activities and runs a completion
// callback at zero — the barrier before "Join Forces".
type WaitGroup struct {
	eng     *Engine
	pending int
	done    []func()
}

// NewWaitGroup returns a WaitGroup expecting pending completions.
func NewWaitGroup(eng *Engine, pending int) *WaitGroup {
	return &WaitGroup{eng: eng, pending: pending}
}

// Done signals one completion.
func (w *WaitGroup) Done() {
	if w.pending <= 0 {
		panic("sim: WaitGroup.Done below zero")
	}
	w.pending--
	if w.pending == 0 {
		for _, fn := range w.done {
			w.eng.After(0, fn)
		}
		w.done = nil
	}
}

// Wait schedules fn once the count reaches zero (immediately if already
// zero).
func (w *WaitGroup) Wait(fn func()) {
	if w.pending == 0 {
		w.eng.After(0, fn)
		return
	}
	w.done = append(w.done, fn)
}
