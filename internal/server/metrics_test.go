package server

import (
	"bufio"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and parses every sample line into a map from
// series (name plus label set, verbatim) to value.
func scrape(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsAdvanceUnderLoad pins the acceptance criterion: /metrics
// speaks Prometheus text format and its query and cache counters move
// when traffic flows.
func TestMetricsAdvanceUnderLoad(t *testing.T) {
	f := newFixture(t, Config{})

	before := scrape(t, f.ts.URL)
	for _, series := range []string{
		"ds_queries_total",
		"ds_query_errors_total",
		"ds_cache_hits_total",
		"ds_cache_misses_total",
		"ds_reloads_total",
		"ds_generation",
		"ds_block_cache_used_bytes",
	} {
		if _, ok := before[series]; !ok {
			t.Errorf("series %q missing from first scrape", series)
		}
	}

	// Load: two fresh queries, the same query repeated (cache hits), one
	// malformed query, one evaluation error, and a suggest.
	for _, q := range []string{"report", "alpha", "report", "report"} {
		if code := f.get(t, "/search?q="+url.QueryEscape(q), nil); code != http.StatusOK {
			t.Fatalf("search %q: status %d", q, code)
		}
	}
	if code := f.get(t, "/search?q=report&limit=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed limit: status %d", code)
	}
	if code := f.get(t, `/search?q=%22quarterly+report%22`, nil); code != http.StatusBadRequest {
		t.Fatalf("phrase without positions: status %d", code)
	}
	if code := f.get(t, "/suggest?q=rep", nil); code != http.StatusOK {
		t.Fatalf("suggest: status %d", code)
	}

	after := scrape(t, f.ts.URL)
	// Accepted queries: searches 1–4 plus the failed phrase evaluation
	// plus the suggest; the malformed limit never reaches evaluation.
	wantDelta := map[string]float64{
		"ds_queries_total":      6,
		"ds_query_errors_total": 1,
		"ds_cache_hits_total":   2,
		"ds_cache_misses_total": 3, // report, alpha, and the failed phrase evaluation
	}
	for series, want := range wantDelta {
		got := after[series] - before[series]
		if got != want {
			t.Errorf("%s advanced by %v, want %v", series, got, want)
		}
	}

	// The labeled request counter partitions by outcome.
	for series, want := range map[string]float64{
		`ds_requests_total{endpoint="search",outcome="ok"}`:          4,
		`ds_requests_total{endpoint="search",outcome="bad_request"}`: 1,
		`ds_requests_total{endpoint="search",outcome="error"}`:       1,
		`ds_requests_total{endpoint="suggest",outcome="ok"}`:         1,
	} {
		if got := after[series] - before[series]; got != want {
			t.Errorf("%s advanced by %v, want %v", series, got, want)
		}
	}

	// Latency histograms: one observation per finished search request.
	if got := after[`ds_search_duration_seconds_count`] - before[`ds_search_duration_seconds_count`]; got != 6 {
		t.Errorf("ds_search_duration_seconds_count advanced by %v, want 6", got)
	}
	if after[`ds_search_duration_seconds_bucket{le="+Inf"}`] != after[`ds_search_duration_seconds_count`] {
		t.Errorf("+Inf bucket %v != count %v",
			after[`ds_search_duration_seconds_bucket{le="+Inf"}`], after[`ds_search_duration_seconds_count`])
	}

	// A reload advances the reload counter at scrape time.
	resp, err := http.Post(f.ts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := scrape(t, f.ts.URL)
	if got := final["ds_reloads_total"] - after["ds_reloads_total"]; got != 1 {
		t.Errorf("ds_reloads_total advanced by %v after /reload, want 1", got)
	}
}
