package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
)

// paperShape is the full 51k-file corpus metadata: the profiles' Table 1
// targets are absolute seconds for this benchmark, so experiments must run
// at full shape (the simulator makes that cheap).
var (
	statsOnce sync.Once
	statsVal  corpus.Stats
)

func paperShape() corpus.Stats {
	statsOnce.Do(func() { statsVal = corpus.Describe(corpus.PaperSpec()) })
	return statsVal
}

func fastSweep() SweepOptions {
	// Reduced grid and single rep keep the test suite quick; the shape
	// assertions hold on the full grid too (cmd/experiments runs it).
	return SweepOptions{Reps: 1, Batch: 32, Jitter: 0.005, Seed: 1, MaxExtractors: 10, MaxUpdaters: 5}
}

func TestTableNumber(t *testing.T) {
	for _, tc := range []struct {
		p    platform.Profile
		want int
	}{
		{platform.QuadCore(), 2},
		{platform.Xeon8(), 3},
		{platform.Manycore32(), 4},
	} {
		got, err := TableNumber(tc.p)
		if err != nil || got != tc.want {
			t.Errorf("%s: %d, %v", tc.p.Name, got, err)
		}
	}
	if _, err := TableNumber(platform.Profile{Cores: 7}); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestPaperDataTranscription(t *testing.T) {
	// Spot-check the embedded reference numbers against the paper text.
	if PaperSequential[2] != 220 || PaperSequential[3] != 105 || PaperSequential[4] != 90 {
		t.Error("sequential baselines wrong")
	}
	if PaperBest[4][core.ReplicatedSearch].Speedup != 3.50 {
		t.Error("Table 4 Impl3 speed-up wrong")
	}
	if PaperBest[2][core.SharedIndex].Tuple != "(3, 1, 0)" {
		t.Error("Table 2 Impl1 tuple wrong")
	}
	if len(PaperTable1) != 3 || PaperTable1[1].Read != 47 {
		t.Error("Table 1 transcription wrong")
	}
	for tbl := 2; tbl <= 4; tbl++ {
		if len(PaperBest[tbl]) != 3 {
			t.Errorf("table %d has %d implementations", tbl, len(PaperBest[tbl]))
		}
	}
}

func TestRunTable1MatchesPaper(t *testing.T) {
	res := RunTable1(paperShape())
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Unit costs are derived from the Table 1 targets, so the modeled
		// stage times must land on the paper's values for any corpus.
		pairs := []struct{ got, want float64 }{
			{row.Filename, row.Paper.Filename},
			{row.Read, row.Paper.Read},
			{row.ReadExtract, row.Paper.ReadExtract},
			{row.Insert, row.Paper.Insert},
		}
		for i, pr := range pairs {
			if math.Abs(pr.got-pr.want) > 0.6 {
				t.Errorf("%s col %d: %.2f vs paper %.2f", row.Platform, i, pr.got, pr.want)
			}
		}
	}
}

func TestTable1Render(t *testing.T) {
	res := RunTable1(paperShape())
	out := res.Render()
	for _, want := range []string{"Table 1", "4-core Intel machine", "read files", "index update"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	cmp := res.RenderComparison()
	if !strings.Contains(cmp, "/") || !strings.Contains(cmp, "77.0") {
		t.Errorf("comparison missing paper values:\n%s", cmp)
	}
}

func TestRunBestConfigsTable4Shape(t *testing.T) {
	res, err := RunBestConfigs(platform.Manycore32(), paperShape(), fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if res.TableNo != 4 {
		t.Fatalf("TableNo = %d", res.TableNo)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	c1, c2, c3 := res.Cells[0], res.Cells[1], res.Cells[2]
	if c1.Implementation != core.SharedIndex || c3.Implementation != core.ReplicatedSearch {
		t.Fatal("cell order wrong")
	}
	// The paper's headline: Impl1 slowest, Impl3 fastest, gaps material.
	if !(c1.Exec > c2.Exec && c2.Exec > c3.Exec) {
		t.Errorf("exec ordering: %.1f / %.1f / %.1f", c1.Exec, c2.Exec, c3.Exec)
	}
	if c3.Speedup < 2.8 || c3.Speedup > 4.2 {
		t.Errorf("Impl3 speed-up %.2f, paper 3.50", c3.Speedup)
	}
	if math.Abs(c1.Speedup-1.96)/1.96 > 0.25 {
		t.Errorf("Impl1 speed-up %.2f, paper 1.96", c1.Speedup)
	}
	// Variance column: Impl1 is the reference (0), the others positive.
	if c1.Variance != 0 {
		t.Errorf("Impl1 variance %.3f", c1.Variance)
	}
	if c2.Variance <= 0 || c3.Variance <= c2.Variance {
		t.Errorf("variance ordering: %.3f, %.3f", c2.Variance, c3.Variance)
	}
}

func TestRunBestConfigsTable2Equivalence(t *testing.T) {
	res, err := RunBestConfigs(platform.QuadCore(), paperShape(), fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if res.TableNo != 2 {
		t.Fatalf("TableNo = %d", res.TableNo)
	}
	// All three implementations within 10% of each other.
	lo, hi := math.Inf(1), 0.0
	for _, c := range res.Cells {
		lo = math.Min(lo, c.Exec)
		hi = math.Max(hi, c.Exec)
	}
	if hi/lo > 1.10 {
		t.Errorf("4-core implementations not equivalent: %.1f..%.1f", lo, hi)
	}
	// Speed-ups near the paper's ≈4.7.
	for _, c := range res.Cells {
		if c.Speedup < 4.0 || c.Speedup > 5.6 {
			t.Errorf("%v speed-up %.2f, paper ≈4.7", c.Implementation, c.Speedup)
		}
	}
	// Sequential baseline calibrated to the paper's.
	if math.Abs(res.Sequential-220)/220 > 0.05 {
		t.Errorf("sequential %.1f, paper 220", res.Sequential)
	}
}

func TestRunBestConfigsTable3Ordering(t *testing.T) {
	res, err := RunBestConfigs(platform.Xeon8(), paperShape(), fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	c1, c2, c3 := res.Cells[0], res.Cells[1], res.Cells[2]
	if !(c1.Exec >= c2.Exec && c2.Exec >= c3.Exec) {
		t.Errorf("8-core ordering: %.1f / %.1f / %.1f", c1.Exec, c2.Exec, c3.Exec)
	}
	// Speed-ups compressed toward ≈2 by the disk floor.
	for _, c := range res.Cells {
		if c.Speedup < 1.4 || c.Speedup > 2.5 {
			t.Errorf("%v speed-up %.2f outside the paper's 1.76–2.12 region", c.Implementation, c.Speedup)
		}
	}
}

func TestBestConfigRender(t *testing.T) {
	res, err := RunBestConfigs(platform.Manycore32(), paperShape(), fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Table 4", "Sequential", "Implementation 1", "Implementation 3", "speed-up", "variance", "("} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	cmp := res.RenderComparison()
	for _, want := range []string{"model vs paper", "(9, 4, 0)", "3.50"} {
		if !strings.Contains(cmp, want) {
			t.Errorf("comparison missing %q:\n%s", want, cmp)
		}
	}
}

func TestRunBestConfigsRejectsUnknownPlatform(t *testing.T) {
	p := platform.QuadCore()
	p.Cores = 6
	if _, err := RunBestConfigs(p, paperShape(), fastSweep()); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestScalingCurveShapes(t *testing.T) {
	o := fastSweep()
	// Implementation 1 on the 32-core platform flattens against the lock:
	// the curve's best speed-up stays near 2 even at x=16.
	lockBound, err := RunScalingCurve(platform.Manycore32(), paperShape(), core.SharedIndex, 16, o)
	if err != nil {
		t.Fatal(err)
	}
	if best := lockBound.Best(); best.Speedup > 2.4 {
		t.Errorf("Impl1 curve reached %.2fx — lock bound missing", best.Speedup)
	}
	// Implementation 3 keeps climbing well past it.
	free, err := RunScalingCurve(platform.Manycore32(), paperShape(), core.ReplicatedSearch, 16, o)
	if err != nil {
		t.Fatal(err)
	}
	if best := free.Best(); best.Speedup < 3.0 {
		t.Errorf("Impl3 curve peaked at %.2fx, want ≥3", best.Speedup)
	}
	// Both curves rise from x=1 (no speed-up) toward their plateaus.
	if free.Points[0].Speedup > 2.0 {
		t.Errorf("x=1 speed-up %.2f implausibly high", free.Points[0].Speedup)
	}
	if len(free.Points) != 16 {
		t.Errorf("%d points", len(free.Points))
	}
	out := free.Render()
	for _, want := range []string{"Implementation 3", "x= 1", "x=16", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("curve render missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllProducesFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report sweep")
	}
	o := fastSweep()
	o.MaxExtractors = 6
	o.MaxUpdaters = 3
	report, err := RunAll(paperShape(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "model vs paper"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
