package broker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"desksearch/internal/server"
)

// WorkerMetaView aliases the worker's /internal/meta response shape; the
// broker consumes exactly what the server package serves.
type WorkerMetaView = server.WorkerMeta

// maxResponseBytes bounds how much of a worker response the broker will
// buffer — a malfunctioning worker must not balloon the broker's heap.
const maxResponseBytes = 64 << 20

// httpDoer is the slice of *http.Client the broker uses; tests substitute
// their own.
type httpDoer interface {
	Do(*http.Request) (*http.Response, error)
}

// newHTTPClient returns the broker's transport. No client-level timeout:
// every request carries a context deadline, and a fixed client timeout
// would fight the per-attempt budgets.
func newHTTPClient() httpDoer {
	return &http.Client{}
}

// WorkerError is a deterministic worker rejection (HTTP 4xx) surfaced
// through the broker: the query itself is at fault — unparseable text,
// unknown ranking, over-broad prefix — so no replica retry can help, and
// the status propagates to the client as-is.
type WorkerError struct {
	Status  int
	Message string
	// Code is the worker's machine-readable error code ("prefix_too_broad",
	// "no_positions", ...), forwarded verbatim so clients behind the broker
	// can branch on it exactly as they would against a single node.
	Code string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("worker rejected request (HTTP %d): %s", e.Status, e.Message)
}

// do issues one HTTP request and buffers the response.
func (b *Broker) do(ctx context.Context, method, url string, body []byte) (status int, respBody []byte, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// decodeErrorBody extracts the server's {"error": ..., "code": ...}
// message and optional machine-readable code, falling back to the raw
// body.
func decodeErrorBody(body []byte) (msg, code string) {
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error, e.Code
	}
	s := string(body)
	if len(s) > 200 {
		s = s[:200]
	}
	return s, ""
}

// fetchMeta retrieves one worker's /internal/meta.
func (b *Broker) fetchMeta(ctx context.Context, base string) (WorkerMetaView, error) {
	var m WorkerMetaView
	status, body, err := b.do(ctx, http.MethodGet, base+"/internal/meta", nil)
	if err != nil {
		return m, err
	}
	if status != http.StatusOK {
		msg, _ := decodeErrorBody(body)
		return m, fmt.Errorf("HTTP %d: %s", status, msg)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return m, fmt.Errorf("malformed meta: %w", err)
	}
	return m, nil
}

// probeHealth reports whether a worker's /healthz answers 200.
func (b *Broker) probeHealth(ctx context.Context, base string) bool {
	status, _, err := b.do(ctx, http.MethodGet, base+"/healthz", nil)
	return err == nil && status == http.StatusOK
}

// doGroup runs one request against a replica group with rotation,
// failover, and hedging, decoding the winning 200 response into out.
//
// The primary attempt goes to the group's next healthy replica. Two
// things bring the next replica into play: a retryable failure
// (connection error, per-attempt timeout, 5xx) starts it immediately —
// the failover path — and the hedge timer starts it speculatively while
// the primary is merely slow. Whichever outstanding attempt answers 200
// first wins; the rest are cancelled by the shared context when the
// caller's request completes. A 4xx stops everything at once: it is the
// request that is broken, not the replica.
func (b *Broker) doGroup(ctx context.Context, g *group, method, path string, body []byte, out any) error {
	cands := g.candidates()
	gctx, gcancel := context.WithCancel(ctx)
	defer gcancel()

	type result struct {
		idx    int
		status int
		body   []byte
		err    error
		took   time.Duration
	}
	results := make(chan result, len(cands))
	attemptTO := b.attemptTimeout(g)
	launch := func(i int) {
		go func() {
			actx, acancel := context.WithTimeout(gctx, attemptTO)
			defer acancel()
			start := time.Now()
			status, respBody, err := b.do(actx, method, cands[i].url+path, body)
			results <- result{idx: i, status: status, body: respBody, err: err, took: time.Since(start)}
		}()
	}
	launch(0)
	inflight, next := 1, 1

	hedge := time.NewTimer(b.hedgeDelay(g))
	defer hedge.Stop()

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-hedge.C:
			if next < len(cands) {
				b.hedges.Add(1)
				launch(next)
				next++
				inflight++
			}
		case res := <-results:
			inflight--
			switch {
			case res.err == nil && res.status == http.StatusOK:
				g.window.Observe(res.took)
				if res.idx > 0 {
					b.hedgeWins.Add(1)
				}
				if out != nil {
					if err := json.Unmarshal(res.body, out); err != nil {
						return fmt.Errorf("broker: %s: malformed response: %w", cands[res.idx].url, err)
					}
				}
				return nil
			case res.err == nil && res.status >= 400 && res.status < 500:
				msg, code := decodeErrorBody(res.body)
				return &WorkerError{Status: res.status, Message: msg, Code: code}
			default:
				err := res.err
				if err == nil {
					msg, _ := decodeErrorBody(res.body)
					err = fmt.Errorf("HTTP %d: %s", res.status, msg)
				}
				lastErr = fmt.Errorf("%s: %w", cands[res.idx].url, err)
				// A connection-level failure delists the replica until the
				// health loop clears it; a timeout is just slowness and a
				// cancellation is the caller's doing — neither says the
				// replica is down.
				if res.err != nil && !errors.Is(res.err, context.DeadlineExceeded) && !errors.Is(res.err, context.Canceled) {
					cands[res.idx].healthy.Store(false)
				}
				if next < len(cands) {
					b.failovers.Add(1)
					b.logf("broker: failing over from %s: %v", cands[res.idx].url, err)
					launch(next)
					next++
					inflight++
				} else if inflight == 0 {
					return fmt.Errorf("broker: all %d replica(s) failed, last: %w", len(cands), lastErr)
				}
			}
		}
	}
}
