package tokenize

import "desksearch/internal/container"

// StopSet is an immutable set of stop words (terms excluded from the index).
type StopSet struct {
	set *container.HashSet
}

// NewStopSet builds a StopSet from the given words. Words are expected in
// lower case, matching the scanner's output.
func NewStopSet(words []string) *StopSet {
	s := container.NewHashSet(len(words))
	for _, w := range words {
		s.Add(w)
	}
	return &StopSet{set: s}
}

// Contains reports whether term is a stop word.
func (s *StopSet) Contains(term string) bool { return s.set.Contains(term) }

// Len returns the number of stop words.
func (s *StopSet) Len() int { return s.set.Len() }

// EnglishStopwords is a conventional small English stop-word list. The
// paper's generator indexes every term; the list is provided for the
// desktop-search frontend, where stop words bloat the index without
// improving retrieval.
var EnglishStopwords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
	"in", "into", "is", "it", "no", "not", "of", "on", "or", "such", "that",
	"the", "their", "then", "there", "these", "they", "this", "to", "was",
	"will", "with",
}
