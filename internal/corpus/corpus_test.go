package corpus

import (
	"strings"
	"testing"
	"testing/quick"

	"desksearch/internal/container"
	"desksearch/internal/docfmt"
	"desksearch/internal/tokenize"
	"desksearch/internal/vfs"
)

func testSpec() Spec {
	return Spec{
		Files:              60,
		TotalBytes:         300 << 10,
		LargeFiles:         3,
		LargeBytesFraction: 0.3,
		VocabSize:          2000,
		ZipfS:              1.2,
		MinTermLen:         2,
		MaxTermLen:         10,
		FilesPerDir:        8,
		DirFanout:          4,
		HTMLFraction:       0.15,
		WPFraction:         0.15,
		Seed:               42,
	}
}

func TestDescribeShape(t *testing.T) {
	spec := testSpec()
	stats := Describe(spec)
	if len(stats.Files) != spec.Files {
		t.Fatalf("got %d files, want %d", len(stats.Files), spec.Files)
	}
	// Total bytes within 5% of the requested volume (rounding + minimums).
	lo, hi := spec.TotalBytes*95/100, spec.TotalBytes*105/100
	if stats.TotalBytes < lo || stats.TotalBytes > hi {
		t.Errorf("TotalBytes = %d, want within [%d, %d]", stats.TotalBytes, lo, hi)
	}
	// The large files dominate individually.
	largeSize := stats.Files[0].Size
	for _, f := range stats.Files[spec.LargeFiles:] {
		if f.Size >= largeSize {
			t.Errorf("small file %s (%d bytes) >= large file size %d", f.Path, f.Size, largeSize)
		}
	}
	for _, f := range stats.Files {
		if f.Size <= 0 {
			t.Errorf("%s has size %d", f.Path, f.Size)
		}
		if f.Terms <= 0 {
			t.Errorf("%s has %d terms", f.Path, f.Terms)
		}
		if f.Unique <= 0 || f.Unique > f.Terms {
			t.Errorf("%s unique=%d terms=%d", f.Path, f.Unique, f.Terms)
		}
		if f.Unique > spec.VocabSize {
			t.Errorf("%s unique exceeds vocabulary", f.Path)
		}
	}
}

func TestDescribeDeterministic(t *testing.T) {
	a := Describe(testSpec())
	b := Describe(testSpec())
	if len(a.Files) != len(b.Files) {
		t.Fatal("nondeterministic file count")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs: %+v vs %+v", i, a.Files[i], b.Files[i])
		}
	}
	spec2 := testSpec()
	spec2.Seed = 43
	c := Describe(spec2)
	same := true
	for i := range a.Files {
		if a.Files[i].Size != c.Files[i].Size {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical size layouts")
	}
}

func TestFilePathsUniqueAndTreeShaped(t *testing.T) {
	stats := Describe(testSpec())
	seen := map[string]bool{}
	for _, f := range stats.Files {
		if seen[f.Path] {
			t.Fatalf("duplicate path %s", f.Path)
		}
		seen[f.Path] = true
		if strings.HasPrefix(f.Path, "large-") {
			continue
		}
		if !strings.Contains(f.Path, "/") {
			t.Errorf("small file %s not in a directory", f.Path)
		}
		if !strings.HasSuffix(f.Path, ".txt") && !strings.HasSuffix(f.Path, ".html") && !strings.HasSuffix(f.Path, ".wp") {
			t.Errorf("unexpected extension: %s", f.Path)
		}
	}
}

func TestGenerateMatchesDescribe(t *testing.T) {
	spec := testSpec()
	fs := vfs.NewMemFS()
	gen, err := Generate(spec, fs)
	if err != nil {
		t.Fatal(err)
	}
	desc := Describe(spec)
	if len(gen.Files) != len(desc.Files) {
		t.Fatal("Generate and Describe disagree on file count")
	}
	for i := range gen.Files {
		if gen.Files[i].Path != desc.Files[i].Path || gen.Files[i].Size != desc.Files[i].Size {
			t.Fatalf("file %d metadata differs: %+v vs %+v", i, gen.Files[i], desc.Files[i])
		}
	}
	// Every described file exists with approximately the described size
	// (format wrappers may shift by a few bytes).
	for _, f := range gen.Files {
		data, err := fs.ReadFile(f.Path)
		if err != nil {
			t.Fatalf("%s: %v", f.Path, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", f.Path)
		}
		diff := int64(len(data)) - f.Size
		if diff < -64 || diff > 64 {
			t.Errorf("%s: wrote %d bytes, described %d", f.Path, len(data), f.Size)
		}
	}
}

func TestGeneratedContentIsIndexable(t *testing.T) {
	spec := testSpec()
	fs := vfs.NewMemFS()
	stats, err := Generate(spec, fs)
	if err != nil {
		t.Fatal(err)
	}
	vocabSet := container.NewHashSet(spec.VocabSize)
	for _, w := range BuildVocabulary(spec) {
		vocabSet.Add(w)
	}
	checked := 0
	for _, f := range stats.Files {
		if f.Size > 32<<10 {
			continue // keep the test fast; large files share the generator
		}
		data, err := fs.ReadFile(f.Path)
		if err != nil {
			t.Fatal(err)
		}
		text := docfmt.Extract(f.Path, data)
		terms := tokenize.Terms(text, tokenize.Default)
		if len(terms) == 0 {
			t.Fatalf("%s produced no terms", f.Path)
		}
		// Every term must come from the vocabulary (formats may split a
		// trailing truncated word; allow the last term to be arbitrary).
		for _, term := range terms[:len(terms)-1] {
			if !vocabSet.Contains(term) && !isFormatArtifact(term) {
				t.Fatalf("%s: term %q not in vocabulary", f.Path, term)
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d files checked", checked)
	}
}

// isFormatArtifact reports format-wrapper tokens ("1", "0" from ".wp 1.0",
// "p" from HTML structure) that legitimately appear outside the vocabulary.
func isFormatArtifact(term string) bool {
	switch term {
	case "0", "1", "p", "wp", "pp", "doctype", "html", "body":
		return true
	}
	return false
}

// TestHeapsApproxTracksMeasured validates the unique-terms model against a
// real generated corpus: per-file modelled unique counts must be within a
// factor of three of measured ones (the model drives simulator costs, where
// shape matters, not exactness).
func TestHeapsApproxTracksMeasured(t *testing.T) {
	spec := testSpec()
	spec.HTMLFraction, spec.WPFraction = 0, 0 // formats perturb term counts
	fs := vfs.NewMemFS()
	stats, err := Generate(spec, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range stats.Files {
		data, err := fs.ReadFile(f.Path)
		if err != nil {
			t.Fatal(err)
		}
		set := container.NewHashSet(1024)
		tokenize.Scan(data, tokenize.Default, func(term string) { set.Add(term) })
		measured := set.Len()
		if measured == 0 {
			t.Fatalf("%s: no terms", f.Path)
		}
		ratio := float64(f.Unique) / float64(measured)
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: modelled unique %d vs measured %d (ratio %.2f)",
				f.Path, f.Unique, measured, ratio)
		}
	}
}

func TestVocabularyUniqueAndWellFormed(t *testing.T) {
	spec := testSpec()
	vocab := BuildVocabulary(spec)
	if len(vocab) != spec.VocabSize {
		t.Fatalf("vocab size %d, want %d", len(vocab), spec.VocabSize)
	}
	seen := map[string]bool{}
	for _, w := range vocab {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) < spec.MinTermLen || len(w) > spec.MaxTermLen {
			t.Fatalf("word %q length out of range", w)
		}
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] > 'z' {
				t.Fatalf("word %q not lower-case ASCII", w)
			}
		}
	}
}

func TestScale(t *testing.T) {
	base := PaperSpec()
	half := base.Scale(0.5)
	if half.Files != base.Files/2 {
		t.Errorf("Files = %d", half.Files)
	}
	if half.TotalBytes != base.TotalBytes/2 {
		t.Errorf("TotalBytes = %d", half.TotalBytes)
	}
	tiny := base.Scale(1e-9)
	if tiny.Files < 1 || tiny.TotalBytes < 1<<10 || tiny.VocabSize < 64 {
		t.Errorf("tiny scale produced degenerate spec: %+v", tiny)
	}
	if tiny.LargeFiles > tiny.Files/2 {
		t.Errorf("tiny scale kept %d large files for %d files", tiny.LargeFiles, tiny.Files)
	}
}

func TestPaperSpecShape(t *testing.T) {
	s := PaperSpec()
	if s.Files != 51_000 {
		t.Errorf("Files = %d", s.Files)
	}
	if s.TotalBytes != 869<<20 {
		t.Errorf("TotalBytes = %d", s.TotalBytes)
	}
	if s.LargeFiles != 5 {
		t.Errorf("LargeFiles = %d", s.LargeFiles)
	}
}

// Property: normalize is idempotent and never yields invalid field values.
func TestNormalizeTotal(t *testing.T) {
	if err := quick.Check(func(files int, bytes int64, large int, zipf float64) bool {
		s := Spec{Files: files % 10000, TotalBytes: bytes % (1 << 30), LargeFiles: large % 100, ZipfS: zipf}
		n := s.normalize()
		if n.Files < 1 || n.TotalBytes < 1 || n.LargeFiles < 0 || n.LargeFiles > n.Files {
			return false
		}
		if n.ZipfS <= 1 || n.MinTermLen < 1 || n.MaxTermLen < n.MinTermLen {
			return false
		}
		return n.normalize() == n
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDescribePaperScaleIsFast(t *testing.T) {
	// Metadata for the full 51k-file corpus must be cheap — the simulator
	// calls this for every experiment.
	stats := Describe(PaperSpec())
	if len(stats.Files) != 51_000 {
		t.Fatalf("files = %d", len(stats.Files))
	}
	if stats.TotalBytes < 800<<20 {
		t.Errorf("TotalBytes = %d, want ≈869 MB", stats.TotalBytes)
	}
}

func BenchmarkDescribePaperShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Describe(PaperSpec())
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	spec := testSpec()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec, vfs.NewMemFS()); err != nil {
			b.Fatal(err)
		}
	}
}
