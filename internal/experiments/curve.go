package experiments

import (
	"fmt"
	"strings"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
	"desksearch/internal/simmodel"
	"desksearch/internal/stats"
)

// CurvePoint is one (thread count, speed-up) sample of a scaling curve.
type CurvePoint struct {
	// Extractors is x; the updater count scales alongside (y = max(1, x/2),
	// capped at 4, matching the region the paper's best tuples live in).
	Extractors int
	// Exec is the modeled execution time in seconds.
	Exec float64
	// Speedup is against the platform's sequential baseline.
	Speedup float64
}

// Curve is a speed-up-versus-threads series for one implementation on one
// platform. The paper reports only the best point of each such curve
// (Tables 2–4); the full series makes the *why* visible — where
// Implementation 1 flattens against the index lock, where the 8-core disk
// floor bites, where adding extractors stops paying.
type Curve struct {
	Platform       platform.Profile
	Implementation core.Implementation
	Points         []CurvePoint
}

// RunScalingCurve sweeps x from 1 to maxX for the implementation on the
// platform. maxX ≤ 0 selects twice the platform's cores (capped at 16).
func RunScalingCurve(p platform.Profile, cs corpus.Stats, im core.Implementation, maxX int, o SweepOptions) (Curve, error) {
	o = o.normalized()
	if maxX <= 0 {
		maxX = 2 * p.Cores
		if maxX > 16 {
			maxX = 16
		}
	}
	simOpt := simmodel.Options{Batch: o.Batch, Jitter: o.Jitter, Seed: o.Seed}
	seq, err := simmodel.SequentialBaseline(p, cs, simOpt)
	if err != nil {
		return Curve{}, err
	}
	curve := Curve{Platform: p, Implementation: im}
	for x := 1; x <= maxX; x++ {
		y := x / 2
		if y < 1 {
			y = 1
		}
		if y > 4 {
			y = 4
		}
		if im != core.SharedIndex && y < 2 {
			y = 2 // replication needs two replicas
		}
		z := 0
		if im == core.ReplicatedJoin {
			z = 1
		}
		cfg := core.Config{Implementation: im, Extractors: x, Updaters: y, Joiners: z}
		var sum float64
		for r := 0; r < o.Reps; r++ {
			so := simOpt
			so.Seed += int64(r)
			res, err := simmodel.Simulate(p, cs, cfg, so)
			if err != nil {
				return Curve{}, err
			}
			sum += res.Exec
		}
		exec := sum / float64(o.Reps)
		curve.Points = append(curve.Points, CurvePoint{
			Extractors: x,
			Exec:       exec,
			Speedup:    stats.Speedup(seq, exec),
		})
	}
	return curve, nil
}

// Best returns the point with the highest speed-up.
func (c Curve) Best() CurvePoint {
	var best CurvePoint
	for _, pt := range c.Points {
		if pt.Speedup > best.Speedup {
			best = pt
		}
	}
	return best
}

// Render draws the curve as an ASCII chart, one row per x.
func (c Curve) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s: speed-up vs term-extraction threads\n",
		c.Platform.Name, c.Implementation)
	maxSpeedup := 0.0
	for _, pt := range c.Points {
		if pt.Speedup > maxSpeedup {
			maxSpeedup = pt.Speedup
		}
	}
	if maxSpeedup <= 0 {
		maxSpeedup = 1
	}
	for _, pt := range c.Points {
		bars := int(pt.Speedup / maxSpeedup * 40)
		fmt.Fprintf(&sb, "x=%2d  %6.1fs  %4.2fx  %s\n",
			pt.Extractors, pt.Exec, pt.Speedup, strings.Repeat("#", bars))
	}
	return sb.String()
}

// RunAllCurves renders the scaling curves of all three implementations on
// every platform (cmd/experiments -curves).
func RunAllCurves(cs corpus.Stats, o SweepOptions) (string, error) {
	var sb strings.Builder
	for _, p := range platform.All() {
		for _, im := range []core.Implementation{core.SharedIndex, core.ReplicatedJoin, core.ReplicatedSearch} {
			c, err := RunScalingCurve(p, cs, im, 0, o)
			if err != nil {
				return "", err
			}
			sb.WriteString(c.Render())
			sb.WriteString("\n")
		}
	}
	return sb.String(), nil
}
