// Quickstart: build an index over an in-memory corpus and search it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"desksearch"
	"desksearch/internal/vfs"
)

func main() {
	// A miniature "home directory".
	fs := vfs.NewMemFS()
	files := map[string]string{
		"docs/thesis-draft.txt": "thesis draft: parallel index generation for desktop search",
		"docs/thesis-final.txt": "thesis final: parallel index generation for desktop search",
		"mail/inbox.txt":        "lunch tomorrow? also the search demo crashed again",
		"mail/sent.txt":         "fixed the demo, the index rebuild was racing the search",
		"notes/shopping.txt":    "milk eggs flour",
	}
	for name, content := range files {
		if err := fs.WriteFile(name, []byte(content)); err != nil {
			log.Fatal(err)
		}
	}

	// Index with the paper's Implementation 3 (replicated indices,
	// searched in parallel) — desksearch.Options{} auto-sizes it.
	cat, err := desksearch.IndexFS(fs, ".", desksearch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := cat.Stats()
	fmt.Printf("indexed %d files into %d terms, %d postings (%d parallel indices)\n\n",
		s.Files, s.Terms, s.Postings, cat.Indices())

	// Query is the v2 search API: a request with pagination, ranking mode,
	// and path filtering, answered with matched-term metadata and a total
	// count. The zero controls return every hit, coordination-ranked.
	ctx := context.Background()
	for _, query := range []string{
		"search",
		"index search",
		"thesis -draft",
		"milk OR eggs",
	} {
		resp, err := cat.Query(ctx, desksearch.Query{Text: query, Limit: 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16q -> %d hit(s)\n", query, resp.Total)
		for _, h := range resp.Hits {
			fmt.Printf("    score %g  %-22s matched: %s\n", h.Score, h.Path, strings.Join(h.Terms, " "))
		}
	}

	// Term-frequency ranking orders by how often the terms occur, and
	// PathPrefix restricts the search to one directory.
	resp, err := cat.Query(ctx, desksearch.Query{
		Text:       "search OR index",
		Ranking:    desksearch.RankTF,
		PathPrefix: "docs/",
		Limit:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTF-ranked under docs/: %d hit(s)\n", resp.Total)
	for _, h := range resp.Hits {
		fmt.Printf("    tf %g  %s\n", h.Score, h.Path)
	}
}
