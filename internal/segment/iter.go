package segment

import (
	"encoding/binary"
	"fmt"
	"sort"

	"desksearch/internal/fnv"
	"desksearch/internal/postings"
)

// Iter streams one term's posting IDs straight off the raw block bytes,
// without materializing the list. SeekGE uses the block's skip table to
// jump within skipInterval postings of any target, which is what makes
// intersecting a rare term against a dense one sublinear in the dense
// list. The iterator reads the segment's storage directly, so it must not
// be used after the owning Reader is closed.
type Iter struct {
	enc   []byte // standard posting encoding (skip table stripped)
	skips []skipEntry
	count int

	idx   int    // postings consumed
	off   int    // next varint offset in enc
	prev  uint64 // last decoded ID
	valid bool
	err   error

	// Frequency-section state, located lazily on the first Count or
	// MaxCount call: the ID section's end is reached by skipping at most
	// skipInterval varints past the last skip entry, so locating costs
	// O(skipInterval) regardless of df.
	freqsLocated bool
	freqKind     byte // freqBoolean or freqCounted once located
	freqOff      int  // offset of the first count varint (counted lists)

	// Forward-only counts cursor: cIdx is the posting index the cursor
	// reads next, cOff its offset, cur the count at posting cIdx-1.
	cIdx int
	cOff int
	cur  uint32

	// notify, when set, reports a mid-stream corruption to the owning
	// reader (Reader.Iterator wires it to noteCorruption); the block
	// checksum passed at creation, so this only fires on encoder bugs.
	notify func(error)
}

// Frequency-section markers following the delta-coded IDs, per
// docs/FORMAT.md (internal/postings writes them as listBoolean /
// listCounted): freqBoolean means every frequency is 1 and no count
// bytes follow; freqCounted means one uvarint(frequency-1) per posting.
const (
	freqBoolean = 0
	freqCounted = 1
)

type skipEntry struct {
	id  uint64 // ids[(k+1)*skipInterval], absolute
	off int    // offset in enc just past that ID's varint
	idx int    // its posting index
}

// Iter returns a streaming iterator over term's postings, or nil if the
// term is absent. The block's checksum and skip table are verified; the
// postings themselves are validated as they stream (Next fails and Err
// reports on corruption). No posting is decoded up front.
func (r *Reader) Iter(term string) (*Iter, error) {
	ord := r.find(term)
	if ord < 0 {
		return nil, nil
	}
	return r.iterAt(ord)
}

// iterAt builds the streaming iterator for term ordinal ord.
func (r *Reader) iterAt(ord int) (*Iter, error) {
	e := &r.entries[ord]
	blk, err := r.src.slice(r.blocksOff+e.off, e.blen)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: term %q: %w", r.path, e.term, err)
	}
	if got := fnv.Hash64Bytes(blk); got != e.sum {
		return nil, fmt.Errorf("segment: %s: term %q: block checksum mismatch: dictionary %#x, computed %#x",
			r.path, e.term, e.sum, got)
	}

	c := &cursor{b: blk}
	skipN := c.uvarint()
	if want := uint64(maxSkips(e.df)); skipN != want {
		return nil, fmt.Errorf("segment: %s: term %q: %d skip entries, want %d", r.path, e.term, skipN, want)
	}
	skips := make([]skipEntry, 0, skipN)
	var sid uint64
	var soff int
	for k := uint64(0); k < skipN; k++ {
		sid += c.uvarint()
		soff += int(c.uvarint())
		skips = append(skips, skipEntry{id: sid, off: soff, idx: int(k+1) * skipInterval})
	}
	if c.err != nil {
		return nil, fmt.Errorf("segment: %s: term %q: corrupt skip table: %w", r.path, e.term, c.err)
	}
	enc := blk[c.off:]
	count, n := binary.Uvarint(enc)
	if n <= 0 || count != uint64(e.df) {
		return nil, fmt.Errorf("segment: %s: term %q: block count disagrees with dictionary", r.path, e.term)
	}
	for _, s := range skips {
		if s.off <= n || s.off > len(enc) || s.idx >= int(count) {
			return nil, fmt.Errorf("segment: %s: term %q: skip entry out of range", r.path, e.term)
		}
	}
	return &Iter{enc: enc, skips: skips, count: int(count), off: n}, nil
}

// Next advances to the next posting, returning false at the end of the
// list or on corruption (check Err to tell the two apart).
func (it *Iter) Next() bool {
	if it.err != nil || it.idx >= it.count {
		it.valid = false
		return false
	}
	delta, n := binary.Uvarint(it.enc[it.off:])
	if n <= 0 {
		it.fail(fmt.Errorf("segment: corrupt posting delta at index %d", it.idx))
		return false
	}
	if it.idx > 0 && delta == 0 {
		it.fail(fmt.Errorf("segment: duplicate posting id at index %d", it.idx))
		return false
	}
	it.off += n
	if it.idx == 0 {
		it.prev = delta
	} else {
		it.prev += delta
	}
	if it.prev > 0xFFFF_FFFF {
		it.fail(fmt.Errorf("segment: posting id %d overflows FileID", it.prev))
		return false
	}
	it.idx++
	it.valid = true
	return true
}

// SeekGE positions the iterator at the first posting with ID >= id —
// never moving backwards — and reports whether one exists.
func (it *Iter) SeekGE(id postings.FileID) bool {
	if it.err != nil {
		return false
	}
	if it.valid && it.prev >= uint64(id) {
		return true
	}
	// Jump to the last skip entry strictly below the target, if it is
	// ahead of the cursor; the target then lies within skipInterval
	// postings of the landing point.
	j := sort.Search(len(it.skips), func(k int) bool { return it.skips[k].id >= uint64(id) })
	if j > 0 && it.skips[j-1].idx+1 > it.idx {
		s := it.skips[j-1]
		it.prev, it.off, it.idx, it.valid = s.id, s.off, s.idx+1, true
	}
	for it.Next() {
		if it.prev >= uint64(id) {
			return true
		}
	}
	return false
}

// ID returns the current posting's file ID; valid only after a true
// Next/SeekGE.
func (it *Iter) ID() postings.FileID { return postings.FileID(it.prev) }

// Err returns the corruption that stopped iteration, if any.
func (it *Iter) Err() error { return it.err }

// fail records a corruption, invalidates the cursor, and reports the
// error to the owning reader when one is wired up.
func (it *Iter) fail(err error) {
	it.err = err
	it.valid = false
	if it.notify != nil {
		it.notify(err)
	}
}

// locateFreqs finds the frequency section without streaming the whole ID
// section: it jumps to the last skip entry (within skipInterval postings
// of the end) and skips the at most skipInterval-1 remaining ID varints.
// The cursor's own progress is used instead when it is further along.
func (it *Iter) locateFreqs() bool {
	if it.freqsLocated {
		return true
	}
	if it.err != nil {
		return false
	}
	off, idx := it.off, it.idx
	if n := len(it.skips); n > 0 {
		if s := it.skips[n-1]; s.idx+1 > idx {
			off, idx = s.off, s.idx+1
		}
	}
	for ; idx < it.count; idx++ {
		_, n := binary.Uvarint(it.enc[off:])
		if n <= 0 {
			it.fail(fmt.Errorf("segment: corrupt posting delta at index %d", idx))
			return false
		}
		off += n
	}
	if off >= len(it.enc) {
		it.fail(fmt.Errorf("segment: posting block truncated before frequency marker"))
		return false
	}
	kind := it.enc[off]
	if kind != freqBoolean && kind != freqCounted {
		it.fail(fmt.Errorf("segment: unknown frequency marker %d", kind))
		return false
	}
	it.freqKind = kind
	it.freqOff = off + 1
	it.cIdx, it.cOff = 0, it.freqOff
	it.freqsLocated = true
	return true
}

// Count returns the current posting's term frequency; valid only after a
// true Next/SeekGE. The counts cursor is forward-only and advances in
// step with the postings actually asked about, so a scoring pass over a
// selective match set reads each count varint at most once. A corrupt
// frequency section reports 1 and poisons the iterator (Err).
func (it *Iter) Count() uint32 {
	if !it.valid || !it.locateFreqs() {
		return 1
	}
	if it.freqKind == freqBoolean {
		return 1
	}
	cur := it.idx - 1 // index of the posting the cursor is on
	for it.cIdx <= cur {
		v, n := binary.Uvarint(it.enc[it.cOff:])
		if n <= 0 || v >= 0xFFFF_FFFF {
			it.fail(fmt.Errorf("segment: corrupt frequency at index %d", it.cIdx))
			return 1
		}
		it.cOff += n
		it.cIdx++
		it.cur = uint32(v) + 1
	}
	return it.cur
}

// Len returns the term's document frequency (the block's posting count).
func (it *Iter) Len() int { return it.count }

// MaxCount reports what the raw block can bound without being decoded: 1
// for boolean lists (the frequency marker is a single byte past the ID
// section, reached in O(skipInterval)), postings.NoMaxCount for counted
// lists — an exact maximum would read the whole frequency section, the
// kind of full traversal this iterator exists to avoid.
func (it *Iter) MaxCount() uint32 {
	if !it.locateFreqs() {
		return postings.NoMaxCount
	}
	if it.freqKind == freqBoolean {
		return 1
	}
	return postings.NoMaxCount
}
