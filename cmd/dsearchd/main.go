// Command dsearchd is the desktop-search daemon: it loads (or builds) a
// catalog once, keeps it memory-resident, and serves concurrent queries
// over HTTP — the resident query broker in front of the partitioned index.
//
// Usage:
//
//	dsearchd -root DIR [-shards N] [-formats] [flags]
//	dsearchd -index PATH [-root DIR] [flags]
//	dsearchd -index DIR -lazy [flags]
//
// -root builds the index at startup; -index loads a saved one (a single
// index file or a sharded directory as written by indexgen). With both,
// the saved index is loaded and then kept in step with DIR: -watch polls
// it on an interval, and POST /reload updates on demand — both run the
// incremental delta pipeline and atomically invalidate the query cache,
// so no request is ever answered from a stale generation.
//
// -lazy serves a sharded directory without materializing it: startup reads
// only the term dictionaries, and posting data is mapped and decoded per
// query (see desksearch.OpenDir). The catalog is read-only — -lazy
// conflicts with -root and -watch — and /stats reports open_mode "lazy"
// with the per-partition resident-byte estimates.
//
// Endpoints:
//
//	GET  /search?q=QUERY&limit=N&offset=N&rank=count|tf&prefix=P&timeout=D
//	GET  /stats
//	GET  /healthz
//	POST /reload            (add ?mode=full to rebuild from scratch)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"desksearch"
	"desksearch/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7700", "listen address")
		indexPath    = flag.String("index", "", "load a saved index from this file or sharded directory")
		root         = flag.String("root", "", "directory to index at startup (and to watch for changes)")
		shards       = flag.Int("shards", 0, "with -root, partition the index into N document shards")
		formats      = flag.Bool("formats", false, "strip HTML/WP markup while indexing")
		lazy         = flag.Bool("lazy", false, "with -index DIR, serve segment files lazily (mmap + on-demand decode) instead of loading them into memory; the catalog is read-only")
		watch        = flag.Duration("watch", 0, "poll -root for changes on this interval (0 = off)")
		cacheEntries = flag.Int("cache-entries", 1024, "query cache entry bound (negative disables the cache)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "query cache byte budget")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request query timeout ceiling")
		maxLimit     = flag.Int("max-limit", 1000, "cap on the per-request limit parameter")
	)
	flag.Parse()
	if *indexPath == "" && *root == "" {
		fmt.Fprintln(os.Stderr, "usage: dsearchd (-root DIR | -index PATH) [flags]")
		os.Exit(2)
	}
	if *watch > 0 && *root == "" {
		fmt.Fprintln(os.Stderr, "dsearchd: -watch needs -root to poll")
		os.Exit(2)
	}
	if *lazy {
		// A lazy catalog is read-only: it cannot absorb incremental
		// updates, so every way of asking for them is a flag conflict.
		switch {
		case *indexPath == "":
			fmt.Fprintln(os.Stderr, "dsearchd: -lazy needs -index DIR (a sharded index directory)")
			os.Exit(2)
		case *root != "":
			fmt.Fprintln(os.Stderr, "dsearchd: -lazy serves a read-only catalog; it cannot watch or update -root")
			os.Exit(2)
		}
	}

	opts := desksearch.Options{Formats: *formats, Shards: *shards, Lazy: *lazy}
	var (
		cat *desksearch.Catalog
		err error
	)
	start := time.Now()
	switch {
	case *indexPath != "":
		cat, err = loadIndex(*indexPath, opts)
	default:
		cat, err = desksearch.IndexDir(*root, opts)
	}
	if err != nil {
		log.Fatalf("dsearchd: %v", err)
	}
	mode := "heap"
	if cat.Lazy() {
		mode = "lazy"
	}
	st := cat.Stats()
	log.Printf("catalog ready in %s (%s): %d files, %d terms, %d postings, %d partition(s)",
		time.Since(start).Round(time.Millisecond), mode, st.Files, st.Terms, st.Postings, cat.Indices())

	cfg := server.Config{
		Catalog:      cat,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheBytes,
		Timeout:      *timeout,
		MaxLimit:     *maxLimit,
		Logf:         log.Printf,
	}
	if *root != "" {
		dir := *root
		cfg.Update = func() (desksearch.UpdateStats, error) { return cat.UpdateDir(dir) }
		cfg.Rebuild = func() (*desksearch.Catalog, error) { return desksearch.IndexDir(dir, opts) }
	}
	srv := server.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watch > 0 {
		log.Printf("watching %s every %s", *root, *watch)
		go srv.Watch(ctx, *watch)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on http://%s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("dsearchd: %v", err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dsearchd: shutdown: %v", err)
	}
}

// loadIndex reads a catalog from path: a sharded index directory when path
// is a directory, a single index file otherwise. The build options ride
// along so incremental updates re-extract consistently; with Options.Lazy
// a directory is opened in place rather than materialized.
func loadIndex(path string, opts desksearch.Options) (*desksearch.Catalog, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return desksearch.LoadDir(path, opts)
	}
	if opts.Lazy {
		return nil, fmt.Errorf("-lazy needs a sharded index directory, and %s is a file", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desksearch.Load(f, opts)
}
