package core

import (
	"fmt"
	"sync"
	"time"

	"desksearch/internal/distribute"
	"desksearch/internal/extract"
	"desksearch/internal/index"
	"desksearch/internal/postings"
	"desksearch/internal/shard"
	"desksearch/internal/vfs"
	"desksearch/internal/walk"
)

// Timings breaks a run down by pipeline phase.
type Timings struct {
	// FilenameGen is Stage 1: directory traversal (always sequential,
	// following the paper's measurement that it is 2–5 % of runtime).
	FilenameGen time.Duration
	// ExtractUpdate is the overlapped wall time of Stages 2 and 3.
	ExtractUpdate time.Duration
	// Join is the final replica merge (ReplicatedJoin only).
	Join time.Duration
	// Shard is the shard-set build (Config.Shards > 0 only); zero when
	// replicas were adopted as shards without a redistribution pass.
	Shard time.Duration
	// Total is end-to-end wall time.
	Total time.Duration
}

// Skipped records a file the pipeline could not index. Desktop search
// treats unreadable files as skippable — a user's corpus always contains a
// few — but reports them.
type Skipped struct {
	Path string
	Err  error
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Implementation and Config echo the run parameters (normalized).
	Implementation Implementation
	Config         Config
	// Files maps FileIDs to paths.
	Files *index.FileTable
	// Index is the single resulting index. For ReplicatedSearch it is nil
	// when more than one replica was built — use Replicas. For sharded
	// runs (Config.Shards > 0) it is nil — use Shards.
	Index *index.Index
	// Replicas holds the unjoined indices of ReplicatedSearch.
	Replicas []*index.Index
	// Shards is the document-sharded partition set of the run's output
	// when Config.Shards > 0.
	Shards *shard.Set
	// Timings is the phase breakdown.
	Timings Timings
	// SkippedFiles lists files that could not be read or extracted.
	SkippedFiles []Skipped
}

// Indexes returns the result's indices: the shards of a sharded run, the
// joined/single index, or the replicas for ReplicatedSearch.
func (r *Result) Indexes() []*index.Index {
	if r.Shards != nil {
		return r.Shards.Shards()
	}
	if r.Index != nil {
		return []*index.Index{r.Index}
	}
	return r.Replicas
}

// Stats aggregates index statistics across the result's indices.
func (r *Result) Stats() index.Stats {
	var s index.Stats
	for _, ix := range r.Indexes() {
		st := ix.Stats()
		s.Terms += st.Terms // replicas may share terms; this is an upper bound
		s.Postings += st.Postings
	}
	return s
}

// job is one unit of Stage 2 work: a file and its pre-assigned ID.
type job struct {
	ref walk.FileRef
	id  postings.FileID
}

// markPositional flags a freshly created index as positional when the run
// extracts token positions, so even an index that ends up empty (or a shard
// that receives no postings) persists — and later updates — positionally.
func markPositional(cfg Config, ix *index.Index) {
	if cfg.Extract.Positions {
		ix.SetPositional()
	}
}

// Run executes the configured pipeline over the files under root in fsys.
func Run(fsys vfs.FS, root string, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()

	res := &Result{Implementation: cfg.Implementation, Config: cfg}
	startTotal := time.Now()

	// Stage 1: filename generation — one thread, completing before
	// extraction starts (the paper's design decision).
	files, err := walk.List(fsys, root)
	if err != nil {
		return nil, fmt.Errorf("core: filename generation: %w", err)
	}
	table := index.NewFileTable()
	jobs := make([]job, len(files))
	for i, f := range files {
		jobs[i] = job{ref: f, id: table.Add(f.Path, f.Size, f.ModTime)}
	}
	res.Files = table
	res.Timings.FilenameGen = time.Since(startTotal)

	// Stages 2+3.
	start23 := time.Now()
	switch cfg.Implementation {
	case Sequential:
		ix := index.New(1 << 12)
		markPositional(cfg, ix)
		runDirect(fsys, cfg, jobs, directSink{ix: ix}, res)
		res.Index = ix
		res.Timings.ExtractUpdate = time.Since(start23)
	case SharedIndex:
		shared := index.NewShared(1 << 12)
		markPositional(cfg, shared.Unwrap())
		runPipeline(fsys, cfg, jobs, func(int) blockSink { return shared }, res)
		res.Index = shared.Unwrap()
		res.Timings.ExtractUpdate = time.Since(start23)
	case ReplicatedJoin, ReplicatedSearch:
		replicas := make([]*index.Index, cfg.Replicas())
		for i := range replicas {
			replicas[i] = index.New(1 << 10)
			markPositional(cfg, replicas[i])
		}
		runPipeline(fsys, cfg, jobs, func(i int) blockSink { return directSink{ix: replicas[i]} }, res)
		res.Timings.ExtractUpdate = time.Since(start23)
		switch {
		case cfg.Shards > 0:
			// Sharding subsumes the join: shards build straight from the
			// replicas, so ReplicatedJoin skips its merge pass entirely,
			// and a replica count matching the shard count is adopted
			// as-is — the zero-cost path ReplicatedSearch was built for.
			if len(replicas) == cfg.Shards {
				res.Shards = shard.FromReplicas(table, replicas)
			} else {
				startShard := time.Now()
				res.Shards = shard.Distribute(table, replicas, cfg.Shards)
				res.Timings.Shard = time.Since(startShard)
			}
		case cfg.Implementation == ReplicatedJoin:
			startJoin := time.Now()
			if cfg.Joiners > 1 {
				res.Index = index.ParallelJoin(replicas, cfg.Joiners)
			} else {
				res.Index = index.JoinAll(replicas)
			}
			res.Timings.Join = time.Since(startJoin)
		case len(replicas) == 1:
			res.Index = replicas[0]
		default:
			res.Replicas = replicas
		}
	}
	if cfg.Shards > 0 && res.Shards == nil {
		// Sequential and SharedIndex built one index; hash-split it.
		startShard := time.Now()
		res.Shards = shard.Distribute(table, []*index.Index{res.Index}, cfg.Shards)
		res.Index = nil
		res.Timings.Shard = time.Since(startShard)
	}
	res.Timings.Total = time.Since(startTotal)
	return res, nil
}

// blockSink consumes term blocks. index.Shared is one (lock per block);
// directSink wraps an unshared index for single-owner use.
type blockSink interface {
	AddBlock(id postings.FileID, terms []string, counts []uint32)
	AddBlockPositional(id postings.FileID, terms []string, positions [][]uint32)
}

type directSink struct{ ix *index.Index }

func (d directSink) AddBlock(id postings.FileID, terms []string, counts []uint32) {
	d.ix.AddBlock(id, terms, counts)
}

func (d directSink) AddBlockPositional(id postings.FileID, terms []string, positions [][]uint32) {
	d.ix.AddBlockPositional(id, terms, positions)
}

// feed routes a term block to the sink's positional or plain insertion
// path, depending on what the extractor recorded.
func feed(sink blockSink, block extract.TermBlock) {
	if block.Positions != nil {
		sink.AddBlockPositional(block.File, block.Terms, block.Positions)
		return
	}
	sink.AddBlock(block.File, block.Terms, block.Counts)
}

// runDirect executes jobs on the calling goroutine (the sequential
// baseline).
func runDirect(fsys vfs.FS, cfg Config, jobs []job, sink blockSink, res *Result) {
	ex := extract.New(fsys, cfg.Extract)
	for _, j := range jobs {
		block, err := ex.File(j.ref.Path, j.id)
		if err != nil {
			res.SkippedFiles = append(res.SkippedFiles, Skipped{Path: j.ref.Path, Err: err})
			continue
		}
		res.Files.SetTokens(block.File, block.Tokens)
		feed(sink, block)
	}
}

// runPipeline executes Stages 2 and 3 with cfg.Extractors extraction
// goroutines and, when cfg.Updaters > 0, separate updater goroutines fed
// through a bounded channel. sinkFor(i) returns the block sink for updater
// slot i (or extractor slot i when there are no updaters).
func runPipeline(fsys vfs.FS, cfg Config, jobs []job, sinkFor func(int) blockSink, res *Result) {
	var (
		skippedMu sync.Mutex
	)
	skip := func(path string, err error) {
		skippedMu.Lock()
		res.SkippedFiles = append(res.SkippedFiles, Skipped{Path: path, Err: err})
		skippedMu.Unlock()
	}

	// nextJob yields each extractor's work: a static private vector
	// (round-robin/by-size/chunked) or a stealing pool.
	var jobSource func(worker int) func() (job, bool)
	if cfg.WorkStealing {
		refs := make([]walk.FileRef, len(jobs))
		idByPath := make(map[string]postings.FileID, len(jobs))
		for i, j := range jobs {
			refs[i] = j.ref
			idByPath[j.ref.Path] = j.id
		}
		pool := distribute.NewStealingPool(refs, cfg.Extractors)
		jobSource = func(worker int) func() (job, bool) {
			return func() (job, bool) {
				ref, ok := pool.Next(worker)
				if !ok {
					return job{}, false
				}
				return job{ref: ref, id: idByPath[ref.Path]}, true
			}
		}
	} else {
		parts := partitionJobs(jobs, cfg.Extractors, cfg.Distribution)
		jobSource = func(worker int) func() (job, bool) {
			i := 0
			part := parts[worker]
			return func() (job, bool) {
				if i >= len(part) {
					return job{}, false
				}
				j := part[i]
				i++
				return j, true
			}
		}
	}

	if cfg.Updaters == 0 {
		// Extractors update their sink directly: sink i belongs to
		// extractor i (replica designs) or is the shared index (Impl 1).
		var wg sync.WaitGroup
		for w := 0; w < cfg.Extractors; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ex := extract.New(fsys, cfg.Extract)
				sink := sinkFor(replicaSlot(cfg, w, -1))
				next := jobSource(w)
				for {
					j, ok := next()
					if !ok {
						return
					}
					block, err := ex.File(j.ref.Path, j.id)
					if err != nil {
						skip(j.ref.Path, err)
						continue
					}
					// Each file is extracted exactly once, so concurrent
					// extractors write disjoint token-length slots.
					res.Files.SetTokens(block.File, block.Tokens)
					feed(sink, block)
				}
			}(w)
		}
		wg.Wait()
		return
	}

	// Extractors feed updaters through a bounded buffer.
	blocks := make(chan extract.TermBlock, cfg.Buffer)
	var extractors sync.WaitGroup
	for w := 0; w < cfg.Extractors; w++ {
		extractors.Add(1)
		go func(w int) {
			defer extractors.Done()
			ex := extract.New(fsys, cfg.Extract)
			next := jobSource(w)
			for {
				j, ok := next()
				if !ok {
					return
				}
				block, err := ex.File(j.ref.Path, j.id)
				if err != nil {
					skip(j.ref.Path, err)
					continue
				}
				res.Files.SetTokens(block.File, block.Tokens)
				blocks <- block
			}
		}(w)
	}

	var updaters sync.WaitGroup
	for u := 0; u < cfg.Updaters; u++ {
		updaters.Add(1)
		go func(u int) {
			defer updaters.Done()
			sink := sinkFor(replicaSlot(cfg, -1, u))
			for block := range blocks {
				feed(sink, block)
			}
		}(u)
	}

	extractors.Wait()
	close(blocks)
	updaters.Wait()
}

// replicaSlot maps a worker to its sink slot: with updaters, slot = updater
// index; without, slot = extractor index. SharedIndex ignores the slot.
func replicaSlot(cfg Config, extractor, updater int) int {
	if cfg.Updaters > 0 {
		return updater
	}
	return extractor
}

// partitionJobs splits jobs into k private vectors with the configured
// strategy, preserving each job's pre-assigned FileID.
func partitionJobs(jobs []job, k int, strategy distribute.Strategy) [][]job {
	refs := make([]walk.FileRef, len(jobs))
	idByPath := make(map[string]postings.FileID, len(jobs))
	for i, j := range jobs {
		refs[i] = j.ref
		idByPath[j.ref.Path] = j.id
	}
	refParts := distribute.Partition(refs, k, strategy)
	parts := make([][]job, len(refParts))
	for w, rp := range refParts {
		parts[w] = make([]job, len(rp))
		for i, ref := range rp {
			parts[w][i] = job{ref: ref, id: idByPath[ref.Path]}
		}
	}
	return parts
}
