// Package fnv implements the Fowler–Noll–Vo hash functions FNV-1 and
// FNV-1a in 32-bit and 64-bit widths.
//
// The paper's index generator hashes terms with FNV1 for both the inverted
// index (a hash map) and the per-file duplicate-elimination set (a hash set);
// this package is the shared hashing substrate for internal/container.
// Unlike the standard library's hash/fnv, it exposes allocation-free
// one-shot string and byte-slice forms, which is what the hot indexing path
// needs.
package fnv

import "hash"

const (
	offset32 = 2166136261
	prime32  = 16777619
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash32 returns the FNV-1 32-bit hash of s.
//
// FNV-1 multiplies before XORing each byte; it is the variant named by the
// paper ("FNV1 hash function [3]").
func Hash32(s string) uint32 {
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h *= prime32
		h ^= uint32(s[i])
	}
	return h
}

// Hash32Bytes is Hash32 for a byte slice, avoiding a string conversion.
func Hash32Bytes(b []byte) uint32 {
	h := uint32(offset32)
	for _, c := range b {
		h *= prime32
		h ^= uint32(c)
	}
	return h
}

// Hash32a returns the FNV-1a 32-bit hash of s (XOR before multiply).
func Hash32a(s string) uint32 {
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// Hash64 returns the FNV-1 64-bit hash of s.
func Hash64(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h *= prime64
		h ^= uint64(s[i])
	}
	return h
}

// Hash64Bytes is Hash64 for a byte slice.
func Hash64Bytes(b []byte) uint64 {
	h := uint64(offset64)
	for _, c := range b {
		h *= prime64
		h ^= uint64(c)
	}
	return h
}

// Hash64a returns the FNV-1a 64-bit hash of s.
func Hash64a(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// digest32 is a streaming FNV-1 32-bit hash implementing hash.Hash32.
type digest32 struct {
	sum uint32
}

// New32 returns a streaming FNV-1 32-bit hash.Hash32.
func New32() hash.Hash32 { return &digest32{sum: offset32} }

func (d *digest32) Write(p []byte) (int, error) {
	h := d.sum
	for _, c := range p {
		h *= prime32
		h ^= uint32(c)
	}
	d.sum = h
	return len(p), nil
}

func (d *digest32) Sum(b []byte) []byte {
	s := d.sum
	return append(b, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
}

func (d *digest32) Reset()         { d.sum = offset32 }
func (d *digest32) Size() int      { return 4 }
func (d *digest32) BlockSize() int { return 1 }
func (d *digest32) Sum32() uint32  { return d.sum }

// digest64 is a streaming FNV-1 64-bit hash implementing hash.Hash64.
type digest64 struct {
	sum uint64
}

// New64 returns a streaming FNV-1 64-bit hash.Hash64.
func New64() hash.Hash64 { return &digest64{sum: offset64} }

func (d *digest64) Write(p []byte) (int, error) {
	h := d.sum
	for _, c := range p {
		h *= prime64
		h ^= uint64(c)
	}
	d.sum = h
	return len(p), nil
}

func (d *digest64) Sum(b []byte) []byte {
	s := d.sum
	return append(b,
		byte(s>>56), byte(s>>48), byte(s>>40), byte(s>>32),
		byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
}

func (d *digest64) Reset()         { d.sum = offset64 }
func (d *digest64) Size() int      { return 8 }
func (d *digest64) BlockSize() int { return 1 }
func (d *digest64) Sum64() uint64  { return d.sum }
