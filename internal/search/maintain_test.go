package search

import (
	"fmt"
	"sync"
	"testing"

	"desksearch/internal/index"
	"desksearch/internal/postings"
)

// These tests cover the engine's interaction with incremental index
// maintenance: the stale-universe bug (a NOT query resurrecting deleted
// files out of the cached complement base) and the safety of queries
// running concurrently with updates.

func maintFixture() (*index.FileTable, *index.Index) {
	files := index.NewFileTable()
	ix := index.New(16)
	docs := [][]string{
		{"alpha", "beta"},
		{"beta", "gamma"},
		{"alpha", "gamma"},
		{"delta"},
	}
	for i, terms := range docs {
		id := files.Add(fmt.Sprintf("doc%d.txt", i), int64(len(terms)), int64(i+1))
		ix.AddBlock(id, terms, nil)
	}
	return files, ix
}

// TestNotExcludesRemovedFile is the ISSUE's regression: index → remove a
// file → "NOT term" must not return it. Before invalidation existed, the
// universe cached by the first query kept answering for the deleted file.
func TestNotExcludesRemovedFile(t *testing.T) {
	files, ix := maintFixture()
	e := NewEngine(files, ix)

	// Prime the universe cache with a NOT query that matches doc3.
	hits, err := e.SearchString("-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(hits); got != 2 { // doc1, doc3
		t.Fatalf("-alpha before removal: %d hits, want 2", got)
	}

	// Remove doc3 through the maintenance path.
	victim := postings.FileID(3)
	e.Maintain(func() {
		ix.RemoveFile(victim)
		files.Tombstone(victim)
	})

	hits, err = e.SearchString("-alpha")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.File == victim {
			t.Fatalf("-alpha returned deleted file %s", h.Path)
		}
	}
	if got := len(hits); got != 1 { // doc1 only
		t.Errorf("-alpha after removal: %d hits, want 1", got)
	}

	// A tombstoned term-free file must not reappear through any negation.
	if hits, _ := e.SearchString("-beta"); len(hits) != 1 {
		t.Errorf("-beta after removal: %v, want just doc2", hits)
	}
}

// TestNotExcludesRemovedFileAcrossReplicas checks the same regression when
// the universe is derived per-partition from posting lists.
func TestNotExcludesRemovedFileAcrossReplicas(t *testing.T) {
	files := index.NewFileTable()
	replicas := []*index.Index{index.New(4), index.New(4)}
	docs := [][]string{{"alpha"}, {"beta"}, {"alpha", "beta"}, {"gamma"}}
	for i, terms := range docs {
		id := files.Add(fmt.Sprintf("r%d.txt", i), 1, int64(i+1))
		replicas[i%2].AddBlock(id, terms, nil)
	}
	e := NewEngine(files, index.Partitions(replicas)...)
	if hits, _ := e.SearchString("-alpha"); len(hits) != 2 {
		t.Fatalf("-alpha before removal: %v", hits)
	}
	victim := postings.FileID(1) // lives in replica 1
	e.Maintain(func() {
		for _, r := range replicas {
			r.RemoveFile(victim)
		}
		files.Tombstone(victim)
	})
	hits, _ := e.SearchString("-alpha")
	if len(hits) != 1 || hits[0].File != 3 {
		t.Errorf("-alpha after removal: %v, want only r3", hits)
	}
}

// TestInvalidateAlone covers the escape hatch for callers that mutate
// without Maintain.
func TestInvalidateAlone(t *testing.T) {
	files, ix := maintFixture()
	e := NewEngine(files, ix)
	if hits, _ := e.SearchString("-delta"); len(hits) != 3 {
		t.Fatal("universe not primed as expected")
	}
	ix.RemoveFile(0)
	files.Tombstone(0)
	e.Invalidate()
	if hits, _ := e.SearchString("-delta"); len(hits) != 2 {
		t.Errorf("stale universe survived Invalidate")
	}
}

// TestConcurrentSearchAndUpdate exercises queries racing incremental
// updates through the engine's lock; run under -race it is the ISSUE's
// aliasing regression test. Without the read-write discipline (and the
// term-lookup clone at eval's boundary) the detector reports the updater
// mutating posting lists mid-query.
func TestConcurrentSearchAndUpdate(t *testing.T) {
	files, ix := maintFixture()
	e := NewEngine(files, ix)
	queries := []string{"alpha", "alpha OR beta", "-gamma", "beta -alpha"}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.SearchString(queries[(i+w)%len(queries)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		blocks := [][]string{{"alpha", "epsilon"}, {"beta"}, {"alpha", "beta", "gamma"}}
		for i := 0; i < 200; i++ {
			e.Maintain(func() {
				ix.UpdateFile(postings.FileID(i%3), blocks[i%len(blocks)], nil)
			})
		}
		close(stop)
	}()
	wg.Wait()
}

// TestSwapReplacesPartitions covers the engine's full-reload hook: after
// Swap, queries answer only from the new partitions, the NOT universes
// are rebuilt, and the generation has advanced (so result caches keyed on
// it drop the old state).
func TestSwapReplacesPartitions(t *testing.T) {
	files, ix := maintFixture()
	e := NewEngine(files, ix)
	e.SearchString("-alpha") // prime the universe cache
	g0 := e.Generation()

	freshFiles := index.NewFileTable()
	fresh := index.New(4)
	id := freshFiles.Add("new.txt", 1, 1)
	fresh.AddBlock(id, []string{"omega"}, nil)

	var swappedInside bool
	e.Swap(freshFiles, []index.Partition{fresh}, func() { swappedInside = true })
	if !swappedInside {
		t.Fatal("then-callback not run")
	}
	if e.Generation() == g0 {
		t.Error("Swap did not advance the generation")
	}
	if e.Indices() != 1 {
		t.Errorf("Indices = %d after swap", e.Indices())
	}
	if hits, _ := e.SearchString("alpha"); len(hits) != 0 {
		t.Errorf("old partition still answering: %v", hits)
	}
	hits, _ := e.SearchString("omega")
	if len(hits) != 1 || hits[0].Path != "new.txt" {
		t.Errorf("new partition not answering: %v", hits)
	}
	// The universe must have been rebuilt for the new file table.
	if hits, _ := e.SearchString("-omega"); len(hits) != 0 {
		t.Errorf("stale universe after swap: %v", hits)
	}
}
