package index

import (
	"bufio"
	"fmt"
	"io"
)

// A shard segment (the DSIX segment form) persists one document-sharded partition
// of an index: the term section alone, framed and checksummed like every
// DSIX file. The file table — shared by all shards of a set — is not
// repeated per segment; it lives once in the shard manifest
// (internal/shard), which also records a whole-file checksum for each
// segment so a swapped or truncated segment is caught before its postings
// are trusted.

// SaveSegment writes ix's term section to w as a shard segment.
func SaveSegment(w io.Writer, ix *Index) error {
	return EncodeFrame(w, SegmentVersion, func(bw *bufio.Writer) error {
		return writeTermSection(bw, ix)
	})
}

// LoadSegment reads a shard segment written by SaveSegment. Like Load it
// buffers the whole stream so the checksum is verified before any content
// is trusted.
func LoadSegment(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading segment: %w", err)
	}
	br, payload, err := DecodeFrame(data, SegmentVersion)
	if err != nil {
		return nil, err
	}
	ix, err := readTermSection(br, payload)
	if err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("index: %d trailing payload bytes", br.Len())
	}
	return ix, nil
}
