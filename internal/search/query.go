// Package search implements the query side of desktop search — the paper's
// named future work ("integrate the search query functionality and
// parallelize it as well, for instance by using multiple indices").
//
// Queries are boolean: terms combine with implicit AND, the OR and NOT
// keywords, parentheses, and quoted phrases ("annual report"), which match
// only consecutive occurrences and need an index built with token
// positions. Execution runs against one index or fans out in parallel over
// the replica indices that Implementation 3 leaves unjoined. Because every
// file's term block lands in exactly one replica, any per-file predicate —
// phrase adjacency included, since a file's positions live together with
// its postings — evaluates correctly replica-by-replica; the final result
// is the union of per-replica results.
package search

import (
	"fmt"
	"strings"

	"desksearch/internal/tokenize"
)

// Query is a parsed boolean query.
type Query struct {
	root node
	// positive lists the non-negated terms, used for ranking.
	positive []string
	// prefixes lists every prefix operator's normalized prefix text, in
	// parse order; prefixNode.ord indexes it, and per-partition expansions
	// are precomputed parallel to it before evaluation fans out.
	prefixes []string
	// scorePrefixes lists the ordinals of the distinct non-negated
	// prefixes (first occurrence wins), the prefix counterpart of
	// positive: each scores as one pseudo-term appended after the positive
	// terms, in this order.
	scorePrefixes []int
	// hasPhrase records whether the query contains a multi-term phrase
	// anywhere, so evaluation can reject position-free partitions up
	// front — before any short-circuit could otherwise skip the phrase
	// node and make the error depend on term order.
	hasPhrase bool
}

// node is a query AST node.
type node interface {
	// String renders the node in canonical form.
	String() string
}

type termNode struct{ term string }
type andNode struct{ kids []node }
type orNode struct{ kids []node }
type notNode struct{ kid node }

// phraseNode matches files containing its terms at consecutive token
// positions — the quoted-phrase operator. Always ≥ 2 terms: a one-term
// quote parses to a plain termNode.
type phraseNode struct{ terms []string }

// prefixNode matches files containing any term that starts with prefix —
// the trailing-wildcard operator ("repor*"), evaluated by term-dictionary
// expansion. ord is the node's position in Query.prefixes, which indexes
// the per-partition expansion unions.
type prefixNode struct {
	prefix string
	ord    int
}

func (n termNode) String() string {
	// The keywords double as legal index terms ("not", from input like
	// "Not!"); rendering them bare would re-parse as the operator, so the
	// canonical form quotes them (a one-word phrase parses back to a plain
	// term). Keeps Parse(q.String()) a fixed point — the property cache
	// keys rely on.
	switch n.term {
	case "and", "or", "not":
		return `"` + n.term + `"`
	}
	return n.term
}

func (n phraseNode) String() string { return `"` + strings.Join(n.terms, " ") + `"` }

// A prefix renders as its canonical trailing-wildcard form. Keyword
// prefixes need no quoting: "and*" re-lexes as a prefix token, not the AND
// operator, so Parse(q.String()) stays a fixed point.
func (n prefixNode) String() string { return n.prefix + "*" }

func (n andNode) String() string { return "(" + joinNodes(n.kids, " AND ") + ")" }

func (n orNode) String() string { return "(" + joinNodes(n.kids, " OR ") + ")" }

func (n notNode) String() string { return "(NOT " + n.kid.String() + ")" }

func joinNodes(kids []node, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return strings.Join(parts, sep)
}

// String renders the query in canonical form.
func (q *Query) String() string {
	if q.root == nil {
		return ""
	}
	return q.root.String()
}

// Terms returns the query's positive (non-negated) terms in order of first
// appearance.
func (q *Query) Terms() []string { return q.positive }

// Parse builds a Query from text. Grammar (also documented in the README's
// query-syntax reference):
//
//	query  := or
//	or     := and ("OR" and)*
//	and    := unary+            (implicit AND)
//	unary  := "NOT" unary | "(" or ")" | TERM | PREFIX | PHRASE
//	PREFIX := TERM '*'          (trailing wildcard; matches any term with
//	                             that prefix, by dictionary expansion)
//	PHRASE := '"' text '"'      (quoted; matches consecutive positions)
//
// Keywords are case-insensitive; terms — inside and outside quotes — are
// normalized exactly like indexed text (lower-cased ASCII alphanumerics),
// so "Cat!" matches the indexed term "cat". A leading '-' negates a term
// ("-draft" ≡ "NOT draft"). A quoted phrase of one term collapses to that
// term; evaluating a multi-term phrase requires an index built with token
// positions (ErrNoPositions otherwise). A prefix operator's text must
// normalize to a single term ("repor*"); evaluation expands it against
// each partition's term dictionary, failing with ErrPrefixTooBroad past
// the request's expansion cap (Request.MaxPrefixTerms, or the
// MaxPrefixTerms default when unset).
func Parse(text string) (*Query, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if len(toks) == 0 {
		return nil, fmt.Errorf("search: empty query")
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("search: unexpected %q", p.peek().text)
	}
	q := &Query{root: root, prefixes: p.prefixes, hasPhrase: containsPhrase(root)}
	collectPositive(root, false, &q.positive)
	collectScorePrefixes(root, false, q)
	return q, nil
}

// collectScorePrefixes fills q.scorePrefixes with the ordinals of the
// distinct non-negated prefixes, in order of first appearance — the prefix
// analog of collectPositive's dedup.
func collectScorePrefixes(n node, negated bool, q *Query) {
	switch v := n.(type) {
	case prefixNode:
		if negated {
			return
		}
		for _, ord := range q.scorePrefixes {
			if q.prefixes[ord] == v.prefix {
				return
			}
		}
		q.scorePrefixes = append(q.scorePrefixes, v.ord)
	case andNode:
		for _, k := range v.kids {
			collectScorePrefixes(k, negated, q)
		}
	case orNode:
		for _, k := range v.kids {
			collectScorePrefixes(k, negated, q)
		}
	case notNode:
		collectScorePrefixes(v.kid, !negated, q)
	}
}

func containsPhrase(n node) bool {
	switch v := n.(type) {
	case phraseNode:
		return true
	case andNode:
		for _, k := range v.kids {
			if containsPhrase(k) {
				return true
			}
		}
	case orNode:
		for _, k := range v.kids {
			if containsPhrase(k) {
				return true
			}
		}
	case notNode:
		return containsPhrase(v.kid)
	}
	return false
}

// MustParse is Parse for known-good queries in examples and tests.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

func collectPositive(n node, negated bool, out *[]string) {
	addTerm := func(term string) {
		for _, seen := range *out {
			if seen == term {
				return
			}
		}
		*out = append(*out, term)
	}
	switch v := n.(type) {
	case termNode:
		if !negated {
			addTerm(v.term)
		}
	case phraseNode:
		// Every phrase term is contained in every hit, so the terms rank
		// and report like plain positive terms.
		if !negated {
			for _, t := range v.terms {
				addTerm(t)
			}
		}
	case andNode:
		for _, k := range v.kids {
			collectPositive(k, negated, out)
		}
	case orNode:
		for _, k := range v.kids {
			collectPositive(k, negated, out)
		}
	case notNode:
		collectPositive(v.kid, !negated, out)
	}
}

type tokKind int

const (
	tokTerm tokKind = iota
	tokPrefix
	tokPhrase
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	// terms holds a phrase token's normalized terms (tokPhrase only).
	terms []string
}

func lex(text string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == '-':
			toks = append(toks, token{kind: tokNot, text: "-"})
			i++
		case c == '"':
			j := i + 1
			for j < len(text) && text[j] != '"' {
				j++
			}
			if j >= len(text) {
				return nil, fmt.Errorf("search: unterminated phrase (missing closing '\"')")
			}
			// The quoted text normalizes through the index's tokenizer, so
			// "Annual-Report!" queries the terms annual, report — exactly
			// what extraction indexed.
			terms := tokenize.Terms([]byte(text[i+1:j]), tokenize.Default)
			if len(terms) == 0 {
				return nil, fmt.Errorf("search: phrase %q contains no searchable term", text[i:j+1])
			}
			toks = append(toks, token{kind: tokPhrase, text: text[i : j+1], terms: terms})
			i = j + 1
		default:
			j := i
			for j < len(text) && !strings.ContainsRune(" \t\n\r()\"", rune(text[j])) {
				j++
			}
			word := text[i:j]
			i = j
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, token{kind: tokAnd, text: word})
			case "OR":
				toks = append(toks, token{kind: tokOr, text: word})
			case "NOT":
				toks = append(toks, token{kind: tokNot, text: word})
			default:
				if strings.HasSuffix(word, "*") {
					// A trailing '*' makes the word a prefix operator. The
					// prefix text normalizes through the tokenizer like any
					// term and must stay a single term: expansion matches
					// whole dictionary entries, so a multi-term word
					// ("e-mail*") has no well-defined prefix semantics.
					terms := tokenize.Terms([]byte(strings.TrimRight(word, "*")), tokenize.Default)
					switch {
					case len(terms) == 0:
						return nil, fmt.Errorf("search: prefix %q contains no searchable term", word)
					case len(terms) > 1:
						return nil, fmt.Errorf("search: prefix %q must be a single term", word)
					}
					toks = append(toks, token{kind: tokPrefix, text: terms[0]})
					continue
				}
				// Normalize through the index's own tokenizer; one word
				// of query text may carry several index terms ("e-mail").
				terms := tokenize.Terms([]byte(word), tokenize.Default)
				if len(terms) == 0 {
					return nil, fmt.Errorf("search: %q contains no searchable term", word)
				}
				for _, t := range terms {
					toks = append(toks, token{kind: tokTerm, text: t})
				}
			}
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	// prefixes accumulates each prefix operator's text in parse order;
	// a prefixNode's ord indexes it.
	prefixes []string
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) parseOr() (node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []node{first}
	for !p.done() && p.peek().kind == tokOr {
		p.next()
		n, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, n)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return orNode{kids: kids}, nil
}

func (p *parser) parseAnd() (node, error) {
	var kids []node
	for !p.done() {
		switch p.peek().kind {
		case tokOr, tokRParen:
			goto out
		case tokAnd:
			p.next()
			continue
		}
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, n)
	}
out:
	switch len(kids) {
	case 0:
		return nil, fmt.Errorf("search: expected a term")
	case 1:
		return kids[0], nil
	default:
		return andNode{kids: kids}, nil
	}
}

func (p *parser) parseUnary() (node, error) {
	if p.done() {
		return nil, fmt.Errorf("search: query ends where a term was expected")
	}
	switch t := p.next(); t.kind {
	case tokNot:
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{kid: kid}, nil
	case tokLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.done() || p.peek().kind != tokRParen {
			return nil, fmt.Errorf("search: missing ')'")
		}
		p.next()
		return n, nil
	case tokTerm:
		return termNode{term: t.text}, nil
	case tokPrefix:
		ord := len(p.prefixes)
		p.prefixes = append(p.prefixes, t.text)
		return prefixNode{prefix: t.text, ord: ord}, nil
	case tokPhrase:
		if len(t.terms) == 1 {
			// A one-word "phrase" is just that word; collapsing it keeps
			// canonical forms (and therefore cache keys) identical.
			return termNode{term: t.terms[0]}, nil
		}
		return phraseNode{terms: t.terms}, nil
	default:
		return nil, fmt.Errorf("search: unexpected %q", t.text)
	}
}
