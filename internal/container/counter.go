package container

import "desksearch/internal/fnv"

// Counter is a multiset of strings with open addressing and linear probing:
// HashSet's layout plus an occurrence count per entry. A term extractor
// uses one Counter per file (reset between files) to collapse duplicate
// terms while remembering how often each occurred — the per-posting term
// frequency that TF ranking consumes.
type Counter struct {
	entries []counterEntry
	n       int // live entries
	// total counts every recorded occurrence, duplicates included — the
	// file's token length, which BM25 normalizes document scores by.
	total uint32
}

type counterEntry struct {
	key   string
	count uint32 // 0 = empty slot
	// positions holds the occurrence positions recorded by AddAt, in
	// arrival order (ascending, since extractors scan a file front to
	// back). nil when the counter is used position-free via Add.
	positions []uint32
}

// NewCounter returns a counter sized for about capacity distinct elements.
func NewCounter(capacity int) *Counter {
	buckets := setInitialBuckets
	for buckets*setMaxLoadNum/setMaxLoadDen < capacity {
		buckets *= 2
	}
	return &Counter{entries: make([]counterEntry, buckets)}
}

// Len returns the number of distinct elements.
func (c *Counter) Len() int { return c.n }

// Total returns the number of occurrences recorded since the last Reset,
// duplicates included — the sum of all counts.
func (c *Counter) Total() uint32 { return c.total }

// Add records one occurrence of key and reports whether it was absent.
func (c *Counter) Add(key string) bool {
	if (c.n+1)*setMaxLoadDen > len(c.entries)*setMaxLoadNum {
		c.grow()
	}
	c.total++
	i := c.probe(key)
	if c.entries[i].count > 0 {
		c.entries[i].count++
		return false
	}
	c.entries[i] = counterEntry{key: key, count: 1}
	c.n++
	return true
}

// AddAt records one occurrence of key at token position pos and reports
// whether the key was absent — Add's positional twin, used by extractors
// building a positional index. All occurrences of one key must arrive in
// ascending position order (a front-to-back scan guarantees it).
func (c *Counter) AddAt(key string, pos uint32) bool {
	if (c.n+1)*setMaxLoadDen > len(c.entries)*setMaxLoadNum {
		c.grow()
	}
	c.total++
	i := c.probe(key)
	if c.entries[i].count > 0 {
		c.entries[i].count++
		c.entries[i].positions = append(c.entries[i].positions, pos)
		return false
	}
	c.entries[i] = counterEntry{key: key, count: 1, positions: append(make([]uint32, 0, 4), pos)}
	c.n++
	return true
}

// Count returns the number of occurrences recorded for key.
func (c *Counter) Count(key string) uint32 {
	return c.entries[c.probe(key)].count
}

// Reset empties the counter, retaining the allocated buckets for reuse.
func (c *Counter) Reset() {
	clear(c.entries)
	c.n = 0
	c.total = 0
}

// Pairs appends the distinct elements and their parallel occurrence counts
// (in unspecified order) and returns both slices.
func (c *Counter) Pairs(keys []string, counts []uint32) ([]string, []uint32) {
	for i := range c.entries {
		if c.entries[i].count > 0 {
			keys = append(keys, c.entries[i].key)
			counts = append(counts, c.entries[i].count)
		}
	}
	return keys, counts
}

// PairsPositions appends the distinct elements and their parallel position
// lists (in unspecified element order; each position list ascending) and
// returns both slices. Ownership of the position slices transfers to the
// caller — the next Reset releases the counter's references, so the slices
// stay valid while the counter is reused for the next file.
func (c *Counter) PairsPositions(keys []string, positions [][]uint32) ([]string, [][]uint32) {
	for i := range c.entries {
		if c.entries[i].count > 0 {
			keys = append(keys, c.entries[i].key)
			positions = append(positions, c.entries[i].positions)
		}
	}
	return keys, positions
}

// probe returns the index of key's entry, or of the empty slot where it
// would be inserted.
func (c *Counter) probe(key string) int {
	mask := uint32(len(c.entries) - 1)
	i := fnv.Hash32(key) & mask
	for {
		e := &c.entries[i]
		if e.count == 0 || e.key == key {
			return int(i)
		}
		i = (i + 1) & mask
	}
}

func (c *Counter) grow() {
	old := c.entries
	c.entries = make([]counterEntry, len(old)*2)
	for i := range old {
		if old[i].count > 0 {
			c.entries[c.probe(old[i].key)] = old[i]
		}
	}
}
