package vfs

import (
	"io"
	"sync/atomic"
	"time"
)

// Meter wraps an FS and counts operations. It answers the paper's first
// question — "is the program I/O bound?" — with data: bytes read, files
// opened, and directory listings performed.
type Meter struct {
	fs FS

	opens     atomic.Int64
	readDirs  atomic.Int64
	stats     atomic.Int64
	bytesRead atomic.Int64
	readCalls atomic.Int64
}

// NewMeter returns a metering wrapper around fs.
func NewMeter(fs FS) *Meter { return &Meter{fs: fs} }

// Counts is a snapshot of meter state.
type Counts struct {
	Opens     int64
	ReadDirs  int64
	Stats     int64
	BytesRead int64
	ReadCalls int64
}

// Counts returns the current counters.
func (m *Meter) Counts() Counts {
	return Counts{
		Opens:     m.opens.Load(),
		ReadDirs:  m.readDirs.Load(),
		Stats:     m.stats.Load(),
		BytesRead: m.bytesRead.Load(),
		ReadCalls: m.readCalls.Load(),
	}
}

// Reset zeroes the counters.
func (m *Meter) Reset() {
	m.opens.Store(0)
	m.readDirs.Store(0)
	m.stats.Store(0)
	m.bytesRead.Store(0)
	m.readCalls.Store(0)
}

// Open implements FS.
func (m *Meter) Open(name string) (io.ReadCloser, error) {
	m.opens.Add(1)
	rc, err := m.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &meteredReader{rc: rc, m: m}, nil
}

// ReadFile implements FS.
func (m *Meter) ReadFile(name string) ([]byte, error) {
	m.opens.Add(1)
	data, err := m.fs.ReadFile(name)
	if err == nil {
		m.readCalls.Add(1)
		m.bytesRead.Add(int64(len(data)))
	}
	return data, err
}

// ReadDir implements FS.
func (m *Meter) ReadDir(name string) ([]DirEntry, error) {
	m.readDirs.Add(1)
	return m.fs.ReadDir(name)
}

// Stat implements FS.
func (m *Meter) Stat(name string) (DirEntry, error) {
	m.stats.Add(1)
	return m.fs.Stat(name)
}

type meteredReader struct {
	rc io.ReadCloser
	m  *Meter
}

func (r *meteredReader) Read(p []byte) (int, error) {
	n, err := r.rc.Read(p)
	r.m.readCalls.Add(1)
	r.m.bytesRead.Add(int64(n))
	return n, err
}

func (r *meteredReader) Close() error { return r.rc.Close() }

// DiskModel describes a simple disk for DelayFS: a fixed per-open seek cost
// and a transfer bandwidth. It is the live-run analogue of the simulator's
// disk resource (internal/platform carries the calibrated per-platform
// values).
type DiskModel struct {
	// Seek is charged once per Open/ReadFile.
	Seek time.Duration
	// BytesPerSecond is the sustained transfer bandwidth.
	BytesPerSecond int64
}

// TransferTime returns the modelled time to read n bytes, excluding seek.
func (d DiskModel) TransferTime(n int64) time.Duration {
	if d.BytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(n * int64(time.Second) / d.BytesPerSecond)
}

// DelayFS wraps an FS and sleeps according to a DiskModel on each operation,
// so that a fast in-memory corpus exhibits the I/O profile of a spinning
// disk. Concurrent readers sleep independently, emulating command queueing
// with effectively unlimited parallelism; combine with a semaphore-guarded
// FS for stricter disks.
type DelayFS struct {
	fs    FS
	model DiskModel
	// sleep is replaceable for tests.
	sleep func(time.Duration)
}

// NewDelayFS wraps fs with the given disk model.
func NewDelayFS(fs FS, model DiskModel) *DelayFS {
	return &DelayFS{fs: fs, model: model, sleep: time.Sleep}
}

// Open implements FS; it charges the seek immediately and the transfer time
// proportionally as data is read.
func (d *DelayFS) Open(name string) (io.ReadCloser, error) {
	d.sleep(d.model.Seek)
	rc, err := d.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &delayedReader{rc: rc, d: d}, nil
}

// ReadFile implements FS; it charges seek plus full transfer time.
func (d *DelayFS) ReadFile(name string) ([]byte, error) {
	d.sleep(d.model.Seek)
	data, err := d.fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	d.sleep(d.model.TransferTime(int64(len(data))))
	return data, err
}

// ReadDir implements FS; a directory read costs one seek.
func (d *DelayFS) ReadDir(name string) ([]DirEntry, error) {
	d.sleep(d.model.Seek)
	return d.fs.ReadDir(name)
}

// Stat implements FS; metadata is assumed cached (no delay).
func (d *DelayFS) Stat(name string) (DirEntry, error) {
	return d.fs.Stat(name)
}

type delayedReader struct {
	rc io.ReadCloser
	d  *DelayFS
}

func (r *delayedReader) Read(p []byte) (int, error) {
	n, err := r.rc.Read(p)
	if n > 0 {
		r.d.sleep(r.d.model.TransferTime(int64(n)))
	}
	return n, err
}

func (r *delayedReader) Close() error { return r.rc.Close() }

// Limited wraps an FS and caps how many file operations may be in flight
// at once — the live analogue of the simulator's disk queue depth. A
// depth-1 Limited over a DelayFS reproduces the paper's 8-core machine on
// real goroutines: reads serialize, and no thread count can beat the disk
// floor (BenchmarkLiveDiskBound).
type Limited struct {
	fs  FS
	sem chan struct{}
}

// NewLimited wraps fs with a concurrency limit of depth (min 1).
func NewLimited(fs FS, depth int) *Limited {
	if depth < 1 {
		depth = 1
	}
	return &Limited{fs: fs, sem: make(chan struct{}, depth)}
}

func (l *Limited) acquire() { l.sem <- struct{}{} }
func (l *Limited) release() { <-l.sem }

// Open implements FS. The limit is held only for the Open call itself;
// streaming reads through the returned reader re-acquire per Read.
func (l *Limited) Open(name string) (io.ReadCloser, error) {
	l.acquire()
	rc, err := l.fs.Open(name)
	l.release()
	if err != nil {
		return nil, err
	}
	return &limitedReader{rc: rc, l: l}, nil
}

// ReadFile implements FS; the whole read counts as one operation.
func (l *Limited) ReadFile(name string) ([]byte, error) {
	l.acquire()
	defer l.release()
	return l.fs.ReadFile(name)
}

// ReadDir implements FS.
func (l *Limited) ReadDir(name string) ([]DirEntry, error) {
	l.acquire()
	defer l.release()
	return l.fs.ReadDir(name)
}

// Stat implements FS (metadata is assumed cached: no limit).
func (l *Limited) Stat(name string) (DirEntry, error) {
	return l.fs.Stat(name)
}

type limitedReader struct {
	rc io.ReadCloser
	l  *Limited
}

func (r *limitedReader) Read(p []byte) (int, error) {
	r.l.acquire()
	defer r.l.release()
	return r.rc.Read(p)
}

func (r *limitedReader) Close() error { return r.rc.Close() }

var (
	_ FS = (*Meter)(nil)
	_ FS = (*DelayFS)(nil)
	_ FS = (*Limited)(nil)
)
