package index

import (
	"desksearch/internal/postings"
)

// Partition is the read-side contract query evaluation runs against: the
// exact set of operations internal/search needs from one document
// partition of the corpus, and nothing more. The heap-resident *Index is
// the first implementation; internal/segment's lazy DSIX v10 reader is the
// second. Everything above this seam — boolean evaluation, phrase walks,
// prefix expansion, BM25, snippets, suggestions — is backend-agnostic, and
// the two backends must be observationally identical: the backend-equality
// property test holds them to bit-identical query responses.
//
// Implementations must be safe for concurrent readers. Mutation, where an
// implementation supports it at all, is excluded by the search engine's
// maintenance lock, exactly as for *Index.
type Partition interface {
	// Lookup returns the posting list for term, or nil if absent. The
	// returned list is shared storage — callers must not modify it.
	Lookup(term string) *postings.List

	// Iterator returns a streaming cursor over term's postings, or nil
	// when the term is absent — or, on a lazy backend, when its block is
	// corrupt, mirroring Lookup's corrupt-means-absent contract. Unlike
	// Lookup, a lazy backend answers without materializing the list:
	// SeekGE rides the block's skip table, so an intersection that visits
	// a fraction of the postings decodes a fraction of the bytes. The
	// iterator is single-use, forward-only, and valid only while the
	// partition is open and unmutated (queries hold the engine's read
	// lock, which guarantees both).
	Iterator(term string) PostingIterator

	// DocFreq returns the number of postings (documents) for term, 0 if
	// absent. Equivalent to Lookup(term).Len() but, on a lazy backend,
	// answered from the term dictionary without decoding the posting
	// block — the difference BM25's document-frequency aggregation rides.
	DocFreq(term string) int

	// TermsFrom calls yield for every dictionary term >= from in
	// ascending byte order, with the term's document frequency, until
	// yield returns false. Prefix expansion seeks to the prefix and stops
	// at the first non-matching term, so a broad dictionary costs only
	// the matched range. TermsFrom("") walks the whole dictionary.
	TermsFrom(from string, yield func(term string, df int) bool)

	// Range calls f for every (term, posting list) pair in ascending
	// term order until f returns false — TermsFrom plus the lists, for
	// the passes that genuinely need every term's postings (snippet
	// window recovery). On a lazy backend this decodes every posting
	// block; prefer TermsFrom when the document frequency suffices.
	Range(f func(term string, l *postings.List) bool)

	// NumTerms returns the number of distinct terms.
	NumTerms() int

	// NumPostings returns the number of (term, file) pairs.
	NumPostings() int64

	// Positional reports whether posting lists carry token positions
	// (phrase queries and snippets require them).
	Positional() bool

	// Docs returns the set of files this partition holds postings for, as
	// a fresh pure-ID list — the complement base NOT evaluation unions
	// into a universe. On a lazy backend it comes from the segment's
	// persisted doc set, not from decoding postings.
	Docs() *postings.List

	// ResidentBytes estimates the partition's current heap footprint:
	// everything for a heap index, the dictionary plus cached blocks for
	// a lazy segment. It is an estimate for observability (/stats), not
	// an accounting guarantee.
	ResidentBytes() int64
}

// PostingIterator is a forward-only streaming cursor over one term's
// posting list — the seam that lets boolean evaluation skip postings it
// can prove irrelevant instead of decoding whole lists. Both backends
// implement it: the heap index over its in-memory lists
// (postings.Iterator), the lazy segment straight off the raw block bytes
// (segment.Iter), where SeekGE jumps via the per-block skip table.
//
// The cursor starts positioned before the first posting; ID/Count are
// valid only after a Next or SeekGE returned true. SeekGE never moves
// backwards: SeekGE(id) with the cursor already at or past id is a
// no-op returning true.
type PostingIterator interface {
	// Next advances to the next posting, returning false once exhausted.
	Next() bool

	// SeekGE advances to the first posting with ID >= id — never moving
	// backwards — and reports whether one exists.
	SeekGE(id postings.FileID) bool

	// ID returns the current posting's document ID.
	ID() postings.FileID

	// Count returns the current posting's term frequency (>= 1).
	Count() uint32

	// MaxCount returns an upper bound on Count over the whole list, or
	// postings.NoMaxCount when the backend cannot bound it without
	// decoding work. WAND turns this into a per-term max-score; an
	// unbounded term falls back to BM25's tf→∞ saturation limit, which
	// is still a sound (just looser) bound.
	MaxCount() uint32

	// Len returns the list's total posting count (the term's document
	// frequency), available without consuming the cursor.
	Len() int
}

// Partitions adapts a slice of concrete heap indices to the interface the
// engine consumes. (Go does not convert []*Index to []Partition
// implicitly.)
func Partitions(ixs []*Index) []Partition {
	out := make([]Partition, len(ixs))
	for i, ix := range ixs {
		out[i] = ix
	}
	return out
}
