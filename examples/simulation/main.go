// Simulation: replay the paper's 32-core experiment (Table 4) on the
// discrete-event simulator and watch the implementation ranking flip as
// core count grows.
//
// On 4 cores the three designs tie; on 32 cores the shared-index lock and
// cache traffic cap Implementation 1 at ≈1.96×, while the unjoined
// replicas of Implementation 3 reach ≈3.5×. This example reproduces that
// crossover in seconds of host time — no 32-core machine required.
//
// Run with:
//
//	go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	"desksearch/internal/core"
	"desksearch/internal/corpus"
	"desksearch/internal/platform"
	"desksearch/internal/simmodel"
)

func main() {
	// The full 51,000-file / 869 MB benchmark — as metadata only.
	cs := corpus.Describe(corpus.PaperSpec())
	fmt.Printf("workload: %d files, %.0f MB, %d postings\n\n",
		len(cs.Files), float64(cs.TotalBytes)/(1<<20), cs.TotalUnique)

	// The paper's best configurations per platform and implementation.
	best := map[int]map[core.Implementation]core.Config{
		4: {
			core.SharedIndex:      {Implementation: core.SharedIndex, Extractors: 3, Updaters: 1},
			core.ReplicatedJoin:   {Implementation: core.ReplicatedJoin, Extractors: 3, Updaters: 5, Joiners: 1},
			core.ReplicatedSearch: {Implementation: core.ReplicatedSearch, Extractors: 3, Updaters: 2},
		},
		8: {
			core.SharedIndex:      {Implementation: core.SharedIndex, Extractors: 3, Updaters: 2},
			core.ReplicatedJoin:   {Implementation: core.ReplicatedJoin, Extractors: 6, Updaters: 2, Joiners: 1},
			core.ReplicatedSearch: {Implementation: core.ReplicatedSearch, Extractors: 6, Updaters: 2},
		},
		32: {
			core.SharedIndex:      {Implementation: core.SharedIndex, Extractors: 8, Updaters: 4},
			core.ReplicatedJoin:   {Implementation: core.ReplicatedJoin, Extractors: 8, Updaters: 4, Joiners: 1},
			core.ReplicatedSearch: {Implementation: core.ReplicatedSearch, Extractors: 9, Updaters: 4},
		},
	}

	for _, p := range platform.All() {
		seq, err := simmodel.SequentialBaseline(p, cs, simmodel.Options{Batch: 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — sequential %.0fs\n", p.Name, seq)
		for _, im := range []core.Implementation{core.SharedIndex, core.ReplicatedJoin, core.ReplicatedSearch} {
			cfg := best[p.Cores][im]
			res, err := simmodel.Simulate(p, cs, cfg, simmodel.Options{Batch: 16})
			if err != nil {
				log.Fatal(err)
			}
			bar := ""
			for i := 0; i < int(seq/res.Exec*10); i++ {
				bar += "#"
			}
			fmt.Printf("  %-18s %-10s %6.1fs  speed-up %4.2fx  %s\n",
				im, cfg.Tuple(), res.Exec, seq/res.Exec, bar)
		}
		fmt.Println()
	}

	fmt.Println("The ranking flips with scale: equivalent on 4 cores, lock-bound on 32.")
	fmt.Println("That is the paper's core finding — the optimal design is platform-specific.")
}
