// Package timing provides a small concurrency-safe sliding window of
// duration observations with order statistics — the shared primitive
// behind dsearchd's per-partition timing summaries (/stats) and the
// distributed broker's adaptive hedging and timeout policy, both of which
// need "what have recent latencies looked like" rather than an all-time
// aggregate that stale outliers would dominate forever.
package timing

import (
	"slices"
	"sync"
	"time"
)

// DefaultWindowSize is the observation capacity NewWindow uses for a
// non-positive size: large enough for stable p95 estimates, small enough
// that a snapshot's sort is negligible next to a query.
const DefaultWindowSize = 256

// Window is a fixed-capacity ring of the most recent duration
// observations. Safe for concurrent use.
type Window struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	full  bool
	count uint64
	// scratch is Snapshot's reusable sort buffer, allocated once at the
	// window's capacity. Snapshot sorts under mu (a window is at most a
	// few hundred entries, so the sort is cheap next to the allocation it
	// replaces), which also keeps the buffer exclusive.
	scratch []time.Duration
}

// NewWindow returns a window retaining the last size observations
// (DefaultWindowSize when size is non-positive).
func NewWindow(size int) *Window {
	if size <= 0 {
		size = DefaultWindowSize
	}
	return &Window{
		buf:     make([]time.Duration, size),
		scratch: make([]time.Duration, 0, size),
	}
}

// Observe records one duration, displacing the oldest observation once
// the window is full.
func (w *Window) Observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next++
	if w.next == len(w.buf) {
		w.next, w.full = 0, true
	}
	w.count++
	w.mu.Unlock()
}

// Count returns the total number of observations ever recorded, including
// ones that have since left the window.
func (w *Window) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Summary is an order-statistics snapshot of a window's current contents.
type Summary struct {
	// Count is the lifetime observation count (not just the window's).
	Count uint64
	// Min, Median, P95, and Max summarize the retained observations.
	// Median and P95 are nearest-rank order statistics.
	Min, Median, P95, Max time.Duration
}

// Snapshot summarizes the window. ok is false when nothing has been
// observed yet — the zero Summary carries no information then.
func (w *Window) Snapshot() (s Summary, ok bool) {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	if n == 0 {
		w.mu.Unlock()
		return Summary{}, false
	}
	obs := append(w.scratch[:0], w.buf[:n]...)
	s.Count = w.count
	slices.Sort(obs)
	s.Min = obs[0]
	s.Max = obs[n-1]
	s.Median = obs[(n-1)/2]
	s.P95 = obs[(n-1)*95/100]
	w.mu.Unlock()
	return s, true
}

// P95 returns the window's 95th-percentile observation, or fallback when
// nothing has been observed — the broker's hedge-delay convenience.
func (w *Window) P95(fallback time.Duration) time.Duration {
	if s, ok := w.Snapshot(); ok {
		return s.P95
	}
	return fallback
}
