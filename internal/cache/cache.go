// Package cache implements the query-result cache of the search daemon: a
// bounded LRU keyed on (generation, normalized query) with single-flight
// de-duplication of identical in-flight lookups.
//
// The generation is the catalog's mutation counter. Every entry is tagged
// with the generation it was computed at, and Get only answers when the
// caller's generation matches the entry's — so the moment a reload commits
// (and the generation advances), every older entry silently becomes a
// miss. A query that was already executing when the reload landed may
// still store its result, but it stores it under the pre-reload
// generation, where no post-reload request will ever find it. Prune
// reclaims the space those orphaned entries hold.
//
// The cache is bounded twice: by entry count and by an approximate byte
// budget supplied per entry by the caller (the daemon estimates the JSON
// footprint of a response). Either bound evicts from the cold end of the
// LRU list.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Cache is a bounded LRU result cache with in-flight de-duplication. The
// zero value is not usable; construct with New. All methods are safe for
// concurrent use.
type Cache[V any] struct {
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	bytes   int64
	ll      *list.List // front = most recent; elements hold *entry[V]
	items   map[string]*list.Element
	flights map[string]*flight[V]

	hits, misses, coalesced, evictions uint64
}

// entry is one cached value, tagged with the generation it was computed at.
type entry[V any] struct {
	key  string
	gen  uint64
	val  V
	size int64
}

// flight is one in-progress computation that concurrent callers of Do with
// the same (generation, key) wait on instead of recomputing.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a cache bounded to at most maxEntries entries and maxBytes
// total of caller-reported value sizes. A zero (or negative) bound means
// unbounded in that dimension; New(0, 0) caches without limits.
func New[V any](maxEntries int, maxBytes int64) *Cache[V] {
	return &Cache[V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flights:    make(map[string]*flight[V]),
	}
}

// Get returns the value cached under key at the given generation. An entry
// stored at any other generation is a miss — stale results are never
// returned, no matter how recently they were stored.
func (c *Cache[V]) Get(gen uint64, key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.getLocked(gen, key)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *Cache[V]) getLocked(gen uint64, key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*entry[V])
		if ent.gen == gen {
			c.ll.MoveToFront(el)
			return ent.val, true
		}
	}
	var zero V
	return zero, false
}

// Do returns the value for (gen, key), computing it with fn on a miss. If
// another Do for the same (gen, key) is already running, the call waits
// for that flight and shares its result instead of re-running fn — the
// single-flight collapse that keeps a thundering herd of identical
// queries from evaluating the index once per request.
//
// The computation runs in its own goroutine, decoupled from any one
// caller: every caller — the one that started the flight included —
// waits with its own ctx, so a canceled or short-deadline caller gives
// up alone (receiving its ctx.Err()) while the flight runs on for the
// others and still populates the cache. fn must therefore bound its own
// work; a caller-scoped context inside fn would resurrect the coupling
// this design removes. A panic in fn is recovered into an error, the
// flight is torn down, and waiters all receive the error — a poisoned
// key never wedges.
//
// fn returns the value, its approximate size in bytes (charged against
// the byte budget), and an error. Errors are not cached: the flight's
// waiters all receive the error, and the next Do retries. The returned
// bool reports whether the caller was spared the computation — a cache
// hit or a shared flight.
func (c *Cache[V]) Do(ctx context.Context, gen uint64, key string, fn func() (V, int64, error)) (V, bool, error) {
	c.mu.Lock()
	if v, ok := c.getLocked(gen, key); ok {
		c.hits++
		c.mu.Unlock()
		return v, true, nil
	}
	c.misses++
	fk := flightKey(gen, key)
	f, shared := c.flights[fk]
	if shared {
		c.coalesced++
	} else {
		f = &flight[V]{done: make(chan struct{})}
		c.flights[fk] = f
		go c.run(gen, key, fk, f, fn)
	}
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.val, shared, f.err
	case <-ctx.Done():
		var zero V
		return zero, shared, ctx.Err()
	}
}

// run executes one flight: compute, store on success, tear down, wake the
// waiters. It owns the flight's lifecycle so that no caller's fate —
// cancellation, disconnect, panic propagation — can leave the flight
// registered but never finished.
func (c *Cache[V]) run(gen uint64, key, fk string, f *flight[V], fn func() (V, int64, error)) {
	var size int64
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("cache: computation panicked: %v", r)
			}
		}()
		f.val, size, f.err = fn()
	}()
	c.mu.Lock()
	delete(c.flights, fk)
	if f.err == nil {
		c.putLocked(gen, key, f.val, size)
	}
	c.mu.Unlock()
	close(f.done)
}

// Put stores val under (gen, key), replacing any entry for key from any
// generation, then evicts from the cold end until the bounds hold again.
func (c *Cache[V]) Put(gen uint64, key string, val V, size int64) {
	c.mu.Lock()
	c.putLocked(gen, key, val, size)
	c.mu.Unlock()
}

func (c *Cache[V]) putLocked(gen uint64, key string, val V, size int64) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*entry[V])
		c.bytes += size - ent.size
		ent.gen, ent.val, ent.size = gen, val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry[V]{key: key, gen: gen, val: val, size: size})
		c.bytes += size
	}
	for c.overLocked() {
		el := c.ll.Back()
		if el == nil {
			break
		}
		c.removeLocked(el)
		c.evictions++
	}
}

func (c *Cache[V]) overLocked() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	ent := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.size
}

// Prune drops every entry whose generation differs from gen, reclaiming
// the space entries orphaned by a reload still hold. (They were already
// unreachable: Get refuses generation mismatches.)
func (c *Cache[V]) Prune(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*entry[V]).gen != gen {
			c.removeLocked(el)
		}
	}
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Entries and Bytes are the current footprint.
	Entries int
	Bytes   int64
	// Hits and Misses count Get/Do lookups; Coalesced counts Do calls
	// that shared another caller's in-flight computation (a miss in the
	// store, but no work done). Evictions counts entries dropped to honor
	// the bounds (pruned stale entries are not evictions).
	Hits, Misses, Coalesced, Evictions uint64
}

// Stats returns current counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
	}
}

// flightKey scopes an in-flight computation to its generation, so a query
// racing a reload never adopts a result computed against the other side of
// the swap.
func flightKey(gen uint64, key string) string {
	// The generation renders as length-prefixed bytes distinct from any
	// key content collision: a simple prefix is enough because keys never
	// contain the separator at this position ambiguously.
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(gen >> (8 * i))
	}
	return string(b[:]) + key
}
