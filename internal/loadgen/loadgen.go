// Package loadgen replays a mixed query workload against a search
// target — a dsearchd URL or an in-process catalog — at controlled QPS
// and summarizes per-class latency. It is the measurement half of the
// repo's load-test harness (cmd/loadgen is the CLI): the related work's
// throughput/latency evaluations (Orlando et al.'s parallel web-search
// engine, ParIS+'s query-workload benchmarks) are driven by exactly
// this shape of experiment, and microbenchmarks alone miss the
// contention they expose.
//
// The workload generator is deterministic: one seed and one vocabulary
// produce one op stream, so runs are comparable across machines and
// commits. Query terms are drawn Zipf-skewed from the same vocabulary
// the corpus generator writes content with (internal/corpus), so hot
// query terms hit hot posting lists — the realistic case — rather than
// uniformly cold ones.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Class labels one query shape of the mixed workload.
type Class string

// The workload's query classes. Each exercises a different evaluation
// path: galloping AND intersection, OR union, NOT subtraction,
// positional phrase verification, dictionary-range prefix expansion,
// WAND top-k BM25, and the suggest endpoint's frequency-ranked scan.
const (
	ClassAnd     Class = "and"
	ClassOr      Class = "or"
	ClassNot     Class = "not"
	ClassPhrase  Class = "phrase"
	ClassPrefix  Class = "prefix"
	ClassBM25    Class = "bm25"
	ClassSuggest Class = "suggest"
)

// Classes lists every workload class in a fixed order.
var Classes = []Class{ClassAnd, ClassOr, ClassNot, ClassPhrase, ClassPrefix, ClassBM25, ClassSuggest}

// DefaultMix weights the classes roughly like an interactive search
// box: conjunctions and ranked queries dominate, negations and phrases
// are the tail.
var DefaultMix = map[Class]int{
	ClassAnd:     25,
	ClassOr:      15,
	ClassNot:     10,
	ClassPhrase:  10,
	ClassPrefix:  10,
	ClassBM25:    20,
	ClassSuggest: 10,
}

// Op is one generated operation.
type Op struct {
	// Class labels which latency histogram the op lands in.
	Class Class
	// Query is the q parameter: a boolean expression, or the bare prefix
	// for ClassSuggest.
	Query string
	// Rank is the rank parameter ("" for the default count ranking).
	Rank string
	// Limit is the page size requested.
	Limit int
}

// Generator produces a deterministic op stream. Not safe for concurrent
// use; the runner drains it single-threaded before dispatching.
type Generator struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	vocab []string
	mix   []Class // one entry per weight unit; Next indexes it uniformly
}

// NewGenerator returns a generator over the vocabulary. A nil or empty
// mix falls back to DefaultMix. The vocabulary must be the one the
// corpus was generated from for term frequencies to be realistic, but
// any non-empty word list produces a valid workload.
func NewGenerator(seed int64, vocab []string, mix map[Class]int) (*Generator, error) {
	if len(vocab) == 0 {
		return nil, fmt.Errorf("loadgen: empty vocabulary")
	}
	if len(mix) == 0 {
		mix = DefaultMix
	}
	var expanded []Class
	for _, c := range Classes { // fixed order keeps the stream deterministic
		for i := 0; i < mix[c]; i++ {
			expanded = append(expanded, c)
		}
	}
	if len(expanded) == 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weights")
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if len(vocab) > 1 {
		// The same skew internal/corpus writes content with, so the query
		// term distribution matches the posting-list size distribution.
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(len(vocab)-1))
	}
	return &Generator{rng: rng, zipf: zipf, vocab: vocab, mix: expanded}, nil
}

// term draws one Zipf-skewed vocabulary word.
func (g *Generator) term() string {
	if g.zipf == nil {
		return g.vocab[0]
	}
	return g.vocab[g.zipf.Uint64()]
}

// terms draws n distinct-ish words (repeats possible on tiny vocabularies).
func (g *Generator) terms(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.term()
	}
	return out
}

// Next returns the stream's next operation.
func (g *Generator) Next() Op {
	class := g.mix[g.rng.Intn(len(g.mix))]
	limit := 10 + g.rng.Intn(40)
	switch class {
	case ClassAnd:
		return Op{Class: class, Query: strings.Join(g.terms(2+g.rng.Intn(2)), " "), Limit: limit}
	case ClassOr:
		return Op{Class: class, Query: strings.Join(g.terms(2+g.rng.Intn(2)), " OR "), Limit: limit}
	case ClassNot:
		ts := g.terms(2)
		return Op{Class: class, Query: ts[0] + " -" + ts[1], Limit: limit}
	case ClassPhrase:
		return Op{Class: class, Query: `"` + strings.Join(g.terms(2), " ") + `"`, Limit: limit}
	case ClassPrefix:
		t := g.term()
		cut := 3
		if len(t) < cut {
			cut = len(t)
		}
		return Op{Class: class, Query: t[:cut] + "*", Rank: "bm25", Limit: limit}
	case ClassBM25:
		return Op{Class: class, Query: strings.Join(g.terms(1+g.rng.Intn(3)), " "), Rank: "bm25", Limit: limit}
	default: // ClassSuggest
		t := g.term()
		cut := 2
		if len(t) < cut {
			cut = len(t)
		}
		return Op{Class: ClassSuggest, Query: t[:cut], Limit: 10}
	}
}

// Target executes one operation; implementations are in target.go.
// Deterministic rejections (a phrase query against a positionless
// catalog) and transport failures alike count as errors in the summary.
type Target interface {
	Do(ctx context.Context, op Op) error
}

// Config parameterizes one load run.
type Config struct {
	// Target executes the ops. Required.
	Target Target
	// Generator produces the workload. Required.
	Generator *Generator
	// Queries is the total number of operations to issue. Required.
	Queries int
	// QPS paces dispatch (aggregate across workers); 0 issues ops as
	// fast as the workers complete them — the throughput-probe mode.
	QPS float64
	// Workers is the concurrency; 0 falls back to 8.
	Workers int
	// Timeout bounds each operation; 0 falls back to 10 s.
	Timeout time.Duration
}

// result is one completed op's measurement.
type result struct {
	class Class
	dur   time.Duration
	err   bool
}

// Run replays the workload and returns its summary. The op stream is
// generated up front (single-threaded, deterministic) and dispatched to
// the worker pool through a channel the pacer feeds at the target rate.
// A canceled ctx stops dispatch early; completed ops still summarize.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	if cfg.Target == nil || cfg.Generator == nil {
		return nil, fmt.Errorf("loadgen: Target and Generator are required")
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("loadgen: Queries must be positive")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}

	ops := make([]Op, cfg.Queries)
	for i := range ops {
		ops[i] = cfg.Generator.Next()
	}

	feed := make(chan Op, workers)
	results := make([]result, 0, cfg.Queries)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]result, 0, cfg.Queries/workers+1)
			for op := range feed {
				opCtx, cancel := context.WithTimeout(ctx, timeout)
				t0 := time.Now()
				err := cfg.Target.Do(opCtx, op)
				local = append(local, result{class: op.Class, dur: time.Since(t0), err: err != nil})
				cancel()
			}
			mu.Lock()
			results = append(results, local...)
			mu.Unlock()
		}()
	}

	start := time.Now()
	var interval time.Duration
	if cfg.QPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.QPS)
	}
dispatch:
	for i, op := range ops {
		if interval > 0 {
			// Absolute schedule, not sleep-per-op: send op i at start +
			// i*interval, so pacing error does not accumulate.
			if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break dispatch
				}
			}
		}
		select {
		case feed <- op:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(feed)
	wg.Wait()
	wall := time.Since(start)

	return summarize(results, wall, cfg.QPS), nil
}

// Summary is the run's structured result — the JSON artifact
// cmd/benchcheck gates against a baseline.
type Summary struct {
	// Queries and Errors count completed operations across all classes.
	Queries int `json:"queries"`
	Errors  int `json:"errors"`
	// WallMS is the run's wall-clock duration.
	WallMS float64 `json:"wall_ms"`
	// TargetQPS is the configured pace (0 for unpaced), AchievedQPS the
	// measured one.
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	// Classes holds per-class latency summaries, keyed by class name.
	Classes map[string]ClassSummary `json:"classes"`
}

// ClassSummary is one query class's latency block.
type ClassSummary struct {
	Queries int     `json:"queries"`
	Errors  int     `json:"errors"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// summarize folds raw measurements into the JSON shape.
func summarize(results []result, wall time.Duration, targetQPS float64) *Summary {
	s := &Summary{
		WallMS:    float64(wall.Microseconds()) / 1e3,
		TargetQPS: targetQPS,
		Classes:   make(map[string]ClassSummary),
	}
	byClass := make(map[Class][]time.Duration)
	errs := make(map[Class]int)
	for _, r := range results {
		s.Queries++
		if r.err {
			s.Errors++
			errs[r.class]++
		}
		byClass[r.class] = append(byClass[r.class], r.dur)
	}
	if wall > 0 {
		s.AchievedQPS = float64(s.Queries) / wall.Seconds()
	}
	for class, durs := range byClass {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		s.Classes[string(class)] = ClassSummary{
			Queries: len(durs),
			Errors:  errs[class],
			P50MS:   ms(percentile(durs, 50)),
			P95MS:   ms(percentile(durs, 95)),
			P99MS:   ms(percentile(durs, 99)),
			MaxMS:   ms(durs[len(durs)-1]),
		}
	}
	return s
}

// percentile returns the nearest-rank p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n), nearest-rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
