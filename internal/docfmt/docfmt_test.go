package docfmt

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"desksearch/internal/tokenize"
)

func terms(data []byte) []string {
	return tokenize.Terms(data, tokenize.Default)
}

func TestByExtension(t *testing.T) {
	tests := []struct {
		name string
		want Format
	}{
		{"a.txt", PlainText},
		{"a.html", HTML},
		{"a.HTM", HTML},
		{"page.xhtml", HTML},
		{"report.wp", WPMarkup},
		{"letter.DOC", WPMarkup},
		{"noext", PlainText},
		{"dir/file.html", HTML},
		{"weird.pdf", PlainText},
	}
	for _, tc := range tests {
		if got := ByExtension(tc.name); got != tc.want {
			t.Errorf("ByExtension(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSniff(t *testing.T) {
	tests := []struct {
		in   string
		want Format
	}{
		{"plain words here", PlainText},
		{"<!DOCTYPE html><html>", HTML},
		{"  \n<html><body>", HTML},
		{"<HTML>", HTML},
		{".wp 1.0\nbody", WPMarkup},
		{".ti A Title\n", WPMarkup},
		{"<p>fragment without prolog", PlainText},
		{"", PlainText},
	}
	for _, tc := range tests {
		if got := Sniff([]byte(tc.in)); got != tc.want {
			t.Errorf("Sniff(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestFormatString(t *testing.T) {
	if PlainText.String() != "text" || HTML.String() != "html" || WPMarkup.String() != "wp" {
		t.Error("Format.String names wrong")
	}
	if Format(99).String() != "Format(99)" {
		t.Error("unknown format string wrong")
	}
}

func TestPlainPassthrough(t *testing.T) {
	in := []byte("unchanged content")
	out := For(PlainText).Extract(in)
	if string(out) != string(in) {
		t.Errorf("plain text modified: %q", out)
	}
}

func TestHTMLStripsTags(t *testing.T) {
	in := `<html><body><h1>Quarterly Report</h1><p>Revenue grew by <b>ten</b> percent.</p></body></html>`
	got := terms(For(HTML).Extract([]byte(in)))
	want := []string{"quarterly", "report", "revenue", "grew", "by", "ten", "percent"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestHTMLTagBoundarySeparatesWords(t *testing.T) {
	got := terms(For(HTML).Extract([]byte("<b>alpha</b>beta")))
	want := []string{"alpha", "beta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestHTMLStripsScriptAndStyle(t *testing.T) {
	in := `<html><script>var hidden = "secretterm";</script><style>.c{color:red}</style>visible</html>`
	got := string(For(HTML).Extract([]byte(in)))
	if strings.Contains(got, "secretterm") || strings.Contains(got, "color") {
		t.Errorf("script/style leaked: %q", got)
	}
	if !strings.Contains(got, "visible") {
		t.Errorf("body text lost: %q", got)
	}
}

func TestHTMLScriptCaseInsensitive(t *testing.T) {
	in := `<SCRIPT>hidden()</SCRIPT>shown`
	got := string(For(HTML).Extract([]byte(in)))
	if strings.Contains(got, "hidden") {
		t.Errorf("uppercase script leaked: %q", got)
	}
}

func TestHTMLScriptPrefixElementNotSwallowed(t *testing.T) {
	// <scripted> is not <script>; its content must survive.
	in := `<scripted>content</scripted>`
	got := string(For(HTML).Extract([]byte(in)))
	if !strings.Contains(got, "content") {
		t.Errorf("content of <scripted> lost: %q", got)
	}
}

func TestHTMLComments(t *testing.T) {
	in := `before<!-- hidden comment with <tags> -->after`
	got := terms(For(HTML).Extract([]byte(in)))
	want := []string{"before", "after"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestHTMLEntities(t *testing.T) {
	in := `Tom &amp; Jerry &lt;3 &nbsp;cartoons&gt;`
	got := string(For(HTML).Extract([]byte(in)))
	if !strings.Contains(got, "Tom & Jerry <3") {
		t.Errorf("entities not decoded: %q", got)
	}
	// Unknown entities pass through literally.
	in2 := `x &bogus; y &toolongentityname; z`
	got2 := string(For(HTML).Extract([]byte(in2)))
	if !strings.Contains(got2, "&bogus;") {
		t.Errorf("unknown entity mangled: %q", got2)
	}
}

func TestHTMLMalformedInputsDoNotPanic(t *testing.T) {
	cases := []string{
		"<unclosed",
		"text<",
		"<!-- unterminated",
		"<script>never closed",
		"&;",
		"&",
		"<>",
		"</",
	}
	for _, in := range cases {
		_ = For(HTML).Extract([]byte(in)) // must not panic
	}
}

func TestWPDirectiveLines(t *testing.T) {
	in := ".wp 1.0\n.ti Annual Summary\n.pp\nBody text here.\n"
	got := terms(For(WPMarkup).Extract([]byte(in)))
	want := []string{"1", "0", "annual", "summary", "body", "text", "here"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestWPInlineControls(t *testing.T) {
	in := `The \b{bold word} and \i{italic} text.`
	got := terms(For(WPMarkup).Extract([]byte(in)))
	want := []string{"the", "bold", "word", "and", "italic", "text"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestWPDotInsideLineIsText(t *testing.T) {
	in := "version 2.5 released\n"
	got := terms(For(WPMarkup).Extract([]byte(in)))
	want := []string{"version", "2", "5", "released"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractDispatch(t *testing.T) {
	html := []byte("<html><b>word</b></html>")
	if got := terms(Extract("f.html", html)); !reflect.DeepEqual(got, []string{"word"}) {
		t.Errorf("html dispatch: %q", got)
	}
	// Plain name but HTML content: sniffing catches it.
	if got := terms(Extract("f.txt", html)); !reflect.DeepEqual(got, []string{"word"}) {
		t.Errorf("sniff dispatch: %q", got)
	}
	plain := []byte("just words")
	if got := terms(Extract("f.txt", plain)); !reflect.DeepEqual(got, []string{"just", "words"}) {
		t.Errorf("plain dispatch: %q", got)
	}
}

// Property: extraction never panics and never grows the document.
func TestExtractorsBoundedAndTotal(t *testing.T) {
	extractors := []Extractor{For(PlainText), For(HTML), For(WPMarkup)}
	if err := quick.Check(func(data []byte, which uint8) bool {
		ex := extractors[int(which)%len(extractors)]
		out := ex.Extract(data)
		return len(out) <= len(data)+1 // +1: HTML may append one space per tag... bounded below
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHTMLExtract(b *testing.B) {
	doc := []byte(strings.Repeat("<p>Some <b>styled</b> paragraph with &amp; entities.</p>\n", 500))
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		For(HTML).Extract(doc)
	}
}

func BenchmarkWPExtract(b *testing.B) {
	doc := []byte(strings.Repeat(".pp\nA paragraph with \\b{bold} words in it.\n", 500))
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		For(WPMarkup).Extract(doc)
	}
}
